// TupleBTree: insertion, lookup, prefix scans, structural invariants.

#include "storage/btree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace paralagg::storage {
namespace {

TEST(BTree, EmptyTreeBasics) {
  TupleBTree t(2, 2);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  const value_t key[] = {1, 2};
  EXPECT_EQ(t.find_key(std::span<const value_t>(key, 2)), nullptr);
  std::size_t visits = 0;
  t.for_each([&](const Tuple&) { ++visits; });
  EXPECT_EQ(visits, 0u);
  EXPECT_EQ(t.check_invariants(), 0u);
}

TEST(BTree, InsertAndFind) {
  TupleBTree t(2, 2);
  EXPECT_TRUE(t.insert(Tuple{3, 4}));
  EXPECT_EQ(t.size(), 1u);
  const value_t key[] = {3, 4};
  const Tuple* found = t.find_key(std::span<const value_t>(key, 2));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, (Tuple{3, 4}));
}

TEST(BTree, DuplicateKeyRejected) {
  TupleBTree t(2, 2);
  EXPECT_TRUE(t.insert(Tuple{3, 4}));
  EXPECT_FALSE(t.insert(Tuple{3, 4}));
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTree, PayloadDistinguishedFromKey) {
  // key_arity 1: second column is payload; same key -> rejected even with
  // a different payload.
  TupleBTree t(2, 1);
  EXPECT_TRUE(t.insert(Tuple{7, 100}));
  EXPECT_FALSE(t.insert(Tuple{7, 200}));
  const value_t key[] = {7};
  const Tuple* found = t.find_key(std::span<const value_t>(key, 1));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ((*found)[1], 100u);  // original payload kept
}

TEST(BTree, PayloadMutableInPlace) {
  TupleBTree t(2, 1);
  t.insert(Tuple{7, 100});
  const value_t key[] = {7};
  Tuple* row = t.find_key(std::span<const value_t>(key, 1));
  ASSERT_NE(row, nullptr);
  (*row)[1] = 55;
  EXPECT_EQ((*t.find_key(std::span<const value_t>(key, 1)))[1], 55u);
  EXPECT_EQ(t.check_invariants(), 1u);
}

TEST(BTree, ManyInsertionsStaySortedAndComplete) {
  TupleBTree t(2, 2);
  // Insert in a scrambled deterministic order.
  std::vector<value_t> keys;
  for (value_t v = 0; v < 5000; ++v) keys.push_back(mix64(v) % 100000);
  std::set<std::pair<value_t, value_t>> expect;
  for (value_t k : keys) {
    const Tuple row{k, k + 1};
    const bool fresh = expect.emplace(k, k + 1).second;
    EXPECT_EQ(t.insert(row), fresh);
  }
  EXPECT_EQ(t.size(), expect.size());
  EXPECT_EQ(t.check_invariants(), expect.size());

  // for_each must yield key order exactly.
  std::vector<std::pair<value_t, value_t>> seen;
  t.for_each([&](const Tuple& row) { seen.emplace_back(row[0], row[1]); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_TRUE(std::equal(seen.begin(), seen.end(), expect.begin(), expect.end()));
}

TEST(BTree, FindAfterHeavyLoad) {
  TupleBTree t(1, 1);
  for (value_t v = 0; v < 3000; ++v) t.insert(Tuple{v * 2});  // evens only
  for (value_t v = 0; v < 3000; ++v) {
    const value_t even[] = {v * 2};
    const value_t odd[] = {v * 2 + 1};
    EXPECT_NE(t.find_key(std::span<const value_t>(even, 1)), nullptr) << v;
    EXPECT_EQ(t.find_key(std::span<const value_t>(odd, 1)), nullptr) << v;
  }
}

TEST(BTree, PrefixScanFindsAllMatches) {
  TupleBTree t(2, 2);
  // 100 groups of 0..group_size rows.
  std::map<value_t, std::size_t> expect;
  for (value_t g = 0; g < 100; ++g) {
    const std::size_t count = static_cast<std::size_t>(g % 7);
    for (std::size_t i = 0; i < count; ++i) {
      t.insert(Tuple{g, static_cast<value_t>(i)});
    }
    expect[g] = count;
  }
  for (value_t g = 0; g < 100; ++g) {
    std::vector<value_t> seconds;
    const value_t prefix[] = {g};
    t.scan_prefix(std::span<const value_t>(prefix, 1),
                  [&](const Tuple& row) { seconds.push_back(row[1]); });
    EXPECT_EQ(seconds.size(), expect[g]) << "group " << g;
    EXPECT_TRUE(std::is_sorted(seconds.begin(), seconds.end()));
  }
}

TEST(BTree, PrefixScanOnAbsentPrefixIsEmpty) {
  TupleBTree t(2, 2);
  for (value_t g = 0; g < 50; ++g) t.insert(Tuple{g * 10, 1});
  const value_t prefix[] = {5};  // between groups
  std::size_t hits = 0;
  t.scan_prefix(std::span<const value_t>(prefix, 1), [&](const Tuple&) { ++hits; });
  EXPECT_EQ(hits, 0u);
}

TEST(BTree, PrefixScanFullKeyActsAsLookup) {
  TupleBTree t(3, 2);
  t.insert(Tuple{1, 2, 77});
  const value_t prefix[] = {1, 2};
  std::size_t hits = 0;
  t.scan_prefix(std::span<const value_t>(prefix, 2), [&](const Tuple& row) {
    ++hits;
    EXPECT_EQ(row[2], 77u);
  });
  EXPECT_EQ(hits, 1u);
}

TEST(BTree, PrefixScanSpanningLeafBoundaries) {
  // One giant group forces the group to span many leaves.
  TupleBTree t(2, 2);
  for (value_t i = 0; i < 1000; ++i) t.insert(Tuple{42, i});
  t.insert(Tuple{41, 0});
  t.insert(Tuple{43, 0});
  std::size_t hits = 0;
  const value_t prefix[] = {42};
  t.scan_prefix(std::span<const value_t>(prefix, 1), [&](const Tuple&) { ++hits; });
  EXPECT_EQ(hits, 1000u);
}

TEST(BTree, ClearEmptiesTree) {
  TupleBTree t(2, 2);
  for (value_t v = 0; v < 500; ++v) t.insert(Tuple{v, v});
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.check_invariants(), 0u);
  EXPECT_TRUE(t.insert(Tuple{1, 1}));
}

TEST(BTree, MoveTransfersOwnership) {
  TupleBTree t(2, 2);
  for (value_t v = 0; v < 200; ++v) t.insert(Tuple{v, v});
  TupleBTree moved = std::move(t);
  EXPECT_EQ(moved.size(), 200u);
  EXPECT_EQ(moved.check_invariants(), 200u);
}

TEST(BTree, CountsComparisonsMonotonically) {
  TupleBTree t(1, 1);
  for (value_t v = 0; v < 100; ++v) t.insert(Tuple{v});
  const auto after_insert = t.comparisons();
  EXPECT_GT(after_insert, 0u);
  const value_t key[] = {50};
  (void)t.find_key(std::span<const value_t>(key, 1));
  EXPECT_GT(t.comparisons(), after_insert);
  t.reset_counters();
  EXPECT_EQ(t.comparisons(), 0u);
}

TEST(BTree, ApproxBytesGrowsWithContent) {
  TupleBTree t(3, 3);
  const auto empty = t.approx_bytes();
  for (value_t v = 0; v < 1000; ++v) t.insert(Tuple{v, v, v});
  EXPECT_GT(t.approx_bytes(), empty);
}

TEST(BTree, FuzzAgainstStdMap) {
  // Randomized differential test: interleaved inserts, lookups, payload
  // rewrites, and prefix scans against a std::map reference.
  TupleBTree tree(3, 2);
  std::map<std::pair<value_t, value_t>, value_t> ref;
  value_t state = 12345;
  const auto rnd = [&](value_t bound) {
    state = mix64(state);
    return state % bound;
  };
  for (int op = 0; op < 20000; ++op) {
    const value_t k1 = rnd(64), k2 = rnd(16);
    switch (rnd(4)) {
      case 0: {  // insert
        const value_t payload = rnd(1000);
        const bool fresh = ref.emplace(std::make_pair(k1, k2), payload).second;
        EXPECT_EQ(tree.insert(Tuple{k1, k2, payload}), fresh);
        break;
      }
      case 1: {  // point lookup
        const value_t key[] = {k1, k2};
        const Tuple* row = tree.find_key(std::span<const value_t>(key, 2));
        const auto it = ref.find({k1, k2});
        if (it == ref.end()) {
          EXPECT_EQ(row, nullptr);
        } else {
          ASSERT_NE(row, nullptr);
          EXPECT_EQ((*row)[2], it->second);
        }
        break;
      }
      case 2: {  // payload rewrite (the fused-aggregation hot path)
        const value_t key[] = {k1, k2};
        Tuple* row = tree.find_key(std::span<const value_t>(key, 2));
        auto it = ref.find({k1, k2});
        ASSERT_EQ(row != nullptr, it != ref.end());
        if (row != nullptr) {
          const value_t v = rnd(1000);
          (*row)[2] = v;
          it->second = v;
        }
        break;
      }
      default: {  // prefix scan over k1
        const value_t prefix[] = {k1};
        std::vector<std::pair<value_t, value_t>> got;
        tree.scan_prefix(std::span<const value_t>(prefix, 1),
                         [&](const Tuple& row) { got.emplace_back(row[1], row[2]); });
        std::vector<std::pair<value_t, value_t>> want;
        for (auto it = ref.lower_bound({k1, 0}); it != ref.end() && it->first.first == k1;
             ++it) {
          want.emplace_back(it->first.second, it->second);
        }
        EXPECT_EQ(got, want) << "prefix " << k1 << " at op " << op;
        break;
      }
    }
  }
  EXPECT_EQ(tree.check_invariants(), ref.size());
}

// Parameterized sweep: invariants hold across arities and orderings.
struct BTreeSweepParam {
  std::size_t arity;
  std::size_t key_arity;
  std::size_t count;
  bool reverse;
};

class BTreeSweep : public ::testing::TestWithParam<BTreeSweepParam> {};

TEST_P(BTreeSweep, InvariantsAndMembership) {
  const auto p = GetParam();
  TupleBTree t(p.arity, p.key_arity);
  std::set<Tuple> inserted;
  for (std::size_t i = 0; i < p.count; ++i) {
    const value_t base = p.reverse ? static_cast<value_t>(p.count - i) : static_cast<value_t>(i);
    Tuple row;
    for (std::size_t c = 0; c < p.arity; ++c) row.push_back(mix64(base + c * 7919) % 997);
    if (t.insert(row)) inserted.insert(row);
  }
  EXPECT_EQ(t.check_invariants(), t.size());
  // Every inserted key must be findable (keys are tuple prefixes, and a
  // later row with the same key prefix was rejected, so prefix lookup by
  // the stored row's key must return a row).
  for (const auto& row : inserted) {
    EXPECT_NE(t.find_key(row.prefix(p.key_arity)), nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BTreeSweep,
    ::testing::Values(BTreeSweepParam{1, 1, 2000, false}, BTreeSweepParam{1, 1, 2000, true},
                      BTreeSweepParam{2, 1, 2000, false}, BTreeSweepParam{2, 2, 2000, true},
                      BTreeSweepParam{3, 2, 3000, false}, BTreeSweepParam{4, 3, 1500, true},
                      BTreeSweepParam{5, 5, 1000, false}));

}  // namespace
}  // namespace paralagg::storage

// TupleBTree: insertion, lookup, prefix scans, cursors, structural
// invariants.

#include "storage/btree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace paralagg::storage {
namespace {

TEST(BTree, EmptyTreeBasics) {
  TupleBTree t(2, 2);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  const value_t key[] = {1, 2};
  EXPECT_TRUE(t.find_key(std::span<const value_t>(key, 2)).empty());
  std::size_t visits = 0;
  t.for_each([&](std::span<const value_t>) { ++visits; });
  EXPECT_EQ(visits, 0u);
  EXPECT_EQ(t.check_invariants(), 0u);
}

TEST(BTree, InsertAndFind) {
  TupleBTree t(2, 2);
  EXPECT_TRUE(t.insert(Tuple{3, 4}));
  EXPECT_EQ(t.size(), 1u);
  const value_t key[] = {3, 4};
  const auto found = t.find_key(std::span<const value_t>(key, 2));
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(Tuple(found), (Tuple{3, 4}));
}

TEST(BTree, DuplicateKeyRejected) {
  TupleBTree t(2, 2);
  EXPECT_TRUE(t.insert(Tuple{3, 4}));
  EXPECT_FALSE(t.insert(Tuple{3, 4}));
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTree, PayloadDistinguishedFromKey) {
  // key_arity 1: second column is payload; same key -> rejected even with
  // a different payload.
  TupleBTree t(2, 1);
  EXPECT_TRUE(t.insert(Tuple{7, 100}));
  EXPECT_FALSE(t.insert(Tuple{7, 200}));
  const value_t key[] = {7};
  const auto found = t.find_key(std::span<const value_t>(key, 1));
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(found[1], 100u);  // original payload kept
}

TEST(BTree, PayloadMutableInPlace) {
  TupleBTree t(2, 1);
  t.insert(Tuple{7, 100});
  const value_t key[] = {7};
  const std::span<value_t> row = t.find_key(std::span<const value_t>(key, 1));
  ASSERT_FALSE(row.empty());
  row[1] = 55;
  EXPECT_EQ(std::as_const(t).find_key(std::span<const value_t>(key, 1))[1], 55u);
  EXPECT_EQ(t.check_invariants(), 1u);
}

TEST(BTree, ManyInsertionsStaySortedAndComplete) {
  TupleBTree t(2, 2);
  // Insert in a scrambled deterministic order.
  std::vector<value_t> keys;
  for (value_t v = 0; v < 5000; ++v) keys.push_back(mix64(v) % 100000);
  std::set<std::pair<value_t, value_t>> expect;
  for (value_t k : keys) {
    const Tuple row{k, k + 1};
    const bool fresh = expect.emplace(k, k + 1).second;
    EXPECT_EQ(t.insert(row), fresh);
  }
  EXPECT_EQ(t.size(), expect.size());
  EXPECT_EQ(t.check_invariants(), expect.size());

  // for_each must yield key order exactly.
  std::vector<std::pair<value_t, value_t>> seen;
  t.for_each([&](std::span<const value_t> row) { seen.emplace_back(row[0], row[1]); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_TRUE(std::equal(seen.begin(), seen.end(), expect.begin(), expect.end()));
}

TEST(BTree, FindAfterHeavyLoad) {
  TupleBTree t(1, 1);
  for (value_t v = 0; v < 3000; ++v) t.insert(Tuple{v * 2});  // evens only
  for (value_t v = 0; v < 3000; ++v) {
    const value_t even[] = {v * 2};
    const value_t odd[] = {v * 2 + 1};
    EXPECT_FALSE(t.find_key(std::span<const value_t>(even, 1)).empty()) << v;
    EXPECT_TRUE(t.find_key(std::span<const value_t>(odd, 1)).empty()) << v;
  }
}

TEST(BTree, PrefixScanFindsAllMatches) {
  TupleBTree t(2, 2);
  // 100 groups of 0..group_size rows.
  std::map<value_t, std::size_t> expect;
  for (value_t g = 0; g < 100; ++g) {
    const std::size_t count = static_cast<std::size_t>(g % 7);
    for (std::size_t i = 0; i < count; ++i) {
      t.insert(Tuple{g, static_cast<value_t>(i)});
    }
    expect[g] = count;
  }
  for (value_t g = 0; g < 100; ++g) {
    std::vector<value_t> seconds;
    const value_t prefix[] = {g};
    t.scan_prefix(std::span<const value_t>(prefix, 1),
                  [&](std::span<const value_t> row) { seconds.push_back(row[1]); });
    EXPECT_EQ(seconds.size(), expect[g]) << "group " << g;
    EXPECT_TRUE(std::is_sorted(seconds.begin(), seconds.end()));
  }
}

TEST(BTree, PrefixScanOnAbsentPrefixIsEmpty) {
  TupleBTree t(2, 2);
  for (value_t g = 0; g < 50; ++g) t.insert(Tuple{g * 10, 1});
  const value_t prefix[] = {5};  // between groups
  std::size_t hits = 0;
  t.scan_prefix(std::span<const value_t>(prefix, 1),
                [&](std::span<const value_t>) { ++hits; });
  EXPECT_EQ(hits, 0u);
}

TEST(BTree, PrefixScanFullKeyActsAsLookup) {
  TupleBTree t(3, 2);
  t.insert(Tuple{1, 2, 77});
  const value_t prefix[] = {1, 2};
  std::size_t hits = 0;
  t.scan_prefix(std::span<const value_t>(prefix, 2), [&](std::span<const value_t> row) {
    ++hits;
    EXPECT_EQ(row[2], 77u);
  });
  EXPECT_EQ(hits, 1u);
}

TEST(BTree, PrefixScanSpanningLeafBoundaries) {
  // One giant group forces the group to span many leaves.
  TupleBTree t(2, 2);
  for (value_t i = 0; i < 1000; ++i) t.insert(Tuple{42, i});
  t.insert(Tuple{41, 0});
  t.insert(Tuple{43, 0});
  std::size_t hits = 0;
  const value_t prefix[] = {42};
  t.scan_prefix(std::span<const value_t>(prefix, 1),
                [&](std::span<const value_t>) { ++hits; });
  EXPECT_EQ(hits, 1000u);
}

TEST(BTree, PrefixScanEmptyPrefixVisitsEverything) {
  TupleBTree t(2, 2);
  for (value_t v = 0; v < 1234; ++v) t.insert(Tuple{mix64(v) % 5000, v});
  std::size_t hits = 0;
  value_t prev_first = 0;
  bool first = true;
  t.scan_prefix(std::span<const value_t>{}, [&](std::span<const value_t> row) {
    if (!first) EXPECT_GE(row[0], prev_first);
    prev_first = row[0];
    first = false;
    ++hits;
  });
  EXPECT_EQ(hits, t.size());
  EXPECT_EQ(t.check_invariants(), t.size());
}

TEST(BTree, PrefixShorterThanKeyArity) {
  // key_arity 3, scans over 1- and 2-column prefixes.
  TupleBTree t(3, 3);
  for (value_t a = 0; a < 8; ++a) {
    for (value_t b = 0; b < 8; ++b) {
      for (value_t c = 0; c < 3; ++c) t.insert(Tuple{a, b, c});
    }
  }
  const value_t one[] = {5};
  std::size_t hits1 = 0;
  t.scan_prefix(std::span<const value_t>(one, 1), [&](std::span<const value_t> row) {
    EXPECT_EQ(row[0], 5u);
    ++hits1;
  });
  EXPECT_EQ(hits1, 8u * 3u);

  const value_t two[] = {5, 2};
  std::size_t hits2 = 0;
  t.scan_prefix(std::span<const value_t>(two, 2), [&](std::span<const value_t> row) {
    EXPECT_EQ(row[0], 5u);
    EXPECT_EQ(row[1], 2u);
    ++hits2;
  });
  EXPECT_EQ(hits2, 3u);
  EXPECT_EQ(t.check_invariants(), t.size());
}

TEST(BTree, SeekPastLastKey) {
  TupleBTree t(2, 2);
  for (value_t v = 0; v < 200; ++v) t.insert(Tuple{v, v});
  auto c = t.cursor();
  const value_t beyond[] = {1000};
  c.seek(std::span<const value_t>(beyond, 1));
  EXPECT_FALSE(c.valid());
  // Further seeks beyond the end stay at the end (and stay cheap), but a
  // seek back inside the key space must recover via a fresh descent.
  const value_t farther[] = {2000};
  c.seek(std::span<const value_t>(farther, 1));
  EXPECT_FALSE(c.valid());
  const value_t inside[] = {42};
  c.seek(std::span<const value_t>(inside, 1));
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.row()[0], 42u);
  EXPECT_EQ(t.check_invariants(), t.size());
}

TEST(BTree, SeekIntoJustSplitLeaf) {
  // Drive the tree through its first leaf split (kLeafCap = 32) and seek
  // around the split boundary after every insert.
  TupleBTree t(2, 2);
  for (value_t v = 0; v < 40; ++v) {
    ASSERT_TRUE(t.insert(Tuple{v * 2, v}));
    ASSERT_EQ(t.check_invariants(), static_cast<std::size_t>(v + 1));
    auto c = t.cursor();
    // Seek to each stored key and to the gap just before it.
    for (value_t probe = 0; probe <= v; ++probe) {
      const value_t exact[] = {probe * 2};
      c.seek(std::span<const value_t>(exact, 1));
      ASSERT_TRUE(c.valid()) << "insert " << v << " probe " << probe;
      EXPECT_EQ(c.row()[0], probe * 2);
      const value_t gap[] = {probe * 2 + 1};
      c.seek(std::span<const value_t>(gap, 1));  // lower bound = next key
      if (probe < v) {
        ASSERT_TRUE(c.valid());
        EXPECT_EQ(c.row()[0], (probe + 1) * 2);
      } else {
        EXPECT_FALSE(c.valid());
      }
    }
  }
}

TEST(BTree, CursorSeekFirstMatchesForEach) {
  TupleBTree t(3, 2);
  for (value_t v = 0; v < 2500; ++v) t.insert(Tuple{mix64(v) % 700, v % 5, v});
  std::vector<Tuple> via_for_each;
  t.for_each([&](std::span<const value_t> row) { via_for_each.emplace_back(row); });
  std::vector<Tuple> via_cursor;
  auto c = t.cursor();
  for (c.seek_first(); c.valid(); c.next()) via_cursor.emplace_back(c.row());
  EXPECT_EQ(via_for_each, via_cursor);
}

TEST(BTree, CursorEmptyTree) {
  TupleBTree t(2, 1);
  auto c = t.cursor();
  c.seek_first();
  EXPECT_FALSE(c.valid());
  const value_t key[] = {3};
  c.seek(std::span<const value_t>(key, 1));
  EXPECT_FALSE(c.valid());
}

TEST(BTree, CursorMonotoneSeeksMatchFreshScans) {
  // Differential: a single cursor driven through an ascending probe
  // sequence must enumerate exactly what per-probe scan_prefix does.
  TupleBTree t(2, 2);
  for (value_t v = 0; v < 4000; ++v) t.insert(Tuple{mix64(v) % 500, v});
  std::vector<value_t> probes;
  for (value_t p = 0; p < 600; ++p) probes.push_back(p);  // hits and misses
  auto c = t.cursor();
  for (value_t p : probes) {
    const value_t prefix[] = {p};
    const auto pre = std::span<const value_t>(prefix, 1);
    std::vector<value_t> fresh;
    t.scan_prefix(pre, [&](std::span<const value_t> row) { fresh.push_back(row[1]); });
    std::vector<value_t> resumed;
    for (c.seek(pre); c.valid() && c.matches(pre); c.next()) resumed.push_back(c.row()[1]);
    EXPECT_EQ(fresh, resumed) << "probe " << p;
  }
}

TEST(BTree, CursorNonMonotoneSeekIsCorrect) {
  TupleBTree t(2, 2);
  for (value_t v = 0; v < 3000; ++v) t.insert(Tuple{v, v});
  auto c = t.cursor();
  // Descending and zig-zag probes: always globally correct, just slower.
  const value_t seq[] = {2500, 100, 2400, 50, 2999, 0, 1500, 1500};
  for (value_t p : seq) {
    const value_t prefix[] = {p};
    c.seek(std::span<const value_t>(prefix, 1));
    ASSERT_TRUE(c.valid()) << p;
    EXPECT_EQ(c.row()[0], p);
  }
}

TEST(BTree, CursorPositionRestoreReplaysRange) {
  TupleBTree t(2, 2);
  for (value_t i = 0; i < 300; ++i) t.insert(Tuple{7, i});
  t.insert(Tuple{6, 0});
  t.insert(Tuple{8, 0});
  auto c = t.cursor();
  const value_t prefix[] = {7};
  const auto pre = std::span<const value_t>(prefix, 1);
  c.seek(pre);
  const auto begin = c.position();
  std::size_t n = 0;
  while (c.valid() && c.matches(pre)) {
    ++n;
    c.next();
  }
  ASSERT_EQ(n, 300u);
  // Replay the recorded range twice without re-matching.
  for (int rep = 0; rep < 2; ++rep) {
    c.restore(begin);
    value_t want = 0;
    for (std::size_t i = 0; i < n; ++i, c.next()) {
      ASSERT_TRUE(c.valid());
      EXPECT_EQ(c.row()[0], 7u);
      EXPECT_EQ(c.row()[1], want++);
    }
  }
}

TEST(BTree, SortedSeeksCostFewerComparisonsThanFreshScans) {
  // The counter-based version of the bench/probe_kernel verdict: the same
  // ascending probe set through one monotone cursor must cost strictly
  // fewer key comparisons than per-probe fresh descents.
  TupleBTree t(2, 1);
  for (value_t v = 0; v < 20000; ++v) t.insert(Tuple{mix64(v) % 30000, v});

  std::vector<value_t> probes;
  for (value_t p = 0; p < 30000; p += 3) probes.push_back(p);

  t.reset_counters();
  std::size_t sink = 0;
  for (value_t p : probes) {
    const value_t prefix[] = {p};
    t.scan_prefix(std::span<const value_t>(prefix, 1),
                  [&](std::span<const value_t>) { ++sink; });
  }
  const auto fresh_cmps = t.comparisons();

  t.reset_counters();
  std::size_t sink2 = 0;
  auto c = t.cursor();
  for (value_t p : probes) {
    const value_t prefix[] = {p};
    const auto pre = std::span<const value_t>(prefix, 1);
    for (c.seek(pre); c.valid() && c.matches(pre); c.next()) ++sink2;
  }
  const auto sorted_cmps = t.comparisons();

  EXPECT_EQ(sink, sink2);
  EXPECT_LT(sorted_cmps, fresh_cmps);
}

TEST(BTree, ClearEmptiesTree) {
  TupleBTree t(2, 2);
  for (value_t v = 0; v < 500; ++v) t.insert(Tuple{v, v});
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.check_invariants(), 0u);
  EXPECT_TRUE(t.insert(Tuple{1, 1}));
}

TEST(BTree, MoveTransfersOwnership) {
  TupleBTree t(2, 2);
  for (value_t v = 0; v < 200; ++v) t.insert(Tuple{v, v});
  TupleBTree moved = std::move(t);
  EXPECT_EQ(moved.size(), 200u);
  EXPECT_EQ(moved.check_invariants(), 200u);
}

TEST(BTree, CountsComparisonsMonotonically) {
  TupleBTree t(1, 1);
  for (value_t v = 0; v < 100; ++v) t.insert(Tuple{v});
  const auto after_insert = t.comparisons();
  EXPECT_GT(after_insert, 0u);
  const value_t key[] = {50};
  (void)std::as_const(t).find_key(std::span<const value_t>(key, 1));
  EXPECT_GT(t.comparisons(), after_insert);
  t.reset_counters();
  EXPECT_EQ(t.comparisons(), 0u);
}

TEST(BTree, ApproxBytesGrowsWithContent) {
  TupleBTree t(3, 3);
  const auto empty = t.approx_bytes();
  for (value_t v = 0; v < 1000; ++v) t.insert(Tuple{v, v, v});
  EXPECT_GT(t.approx_bytes(), empty);
}

TEST(BTree, FuzzAgainstStdMap) {
  // Randomized differential test: interleaved inserts, lookups, payload
  // rewrites, prefix scans, and monotone cursor batches against a
  // std::map reference.
  TupleBTree tree(3, 2);
  std::map<std::pair<value_t, value_t>, value_t> ref;
  value_t state = 12345;
  const auto rnd = [&](value_t bound) {
    state = mix64(state);
    return state % bound;
  };
  for (int op = 0; op < 20000; ++op) {
    const value_t k1 = rnd(64), k2 = rnd(16);
    switch (rnd(5)) {
      case 0: {  // insert
        const value_t payload = rnd(1000);
        const bool fresh = ref.emplace(std::make_pair(k1, k2), payload).second;
        EXPECT_EQ(tree.insert(Tuple{k1, k2, payload}), fresh);
        break;
      }
      case 1: {  // point lookup
        const value_t key[] = {k1, k2};
        const auto row = std::as_const(tree).find_key(std::span<const value_t>(key, 2));
        const auto it = ref.find({k1, k2});
        if (it == ref.end()) {
          EXPECT_TRUE(row.empty());
        } else {
          ASSERT_FALSE(row.empty());
          EXPECT_EQ(row[2], it->second);
        }
        break;
      }
      case 2: {  // payload rewrite (the fused-aggregation hot path)
        const value_t key[] = {k1, k2};
        const std::span<value_t> row = tree.find_key(std::span<const value_t>(key, 2));
        auto it = ref.find({k1, k2});
        ASSERT_EQ(!row.empty(), it != ref.end());
        if (!row.empty()) {
          const value_t v = rnd(1000);
          row[2] = v;
          it->second = v;
        }
        break;
      }
      case 3: {  // prefix scan over k1
        const value_t prefix[] = {k1};
        std::vector<std::pair<value_t, value_t>> got;
        tree.scan_prefix(
            std::span<const value_t>(prefix, 1),
            [&](std::span<const value_t> row) { got.emplace_back(row[1], row[2]); });
        std::vector<std::pair<value_t, value_t>> want;
        for (auto it = ref.lower_bound({k1, 0}); it != ref.end() && it->first.first == k1;
             ++it) {
          want.emplace_back(it->first.second, it->second);
        }
        EXPECT_EQ(got, want) << "prefix " << k1 << " at op " << op;
        break;
      }
      default: {  // ascending cursor batch over a few prefixes from k1
        auto c = tree.cursor();
        for (value_t p = k1; p < k1 + 5; ++p) {
          const value_t prefix[] = {p};
          const auto pre = std::span<const value_t>(prefix, 1);
          std::vector<std::pair<value_t, value_t>> got;
          for (c.seek(pre); c.valid() && c.matches(pre); c.next()) {
            got.emplace_back(c.row()[1], c.row()[2]);
          }
          std::vector<std::pair<value_t, value_t>> want;
          for (auto it = ref.lower_bound({p, 0}); it != ref.end() && it->first.first == p;
               ++it) {
            want.emplace_back(it->first.second, it->second);
          }
          EXPECT_EQ(got, want) << "cursor prefix " << p << " at op " << op;
        }
        break;
      }
    }
  }
  EXPECT_EQ(tree.check_invariants(), ref.size());
}

// Parameterized sweep: invariants hold across arities and orderings.
struct BTreeSweepParam {
  std::size_t arity;
  std::size_t key_arity;
  std::size_t count;
  bool reverse;
};

class BTreeSweep : public ::testing::TestWithParam<BTreeSweepParam> {};

TEST_P(BTreeSweep, InvariantsAndMembership) {
  const auto p = GetParam();
  TupleBTree t(p.arity, p.key_arity);
  std::set<Tuple> inserted;
  for (std::size_t i = 0; i < p.count; ++i) {
    const value_t base = p.reverse ? static_cast<value_t>(p.count - i) : static_cast<value_t>(i);
    Tuple row;
    for (std::size_t c = 0; c < p.arity; ++c) row.push_back(mix64(base + c * 7919) % 997);
    if (t.insert(row)) inserted.insert(row);
  }
  EXPECT_EQ(t.check_invariants(), t.size());
  // Every inserted key must be findable (keys are tuple prefixes, and a
  // later row with the same key prefix was rejected, so prefix lookup by
  // the stored row's key must return a row).
  for (const auto& row : inserted) {
    EXPECT_FALSE(t.find_key(row.prefix(p.key_arity)).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BTreeSweep,
    ::testing::Values(BTreeSweepParam{1, 1, 2000, false}, BTreeSweepParam{1, 1, 2000, true},
                      BTreeSweepParam{2, 1, 2000, false}, BTreeSweepParam{2, 2, 2000, true},
                      BTreeSweepParam{3, 2, 3000, false}, BTreeSweepParam{4, 3, 1500, true},
                      BTreeSweepParam{5, 5, 1000, false}));

}  // namespace
}  // namespace paralagg::storage

// Checkpoint portability of a recursive-aggregation fixpoint: a shortest
// paths fixpoint computed at one (rank count, sub-bucket) layout must
// reload bit-for-bit at a different layout, since the checkpoint file is
// layout-independent.  Validated against the sequential Dijkstra oracle on
// both sides of the round trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "queries/common.hpp"
#include "queries/reference.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg::core {
namespace {

using queries::edge_slice;

/// The SSSP program of queries/sssp.cpp, with the spath relation's
/// sub-bucket fan-out exposed so the two halves of the test can disagree
/// about layout.
struct SsspFixture {
  Program program;
  Relation* edge;
  Relation* spath;

  SsspFixture(vmpi::Comm& comm, const graph::Graph& g, value_t source, int sub_buckets)
      : program(comm) {
    edge = program.relation({.name = "edge", .arity = 3, .jcc = 1});
    spath = program.relation({.name = "spath",
                              .arity = 3,
                              .jcc = 1,
                              .dep_arity = 1,
                              .aggregator = make_min_aggregator(),
                              .sub_buckets = sub_buckets});
    auto& s = program.stratum();
    s.loop_rules.push_back(JoinRule{
        .a = spath,
        .a_version = Version::kDelta,
        .b = edge,
        .b_version = Version::kFull,
        .out = {.target = spath,
                .cols = {queries::Expr::col_b(1), queries::Expr::col_a(1),
                         queries::Expr::add(queries::Expr::col_a(2),
                                            queries::Expr::col_b(2))}},
    });
    edge->load_facts(edge_slice(comm, g, /*weighted=*/true));
    std::vector<Tuple> seeds;
    if (comm.rank() == 0) seeds.push_back(Tuple{source, source, 0});
    spath->load_facts(seeds);
  }
};

void expect_matches_dijkstra(
    const std::vector<Tuple>& rows,
    const std::map<std::pair<value_t, value_t>, value_t>& oracle) {
  ASSERT_EQ(rows.size(), oracle.size());
  for (const auto& row : rows) {
    // Stored order (to, from, dist); the oracle keys on (from, to).
    const auto it = oracle.find({row[1], row[0]});
    ASSERT_NE(it, oracle.end()) << "spurious pair " << row[1] << " -> " << row[0];
    EXPECT_EQ(row[2], it->second);
  }
}

TEST(Checkpoint, FixpointPortableAcrossRankAndSubBucketLayouts) {
  const std::string path = testing::TempDir() + "/paralagg_ckpt_fixpoint.bin";
  const auto g = graph::make_rmat({.scale = 6, .edge_factor = 4, .seed = 21});
  const auto oracle = queries::reference::sssp(g, {0});
  ASSERT_FALSE(oracle.empty());

  // Compute the fixpoint at 4 ranks with spath fanned out over 2
  // sub-buckets per bucket, then checkpoint it.
  std::vector<Tuple> computed;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    SsspFixture f(comm, g, 0, /*sub_buckets=*/2);
    Engine engine(comm);
    const auto result = engine.run(f.program);
    ASSERT_TRUE(result.strata.back().reached_fixpoint);
    f.spath->save_checkpoint(path);
    const auto rows = f.spath->gather_to_root(0);
    if (comm.rank() == 0) {
      expect_matches_dijkstra(rows, oracle);
      computed = rows;
    }
  });

  // Reload at 7 ranks, single sub-bucket: a layout sharing no divisor
  // with the writer's.  Contents must be bit-identical.
  vmpi::run(7, [&](vmpi::Comm& comm) {
    SsspFixture f(comm, g, 0, /*sub_buckets=*/1);
    f.spath->load_checkpoint(path);
    EXPECT_EQ(f.spath->global_size(Version::kFull), oracle.size());
    const auto rows = f.spath->gather_to_root(0);
    if (comm.rank() == 0) {
      EXPECT_EQ(rows, computed);
      expect_matches_dijkstra(rows, oracle);
    }

    // The reloaded relation must be a live fixpoint, not just data: delta
    // equals full after load, so one engine pass re-derives nothing new.
    Engine engine(comm);
    const auto again = engine.run(f.program);
    EXPECT_TRUE(again.strata.back().reached_fixpoint);
    EXPECT_EQ(f.spath->global_size(Version::kFull), oracle.size());
  });
  std::remove(path.c_str());
}

// ---- corruption / truncation robustness -------------------------------------

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Every failed load must throw on EVERY rank and leave the relation
/// byte-identical to its pre-load state.
void expect_load_fails_and_leaves_relation_untouched(const graph::Graph& g,
                                                     const std::string& path) {
  vmpi::run(3, [&](vmpi::Comm& comm) {
    SsspFixture f(comm, g, 0, /*sub_buckets=*/1);
    // Pre-existing contents that a failed load must not disturb.
    const auto before_full = f.spath->global_size(Version::kFull);
    const auto before_rows = f.spath->gather_to_root(0);
    EXPECT_THROW(f.spath->load_checkpoint(path), std::runtime_error);
    EXPECT_EQ(f.spath->global_size(Version::kFull), before_full);
    const auto after_rows = f.spath->gather_to_root(0);
    if (comm.rank() == 0) {
      EXPECT_EQ(after_rows, before_rows);
    }
  });
}

TEST(Checkpoint, CorruptOrTruncatedFilesRejectedRelationUntouched) {
  const std::string path = testing::TempDir() + "/paralagg_ckpt_corrupt.bin";
  const auto g = graph::make_rmat({.scale = 5, .edge_factor = 4, .seed = 9});

  vmpi::run(3, [&](vmpi::Comm& comm) {
    SsspFixture f(comm, g, 0, /*sub_buckets=*/1);
    Engine engine(comm);
    (void)engine.run(f.program);
    f.spath->save_checkpoint(path);
  });
  const std::vector<char> good = slurp(path);
  ASSERT_GT(good.size(), 40u);  // 5-word header + some rows

  // One flipped byte at each interesting offset: magic, version, arity,
  // count, CRC word, first body byte, middle of the body, last byte.
  const std::size_t offsets[] = {0,  8,  16, 24, 32,
                                 40, good.size() / 2, good.size() - 1};
  for (const std::size_t off : offsets) {
    auto bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0x5A);
    spit(path, bad);
    SCOPED_TRACE("corrupt byte at offset " + std::to_string(off));
    expect_load_fails_and_leaves_relation_untouched(g, path);
  }

  // Truncations: inside the header, right after it, and mid-body.  A
  // truncated count must never drive a huge allocation either — the
  // declared count is validated against the file size before any reserve.
  for (const std::size_t keep : {std::size_t{12}, std::size_t{40}, good.size() - 7}) {
    spit(path, {good.begin(), good.begin() + static_cast<std::ptrdiff_t>(keep)});
    SCOPED_TRACE("truncated to " + std::to_string(keep) + " bytes");
    expect_load_fails_and_leaves_relation_untouched(g, path);
  }

  // A pristine file still loads after all that (the copies were corrupted,
  // not the original bytes).
  spit(path, good);
  vmpi::run(3, [&](vmpi::Comm& comm) {
    SsspFixture f(comm, g, 0, /*sub_buckets=*/1);
    f.spath->load_checkpoint(path);
    EXPECT_GT(f.spath->global_size(Version::kFull), 0u);
  });
  std::remove(path.c_str());
}

TEST(Checkpoint, ManifestCorruptionRejectedOnEveryRank) {
  const std::string path = testing::TempDir() + "/paralagg_manifest_corrupt.bin";
  const auto g = graph::make_rmat({.scale = 5, .edge_factor = 4, .seed = 11});

  vmpi::run(3, [&](vmpi::Comm& comm) {
    SsspFixture f(comm, g, 0, /*sub_buckets=*/1);
    Engine engine(comm);
    (void)engine.run(f.program);
    write_manifest(f.program, path, ManifestHeader{0, 1, 1});
  });
  const std::vector<char> good = slurp(path);
  ASSERT_GT(good.size(), 48u);

  for (const std::size_t off : {std::size_t{0}, std::size_t{32}, good.size() - 1}) {
    auto bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0x5A);
    spit(path, bad);
    SCOPED_TRACE("corrupt manifest byte at offset " + std::to_string(off));
    vmpi::run(3, [&](vmpi::Comm& comm) {
      SsspFixture f(comm, g, 0, /*sub_buckets=*/1);
      EXPECT_THROW(load_manifest(f.program, path), CheckpointError);
    });
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace paralagg::core

// Deterministic fault injection, hang-free failure detection, and
// checkpoint/restart.
//
// The sweep's contract (DESIGN.md §8, §14): under any seeded message-fault
// schedule a run either reaches the bit-identical reference fixpoint or
// fails with a typed vmpi::FaultError on every rank — never a hang, never
// a silently wrong answer.  Under the default retry budget the reliable
// channel upgrades the per-class guarantees: drops and corruption are
// *healed* (ack/retransmit; the run completes bit-identically with
// retransmits > 0), duplication and bounded reorder are absorbed, and
// every schedule replays exactly from its seed.  With retry disabled
// (max_attempts = 0) the legacy fail-stop contract holds: drops are
// detected and abort typed.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "async/async_engine.hpp"
#include "core/checkpoint.hpp"
#include "queries/cc.hpp"
#include "queries/common.hpp"
#include "queries/pagerank.hpp"
#include "queries/sssp.hpp"
#include "queries/tc.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg {
namespace {

using core::Tuple;
using core::value_t;

// Generous enough that sanitizer builds never trip it on a healthy run,
// short enough that a starved wait fails the leg instead of the runner.
constexpr double kWatchdog = 4.0;

graph::Graph sweep_graph() {
  return graph::make_rmat({.scale = 6, .edge_factor = 4, .seed = 33});
}

enum class Query { kSssp, kCc, kTc };
const char* query_name(Query q) {
  switch (q) {
    case Query::kSssp: return "sssp";
    case Query::kCc: return "cc";
    case Query::kTc: return "tc";
  }
  return "?";
}

/// One rank's view of a faulted run: the typed-abort flag plus the rows it
/// gathered (root only, and only when the run completed).
struct LegOutcome {
  std::vector<int> aborted;             // per rank: run.aborted_fault
  std::vector<std::string> fault_what;  // per rank
  std::vector<Tuple> rows;              // root's gather when not aborted
  std::vector<std::uint64_t> retransmits;  // per rank: frames healed on the wire
  std::vector<std::uint64_t> nacks;        // per rank: corrupt frames bounced
  [[nodiscard]] bool any_aborted() const {
    for (const int a : aborted) {
      if (a != 0) return true;
    }
    return false;
  }
  [[nodiscard]] bool all_aborted() const {
    for (const int a : aborted) {
      if (a == 0) return false;
    }
    return true;
  }
  [[nodiscard]] std::uint64_t total_retransmits() const {
    std::uint64_t s = 0;
    for (const auto r : retransmits) s += r;
    return s;
  }
};

/// RunOptions with retransmission disabled: the pre-reliable-channel
/// fail-stop transport, byte-for-byte.
vmpi::RunOptions legacy_options() {
  vmpi::RunOptions options;
  options.retry.max_attempts = 0;
  return options;
}

/// Run `query` on `ranks` ranks under `options`, using the BSP engine with
/// the Bruck exchange (the faultable collective path) unless `tuning_fn`
/// overrides it.  Collects per-rank abort flags without any cross-rank
/// communication — a faulted world cannot run collectives.
template <typename TuningFn>
LegOutcome run_leg(Query query, int ranks, const vmpi::RunOptions& options,
                   const graph::Graph& g, TuningFn&& tuning_fn) {
  LegOutcome out;
  out.aborted.assign(static_cast<std::size_t>(ranks), 0);
  out.fault_what.resize(static_cast<std::size_t>(ranks));
  out.retransmits.assign(static_cast<std::size_t>(ranks), 0);
  out.nacks.assign(static_cast<std::size_t>(ranks), 0);
  vmpi::run(ranks, options, [&](vmpi::Comm& comm) {
    queries::QueryTuning tuning;
    tuning.engine.exchange = core::ExchangeAlgorithm::kBruck;
    tuning_fn(tuning);
    core::RunResult run;
    switch (query) {
      case Query::kSssp: {
        queries::SsspOptions opts;
        opts.sources = {0};
        opts.tuning = tuning;
        opts.collect_distances = true;
        auto r = run_sssp(comm, g, opts);
        run = r.run;
        if (comm.rank() == 0) out.rows = std::move(r.distances);
        break;
      }
      case Query::kCc: {
        queries::CcOptions opts;
        opts.tuning = tuning;
        opts.collect_labels = true;
        auto r = run_cc(comm, g, opts);
        run = r.run;
        if (comm.rank() == 0) out.rows = std::move(r.labels);
        break;
      }
      case Query::kTc: {
        queries::TcOptions opts;
        opts.tuning = tuning;
        opts.collect_pairs = true;
        auto r = run_tc(comm, g, opts);
        run = r.run;
        if (comm.rank() == 0) out.rows = std::move(r.pairs);
        break;
      }
    }
    const auto me = static_cast<std::size_t>(comm.rank());
    out.aborted[me] = run.aborted_fault ? 1 : 0;
    out.fault_what[me] = run.fault_what;
    out.retransmits[me] = comm.stats().retransmits;
    out.nacks[me] = comm.stats().nacks_sent;
  });
  return out;
}

LegOutcome run_leg(Query query, int ranks, const vmpi::RunOptions& options,
                   const graph::Graph& g) {
  return run_leg(query, ranks, options, g, [](queries::QueryTuning&) {});
}

/// Typed aborts must be unanimous: one rank detecting a fault poisons the
/// world, so a half-aborted outcome would mean some rank kept computing on
/// a dead world (or worse, hung).
void expect_unanimous(const LegOutcome& leg) {
  EXPECT_EQ(leg.any_aborted(), leg.all_aborted())
      << "fault abort was not unanimous across ranks";
}

TEST(FaultSweep, DropDupReorderAcrossQueriesAndRankCounts) {
  const auto g = sweep_graph();

  // Clean references, one per query (fixpoints are rank-count invariant,
  // so one reference serves both rank counts).
  std::vector<Tuple> reference[3];
  for (const Query q : {Query::kSssp, Query::kCc, Query::kTc}) {
    const auto leg = run_leg(q, 4, vmpi::RunOptions{}, g);
    ASSERT_FALSE(leg.any_aborted()) << query_name(q) << " clean run aborted";
    ASSERT_FALSE(leg.rows.empty());
    reference[static_cast<int>(q)] = leg.rows;
  }

  struct FaultKind {
    const char* name;
    vmpi::FaultPlan plan;
    bool expect_heal;  // drops must show retransmits > 0; dup/reorder need none
  };
  vmpi::FaultPlan drop;
  drop.seed = 41;
  drop.drop_prob = 0.02;
  vmpi::FaultPlan dup;
  dup.seed = 42;
  dup.dup_prob = 0.10;
  vmpi::FaultPlan reorder;
  reorder.seed = 43;
  reorder.delay_prob = 0.10;
  reorder.max_delay_msgs = 3;
  const FaultKind kinds[] = {
      {"drop", drop, /*expect_heal=*/true},
      {"dup", dup, /*expect_heal=*/false},
      {"reorder", reorder, /*expect_heal=*/false},
  };

  for (const auto& kind : kinds) {
    for (const Query q : {Query::kSssp, Query::kCc, Query::kTc}) {
      for (const int ranks : {4, 7}) {
        SCOPED_TRACE(std::string(kind.name) + " x " + query_name(q) + " x " +
                     std::to_string(ranks) + " ranks");
        vmpi::RunOptions options;
        options.fault = kind.plan;
        options.watchdog_seconds = kWatchdog;
        const auto leg = run_leg(q, ranks, options, g);
        expect_unanimous(leg);
        // Under the default retry budget every class heals or is absorbed:
        // the run completes and the fixpoint is bit-identical.  Drops must
        // really have exercised the ack/retransmit machinery.
        EXPECT_FALSE(leg.any_aborted()) << leg.fault_what[0];
        EXPECT_EQ(leg.rows, reference[static_cast<int>(q)]);
        if (kind.expect_heal) {
          EXPECT_GT(leg.total_retransmits(), 0u)
              << "drops healed without a single retransmit?";
        }
      }
    }
  }

  // Legacy fail-stop: retry disabled restores the PR 5 contract — a
  // dropped frame starves a matched receive and the watchdog converts
  // that into a typed abort on every rank.
  for (const Query q : {Query::kSssp, Query::kCc, Query::kTc}) {
    SCOPED_TRACE(std::string("legacy drop x ") + query_name(q));
    auto options = legacy_options();
    options.fault = drop;
    options.watchdog_seconds = 2.0;  // abort arrives via timeout; keep it short
    const auto leg = run_leg(q, 4, options, g);
    expect_unanimous(leg);
    EXPECT_TRUE(leg.all_aborted());
    EXPECT_FALSE(leg.fault_what[0].empty());
    EXPECT_EQ(leg.total_retransmits(), 0u) << "legacy mode must never retransmit";
  }
}

TEST(FaultSweep, CorruptFramesRaiseTypedDecodeErrorOnSealedPath) {
  // overlap_flush routes the router's tuple frames over ialltoallv — the
  // mailbox (faultable) path — and those frames carry the CRC trailer, so
  // a flipped payload byte must surface as FrameDecodeError, never as a
  // silently wrong fixpoint.  Retry is pinned off: this test exercises the
  // sealed-frame CRC layer *beneath* the reliable channel, which would
  // otherwise catch the corruption first and heal it.
  const auto g = sweep_graph();
  const auto clean = run_leg(Query::kSssp, 4, vmpi::RunOptions{}, g,
                             [](queries::QueryTuning& t) {
                               t.engine.exchange = core::ExchangeAlgorithm::kDense;
                               t.engine.overlap_flush = true;
                             });
  ASSERT_FALSE(clean.any_aborted());

  auto options = legacy_options();
  options.fault.seed = 44;
  options.fault.corrupt_prob = 0.05;
  options.watchdog_seconds = kWatchdog;
  const auto leg = run_leg(Query::kSssp, 4, options, g, [](queries::QueryTuning& t) {
    t.engine.exchange = core::ExchangeAlgorithm::kDense;
    t.engine.overlap_flush = true;
  });
  expect_unanimous(leg);
  if (leg.all_aborted()) {
    EXPECT_FALSE(leg.fault_what[0].empty());
  } else {
    // Every corrupted byte happened to land in an unsealed (empty) frame:
    // then nothing was damaged and the fixpoint must still be exact.
    EXPECT_EQ(leg.rows, clean.rows);
  }
}

TEST(FaultSweep, BruckRelayHealsCorruptAndDropInjection) {
  // The Bruck dissemination relays other ranks' sealed frames inside its
  // own envelopes over the mailbox path, so injection must reach it — and
  // the reliable channel must heal it: a dropped relay retransmits after
  // backoff, a flipped byte fails the envelope CRC and is NACKed back for
  // retransmission.  Either way the fixpoint is bit-identical.  With retry
  // disabled the legacy contract holds: a dropped relay starves a round
  // into a unanimous typed abort.
  const auto g = sweep_graph();
  const auto clean = run_leg(Query::kSssp, 4, vmpi::RunOptions{}, g);
  ASSERT_FALSE(clean.any_aborted());

  {
    vmpi::RunOptions options;
    options.fault.seed = 48;
    options.fault.drop_prob = 0.10;
    options.watchdog_seconds = kWatchdog;
    const auto leg = run_leg(Query::kSssp, 4, options, g);
    expect_unanimous(leg);
    EXPECT_FALSE(leg.any_aborted()) << leg.fault_what[0];
    EXPECT_EQ(leg.rows, clean.rows);
    EXPECT_GT(leg.total_retransmits(), 0u);
  }
  {
    vmpi::RunOptions options;
    options.fault.seed = 49;
    options.fault.corrupt_prob = 0.05;
    options.watchdog_seconds = kWatchdog;
    const auto leg = run_leg(Query::kSssp, 4, options, g);
    expect_unanimous(leg);
    EXPECT_FALSE(leg.any_aborted()) << leg.fault_what[0];
    EXPECT_EQ(leg.rows, clean.rows);
    EXPECT_GT(leg.total_retransmits(), 0u);
  }
  {
    auto options = legacy_options();
    options.fault.seed = 48;
    options.fault.drop_prob = 0.10;
    options.watchdog_seconds = 2.0;
    const auto leg = run_leg(Query::kSssp, 4, options, g);
    expect_unanimous(leg);
    EXPECT_TRUE(leg.all_aborted());
    EXPECT_FALSE(leg.fault_what[0].empty());
  }
}

TEST(FaultSweep, HierarchicalExchangeHealsCorruptAndDropInjection) {
  // The two-level exchange moves tuples over three legs — member->leader
  // up-frames, the leaders-only ialltoallv, and leader->member down-frames
  // — all sealed and all on the faultable mailbox path, so all three legs
  // ride the reliable channel: a drop retransmits after backoff, a corrupt
  // byte is NACKed and resent, and the fixpoint stays bit-identical.  With
  // retry disabled a drop starves a blocking receive into the legacy
  // unanimous typed abort.
  const auto g = sweep_graph();
  const auto hier = [](queries::QueryTuning& t) {
    t.engine.exchange = core::ExchangeAlgorithm::kHierarchical;
  };
  vmpi::RunOptions base;
  base.topology = vmpi::Topology::grouped(4, 2);
  const auto clean = run_leg(Query::kSssp, 4, base, g, hier);
  ASSERT_FALSE(clean.any_aborted());
  ASSERT_FALSE(clean.rows.empty());

  {
    auto options = base;
    options.fault.seed = 50;
    options.fault.drop_prob = 0.02;
    options.watchdog_seconds = kWatchdog;
    const auto leg = run_leg(Query::kSssp, 4, options, g, hier);
    expect_unanimous(leg);
    EXPECT_FALSE(leg.any_aborted()) << leg.fault_what[0];
    EXPECT_EQ(leg.rows, clean.rows);
    EXPECT_GT(leg.total_retransmits(), 0u);
  }
  {
    auto options = base;
    options.fault.seed = 51;
    options.fault.corrupt_prob = 0.05;
    options.watchdog_seconds = kWatchdog;
    const auto leg = run_leg(Query::kSssp, 4, options, g, hier);
    expect_unanimous(leg);
    EXPECT_FALSE(leg.any_aborted()) << leg.fault_what[0];
    EXPECT_EQ(leg.rows, clean.rows);
    EXPECT_GT(leg.total_retransmits(), 0u);
  }
  {
    auto options = base;
    options.retry.max_attempts = 0;
    options.fault.seed = 50;
    options.fault.drop_prob = 0.02;
    options.watchdog_seconds = 2.0;
    const auto leg = run_leg(Query::kSssp, 4, options, g, hier);
    expect_unanimous(leg);
    EXPECT_TRUE(leg.all_aborted());
    EXPECT_FALSE(leg.fault_what[0].empty());
  }
}

TEST(FaultSweep, ScheduleReplaysExactlyFromSeed) {
  // Retry pinned off: retransmit timers fire on wall-clock backoff, so a
  // healing run's *physical* send schedule (and therefore its per-send
  // fault rolls) is timing-dependent.  The logical replay guarantee for
  // healing runs is covered by test_reliable's counter-determinism test;
  // here we pin the legacy transport and demand exact physical replay.
  const auto g = sweep_graph();
  auto options = legacy_options();
  options.fault.seed = 45;
  options.fault.dup_prob = 0.08;
  options.fault.delay_prob = 0.08;
  options.watchdog_seconds = kWatchdog;

  auto counters = [&](std::vector<vmpi::CommStats>& per_rank) {
    std::vector<Tuple> rows;
    vmpi::run_collect(
        4, options,
        [&](vmpi::Comm& comm) {
          queries::QueryTuning tuning;
          tuning.engine.exchange = core::ExchangeAlgorithm::kBruck;
          queries::SsspOptions opts;
          opts.sources = {0};
          opts.tuning = tuning;
          opts.collect_distances = true;
          auto r = run_sssp(comm, g, opts);
          ASSERT_FALSE(r.run.aborted_fault) << r.run.fault_what;
          if (comm.rank() == 0) rows = std::move(r.distances);
        },
        per_rank);
    return rows;
  };

  std::vector<vmpi::CommStats> first_stats;
  std::vector<vmpi::CommStats> second_stats;
  const auto first_rows = counters(first_stats);
  const auto second_rows = counters(second_stats);

  EXPECT_EQ(first_rows, second_rows);
  ASSERT_EQ(first_stats.size(), second_stats.size());
  std::uint64_t total_faults = 0;
  for (std::size_t r = 0; r < first_stats.size(); ++r) {
    // The BSP schedule is SPMD-deterministic, so the same seed must
    // reproduce the exact same fault decisions message for message.
    EXPECT_EQ(first_stats[r].faults_duplicated, second_stats[r].faults_duplicated);
    EXPECT_EQ(first_stats[r].faults_delayed, second_stats[r].faults_delayed);
    EXPECT_EQ(first_stats[r].dup_frames_discarded, second_stats[r].dup_frames_discarded);
    total_faults += first_stats[r].faults_duplicated + first_stats[r].faults_delayed;
  }
  EXPECT_GT(total_faults, 0u) << "fault plan injected nothing; the sweep tested nothing";
}

// ---- hang-free detection ----------------------------------------------------

TEST(Watchdog, InjectedRankDeathAbortsEveryPeerTyped) {
  const auto g = sweep_graph();
  vmpi::RunOptions options;
  options.fault.kill_rank = 1;
  options.fault.kill_epoch = 2;
  options.watchdog_seconds = kWatchdog;
  const auto leg = run_leg(Query::kSssp, 4, options, g);
  EXPECT_TRUE(leg.all_aborted());
  // The victim reports its injected death; peers report the starvation it
  // caused.  Both are typed (FaultError), so callers need one catch site.
  EXPECT_NE(leg.fault_what[1].find("injected death"), std::string::npos)
      << leg.fault_what[1];
}

TEST(Watchdog, StalledRankDelaysButDoesNotFailTheRun) {
  const auto g = sweep_graph();
  vmpi::RunOptions options;
  options.fault.stall_rank = 2;
  options.fault.stall_epoch = 1;
  options.fault.stall_seconds = 0.3;  // well under the watchdog
  options.watchdog_seconds = kWatchdog;
  const auto clean = run_leg(Query::kSssp, 4, vmpi::RunOptions{}, g);
  const auto leg = run_leg(Query::kSssp, 4, options, g);
  EXPECT_FALSE(leg.any_aborted()) << leg.fault_what[0];
  EXPECT_EQ(leg.rows, clean.rows);
}

TEST(Watchdog, BareRecvStarvationRaisesTimeoutWithStatsSnapshot) {
  vmpi::RunOptions options;
  options.watchdog_seconds = 0.4;
  EXPECT_THROW(
      vmpi::run(2, options,
                [&](vmpi::Comm& comm) {
                  if (comm.rank() == 0) {
                    try {
                      (void)comm.recv(1, 7);  // rank 1 never sends
                    } catch (const vmpi::TimeoutError& e) {
                      // Rank 1's own barrier watchdog may fire first and
                      // poison the world, so accept either recv flavour.
                      EXPECT_EQ(e.where.rfind("recv", 0), 0u) << e.where;
                      EXPECT_DOUBLE_EQ(e.deadline_seconds, 0.4);
                      throw;
                    }
                  } else {
                    // Poisoned by rank 0's timeout: the barrier must not
                    // hang.  Depending on who wakes us first we see the
                    // fault poisoning (TimeoutError) or the runtime's
                    // peer-abort (WorldAborted) — either is a typed,
                    // hang-free outcome.
                    EXPECT_ANY_THROW(comm.barrier());
                  }
                }),
      vmpi::TimeoutError);
}

// ---- async engine under faults ---------------------------------------------

LegOutcome run_async_sssp(int ranks, const vmpi::RunOptions& options,
                          const graph::Graph& g) {
  return run_leg(Query::kSssp, ranks, options, g, [](queries::QueryTuning& t) {
    t.use_async = true;
  });
}

TEST(AsyncFaults, DupAndReorderReachBitIdenticalFixpoint) {
  const auto g = sweep_graph();
  const auto clean = run_async_sssp(4, vmpi::RunOptions{}, g);
  ASSERT_FALSE(clean.any_aborted()) << clean.fault_what[0];

  for (const int ranks : {4, 7}) {
    vmpi::RunOptions options;
    options.fault.seed = 46;
    options.fault.dup_prob = 0.10;
    options.fault.delay_prob = 0.10;
    options.watchdog_seconds = kWatchdog;
    SCOPED_TRACE("async dup+reorder at " + std::to_string(ranks) + " ranks");
    const auto leg = run_async_sssp(ranks, options, g);
    // Injected duplicates must be invisible: the wire sequence dedup
    // drops them before the Safra counters see them, so termination
    // still fires and the lattice fixpoint is exact.
    EXPECT_FALSE(leg.any_aborted()) << leg.fault_what[0];
    EXPECT_EQ(leg.rows, clean.rows);
  }
}

TEST(AsyncFaults, DroppedDeltasHealToExactFixpoint) {
  // Async deltas and the Safra token ride the same reliable channel as
  // BSP frames: a dropped delta retransmits after backoff, the Safra
  // counters stay balanced, and termination fires on the bit-identical
  // lattice fixpoint — with real healing traffic on the wire.
  const auto g = sweep_graph();
  const auto clean = run_async_sssp(4, vmpi::RunOptions{}, g);
  ASSERT_FALSE(clean.any_aborted()) << clean.fault_what[0];

  for (const int ranks : {4, 7}) {
    SCOPED_TRACE("async drop at " + std::to_string(ranks) + " ranks");
    vmpi::RunOptions options;
    options.fault.seed = 47;
    options.fault.drop_prob = 0.05;
    options.watchdog_seconds = kWatchdog;
    const auto leg = run_async_sssp(ranks, options, g);
    expect_unanimous(leg);
    EXPECT_FALSE(leg.any_aborted()) << leg.fault_what[0];
    EXPECT_EQ(leg.rows, clean.rows);
    EXPECT_GT(leg.total_retransmits(), 0u);
  }
}

TEST(AsyncFaults, LegacyDroppedDeltasStarveTerminationIntoTypedAbort) {
  const auto g = sweep_graph();
  auto options = legacy_options();
  options.fault.seed = 47;
  options.fault.drop_prob = 0.05;
  options.watchdog_seconds = 2.0;
  const auto leg = run_async_sssp(4, options, g);
  expect_unanimous(leg);
  // With retry disabled, a dropped delta unbalances the Safra counters
  // forever: tokens keep circulating (so per-recv watchdogs see traffic)
  // but no app progress happens — the progress watchdog must turn that
  // livelock into a typed abort.
  EXPECT_TRUE(leg.all_aborted());
  EXPECT_FALSE(leg.fault_what[0].empty());
}

TEST(AsyncFaults, RankDeathStarvesTokenRingIntoTypedAbort) {
  const auto g = sweep_graph();
  vmpi::RunOptions options;
  options.fault.kill_rank = 2;
  options.fault.kill_epoch = 1;
  options.watchdog_seconds = 2.0;
  const auto leg = run_async_sssp(4, options, g);
  EXPECT_TRUE(leg.all_aborted());
  EXPECT_NE(leg.fault_what[2].find("injected death"), std::string::npos)
      << leg.fault_what[2];
}

// ---- stale-synchronous mode under faults ------------------------------------
//
// SSP's exactly-once contract is precisely a fault-tolerance claim: the
// per-source epoch ledger must discard injected duplicates and absorb
// bounded reorder *before* the fold, so every (source, epoch) partial is
// folded exactly once and the fixpoint stays bit-identical to the BSP
// oracle.  Drops still abort typed — a missing partial starves the epoch
// pipeline, never fabricates a wrong sum.

template <typename TuningFn>
LegOutcome run_pagerank_leg(int ranks, const vmpi::RunOptions& options,
                            const graph::Graph& g, TuningFn&& tuning_fn) {
  LegOutcome out;
  out.aborted.assign(static_cast<std::size_t>(ranks), 0);
  out.fault_what.resize(static_cast<std::size_t>(ranks));
  vmpi::run(ranks, options, [&](vmpi::Comm& comm) {
    queries::PagerankOptions opts;
    opts.rounds = 6;
    opts.collect_ranks = true;
    tuning_fn(opts.tuning);
    auto r = run_pagerank(comm, g, opts);
    if (comm.rank() == 0) out.rows = std::move(r.ranks);
    const auto me = static_cast<std::size_t>(comm.rank());
    out.aborted[me] = r.run.aborted_fault ? 1 : 0;
    out.fault_what[me] = r.run.fault_what;
  });
  return out;
}

/// SSP SUM-reachability (walk counting, kRefresh $SUM) run directly on the
/// AsyncEngine so the per-rank exactly-once counters stay visible.
struct SspWalkOutcome {
  LegOutcome leg;
  std::vector<std::uint64_t> epochs_folded;     // per rank
  std::vector<std::uint64_t> partials_folded;   // per rank
  std::vector<std::uint64_t> ledger_discards;   // per rank
  std::vector<std::uint64_t> wire_dups;         // per rank: reliable-layer discards
  [[nodiscard]] std::uint64_t wire_dups_total() const {
    std::uint64_t s = 0;
    for (const auto d : wire_dups) s += d;
    return s;
  }
};

SspWalkOutcome run_ssp_walk(int ranks, const vmpi::RunOptions& options,
                            const graph::Graph& g, std::size_t epochs) {
  SspWalkOutcome out;
  out.leg.aborted.assign(static_cast<std::size_t>(ranks), 0);
  out.leg.fault_what.resize(static_cast<std::size_t>(ranks));
  out.epochs_folded.assign(static_cast<std::size_t>(ranks), 0);
  out.partials_folded.assign(static_cast<std::size_t>(ranks), 0);
  out.ledger_discards.assign(static_cast<std::size_t>(ranks), 0);
  out.wire_dups.assign(static_cast<std::size_t>(ranks), 0);
  out.leg.retransmits.assign(static_cast<std::size_t>(ranks), 0);
  out.leg.nacks.assign(static_cast<std::size_t>(ranks), 0);
  vmpi::run(ranks, options, [&](vmpi::Comm& comm) {
    core::Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 2, .jcc = 1});
    auto* seed = program.relation({.name = "seed", .arity = 1, .jcc = 1});
    auto* paths = program.relation({.name = "paths",
                                    .arity = 2,
                                    .jcc = 1,
                                    .dep_arity = 1,
                                    .aggregator = core::make_sum_aggregator(),
                                    .agg_mode = core::AggMode::kRefresh});
    auto& s = program.stratum();
    s.fixpoint = false;
    s.max_rounds = epochs;
    s.loop_rules.push_back(core::CopyRule{
        .src = seed,
        .version = core::Version::kFull,
        .out = {.target = paths, .cols = {core::Expr::col_a(0), core::Expr::constant(1)}},
    });
    s.loop_rules.push_back(core::JoinRule{
        .a = paths,
        .a_version = core::Version::kFull,
        .b = edge,
        .b_version = core::Version::kFull,
        .out = {.target = paths, .cols = {core::Expr::col_b(1), core::Expr::col_a(1)}},
    });
    edge->load_facts(queries::edge_slice(comm, g, /*weighted=*/false));
    std::vector<Tuple> seeds;
    if (comm.rank() == 0) {
      seeds.push_back(Tuple{0});
      seeds.push_back(Tuple{1});
    }
    seed->load_facts(seeds);

    async::AsyncConfig cfg;
    cfg.ssp = true;
    cfg.ssp_staleness = 2;
    async::AsyncEngine engine(comm, cfg);
    const auto run = engine.run(program);

    const auto me = static_cast<std::size_t>(comm.rank());
    out.leg.aborted[me] = run.aborted_fault ? 1 : 0;
    out.leg.fault_what[me] = run.fault_what;
    const auto& ls = engine.loop_stats();
    out.epochs_folded[me] = ls.ssp_epochs;
    out.partials_folded[me] = ls.ssp_partials_folded;
    out.ledger_discards[me] = ls.ssp_ledger_discards;
    out.wire_dups[me] = comm.stats().reliable_dups_discarded;
    out.leg.retransmits[me] = comm.stats().retransmits;
    out.leg.nacks[me] = comm.stats().nacks_sent;
    if (!run.aborted_fault) {
      auto rows = paths->gather_to_root(0);
      if (comm.rank() == 0) out.leg.rows = std::move(rows);
    }
  });
  return out;
}

TEST(SspFaults, DupAndReorderReachBitIdenticalPagerank) {
  const auto g = sweep_graph();
  // BSP oracle: the fixpoint SSP must reproduce bit-for-bit.
  const auto oracle = run_pagerank_leg(4, vmpi::RunOptions{}, g,
                                       [](queries::QueryTuning&) {});
  ASSERT_FALSE(oracle.any_aborted());
  ASSERT_FALSE(oracle.rows.empty());

  for (const int ranks : {4, 7}) {
    SCOPED_TRACE("ssp pagerank dup+reorder at " + std::to_string(ranks) + " ranks");
    vmpi::RunOptions options;
    options.fault.seed = 48;
    options.fault.dup_prob = 0.10;
    options.fault.delay_prob = 0.10;
    options.watchdog_seconds = kWatchdog;
    const auto leg = run_pagerank_leg(ranks, options, g, [](queries::QueryTuning& t) {
      t.use_async = true;
      t.async.ssp = true;
      t.async.ssp_staleness = 2;
    });
    EXPECT_FALSE(leg.any_aborted()) << leg.fault_what[0];
    EXPECT_EQ(leg.rows, oracle.rows);
  }
}

TEST(SspFaults, DupAndReorderFoldEachSourceEpochExactlyOnce) {
  const auto g = sweep_graph();
  constexpr std::size_t kEpochs = 5;
  const auto clean = run_ssp_walk(4, vmpi::RunOptions{}, g, kEpochs);
  ASSERT_FALSE(clean.leg.any_aborted()) << clean.leg.fault_what[0];
  ASSERT_FALSE(clean.leg.rows.empty());

  for (const bool legacy : {false, true}) {
    for (const int ranks : {4, 7}) {
      SCOPED_TRACE(std::string(legacy ? "legacy" : "reliable") +
                   " ssp walk dup+reorder at " + std::to_string(ranks) + " ranks");
      vmpi::RunOptions options;
      if (legacy) options.retry.max_attempts = 0;
      options.fault.seed = 49;
      options.fault.dup_prob = 0.15;
      options.fault.delay_prob = 0.10;
      options.watchdog_seconds = kWatchdog;
      const auto out = run_ssp_walk(ranks, options, g, kEpochs);
      EXPECT_FALSE(out.leg.any_aborted()) << out.leg.fault_what[0];
      EXPECT_EQ(out.leg.rows, clean.leg.rows);  // $SUM survived duplication exactly

      std::uint64_t discards_total = 0;
      for (int r = 0; r < ranks; ++r) {
        // The exactly-once invariant, per rank: every epoch folded once,
        // with exactly one partial per source rank — no matter what the
        // fault plan injected or which transport absorbed it.
        EXPECT_EQ(out.epochs_folded[static_cast<std::size_t>(r)], kEpochs) << "rank " << r;
        EXPECT_EQ(out.partials_folded[static_cast<std::size_t>(r)],
                  static_cast<std::uint64_t>(ranks) * kEpochs)
            << "rank " << r;
        discards_total += out.ledger_discards[static_cast<std::size_t>(r)];
      }
      if (legacy) {
        // Without the reliable channel the injected duplicates reach the
        // epoch ledger, which must really catch them (otherwise this test
        // proves nothing).
        EXPECT_GT(discards_total, 0u);
      } else {
        // The reliable channel's sequence dedup discards wire duplicates
        // before the ledger ever sees them — the defence moved down a
        // layer, but it must still have fired.
        EXPECT_GT(out.wire_dups_total() + discards_total, 0u);
      }
    }
  }
}

TEST(SspFaults, DroppedFramesHealToExactSums) {
  // SSP partials and probes ride the reliable channel too: a dropped
  // partial retransmits, the fold gate opens on schedule, and every epoch
  // still folds exactly once with the exact $SUM — healing must never
  // manufacture a duplicate fold.
  const auto g = sweep_graph();
  constexpr std::size_t kEpochs = 5;
  const auto clean = run_ssp_walk(4, vmpi::RunOptions{}, g, kEpochs);
  ASSERT_FALSE(clean.leg.any_aborted()) << clean.leg.fault_what[0];

  for (const int ranks : {4, 7}) {
    SCOPED_TRACE("ssp drop heal at " + std::to_string(ranks) + " ranks");
    vmpi::RunOptions options;
    options.fault.seed = 50;
    options.fault.drop_prob = 0.05;
    options.watchdog_seconds = kWatchdog;
    const auto out = run_ssp_walk(ranks, options, g, kEpochs);
    expect_unanimous(out.leg);
    EXPECT_FALSE(out.leg.any_aborted()) << out.leg.fault_what[0];
    EXPECT_EQ(out.leg.rows, clean.leg.rows);
    EXPECT_GT(out.leg.total_retransmits(), 0u);
    for (int r = 0; r < ranks; ++r) {
      EXPECT_EQ(out.epochs_folded[static_cast<std::size_t>(r)], kEpochs) << "rank " << r;
      EXPECT_EQ(out.partials_folded[static_cast<std::size_t>(r)],
                static_cast<std::uint64_t>(ranks) * kEpochs)
          << "rank " << r;
    }
  }
}

TEST(SspFaults, LegacyDroppedFramesStarveEpochPipelineIntoTypedAbort) {
  const auto g = sweep_graph();
  auto options = legacy_options();
  options.fault.seed = 50;
  options.fault.drop_prob = 0.05;
  options.watchdog_seconds = 2.0;
  const auto out = run_ssp_walk(4, options, g, /*epochs=*/5);
  expect_unanimous(out.leg);
  // With retry disabled, a dropped probe or partial leaves an epoch's
  // ledger permanently short: the fold gate never opens, tokens keep
  // circulating without app progress, and the progress watchdog must
  // convert the starved pipeline into a typed abort — never a partial
  // (wrong) sum.
  EXPECT_TRUE(out.leg.all_aborted());
  EXPECT_FALSE(out.leg.fault_what[0].empty());
}

// ---- checkpoint / restart ---------------------------------------------------

/// Kill a rank mid-run with checkpointing on, then resume from the
/// manifest at `resume_ranks` and compare against the clean fixpoint.
template <typename RunFn>
void kill_and_resume(const char* tag, const std::string& path, RunFn&& leg,
                     std::uint64_t kill_epoch) {
  // Clean reference at 4 ranks.
  std::vector<Tuple> reference;
  {
    queries::QueryTuning tuning;
    vmpi::run(4, [&](vmpi::Comm& comm) {
      auto rows = leg(comm, tuning);
      if (comm.rank() == 0) reference = std::move(rows);
    });
    ASSERT_FALSE(reference.empty()) << tag;
  }

  // Faulted run: checkpoint every iteration, kill rank 1 at `kill_epoch`.
  {
    vmpi::RunOptions options;
    options.fault.kill_rank = 1;
    options.fault.kill_epoch = kill_epoch;
    options.watchdog_seconds = kWatchdog;
    std::vector<int> aborted(4, 0);
    vmpi::run(4, options, [&](vmpi::Comm& comm) {
      queries::QueryTuning tuning;
      tuning.engine.checkpoint_every = 1;
      tuning.engine.checkpoint_path = path;
      (void)leg(comm, tuning);
      aborted[static_cast<std::size_t>(comm.rank())] = 1;  // returned, no hang
    });
    for (const int a : aborted) EXPECT_EQ(a, 1) << tag;
  }

  // Resume at the same and at a coprime rank count: both must finish the
  // run and land on the bit-identical fixpoint.
  for (const int ranks : {4, 7}) {
    SCOPED_TRACE(std::string(tag) + ": resume at " + std::to_string(ranks) + " ranks");
    queries::QueryTuning tuning;
    tuning.resume_manifest = path;
    std::vector<Tuple> resumed;
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      auto rows = leg(comm, tuning);
      if (comm.rank() == 0) resumed = std::move(rows);
    });
    EXPECT_EQ(resumed, reference);
  }
  std::remove(path.c_str());
}

TEST(CheckpointRestart, SsspKillAndResumeBitIdentical) {
  const auto g = graph::make_chain(48);
  kill_and_resume(
      "sssp", testing::TempDir() + "/paralagg_resume_sssp.bin",
      [&](vmpi::Comm& comm, const queries::QueryTuning& tuning) {
        queries::SsspOptions opts;
        opts.sources = {0};
        opts.tuning = tuning;
        opts.collect_distances = true;
        auto r = run_sssp(comm, g, opts);
        EXPECT_FALSE(r.run.aborted_fault && tuning.engine.checkpoint_every == 0);
        return std::move(r.distances);
      },
      /*kill_epoch=*/5);
}

TEST(CheckpointRestart, CcKillAndResumeBitIdentical) {
  const auto g = graph::make_chain(48);
  kill_and_resume(
      "cc", testing::TempDir() + "/paralagg_resume_cc.bin",
      [&](vmpi::Comm& comm, const queries::QueryTuning& tuning) {
        queries::CcOptions opts;
        opts.tuning = tuning;
        opts.collect_labels = true;
        auto r = run_cc(comm, g, opts);
        return std::move(r.labels);
      },
      /*kill_epoch=*/5);
}

TEST(CheckpointRestart, TcKillAndResumeBitIdentical) {
  const auto g = graph::make_chain(24);
  kill_and_resume(
      "tc", testing::TempDir() + "/paralagg_resume_tc.bin",
      [&](vmpi::Comm& comm, const queries::QueryTuning& tuning) {
        queries::TcOptions opts;
        opts.tuning = tuning;
        opts.collect_pairs = true;
        auto r = run_tc(comm, g, opts);
        return std::move(r.pairs);
      },
      /*kill_epoch=*/5);
}

TEST(CheckpointRestart, PagerankKillAndResumeBitIdentical) {
  const auto g = sweep_graph();
  kill_and_resume(
      "pagerank", testing::TempDir() + "/paralagg_resume_pagerank.bin",
      [&](vmpi::Comm& comm, const queries::QueryTuning& tuning) {
        queries::PagerankOptions opts;
        opts.rounds = 8;
        opts.tuning = tuning;
        opts.collect_ranks = true;
        auto r = run_pagerank(comm, g, opts);
        return std::move(r.ranks);
      },
      /*kill_epoch=*/4);
}

}  // namespace
}  // namespace paralagg

// Property-based sweeps: engine-level invariants that must hold across a
// grid of (graph family, size, rank count, tuning) combinations.
//
// Each property is one TEST_P over the cartesian sweep:
//   * SSSP distances equal Dijkstra's (total correctness)
//   * triangle inequality: dist(s, v) <= dist(s, u) + w(u, v) for every edge
//   * CC labels are component-minimal fixpoints
//   * |cc| is linear in nodes (the collapse property)
//   * communication accounting is internally consistent

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "queries/cc.hpp"
#include "queries/reference.hpp"
#include "queries/sssp.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg::queries {
namespace {

struct SweepParam {
  const char* family;
  std::uint64_t size;
  int ranks;
  int sub_buckets;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(info.param.family) + "_n" + std::to_string(info.param.size) + "_r" +
         std::to_string(info.param.ranks) + "_s" + std::to_string(info.param.sub_buckets);
}

graph::Graph make_family(const SweepParam& p) {
  const std::string f = p.family;
  if (f == "rmat") {
    int scale = 1;
    while ((1ULL << scale) < p.size) ++scale;
    return graph::make_rmat({.scale = scale, .edge_factor = 5, .seed = p.seed});
  }
  if (f == "grid") {
    const auto side = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(p.size)));
    return graph::make_grid(side, side, 10, p.seed);
  }
  if (f == "chain") return graph::make_chain(p.size, 10, p.seed);
  if (f == "er") return graph::make_erdos_renyi(p.size, p.size * 5, 20, p.seed);
  if (f == "star") return graph::make_star(p.size, 10, p.seed);
  return graph::make_random_tree(p.size, 10, p.seed);
}

class QuerySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(QuerySweep, SsspMatchesDijkstra) {
  const auto p = GetParam();
  const auto g = make_family(p);
  const auto sources = g.pick_sources(2, p.seed);
  const auto oracle = reference::sssp(g, sources);
  vmpi::run(p.ranks, [&](vmpi::Comm& comm) {
    SsspOptions opts;
    opts.sources = sources;
    opts.tuning.edge_sub_buckets = p.sub_buckets;
    opts.collect_distances = true;
    const auto result = run_sssp(comm, g, opts);
    EXPECT_EQ(result.path_count, oracle.size());
    if (comm.rank() == 0) {
      for (const auto& row : result.distances) {
        const auto it = oracle.find({row[1], row[0]});
        ASSERT_NE(it, oracle.end());
        EXPECT_EQ(row[2], it->second);
      }
    }
  });
}

TEST_P(QuerySweep, SsspSatisfiesTriangleInequality) {
  const auto p = GetParam();
  const auto g = make_family(p);
  const auto sources = g.pick_sources(1, p.seed);
  vmpi::run(p.ranks, [&](vmpi::Comm& comm) {
    SsspOptions opts;
    opts.sources = sources;
    opts.tuning.edge_sub_buckets = p.sub_buckets;
    opts.collect_distances = true;
    const auto result = run_sssp(comm, g, opts);
    if (comm.rank() == 0) {
      // dist[(from, to)] from the collected stored-order rows.
      std::map<std::pair<value_t, value_t>, value_t> dist;
      for (const auto& row : result.distances) dist[{row[1], row[0]}] = row[2];
      for (const value_t s : sources) {
        for (const auto& e : g.edges) {
          const auto du = dist.find({s, e.src});
          if (du == dist.end()) continue;
          const auto dv = dist.find({s, e.dst});
          // Edge relaxed at fixpoint: dv exists and is tight.
          ASSERT_NE(dv, dist.end());
          EXPECT_LE(dv->second, du->second + e.weight);
        }
      }
    }
  });
}

TEST_P(QuerySweep, CcLabelsAreMinimalFixpoints) {
  const auto p = GetParam();
  const auto g = make_family(p);
  const auto oracle = reference::cc_labels(g);
  vmpi::run(p.ranks, [&](vmpi::Comm& comm) {
    CcOptions opts;
    opts.tuning.edge_sub_buckets = p.sub_buckets;
    opts.collect_labels = true;
    const auto result = run_cc(comm, g, opts);
    // Collapse property: one row per edge-incident node, never a product.
    EXPECT_EQ(result.labelled_nodes, oracle.size());
    if (comm.rank() == 0) {
      std::map<value_t, value_t> got;
      for (const auto& row : result.labels) got[row[0]] = row[1];
      for (const auto& [node, label] : got) {
        const auto it = oracle.find(node);
        ASSERT_NE(it, oracle.end());
        EXPECT_EQ(label, it->second) << "node " << node;
        EXPECT_LE(label, node);  // labels are component minima
      }
      // Fixpoint: both endpoints of every edge share a label.
      for (const auto& e : g.edges) {
        EXPECT_EQ(got.at(e.src), got.at(e.dst));
      }
    }
  });
}

TEST_P(QuerySweep, CommunicationAccountingConsistent) {
  const auto p = GetParam();
  const auto g = make_family(p);
  const auto sources = g.pick_sources(1, p.seed);
  vmpi::run(p.ranks, [&](vmpi::Comm& comm) {
    SsspOptions opts;
    opts.sources = sources;
    opts.tuning.edge_sub_buckets = p.sub_buckets;
    const auto result = run_sssp(comm, g, opts);
    // Phase-attributed bytes can never exceed the comm layer's total (the
    // engine-side attribution only sees engine phases).
    EXPECT_LE(result.run.profile.bytes_total(),
              result.run.comm_total.total_remote_bytes());
    // Single rank: nothing is remote.
    if (comm.size() == 1) {
      EXPECT_EQ(result.run.comm_total.total_remote_bytes(), 0u);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QuerySweep,
    ::testing::Values(SweepParam{"rmat", 256, 4, 1, 31}, SweepParam{"rmat", 512, 7, 4, 32},
                      SweepParam{"grid", 64, 4, 1, 33}, SweepParam{"grid", 100, 3, 2, 34},
                      SweepParam{"chain", 50, 2, 1, 35}, SweepParam{"er", 120, 5, 1, 36},
                      SweepParam{"er", 200, 4, 8, 37}, SweepParam{"star", 300, 6, 4, 38},
                      SweepParam{"tree", 150, 4, 1, 39}, SweepParam{"rmat", 256, 1, 1, 40},
                      SweepParam{"rmat", 1024, 16, 8, 41}, SweepParam{"grid", 144, 9, 1, 42},
                      SweepParam{"chain", 120, 12, 1, 43}, SweepParam{"er", 64, 16, 2, 44},
                      SweepParam{"tree", 400, 6, 4, 45}, SweepParam{"star", 100, 3, 8, 46}),
    param_name);

}  // namespace
}  // namespace paralagg::queries

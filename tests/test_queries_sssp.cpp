// SSSP end to end: distributed recursive $MIN aggregation vs. Dijkstra.

#include "queries/sssp.hpp"

#include <gtest/gtest.h>

#include <map>

#include "queries/reference.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg::queries {
namespace {

/// Run SSSP at `ranks` and compare every (from, to, dist) row against the
/// Dijkstra oracle.
void expect_matches_oracle(const graph::Graph& g, const std::vector<value_t>& sources,
                           int ranks, QueryTuning tuning = {}) {
  const auto oracle = reference::sssp(g, sources);
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    SsspOptions opts;
    opts.sources = sources;
    opts.tuning = tuning;
    opts.collect_distances = true;
    const auto result = run_sssp(comm, g, opts);
    EXPECT_EQ(result.path_count, oracle.size());
    if (comm.rank() == 0) {
      ASSERT_EQ(result.distances.size(), oracle.size());
      for (const auto& row : result.distances) {
        // Stored order: (to, from, dist).
        const auto it = oracle.find({row[1], row[0]});
        ASSERT_NE(it, oracle.end())
            << "unexpected pair from=" << row[1] << " to=" << row[0];
        EXPECT_EQ(row[2], it->second) << "from=" << row[1] << " to=" << row[0];
      }
    }
  });
}

TEST(Sssp, ChainSingleSource) {
  expect_matches_oracle(graph::make_chain(20, 10, 3), {0}, 2);
}

TEST(Sssp, GridSingleSource) {
  expect_matches_oracle(graph::make_grid(8, 8, 10, 4), {0}, 4);
}

TEST(Sssp, TreeMultiSource) {
  const auto g = graph::make_random_tree(200, 10, 5);
  expect_matches_oracle(g, g.pick_sources(5), 4);
}

TEST(Sssp, RmatMultiSource) {
  const auto g = graph::make_rmat({.scale = 9, .edge_factor = 6, .seed = 6});
  expect_matches_oracle(g, g.pick_sources(3), 4);
}

TEST(Sssp, WeightedCyclesCollapse) {
  // Cycles + weights: the case vanilla Datalog cannot terminate on.
  const auto g = graph::make_erdos_renyi(150, 900, 50, 7);
  expect_matches_oracle(g, {1, 2}, 4);
}

TEST(Sssp, DisconnectedTargetsAbsent) {
  // Two components; paths must not cross.
  const auto g = graph::make_components(2, 20, 10, 8);
  const auto oracle = reference::sssp(g, {0});
  vmpi::run(2, [&](vmpi::Comm& comm) {
    SsspOptions opts;
    opts.sources = {0};
    opts.collect_distances = true;
    const auto result = run_sssp(comm, g, opts);
    if (comm.rank() == 0) {
      for (const auto& row : result.distances) {
        EXPECT_LT(row[0], 20u) << "path escaped component 0";
      }
      EXPECT_EQ(result.distances.size(), oracle.size());
    }
  });
}

TEST(Sssp, BaselineTuningIsStillCorrect) {
  // Disabling the paper's optimizations must never change answers.
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 5, .seed = 9});
  expect_matches_oracle(g, g.pick_sources(2), 4, QueryTuning::baseline());
}

TEST(Sssp, SubBucketedEdgesAreStillCorrect) {
  QueryTuning tuning;
  tuning.edge_sub_buckets = 8;
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 5, .seed = 10});
  expect_matches_oracle(g, g.pick_sources(2), 8, tuning);
}

TEST(Sssp, IterationCountTracksDepth) {
  // Unweighted chain of n nodes needs ~n iterations (long-tail dynamic of
  // Fig. 7); RMAT needs few (short diameter).
  const auto chain = graph::make_chain(60, 1, 1);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    SsspOptions opts;
    opts.sources = {0};
    const auto result = run_sssp(comm, chain, opts);
    EXPECT_GE(result.iterations, 59u);
    EXPECT_LE(result.iterations, 61u);
  });
}

TEST(Sssp, EmptySourcesGiveEmptyResult) {
  const auto g = graph::make_chain(5);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    SsspOptions opts;  // no sources
    const auto result = run_sssp(comm, g, opts);
    EXPECT_EQ(result.path_count, 0u);
  });
}

TEST(Sssp, StarHotSpot) {
  // Extreme skew: every edge shares the source.  Correctness must survive
  // the hot bucket (with and without sub-bucketing).
  const auto g = graph::make_star(500, 10, 11);
  expect_matches_oracle(g, {0}, 4);
  QueryTuning balanced;
  balanced.edge_sub_buckets = 4;
  expect_matches_oracle(g, {0}, 4, balanced);
}

TEST(Sssp, ResultIdenticalAcrossRankCounts) {
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 6, .seed = 12});
  const auto sources = g.pick_sources(2);
  std::map<int, std::vector<Tuple>> per_ranks;
  for (const int ranks : {1, 2, 5, 8}) {
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      SsspOptions opts;
      opts.sources = sources;
      opts.collect_distances = true;
      const auto result = run_sssp(comm, g, opts);
      if (comm.rank() == 0) per_ranks[ranks] = result.distances;
    });
  }
  for (const auto& [ranks, rows] : per_ranks) {
    EXPECT_EQ(rows, per_ranks.at(1)) << "ranks=" << ranks;
  }
}

TEST(Sssp, BruckExchangeMatchesDense) {
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 5, .seed = 14});
  const auto sources = g.pick_sources(2, 3);
  std::vector<Tuple> dense_rows, bruck_rows;
  std::uint64_t dense_msgs = 0, bruck_msgs = 0;
  vmpi::run(8, [&](vmpi::Comm& comm) {
    SsspOptions opts;
    opts.sources = sources;
    opts.collect_distances = true;
    const auto dense = run_sssp(comm, g, opts);
    opts.tuning.engine.exchange = core::ExchangeAlgorithm::kBruck;
    const auto bruck = run_sssp(comm, g, opts);
    if (comm.rank() == 0) {
      dense_rows = dense.distances;
      bruck_rows = bruck.distances;
      dense_msgs = dense.run.comm_total.messages_sent;
      bruck_msgs = bruck.run.comm_total.messages_sent;
    }
  });
  EXPECT_EQ(bruck_rows, dense_rows);
  // The dense matrix exchange sends no p2p messages on vmpi; Bruck routes
  // everything through log-round p2p relays.
  EXPECT_EQ(dense_msgs, 0u);
  EXPECT_GT(bruck_msgs, 0u);
}

TEST(Sssp, CommunicationAvoidanceNoExtraAggTraffic) {
  // The headline property: the aggregated relation adds no communication
  // beyond what a plain relation would pay.  We verify the strong form:
  // with aligned distributions, the intra-bucket phase is all-local and
  // the only remote traffic is the all-to-all of generated tuples, the
  // vote, and termination detection.
  const auto g = graph::make_grid(10, 10, 5, 13);
  vmpi::run(4, [&](vmpi::Comm& comm) {
    SsspOptions opts;
    opts.sources = {0};
    opts.tuning.balance_edges = false;  // keep distributions aligned
    const auto result = run_sssp(comm, g, opts);
    const auto& prof = result.run.profile;
    EXPECT_EQ(prof.total_bytes[static_cast<std::size_t>(core::Phase::kIntraBucket)], 0u)
        << "intra-bucket exchange should be local with aligned layouts";
    EXPECT_GT(prof.total_bytes[static_cast<std::size_t>(core::Phase::kAllToAll)], 0u);
  });
}

}  // namespace
}  // namespace paralagg::queries

// Graph generators, IO, and the dataset zoo.

#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include "graph/io.hpp"
#include "graph/zoo.hpp"

namespace paralagg::graph {
namespace {

TEST(Rng, DeterministicAndSpread) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(Rng(42).next(), c.next());
  std::set<std::uint64_t> seen;
  Rng r(7);
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(1'000'000));
  EXPECT_GT(seen.size(), 990u);
  for (int i = 0; i < 100; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rmat, ShapeAndDeterminism) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  const Graph g = make_rmat(p);
  EXPECT_EQ(g.num_nodes, 1024u);
  EXPECT_EQ(g.num_edges(), 8192u);
  for (const auto& e : g.edges) {
    EXPECT_LT(e.src, g.num_nodes);
    EXPECT_LT(e.dst, g.num_nodes);
    EXPECT_NE(e.src, e.dst);  // self loops dropped
    EXPECT_GE(e.weight, 1u);
    EXPECT_LE(e.weight, p.max_weight);
  }
  EXPECT_EQ(make_rmat(p).edges, g.edges);  // same seed, same graph
  p.seed = 99;
  EXPECT_NE(make_rmat(p).edges, g.edges);
}

TEST(Rmat, PowerLawSkewExceedsUniform) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  const Graph rmat = make_rmat(p);
  const Graph er = make_erdos_renyi(1 << 12, rmat.num_edges());
  // The whole reason RMAT stands in for Twitter: hub skew.
  EXPECT_GT(rmat.degree_skew(), 4.0 * er.degree_skew());
}

TEST(ErdosRenyi, ShapeAndNoSelfLoops) {
  const Graph g = make_erdos_renyi(100, 500, 10, 3);
  EXPECT_EQ(g.num_nodes, 100u);
  EXPECT_EQ(g.num_edges(), 500u);
  for (const auto& e : g.edges) EXPECT_NE(e.src, e.dst);
}

TEST(Grid, MeshStructure) {
  const Graph g = make_grid(5, 4);
  EXPECT_EQ(g.num_nodes, 20u);
  // 2 * (horizontal (w-1)*h + vertical w*(h-1)) = 2 * (16 + 15) = 62.
  EXPECT_EQ(g.num_edges(), 62u);
  // Meshes are balanced: low skew.
  EXPECT_LT(g.degree_skew(), 2.0);
}

TEST(Chain, PathGraph) {
  const Graph g = make_chain(10);
  EXPECT_EQ(g.num_edges(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(g.edges[i].src, i);
    EXPECT_EQ(g.edges[i].dst, i + 1);
  }
}

TEST(Star, HubHoldsEverything) {
  const Graph g = make_star(100);
  EXPECT_EQ(g.num_edges(), 100u);
  for (const auto& e : g.edges) EXPECT_EQ(e.src, 0u);
  // degree_skew averages over *source* nodes, of which a star has exactly
  // one — the skew a star exposes is in the bucket distribution, not here.
  EXPECT_EQ(g.source_nodes().size(), 1u);
  EXPECT_DOUBLE_EQ(g.degree_skew(), 1.0);
}

TEST(Complete, AllPairs) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 30u);
}

TEST(RandomTree, ParentsPrecedeChildren) {
  const Graph g = make_random_tree(50);
  EXPECT_EQ(g.num_edges(), 49u);
  for (const auto& e : g.edges) EXPECT_LT(e.src, e.dst);
}

TEST(Components, DisjointByConstruction) {
  const Graph g = make_components(4, 10, 5);
  EXPECT_EQ(g.num_nodes, 40u);
  for (const auto& e : g.edges) {
    EXPECT_EQ(e.src / 10, e.dst / 10);  // never cross component boundaries
  }
}

TEST(PlantHub, ExactDegreeAndDeterminism) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  Graph g = make_rmat(p);
  const std::uint64_t m = g.num_edges();
  plant_hub(g, 0.25, 3, 11);
  EXPECT_EQ(g.num_edges(), m);  // rewrites edges, never adds or drops
  std::uint64_t hub_degree = 0;
  for (const auto& e : g.edges) {
    if (e.src == 3) ++hub_degree;
    EXPECT_NE(e.src, e.dst);  // rewiring must not introduce self loops
  }
  EXPECT_EQ(hub_degree, static_cast<std::uint64_t>(0.25 * static_cast<double>(m) + 0.5));
  EXPECT_EQ(g.name, "rmat-s10-e8+hub");
  // Same (graph, fraction, hub, seed) rewires the exact same edges — the
  // bench relies on every rank building an identical hubbed graph.
  Graph h = make_rmat(p);
  plant_hub(h, 0.25, 3, 11);
  EXPECT_EQ(h.edges, g.edges);
  Graph other = make_rmat(p);
  plant_hub(other, 0.25, 3, 12);
  EXPECT_NE(other.edges, g.edges);
}

TEST(PlantHub, KeepsLargerExistingDegree) {
  // A star's hub already owns every edge; asking for half of them is a no-op.
  Graph g = make_star(100);
  const auto before = g.edges;
  plant_hub(g, 0.5, 0, 1);
  EXPECT_EQ(g.edges, before);
  EXPECT_EQ(g.name, "star-100+hub");
}

TEST(Graph, SymmetrizedDoublesEdges) {
  const Graph g = make_chain(5);
  const Graph s = g.symmetrized();
  EXPECT_EQ(s.num_edges(), 2 * g.num_edges());
  EXPECT_EQ(s.edges[1], (Edge{1, 0, s.edges[0].weight}));
}

TEST(Graph, SourceNodesSortedUnique) {
  const Graph g = make_star(10);
  const auto srcs = g.source_nodes();
  ASSERT_EQ(srcs.size(), 1u);
  EXPECT_EQ(srcs[0], 0u);
}

TEST(Graph, PickSourcesHaveOutEdges) {
  const Graph g = make_rmat({.scale = 8, .edge_factor = 4});
  const auto sources = g.pick_sources(10);
  EXPECT_FALSE(sources.empty());
  const auto srcs = g.source_nodes();
  for (const auto s : sources) {
    EXPECT_TRUE(std::binary_search(srcs.begin(), srcs.end(), s));
  }
}

TEST(Io, RoundTripsEdgeList) {
  const Graph g = make_erdos_renyi(50, 200, 10, 5);
  const std::string path = testing::TempDir() + "/paralagg_io_test.el";
  write_edge_list(g, path);
  const Graph back = read_edge_list(path, "roundtrip");
  ASSERT_EQ(back.num_edges(), g.num_edges());
  auto a = g.edges;
  auto b = back.edges;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  std::remove(path.c_str());
}

TEST(Io, ParsesCommentsAndDefaultWeight) {
  const std::string path = testing::TempDir() + "/paralagg_io_test2.el";
  {
    std::ofstream out(path);
    out << "# comment\n% matrix-market comment\n1 2\n3 4 9\n";
  }
  const Graph g = read_edge_list(path);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edges[0], (Edge{1, 2, 1}));
  EXPECT_EQ(g.edges[1], (Edge{3, 4, 9}));
  EXPECT_EQ(g.num_nodes, 5u);
  std::remove(path.c_str());
}

TEST(Io, ThrowsOnMissingAndMalformed) {
  EXPECT_THROW(read_edge_list("/nonexistent/nope.el"), std::runtime_error);
  const std::string path = testing::TempDir() + "/paralagg_io_bad.el";
  {
    std::ofstream out(path);
    out << "not an edge\n";
  }
  EXPECT_THROW(read_edge_list(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Zoo, Table2HasEightPaperRows) {
  const auto& zoo = table2_zoo();
  ASSERT_EQ(zoo.size(), 8u);
  EXPECT_EQ(zoo[0].paper_graph, "flickr");
  EXPECT_EQ(zoo[7].paper_graph, "stokes");
  // Paper edge counts must ascend roughly as in Table II (flickr smallest).
  EXPECT_LT(zoo[0].paper_edges, zoo[6].paper_edges);
}

TEST(Zoo, StandInsGenerateAndKeepRelativeOrder) {
  const auto& zoo = table2_zoo();
  std::vector<std::size_t> sizes;
  for (const auto& entry : zoo) {
    const Graph g = entry.make();
    EXPECT_GT(g.num_edges(), 10'000u) << entry.name;
    EXPECT_EQ(g.name, entry.name);
    sizes.push_back(g.num_edges());
  }
  // Largest stand-in is the arabic one, as in the paper.
  EXPECT_EQ(*std::max_element(sizes.begin(), sizes.end()), sizes[6]);
}

TEST(Zoo, SocialStandInsAreSkewedMeshesAreNot) {
  const auto& zoo = table2_zoo();
  const Graph flickr = zoo[0].make();   // social
  const Graph mesh = zoo[4].make();     // ml-geer (grid)
  EXPECT_GT(flickr.degree_skew(), 5.0);
  EXPECT_LT(mesh.degree_skew(), 2.0);
}

TEST(Zoo, TwitterLikeIsTheMostSkewed) {
  const Graph tw = make_twitter_like(12, 8);
  const Graph lj = make_livejournal_like();
  EXPECT_GT(tw.degree_skew(), lj.degree_skew());
}

}  // namespace
}  // namespace paralagg::graph

// Stress and endurance: high rank counts, long fixpoints, wide tuples,
// many-relation programs, repeated in-process runs, failure injection.

#include <gtest/gtest.h>

#include <stdexcept>

#include "queries/cc.hpp"
#include "queries/reference.hpp"
#include "queries/sssp.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg {
namespace {

using core::Expr;
using core::JoinRule;
using core::Program;
using core::Relation;
using core::Tuple;
using core::value_t;
using core::Version;

TEST(Stress, NinetySixRanksSmallGraph) {
  // More ranks than useful work: every collective still has to hold up.
  const auto g = graph::make_erdos_renyi(300, 1500, 10, 51);
  const auto oracle = queries::reference::cc_count(g);
  vmpi::run(96, [&](vmpi::Comm& comm) {
    const auto result = queries::run_cc(comm, g, queries::CcOptions{});
    EXPECT_EQ(result.component_count, oracle);
  });
}

TEST(Stress, ThousandIterationFixpoint) {
  // A 1,001-node chain: the fixpoint needs 1,000 iterations, each with its
  // full complement of collectives (plan, exchanges, termination).
  const auto g = graph::make_chain(1001, 1, 52);
  vmpi::run(4, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = {0};
    const auto result = run_sssp(comm, g, opts);
    EXPECT_EQ(result.path_count, 1001u);
    EXPECT_GE(result.iterations, 1000u);
  });
}

TEST(Stress, WideTuplesThroughTheFullPipeline) {
  // Arity-10 tuples spill Tuple's inline storage; the whole
  // serialize/route/stage/materialize path must handle heap tuples.
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Program program(comm);
    auto* wide = program.relation({.name = "wide", .arity = 10, .jcc = 2});
    auto* out = program.relation({.name = "out", .arity = 10, .jcc = 2});
    auto& s = program.stratum();
    core::OutputSpec spec{.target = out, .cols = {}};
    for (std::size_t c = 0; c < 10; ++c) spec.cols.push_back(Expr::col_a(9 - c));
    s.init_rules.push_back(core::CopyRule{
        .src = wide, .version = Version::kFull, .out = std::move(spec)});

    std::vector<Tuple> facts;
    if (comm.rank() == 0) {
      for (value_t i = 0; i < 500; ++i) {
        Tuple t;
        for (value_t c = 0; c < 10; ++c) t.push_back(i * 100 + c);
        facts.push_back(std::move(t));
      }
    }
    wide->load_facts(facts);
    core::Engine engine(comm);
    engine.run(program);
    EXPECT_EQ(out->global_size(Version::kFull), 500u);
    const auto rows = out->gather_to_root(0);
    if (comm.rank() == 0) {
      for (const auto& row : rows) {
        ASSERT_EQ(row.size(), 10u);
        for (std::size_t c = 1; c < 10; ++c) EXPECT_EQ(row[c - 1], row[c] + 1);
      }
    }
  });
}

TEST(Stress, ManyRelationManyRuleProgram) {
  // A pipeline of 8 relations chained by 7 loop rules plus inits; exercises
  // rule ordering, multi-target materialization, and termination over a
  // compound delta.
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 2, .jcc = 1});
    std::vector<Relation*> layers;
    for (int i = 0; i < 7; ++i) {
      layers.push_back(program.relation(
          {.name = "layer" + std::to_string(i), .arity = 2, .jcc = 1}));
    }
    auto& s = program.stratum();
    s.init_rules.push_back(core::CopyRule{
        .src = edge,
        .version = Version::kFull,
        .out = {.target = layers[0], .cols = {Expr::col_a(0), Expr::col_a(1)}}});
    // layer[i+1](x, z) <- layer[i](x, y)... chained one-hop extensions, all
    // live in the same stratum.
    for (int i = 0; i + 1 < 7; ++i) {
      s.loop_rules.push_back(JoinRule{
          .a = layers[static_cast<std::size_t>(i)],
          .a_version = Version::kDelta,
          .b = edge,
          .b_version = Version::kFull,
          .out = {.target = layers[static_cast<std::size_t>(i) + 1],
                  .cols = {Expr::col_b(1), Expr::col_a(1)}}});
    }

    // Cycle of 12: layer[i] ends up holding all pairs at hop distance i+1
    // (rotated); every layer has exactly 12 tuples.
    std::vector<Tuple> facts;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 12; ++v) facts.push_back(Tuple{v, (v + 1) % 12});
    }
    edge->load_facts(facts);
    core::Engine engine(comm);
    const auto result = engine.run(program);
    EXPECT_TRUE(result.strata[0].reached_fixpoint);
    for (auto* layer : layers) {
      EXPECT_EQ(layer->global_size(Version::kFull), 12u) << layer->name();
    }
  });
}

TEST(Stress, RepeatedRunsInOneProcess) {
  // Back-to-back worlds: no state may leak between vmpi::run invocations.
  const auto g = graph::make_rmat({.scale = 7, .edge_factor = 4, .seed = 53});
  std::uint64_t first = 0;
  for (int repeat = 0; repeat < 10; ++repeat) {
    vmpi::run(3, [&](vmpi::Comm& comm) {
      const auto result = queries::run_cc(comm, g, queries::CcOptions{});
      if (comm.rank() == 0) {
        if (repeat == 0) {
          first = result.component_count;
        } else {
          EXPECT_EQ(result.component_count, first);
        }
      }
    });
  }
}

TEST(Stress, HeavySkewManySubBuckets) {
  // Star graph (everything in one bucket), fan-out beyond rank count.
  const auto g = graph::make_star(2000, 10, 54);
  const auto oracle = queries::reference::sssp(g, {0});
  vmpi::run(8, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = {0};
    opts.tuning.edge_sub_buckets = 16;  // > ranks
    const auto result = run_sssp(comm, g, opts);
    EXPECT_EQ(result.path_count, oracle.size());
  });
}

TEST(FailureInjection, ExceptionInsideQueryPropagatesWithoutHanging) {
  const auto g = graph::make_chain(50, 5, 55);
  EXPECT_THROW(
      vmpi::run(4,
                [&](vmpi::Comm& comm) {
                  queries::SsspOptions opts;
                  opts.sources = {0};
                  if (comm.rank() == 2) {
                    throw std::runtime_error("rank 2 lost its node");
                  }
                  (void)run_sssp(comm, g, opts);  // blocks in collectives
                }),
      std::runtime_error);
}

TEST(FailureInjection, LateExceptionAfterCollectiveWork) {
  const auto g = graph::make_chain(30, 5, 56);
  EXPECT_THROW(
      vmpi::run(4,
                [&](vmpi::Comm& comm) {
                  queries::SsspOptions opts;
                  opts.sources = {0};
                  const auto result = run_sssp(comm, g, opts);
                  if (comm.rank() == 1) {
                    throw std::runtime_error("post-run failure");
                  }
                  // Other ranks continue into another collective.
                  (void)comm.allreduce<std::uint64_t>(result.path_count,
                                                      vmpi::ReduceOp::kSum);
                }),
      std::runtime_error);
}

TEST(FailureInjection, WorldUsableAfterFailedRun) {
  // A failed run must not poison subsequent runs (fresh World each time).
  EXPECT_THROW(vmpi::run(3,
                         [&](vmpi::Comm& comm) {
                           if (comm.rank() == 0) throw std::runtime_error("boom");
                           comm.barrier();
                         }),
               std::runtime_error);
  vmpi::run(3, [&](vmpi::Comm& comm) {
    EXPECT_EQ(comm.allreduce<int>(1, vmpi::ReduceOp::kSum), 3);
  });
}

}  // namespace
}  // namespace paralagg

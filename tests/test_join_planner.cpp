// Dynamic join planning: Algorithm 1's vote and its fixed-policy bypasses.

#include "core/join_planner.hpp"

#include <gtest/gtest.h>

#include "vmpi/runtime.hpp"

namespace paralagg::core {
namespace {

TEST(JoinPlanner, FixedPoliciesSkipTheVote) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    const auto a = plan_join_order(comm, JoinOrderPolicy::kFixedAOuter, 1000, 1);
    EXPECT_TRUE(a.a_outer);
    EXPECT_FALSE(a.voted);
    const auto b = plan_join_order(comm, JoinOrderPolicy::kFixedBOuter, 1, 1000);
    EXPECT_FALSE(b.a_outer);
    EXPECT_FALSE(b.voted);
  });
}

TEST(JoinPlanner, UnanimousVotePicksSmallerSide) {
  vmpi::run(8, [&](vmpi::Comm& comm) {
    // A is smaller everywhere -> A becomes the outer (shipped) relation.
    const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic, 10, 1000);
    EXPECT_TRUE(d.a_outer);
    EXPECT_TRUE(d.voted);
    EXPECT_EQ(d.votes_for_a, 8);

    const auto e = plan_join_order(comm, JoinOrderPolicy::kDynamic, 1000, 10);
    EXPECT_FALSE(e.a_outer);
    EXPECT_EQ(e.votes_for_a, 0);
  });
}

TEST(JoinPlanner, MajorityDecidesUnderDisagreement) {
  vmpi::run(5, [&](vmpi::Comm& comm) {
    // Ranks 0-2 see A smaller (vote A), ranks 3-4 see B smaller.
    const bool a_smaller_here = comm.rank() <= 2;
    const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic,
                                   a_smaller_here ? 1 : 100, a_smaller_here ? 100 : 1);
    EXPECT_TRUE(d.a_outer);  // 3 of 5 votes
    EXPECT_EQ(d.votes_for_a, 3);
  });
}

TEST(JoinPlanner, MinorityLoses) {
  vmpi::run(5, [&](vmpi::Comm& comm) {
    const bool a_smaller_here = comm.rank() <= 1;  // only 2 of 5
    const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic,
                                   a_smaller_here ? 1 : 100, a_smaller_here ? 100 : 1);
    EXPECT_FALSE(d.a_outer);
    EXPECT_EQ(d.votes_for_a, 2);
  });
}

TEST(JoinPlanner, TiesPreferA) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    const bool a_smaller_here = comm.rank() < 2;  // 2 vs 2
    const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic,
                                   a_smaller_here ? 1 : 100, a_smaller_here ? 100 : 1);
    EXPECT_TRUE(d.a_outer);  // votes (2) >= ceil(4/2)
  });
}

TEST(JoinPlanner, EqualSizesVoteForA) {
  vmpi::run(3, [&](vmpi::Comm& comm) {
    const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic, 50, 50);
    EXPECT_TRUE(d.a_outer);
    EXPECT_EQ(d.votes_for_a, 3);
  });
}

TEST(JoinPlanner, AllRanksAgreeOnTheDecision) {
  // The whole point of the Allreduce: every rank must reach the same
  // conclusion even with wildly different local views.
  vmpi::run(8, [&](vmpi::Comm& comm) {
    const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic,
                                   static_cast<std::size_t>(comm.rank() * 100),
                                   static_cast<std::size_t>((7 - comm.rank()) * 100));
    const auto all = comm.allgather<std::uint8_t>(d.a_outer ? 1 : 0);
    for (auto v : all) EXPECT_EQ(v, all[0]);
  });
}

TEST(JoinPlanner, VoteCostsOneIntegerPerRank) {
  std::vector<vmpi::CommStats> per_rank;
  vmpi::run_collect(
      8,
      [&](vmpi::Comm& comm) {
        (void)plan_join_order(comm, JoinOrderPolicy::kDynamic, 3, 4);
      },
      per_rank);
  for (const auto& st : per_rank) {
    EXPECT_EQ(st.remote_bytes(vmpi::Op::kAllreduce), sizeof(std::uint32_t) * 7);
  }
}

}  // namespace
}  // namespace paralagg::core

// Dynamic join planning: Algorithm 1's vote and its fixed-policy bypasses.

#include "core/join_planner.hpp"

#include <gtest/gtest.h>

#include "vmpi/runtime.hpp"

namespace paralagg::core {
namespace {

TEST(JoinPlanner, FixedPoliciesSkipTheVote) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    const auto a = plan_join_order(comm, JoinOrderPolicy::kFixedAOuter, 1000, 1);
    EXPECT_TRUE(a.a_outer);
    EXPECT_FALSE(a.voted);
    const auto b = plan_join_order(comm, JoinOrderPolicy::kFixedBOuter, 1, 1000);
    EXPECT_FALSE(b.a_outer);
    EXPECT_FALSE(b.voted);
  });
}

TEST(JoinPlanner, UnanimousVotePicksSmallerSide) {
  vmpi::run(8, [&](vmpi::Comm& comm) {
    // A is smaller everywhere -> A becomes the outer (shipped) relation.
    const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic, 10, 1000);
    EXPECT_TRUE(d.a_outer);
    EXPECT_TRUE(d.voted);
    EXPECT_EQ(d.votes_for_a, 8);

    const auto e = plan_join_order(comm, JoinOrderPolicy::kDynamic, 1000, 10);
    EXPECT_FALSE(e.a_outer);
    EXPECT_EQ(e.votes_for_a, 0);
  });
}

TEST(JoinPlanner, MajorityDecidesUnderDisagreement) {
  vmpi::run(5, [&](vmpi::Comm& comm) {
    // Ranks 0-2 see A smaller (vote A), ranks 3-4 see B smaller.
    const bool a_smaller_here = comm.rank() <= 2;
    const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic,
                                   a_smaller_here ? 1 : 100, a_smaller_here ? 100 : 1);
    EXPECT_TRUE(d.a_outer);  // 3 of 5 votes
    EXPECT_EQ(d.votes_for_a, 3);
  });
}

TEST(JoinPlanner, MinorityLoses) {
  vmpi::run(5, [&](vmpi::Comm& comm) {
    const bool a_smaller_here = comm.rank() <= 1;  // only 2 of 5
    const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic,
                                   a_smaller_here ? 1 : 100, a_smaller_here ? 100 : 1);
    EXPECT_FALSE(d.a_outer);
    EXPECT_EQ(d.votes_for_a, 2);
  });
}

TEST(JoinPlanner, TiesPreferA) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    const bool a_smaller_here = comm.rank() < 2;  // 2 vs 2
    const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic,
                                   a_smaller_here ? 1 : 100, a_smaller_here ? 100 : 1);
    EXPECT_TRUE(d.a_outer);  // votes (2) >= ceil(4/2)
  });
}

TEST(JoinPlanner, EqualSizesVoteForA) {
  vmpi::run(3, [&](vmpi::Comm& comm) {
    const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic, 50, 50);
    EXPECT_TRUE(d.a_outer);
    EXPECT_EQ(d.votes_for_a, 3);
  });
}

TEST(JoinPlanner, AllRanksAgreeOnTheDecision) {
  // The whole point of the Allreduce: every rank must reach the same
  // conclusion even with wildly different local views.
  vmpi::run(8, [&](vmpi::Comm& comm) {
    const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic,
                                   static_cast<std::size_t>(comm.rank() * 100),
                                   static_cast<std::size_t>((7 - comm.rank()) * 100));
    const auto all = comm.allgather<std::uint8_t>(d.a_outer ? 1 : 0);
    for (auto v : all) EXPECT_EQ(v, all[0]);
  });
}

TEST(JoinPlanner, ExactlySplitVotesAgreeOnAForEveryEvenWorld) {
  // Regression guard on the tie-break: with an even world and votes split
  // exactly in half, votes == n/2 == ceil(n/2), so A must win — and, more
  // importantly, every rank must compute the SAME winner regardless of
  // which half it sits in.
  for (const int n : {2, 4, 6, 8}) {
    vmpi::run(n, [&](vmpi::Comm& comm) {
      const bool a_smaller_here = comm.rank() < comm.size() / 2;
      const auto d = plan_join_order(comm, JoinOrderPolicy::kDynamic,
                                     a_smaller_here ? 1 : 100, a_smaller_here ? 100 : 1);
      EXPECT_TRUE(d.a_outer) << "world=" << n << " rank=" << comm.rank();
      EXPECT_EQ(d.votes_for_a, comm.size() / 2);
      const auto all = comm.allgather<std::uint8_t>(d.a_outer ? 1 : 0);
      for (auto v : all) EXPECT_EQ(v, all[0]) << "world=" << n;
    });
  }
}

TEST(JoinPlanner, AdversarialSizeVectorsAgreeUnderAllPolicies) {
  // Per-rank size vectors crafted to disagree maximally: huge-vs-zero
  // flips, equal sizes (which vote A), and a lone dissenter.  Under every
  // policy all ranks must land on one decision, and the fixed policies
  // must ignore the sizes entirely.
  struct Case {
    std::size_t a, b;
  };
  const auto sizes_for = [](int rank) -> Case {
    switch (rank % 5) {
      case 0: return {0, 1'000'000};            // strongly A
      case 1: return {1'000'000, 0};            // strongly B
      case 2: return {42, 42};                  // equal -> votes A
      case 3: return {std::size_t{1} << 40, 1}; // strongly B, huge values
      default: return {1, std::size_t{1} << 40}; // strongly A, huge values
    }
  };
  for (const auto policy : {JoinOrderPolicy::kDynamic, JoinOrderPolicy::kFixedAOuter,
                            JoinOrderPolicy::kFixedBOuter}) {
    vmpi::run(7, [&](vmpi::Comm& comm) {
      const auto c = sizes_for(comm.rank());
      const auto d = plan_join_order(comm, policy, c.a, c.b);
      const auto all = comm.allgather<std::uint8_t>(d.a_outer ? 1 : 0);
      for (auto v : all) EXPECT_EQ(v, all[0]);
      switch (policy) {
        case JoinOrderPolicy::kFixedAOuter:
          EXPECT_TRUE(d.a_outer);
          EXPECT_FALSE(d.voted);
          break;
        case JoinOrderPolicy::kFixedBOuter:
          EXPECT_FALSE(d.a_outer);
          EXPECT_FALSE(d.voted);
          break;
        case JoinOrderPolicy::kDynamic:
          // Ranks 0, 2, 4, 5, 6 prefer A (rank%5 in {0,2,4} plus 5->0, 6->1
          // wraps: 5%5=0 votes A, 6%5=1 votes B) => votes 0,2,4,5 = 4 of 7.
          EXPECT_TRUE(d.voted);
          EXPECT_EQ(d.votes_for_a, 4);
          EXPECT_TRUE(d.a_outer);
          break;
      }
    });
  }
}

TEST(JoinPlanner, VoteCostsOneIntegerPerRank) {
  std::vector<vmpi::CommStats> per_rank;
  vmpi::run_collect(
      8,
      [&](vmpi::Comm& comm) {
        (void)plan_join_order(comm, JoinOrderPolicy::kDynamic, 3, 4);
      },
      per_rank);
  for (const auto& st : per_rank) {
    EXPECT_EQ(st.remote_bytes(vmpi::Op::kAllreduce), sizeof(std::uint32_t) * 7);
  }
}

}  // namespace
}  // namespace paralagg::core

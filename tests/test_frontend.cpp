// Datalog frontend: lexing/parsing, semantic analysis, stratification,
// index selection, and end-to-end equivalence with the hand-written
// queries and sequential oracles.

#include "frontend/compiler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "queries/reference.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg::frontend {
namespace {

using core::Tuple;
using core::value_t;

// ---- parser ---------------------------------------------------------------------

TEST(Parser, DeclWithMarkersAndAggregate) {
  const auto ast = parse_program(R"(
    .decl edge(x, y, w) input
    .decl spath(f, t, d min) output
  )");
  ASSERT_EQ(ast.decls.size(), 2u);
  EXPECT_EQ(ast.decls[0].name, "edge");
  EXPECT_TRUE(ast.decls[0].is_input);
  EXPECT_FALSE(ast.decls[0].is_output);
  EXPECT_EQ(ast.decls[0].columns.size(), 3u);
  EXPECT_EQ(ast.decls[1].agg, AggKind::kMin);
  EXPECT_EQ(ast.decls[1].agg_column, 2u);
  EXPECT_TRUE(ast.decls[1].is_output);
}

TEST(Parser, RulesFactsAndComments) {
  const auto ast = parse_program(R"(
    // transitive closure
    .decl edge(x, y) input
    .decl path(x, y) output
    path(x, y) :- edge(x, y).   # copy
    path(x, z) :- path(x, y), edge(y, z).
    edge(1, 2).
    edge(2, 3).
  )");
  ASSERT_EQ(ast.rules.size(), 2u);
  EXPECT_EQ(ast.rules[1].body.size(), 2u);
  ASSERT_EQ(ast.facts.size(), 2u);
  EXPECT_EQ(ast.facts[1].args[1].constant, 3u);
}

TEST(Parser, HeadArithmeticAndConstraints) {
  const auto ast = parse_program(R"(
    .decl e(x, y, w) input
    .decl d(t, v min)
    d(t, a + w) :- d(m, a), e(m, t, w), a < 100, t != m.
  )");
  ASSERT_EQ(ast.rules.size(), 1u);
  const auto& rule = ast.rules[0];
  EXPECT_EQ(rule.body.size(), 2u);
  EXPECT_EQ(rule.constraints.size(), 2u);
  EXPECT_EQ(rule.head.args[1].kind, Term::Kind::kAdd);
  EXPECT_EQ(rule.constraints[0].kind, Constraint::Kind::kLt);
  EXPECT_EQ(rule.constraints[1].kind, Constraint::Kind::kNe);
}

TEST(Parser, MinMaxCallsInHeads) {
  const auto ast = parse_program(R"(
    .decl e(x, y, c) input
    .decl wide(t, c max)
    wide(t, min(a, c)) :- wide(m, a), e(m, t, c).
  )");
  EXPECT_EQ(ast.rules[0].head.args[1].kind, Term::Kind::kMin);
}

TEST(Parser, SyntaxErrorsCarryLines) {
  try {
    parse_program(".decl edge(x, y)\n.decl bad(\n");
    FAIL() << "expected FrontendError";
  } catch (const FrontendError& e) {
    EXPECT_GE(e.line(), 2);  // the open paren's line, or EOF just after
    EXPECT_LE(e.line(), 3);
  }
  EXPECT_THROW(parse_program("path(x) :- edge(x y)."), FrontendError);
  EXPECT_THROW(parse_program(".nonsense foo"), FrontendError);
  EXPECT_THROW(parse_program("edge(1, x)."), FrontendError);  // non-ground fact
}

// ---- analysis errors ---------------------------------------------------------------

TEST(Compile, RejectsSemanticErrors) {
  // Undeclared relation.
  EXPECT_THROW(CompiledProgram::compile("p(x) :- q(x)."), FrontendError);
  // Arity mismatch.
  EXPECT_THROW(CompiledProgram::compile(".decl q(x)\n.decl p(x)\np(x) :- q(x, y)."),
               FrontendError);
  // Wildcard in head.
  EXPECT_THROW(CompiledProgram::compile(".decl q(x) input\n.decl p(x)\np(_) :- q(x)."),
               FrontendError);
  // Unsafe head variable.
  EXPECT_THROW(CompiledProgram::compile(".decl q(x) input\n.decl p(x)\np(z) :- q(x)."),
               FrontendError);
  // Three body atoms.
  EXPECT_THROW(CompiledProgram::compile(
                   ".decl q(x) input\n.decl p(x)\np(x) :- q(x), q(x), q(x)."),
               FrontendError);
  // Cartesian product.
  EXPECT_THROW(
      CompiledProgram::compile(".decl q(x) input\n.decl r(y) input\n.decl p(x, y)\n"
                               "p(x, y) :- q(x), r(y)."),
      FrontendError);
  // Facts for a derived relation.
  EXPECT_THROW(CompiledProgram::compile(".decl q(x) input\n.decl p(x)\np(x) :- q(x).\np(3)."),
               FrontendError);
  // Input in a head.
  EXPECT_THROW(CompiledProgram::compile(".decl q(x) input\nq(x) :- q(x)."), FrontendError);
  // Join on an aggregated column.
  EXPECT_THROW(CompiledProgram::compile(R"(
      .decl e(x, d) input
      .decl p(x, d min)
      .decl out(d)
      out(d) :- p(x, d), e(y, d).
      p(x, d) :- e(x, d).
    )"),
               FrontendError);
  // $SUM inside recursion.
  EXPECT_THROW(CompiledProgram::compile(R"(
      .decl e(x, y) input
      .decl s(x, v sum)
      s(y, v + 1) :- s(x, v), e(x, y).
    )"),
               FrontendError);
}

// ---- stratification & index selection ---------------------------------------------

TEST(Compile, StratifiesByScc) {
  const auto prog = CompiledProgram::compile(R"(
    .decl edge(x, y) input
    .decl tc(x, y)
    .decl big(x)
    tc(x, y) :- edge(x, y).
    tc(x, z) :- tc(x, y), edge(y, z).
    big(x) :- tc(x, y), y < 5.
  )");
  // tc's recursive stratum precedes big's non-recursive one.
  ASSERT_GE(prog.strata().size(), 2u);
  bool saw_recursive = false;
  for (const auto& s : prog.strata()) {
    if (!s.loop.empty()) saw_recursive = true;
    if (!s.init.empty() && saw_recursive) SUCCEED();
  }
  EXPECT_TRUE(saw_recursive);
}

TEST(Compile, CreatesSecondaryIndexWhenJoinPatternsDiffer) {
  // `link` is joined on x in one rule and on y in another: one of the two
  // patterns becomes a secondary index relation with a maintenance rule.
  const auto prog = CompiledProgram::compile(R"(
    .decl link(x, y) input
    .decl fan(a, b)
    .decl fin(a, b)
    fan(a, b) :- link(c, a), link(c, b), a < b.
    fin(a, b) :- link(a, c), link(b, c), a < b.
  )");
  std::size_t secondaries = 0;
  for (const auto& rp : prog.relations()) {
    if (rp.base >= 0) ++secondaries;
  }
  EXPECT_EQ(secondaries, 1u);
}

TEST(Compile, NoIndexWhenPatternsAgree) {
  const auto prog = CompiledProgram::compile(R"(
    .decl edge(x, y) input
    .decl p(x, y)
    p(y, x) :- edge(x, y).
    p(z, x) :- p(y, x), edge(y, z).
  )");
  for (const auto& rp : prog.relations()) EXPECT_LT(rp.base, 0) << rp.name;
}

// ---- end-to-end -----------------------------------------------------------------------

constexpr std::string_view kSsspDl = R"(
  .decl edge(x, y, w) input
  .decl spath(f, t, d min) output
  spath(n, n, 0)      :- source(n).
  spath(f, t2, d + w) :- spath(f, t, d), edge(t, t2, w).
  .decl source(n) input
)";

std::vector<Tuple> edge_rows(const graph::Graph& g, bool weighted, int rank, int size) {
  std::vector<Tuple> out;
  for (std::size_t i = static_cast<std::size_t>(rank); i < g.edges.size();
       i += static_cast<std::size_t>(size)) {
    const auto& e = g.edges[i];
    if (weighted) {
      out.push_back(Tuple{e.src, e.dst, e.weight});
    } else {
      out.push_back(Tuple{e.src, e.dst});
    }
  }
  return out;
}

TEST(EndToEnd, SsspMatchesDijkstra) {
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 5, .seed = 61});
  const auto sources = g.pick_sources(2, 6);
  const auto oracle = queries::reference::sssp(g, sources);
  const auto prog = CompiledProgram::compile(kSsspDl);

  vmpi::run(4, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    inst.load("edge", edge_rows(g, true, comm.rank(), comm.size()));
    std::vector<Tuple> seeds;
    if (comm.rank() == 0) {
      for (const auto s : sources) seeds.push_back(Tuple{s});
    }
    inst.load("source", seeds);
    inst.run();
    EXPECT_EQ(inst.size("spath"), oracle.size());
    const auto rows = inst.gather("spath");
    if (comm.rank() == 0) {
      for (const auto& row : rows) {  // declared order (f, t, d)
        const auto it = oracle.find({row[0], row[1]});
        ASSERT_NE(it, oracle.end());
        EXPECT_EQ(row[2], it->second);
      }
    }
  });
}

TEST(EndToEnd, CcMatchesUnionFind) {
  const auto g = graph::make_components(4, 12, 10, 62);
  const auto oracle = queries::reference::cc_labels(g);
  const auto prog = CompiledProgram::compile(R"(
    .decl edge(x, y) input
    .decl cc(n, rep min) output
    cc(n, n)   :- edge(n, _).
    cc(y, r)   :- cc(x, r), edge(x, y).
  )");
  vmpi::run(4, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    // Symmetrize at load time, as the hand-written query does.
    std::vector<Tuple> rows;
    for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < g.edges.size();
         i += static_cast<std::size_t>(comm.size())) {
      rows.push_back(Tuple{g.edges[i].src, g.edges[i].dst});
      rows.push_back(Tuple{g.edges[i].dst, g.edges[i].src});
    }
    inst.load("edge", rows);
    inst.run();
    const auto labels = inst.gather("cc");
    if (comm.rank() == 0) {
      ASSERT_EQ(labels.size(), oracle.size());
      for (const auto& row : labels) {
        EXPECT_EQ(row[1], oracle.at(row[0])) << "node " << row[0];
      }
    }
  });
}

TEST(EndToEnd, InlineFactsAndTransitiveClosure) {
  const auto prog = CompiledProgram::compile(R"(
    .decl edge(x, y) input
    .decl path(x, y) output
    path(x, y) :- edge(x, y).
    path(x, z) :- path(x, y), edge(y, z).
    edge(1, 2).  edge(2, 3).  edge(3, 4).  edge(4, 2).
  )");
  vmpi::run(3, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    inst.run();
    // 1 reaches {2,3,4}; {2,3,4} is a cycle, each reaching all of {2,3,4}.
    EXPECT_EQ(inst.size("path"), 3u + 9u);
  });
}

TEST(EndToEnd, NonLinearClosureMatchesLinear) {
  const auto g = graph::make_random_tree(60, 1, 63);
  const auto oracle = queries::reference::tc_size(g);
  const auto nonlinear = CompiledProgram::compile(R"(
    .decl edge(x, y) input
    .decl path(x, y) output
    path(x, y) :- edge(x, y).
    path(x, z) :- path(x, y), path(y, z).
  )");
  vmpi::run(4, [&](vmpi::Comm& comm) {
    auto inst = nonlinear.instantiate(comm);
    inst.load("edge", edge_rows(g, false, comm.rank(), comm.size()));
    const auto result = inst.run();
    EXPECT_EQ(inst.size("path"), oracle);
    (void)result;
  });
}

TEST(EndToEnd, MutualRecursion) {
  const auto prog = CompiledProgram::compile(R"(
    .decl edge(x, y) input
    .decl start(n) input
    .decl even(n) output
    .decl odd(n) output
    even(n) :- start(n).
    odd(y)  :- even(x), edge(x, y).
    even(y) :- odd(x), edge(x, y).
  )");
  vmpi::run(3, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    std::vector<Tuple> edges, start;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 6; ++v) edges.push_back(Tuple{v, (v + 1) % 6});
      start.push_back(Tuple{0});
    }
    inst.load("edge", edges);
    inst.load("start", start);
    inst.run();
    const auto evens = inst.gather("even");
    const auto odds = inst.gather("odd");
    if (comm.rank() == 0) {
      ASSERT_EQ(evens.size(), 3u);
      ASSERT_EQ(odds.size(), 3u);
      for (const auto& r : evens) EXPECT_EQ(r[0] % 2, 0u);
      for (const auto& r : odds) EXPECT_EQ(r[0] % 2, 1u);
    }
  });
}

TEST(EndToEnd, SecondaryIndexJoinsAreCorrect) {
  // Wedge counting needs link joined on both x and y; the compiler builds
  // the secondary index and maintenance rules automatically.
  const auto prog = CompiledProgram::compile(R"(
    .decl link(x, y) input
    .decl fan(a, b) output
    .decl fin(a, b) output
    fan(a, b) :- link(c, a), link(c, b), a < b.
    fin(a, b) :- link(a, c), link(b, c), a < b.
  )");
  vmpi::run(4, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    std::vector<Tuple> rows;
    if (comm.rank() == 0) {
      rows = {Tuple{0, 1}, Tuple{0, 2}, Tuple{0, 3}, Tuple{5, 3}, Tuple{6, 3}};
    }
    inst.load("link", rows);
    inst.run();
    // fan: pairs sharing a source: from 0 -> {1,2},{1,3},{2,3}.
    EXPECT_EQ(inst.size("fan"), 3u);
    // fin: pairs sharing a target: into 3 -> {0,5},{0,6},{5,6}.
    EXPECT_EQ(inst.size("fin"), 3u);
    const auto fin = inst.gather("fin");
    if (comm.rank() == 0) {
      ASSERT_EQ(fin.size(), 3u);
      EXPECT_EQ(fin[0], (Tuple{0, 5}));
      EXPECT_EQ(fin[1], (Tuple{0, 6}));
      EXPECT_EQ(fin[2], (Tuple{5, 6}));
    }
  });
}

TEST(EndToEnd, RecursiveRelationWithSecondaryIndex) {
  // tc is joined on its second column inside the recursion (pattern [y])
  // and on its first column by `rooted` (pattern [x]): the compiler must
  // maintain a secondary index of the *recursive* relation via an
  // in-fixpoint delta copy, and the post-fixpoint join must see all of it.
  const auto g = graph::make_chain(12, 1, 64);
  const auto prog = CompiledProgram::compile(R"(
    .decl edge(x, y) input
    .decl roots(x) input
    .decl tc(x, y) output
    .decl rooted(x, y) output
    tc(x, y) :- edge(x, y).
    tc(x, z) :- tc(x, y), edge(y, z).
    rooted(x, y) :- tc(x, y), roots(x).
  )");
  std::size_t secondaries = 0;
  for (const auto& rp : prog.relations()) {
    if (rp.base >= 0) ++secondaries;
  }
  EXPECT_EQ(secondaries, 1u);  // tc@x

  vmpi::run(3, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    inst.load("edge", edge_rows(g, false, comm.rank(), comm.size()));
    std::vector<Tuple> roots;
    if (comm.rank() == 0) roots = {Tuple{0}, Tuple{3}};
    inst.load("roots", roots);
    inst.run();
    // Chain 0..11: tc = all i<j pairs (66); rooted: 11 pairs from 0, 8
    // from 3.
    EXPECT_EQ(inst.size("tc"), 66u);
    EXPECT_EQ(inst.size("rooted"), 19u);
  });
}

TEST(EndToEnd, RepeatedVariablesAndConstants) {
  const auto prog = CompiledProgram::compile(R"(
    .decl e(x, y) input
    .decl selfloop(x) output
    .decl from7(y) output
    selfloop(x) :- e(x, x).
    from7(y) :- e(7, y).
    e(1, 1).  e(1, 2).  e(7, 3).  e(7, 7).
  )");
  vmpi::run(2, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    inst.run();
    const auto loops = inst.gather("selfloop");
    const auto sevens = inst.gather("from7");
    if (comm.rank() == 0) {
      ASSERT_EQ(loops.size(), 2u);  // 1 and 7
      EXPECT_EQ(loops[0][0], 1u);
      EXPECT_EQ(loops[1][0], 7u);
      ASSERT_EQ(sevens.size(), 2u);  // 3 and 7
      EXPECT_EQ(sevens[0][0], 3u);
    }
  });
}

TEST(EndToEnd, MaxAggregateLongestPathOnDag) {
  const auto prog = CompiledProgram::compile(R"(
    .decl edge(x, y, w) input
    .decl long(t, d max) output
    long(n, 0)      :- source(n).
    long(t, d + w)  :- long(m, d), edge(m, t, w).
    .decl source(n) input
  )");
  vmpi::run(3, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    std::vector<Tuple> edges, src;
    if (comm.rank() == 0) {
      // Diamond DAG: 0->1 (1), 0->2 (5), 1->3 (1), 2->3 (1).
      edges = {Tuple{0, 1, 1}, Tuple{0, 2, 5}, Tuple{1, 3, 1}, Tuple{2, 3, 1}};
      src = {Tuple{0}};
    }
    inst.load("edge", edges);
    inst.load("source", src);
    inst.run();
    const auto rows = inst.gather("long");
    if (comm.rank() == 0) {
      std::map<value_t, value_t> d;
      for (const auto& r : rows) d[r[0]] = r[1];
      EXPECT_EQ(d.at(3), 6u);  // longest 0->2->3
    }
  });
}

// ---- stratified negation -----------------------------------------------------------

TEST(Negation, RejectsUnstratifiedAndUnsafe) {
  // Win-move: the classic non-stratified program.
  EXPECT_THROW(CompiledProgram::compile(R"(
      .decl move(x, y) input
      .decl win(x)
      win(x) :- move(x, y), !win(y).
    )"),
               FrontendError);
  // Negation alone is unsafe.
  EXPECT_THROW(CompiledProgram::compile(R"(
      .decl q(x) input
      .decl p(x)
      p(x) :- !q(x).
    )"),
               FrontendError);
  // Variable appearing only under negation.
  EXPECT_THROW(CompiledProgram::compile(R"(
      .decl q(x) input
      .decl r(x, y) input
      .decl p(x)
      p(x) :- q(x), !r(x, z).
    )"),
               FrontendError);
}

TEST(Negation, SetDifference) {
  const auto prog = CompiledProgram::compile(R"(
    .decl all(x) input
    .decl banned(x) input
    .decl ok(x) output
    ok(x) :- all(x), !banned(x).
  )");
  vmpi::run(3, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    std::vector<Tuple> universe, banned;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 30; ++v) universe.push_back(Tuple{v});
      for (value_t v = 0; v < 30; v += 5) banned.push_back(Tuple{v});
    }
    inst.load("all", universe);
    inst.load("banned", banned);
    inst.run();
    EXPECT_EQ(inst.size("ok"), 24u);
    const auto rows = inst.gather("ok");
    if (comm.rank() == 0) {
      for (const auto& r : rows) EXPECT_NE(r[0] % 5, 0u);
    }
  });
}

TEST(Negation, UnreachableNodes) {
  // Negation over a recursively computed relation in a lower stratum.
  const auto g = graph::make_components(2, 10, 6, 66);
  const auto prog = CompiledProgram::compile(R"(
    .decl edge(x, y) input
    .decl node(n) input
    .decl start(n) input
    .decl reach(n)
    .decl unreachable(n) output
    reach(n) :- start(n).
    reach(y) :- reach(x), edge(x, y).
    unreachable(n) :- node(n), !reach(n).
  )");
  vmpi::run(4, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    inst.load("edge", edge_rows(g, false, comm.rank(), comm.size()));
    std::vector<Tuple> nodes, start;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 20; ++v) nodes.push_back(Tuple{v});
      start = {Tuple{0}};
    }
    inst.load("node", nodes);
    inst.load("start", start);
    inst.run();
    // Component 0 = nodes 0..9 (chain + extras); component 1 unreachable.
    EXPECT_EQ(inst.size("unreachable"), 10u);
    const auto rows = inst.gather("unreachable");
    if (comm.rank() == 0) {
      for (const auto& r : rows) EXPECT_GE(r[0], 10u);
    }
  });
}

TEST(Negation, PositiveSideConstraintsGateTheRule) {
  // x < 3 must restrict which rows are even considered — not merely which
  // matches block (the pre_filter split).
  const auto prog = CompiledProgram::compile(R"(
    .decl all(x) input
    .decl banned(x) input
    .decl ok(x) output
    ok(x) :- all(x), !banned(x), x < 3.
  )");
  vmpi::run(2, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    std::vector<Tuple> universe;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 10; ++v) universe.push_back(Tuple{v});
    }
    inst.load("all", universe);
    inst.load("banned", std::vector<Tuple>{});  // nothing banned
    inst.run();
    EXPECT_EQ(inst.size("ok"), 3u);  // 0, 1, 2 — not all 10
  });
}

TEST(Negation, NegatedAtomMayLeadTheBody) {
  const auto prog = CompiledProgram::compile(R"(
    .decl all(x) input
    .decl banned(x) input
    .decl ok(x) output
    ok(x) :- !banned(x), all(x).
  )");
  vmpi::run(2, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    std::vector<Tuple> universe, banned;
    if (comm.rank() == 0) {
      universe = {Tuple{1}, Tuple{2}, Tuple{3}};
      banned = {Tuple{2}};
    }
    inst.load("all", universe);
    inst.load("banned", banned);
    inst.run();
    EXPECT_EQ(inst.size("ok"), 2u);
  });
}

TEST(EndToEnd, MCountLowerBoundsHopDistanceClass) {
  // $MCOUNT keeps the largest lower bound seen: here, the longest hop
  // count at which a node was reached during BFS-style expansion over a
  // DAG — a small demonstration of the fourth builtin aggregate through
  // the frontend.
  const auto prog = CompiledProgram::compile(R"(
    .decl edge(x, y) input
    .decl start(n) input
    .decl hops(t, h mcount) output
    hops(n, 0)     :- start(n).
    hops(y, h + 1) :- hops(x, h), edge(x, y).
  )");
  vmpi::run(3, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    std::vector<Tuple> edges, start;
    if (comm.rank() == 0) {
      // Diamond with a long arm: 0->1->3, 0->2->3, 3->4.
      edges = {Tuple{0, 1}, Tuple{0, 2}, Tuple{1, 3}, Tuple{2, 3}, Tuple{3, 4}};
      start = {Tuple{0}};
    }
    inst.load("edge", edges);
    inst.load("start", start);
    inst.run();
    const auto rows = inst.gather("hops");
    if (comm.rank() == 0) {
      std::map<value_t, value_t> h;
      for (const auto& r : rows) h[r[0]] = r[1];
      EXPECT_EQ(h.at(0), 0u);
      EXPECT_EQ(h.at(3), 2u);  // max lower bound over both arms
      EXPECT_EQ(h.at(4), 3u);
    }
  });
}

TEST(EndToEnd, AndersenPointsToAnalysis) {
  // The paper's program-analysis motivation: inclusion-based points-to,
  // validated against a hand-rolled sequential fixpoint.
  constexpr std::string_view kAndersen = R"(
    .decl addr_of(v, o) input
    .decl assign(v, w) input
    .decl load(v, p) input
    .decl store(p, w) input
    .decl pts(v, o) output
    .decl ld(v, a)
    .decl st(a, w)
    pts(v, o) :- addr_of(v, o).
    pts(v, o) :- assign(v, w), pts(w, o).
    ld(v, a)  :- load(v, p), pts(p, a).
    pts(v, o) :- ld(v, a), pts(a, o).
    st(a, w)  :- store(p, w), pts(p, a).
    pts(a, o) :- st(a, w), pts(w, o).
  )";

  // Random small instance.
  graph::Rng rng(77);
  const value_t vars = 40;
  std::vector<std::pair<value_t, value_t>> addr, assign, load, store;
  for (int i = 0; i < 120; ++i) {
    const value_t a = rng.below(vars), b = rng.below(vars);
    switch (rng.below(8)) {
      case 0: case 1: addr.emplace_back(a, b); break;
      case 2: case 3: case 4: assign.emplace_back(a, b); break;
      case 5: case 6: load.emplace_back(a, b); break;
      default: store.emplace_back(a, b); break;
    }
  }

  // Sequential oracle: naive fixpoint over pair sets.
  std::set<std::pair<value_t, value_t>> pts(addr.begin(), addr.end());
  for (bool changed = true; changed;) {
    changed = false;
    std::set<std::pair<value_t, value_t>> next = pts;
    const auto add = [&](value_t v, value_t o) {
      changed |= next.emplace(v, o).second;
    };
    for (const auto& [v, w] : assign) {
      for (const auto& [x, o] : pts) {
        if (x == w) add(v, o);
      }
    }
    for (const auto& [v, p] : load) {
      for (const auto& [x, a] : pts) {
        if (x != p) continue;
        for (const auto& [y, o] : pts) {
          if (y == a) add(v, o);
        }
      }
    }
    for (const auto& [p, w] : store) {
      for (const auto& [x, a] : pts) {
        if (x != p) continue;
        for (const auto& [y, o] : pts) {
          if (y == w) add(a, o);
        }
      }
    }
    pts = std::move(next);
  }

  const auto prog = CompiledProgram::compile(kAndersen);
  vmpi::run(4, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    const auto to_rows = [&](const std::vector<std::pair<value_t, value_t>>& pairs) {
      std::vector<Tuple> rows;
      if (comm.rank() == 0) {
        for (const auto& [a, b] : pairs) rows.push_back(Tuple{a, b});
      }
      return rows;
    };
    inst.load("addr_of", to_rows(addr));
    inst.load("assign", to_rows(assign));
    inst.load("load", to_rows(load));
    inst.load("store", to_rows(store));
    inst.run();
    EXPECT_EQ(inst.size("pts"), pts.size());
    const auto rows = inst.gather("pts");
    if (comm.rank() == 0) {
      for (const auto& row : rows) {
        EXPECT_TRUE(pts.contains({row[0], row[1]}))
            << "spurious pts(" << row[0] << ", " << row[1] << ")";
      }
    }
  });
}

TEST(EndToEnd, SameGenerationMatchesNaiveFixpoint) {
  // The classic same-generation program, factored into binary joins; the
  // recursion forces secondary indexes on both sg and parent.
  const auto prog = CompiledProgram::compile(R"(
    .decl parent(c, p) input
    .decl sg(x, y) output
    .decl t(py, x)
    sg(x, y) :- parent(x, p), parent(y, p), x != y.
    t(py, x) :- sg(px, py), parent(x, px).
    sg(x, y) :- t(py, x), parent(y, py), x != y.
  )");

  // A random forest: node c's parent is some p < c.
  graph::Rng rng(88);
  std::vector<std::pair<value_t, value_t>> parents;
  for (value_t c = 1; c < 60; ++c) {
    parents.emplace_back(c, rng.below(c));
    if (rng.below(4) == 0) parents.emplace_back(c, rng.below(c));  // some dual parents
  }

  // Naive oracle.
  std::set<std::pair<value_t, value_t>> sg;
  for (const auto& [x, px] : parents) {
    for (const auto& [y, py] : parents) {
      if (px == py && x != y) sg.emplace(x, y);
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    auto next = sg;
    for (const auto& [x, px] : parents) {
      for (const auto& [y, py] : parents) {
        if (x != y && sg.contains({px, py})) {
          changed |= next.emplace(x, y).second;
        }
      }
    }
    sg = std::move(next);
  }

  vmpi::run(4, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    std::vector<Tuple> rows;
    if (comm.rank() == 0) {
      for (const auto& [c, p] : parents) rows.push_back(Tuple{c, p});
    }
    inst.load("parent", rows);
    inst.run();
    EXPECT_EQ(inst.size("sg"), sg.size());
    const auto got = inst.gather("sg");
    if (comm.rank() == 0) {
      for (const auto& row : got) {
        EXPECT_TRUE(sg.contains({row[0], row[1]}))
            << "spurious sg(" << row[0] << ", " << row[1] << ")";
      }
    }
  });
}

TEST(EndToEnd, DeterministicAcrossRankCounts) {
  const auto g = graph::make_rmat({.scale = 7, .edge_factor = 4, .seed = 65});
  const auto sources = g.pick_sources(2, 9);
  const auto prog = CompiledProgram::compile(kSsspDl);
  std::vector<Tuple> at1;
  for (const int ranks : {1, 5}) {
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      auto inst = prog.instantiate(comm);
      inst.load("edge", edge_rows(g, true, comm.rank(), comm.size()));
      std::vector<Tuple> seeds;
      if (comm.rank() == 0) {
        for (const auto s : sources) seeds.push_back(Tuple{s});
      }
      inst.load("source", seeds);
      inst.run();
      const auto rows = inst.gather("spath");
      if (comm.rank() == 0) {
        if (ranks == 1) {
          at1 = rows;
        } else {
          EXPECT_EQ(rows, at1);
        }
      }
    });
  }
}

}  // namespace
}  // namespace paralagg::frontend

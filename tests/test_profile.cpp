// Profiling machinery: RankProfile accumulation, phase timers, byte
// attribution, and the cross-rank summary (the measurement layer every
// figure depends on).

#include "core/profile.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>

#include "core/phase_scope.hpp"
#include "core/ra_op.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg::core {
namespace {

TEST(RankProfile, AccumulatesIntoCurrentIteration) {
  RankProfile p;
  p.add_seconds(Phase::kLocalJoin, 0.5);
  p.add_seconds(Phase::kLocalJoin, 0.25);
  p.add_work(Phase::kDedupAgg, 10);
  p.add_bytes(Phase::kAllToAll, 100);
  const auto& cur = p.current();
  EXPECT_DOUBLE_EQ(cur.cpu_seconds[static_cast<std::size_t>(Phase::kLocalJoin)], 0.75);
  EXPECT_EQ(cur.work[static_cast<std::size_t>(Phase::kDedupAgg)], 10u);
  EXPECT_EQ(cur.bytes[static_cast<std::size_t>(Phase::kAllToAll)], 100u);
  EXPECT_TRUE(p.history().empty());
}

TEST(RankProfile, EndIterationSnapshotsAndResets) {
  RankProfile p;
  p.add_work(Phase::kLocalJoin, 5);
  p.end_iteration();
  p.add_work(Phase::kLocalJoin, 7);
  p.end_iteration();
  ASSERT_EQ(p.history().size(), 2u);
  EXPECT_EQ(p.history()[0].work[static_cast<std::size_t>(Phase::kLocalJoin)], 5u);
  EXPECT_EQ(p.history()[1].work[static_cast<std::size_t>(Phase::kLocalJoin)], 7u);
  EXPECT_EQ(p.current().work[static_cast<std::size_t>(Phase::kLocalJoin)], 0u);
}

TEST(ScopedPhaseTimer, MeasuresThreadCpuTime) {
  RankProfile p;
  {
    ScopedPhaseTimer timer(p, Phase::kLocalJoin);
    // Busy work: CPU time must register; sleeping would not.
    volatile std::uint64_t x = 1;
    for (int i = 0; i < 2'000'000; ++i) x = x * 31 + 7;
  }
  EXPECT_GT(p.current().cpu_seconds[static_cast<std::size_t>(Phase::kLocalJoin)], 0.0);
}

TEST(ScopedPhaseTimer, BlockedTimeDoesNotCount) {
  RankProfile p;
  {
    ScopedPhaseTimer timer(p, Phase::kOther);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  // Sleeping burns no thread CPU: far below the wall duration.
  EXPECT_LT(p.current().cpu_seconds[static_cast<std::size_t>(Phase::kOther)], 0.010);
}

TEST(PhaseScope, AttributesRemoteBytes) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    RankProfile p;
    {
      PhaseScope scope(comm, p, Phase::kAllToAll);
      (void)comm.allgather<std::uint64_t>(42);  // 8 bytes to 1 peer
    }
    EXPECT_EQ(p.current().bytes[static_cast<std::size_t>(Phase::kAllToAll)], 8u);
  });
}

TEST(PhaseScope, PausedStatsAttributeNothing) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    RankProfile p;
    {
      PhaseScope scope(comm, p, Phase::kAllToAll);
      vmpi::StatsPause pause(comm);
      (void)comm.allgather<std::uint64_t>(42);
    }
    EXPECT_EQ(p.current().bytes[static_cast<std::size_t>(Phase::kAllToAll)], 0u);
  });
}

TEST(Summarize, CriticalPathIsMaxPerIteration) {
  vmpi::run(3, [&](vmpi::Comm& comm) {
    RankProfile mine;
    // Iteration 0: rank r contributes r+1 synthetic seconds.
    mine.add_seconds(Phase::kLocalJoin, static_cast<double>(comm.rank() + 1));
    mine.add_bytes(Phase::kLocalJoin, 10);
    mine.end_iteration();
    // Iteration 1: rank 0 is the straggler.
    mine.add_seconds(Phase::kLocalJoin, comm.rank() == 0 ? 5.0 : 0.5);
    mine.end_iteration();

    const auto summary = summarize_profiles(comm, mine);
    EXPECT_EQ(summary.iterations, 2u);
    EXPECT_EQ(summary.ranks, 3);
    const auto lj = static_cast<std::size_t>(Phase::kLocalJoin);
    // max(1,2,3) + max(5,0.5,0.5) = 8.
    EXPECT_DOUBLE_EQ(summary.modelled_seconds[lj], 8.0);
    // Σ over ranks and iterations = (1+2+3) + (5+0.5+0.5) = 12.
    EXPECT_DOUBLE_EQ(summary.total_cpu_seconds[lj], 12.0);
    EXPECT_EQ(summary.total_bytes[lj], 30u);
    ASSERT_EQ(summary.per_iteration_max.size(), 2u);
    EXPECT_DOUBLE_EQ(summary.per_iteration_max[0][lj], 3.0);
    EXPECT_DOUBLE_EQ(summary.per_iteration_max[1][lj], 5.0);
  });
}

TEST(Summarize, IdenticalOnEveryRank) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    RankProfile mine;
    mine.add_seconds(Phase::kDedupAgg, 1.0 + comm.rank());
    mine.end_iteration();
    const auto summary = summarize_profiles(comm, mine);
    const auto digests = comm.allgather<double>(summary.modelled_total());
    for (const auto d : digests) EXPECT_DOUBLE_EQ(d, digests[0]);
  });
}

TEST(Summarize, InstrumentationTrafficNotCounted) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    RankProfile mine;
    mine.end_iteration();
    const auto before = comm.stats().total_remote_bytes();
    (void)summarize_profiles(comm, mine);
    EXPECT_EQ(comm.stats().total_remote_bytes(), before);
  });
}

TEST(Summarize, EmptyHistory) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    RankProfile mine;
    const auto summary = summarize_profiles(comm, mine);
    EXPECT_EQ(summary.iterations, 0u);
    EXPECT_DOUBLE_EQ(summary.modelled_total(), 0.0);
  });
}

TEST(Summarize, PerIterationMaxBytesTracksStraggler) {
  vmpi::run(3, [&](vmpi::Comm& comm) {
    RankProfile mine;
    mine.add_bytes(Phase::kAllToAll, static_cast<std::uint64_t>(comm.rank()) * 100);
    mine.end_iteration();
    const auto summary = summarize_profiles(comm, mine);
    ASSERT_EQ(summary.per_iteration_max_bytes.size(), 1u);
    EXPECT_EQ(summary.per_iteration_max_bytes[0], 200u);  // rank 2's bytes
  });
}

TEST(CostModel, ChargesComputeCommAndSync) {
  ProfileSummary p;
  p.iterations = 2;
  p.ranks = 4;
  p.per_iteration_max.resize(2);
  p.per_iteration_max[0].fill(0.0);
  p.per_iteration_max[1].fill(0.0);
  p.per_iteration_max[0][static_cast<std::size_t>(Phase::kLocalJoin)] = 1.0;
  p.per_iteration_max[1][static_cast<std::size_t>(Phase::kDedupAgg)] = 2.0;
  p.per_iteration_max_bytes = {1'000'000'000, 0};  // 1 GB in iteration 0

  CostModel m;
  m.bytes_per_second = 1.0e9;
  m.collective_latency = 0.001;
  m.collectives_per_iteration = 10;
  // cpu (3) + comm (1) + sync (0.001 * 10 * log2(4) * 2 = 0.04).
  EXPECT_NEAR(m.project(p, 4), 4.04, 1e-9);
}

TEST(CostModel, SyncTermGrowsWithRanks) {
  ProfileSummary p;
  p.iterations = 100;
  p.per_iteration_max.resize(100);
  for (auto& row : p.per_iteration_max) row.fill(0.0);
  p.per_iteration_max_bytes.assign(100, 0);
  CostModel m;
  EXPECT_GT(m.project(p, 1024), m.project(p, 4));
  EXPECT_GT(m.project(p, 2), 0.0);  // never free
}

TEST(WorkAccounting, CopyAndJoinChargeLocalJoinIdentically) {
  // The balancer compares kLocalJoin work across rules, so copy and join
  // must charge the same unit: probes + matches.  A copy "probes" each
  // source row once and every row matches (modulo filters).
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    Relation s(comm, {.name = "s", .arity = 2, .jcc = 1});
    Relation join_out(comm, {.name = "join_out", .arity = 2, .jcc = 1});
    Relation copy_out(comm, {.name = "copy_out", .arity = 2, .jcc = 1});
    std::vector<Tuple> rf, sf;
    if (comm.rank() == 0) {
      for (value_t k = 0; k < 16; ++k) {
        rf.push_back(Tuple{k, k * 10});
        // Two inner rows per key: matches != probes for the join.
        sf.push_back(Tuple{k, k});
        sf.push_back(Tuple{k, k + 100});
      }
    }
    r.load_facts(rf);
    s.load_facts(sf);

    const auto lj = static_cast<std::size_t>(Phase::kLocalJoin);

    RankProfile join_profile;
    const auto join_stats = execute_join(
        comm, join_profile,
        JoinRule{.a = &r,
                 .a_version = Version::kFull,
                 .b = &s,
                 .b_version = Version::kFull,
                 .out = {.target = &join_out,
                         .cols = {Expr::col_a(1), Expr::col_b(1)}}});
    join_out.materialize();
    EXPECT_EQ(join_profile.current().work[lj], join_stats.probes + join_stats.matches);
    EXPECT_GT(join_stats.matches, join_stats.probes);  // 2 inner rows per key

    RankProfile copy_profile;
    const auto copy_stats = execute_copy(
        comm, copy_profile,
        CopyRule{.src = &r,
                 .version = Version::kFull,
                 .out = {.target = &copy_out,
                         .cols = {Expr::col_a(0), Expr::col_a(1)}},
                 .filter = Expr::less(Expr::col_a(0), Expr::constant(8))});
    copy_out.materialize();
    EXPECT_EQ(copy_profile.current().work[lj], copy_stats.probes + copy_stats.matches);
    // The filter keeps half the rows: probes counts all, matches the kept.
    const auto probes =
        comm.allreduce<std::uint64_t>(copy_stats.probes, vmpi::ReduceOp::kSum);
    const auto matches =
        comm.allreduce<std::uint64_t>(copy_stats.matches, vmpi::ReduceOp::kSum);
    EXPECT_EQ(probes, 16u);
    EXPECT_EQ(matches, 8u);
  });
}

TEST(PhaseNames, AllDistinct) {
  std::set<std::string_view> names;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    names.insert(phase_name(static_cast<Phase>(p)));
  }
  EXPECT_EQ(names.size(), kPhaseCount);
}

}  // namespace
}  // namespace paralagg::core

// Tuple: inline/heap storage, ordering, hashing.

#include "storage/tuple.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace paralagg::storage {
namespace {

TEST(Tuple, DefaultIsEmpty) {
  Tuple t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
}

TEST(Tuple, InitializerListConstruction) {
  Tuple t{1, 2, 3};
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], 1u);
  EXPECT_EQ(t[1], 2u);
  EXPECT_EQ(t[2], 3u);
  EXPECT_EQ(t.back(), 3u);
}

TEST(Tuple, SpanConstruction) {
  const value_t raw[] = {9, 8, 7, 6};
  Tuple t(std::span<const value_t>(raw, 4));
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[3], 6u);
}

TEST(Tuple, PushBackWithinInlineCapacity) {
  Tuple t;
  for (value_t v = 0; v < Tuple::kInline; ++v) t.push_back(v * 10);
  ASSERT_EQ(t.size(), Tuple::kInline);
  for (std::size_t i = 0; i < Tuple::kInline; ++i) EXPECT_EQ(t[i], i * 10);
}

TEST(Tuple, GrowsPastInlineCapacity) {
  Tuple t;
  for (value_t v = 0; v < 100; ++v) t.push_back(v);
  ASSERT_EQ(t.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(t[i], i);
}

TEST(Tuple, CopyPreservesHeapContents) {
  Tuple big;
  for (value_t v = 0; v < 20; ++v) big.push_back(v);
  Tuple copy = big;        // NOLINT(performance-unnecessary-copy-initialization)
  big[0] = 999;            // must not affect the copy
  EXPECT_EQ(copy[0], 0u);
  EXPECT_EQ(copy.size(), 20u);
}

TEST(Tuple, CopyAssignSelfIsSafe) {
  Tuple t{1, 2};
  const Tuple* alias = &t;
  t = *alias;
  EXPECT_EQ(t, (Tuple{1, 2}));
}

TEST(Tuple, MoveLeavesContentsInTarget) {
  Tuple t{5, 6, 7};
  Tuple moved = std::move(t);
  EXPECT_EQ(moved, (Tuple{5, 6, 7}));
}

TEST(Tuple, EqualityIsElementwise) {
  EXPECT_EQ((Tuple{1, 2}), (Tuple{1, 2}));
  EXPECT_NE((Tuple{1, 2}), (Tuple{1, 3}));
  EXPECT_NE((Tuple{1, 2}), (Tuple{1, 2, 0}));
}

TEST(Tuple, LexicographicOrdering) {
  EXPECT_LT((Tuple{1, 2}), (Tuple{1, 3}));
  EXPECT_LT((Tuple{1, 2}), (Tuple{2, 0}));
  EXPECT_LT((Tuple{1}), (Tuple{1, 0}));  // prefix sorts first
  EXPECT_GT((Tuple{3}), (Tuple{2, 9, 9}));
}

TEST(Tuple, PrefixAndSuffixViews) {
  Tuple t{10, 20, 30, 40};
  const auto p = t.prefix(2);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[1], 20u);
  const auto s = t.suffix_from(2);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 30u);
}

TEST(Tuple, ClearResetsSizeNotCapacity) {
  Tuple t{1, 2, 3};
  t.clear();
  EXPECT_TRUE(t.empty());
  t.push_back(42);
  EXPECT_EQ(t, (Tuple{42}));
}

TEST(Tuple, ToStringFormatsParenthesized) {
  EXPECT_EQ((Tuple{1, 2, 3}).to_string(), "(1, 2, 3)");
  EXPECT_EQ(Tuple{}.to_string(), "()");
}

TEST(TupleHash, EqualTuplesHashEqual) {
  TupleHash h;
  EXPECT_EQ(h(Tuple{1, 2, 3}), h(Tuple{1, 2, 3}));
}

TEST(TupleHash, SpreadsDistinctTuples) {
  TupleHash h;
  std::set<std::size_t> hashes;
  for (value_t v = 0; v < 1000; ++v) hashes.insert(h(Tuple{v, v + 1}));
  // Collisions in 1000 draws from 64 bits would indicate a broken mix.
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(HashColumns, SeedsGiveIndependentFamilies) {
  // H1 and H2 must not be correlated: tuples colliding under H1 should
  // spread under H2.
  int same = 0;
  for (value_t v = 0; v < 256; ++v) {
    const value_t cols[] = {v};
    const auto h1 = hash_columns(cols, kBucketSeed) % 16;
    const auto h2 = hash_columns(cols, kSubBucketSeed) % 16;
    if (h1 == h2) ++same;
  }
  EXPECT_LT(same, 64);  // ~16 expected by chance
}

TEST(ComparePrefix, RestrictsToRequestedColumns) {
  const Tuple a{1, 2, 99};
  const Tuple b{1, 2, 0};
  EXPECT_EQ(compare_prefix(a.view(), b.view(), 2), std::strong_ordering::equal);
  EXPECT_EQ(compare_prefix(a.view(), b.view(), 3), std::strong_ordering::greater);
}

TEST(Mix64, IsBijectivelyScrambling) {
  // Distinct inputs must give distinct outputs (mix64 is invertible).
  std::set<value_t> outs;
  for (value_t v = 0; v < 4096; ++v) outs.insert(mix64(v));
  EXPECT_EQ(outs.size(), 4096u);
}

}  // namespace
}  // namespace paralagg::storage

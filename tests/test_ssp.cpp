// Stale-synchronous mode harness: bounded-round Jacobi strata (PageRank,
// SUM-reachability walk counts) run under the epoch-pipelined exactly-once
// protocol and must reach fixpoints BIT-IDENTICAL to the BSP core::Engine's
// — across rank counts and every staleness window, including the honest
// lockstep s = 0.  Plus the structural invariants the protocol promises:
// each (source, epoch) partial folds exactly once, the loop stays
// collective-free, and quiescence consumes every send.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "async/async_engine.hpp"
#include "queries/pagerank.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg {
namespace {

using core::Expr;
using queries::Tuple;

// SUM-reachability as walk counting: paths(y, $SUM(c)) counts directed
// walks from a seed set, refreshed each epoch (Jacobi shape):
//
//   paths(s, 1)        <- seed(s).                       [re-injected base]
//   paths(y, $SUM(c))  <- paths(x, c), edge(x, y).       [K epochs]
//
// Values can exceed 64 bits for large K; u64 wraparound is deterministic
// and identical on both engines, so bit-identity still holds.
struct WalkProgram {
  core::Relation* edge;
  core::Relation* seed;
  core::Relation* paths;
};

WalkProgram build_walk_program(core::Program& program, std::size_t epochs) {
  WalkProgram p{};
  p.edge = program.relation({.name = "edge", .arity = 2, .jcc = 1});
  p.seed = program.relation({.name = "seed", .arity = 1, .jcc = 1});
  p.paths = program.relation({.name = "paths",
                              .arity = 2,
                              .jcc = 1,
                              .dep_arity = 1,
                              .aggregator = core::make_sum_aggregator(),
                              .agg_mode = core::AggMode::kRefresh});
  auto& s = program.stratum();
  s.fixpoint = false;
  s.max_rounds = epochs;
  s.loop_rules.push_back(core::CopyRule{
      .src = p.seed,
      .version = core::Version::kFull,
      .out = {.target = p.paths, .cols = {Expr::col_a(0), Expr::constant(1)}},
  });
  s.loop_rules.push_back(core::JoinRule{
      .a = p.paths,
      .a_version = core::Version::kFull,
      .b = p.edge,
      .b_version = core::Version::kFull,
      .out = {.target = p.paths, .cols = {Expr::col_b(1), Expr::col_a(1)}},
  });
  return p;
}

void load_walk_facts(vmpi::Comm& comm, const WalkProgram& p, const graph::Graph& g,
                     const std::vector<core::value_t>& sources) {
  p.edge->load_facts(queries::edge_slice(comm, g, /*weighted=*/false));
  std::vector<Tuple> seeds;
  if (comm.rank() == 0) {
    for (const core::value_t s : sources) seeds.push_back(Tuple{s});
  }
  p.seed->load_facts(seeds);
}

TEST(SspEquivalence, PagerankBitIdenticalToBspAcrossRanksAndStaleness) {
  const auto g = graph::make_rmat({.scale = 7, .edge_factor = 4, .seed = 41});

  // BSP oracle at 4 ranks.
  std::vector<Tuple> reference;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    queries::PagerankOptions opts;
    opts.rounds = 8;
    opts.collect_ranks = true;
    const auto r = run_pagerank(comm, g, opts);
    if (comm.rank() == 0) reference = r.ranks;
  });
  ASSERT_FALSE(reference.empty());

  for (const int ranks : {4, 7}) {
    for (const std::size_t s : {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
      vmpi::run(ranks, [&](vmpi::Comm& comm) {
        queries::PagerankOptions opts;
        opts.rounds = 8;
        opts.collect_ranks = true;
        opts.tuning.use_async = true;
        opts.tuning.async.ssp = true;
        opts.tuning.async.ssp_staleness = s;
        const auto r = run_pagerank(comm, g, opts);
        EXPECT_EQ(r.rounds, 8u) << "ranks=" << ranks << " s=" << s;
        EXPECT_EQ(r.ranked_nodes, g.num_nodes) << "ranks=" << ranks << " s=" << s;
        if (comm.rank() == 0) {
          EXPECT_EQ(r.ranks, reference) << "ranks=" << ranks << " s=" << s;
        }
      });
    }
  }
}

TEST(SspEquivalence, SumReachabilityWalkCountsBitIdentical) {
  const auto g = graph::make_rmat({.scale = 7, .edge_factor = 4, .seed = 42});
  const auto sources = g.pick_sources(3);
  constexpr std::size_t kEpochs = 6;

  std::vector<Tuple> reference;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    core::Program program(comm);
    const auto p = build_walk_program(program, kEpochs);
    load_walk_facts(comm, p, g, sources);
    run_engine(comm, program, queries::QueryTuning{});  // BSP
    const auto gathered = p.paths->gather_to_root(0);
    if (comm.rank() == 0) reference = gathered;
  });
  ASSERT_FALSE(reference.empty());

  for (const int ranks : {4, 7}) {
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      core::Program program(comm);
      const auto p = build_walk_program(program, kEpochs);
      load_walk_facts(comm, p, g, sources);
      queries::QueryTuning tuning;
      tuning.use_async = true;
      tuning.async.ssp = true;
      run_engine(comm, program, tuning);
      const auto gathered = p.paths->gather_to_root(0);
      if (comm.rank() == 0) {
        EXPECT_EQ(gathered, reference) << "ranks=" << ranks;
      }
    });
  }
}

// Direct-engine run: the exactly-once ledger invariants.  Every rank folds
// every epoch once; every epoch folds one partial frame per source rank —
// no more (duplicates would inflate $SUM), no fewer (the fold gate waits
// for all of them).  And the loop itself stays collective-free.
TEST(SspEngine, FoldCountsAreExactlyOncePerSourceEpoch) {
  const auto g = graph::make_rmat({.scale = 7, .edge_factor = 4, .seed = 43});
  const auto sources = g.pick_sources(2);
  constexpr std::size_t kEpochs = 5;
  constexpr int kRanks = 4;
  vmpi::run(kRanks, [&](vmpi::Comm& comm) {
    core::Program program(comm);
    const auto p = build_walk_program(program, kEpochs);
    load_walk_facts(comm, p, g, sources);

    async::AsyncConfig cfg;
    cfg.ssp = true;
    async::AsyncEngine engine(comm, cfg);
    const auto run = engine.run(program);
    EXPECT_TRUE(run.strata.at(0).reached_fixpoint);
    EXPECT_GT(p.paths->global_size(core::Version::kFull), sources.size());

    const auto& ls = engine.loop_stats();
    EXPECT_EQ(ls.ssp_epochs, kEpochs);
    EXPECT_EQ(ls.ssp_partials_folded, static_cast<std::uint64_t>(kRanks) * kEpochs);
    EXPECT_EQ(ls.ssp_ledger_discards, 0u);  // nothing injected, nothing discarded
    EXPECT_EQ(ls.collective_calls_in_loop, 0u);

    const auto total_sent =
        comm.allreduce<std::uint64_t>(ls.messages_sent, vmpi::ReduceOp::kSum);
    const auto total_recv =
        comm.allreduce<std::uint64_t>(ls.messages_received, vmpi::ReduceOp::kSum);
    EXPECT_GT(total_sent, 0u);
    EXPECT_EQ(total_recv, total_sent);  // quiescence = every send consumed
  });
}

// Degenerate ring: one rank, nobody to exchange watermarks with.  The
// single-rank termination shortcut must still wait for the local watermark
// to reach the required epoch count.
TEST(SspEngine, SingleRankDegenerateRing) {
  const auto g = graph::make_rmat({.scale = 6, .edge_factor = 3, .seed = 44});
  const auto sources = g.pick_sources(2);
  constexpr std::size_t kEpochs = 4;
  vmpi::run(1, [&](vmpi::Comm& comm) {
    core::Program program(comm);
    const auto p = build_walk_program(program, kEpochs);
    load_walk_facts(comm, p, g, sources);

    async::AsyncConfig cfg;
    cfg.ssp = true;
    cfg.ssp_staleness = 0;  // lockstep is trivially satisfied alone
    async::AsyncEngine engine(comm, cfg);
    engine.run(program);
    const auto& ls = engine.loop_stats();
    EXPECT_EQ(ls.ssp_epochs, kEpochs);
    EXPECT_EQ(ls.ssp_partials_folded, kEpochs);  // 1 source rank per epoch
    EXPECT_EQ(ls.ssp_ledger_discards, 0u);
  });
}

// The staleness window is flow control, not semantics: exercised directly
// (not through the query wrappers) so the per-rank stats stay visible.
TEST(SspEngine, StalenessWindowDoesNotChangeFoldCounts) {
  const auto g = graph::make_rmat({.scale = 6, .edge_factor = 3, .seed = 45});
  const auto sources = g.pick_sources(2);
  constexpr std::size_t kEpochs = 6;
  constexpr int kRanks = 3;
  std::vector<Tuple> reference;
  bool have_reference = false;
  for (const std::size_t s : {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
    vmpi::run(kRanks, [&](vmpi::Comm& comm) {
      core::Program program(comm);
      const auto p = build_walk_program(program, kEpochs);
      load_walk_facts(comm, p, g, sources);
      async::AsyncConfig cfg;
      cfg.ssp = true;
      cfg.ssp_staleness = s;
      async::AsyncEngine engine(comm, cfg);
      engine.run(program);
      const auto& ls = engine.loop_stats();
      EXPECT_EQ(ls.ssp_epochs, kEpochs) << "s=" << s;
      EXPECT_EQ(ls.ssp_partials_folded, static_cast<std::uint64_t>(kRanks) * kEpochs)
          << "s=" << s;
      const auto gathered = p.paths->gather_to_root(0);
      if (comm.rank() == 0) {
        if (!have_reference) {
          reference = gathered;
        } else {
          EXPECT_EQ(gathered, reference) << "s=" << s;
        }
      }
    });
    have_reference = true;
  }
  EXPECT_FALSE(reference.empty());
}

}  // namespace
}  // namespace paralagg

// Safra termination detection, independent of the engine: adversarial
// schedules (message in flight during a token pass, late reactivation
// chains, degenerate 1-rank world).  App messages here are plain payloads
// on a test tag; the "engine" is a hand-written driver loop per scenario.

#include "async/termination.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "vmpi/runtime.hpp"
#include "vmpi/serialize.hpp"

namespace paralagg::async {
namespace {

using vmpi::Bytes;
using vmpi::Comm;
using vmpi::kAnySource;
using vmpi::kAnyTag;

constexpr int kAppTag = 77;

Bytes payload(std::uint64_t v) {
  vmpi::BufferWriter w;
  w.put(v);
  return w.take();
}

/// Generic passive driver: drain app messages (calling on_app for each),
/// then run the detector protocol; park in a blocking receive when idle.
/// Returns when the detector announces termination.
template <typename OnApp>
void drive_until_terminated(Comm& comm, TerminationDetector& det, OnApp&& on_app) {
  while (!det.terminated()) {
    comm.drain(kAppTag, [&](int src, Bytes b) {
      det.on_app_receive();
      on_app(src, std::move(b));
    });
    det.poll();
    det.try_terminate();
    if (det.terminated()) break;
    int src = 0;
    int tag = 0;
    Bytes b = comm.recv(kAnySource, kAnyTag, &src, &tag);
    if (det.owns_tag(tag)) {
      det.on_control(src, tag, b);
    } else {
      ASSERT_EQ(tag, kAppTag);
      det.on_app_receive();
      on_app(src, std::move(b));
    }
  }
}

TEST(Termination, SingleRankWorldTerminatesImmediately) {
  vmpi::run(1, [&](Comm& comm) {
    TerminationDetector det(comm);
    EXPECT_FALSE(det.terminated());
    det.try_terminate();
    EXPECT_TRUE(det.terminated());
    EXPECT_EQ(det.stats().probes_started, 0u);
  });
}

TEST(Termination, SingleRankWithSelfTraffic) {
  vmpi::run(1, [&](Comm& comm) {
    TerminationDetector det(comm);
    comm.isend(0, kAppTag, payload(1));
    det.on_app_send();
    // Not passive-and-balanced yet: a self-send is outstanding.
    det.try_terminate();
    EXPECT_FALSE(det.terminated());
    comm.drain(kAppTag, [&](int, Bytes) { det.on_app_receive(); });
    det.try_terminate();
    EXPECT_TRUE(det.terminated());
  });
}

TEST(Termination, QuiescentRingTerminatesWithoutAppMessages) {
  for (const int ranks : {2, 3, 5, 8}) {
    vmpi::run(ranks, [&](Comm& comm) {
      TerminationDetector det(comm);
      drive_until_terminated(comm, det, [](int, Bytes) {});
      EXPECT_TRUE(det.terminated());
      if (comm.rank() == 0) {
        EXPECT_GE(det.stats().probes_started, 1u);
      } else {
        EXPECT_GE(det.stats().tokens_forwarded, 1u);
      }
    });
  }
}

TEST(Termination, MessageInFlightDuringTokenPassIsNotMissed) {
  // Rank 0 sends an app message to the LAST rank, then immediately goes
  // passive and starts probing.  The receiver sits on the message until it
  // has already forwarded one token (adversarial: the first token passes
  // the receiver while the message is still "in flight" / unconsumed).
  // Safra's counters must keep the ring probing until the message is
  // received, and only then terminate.
  vmpi::run(4, [&](Comm& comm) {
    TerminationDetector det(comm);
    const int last = comm.size() - 1;
    std::uint64_t received_value = 0;

    if (comm.rank() == 0) {
      comm.isend(last, kAppTag, payload(42));
      det.on_app_send();
      drive_until_terminated(comm, det, [](int, Bytes) {});
    } else if (comm.rank() == last) {
      // Hold the app message hostage until one token has passed through.
      while (det.stats().tokens_forwarded == 0) {
        int src = 0;
        int tag = 0;
        Bytes b = comm.recv(kAnySource, kAnyTag, &src, &tag);
        if (det.owns_tag(tag)) {
          det.on_control(src, tag, b);
          EXPECT_FALSE(det.terminated()) << "terminated with a message in flight";
          det.try_terminate();  // forwards the token; app message still queued
        } else {
          // The app message arrived before any token: requeue semantics are
          // not available, so just consume it — the scenario degenerates to
          // the plain quiescent case.
          det.on_app_receive();
          received_value = vmpi::BufferReader(b).get<std::uint64_t>();
        }
      }
      drive_until_terminated(comm, det, [&](int, Bytes b) {
        received_value = vmpi::BufferReader(b).get<std::uint64_t>();
      });
      EXPECT_EQ(received_value, 42u);
    } else {
      drive_until_terminated(comm, det, [](int, Bytes) {});
    }
    EXPECT_TRUE(det.terminated());
  });
}

TEST(Termination, LateReactivationChainIsDetected) {
  // A relay chain that reactivates ranks long after they first went
  // passive: rank 0 -> 1 -> 2 -> 3, each hop triggered by the previous
  // message, with token probes interleaving the whole time.  Termination
  // must only be declared after the final hop is consumed.
  vmpi::run(4, [&](Comm& comm) {
    TerminationDetector det(comm);
    int hops_seen = 0;
    if (comm.rank() == 0) {
      comm.isend(1, kAppTag, payload(0));
      det.on_app_send();
    }
    drive_until_terminated(comm, det, [&](int, Bytes b) {
      ++hops_seen;
      const auto hop = vmpi::BufferReader(b).get<std::uint64_t>();
      if (hop + 2 < static_cast<std::uint64_t>(comm.size())) {
        // Reactivate: pass the baton onward after having been passive.
        comm.isend(comm.rank() + 1, kAppTag, payload(hop + 1));
        det.on_app_send();
      }
    });
    EXPECT_TRUE(det.terminated());
    if (comm.rank() > 0) {
      EXPECT_EQ(hops_seen, 1);
    }
  });
}

TEST(Termination, PingPongStormThenQuiesce) {
  // Heavy bidirectional traffic with counters crossing zero repeatedly;
  // detection must neither fire early (while bounces remain) nor hang.
  vmpi::run(3, [&](Comm& comm) {
    TerminationDetector det(comm);
    constexpr std::uint64_t kBounces = 25;
    if (comm.rank() == 0) {
      comm.isend(1, kAppTag, payload(0));
      det.on_app_send();
    }
    std::uint64_t max_seen = 0;
    drive_until_terminated(comm, det, [&](int src, Bytes b) {
      const auto v = vmpi::BufferReader(b).get<std::uint64_t>();
      max_seen = std::max(max_seen, v);
      if (v < kBounces) {
        comm.isend(src, kAppTag, payload(v + 1));
        det.on_app_send();
        if (comm.rank() != 0 && v % 5 == 0) {
          // Side traffic to the third rank, so its counter moves too.
          comm.isend(2, kAppTag, payload(kBounces + 1));
          det.on_app_send();
        }
      }
    });
    EXPECT_TRUE(det.terminated());
    if (comm.rank() < 2) {
      EXPECT_GE(max_seen, kBounces - 1);
    }
  });
}

TEST(Termination, StatsCountProbesAndForwards) {
  vmpi::run(2, [&](Comm& comm) {
    TerminationDetector det(comm);
    drive_until_terminated(comm, det, [](int, Bytes) {});
    if (comm.rank() == 0) {
      EXPECT_GE(det.stats().probes_started, 1u);
      EXPECT_EQ(det.stats().tokens_forwarded, 0u);
    } else {
      EXPECT_EQ(det.stats().probes_started, 0u);
      EXPECT_GE(det.stats().tokens_forwarded, 1u);
    }
  });
}

TEST(Termination, TagOwnershipIsExact) {
  vmpi::run(1, [&](Comm& comm) {
    TerminationDetector det(comm, /*tag_base=*/1000);
    EXPECT_TRUE(det.owns_tag(1000));
    EXPECT_TRUE(det.owns_tag(1001));
    EXPECT_FALSE(det.owns_tag(999));
    EXPECT_FALSE(det.owns_tag(1002));
    EXPECT_FALSE(det.owns_tag(kAppTag));
  });
}

}  // namespace
}  // namespace paralagg::async

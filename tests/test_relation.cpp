// Relation: config validation, double-hashed distribution, staging, fused
// dedup/aggregation, fact loading, reshuffling.

#include "core/relation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include "vmpi/runtime.hpp"

namespace paralagg::core {
namespace {

RelationConfig plain2(const char* name = "r") {
  return {.name = name, .arity = 2, .jcc = 1};
}

RelationConfig min3(const char* name = "agg") {
  return {.name = name,
          .arity = 3,
          .jcc = 1,
          .dep_arity = 1,
          .aggregator = make_min_aggregator()};
}

TEST(RelationConfig, RejectsMalformedShapes) {
  vmpi::run(1, [&](vmpi::Comm& comm) {
    EXPECT_THROW(Relation(comm, {.name = "x", .arity = 0, .jcc = 1}), std::invalid_argument);
    EXPECT_THROW(Relation(comm, {.name = "x", .arity = 2, .jcc = 0}), std::invalid_argument);
    EXPECT_THROW(Relation(comm, {.name = "x", .arity = 2, .jcc = 3}), std::invalid_argument);
    // Aggregated relation without an aggregator.
    EXPECT_THROW(Relation(comm, {.name = "x", .arity = 2, .jcc = 1, .dep_arity = 1}),
                 std::invalid_argument);
    // All columns dependent: no independent key left.
    EXPECT_THROW(Relation(comm, {.name = "x",
                                 .arity = 1,
                                 .jcc = 1,
                                 .dep_arity = 1,
                                 .aggregator = make_min_aggregator()}),
                 std::invalid_argument);
    // dep_arity mismatch with the aggregator.
    EXPECT_THROW(Relation(comm, {.name = "x",
                                 .arity = 4,
                                 .jcc = 1,
                                 .dep_arity = 2,
                                 .aggregator = make_min_aggregator()}),
                 std::invalid_argument);
  });
}

TEST(RelationConfig, RejectsJoinOnAggregatedColumns) {
  // The paper's structural restriction (§III-A): join columns must be
  // independent.
  vmpi::run(1, [&](vmpi::Comm& comm) {
    EXPECT_THROW(Relation(comm, {.name = "x",
                                 .arity = 3,
                                 .jcc = 3,
                                 .dep_arity = 1,
                                 .aggregator = make_min_aggregator()}),
                 std::invalid_argument);
  });
}

TEST(Relation, DistributionIsDeterministicAndInRange) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, plain2());
    for (value_t v = 0; v < 200; ++v) {
      const Tuple t{v, v * 3};
      const auto b = r.bucket_of(t.view());
      EXPECT_LT(b, r.num_buckets());
      EXPECT_EQ(b, r.bucket_of(t.view()));  // stable
      const int owner = r.owner_rank(t.view());
      EXPECT_GE(owner, 0);
      EXPECT_LT(owner, comm.size());
    }
  });
}

TEST(Relation, BucketDependsOnlyOnJoinColumns) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, plain2());
    EXPECT_EQ(r.bucket_of(Tuple{5, 1}.view()), r.bucket_of(Tuple{5, 999}.view()));
  });
}

TEST(Relation, AggregatedOwnerIgnoresDependentColumn) {
  // The communication-avoiding property: tuples agreeing on independent
  // columns co-locate regardless of the partial aggregate they carry —
  // even with sub-bucketing enabled.
  vmpi::run(8, [&](vmpi::Comm& comm) {
    auto cfg = min3();
    cfg.sub_buckets = 4;
    Relation r(comm, cfg);
    for (value_t a = 0; a < 50; ++a) {
      for (value_t b = 0; b < 5; ++b) {
        const int owner = r.owner_rank(Tuple{a, b, 0}.view());
        for (value_t dep : {1ULL, 17ULL, 123456789ULL}) {
          EXPECT_EQ(r.owner_rank(Tuple{a, b, dep}.view()), owner);
        }
      }
    }
  });
}

TEST(Relation, SubBucketsSpreadABucketAcrossRanks) {
  vmpi::run(8, [&](vmpi::Comm& comm) {
    auto cfg = plain2();
    cfg.sub_buckets = 8;
    Relation r(comm, cfg);
    // All tuples share join column 0 -> one bucket; sub-bucketing must
    // spread them over several ranks.
    std::set<int> owners;
    for (value_t v = 0; v < 200; ++v) owners.insert(r.owner_rank(Tuple{42, v}.view()));
    EXPECT_GT(owners.size(), 4u);

    std::vector<int> bucket_ranks;
    r.ranks_of_bucket(r.bucket_of(Tuple{42, 0}.view()), bucket_ranks);
    for (int o : owners) {
      EXPECT_NE(std::find(bucket_ranks.begin(), bucket_ranks.end(), o), bucket_ranks.end());
    }
  });
}

TEST(Relation, NoSubBucketColumnsClampsToOne) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    // arity 2, jcc 1, dep 1: independent columns == join columns, so H2 has
    // no input and sub_buckets must clamp to 1.
    Relation r(comm, {.name = "cc",
                      .arity = 2,
                      .jcc = 1,
                      .dep_arity = 1,
                      .aggregator = make_min_aggregator(),
                      .sub_buckets = 8});
    EXPECT_EQ(r.sub_buckets(), 1);
  });
}

TEST(Relation, PlainMaterializeDeduplicates) {
  vmpi::run(1, [&](vmpi::Comm& comm) {
    Relation r(comm, plain2());
    r.stage(Tuple{1, 2}.view());
    r.stage(Tuple{1, 2}.view());  // duplicate within iteration
    r.stage(Tuple{3, 4}.view());
    auto m1 = r.materialize();
    EXPECT_EQ(m1.staged, 2u);  // pre-deduplicated in staging
    EXPECT_EQ(m1.inserted, 2u);
    EXPECT_EQ(m1.delta_size, 2u);

    r.stage(Tuple{1, 2}.view());  // duplicate across iterations
    r.stage(Tuple{5, 6}.view());
    auto m2 = r.materialize();
    EXPECT_EQ(m2.inserted, 1u);
    EXPECT_EQ(m2.rejected, 1u);
    EXPECT_EQ(r.local_size(Version::kFull), 3u);
    EXPECT_EQ(r.local_size(Version::kDelta), 1u);
  });
}

TEST(Relation, FusedAggregationCollapsesWithinIteration) {
  // Paper §IV-A: local aggregation collapses duplicates of a key before
  // they ever touch the B-tree.
  vmpi::run(1, [&](vmpi::Comm& comm) {
    Relation r(comm, min3());
    r.stage(Tuple{1, 2, 50}.view());
    r.stage(Tuple{1, 2, 30}.view());
    r.stage(Tuple{1, 2, 40}.view());
    EXPECT_EQ(r.staged_count(), 1u);  // one key
    auto m = r.materialize();
    EXPECT_EQ(m.inserted, 1u);
    const value_t key[] = {1, 2};
    const auto row = r.tree(Version::kFull).find_key(std::span<const value_t>(key, 2));
    ASSERT_FALSE(row.empty());
    EXPECT_EQ(row[2], 30u);
  });
}

TEST(Relation, FusedAggregationAscendsAcrossIterations) {
  vmpi::run(1, [&](vmpi::Comm& comm) {
    Relation r(comm, min3());
    r.stage(Tuple{1, 2, 50}.view());
    r.materialize();

    // Worse value: rejected, no delta (Fig. 1 top right).
    r.stage(Tuple{1, 2, 70}.view());
    auto worse = r.materialize();
    EXPECT_EQ(worse.rejected, 1u);
    EXPECT_EQ(worse.delta_size, 0u);

    // Better value: accumulator overwritten in place, delta row emitted.
    r.stage(Tuple{1, 2, 20}.view());
    auto better = r.materialize();
    EXPECT_EQ(better.updated, 1u);
    EXPECT_EQ(better.delta_size, 1u);
    const value_t key[] = {1, 2};
    EXPECT_EQ(r.tree(Version::kFull).find_key(std::span<const value_t>(key, 2))[2], 20u);
    EXPECT_EQ(r.local_size(Version::kFull), 1u);  // collapsed, not accumulated
  });
}

TEST(Relation, RefreshModeReplacesState) {
  vmpi::run(1, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "rank",
                      .arity = 2,
                      .jcc = 1,
                      .dep_arity = 1,
                      .aggregator = make_sum_aggregator(),
                      .agg_mode = AggMode::kRefresh});
    r.stage(Tuple{1, 10}.view());
    r.stage(Tuple{1, 5}.view());  // summed within the round
    r.stage(Tuple{2, 7}.view());
    r.materialize();
    const value_t k1[] = {1};
    EXPECT_EQ(r.tree(Version::kFull).find_key(std::span<const value_t>(k1, 1))[1], 15u);

    // Next round: key 2 not restaged -> dropped (Jacobi replacement).
    r.stage(Tuple{1, 3}.view());
    r.materialize();
    EXPECT_EQ(r.tree(Version::kFull).find_key(std::span<const value_t>(k1, 1))[1], 3u);
    const value_t k2[] = {2};
    EXPECT_TRUE(r.tree(Version::kFull).find_key(std::span<const value_t>(k2, 1)).empty());
  });
}

TEST(Relation, LoadFactsRoutesToOwners) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, plain2());
    // Every rank contributes a disjoint slice.
    std::vector<Tuple> slice;
    for (value_t v = static_cast<value_t>(comm.rank()); v < 100;
         v += static_cast<value_t>(comm.size())) {
      slice.push_back(Tuple{v, v + 1});
    }
    r.load_facts(slice);
    EXPECT_EQ(r.global_size(Version::kFull), 100u);
    EXPECT_EQ(r.global_size(Version::kDelta), 100u);  // delta == initial facts
    // Every local tuple is owned by this rank.
    r.tree(Version::kFull).for_each([&](std::span<const value_t> t) {
      EXPECT_EQ(r.owner_rank(t), comm.rank());
    });
  });
}

TEST(Relation, GatherToRootCollectsEverythingSorted) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, plain2());
    std::vector<Tuple> slice;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 50; ++v) slice.push_back(Tuple{v, v * 2});
    }
    r.load_facts(slice);
    const auto rows = r.gather_to_root(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(rows.size(), 50u);
      EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
      EXPECT_EQ(rows[10], (Tuple{10, 20}));
    } else {
      EXPECT_TRUE(rows.empty());
    }
  });
}

TEST(Relation, ReshuffleKeepsContentAndMovesOwnership) {
  vmpi::run(8, [&](vmpi::Comm& comm) {
    Relation r(comm, plain2("skewed"));
    // Hot key 7: everything in one bucket.
    std::vector<Tuple> slice;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 400; ++v) slice.push_back(Tuple{7, v});
    }
    r.load_facts(slice);
    const auto before_max =
        comm.allreduce<std::uint64_t>(r.local_size(Version::kFull), vmpi::ReduceOp::kMax);
    EXPECT_EQ(before_max, 400u);  // all on one rank

    r.reshuffle_to_sub_buckets(8);
    EXPECT_EQ(r.global_size(Version::kFull), 400u);
    EXPECT_EQ(r.global_size(Version::kDelta), 400u);  // delta travels too
    const auto after_max =
        comm.allreduce<std::uint64_t>(r.local_size(Version::kFull), vmpi::ReduceOp::kMax);
    EXPECT_LT(after_max, 200u);  // spread out
    // Ownership must be consistent under the new mapping.
    r.tree(Version::kFull).for_each([&](std::span<const value_t> t) {
      EXPECT_EQ(r.owner_rank(t), comm.rank());
    });
  });
}

TEST(Relation, CheckpointRoundTrips) {
  const std::string path = testing::TempDir() + "/paralagg_ckpt_test.bin";
  std::vector<Tuple> expected;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, plain2());
    std::vector<Tuple> slice;
    for (value_t v = static_cast<value_t>(comm.rank()); v < 200;
         v += static_cast<value_t>(comm.size())) {
      slice.push_back(Tuple{v, v * 7});
    }
    r.load_facts(slice);
    r.save_checkpoint(path);
    const auto rows = r.gather_to_root(0);  // collective
    if (comm.rank() == 0) expected = rows;
  });
  // Reload at a *different* rank count and sub-bucket layout.
  vmpi::run(3, [&](vmpi::Comm& comm) {
    auto cfg = plain2();
    cfg.sub_buckets = 4;
    Relation r(comm, cfg);
    r.load_checkpoint(path);
    EXPECT_EQ(r.global_size(Version::kFull), 200u);
    EXPECT_EQ(r.global_size(Version::kDelta), 200u);  // reload seeds the delta
    const auto rows = r.gather_to_root(0);
    if (comm.rank() == 0) {
      EXPECT_EQ(rows, expected);
    }
  });
  std::remove(path.c_str());
}

TEST(Relation, CheckpointAggregatedRelation) {
  const std::string path = testing::TempDir() + "/paralagg_ckpt_agg.bin";
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation r(comm, min3());
    std::vector<Tuple> slice;
    if (comm.rank() == 0) {
      slice = {Tuple{1, 2, 50}, Tuple{1, 2, 30}, Tuple{3, 4, 7}};
    }
    r.load_facts(slice);
    r.save_checkpoint(path);
  });
  vmpi::run(5, [&](vmpi::Comm& comm) {
    Relation r(comm, min3());
    r.load_checkpoint(path);
    const auto rows = r.gather_to_root(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(rows.size(), 2u);
      EXPECT_EQ(rows[0], (Tuple{1, 2, 30}));  // collapsed accumulator survived
      EXPECT_EQ(rows[1], (Tuple{3, 4, 7}));
    }
  });
  std::remove(path.c_str());
}

TEST(Relation, CheckpointLoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/paralagg_ckpt_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation r(comm, plain2());
    EXPECT_THROW(r.load_checkpoint(path), std::runtime_error);
  });
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation r(comm, plain2());
    EXPECT_THROW(r.load_checkpoint("/nonexistent/nope.bin"), std::runtime_error);
  });
  std::remove(path.c_str());
}

TEST(Relation, CheckpointArityMismatchRejected) {
  const std::string path = testing::TempDir() + "/paralagg_ckpt_arity.bin";
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation r(comm, plain2());
    std::vector<Tuple> slice;
    if (comm.rank() == 0) slice = {Tuple{1, 2}};
    r.load_facts(slice);
    r.save_checkpoint(path);
  });
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation r3(comm, {.name = "r3", .arity = 3, .jcc = 1});
    EXPECT_THROW(r3.load_checkpoint(path), std::runtime_error);
  });
  std::remove(path.c_str());
}

TEST(Relation, ReshuffleToSameFanoutIsNoop) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation r(comm, plain2());
    std::vector<Tuple> slice;
    if (comm.rank() == 0) slice.push_back(Tuple{1, 2});
    r.load_facts(slice);
    EXPECT_EQ(r.reshuffle_to_sub_buckets(1), 0u);
    EXPECT_EQ(r.global_size(Version::kFull), 1u);
  });
}

}  // namespace
}  // namespace paralagg::core

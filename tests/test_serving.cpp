// Incremental serving: live fixpoint maintenance with point lookups.
//
// The contract under test (DESIGN.md §11): after every applied update
// batch — insert-only, delete-only, or mixed — the resident fixpoint is
// bit-identical to a from-scratch evaluation on the mutated database,
// across rank counts; lookups between batches return the same sorted
// rows on every rank; a process killed mid-batch warm-restarts from the
// rolling manifest and replays the unapplied batches to the same state.

#include "serving/serving_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/program.hpp"
#include "graph/generators.hpp"
#include "queries/cc.hpp"
#include "queries/programs.hpp"
#include "queries/sssp.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg {
namespace {

using core::Tuple;
using core::value_t;

constexpr double kWatchdog = 4.0;

// ---------------------------------------------------------------------------
// Harness: sharded batches and from-scratch oracles
// ---------------------------------------------------------------------------

struct Mutation {
  bool insert = true;
  Tuple row;
};

/// This rank's round-robin share of the mutations as an UpdateBatch —
/// the sharded-contribution contract of RelationDelta.
serving::UpdateBatch shard_batch(const vmpi::Comm& comm, std::string relation,
                                 std::span<const Mutation> muts) {
  serving::RelationDelta d;
  d.relation = std::move(relation);
  const auto n = static_cast<std::size_t>(comm.size());
  for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < muts.size(); i += n) {
    (muts[i].insert ? d.inserts : d.deletes).push_back(muts[i].row);
  }
  serving::UpdateBatch b;
  b.push_back(std::move(d));
  return b;
}

/// Mirror a weighted-edge mutation list into the oracle graph.  Deletes
/// remove every identical copy — the relation is a set, so a duplicate
/// input edge collapses to one stored row either way.
void apply_to_graph(graph::Graph& g, std::span<const Mutation> muts) {
  for (const auto& m : muts) {
    const graph::Edge e{m.row[0], m.row[1], m.row[2]};
    if (m.insert) {
      g.edges.push_back(e);
    } else {
      std::erase(g.edges, e);
    }
  }
}

/// The first `count` distinct edge tuples of `g` at or after `start`.
std::vector<Tuple> pick_edges(const graph::Graph& g, std::size_t start, std::size_t count) {
  std::vector<Tuple> out;
  for (std::size_t i = start; i < g.edges.size() && out.size() < count; ++i) {
    const Tuple t{g.edges[i].src, g.edges[i].dst, g.edges[i].weight};
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

/// From-scratch SSSP fixpoint (stored-order rows, sorted) — the oracle
/// every incremental state must match bit-for-bit.
std::vector<Tuple> fresh_sssp(const graph::Graph& g) {
  std::vector<Tuple> rows;
  vmpi::run(3, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = {0};
    opts.collect_distances = true;
    auto r = queries::run_sssp(comm, g, opts);
    if (comm.rank() == 0) rows = std::move(r.distances);
  });
  return rows;
}

// ---------------------------------------------------------------------------
// SSSP: insert-only, delete-only, and mixed batches match from-scratch
// ---------------------------------------------------------------------------

TEST(Serving, SsspBatchesMatchFreshRunsAcrossRankCounts) {
  const auto g = graph::make_rmat({.scale = 6, .edge_factor = 4, .seed = 7});

  // Three cumulative stages: pure inserts (weight-1 shortcuts that reroute
  // many paths), pure deletes of existing edges (forces the DRed
  // wavefront), and a mix that also deletes a row that was never there.
  std::vector<std::vector<Mutation>> stages(3);
  stages[0] = {{true, Tuple{1, 50, 1}}, {true, Tuple{50, 33, 2}}, {true, Tuple{2, 60, 1}}};
  for (const Tuple& t : pick_edges(g, 0, 3)) stages[1].push_back({false, t});
  for (const Tuple& t : pick_edges(g, 20, 2)) stages[2].push_back({false, t});
  stages[2].push_back({true, Tuple{4, 61, 3}});
  stages[2].push_back({true, Tuple{61, 9, 1}});
  stages[2].push_back({false, Tuple{0, 0, 999}});  // absent: a counted miss

  const auto expected0 = fresh_sssp(g);
  std::vector<std::vector<Tuple>> expected;
  {
    graph::Graph cur = g;
    for (const auto& s : stages) {
      apply_to_graph(cur, s);
      expected.push_back(fresh_sssp(cur));
    }
  }

  for (const int ranks : {3, 5}) {
    SCOPED_TRACE("ranks=" + std::to_string(ranks));
    const auto nr = static_cast<std::size_t>(ranks);
    std::vector<std::vector<Tuple>> initial(nr);
    std::vector<std::vector<std::vector<Tuple>>> got(stages.size(),
                                                     std::vector<std::vector<Tuple>>(nr));
    std::vector<serving::UpdateResult> results(stages.size());
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      auto prog = queries::build_sssp_program(comm, 1, /*balance_edges=*/false);
      serving::ServingEngine srv(comm, *prog.program, {});
      queries::load_sssp_facts(prog, g, std::vector<value_t>{0});
      srv.start();
      const auto me = static_cast<std::size_t>(comm.rank());
      initial[me] = srv.lookup("spath", {});
      for (std::size_t s = 0; s < stages.size(); ++s) {
        const auto res = srv.apply_updates(shard_batch(comm, "edge", stages[s]));
        if (comm.rank() == 0) results[s] = res;
        got[s][me] = srv.lookup("spath", {});
      }

      // Batched point lookups agree with the full scan, including a
      // repeated key and one matching nothing.
      const auto& all = got.back()[me];
      const std::vector<Tuple> keys{Tuple{5}, Tuple{0}, Tuple{5}, Tuple{63}};
      const auto per = srv.lookup_batch("spath", keys);
      ASSERT_EQ(per.size(), keys.size());
      for (std::size_t i = 0; i < keys.size(); ++i) {
        std::vector<Tuple> want;
        for (const Tuple& row : all) {
          if (row[0] == keys[i][0]) want.push_back(row);
        }
        EXPECT_EQ(per[i], want) << "key " << keys[i][0];
      }
      // Mixed key lengths would break the monotone single-pass: typed error.
      const std::vector<Tuple> mixed{Tuple{1}, Tuple{2, 3}};
      EXPECT_THROW((void)srv.lookup_batch("spath", mixed), serving::ServingError);
    });

    for (std::size_t r = 0; r < nr; ++r) {
      EXPECT_EQ(initial[r], expected0) << "cold start, rank " << r;
      for (std::size_t s = 0; s < stages.size(); ++s) {
        EXPECT_EQ(got[s][r], expected[s]) << "stage " << s << ", rank " << r;
      }
    }
    for (std::size_t s = 0; s < stages.size(); ++s) {
      EXPECT_FALSE(results[s].aborted_fault) << "stage " << s;
    }
    // Insert stages must do derivation work; a pure-delete stage may
    // legitimately derive nothing (no surviving support for the retracted
    // keys means recovery and the tail both stay empty).
    EXPECT_GT(results[0].tuples_derived, 0u);
    EXPECT_GT(results[0].base_inserted, 0u);
    EXPECT_EQ(results[0].base_deleted, 0u);
    EXPECT_GT(results[1].base_deleted, 0u);
    EXPECT_GT(results[1].retracted, 0u);  // deletes must actually retract
    EXPECT_GT(results[1].retraction_rounds, 0u);
    EXPECT_GE(results[2].missing_deletes, 1u);  // the absent row was counted
  }
}

// ---------------------------------------------------------------------------
// CC: undirected mutations, component splits/merges, projection rebuild
// ---------------------------------------------------------------------------

using EdgeSet = std::set<std::pair<value_t, value_t>>;

EdgeSet symmetrized_set(const graph::Graph& g) {
  EdgeSet s;
  for (const auto& e : g.edges) {
    s.emplace(e.src, e.dst);
    s.emplace(e.dst, e.src);
  }
  return s;
}

/// Both directions of one undirected mutation — what the serving batch
/// carries and what the oracle set mirrors.
void add_undirected(std::vector<Mutation>& out, bool insert, value_t u, value_t v) {
  out.push_back({insert, Tuple{u, v}});
  if (u != v) out.push_back({insert, Tuple{v, u}});
}

void apply_to_set(EdgeSet& s, std::span<const Mutation> muts) {
  for (const auto& m : muts) {
    const std::pair<value_t, value_t> p{m.row[0], m.row[1]};
    if (m.insert) {
      s.insert(p);
    } else {
      s.erase(p);
    }
  }
}

struct CcOracle {
  std::vector<Tuple> labels;
  std::uint64_t components = 0;
};

/// From-scratch CC on the pre-symmetrized edge set (symmetrize=false so
/// the oracle's relation content equals the maintained one exactly).
CcOracle fresh_cc(const EdgeSet& s, std::uint64_t num_nodes) {
  graph::Graph g;
  g.num_nodes = num_nodes;
  for (const auto& [u, v] : s) g.edges.push_back({u, v, 1});
  CcOracle o;
  vmpi::run(3, [&](vmpi::Comm& comm) {
    queries::CcOptions opts;
    opts.symmetrize = false;
    opts.collect_labels = true;
    auto r = queries::run_cc(comm, g, opts);
    if (comm.rank() == 0) {
      o.labels = std::move(r.labels);
      o.components = r.component_count;
    }
  });
  return o;
}

TEST(Serving, CcBatchesMatchFreshRunsAcrossRankCounts) {
  const auto g = graph::make_rmat({.scale = 6, .edge_factor = 3, .seed = 19});

  std::vector<std::vector<Mutation>> stages(3);
  add_undirected(stages[0], true, 2, 50);  // may merge components
  add_undirected(stages[0], true, 9, 61);
  add_undirected(stages[1], false, g.edges[1].src, g.edges[1].dst);  // may split
  add_undirected(stages[1], false, g.edges[3].src, g.edges[3].dst);
  add_undirected(stages[2], false, g.edges[5].src, g.edges[5].dst);
  add_undirected(stages[2], true, 7, 58);
  add_undirected(stages[2], false, 70, 71);  // absent: a counted miss

  std::vector<CcOracle> expected;
  {
    EdgeSet cur = symmetrized_set(g);
    for (const auto& s : stages) {
      apply_to_set(cur, s);
      expected.push_back(fresh_cc(cur, g.num_nodes));
    }
  }

  for (const int ranks : {2, 5}) {
    SCOPED_TRACE("ranks=" + std::to_string(ranks));
    const auto nr = static_cast<std::size_t>(ranks);
    std::vector<std::vector<std::vector<Tuple>>> labels(stages.size(),
                                                        std::vector<std::vector<Tuple>>(nr));
    std::vector<std::vector<std::uint64_t>> comps(stages.size(),
                                                  std::vector<std::uint64_t>(nr, 0));
    std::vector<serving::UpdateResult> results(stages.size());
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      auto prog = queries::build_cc_program(comm, 1, /*balance_edges=*/false);
      serving::ServingEngine srv(comm, *prog.program, {});
      queries::load_cc_facts(prog, g, /*symmetrize=*/true);
      srv.start();
      const auto me = static_cast<std::size_t>(comm.rank());
      for (std::size_t s = 0; s < stages.size(); ++s) {
        const auto res = srv.apply_updates(shard_batch(comm, "edge", stages[s]));
        if (comm.rank() == 0) results[s] = res;
        labels[s][me] = srv.lookup("cc", {});
        // The projection stratum is rebuilt per batch: the representative
        // count is the fresh component count.
        comps[s][me] = srv.lookup("cc_representative", {}).size();
      }
    });

    for (std::size_t s = 0; s < stages.size(); ++s) {
      EXPECT_FALSE(results[s].aborted_fault) << "stage " << s;
      for (std::size_t r = 0; r < nr; ++r) {
        EXPECT_EQ(labels[s][r], expected[s].labels) << "stage " << s << ", rank " << r;
        EXPECT_EQ(comps[s][r], expected[s].components) << "stage " << s << ", rank " << r;
      }
    }
    EXPECT_GT(results[1].retracted, 0u);
    EXPECT_GE(results[2].missing_deletes, 2u);  // both directions missed
  }
}

// ---------------------------------------------------------------------------
// Warm start across rank counts (manifest at 4 ranks, serve at 7)
// ---------------------------------------------------------------------------

TEST(Serving, WarmStartAcrossRankCountsServesIdenticalLookups) {
  const std::string path = testing::TempDir() + "/paralagg_serving_warm.bin";
  std::remove(path.c_str());
  const auto g = graph::make_rmat({.scale = 5, .edge_factor = 4, .seed = 11});

  std::vector<Mutation> batch_a{{true, Tuple{1, 20, 1}}};
  for (const Tuple& t : pick_edges(g, 0, 1)) batch_a.push_back({false, t});
  std::vector<Mutation> batch_b{{true, Tuple{2, 25, 2}}};
  for (const Tuple& t : pick_edges(g, 3, 1)) batch_b.push_back({false, t});

  graph::Graph ga = g;
  apply_to_graph(ga, batch_a);
  graph::Graph gab = ga;
  apply_to_graph(gab, batch_b);
  const auto expected_a = fresh_sssp(ga);
  const auto expected_ab = fresh_sssp(gab);

  serving::ServingConfig cfg;
  cfg.manifest_path = path;
  cfg.checkpoint_every_batches = 1;

  // Leg 1: cold start at 4 ranks, one batch, rolling manifest written.
  std::vector<Tuple> leg1_rows;
  bool leg1_checkpointed = false;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    auto prog = queries::build_sssp_program(comm, 1, /*balance_edges=*/false);
    serving::ServingEngine srv(comm, *prog.program, cfg);
    EXPECT_FALSE(srv.can_warm_start());
    queries::load_sssp_facts(prog, g, std::vector<value_t>{0});
    srv.start();
    const auto res = srv.apply_updates(shard_batch(comm, "edge", batch_a));
    if (comm.rank() == 0) {
      leg1_checkpointed = res.checkpointed;
      leg1_rows = srv.lookup("spath", {});
    } else {
      (void)srv.lookup("spath", {});  // lookups are collective
    }
  });
  EXPECT_TRUE(leg1_checkpointed);
  EXPECT_EQ(leg1_rows, expected_a);

  // Leg 2: a 7-rank service warm-starts from the 4-rank manifest — no
  // facts loaded — and both lookups and further batches behave as if the
  // service had never gone down.
  const int ranks2 = 7;
  std::vector<int> warm(ranks2, 0), resumed(ranks2, 0);
  std::vector<std::vector<Tuple>> rows_a(ranks2), rows_ab(ranks2);
  vmpi::run(ranks2, [&](vmpi::Comm& comm) {
    auto prog = queries::build_sssp_program(comm, 1, /*balance_edges=*/false);
    serving::ServingEngine srv(comm, *prog.program, cfg);
    const auto me = static_cast<std::size_t>(comm.rank());
    warm[me] = srv.can_warm_start() ? 1 : 0;
    const auto rr = srv.start();
    resumed[me] = rr.resumed ? 1 : 0;
    rows_a[me] = srv.lookup("spath", {});
    const auto res = srv.apply_updates(shard_batch(comm, "edge", batch_b));
    EXPECT_FALSE(res.aborted_fault);
    rows_ab[me] = srv.lookup("spath", {});
  });
  for (int r = 0; r < ranks2; ++r) {
    EXPECT_TRUE(warm[static_cast<std::size_t>(r)]) << "rank " << r;
    EXPECT_TRUE(resumed[static_cast<std::size_t>(r)]) << "rank " << r;
    EXPECT_EQ(rows_a[static_cast<std::size_t>(r)], expected_a) << "rank " << r;
    EXPECT_EQ(rows_ab[static_cast<std::size_t>(r)], expected_ab) << "rank " << r;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Kill mid-batch, warm-resume from the rolling manifest, replay
// ---------------------------------------------------------------------------

TEST(Serving, KillDuringBatchThenWarmResumeReplays) {
  const std::string path = testing::TempDir() + "/paralagg_serving_kill.bin";
  std::remove(path.c_str());
  // Unit-weight chain: batch 1 reweights edge 10 -> 11, so its tail
  // re-derives the whole suffix — a wide epoch window to land a kill in.
  const auto g = graph::make_chain(48, /*max_weight=*/1);
  const Tuple reweighted{g.edges[10].src, g.edges[10].dst, g.edges[10].weight};
  const std::vector<std::vector<Mutation>> batches{
      {{true, Tuple{0, 47, 1000}}},  // a losing shortcut (chain dist is 47)
      {{false, reweighted}, {true, Tuple{reweighted[0], reweighted[1], reweighted[2] + 1}}},
  };

  graph::Graph final_g = g;
  for (const auto& b : batches) apply_to_graph(final_g, b);
  const auto oracle = fresh_sssp(final_g);

  // Clean measuring leg: epochs advance once per engine loop iteration,
  // so the iteration counts locate batch 1's tail on the epoch axis.
  std::size_t start_iters = 0, tail0 = 0, tail1 = 0;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    auto prog = queries::build_sssp_program(comm, 1, /*balance_edges=*/false);
    serving::ServingEngine srv(comm, *prog.program, {});
    queries::load_sssp_facts(prog, g, std::vector<value_t>{0});
    const auto rr = srv.start();
    const auto r0 = srv.apply_updates(shard_batch(comm, "edge", batches[0]));
    const auto r1 = srv.apply_updates(shard_batch(comm, "edge", batches[1]));
    if (comm.rank() == 0) {
      start_iters = rr.total_iterations;
      tail0 = r0.tail_iterations;
      tail1 = r1.tail_iterations;
    }
  });
  ASSERT_GE(tail1, 8u) << "batch 1's tail is too short to target reliably";

  // Killed leg: rank 1 dies in the middle of batch 1's tail, after the
  // rolling manifest for batch 0 was written.
  const int ranks = 4;
  vmpi::RunOptions opt;
  opt.fault.kill_rank = 1;
  opt.fault.kill_epoch = static_cast<std::uint64_t>(start_iters + tail0 + tail1 / 2);
  opt.watchdog_seconds = kWatchdog;
  serving::ServingConfig cfg;
  cfg.manifest_path = path;
  cfg.checkpoint_every_batches = 1;
  std::vector<int> aborted(ranks, 0);
  std::vector<std::uint64_t> applied(ranks, 0);
  vmpi::run(ranks, opt, [&](vmpi::Comm& comm) {
    auto prog = queries::build_sssp_program(comm, 1, /*balance_edges=*/false);
    serving::ServingEngine srv(comm, *prog.program, cfg);
    EXPECT_FALSE(srv.can_warm_start());
    queries::load_sssp_facts(prog, g, std::vector<value_t>{0});
    srv.start();
    const auto me = static_cast<std::size_t>(comm.rank());
    for (const auto& b : batches) {
      const auto res = srv.apply_updates(shard_batch(comm, "edge", b));
      if (res.aborted_fault) {
        aborted[me] = 1;
        break;  // the engine is dead; a real service would exec() here
      }
      ++applied[me];
    }
  });
  for (int r = 0; r < ranks; ++r) {
    EXPECT_EQ(aborted[static_cast<std::size_t>(r)], 1) << "rank " << r;
    EXPECT_EQ(applied[static_cast<std::size_t>(r)], 1u) << "rank " << r;
  }

  // Resume leg, at a different rank count: warm-start from the manifest
  // and replay the batches the killed service never finished.
  const int ranks2 = 7;
  std::vector<int> warm(ranks2, 0);
  std::vector<std::vector<Tuple>> rows(ranks2);
  vmpi::run(ranks2, [&](vmpi::Comm& comm) {
    auto prog = queries::build_sssp_program(comm, 1, /*balance_edges=*/false);
    serving::ServingEngine srv(comm, *prog.program, cfg);
    const auto me = static_cast<std::size_t>(comm.rank());
    warm[me] = srv.can_warm_start() ? 1 : 0;
    if (warm[me] == 0) {
      // Generic restart logic: no manifest would mean a cold replay.
      queries::load_sssp_facts(prog, g, std::vector<value_t>{0});
    }
    srv.start();
    for (std::size_t i = applied[0]; i < batches.size(); ++i) {
      const auto res = srv.apply_updates(shard_batch(comm, "edge", batches[i]));
      EXPECT_FALSE(res.aborted_fault);
    }
    rows[me] = srv.lookup("spath", {});
  });
  for (int r = 0; r < ranks2; ++r) {
    EXPECT_TRUE(warm[static_cast<std::size_t>(r)]) << "rank " << r;
    EXPECT_EQ(rows[static_cast<std::size_t>(r)], oracle) << "rank " << r;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Typed failures: unservable programs and API misuse
// ---------------------------------------------------------------------------

TEST(Serving, RejectsUnservableProgramsAndMisuse) {
  // A program with no recursive stratum has nothing to maintain.
  vmpi::run(2, [&](vmpi::Comm& comm) {
    core::Program p(comm);
    auto* a = p.relation({.name = "a", .arity = 1, .jcc = 1});
    auto* b = p.relation({.name = "b", .arity = 1, .jcc = 1});
    auto& s = p.stratum();
    s.init_rules.push_back(
        core::CopyRule{.src = a,
                       .version = core::Version::kFull,
                       .out = {.target = b, .cols = {queries::Expr::col_a(0)}}});
    EXPECT_THROW(serving::ServingEngine(comm, p, {}), serving::ServingError);
  });

  const auto g = graph::make_chain(8, 1);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    auto prog = queries::build_sssp_program(comm, 1, /*balance_edges=*/false);
    serving::ServingEngine srv(comm, *prog.program, {});
    // Everything before start() is a typed error, not a silent no-op.
    EXPECT_THROW((void)srv.lookup("spath", {}), serving::ServingError);
    EXPECT_THROW((void)srv.apply_updates({}), serving::ServingError);
    queries::load_sssp_facts(prog, g, std::vector<value_t>{0});
    srv.start();
    EXPECT_THROW((void)srv.start(), serving::ServingError);
    EXPECT_THROW((void)srv.lookup("no_such_relation", {}), serving::ServingError);
    const std::vector<value_t> too_long{1, 2, 3};
    EXPECT_THROW((void)srv.lookup("spath", too_long), serving::ServingError);
    // Updates may only target base relations — spath is derived.
    serving::UpdateBatch bad;
    bad.push_back({.relation = "spath", .inserts = {Tuple{1, 2, 3}}, .deletes = {}});
    EXPECT_THROW((void)srv.apply_updates(bad), serving::ServingError);
    // The typed failure left the service untouched: it still answers.
    EXPECT_FALSE(srv.lookup("spath", {}).empty());
  });
}

}  // namespace
}  // namespace paralagg

// Virtual MPI substrate: collectives, point-to-point, abort propagation,
// byte accounting.

#include "vmpi/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>

namespace paralagg::vmpi {
namespace {

TEST(Runtime, RunsEveryRankExactlyOnce) {
  std::atomic<int> visits{0};
  std::array<std::atomic<bool>, 8> seen{};
  run(8, [&](Comm& comm) {
    ++visits;
    seen[static_cast<std::size_t>(comm.rank())] = true;
    EXPECT_EQ(comm.size(), 8);
  });
  EXPECT_EQ(visits.load(), 8);
  for (const auto& s : seen) EXPECT_TRUE(s.load());
}

TEST(Runtime, SingleRankWorld) {
  run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.allreduce<int>(5, ReduceOp::kSum), 5);
    comm.barrier();
  });
}

TEST(Runtime, RejectsNonPositiveRankCount) {
  EXPECT_THROW(run(0, [](Comm&) {}), std::invalid_argument);
}

TEST(Runtime, PropagatesRankException) {
  EXPECT_THROW(run(4,
                   [&](Comm& comm) {
                     if (comm.rank() == 2) throw std::runtime_error("rank 2 died");
                     // Other ranks block; abort must release them.
                     comm.barrier();
                     comm.barrier();
                   }),
               std::runtime_error);
}

TEST(Runtime, AbortReleasesBlockedRecv) {
  EXPECT_THROW(run(2,
                   [&](Comm& comm) {
                     if (comm.rank() == 0) throw std::runtime_error("boom");
                     (void)comm.recv(0, 1);  // would block forever without abort
                   }),
               std::runtime_error);
}

TEST(Allreduce, SumMinMax) {
  run(7, [&](Comm& comm) {
    const int r = comm.rank();
    EXPECT_EQ(comm.allreduce<int>(r, ReduceOp::kSum), 21);
    EXPECT_EQ(comm.allreduce<int>(r, ReduceOp::kMin), 0);
    EXPECT_EQ(comm.allreduce<int>(r, ReduceOp::kMax), 6);
  });
}

TEST(Allreduce, LogicalOps) {
  run(4, [&](Comm& comm) {
    const std::uint8_t mine = comm.rank() == 2 ? 0 : 1;
    EXPECT_EQ(comm.allreduce<std::uint8_t>(mine, ReduceOp::kLand), 0);
    EXPECT_EQ(comm.allreduce<std::uint8_t>(mine, ReduceOp::kLor), 1);
  });
}

TEST(Allreduce, RepeatedCallsDoNotInterfere) {
  run(5, [&](Comm& comm) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(comm.allreduce<int>(comm.rank() + i, ReduceOp::kSum),
                10 + 5 * i);
    }
  });
}

TEST(Allgather, CollectsInRankOrder) {
  run(6, [&](Comm& comm) {
    const auto all = comm.allgather<std::uint64_t>(comm.rank() * 11u);
    ASSERT_EQ(all.size(), 6u);
    for (int r = 0; r < 6; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 11u);
  });
}

TEST(Bcast, ValueReachesAllRanks) {
  run(5, [&](Comm& comm) {
    const std::uint64_t v = comm.rank() == 3 ? 777 : 0;
    EXPECT_EQ(comm.bcast_value<std::uint64_t>(3, v), 777u);
  });
}

TEST(Bcast, BufferReachesAllRanks) {
  run(3, [&](Comm& comm) {
    Bytes data;
    if (comm.rank() == 0) {
      BufferWriter w;
      for (std::uint64_t i = 0; i < 100; ++i) w.put(i);
      data = w.take();
    }
    auto out = comm.bcast(0, data);
    BufferReader r(out);
    for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(r.get<std::uint64_t>(), i);
    EXPECT_TRUE(r.done());
  });
}

TEST(Gatherv, RootSeesAllBuffers) {
  run(4, [&](Comm& comm) {
    BufferWriter w;
    w.put<std::uint64_t>(comm.rank() * 2u);
    const auto mine = w.take();
    auto all = comm.gatherv(1, mine);
    if (comm.rank() == 1) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        BufferReader rd(all[static_cast<std::size_t>(r)]);
        EXPECT_EQ(rd.get<std::uint64_t>(), r * 2u);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Alltoallv, PersonalizedExchange) {
  run(4, [&](Comm& comm) {
    const int n = comm.size();
    // Rank r sends value r*10+d to rank d.
    std::vector<std::vector<std::uint64_t>> send(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      send[static_cast<std::size_t>(d)].push_back(
          static_cast<std::uint64_t>(comm.rank() * 10 + d));
    }
    auto got = comm.alltoallv_t(send);
    ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(got[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(got[static_cast<std::size_t>(s)][0],
                static_cast<std::uint64_t>(s * 10 + comm.rank()));
    }
  });
}

TEST(Alltoallv, EmptyAndAsymmetricBuffers) {
  run(3, [&](Comm& comm) {
    std::vector<std::vector<std::uint32_t>> send(3);
    // Only rank 0 sends, and only to rank 2.
    if (comm.rank() == 0) send[2] = {1, 2, 3};
    auto got = comm.alltoallv_t(send);
    std::size_t total = 0;
    for (const auto& b : got) total += b.size();
    EXPECT_EQ(total, comm.rank() == 2 ? 3u : 0u);
  });
}

TEST(PointToPoint, SendRecvByTag) {
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      BufferWriter w;
      w.put<std::uint64_t>(111);
      const auto first = w.take();
      BufferWriter w2;
      w2.put<std::uint64_t>(222);
      const auto second = w2.take();
      comm.isend(1, /*tag=*/7, first);
      comm.isend(1, /*tag=*/9, second);
    } else {
      // Receive out of order by tag.
      auto nine = comm.recv(0, 9);
      auto seven = comm.recv(0, 7);
      EXPECT_EQ(BufferReader(nine).get<std::uint64_t>(), 222u);
      EXPECT_EQ(BufferReader(seven).get<std::uint64_t>(), 111u);
    }
  });
}

TEST(PointToPoint, WildcardSourceAndTag) {
  run(3, [&](Comm& comm) {
    if (comm.rank() != 0) {
      BufferWriter w;
      w.put<std::uint64_t>(static_cast<std::uint64_t>(comm.rank()));
      comm.isend(0, comm.rank(), w.take());
    } else {
      std::uint64_t sum = 0;
      for (int i = 0; i < 2; ++i) {
        int src = -2, tag = -2;
        auto data = comm.recv(kAnySource, kAnyTag, &src, &tag);
        EXPECT_EQ(src, tag);  // we used rank as tag
        sum += BufferReader(data).get<std::uint64_t>();
      }
      EXPECT_EQ(sum, 3u);
    }
    comm.barrier();
  });
}

TEST(PointToPoint, IprobeSeesPendingMessage) {
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      BufferWriter w;
      w.put<int>(1);
      comm.isend(1, 5, w.take());
      comm.barrier();
    } else {
      comm.barrier();  // ensure the send happened
      EXPECT_TRUE(comm.iprobe(0, 5));
      EXPECT_TRUE(comm.iprobe(kAnySource, kAnyTag));
      EXPECT_FALSE(comm.iprobe(0, 6));
      (void)comm.recv(0, 5);
      EXPECT_FALSE(comm.iprobe(0, 5));
    }
  });
}

TEST(PointToPoint, WildcardMatchingIsFifoPerPattern) {
  // Among queued messages matching a wildcard pattern, the earliest
  // enqueued must be delivered first — the async engine's drain loop
  // depends on arrival order being preserved per tag.
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (std::uint64_t i = 0; i < 4; ++i) {
        BufferWriter w;
        w.put(i);
        // Alternate tags; wildcard receives must still see 0,1,2,3.
        comm.isend(1, /*tag=*/static_cast<int>(10 + i % 2), w.take());
      }
      comm.barrier();
    } else {
      comm.barrier();  // all four messages are queued now
      for (std::uint64_t i = 0; i < 4; ++i) {
        int tag = -2;
        auto data = comm.recv(kAnySource, kAnyTag, nullptr, &tag);
        EXPECT_EQ(BufferReader(data).get<std::uint64_t>(), i);
        EXPECT_EQ(tag, static_cast<int>(10 + i % 2));
      }
    }
    comm.barrier();
    // Second wave: tag-filtered wildcard-source receive skips non-matching
    // messages but stays FIFO within the tag.
    if (comm.rank() == 0) {
      for (std::uint64_t i = 0; i < 4; ++i) {
        BufferWriter w;
        w.put(i);
        comm.isend(1, static_cast<int>(20 + i % 2), w.take());
      }
      comm.barrier();
    } else {
      comm.barrier();
      int src = -2;
      auto a = comm.recv(kAnySource, 21, &src);  // second-enqueued message
      EXPECT_EQ(BufferReader(a).get<std::uint64_t>(), 1u);
      EXPECT_EQ(src, 0);
      auto b = comm.recv(kAnySource, 21);
      EXPECT_EQ(BufferReader(b).get<std::uint64_t>(), 3u);
      auto c = comm.recv(kAnySource, 20);
      EXPECT_EQ(BufferReader(c).get<std::uint64_t>(), 0u);
      auto d = comm.recv(kAnySource, 20);
      EXPECT_EQ(BufferReader(d).get<std::uint64_t>(), 2u);
    }
  });
}

TEST(PointToPoint, DrainDeliversAllQueuedForTag) {
  run(3, [&](Comm& comm) {
    if (comm.rank() != 0) {
      for (int i = 0; i < 3; ++i) {
        BufferWriter w;
        w.put<std::uint64_t>(static_cast<std::uint64_t>(comm.rank() * 10 + i));
        comm.isend(0, /*tag=*/5, w.take());
      }
      BufferWriter other;
      other.put<std::uint64_t>(999);
      comm.isend(0, /*tag=*/6, other.take());
      comm.barrier();
    } else {
      comm.barrier();  // 6 tag-5 messages and 2 tag-6 messages queued
      std::vector<std::uint64_t> got;
      std::vector<int> sources;
      const auto n = comm.drain(5, [&](int src, Bytes payload) {
        sources.push_back(src);
        got.push_back(BufferReader(payload).get<std::uint64_t>());
      });
      EXPECT_EQ(n, 6u);
      EXPECT_EQ(got.size(), 6u);
      // Per-source arrival order is preserved.
      std::uint64_t prev1 = 0, prev2 = 0;
      for (std::size_t i = 0; i < got.size(); ++i) {
        auto& prev = sources[i] == 1 ? prev1 : prev2;
        EXPECT_GE(got[i], prev);
        prev = got[i];
      }
      // The tag-6 messages are untouched.
      EXPECT_EQ(comm.drain(5, [](int, Bytes) {}), 0u);
      std::size_t sixes = comm.drain(6, [](int, Bytes) {});
      EXPECT_EQ(sixes, 2u);
    }
    comm.barrier();
  });
}

TEST(Stats, P2PMessageAndByteCountersMatchTraffic) {
  std::vector<CommStats> per_rank;
  run_collect(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 0) {
          BufferWriter w;
          for (int i = 0; i < 4; ++i) w.put<std::uint64_t>(1);
          comm.isend(1, 3, w.take());  // 32 bytes
          BufferWriter w2;
          w2.put<std::uint64_t>(2);
          comm.isend(1, 3, w2.take());  // 8 bytes
          comm.barrier();
        } else {
          (void)comm.recv(0, 3);
          (void)comm.recv(0, 3);
          comm.barrier();
        }
      },
      per_rank);
  EXPECT_EQ(per_rank[0].messages_sent, 2u);
  EXPECT_EQ(per_rank[0].messages_received, 0u);
  EXPECT_EQ(per_rank[1].messages_received, 2u);
  EXPECT_EQ(per_rank[1].p2p_bytes_received, 40u);
}

TEST(Stats, WaitSecondsAccumulatesOnBlockedRecv) {
  std::vector<CommStats> per_rank;
  run_collect(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 0) {
          // Make rank 1 block in recv for a measurable moment.
          const auto t0 = std::chrono::steady_clock::now();
          while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(20)) {
          }
          BufferWriter w;
          w.put<std::uint64_t>(7);
          comm.isend(1, 2, w.take());
        } else {
          (void)comm.recv(0, 2);
        }
      },
      per_rank);
  EXPECT_GT(per_rank[1].wait_seconds, 0.0);
}

TEST(Stats, AlltoallvCountsRemoteVsLocalBytes) {
  std::vector<CommStats> per_rank;
  run_collect(
      4,
      [&](Comm& comm) {
        std::vector<std::vector<std::uint64_t>> send(4);
        for (int d = 0; d < 4; ++d) send[static_cast<std::size_t>(d)] = {1, 2};
        (void)comm.alltoallv_t(send);
      },
      per_rank);
  for (const auto& st : per_rank) {
    // 2 values * 8 bytes to each of 3 remote ranks; 16 bytes to self.
    EXPECT_EQ(st.remote_bytes(Op::kAlltoallv), 3u * 16u);
    EXPECT_EQ(st.bytes_local[static_cast<std::size_t>(Op::kAlltoallv)], 16u);
  }
}

TEST(Stats, AllreduceVoteCostsOneIntegerPerRank) {
  // The paper stresses that the join-planning vote moves a single small
  // integer; verify the accounting shows exactly that.
  std::vector<CommStats> per_rank;
  run_collect(
      8, [&](Comm& comm) { (void)comm.allreduce<std::uint32_t>(1, ReduceOp::kSum); },
      per_rank);
  for (const auto& st : per_rank) {
    EXPECT_EQ(st.remote_bytes(Op::kAllreduce), sizeof(std::uint32_t) * 7);
  }
}

TEST(Stats, PerKindCountersSplitIntraVsCrossNodeBytes) {
  // Under a grouped topology every collective kind carries its own
  // locality split: 4 ranks on 2 nodes of 2 means each rank's n-1 remote
  // blocks divide into 1 on-node peer and 2 off-node peers, per kind.
  RunOptions options;
  options.topology = Topology::grouped(4, 2);
  std::vector<CommStats> per_rank;
  run_collect(
      4, options,
      [&](Comm& comm) {
        (void)comm.allreduce<std::uint64_t>(1, ReduceOp::kSum);
        (void)comm.allgather<std::uint64_t>(2);
        std::vector<std::vector<std::uint64_t>> send(4);
        for (auto& s : send) s = {1, 2, 3};
        (void)comm.alltoallv_t(send);
      },
      per_rank);
  for (const auto& st : per_rank) {
    for (const Op op : {Op::kAllreduce, Op::kAllgather}) {
      EXPECT_EQ(st.remote_bytes(op), 24u);
      EXPECT_EQ(st.intra_node_bytes(op), 8u);
      EXPECT_EQ(st.cross_node_bytes(op), 16u);
    }
    EXPECT_EQ(st.remote_bytes(Op::kAlltoallv), 72u);
    EXPECT_EQ(st.intra_node_bytes(Op::kAlltoallv), 24u);
    EXPECT_EQ(st.cross_node_bytes(Op::kAlltoallv), 48u);
    // Per-kind splits are exhaustive: intra + cross == remote, and the
    // world totals are the per-kind sums.
    std::uint64_t cross = 0;
    for (const Op op : {Op::kAllreduce, Op::kAllgather, Op::kAlltoallv}) {
      EXPECT_EQ(st.intra_node_bytes(op) + st.cross_node_bytes(op), st.remote_bytes(op));
      cross += st.cross_node_bytes(op);
    }
    EXPECT_EQ(st.total_cross_node_bytes(), cross);
  }
}

TEST(Stats, PauseSuppressesAccounting) {
  std::vector<CommStats> per_rank;
  run_collect(
      2,
      [&](Comm& comm) {
        {
          StatsPause pause(comm);
          (void)comm.allreduce<std::uint64_t>(1, ReduceOp::kSum);
        }
        EXPECT_TRUE(comm.stats_enabled());
      },
      per_rank);
  for (const auto& st : per_rank) {
    EXPECT_EQ(st.total_remote_bytes(), 0u);
  }
}

TEST(Stats, TotalsAggregateAcrossRanks) {
  const auto total = run(3, [&](Comm& comm) {
    (void)comm.allgather<std::uint64_t>(1);
  });
  EXPECT_EQ(total.remote_bytes(Op::kAllgather), 3u * 2u * sizeof(std::uint64_t));
  EXPECT_EQ(total.calls[static_cast<std::size_t>(Op::kAllgather)], 3u);
}

TEST(Serialize, RoundTripMixedTypes) {
  BufferWriter w;
  w.put<std::uint64_t>(42);
  w.put<double>(2.5);
  const std::uint32_t arr[] = {7, 8, 9};
  w.put_span(std::span<const std::uint32_t>(arr, 3));
  const auto bytes = w.take();

  BufferReader r(bytes);
  EXPECT_EQ(r.get<std::uint64_t>(), 42u);
  EXPECT_EQ(r.get<double>(), 2.5);
  std::uint32_t out[3];
  r.get_into(std::span<std::uint32_t>(out, 3));
  EXPECT_EQ(out[2], 9u);
  EXPECT_TRUE(r.done());
}

TEST(Bruck, MatchesDenseAlltoallv) {
  for (const int ranks : {2, 3, 5, 8, 13}) {  // includes non-powers-of-two
    run(ranks, [&](Comm& comm) {
      const int n = comm.size();
      std::vector<Bytes> send(static_cast<std::size_t>(n));
      std::vector<Bytes> send2(static_cast<std::size_t>(n));
      for (int d = 0; d < n; ++d) {
        BufferWriter w;
        // Variable-size payloads, some empty.
        const int count = (comm.rank() + d) % 4;
        for (int i = 0; i < count; ++i) {
          w.put<std::uint64_t>(static_cast<std::uint64_t>(comm.rank() * 1000 + d * 10 + i));
        }
        send[static_cast<std::size_t>(d)] = w.take();
        send2[static_cast<std::size_t>(d)] = send[static_cast<std::size_t>(d)];
      }
      const auto dense = comm.alltoallv(std::move(send));
      const auto bruck = comm.alltoallv_bruck(std::move(send2));
      ASSERT_EQ(bruck.size(), dense.size());
      for (int s = 0; s < n; ++s) {
        EXPECT_EQ(bruck[static_cast<std::size_t>(s)], dense[static_cast<std::size_t>(s)])
            << "ranks=" << ranks << " from=" << s;
      }
    });
  }
}

TEST(Bruck, LogarithmicMessageCount) {
  std::vector<CommStats> per_rank;
  run_collect(
      16,
      [&](Comm& comm) {
        std::vector<Bytes> send(16);
        for (auto& b : send) {
          BufferWriter w;
          w.put<std::uint64_t>(1);
          b = w.take();
        }
        (void)comm.alltoallv_bruck(std::move(send));
      },
      per_rank);
  for (const auto& st : per_rank) {
    EXPECT_EQ(st.messages_sent, 4u);  // log2(16) rounds, one message each
  }
}

TEST(Bruck, BackToBackCallsDoNotCrossMatch) {
  run(4, [&](Comm& comm) {
    for (int round = 0; round < 5; ++round) {
      std::vector<Bytes> send(4);
      BufferWriter w;
      w.put<std::uint64_t>(static_cast<std::uint64_t>(comm.rank() * 100 + round));
      send[static_cast<std::size_t>((comm.rank() + 1) % 4)] = w.take();
      const auto got = comm.alltoallv_bruck(std::move(send));
      const int src = (comm.rank() + 3) % 4;
      BufferReader r(got[static_cast<std::size_t>(src)]);
      EXPECT_EQ(r.get<std::uint64_t>(), static_cast<std::uint64_t>(src * 100 + round));
    }
  });
}

TEST(Ialltoallv, MatchesDenseAlltoallv) {
  for (const int ranks : {1, 2, 3, 5, 8, 13}) {
    run(ranks, [&](Comm& comm) {
      const int n = comm.size();
      std::vector<Bytes> send(static_cast<std::size_t>(n));
      std::vector<Bytes> send2(static_cast<std::size_t>(n));
      for (int d = 0; d < n; ++d) {
        BufferWriter w;
        // Variable-size payloads, some empty.
        const int count = (comm.rank() + d) % 4;
        for (int i = 0; i < count; ++i) {
          w.put<std::uint64_t>(static_cast<std::uint64_t>(comm.rank() * 1000 + d * 10 + i));
        }
        send[static_cast<std::size_t>(d)] = w.take();
        send2[static_cast<std::size_t>(d)] = send[static_cast<std::size_t>(d)];
      }
      const auto dense = comm.alltoallv(std::move(send));
      auto ticket = comm.ialltoallv(std::move(send2));
      EXPECT_TRUE(ticket.active());
      const auto split = comm.wait(ticket);
      EXPECT_FALSE(ticket.active());
      ASSERT_EQ(split.size(), dense.size());
      for (int s = 0; s < n; ++s) {
        EXPECT_EQ(split[static_cast<std::size_t>(s)], dense[static_cast<std::size_t>(s)])
            << "ranks=" << ranks << " from=" << s;
      }
    });
  }
}

TEST(Ialltoallv, TestMakesProgressWithoutBlocking) {
  run(2, [&](Comm& comm) {
    std::vector<Bytes> send(2);
    BufferWriter w;
    w.put<std::uint64_t>(static_cast<std::uint64_t>(comm.rank() + 1));
    send[static_cast<std::size_t>(1 - comm.rank())] = w.take();
    auto ticket = comm.ialltoallv(std::move(send));
    // Both posts have happened once the barrier releases, so test() must
    // drain the exchange to completion in finitely many polls.
    comm.barrier();
    while (!comm.test(ticket)) {
    }
    const auto got = comm.wait(ticket);
    BufferReader r(got[static_cast<std::size_t>(1 - comm.rank())]);
    EXPECT_EQ(r.get<std::uint64_t>(), static_cast<std::uint64_t>(2 - comm.rank()));
  });
}

TEST(Ialltoallv, TwoOutstandingTicketsDoNotCrossMatch) {
  run(3, [&](Comm& comm) {
    const auto n = static_cast<std::size_t>(comm.size());
    auto make_send = [&](std::uint64_t wave) {
      std::vector<Bytes> send(n);
      for (std::size_t d = 0; d < n; ++d) {
        BufferWriter w;
        w.put<std::uint64_t>(wave * 1000 + static_cast<std::uint64_t>(comm.rank()));
        send[d] = w.take();
      }
      return send;
    };
    // Post wave 1 then wave 2, complete them in reverse order: the per-post
    // tag sequence must keep the frames apart.
    auto first = comm.ialltoallv(make_send(1));
    auto second = comm.ialltoallv(make_send(2));
    const auto got2 = comm.wait(second);
    const auto got1 = comm.wait(first);
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_EQ(BufferReader(got1[s]).get<std::uint64_t>(), 1000u + s);
      EXPECT_EQ(BufferReader(got2[s]).get<std::uint64_t>(), 2000u + s);
    }
  });
}

TEST(Ialltoallv, StatsAttributeToAlltoallvNotP2P) {
  std::vector<CommStats> per_rank;
  run_collect(
      4,
      [&](Comm& comm) {
        std::vector<Bytes> send(4);
        for (int d = 0; d < 4; ++d) {
          BufferWriter w;
          w.put<std::uint64_t>(1);
          w.put<std::uint64_t>(2);
          send[static_cast<std::size_t>(d)] = w.take();
        }
        auto ticket = comm.ialltoallv(std::move(send));
        (void)comm.wait(ticket);
      },
      per_rank);
  for (const auto& st : per_rank) {
    // Same attribution as the blocking collective: 16 bytes to each of 3
    // remote ranks, 16 to self — and none of it double-counted as p2p.
    EXPECT_EQ(st.remote_bytes(Op::kAlltoallv), 3u * 16u);
    EXPECT_EQ(st.bytes_local[static_cast<std::size_t>(Op::kAlltoallv)], 16u);
    EXPECT_EQ(st.calls_of(Op::kAlltoallv), 1u);
    EXPECT_EQ(st.remote_bytes(Op::kP2P), 0u);
    EXPECT_EQ(st.messages_sent, 0u);
    EXPECT_EQ(st.messages_received, 0u);
    EXPECT_EQ(st.tickets_posted, 1u);
    EXPECT_EQ(st.tickets_completed, 1u);
  }
}

TEST(Split, GroupsByColorOrderedByKey) {
  run(8, [&](Comm& comm) {
    // Even ranks -> color 0, odd -> color 1; key reverses the rank order.
    const int color = comm.rank() % 2;
    auto sub = comm.split(color, /*key=*/-comm.rank());
    EXPECT_EQ(sub.comm().size(), 4);
    // Reversed key: parent rank 6 becomes sub-rank 1 of color 0, etc.
    const int expected = (comm.size() - 2 - (comm.rank() - color)) / 2;
    EXPECT_EQ(sub.comm().rank(), expected);
  });
}

TEST(Split, SubCommunicatorCollectivesAreIsolated) {
  run(6, [&](Comm& comm) {
    const int color = comm.rank() < 2 ? 0 : 1;  // groups of 2 and 4
    auto sub = comm.split(color, comm.rank());
    const auto sum = sub.comm().allreduce<std::uint64_t>(1, ReduceOp::kSum);
    EXPECT_EQ(sum, color == 0 ? 2u : 4u);
    // Group-local gather sees only group members.
    const auto all = sub.comm().allgather<std::uint64_t>(
        static_cast<std::uint64_t>(comm.rank()));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(sub.comm().size()));
    for (const auto v : all) {
      EXPECT_EQ(color == 0 ? v < 2 : v >= 2, true);
    }
    comm.barrier();  // parent still usable afterwards
  });
}

TEST(Split, RepeatedSplitsDoNotCollide) {
  run(4, [&](Comm& comm) {
    for (int i = 0; i < 3; ++i) {
      auto sub = comm.split(comm.rank() % 2, comm.rank());
      EXPECT_EQ(sub.comm().size(), 2);
      sub.comm().barrier();
    }
  });
}

TEST(ManyRanks, CollectivesScaleTo64Threads) {
  run(64, [&](Comm& comm) {
    const auto sum = comm.allreduce<std::uint64_t>(1, ReduceOp::kSum);
    EXPECT_EQ(sum, 64u);
    comm.barrier();
  });
}

TEST(Ialltoallv, WaitOnInactiveTicketThrowsDeterministically) {
  run(3, [&](Comm& comm) {
    std::vector<Bytes> send(static_cast<std::size_t>(comm.size()));
    BufferWriter w;
    w.put<std::uint64_t>(7);
    send[static_cast<std::size_t>((comm.rank() + 1) % comm.size())] = w.take();
    auto ticket = comm.ialltoallv(std::move(send));
    (void)comm.wait(ticket);
    EXPECT_FALSE(ticket.active());
    // A consumed ticket is a programming error, not a hang and not UB.
    EXPECT_THROW((void)comm.wait(ticket), std::logic_error);
    EXPECT_THROW((void)comm.test(ticket), std::logic_error);
  });
}

TEST(Ialltoallv, AllEmptySendsCompleteWithoutTraffic) {
  for (const int ranks : {1, 2, 5}) {
    run(ranks, [&](Comm& comm) {
      std::vector<Bytes> send(static_cast<std::size_t>(comm.size()));
      auto ticket = comm.ialltoallv(std::move(send));
      const auto got = comm.wait(ticket);
      EXPECT_FALSE(ticket.active());
      ASSERT_EQ(got.size(), static_cast<std::size_t>(comm.size()));
      for (const auto& b : got) EXPECT_TRUE(b.empty());
    });
  }
}

}  // namespace
}  // namespace paralagg::vmpi

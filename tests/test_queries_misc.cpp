// TC, PageRank, Lsp (leak ablation), and triangle counting vs. oracles.

#include <gtest/gtest.h>

#include <map>

#include "queries/lsp.hpp"
#include "queries/pagerank.hpp"
#include "queries/reference.hpp"
#include "queries/sssp_tree.hpp"
#include "queries/tc.hpp"
#include "queries/triangles.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg::queries {
namespace {

// ---- transitive closure ------------------------------------------------------

TEST(Tc, ChainClosureCount) {
  const auto g = graph::make_chain(12);
  vmpi::run(3, [&](vmpi::Comm& comm) {
    const auto result = run_tc(comm, g, TcOptions{});
    EXPECT_EQ(result.path_count, 66u);  // 11+10+...+1
  });
}

TEST(Tc, MatchesBfsOracle) {
  const auto g = graph::make_rmat({.scale = 6, .edge_factor = 2, .seed = 3});
  const auto oracle = reference::tc_size(g);
  vmpi::run(4, [&](vmpi::Comm& comm) {
    const auto result = run_tc(comm, g, TcOptions{});
    EXPECT_EQ(result.path_count, oracle);
  });
}

TEST(Tc, CycleClosureIsComplete) {
  graph::Graph g;
  g.name = "cycle";
  g.num_nodes = 5;
  for (value_t v = 0; v < 5; ++v) g.edges.push_back({v, (v + 1) % 5, 1});
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const auto result = run_tc(comm, g, TcOptions{});
    EXPECT_EQ(result.path_count, 25u);
  });
}

TEST(Tc, CollectedPairsMatchOracleSpotCheck) {
  const auto g = graph::make_random_tree(40, 1, 5);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    TcOptions opts;
    opts.collect_pairs = true;
    const auto result = run_tc(comm, g, opts);
    if (comm.rank() == 0) {
      // Root 0 reaches every other node in a tree rooted at 0.
      std::size_t from0 = 0;
      for (const auto& row : result.pairs) {
        if (row[1] == 0) ++from0;  // stored (dst, src)
      }
      EXPECT_EQ(from0, 39u);
    }
  });
}

// ---- PageRank -----------------------------------------------------------------

TEST(Pagerank, MatchesIntegerOracleExactly) {
  const auto g = graph::make_rmat({.scale = 7, .edge_factor = 4, .seed = 5});
  const auto oracle = reference::pagerank(g, 10);
  vmpi::run(4, [&](vmpi::Comm& comm) {
    PagerankOptions opts;
    opts.rounds = 10;
    opts.collect_ranks = true;
    const auto result = run_pagerank(comm, g, opts);
    EXPECT_EQ(result.rounds, 10u);
    EXPECT_EQ(result.ranked_nodes, g.num_nodes);
    if (comm.rank() == 0) {
      ASSERT_EQ(result.ranks.size(), g.num_nodes);
      for (const auto& row : result.ranks) {
        EXPECT_EQ(row[1], oracle[row[0]]) << "node " << row[0];
      }
    }
  });
}

TEST(Pagerank, UniformOnACycle) {
  // Symmetric structure: every node must converge to the same rank.
  graph::Graph g;
  g.name = "cycle";
  g.num_nodes = 8;
  for (value_t v = 0; v < 8; ++v) g.edges.push_back({v, (v + 1) % 8, 1});
  vmpi::run(2, [&](vmpi::Comm& comm) {
    PagerankOptions opts;
    opts.rounds = 60;  // 0.85^60 ~ 6e-5: geometric tail below the tolerance
    opts.collect_ranks = true;
    const auto result = run_pagerank(comm, g, opts);
    if (comm.rank() == 0) {
      ASSERT_FALSE(result.ranks.empty());
      const value_t first = result.ranks.front()[1];
      for (const auto& row : result.ranks) {
        EXPECT_EQ(row[1], first);  // symmetric graph -> exactly uniform
        EXPECT_NEAR(static_cast<double>(row[1]), static_cast<double>(kRankScale), 2000.0);
      }
    }
  });
}

TEST(Pagerank, HubReceivesMoreRankThanSpokes) {
  // Spokes all point at the hub.
  graph::Graph g;
  g.name = "in-star";
  g.num_nodes = 11;
  for (value_t v = 1; v <= 10; ++v) g.edges.push_back({v, 0, 1});
  vmpi::run(3, [&](vmpi::Comm& comm) {
    PagerankOptions opts;
    opts.rounds = 15;
    opts.collect_ranks = true;
    const auto result = run_pagerank(comm, g, opts);
    if (comm.rank() == 0) {
      value_t hub = 0, spoke = 0;
      for (const auto& row : result.ranks) {
        if (row[0] == 0) {
          hub = row[1];
        } else {
          spoke = row[1];
        }
      }
      EXPECT_GT(hub, 5 * spoke);
    }
  });
}

TEST(Pagerank, MassStaysBounded) {
  const auto g = graph::make_erdos_renyi(200, 1000, 1, 6);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    PagerankOptions opts;
    opts.rounds = 20;
    const auto result = run_pagerank(comm, g, opts);
    EXPECT_GT(result.total_mass, 0.3);
    EXPECT_LT(result.total_mass, 1.05);
  });
}

// ---- Lsp: the §III-A leak ablation --------------------------------------------

TEST(Lsp, StratifiedMatchesEccentricityOracle) {
  const auto g = graph::make_grid(6, 6, 10, 7);
  const auto oracle = reference::eccentricity(g, {0});
  vmpi::run(4, [&](vmpi::Comm& comm) {
    LspOptions opts;
    opts.sources = {0};
    const auto result = run_lsp(comm, g, opts);
    EXPECT_EQ(result.longest, oracle);
    // Stratified SpNorm holds exactly the final shortest paths.
    EXPECT_EQ(result.spnorm_count, result.spath_count);
  });
}

TEST(Lsp, LeakyPlanMaterializesTransients) {
  // Weighted graph with detours: transient (longer) path lengths exist
  // before $MIN collapses them.  The leaky plan materializes them all.
  const auto g = graph::make_erdos_renyi(60, 360, 50, 8);
  const auto oracle = reference::eccentricity(g, {0, 1});
  std::uint64_t clean_norm = 0, leaky_norm = 0;
  value_t leaky_longest = 0;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    LspOptions clean;
    clean.sources = {0, 1};
    const auto r1 = run_lsp(comm, g, clean);
    LspOptions leaky = clean;
    leaky.plan = LspPlan::kLeaky;
    const auto r2 = run_lsp(comm, g, leaky);
    if (comm.rank() == 0) {
      clean_norm = r1.spnorm_count;
      leaky_norm = r2.spnorm_count;
      leaky_longest = r2.longest;
    }
    EXPECT_EQ(r1.longest, oracle);
  });
  // The leak: strictly more tuples materialized, and the observed "longest"
  // is contaminated by transient lengths (>= the true eccentricity).
  EXPECT_GT(leaky_norm, clean_norm);
  EXPECT_GE(leaky_longest, oracle);
}

// ---- shortest-path tree ($ARGMIN, two dependent columns) ----------------------

TEST(SsspTree, DistancesMatchDijkstraAndParentsAreValid) {
  const auto g = graph::make_erdos_renyi(120, 700, 20, 13);
  const auto oracle = reference::sssp(g, {0});
  // Edge weights keyed for parent validation.
  std::map<std::pair<value_t, value_t>, value_t> wmin;
  for (const auto& e : g.edges) {
    const auto it = wmin.find({e.src, e.dst});
    if (it == wmin.end() || e.weight < it->second) wmin[{e.src, e.dst}] = e.weight;
  }
  vmpi::run(4, [&](vmpi::Comm& comm) {
    SsspTreeOptions opts;
    opts.source = 0;
    const auto result = run_sssp_tree(comm, g, opts);
    EXPECT_EQ(result.reached, oracle.size());
    if (comm.rank() == 0) {
      std::map<value_t, std::pair<value_t, value_t>> rows;  // node -> (dist, parent)
      for (const auto& row : result.tree) rows[row[0]] = {row[1], row[2]};
      for (const auto& [node, dp] : rows) {
        const auto [dist, parent] = dp;
        const auto it = oracle.find({0, node});
        ASSERT_NE(it, oracle.end());
        EXPECT_EQ(dist, it->second) << "node " << node;
        if (node == 0) {
          EXPECT_EQ(parent, 0u);  // the source witnesses itself
          continue;
        }
        // Tree property: parent reached, and some (parent -> node) edge
        // closes the distance exactly.
        ASSERT_TRUE(rows.contains(parent)) << "node " << node;
        const auto we = wmin.find({parent, node});
        ASSERT_NE(we, wmin.end()) << parent << "->" << node;
        EXPECT_EQ(rows.at(parent).first + we->second, dist)
            << "edge " << parent << "->" << node << " does not close the path";
      }
    }
  });
}

TEST(SsspTree, ChainParentsAreSequential) {
  const auto g = graph::make_chain(15, 5, 3);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    SsspTreeOptions opts;
    opts.source = 0;
    const auto result = run_sssp_tree(comm, g, opts);
    EXPECT_EQ(result.reached, 15u);
    if (comm.rank() == 0) {
      for (const auto& row : result.tree) {
        if (row[0] == 0) continue;
        EXPECT_EQ(row[2], row[0] - 1);  // parent of k is k-1 on a chain
      }
    }
  });
}

TEST(SsspTree, DeterministicTieBreaking) {
  // Two equal-cost parents: the smaller witness must win on every run and
  // rank count (argmin ties break toward the smaller parent id).
  graph::Graph g;
  g.name = "tie";
  g.num_nodes = 4;
  g.edges = {{0, 1, 5}, {0, 2, 5}, {1, 3, 5}, {2, 3, 5}};
  for (const int ranks : {1, 3}) {
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      SsspTreeOptions opts;
      opts.source = 0;
      const auto result = run_sssp_tree(comm, g, opts);
      if (comm.rank() == 0) {
        for (const auto& row : result.tree) {
          if (row[0] == 3) {
            EXPECT_EQ(row[1], 10u);
            EXPECT_EQ(row[2], 1u);  // parent 1, not 2
          }
        }
      }
    });
  }
}

// ---- triangles ----------------------------------------------------------------

TEST(Triangles, TriangleGraph) {
  graph::Graph g;
  g.name = "tri";
  g.num_nodes = 3;
  g.edges = {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}};
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const auto result = run_triangles(comm, g, TrianglesOptions{});
    EXPECT_EQ(result.triangles, 1u);
  });
}

TEST(Triangles, CompleteGraphCountsChoose3) {
  const auto g = graph::make_complete(7);
  vmpi::run(3, [&](vmpi::Comm& comm) {
    const auto result = run_triangles(comm, g, TrianglesOptions{});
    EXPECT_EQ(result.triangles, 35u);  // C(7,3)
  });
}

TEST(Triangles, TreeHasNone) {
  const auto g = graph::make_random_tree(50, 1, 9);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const auto result = run_triangles(comm, g, TrianglesOptions{});
    EXPECT_EQ(result.triangles, 0u);
  });
}

TEST(Triangles, MatchesOracleOnRandomGraph) {
  const auto g = graph::make_erdos_renyi(60, 500, 1, 10);
  const auto oracle = reference::triangles(g);
  vmpi::run(4, [&](vmpi::Comm& comm) {
    const auto result = run_triangles(comm, g, TrianglesOptions{});
    EXPECT_EQ(result.triangles, oracle);
  });
}

}  // namespace
}  // namespace paralagg::queries

// AsyncEngine equivalence harness: the asynchronous schedule delivers
// deltas stale and out of order, but because every supported aggregate is
// an idempotent semilattice join the fixpoint must be BIT-IDENTICAL to the
// BSP core::Engine's — across rank counts, routing modes, and sub-bucket
// layouts.  Plus the negative space: programs the async schedule cannot
// run soundly must be rejected up front with a clear diagnostic.

#include "async/async_engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "queries/cc.hpp"
#include "queries/pagerank.hpp"
#include "queries/sssp.hpp"
#include "queries/tc.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg {
namespace {

using core::Expr;
using queries::Tuple;

const async::AsyncRouting kRoutings[] = {async::AsyncRouting::kDense,
                                         async::AsyncRouting::kOwnerDirect};

TEST(AsyncEquivalence, SsspBitIdenticalAcrossRanksAndRouting) {
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 5, .seed = 31});
  const auto sources = g.pick_sources(3);

  // BSP reference at 4 ranks.
  std::vector<Tuple> reference;
  std::uint64_t ref_paths = 0;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = sources;
    opts.collect_distances = true;
    const auto r = run_sssp(comm, g, opts);
    if (comm.rank() == 0) {
      reference = r.distances;
      ref_paths = r.path_count;
    }
  });
  ASSERT_FALSE(reference.empty());

  for (const int ranks : {1, 2, 5}) {
    for (const auto routing : kRoutings) {
      vmpi::run(ranks, [&](vmpi::Comm& comm) {
        queries::SsspOptions opts;
        opts.sources = sources;
        opts.collect_distances = true;
        opts.tuning.use_async = true;
        opts.tuning.async.routing = routing;
        const auto r = run_sssp(comm, g, opts);
        if (comm.rank() == 0) {
          EXPECT_EQ(r.path_count, ref_paths)
              << "ranks=" << ranks << " dense=" << (routing == async::AsyncRouting::kDense);
          EXPECT_EQ(r.distances, reference)
              << "ranks=" << ranks << " dense=" << (routing == async::AsyncRouting::kDense);
        }
      });
    }
  }
}

TEST(AsyncEquivalence, CcBitIdenticalIncludingSubBuckets) {
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 4, .seed = 32});

  std::vector<Tuple> reference;
  std::uint64_t ref_components = 0;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    queries::CcOptions opts;
    opts.collect_labels = true;
    const auto r = run_cc(comm, g, opts);
    if (comm.rank() == 0) {
      reference = r.labels;
      ref_components = r.component_count;
    }
  });
  ASSERT_FALSE(reference.empty());

  struct Variant {
    int ranks;
    int sub_buckets;
    async::AsyncRouting routing;
  };
  const Variant variants[] = {
      {2, 1, async::AsyncRouting::kDense},
      {2, 4, async::AsyncRouting::kOwnerDirect},  // sub-bucketed static side
      {5, 1, async::AsyncRouting::kOwnerDirect},
      {5, 4, async::AsyncRouting::kDense},
  };
  for (const auto& v : variants) {
    vmpi::run(v.ranks, [&](vmpi::Comm& comm) {
      queries::CcOptions opts;
      opts.collect_labels = true;
      opts.tuning.edge_sub_buckets = v.sub_buckets;
      opts.tuning.use_async = true;
      opts.tuning.async.routing = v.routing;
      const auto r = run_cc(comm, g, opts);
      if (comm.rank() == 0) {
        EXPECT_EQ(r.component_count, ref_components)
            << "ranks=" << v.ranks << " sub=" << v.sub_buckets;
        EXPECT_EQ(r.labels, reference) << "ranks=" << v.ranks << " sub=" << v.sub_buckets;
      }
    });
  }
}

TEST(AsyncEquivalence, TcBitIdenticalAcrossRanks) {
  // Plain Datalog (set semantics, no aggregate) — idempotence is trivial.
  const auto g = graph::make_rmat({.scale = 6, .edge_factor = 3, .seed = 33});

  std::vector<Tuple> reference;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    queries::TcOptions opts;
    opts.collect_pairs = true;
    const auto r = run_tc(comm, g, opts);
    if (comm.rank() == 0) reference = r.pairs;
  });
  ASSERT_FALSE(reference.empty());

  for (const int ranks : {2, 5}) {
    for (const auto routing : kRoutings) {
      vmpi::run(ranks, [&](vmpi::Comm& comm) {
        queries::TcOptions opts;
        opts.collect_pairs = true;
        opts.tuning.use_async = true;
        opts.tuning.async.routing = routing;
        const auto r = run_tc(comm, g, opts);
        if (comm.rank() == 0) {
          EXPECT_EQ(r.pairs, reference)
              << "ranks=" << ranks << " dense=" << (routing == async::AsyncRouting::kDense);
        }
      });
    }
  }
}

TEST(AsyncEquivalence, BatchAndStalenessKnobsDoNotChangeAnswers) {
  const auto g = graph::make_grid(8, 8, 7, 34);
  std::vector<Tuple> reference;
  struct Knobs {
    std::size_t batch_rows;
    std::size_t max_staleness;
  };
  const Knobs knobs[] = {{1, 1}, {128, 1}, {16, 4}, {4096, 8}};
  bool have_reference = false;
  for (const auto& k : knobs) {
    vmpi::run(3, [&](vmpi::Comm& comm) {
      queries::SsspOptions opts;
      opts.sources = {0};
      opts.collect_distances = true;
      opts.tuning.use_async = true;
      opts.tuning.async.batch_rows = k.batch_rows;
      opts.tuning.async.max_staleness = k.max_staleness;
      const auto r = run_sssp(comm, g, opts);
      if (comm.rank() == 0) {
        if (!have_reference) {
          reference = r.distances;
        } else {
          EXPECT_EQ(r.distances, reference)
              << "batch=" << k.batch_rows << " staleness=" << k.max_staleness;
        }
      }
    });
    have_reference = true;
  }
  EXPECT_FALSE(reference.empty());
}

// Direct-engine run (the query wrappers hide loop_stats): a small SSSP so
// we can assert the structural claims — the recursive loop really ran with
// no collective calls, and multi-rank progress really was point-to-point.
TEST(AsyncEngine, LoopIsCollectiveFreeAndPointToPoint) {
  const auto g = graph::make_rmat({.scale = 7, .edge_factor = 4, .seed = 35});
  const auto sources = g.pick_sources(2);
  vmpi::run(4, [&](vmpi::Comm& comm) {
    core::Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 3, .jcc = 1});
    auto* spath = program.relation({.name = "spath",
                                    .arity = 3,
                                    .jcc = 1,
                                    .dep_arity = 1,
                                    .aggregator = core::make_min_aggregator()});
    auto& stratum = program.stratum();
    stratum.loop_rules.push_back(core::JoinRule{
        .a = spath,
        .a_version = core::Version::kDelta,
        .b = edge,
        .b_version = core::Version::kFull,
        .out = {.target = spath,
                .cols = {Expr::col_b(1), Expr::col_a(1),
                         Expr::add(Expr::col_a(2), Expr::col_b(2))}},
    });
    edge->load_facts(queries::edge_slice(comm, g, /*weighted=*/true));
    std::vector<Tuple> seeds;
    if (comm.rank() == 0) {
      for (core::value_t s : sources) seeds.push_back(Tuple{s, s, 0});
    }
    spath->load_facts(seeds);

    async::AsyncEngine engine(comm);
    const auto run = engine.run(program);
    EXPECT_TRUE(run.strata.at(0).reached_fixpoint);
    EXPECT_GT(spath->global_size(core::Version::kFull), sources.size());

    const auto& ls = engine.loop_stats();
    EXPECT_EQ(ls.collective_calls_in_loop, 0u);
    // Work happened somewhere, and crossing ranks took real p2p messages.
    const auto total_rounds = comm.allreduce<std::uint64_t>(ls.rounds, vmpi::ReduceOp::kSum);
    const auto total_sent =
        comm.allreduce<std::uint64_t>(ls.messages_sent, vmpi::ReduceOp::kSum);
    const auto total_recv =
        comm.allreduce<std::uint64_t>(ls.messages_received, vmpi::ReduceOp::kSum);
    EXPECT_GT(total_rounds, 0u);
    EXPECT_GT(total_sent, 0u);
    EXPECT_EQ(total_recv, total_sent);  // quiescence = every send consumed
    EXPECT_GT(comm.allreduce<std::uint64_t>(ls.token_probes, vmpi::ReduceOp::kSum), 0u);
  });
}

TEST(AsyncRejection, PagerankRefreshSumIsRejectedWithDiagnostic) {
  const auto g = graph::make_rmat({.scale = 6, .edge_factor = 3, .seed = 36});
  vmpi::run(2, [&](vmpi::Comm& comm) {
    queries::PagerankOptions opts;
    opts.rounds = 4;
    opts.tuning.use_async = true;
    try {
      run_pagerank(comm, g, opts);
      FAIL() << "PageRank must not run on the async engine";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      // The diagnostic must steer the user to the supported path.
      EXPECT_NE(what.find("BSP"), std::string::npos) << what;
    }
  });
}

TEST(AsyncRejection, NonIdempotentAggregateInFixpointLoop) {
  vmpi::run(1, [&](vmpi::Comm& comm) {
    core::Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 2, .jcc = 1});
    auto* total = program.relation({.name = "total",
                                    .arity = 2,
                                    .jcc = 1,
                                    .dep_arity = 1,
                                    .aggregator = core::make_sum_aggregator()});
    auto& stratum = program.stratum();
    stratum.loop_rules.push_back(core::JoinRule{
        .a = total,
        .a_version = core::Version::kDelta,
        .b = edge,
        .b_version = core::Version::kFull,
        .out = {.target = total, .cols = {Expr::col_b(1), Expr::col_a(1)}},
    });
    try {
      async::AsyncEngine::check_supported(program);
      FAIL() << "a $SUM-aggregated fixpoint loop target must be rejected";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("idempotent"), std::string::npos) << what;
      EXPECT_NE(what.find("total"), std::string::npos) << what;
    }
  });
}

TEST(AsyncConfigValidation, ZeroStalenessAndZeroBatchAreTypedErrors) {
  // max_staleness = 0 used to be silently clamped to 1 — a lying knob.  It
  // is now a typed ConfigError (distinct from UnsupportedProgramError: the
  // flags are wrong, not the program).  Honest lockstep is spelled
  // ssp_staleness = 0, which stays legal.
  async::AsyncConfig zero_staleness;
  zero_staleness.max_staleness = 0;
  EXPECT_THROW(async::AsyncEngine::validate_config(zero_staleness), async::ConfigError);

  async::AsyncConfig zero_batch;
  zero_batch.batch_rows = 0;
  EXPECT_THROW(async::AsyncEngine::validate_config(zero_batch), async::ConfigError);

  async::AsyncConfig lockstep;
  lockstep.ssp = true;
  lockstep.ssp_staleness = 0;
  EXPECT_NO_THROW(async::AsyncEngine::validate_config(lockstep));

  // And through the full run path: the engine validates before any work.
  const auto g = graph::make_grid(4, 4, 3, 38);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = {0};
    opts.tuning.use_async = true;
    opts.tuning.async.max_staleness = 0;
    EXPECT_THROW(run_sssp(comm, g, opts), async::ConfigError);
  });
}

TEST(AsyncRejection, DiagnosticIsTypedAndListsEachViolationOnce) {
  vmpi::run(1, [&](vmpi::Comm& comm) {
    core::Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 2, .jcc = 1});
    auto* total = program.relation({.name = "total",
                                    .arity = 2,
                                    .jcc = 1,
                                    .dep_arity = 1,
                                    .aggregator = core::make_sum_aggregator()});
    auto& stratum = program.stratum();
    // Two rules target the same offending relation: the old per-target
    // diagnostic printed the $SUM complaint once per rule.
    for (int i = 0; i < 2; ++i) {
      stratum.loop_rules.push_back(core::JoinRule{
          .a = total,
          .a_version = core::Version::kDelta,
          .b = edge,
          .b_version = core::Version::kFull,
          .out = {.target = total, .cols = {Expr::col_b(1), Expr::col_a(1)}},
      });
    }
    try {
      async::AsyncEngine::check_supported(program);
      FAIL() << "a $SUM-aggregated fixpoint loop target must be rejected";
    } catch (const async::UnsupportedProgramError& e) {  // the typed class
      const std::string what = e.what();
      std::size_t occurrences = 0;
      for (std::size_t pos = what.find("not idempotent"); pos != std::string::npos;
           pos = what.find("not idempotent", pos + 1)) {
        ++occurrences;
      }
      EXPECT_EQ(occurrences, 1u) << what;
    }
  });
}

TEST(AsyncRejection, AntijoinAndNonDeltaLoopRules) {
  vmpi::run(1, [&](vmpi::Comm& comm) {
    core::Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 2, .jcc = 1});
    auto* path = program.relation({.name = "path", .arity = 2, .jcc = 1});

    {
      auto& s = program.stratum();
      s.loop_rules.push_back(core::JoinRule{
          .a = path,
          .a_version = core::Version::kDelta,
          .b = edge,
          .b_version = core::Version::kFull,
          .out = {.target = path, .cols = {Expr::col_b(1), Expr::col_a(1)}},
          .anti = true,
      });
      EXPECT_THROW(async::AsyncEngine::check_supported(program), std::invalid_argument);
    }

    // A loop copy reading kFull re-derives the whole relation every round —
    // that is a refresh-style schedule, not delta-driven; must be rejected.
    core::Program full_copy(comm);
    auto* p2 = full_copy.relation({.name = "path", .arity = 2, .jcc = 1});
    auto& s2 = full_copy.stratum();
    s2.loop_rules.push_back(core::CopyRule{
        .src = p2,
        .version = core::Version::kFull,
        .out = {.target = p2, .cols = {Expr::col_a(1), Expr::col_a(0)}},
    });
    EXPECT_THROW(async::AsyncEngine::check_supported(full_copy), std::invalid_argument);
  });
}

}  // namespace
}  // namespace paralagg

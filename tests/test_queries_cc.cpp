// Connected components end to end vs. the union-find oracle.

#include "queries/cc.hpp"

#include <gtest/gtest.h>

#include "queries/reference.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg::queries {
namespace {

void expect_matches_oracle(const graph::Graph& g, int ranks, QueryTuning tuning = {}) {
  const auto oracle = reference::cc_labels(g);
  const auto oracle_count = reference::cc_count(g);
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    CcOptions opts;
    opts.tuning = tuning;
    opts.collect_labels = true;
    const auto result = run_cc(comm, g, opts);
    EXPECT_EQ(result.component_count, oracle_count);
    EXPECT_EQ(result.labelled_nodes, oracle.size());
    if (comm.rank() == 0) {
      ASSERT_EQ(result.labels.size(), oracle.size());
      for (const auto& row : result.labels) {
        const auto it = oracle.find(row[0]);
        ASSERT_NE(it, oracle.end()) << "node " << row[0];
        EXPECT_EQ(row[1], it->second) << "node " << row[0];
      }
    }
  });
}

TEST(Cc, SingleChainIsOneComponent) {
  expect_matches_oracle(graph::make_chain(30), 2);
}

TEST(Cc, DisjointComponentsKeepSeparateLabels) {
  expect_matches_oracle(graph::make_components(5, 12, 8, 3), 4);
}

TEST(Cc, GridIsOneComponent) {
  const auto g = graph::make_grid(10, 10);
  const auto oracle_count = reference::cc_count(g);
  ASSERT_EQ(oracle_count, 1u);
  expect_matches_oracle(g, 4);
}

TEST(Cc, RmatComponents) {
  expect_matches_oracle(graph::make_rmat({.scale = 9, .edge_factor = 3, .seed = 4}), 4);
}

TEST(Cc, DirectednessIgnoredViaSymmetrization) {
  // A directed chain has one undirected component even though node 0 is
  // unreachable from the others in the directed sense.
  graph::Graph g;
  g.name = "directed-v";
  g.num_nodes = 3;
  g.edges = {{1, 0, 1}, {1, 2, 1}};  // 1 -> 0, 1 -> 2
  expect_matches_oracle(g, 2);
}

TEST(Cc, LabelIsComponentMinimum) {
  // Representative canonicalization: every label is the smallest node id
  // of its component (paper: "$MIN canonicalizes a component
  // representative").
  const auto g = graph::make_components(3, 10, 4, 6);
  vmpi::run(3, [&](vmpi::Comm& comm) {
    CcOptions opts;
    opts.collect_labels = true;
    const auto result = run_cc(comm, g, opts);
    if (comm.rank() == 0) {
      for (const auto& row : result.labels) {
        EXPECT_EQ(row[1], (row[0] / 10) * 10);  // min id of each block
      }
    }
  });
}

TEST(Cc, BaselineTuningMatches) {
  expect_matches_oracle(graph::make_rmat({.scale = 8, .edge_factor = 4, .seed = 8}), 4,
                        QueryTuning::baseline());
}

TEST(Cc, SubBucketingMatches) {
  QueryTuning tuning;
  tuning.edge_sub_buckets = 8;
  expect_matches_oracle(graph::make_rmat({.scale = 8, .edge_factor = 4, .seed = 9}), 8,
                        tuning);
}

TEST(Cc, CollapsedStateStaysLinear) {
  // §V-A: the $MIN aggregate keeps |cc| = #nodes — no node-product blowup.
  const auto g = graph::make_components(2, 100, 300, 10);
  vmpi::run(4, [&](vmpi::Comm& comm) {
    const auto result = run_cc(comm, g, CcOptions{});
    EXPECT_EQ(result.labelled_nodes, 200u);  // exactly one row per node
    EXPECT_EQ(result.component_count, 2u);
  });
}

TEST(Cc, IterationsTrackComponentDiameter) {
  const auto chain = graph::make_chain(40);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const auto result = run_cc(comm, chain, CcOptions{});
    // Label 0 must walk the whole chain.
    EXPECT_GE(result.iterations, 39u);
  });
}

TEST(Cc, ResultIdenticalAcrossRankCounts) {
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 3, .seed = 12});
  std::vector<Tuple> at1;
  for (const int ranks : {1, 3, 6}) {
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      CcOptions opts;
      opts.collect_labels = true;
      const auto result = run_cc(comm, g, opts);
      if (comm.rank() == 0) {
        if (ranks == 1) {
          at1 = result.labels;
        } else {
          EXPECT_EQ(result.labels, at1) << "ranks=" << ranks;
        }
      }
    });
  }
}

}  // namespace
}  // namespace paralagg::queries

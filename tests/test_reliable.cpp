// Self-healing transport: retry-budget escalation, healing-counter
// determinism, and serving batch rollback.
//
// The contract under test (DESIGN.md §14): the reliable channel heals
// injected drops and corruption by ack/retransmit within a bounded retry
// budget; when the budget is exhausted the failure escalates to the PR 5
// typed abort on every rank (never a hang), with the healing counters in
// the error text; the counters themselves replay exactly from the fault
// seed; and a serving batch that aborts mid-flight rolls back to the
// pre-batch fixpoint and the engine keeps serving.

#include "vmpi/reliable.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "queries/programs.hpp"
#include "queries/sssp.hpp"
#include "serving/serving_engine.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg {
namespace {

using core::Tuple;
using core::value_t;

constexpr double kWatchdog = 4.0;

// A tight budget keeps the exhaustion tests fast: 3 attempts at 10ms base
// backoff fail within ~150ms instead of the default policy's seconds.
vmpi::RetryPolicy tight_retry() {
  vmpi::RetryPolicy r;
  r.max_attempts = 3;
  r.base_backoff = 0.01;
  r.deadline = 2.0;
  return r;
}

/// One directed-edge fault leg over bare vmpi: rank 1 sends one frame to
/// rank 2, everyone meets at a barrier.  Under a total directed fault the
/// send can never be delivered intact; the sender must exhaust its budget
/// into a typed abort that poisons every rank.
struct DirectedLeg {
  std::vector<int> aborted;
  std::vector<std::string> what;
  std::vector<std::uint64_t> retransmits;
  std::vector<std::uint64_t> nacks;
};

DirectedLeg run_directed_leg(const vmpi::FaultPlan& plan, const vmpi::RetryPolicy& retry) {
  constexpr int kRanks = 3;
  DirectedLeg out;
  out.aborted.assign(kRanks, 0);
  out.what.resize(kRanks);
  out.retransmits.assign(kRanks, 0);
  out.nacks.assign(kRanks, 0);
  vmpi::RunOptions options;
  options.fault = plan;
  options.retry = retry;
  options.watchdog_seconds = kWatchdog;
  vmpi::run(kRanks, options, [&](vmpi::Comm& comm) {
    const auto me = static_cast<std::size_t>(comm.rank());
    try {
      if (comm.rank() == 1) {
        const std::byte payload[8] = {};
        comm.isend(2, 7, payload);
      }
      if (comm.rank() == 2) {
        (void)comm.recv(1, 7);
      }
      comm.barrier();
    } catch (const vmpi::FaultError& e) {
      out.aborted[me] = 1;
      out.what[me] = e.what();
    }
    out.retransmits[me] = comm.stats().retransmits;
    out.nacks[me] = comm.stats().nacks_sent;
  });
  return out;
}

TEST(Reliable, DirectedDropExhaustsRetryBudgetIntoTypedAbort) {
  // Every copy of edge 1->2 vanishes, including every retransmit: the
  // sender must burn exactly max_attempts retransmits (no NACKs — nothing
  // arrives to be NACKed) and then escalate to a typed abort everywhere.
  vmpi::FaultPlan plan;
  plan.seed = 61;
  plan.drop_prob = 1.0;
  plan.only_src = 1;
  plan.only_dst = 2;
  const auto retry = tight_retry();
  const auto leg = run_directed_leg(plan, retry);

  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(leg.aborted[static_cast<std::size_t>(r)], 1) << "rank " << r;
  }
  EXPECT_EQ(leg.retransmits[1], retry.max_attempts);
  EXPECT_EQ(leg.retransmits[0] + leg.retransmits[2], 0u);
  EXPECT_EQ(leg.nacks[0] + leg.nacks[1] + leg.nacks[2], 0u);
  // S1: the sender's abort names the edge and embeds the heal counters.
  EXPECT_NE(leg.what[1].find("reliable delivery to rank 2"), std::string::npos)
      << leg.what[1];
  EXPECT_NE(leg.what[1].find("healing attempted"), std::string::npos) << leg.what[1];
  EXPECT_NE(leg.what[1].find("retransmits"), std::string::npos) << leg.what[1];
}

TEST(Reliable, DirectedCorruptExhaustsBudgetWithNacksAndRepliesExactly) {
  // Every copy of edge 1->2 is corrupted: each arrival fails the envelope
  // CRC and bounces a NACK, each NACK (or timer) triggers one retransmit,
  // and the budget caps the exchange at max_attempts retransmits and
  // max_attempts + 1 corrupt arrivals — all deterministic from the seed.
  vmpi::FaultPlan plan;
  plan.seed = 62;
  plan.corrupt_prob = 1.0;
  plan.only_src = 1;
  plan.only_dst = 2;
  const auto retry = tight_retry();

  const auto first = run_directed_leg(plan, retry);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(first.aborted[static_cast<std::size_t>(r)], 1) << "rank " << r;
  }
  EXPECT_EQ(first.retransmits[1], retry.max_attempts);
  // Receiver NACKed the initial copy plus every retransmitted copy.
  EXPECT_EQ(first.nacks[2], static_cast<std::uint64_t>(retry.max_attempts) + 1);

  // S3: replaying the identical schedule reproduces the healing counters
  // bit-for-bit — the fault decisions and the budget arithmetic are both
  // pure functions of the seed.
  const auto second = run_directed_leg(plan, retry);
  EXPECT_EQ(first.retransmits, second.retransmits);
  EXPECT_EQ(first.nacks, second.nacks);
  EXPECT_EQ(first.aborted, second.aborted);
}

// ---------------------------------------------------------------------------
// Serving under the reliable transport
// ---------------------------------------------------------------------------

/// From-scratch SSSP fixpoint — the oracle incremental serving must match.
std::vector<Tuple> fresh_sssp(const graph::Graph& g) {
  std::vector<Tuple> rows;
  vmpi::run(3, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = {0};
    opts.collect_distances = true;
    auto r = queries::run_sssp(comm, g, opts);
    if (comm.rank() == 0) rows = std::move(r.distances);
  });
  return rows;
}

/// This rank's share of one edge-relation batch.
serving::UpdateBatch edge_batch(const vmpi::Comm& comm, std::span<const Tuple> inserts,
                                std::span<const Tuple> deletes) {
  serving::RelationDelta d;
  d.relation = "edge";
  const auto n = static_cast<std::size_t>(comm.size());
  for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < inserts.size(); i += n) {
    d.inserts.push_back(inserts[i]);
  }
  for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < deletes.size(); i += n) {
    d.deletes.push_back(deletes[i]);
  }
  serving::UpdateBatch b;
  b.push_back(std::move(d));
  return b;
}

TEST(Reliable, ServingMutationFramesHealUnderDrop) {
  // Serving's own mutation traffic (exchange_flat) rides sealed frames on
  // the faultable split-phase path, so injected drops must be healed by
  // the reliable channel: the batch completes, the fixpoint matches the
  // from-scratch oracle, and real retransmits happened on the wire.
  const auto g = graph::make_chain(32, /*max_weight=*/3);
  const Tuple removed{g.edges[5].src, g.edges[5].dst, g.edges[5].weight};
  const std::vector<Tuple> inserts{Tuple{2, 20, 1}};
  const std::vector<Tuple> deletes{removed};

  graph::Graph mutated = g;
  std::erase(mutated.edges, graph::Edge{removed[0], removed[1], removed[2]});
  mutated.edges.push_back(graph::Edge{2, 20, 1});
  const auto oracle = fresh_sssp(mutated);

  vmpi::RunOptions options;
  options.fault.seed = 63;
  options.fault.drop_prob = 0.08;
  options.watchdog_seconds = kWatchdog;
  const int ranks = 4;
  std::vector<int> aborted(ranks, 1);
  std::vector<std::uint64_t> retransmits(ranks, 0);
  std::vector<std::vector<Tuple>> rows(ranks);
  vmpi::run(ranks, options, [&](vmpi::Comm& comm) {
    auto prog = queries::build_sssp_program(comm, 1, /*balance_edges=*/false);
    serving::ServingEngine srv(comm, *prog.program, {});
    queries::load_sssp_facts(prog, g, std::vector<value_t>{0});
    srv.start();
    const auto res = srv.apply_updates(edge_batch(comm, inserts, deletes));
    const auto me = static_cast<std::size_t>(comm.rank());
    aborted[me] = res.aborted_fault ? 1 : 0;
    rows[me] = srv.lookup("spath", {});
    retransmits[me] = comm.stats().retransmits;
  });

  std::uint64_t total_retransmits = 0;
  for (int r = 0; r < ranks; ++r) {
    EXPECT_EQ(aborted[static_cast<std::size_t>(r)], 0) << "rank " << r;
    EXPECT_EQ(rows[static_cast<std::size_t>(r)], oracle) << "rank " << r;
    total_retransmits += retransmits[static_cast<std::size_t>(r)];
  }
  EXPECT_GT(total_retransmits, 0u) << "drops healed without a single retransmit?";
}

TEST(Reliable, KilledRankDuringBatchRollsBackAndKeepsServing) {
  // A rank killed mid-batch aborts the batch on every rank; with rollback
  // enabled the batch is undone (typed UpdateResult, rolled_back set), the
  // pre-batch fixpoint still answers lookups, and — the kill being
  // one-shot — re-applying the same batch succeeds and converges to the
  // oracle.  Graceful degradation instead of a dead service.
  const auto g = graph::make_chain(48, /*max_weight=*/1);
  const Tuple reweighted{g.edges[10].src, g.edges[10].dst, g.edges[10].weight};
  const std::vector<Tuple> inserts{Tuple{reweighted[0], reweighted[1], reweighted[2] + 1}};
  const std::vector<Tuple> deletes{reweighted};

  graph::Graph mutated = g;
  std::erase(mutated.edges, graph::Edge{reweighted[0], reweighted[1], reweighted[2]});
  mutated.edges.push_back(graph::Edge{inserts[0][0], inserts[0][1], inserts[0][2]});
  const auto oracle = fresh_sssp(mutated);
  const auto pre_batch = fresh_sssp(g);

  // Measuring leg: locate the batch tail on the epoch axis.
  std::size_t start_iters = 0, tail = 0;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    auto prog = queries::build_sssp_program(comm, 1, /*balance_edges=*/false);
    serving::ServingEngine srv(comm, *prog.program, {});
    queries::load_sssp_facts(prog, g, std::vector<value_t>{0});
    const auto rr = srv.start();
    const auto res = srv.apply_updates(edge_batch(comm, inserts, deletes));
    if (comm.rank() == 0) {
      start_iters = rr.total_iterations;
      tail = res.tail_iterations;
    }
  });
  ASSERT_GE(tail, 8u) << "batch tail too short to land a kill in reliably";

  const int ranks = 4;
  vmpi::RunOptions options;
  options.fault.kill_rank = 1;
  options.fault.kill_epoch = static_cast<std::uint64_t>(start_iters + tail / 2);
  options.watchdog_seconds = kWatchdog;
  std::vector<int> first_aborted(ranks, 0);
  std::vector<int> first_rolled_back(ranks, 0);
  std::vector<int> second_aborted(ranks, 1);
  std::vector<std::vector<Tuple>> between(ranks);
  std::vector<std::vector<Tuple>> after(ranks);
  vmpi::run(ranks, options, [&](vmpi::Comm& comm) {
    auto prog = queries::build_sssp_program(comm, 1, /*balance_edges=*/false);
    serving::ServingEngine srv(comm, *prog.program, {});
    queries::load_sssp_facts(prog, g, std::vector<value_t>{0});
    srv.start();
    const auto me = static_cast<std::size_t>(comm.rank());

    const auto res = srv.apply_updates(edge_batch(comm, inserts, deletes));
    first_aborted[me] = res.aborted_fault ? 1 : 0;
    first_rolled_back[me] = res.rolled_back ? 1 : 0;
    if (!res.rolled_back) return;  // engine stopped serving; test will fail below

    // The rolled-back service still answers, at the pre-batch fixpoint.
    between[me] = srv.lookup("spath", {});

    // The kill was one-shot; the retry must go through cleanly.
    const auto res2 = srv.apply_updates(edge_batch(comm, inserts, deletes));
    second_aborted[me] = res2.aborted_fault ? 1 : 0;
    after[me] = srv.lookup("spath", {});
  });

  for (int r = 0; r < ranks; ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    EXPECT_EQ(first_aborted[static_cast<std::size_t>(r)], 1);
    EXPECT_EQ(first_rolled_back[static_cast<std::size_t>(r)], 1);
    EXPECT_EQ(between[static_cast<std::size_t>(r)], pre_batch);
    EXPECT_EQ(second_aborted[static_cast<std::size_t>(r)], 0);
    EXPECT_EQ(after[static_cast<std::size_t>(r)], oracle);
  }
}

}  // namespace
}  // namespace paralagg

// Skew-optimal heavy-hitter routing: the hot-set agreement protocol, the
// hot relation layout, and hybrid-vs-uniform fixpoint identity.
//
// The one invariant everything here leans on: the hot set is a pure
// function of globally identical inputs (the allgathered nomination list
// and the config), so every rank flips to the hybrid plan — or back — in
// the same iteration without any coordinator.

#include "core/skew.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/relation.hpp"
#include "graph/generators.hpp"
#include "queries/cc.hpp"
#include "queries/pagerank.hpp"
#include "queries/sssp.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg {
namespace {

using core::HotCandidate;
using core::Relation;
using core::SkewConfig;
using core::Tuple;
using core::Version;
using core::fold_hot_candidates;
using core::detect_hot_keys;
using storage::value_t;

TEST(FoldHotCandidates, SumsPerRankSharesAndKeepsThresholdTies) {
  SkewConfig cfg;
  cfg.hot_threshold = 10;
  cfg.max_hot_keys = 8;
  // Key 1 clears the threshold only once its per-rank shares are summed;
  // key 2 ties the threshold exactly (>= keeps it); key 3 falls short.
  const std::vector<HotCandidate> cands = {
      {Tuple{1}, 6},
      {Tuple{1}, 6},
      {Tuple{2}, 10},
      {Tuple{3}, 9},
  };
  const auto hot = fold_hot_candidates(cands, cfg);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0], Tuple{1});  // summed count 12 beats 10
  EXPECT_EQ(hot[1], Tuple{2});
}

TEST(FoldHotCandidates, TieBreaksTowardSmallerKeyAndCaps) {
  SkewConfig cfg;
  cfg.hot_threshold = 1;
  cfg.max_hot_keys = 2;
  const std::vector<HotCandidate> cands = {
      {Tuple{9}, 5},
      {Tuple{4}, 5},
      {Tuple{7}, 5},
      {Tuple{1}, 3},
  };
  const auto hot = fold_hot_candidates(cands, cfg);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0], Tuple{4});  // three-way tie at 5 resolves toward smaller keys
  EXPECT_EQ(hot[1], Tuple{7});
}

TEST(FoldHotCandidates, EmptyInEmptyOut) {
  EXPECT_TRUE(fold_hot_candidates({}, SkewConfig{}).empty());
}

/// Serialize a hot set into a flat digest so cross-rank agreement can be
/// checked with one allgather per scalar.
std::uint64_t hot_digest(const std::vector<Tuple>& hot) {
  std::uint64_t d = 0;
  for (std::size_t i = 0; i < hot.size(); ++i) {
    d = d * 1315423911u + (i + 1) * (hot[i][0] + 1);
  }
  return d;
}

void expect_all_ranks_agree(vmpi::Comm& comm, const std::vector<Tuple>& hot) {
  const auto sizes = comm.allgather<std::uint64_t>(hot.size());
  const auto digests = comm.allgather<std::uint64_t>(hot_digest(hot));
  for (std::size_t r = 1; r < sizes.size(); ++r) {
    EXPECT_EQ(sizes[r], sizes[0]);
    EXPECT_EQ(digests[r], digests[0]);
  }
}

TEST(DetectHotKeys, AdversarialTiesResolveIdenticallyOnEveryRank) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    // Keys 0, 1, 2 tie at 50 rows; key 3 ties the threshold exactly; key 4
    // sits just below it.
    std::vector<Tuple> slice;
    if (comm.rank() == 0) {
      for (value_t k = 0; k < 3; ++k) {
        for (value_t v = 0; v < 50; ++v) slice.push_back(Tuple{k, v});
      }
      for (value_t v = 0; v < 8; ++v) slice.push_back(Tuple{3, v});
      for (value_t v = 0; v < 7; ++v) slice.push_back(Tuple{4, v});
    }
    r.load_facts(slice);

    SkewConfig cfg;
    cfg.hot_threshold = 8;
    cfg.max_hot_keys = 8;
    const auto hot = detect_hot_keys(comm, r, cfg);
    ASSERT_EQ(hot.size(), 4u);
    for (value_t k = 0; k < 4; ++k) EXPECT_EQ(hot[k], Tuple{k});
    expect_all_ranks_agree(comm, hot);

    // The cap truncates after the deterministic sort: the 50-row keys win.
    cfg.max_hot_keys = 2;
    const auto capped = detect_hot_keys(comm, r, cfg);
    ASSERT_EQ(capped.size(), 2u);
    EXPECT_EQ(capped[0], Tuple{0});
    EXPECT_EQ(capped[1], Tuple{1});
    expect_all_ranks_agree(comm, capped);
  });
}

TEST(DetectHotKeys, NominationCapStillAgreesEverywhere) {
  // With one nomination per rank the hot set depends on which keys share an
  // owner rank — unknowable here without replaying the hash — but every
  // rank must still compute the identical (possibly incomplete) set.
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    std::vector<Tuple> slice;
    if (comm.rank() == 0) {
      for (value_t k = 0; k < 16; ++k) {
        for (value_t v = 0; v < 10 + k; ++v) slice.push_back(Tuple{k, v});
      }
    }
    r.load_facts(slice);

    SkewConfig cfg;
    cfg.hot_threshold = 10;
    cfg.max_hot_keys = 16;
    cfg.max_candidates_per_rank = 1;
    const auto hot = detect_hot_keys(comm, r, cfg);
    EXPECT_FALSE(hot.empty());
    EXPECT_LE(hot.size(), 4u);  // at most one nomination per rank survives
    for (const auto& k : hot) EXPECT_LT(k[0], 16u);
    expect_all_ranks_agree(comm, hot);
  });
}

TEST(DetectHotKeys, EmptyDeltasYieldEmptyHotSet) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    EXPECT_TRUE(detect_hot_keys(comm, r, SkewConfig{}).empty());
  });
}

TEST(DetectHotKeys, SumsShardsOfAnAlreadySpreadKey) {
  // Once a key is hot its rows live H2-spread across all ranks; the next
  // detection must still see the key's *global* count, not any rank's
  // below-threshold shard.
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    std::vector<Tuple> slice;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 100; ++v) slice.push_back(Tuple{7, v});
    }
    r.load_facts(slice);
    r.adopt_hot_keys({Tuple{7}});
    // Each rank now holds roughly a quarter of key 7.
    EXPECT_LT(r.local_size(Version::kDelta), 100u);

    SkewConfig cfg;
    cfg.hot_threshold = 100;  // only the summed count reaches this
    const auto hot = detect_hot_keys(comm, r, cfg);
    ASSERT_EQ(hot.size(), 1u);
    EXPECT_EQ(hot[0], Tuple{7});
    expect_all_ranks_agree(comm, hot);
  });
}

TEST(SkewRelation, AdoptSpreadsRowsRoutesThemAndRestores) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    std::vector<Tuple> slice;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 200; ++v) slice.push_back(Tuple{7, v});
      for (value_t k = 0; k < 40; ++k) slice.push_back(Tuple{100 + k, k});
    }
    r.load_facts(slice);
    const auto before = r.gather_to_root();
    const auto global = r.global_size(Version::kFull);

    const auto moved = r.adopt_hot_keys({Tuple{7}});
    EXPECT_GT(comm.allreduce<std::uint64_t>(moved, vmpi::ReduceOp::kSum), 0u);
    EXPECT_EQ(r.global_size(Version::kFull), global);

    // Every stored row sits exactly where route_rank sends it, and the hot
    // key's rows now occupy more than one rank.
    std::uint64_t local_hot = 0;
    bool routed_here = true;
    r.tree(Version::kFull).for_each([&](std::span<const value_t> t) {
      routed_here = routed_here && r.route_rank(t) == comm.rank();
      if (t[0] == 7) ++local_hot;
    });
    EXPECT_TRUE(routed_here);
    const auto spread = comm.allgather<std::uint64_t>(local_hot);
    EXPECT_GT(std::count_if(spread.begin(), spread.end(),
                            [](std::uint64_t c) { return c > 0; }),
              1);

    // The hot layout is invisible to readers: the gathered contents match.
    EXPECT_EQ(r.gather_to_root(), before);

    // Adopting the empty set sends everything home.
    r.adopt_hot_keys({});
    EXPECT_EQ(r.global_size(Version::kFull), global);
    bool home = true;
    r.tree(Version::kFull).for_each([&](std::span<const value_t> t) {
      home = home && r.owner_rank(t) == comm.rank();
    });
    EXPECT_TRUE(home);
    EXPECT_EQ(r.gather_to_root(), before);
  });
}

TEST(SkewQueries, HybridMatchesUniformFixpointsAcrossRankCounts) {
  // End-to-end identity on a genuinely skewed input: a planted super-hub
  // trips the hybrid plan (hot_iterations > 0) and the fixpoints must still
  // match the uniform path bit for bit — including at 7 ranks, where
  // nothing divides evenly.
  auto g = graph::make_rmat({.scale = 8, .edge_factor = 5, .seed = 31});
  graph::plant_hub(g, 0.3, 0, 5);
  const auto sources = g.pick_hubs(1);

  for (const int ranks : {4, 7}) {
    std::vector<queries::Tuple> rows[2][3];
    std::uint64_t hot_iters[2][3] = {};
    for (int leg = 0; leg < 2; ++leg) {
      vmpi::run(ranks, [&](vmpi::Comm& comm) {
        queries::QueryTuning tuning;
        if (leg == 1) {
          tuning.engine.skew.enabled = true;
          tuning.engine.skew.hot_threshold = 64;
        }
        {
          queries::SsspOptions opts;
          opts.sources = sources;
          opts.tuning = tuning;
          opts.collect_distances = true;
          auto r = run_sssp(comm, g, opts);
          if (comm.rank() == 0) {
            rows[leg][0] = std::move(r.distances);
            hot_iters[leg][0] = r.run.skew.hot_iterations;
          }
        }
        {
          queries::CcOptions opts;
          opts.tuning = tuning;
          opts.collect_labels = true;
          auto r = run_cc(comm, g, opts);
          if (comm.rank() == 0) rows[leg][1] = std::move(r.labels);
        }
        {
          queries::PagerankOptions opts;
          opts.rounds = 6;
          opts.tuning = tuning;
          opts.collect_ranks = true;
          auto r = run_pagerank(comm, g, opts);
          if (comm.rank() == 0) {
            rows[leg][2] = std::move(r.ranks);
            hot_iters[leg][2] = r.run.skew.hot_iterations;
          }
        }
      });
    }
    for (int q = 0; q < 3; ++q) {
      ASSERT_FALSE(rows[0][q].empty()) << "ranks=" << ranks << " query " << q;
      EXPECT_EQ(rows[1][q], rows[0][q]) << "ranks=" << ranks << " query " << q;
      EXPECT_EQ(hot_iters[0][q], 0u);
    }
    // The planted hub must actually engage the hybrid plan on both join
    // queries — otherwise this test would pass vacuously.
    EXPECT_GT(hot_iters[1][0], 0u) << "sssp never went hybrid at " << ranks;
    EXPECT_GT(hot_iters[1][2], 0u) << "pagerank never went hybrid at " << ranks;
  }
}

}  // namespace
}  // namespace paralagg

// Comparator engines: shuffle/master correctness and the communication
// overhead PARALAGG's fused design removes; stratified-Datalog blowup.

#include <gtest/gtest.h>

#include "baseline/shuffle_engine.hpp"
#include "baseline/stratified_engine.hpp"
#include "queries/cc.hpp"
#include "queries/reference.hpp"
#include "queries/sssp.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg::baseline {
namespace {

using queries::QueryTuning;

TEST(ShuffleEngine, SsspCorrectAgainstOracle) {
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 5, .seed = 3});
  const auto sources = g.pick_sources(3);
  const auto oracle = queries::reference::sssp(g, sources);
  vmpi::run(4, [&](vmpi::Comm& comm) {
    const auto result = run_sssp_shuffle(comm, g, sources);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.result_count, oracle.size());
  });
}

TEST(ShuffleEngine, MasterModeMatchesShuffleMode) {
  const auto g = graph::make_grid(7, 7, 10, 4);
  const auto oracle = queries::reference::sssp(g, {0});
  vmpi::run(4, [&](vmpi::Comm& comm) {
    ShuffleOptions master;
    master.mode = ShuffleMode::kMaster;
    const auto a = run_sssp_shuffle(comm, g, {0});
    const auto b = run_sssp_shuffle(comm, g, {0}, master);
    EXPECT_EQ(a.result_count, oracle.size());
    EXPECT_EQ(b.result_count, oracle.size());
  });
}

TEST(ShuffleEngine, CcCorrectAgainstOracle) {
  const auto g = graph::make_components(4, 15, 10, 5);
  const auto labelled = queries::reference::cc_labels(g).size();
  vmpi::run(4, [&](vmpi::Comm& comm) {
    const auto result = run_cc_shuffle(comm, g);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.result_count, labelled);
  });
}

TEST(ShuffleEngine, PaysMoreCommunicationThanParalagg) {
  // The point of Table I: same algorithm, same substrate, but the shuffle
  // strategy moves strictly more bytes than the fused local aggregation.
  const auto g = graph::make_rmat({.scale = 9, .edge_factor = 6, .seed = 6});
  const auto sources = g.pick_sources(3);
  std::uint64_t shuffle_bytes = 0, paralagg_bytes = 0;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    const auto sh = run_sssp_shuffle(comm, g, sources);
    if (comm.rank() == 0) shuffle_bytes = sh.remote_bytes;
  });
  vmpi::run(4, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = sources;
    opts.tuning.balance_edges = false;
    const auto pa = queries::run_sssp(comm, g, opts);
    if (comm.rank() == 0) {
      paralagg_bytes = pa.run.comm_total.total_remote_bytes();
    }
  });
  EXPECT_GT(shuffle_bytes, paralagg_bytes);
}

TEST(ShuffleEngine, MasterModeIsTheWorst) {
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 5, .seed = 7});
  const auto sources = g.pick_sources(2);
  std::uint64_t shuffle_bytes = 0, master_bytes = 0;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    ShuffleOptions master;
    master.mode = ShuffleMode::kMaster;
    const auto a = run_sssp_shuffle(comm, g, sources);
    const auto b = run_sssp_shuffle(comm, g, sources, master);
    if (comm.rank() == 0) {
      shuffle_bytes = a.remote_bytes;
      master_bytes = b.remote_bytes;
    }
  });
  EXPECT_GT(master_bytes, shuffle_bytes);
}

TEST(StratifiedEngine, SsspCorrectOnDag) {
  // On a DAG the all-paths relation is finite: the stratified plan works,
  // just expensively.
  const auto g = graph::make_random_tree(80, 10, 8);
  StratifiedOptions opts;
  opts.sources = {0};
  const auto oracle = queries::reference::sssp(g, {0});
  vmpi::run(4, [&](vmpi::Comm& comm) {
    const auto result = run_sssp_stratified(comm, g, opts);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.answer_count, oracle.size());
    // Tree: exactly one path per pair, so no materialization overhead.
    EXPECT_EQ(result.materialized, oracle.size());
  });
}

TEST(StratifiedEngine, MaterializationOverheadOnDagWithDetours) {
  // Layered DAG with parallel paths: many distinct lengths per pair.
  graph::Graph g;
  g.name = "layers";
  g.num_nodes = 12;
  for (value_t layer = 0; layer + 2 < 12; layer += 2) {
    for (value_t a = 0; a < 2; ++a) {
      for (value_t b = 0; b < 2; ++b) {
        g.edges.push_back({layer + a, layer + 2 + b, 1 + a + 2 * b});
      }
    }
  }
  StratifiedOptions opts;
  opts.sources = {0};
  const auto oracle = queries::reference::sssp(g, {0});
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const auto result = run_sssp_stratified(comm, g, opts);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.answer_count, oracle.size());
    // The overhead the paper's §II-B complains about.
    EXPECT_GT(result.materialized, 2 * result.answer_count);
  });
}

TEST(StratifiedEngine, WeightedCycleBlowsTupleBudget) {
  // With cycles, distinct path lengths are unbounded: vanilla Datalog
  // "runs out of memory" — here, out of tuple budget.
  const auto g = graph::make_complete(8, 20, 9);  // dense, cyclic, weighted
  StratifiedOptions opts;
  opts.sources = {0};
  opts.tuple_limit = 20'000;
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const auto result = run_sssp_stratified(comm, g, opts);
    EXPECT_FALSE(result.completed);
  });
}

TEST(StratifiedEngine, CcMaterializesNodeProduct) {
  // §V-A: Datalog CC materializes all (node, reachable) pairs — quadratic
  // in component size — while recursive aggregation stays linear.
  const auto g = graph::make_components(1, 40, 30, 11);
  StratifiedOptions opts;
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const auto stratified = run_cc_stratified(comm, g, opts);
    EXPECT_TRUE(stratified.completed);
    EXPECT_EQ(stratified.materialized, 40u * 40u);  // the node product

    const auto fused = queries::run_cc(comm, g, queries::CcOptions{});
    EXPECT_EQ(fused.labelled_nodes, 40u);  // linear
    EXPECT_EQ(fused.component_count, 1u);
  });
}

TEST(StratifiedEngine, CcBudgetAbortsOnLargeComponent) {
  const auto g = graph::make_components(1, 400, 300, 12);
  StratifiedOptions opts;
  opts.tuple_limit = 10'000;  // << 400^2
  vmpi::run(2, [&](vmpi::Comm& comm) {
    const auto result = run_cc_stratified(comm, g, opts);
    EXPECT_FALSE(result.completed);
  });
}

}  // namespace
}  // namespace paralagg::baseline

// Determinism: every collective folds in rank order and every query result
// is bit-identical across runs and rank counts.  Nondeterminism in a
// distributed engine is a debugging catastrophe; PARALAGG's design (no
// wall-clock-dependent decisions, deterministic reductions) makes this
// testable.

#include <gtest/gtest.h>

#include <string>

#include "queries/cc.hpp"
#include "queries/pagerank.hpp"
#include "queries/sssp.hpp"
#include "queries/tc.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg {
namespace {

using queries::Tuple;

TEST(Determinism, RepeatedSsspRunsAreBitIdentical) {
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 5, .seed = 21});
  const auto sources = g.pick_sources(3);
  std::vector<Tuple> first;
  for (int repeat = 0; repeat < 3; ++repeat) {
    vmpi::run(4, [&](vmpi::Comm& comm) {
      queries::SsspOptions opts;
      opts.sources = sources;
      opts.collect_distances = true;
      const auto result = run_sssp(comm, g, opts);
      if (comm.rank() == 0) {
        if (repeat == 0) {
          first = result.distances;
        } else {
          EXPECT_EQ(result.distances, first) << "repeat " << repeat;
        }
      }
    });
  }
}

TEST(Determinism, IterationCountIndependentOfRankCount) {
  const auto g = graph::make_grid(9, 9, 10, 22);
  std::vector<std::size_t> iters;
  for (const int ranks : {1, 2, 4, 8}) {
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      queries::SsspOptions opts;
      opts.sources = {0};
      const auto result = run_sssp(comm, g, opts);
      if (comm.rank() == 0) iters.push_back(result.iterations);
    });
  }
  for (const auto it : iters) EXPECT_EQ(it, iters[0]);
}

TEST(Determinism, CcIdenticalUnderBalancingKnobs) {
  // Balancing moves tuples between ranks but must never change answers.
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 4, .seed = 23});
  std::vector<Tuple> reference_labels;
  struct Knobs {
    int sub_buckets;
    bool balance;
  };
  const Knobs variants[] = {{1, false}, {1, true}, {4, false}, {8, true}};
  bool have_reference = false;
  for (const auto& [sub_buckets, balance] : variants) {
    vmpi::run(4, [&](vmpi::Comm& comm) {
      queries::CcOptions opts;
      opts.tuning.edge_sub_buckets = sub_buckets;
      opts.tuning.balance_edges = balance;
      opts.collect_labels = true;
      const auto result = run_cc(comm, g, opts);
      if (comm.rank() == 0) {
        if (!have_reference) {
          reference_labels = result.labels;
        } else {
          EXPECT_EQ(result.labels, reference_labels)
              << "sub=" << sub_buckets << " balance=" << balance;
        }
      }
    });
    have_reference = true;
  }
}

TEST(Determinism, PagerankStableAcrossRankCounts) {
  const auto g = graph::make_rmat({.scale = 7, .edge_factor = 4, .seed = 24});
  std::vector<Tuple> at1;
  for (const int ranks : {1, 4}) {
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      queries::PagerankOptions opts;
      opts.rounds = 8;
      opts.collect_ranks = true;
      const auto result = run_pagerank(comm, g, opts);
      if (comm.rank() == 0) {
        if (ranks == 1) {
          at1 = result.ranks;
        } else {
          EXPECT_EQ(result.ranks, at1);
        }
      }
    });
  }
}

TEST(Determinism, DynamicJoinOrderDoesNotAffectResults) {
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 5, .seed = 25});
  const auto sources = g.pick_sources(2);
  std::vector<Tuple> dynamic_rows, fixed_rows;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = sources;
    opts.collect_distances = true;
    const auto dyn = run_sssp(comm, g, opts);
    opts.tuning.engine.dynamic_join_order = false;
    const auto fixed = run_sssp(comm, g, opts);
    if (comm.rank() == 0) {
      dynamic_rows = dyn.distances;
      fixed_rows = fixed.distances;
    }
  });
  EXPECT_EQ(dynamic_rows, fixed_rows);
}

TEST(Determinism, ProfileSummaryIdenticalOnAllRanks) {
  const auto g = graph::make_grid(6, 6, 5, 26);
  vmpi::run(4, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = {0};
    const auto result = run_sssp(comm, g, opts);
    // Every rank computed the same summary: compare a few scalar digests.
    const auto iters = comm.allgather<std::uint64_t>(result.run.profile.iterations);
    const auto bytes = comm.allgather<std::uint64_t>(result.run.profile.bytes_total());
    const auto comm_bytes =
        comm.allgather<std::uint64_t>(result.run.comm_total.total_remote_bytes());
    for (std::size_t r = 1; r < iters.size(); ++r) {
      EXPECT_EQ(iters[r], iters[0]);
      EXPECT_EQ(bytes[r], bytes[0]);
      EXPECT_EQ(comm_bytes[r], comm_bytes[0]);
    }
  });
}

TEST(Determinism, FixpointsIdenticalAcrossSchedulesAndTopologies) {
  // The topology refactor's core invariant: node grouping, collective
  // schedule, and exchange routing are pure communication choices — every
  // combination must reach the bit-identical fixpoint because all folds
  // stay in rank order and the hierarchical pre-merge uses the same
  // deterministic aggregator as the dense path.
  const auto g = graph::make_rmat({.scale = 8, .edge_factor = 5, .seed = 29});
  const auto sources = g.pick_sources(2);
  constexpr int kRanks = 8;

  struct Variant {
    const char* name;
    vmpi::CollectiveSchedule schedule;
    int nodes;  // 0 -> flat topology
    core::ExchangeAlgorithm exchange;
    std::uint64_t skew_threshold;  // 0 -> hybrid skew plans off
  };
  // The +skew variants use an absurdly low hot threshold so hot sets engage
  // (and churn) on an ordinary graph — the hybrid routing must still land on
  // the same fixpoint bit for bit.
  const Variant variants[] = {
      {"linear/flat/dense", vmpi::CollectiveSchedule::kLinear, 0,
       core::ExchangeAlgorithm::kDense, 0},
      {"rd/flat/dense", vmpi::CollectiveSchedule::kRecursiveDoubling, 0,
       core::ExchangeAlgorithm::kDense, 0},
      {"swing/flat/dense", vmpi::CollectiveSchedule::kSwing, 0,
       core::ExchangeAlgorithm::kDense, 0},
      {"rd/flat/bruck", vmpi::CollectiveSchedule::kRecursiveDoubling, 0,
       core::ExchangeAlgorithm::kBruck, 0},
      {"rd/2x4/hier", vmpi::CollectiveSchedule::kRecursiveDoubling, 2,
       core::ExchangeAlgorithm::kHierarchical, 0},
      {"swing/4x2/hier", vmpi::CollectiveSchedule::kSwing, 4,
       core::ExchangeAlgorithm::kHierarchical, 0},
      {"rd/flat/dense+skew", vmpi::CollectiveSchedule::kRecursiveDoubling, 0,
       core::ExchangeAlgorithm::kDense, 16},
      {"swing/4x2/hier+skew", vmpi::CollectiveSchedule::kSwing, 4,
       core::ExchangeAlgorithm::kHierarchical, 16},
  };

  // reference[q] from the first variant; later variants must match.
  std::vector<Tuple> reference[4];
  bool have_reference = false;
  for (const auto& v : variants) {
    vmpi::RunOptions options;
    options.schedule = v.schedule;
    options.topology = vmpi::Topology::grouped(kRanks, v.nodes);
    std::vector<Tuple> got[4];
    vmpi::run(kRanks, options, [&](vmpi::Comm& comm) {
      queries::QueryTuning tuning;
      tuning.engine.exchange = v.exchange;
      if (v.skew_threshold > 0) {
        tuning.engine.skew.enabled = true;
        tuning.engine.skew.hot_threshold = v.skew_threshold;
      }
      {
        queries::SsspOptions opts;
        opts.sources = sources;
        opts.tuning = tuning;
        opts.collect_distances = true;
        auto r = run_sssp(comm, g, opts);
        if (comm.rank() == 0) got[0] = std::move(r.distances);
      }
      {
        queries::CcOptions opts;
        opts.tuning = tuning;
        opts.collect_labels = true;
        auto r = run_cc(comm, g, opts);
        if (comm.rank() == 0) got[1] = std::move(r.labels);
      }
      {
        queries::TcOptions opts;
        opts.tuning = tuning;
        opts.collect_pairs = true;
        auto r = run_tc(comm, g, opts);
        if (comm.rank() == 0) got[2] = std::move(r.pairs);
      }
      {
        queries::PagerankOptions opts;
        opts.rounds = 5;
        opts.tuning = tuning;
        opts.collect_ranks = true;
        auto r = run_pagerank(comm, g, opts);
        if (comm.rank() == 0) got[3] = std::move(r.ranks);
      }
    });
    for (int q = 0; q < 4; ++q) {
      ASSERT_FALSE(got[q].empty()) << v.name << " query " << q;
      if (!have_reference) {
        reference[q] = std::move(got[q]);
      } else {
        EXPECT_EQ(got[q], reference[q]) << v.name << " query " << q;
      }
    }
    have_reference = true;
  }
}

}  // namespace
}  // namespace paralagg

// Topology model, log-step collective schedules, and the hierarchical
// two-level exchange.
//
// The contracts under test: (1) the Topology partition arithmetic and the
// schedule parser; (2) allreduce/allgather results AND payload-byte totals
// are schedule-invariant (only steps and the intra/cross locality split
// may move); (3) the hierarchical router reaches the bit-identical staged
// state of the dense exchange while shipping strictly fewer cross-node
// bytes, with the split-phase and ragged-node edge cases intact.

#include "vmpi/topology.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/exchange_router.hpp"
#include "core/relation.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg {
namespace {

using core::ExchangeAlgorithm;
using core::ExchangeRouter;
using core::RankProfile;
using core::Relation;
using core::RouterFlushStats;
using core::Tuple;
using core::value_t;
using vmpi::CollectiveSchedule;
using vmpi::Comm;
using vmpi::CommStats;
using vmpi::Op;
using vmpi::Topology;

// ---------------------------------------------------------------------------
// Topology partition arithmetic
// ---------------------------------------------------------------------------

TEST(Topology, FlatDefaultMakesEveryRankItsOwnNode) {
  const Topology t;
  EXPECT_EQ(t.node_size, 1);
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(t.node_of(r), r);
    EXPECT_EQ(t.leader_of(r), r);
    EXPECT_TRUE(t.is_leader(r));
  }
  EXPECT_FALSE(t.same_node(0, 1));
  EXPECT_EQ(t.node_count(5), 5);
}

TEST(Topology, GroupedPartitionsContiguously) {
  const Topology t = Topology::grouped(32, 4);
  EXPECT_EQ(t.node_size, 8);
  EXPECT_EQ(t.node_count(32), 4);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(7), 0);
  EXPECT_EQ(t.node_of(8), 1);
  EXPECT_EQ(t.leader_of(13), 8);
  EXPECT_TRUE(t.is_leader(24));
  EXPECT_FALSE(t.is_leader(25));
  EXPECT_TRUE(t.same_node(16, 23));
  EXPECT_FALSE(t.same_node(15, 16));
  EXPECT_EQ(t.leaders(32), (std::vector<int>{0, 8, 16, 24}));
  EXPECT_EQ(t.node_members(13, 32), (std::vector<int>{8, 9, 10, 11, 12, 13, 14, 15}));
}

TEST(Topology, GroupedHandlesRaggedAndDegenerateShapes) {
  // 10 ranks on 3 nodes: node_size ceil(10/3) = 4, last node short.
  const Topology ragged = Topology::grouped(10, 3);
  EXPECT_EQ(ragged.node_size, 4);
  EXPECT_EQ(ragged.node_count(10), 3);
  EXPECT_EQ(ragged.leaders(10), (std::vector<int>{0, 4, 8}));
  EXPECT_EQ(ragged.node_members(9, 10), (std::vector<int>{8, 9}));

  // Degenerate requests collapse to flat.
  EXPECT_EQ(Topology::grouped(8, 0).node_size, 1);
  EXPECT_EQ(Topology::grouped(8, 8).node_size, 1);
  EXPECT_EQ(Topology::grouped(8, 100).node_size, 1);
}

TEST(Topology, ElectLeadersPicksHeaviestMemberWithDeterministicTies) {
  const Topology t = Topology::grouped(8, 2);  // nodes {0..3}, {4..7}
  ASSERT_EQ(t.node_size, 4);

  // The heavier, non-lowest member wins its node.
  const std::vector<std::uint64_t> skewed{10, 40, 20, 5, 7, 7, 7, 99};
  EXPECT_EQ(t.elect_leaders(skewed), (std::vector<int>{1, 7}));

  // Ties keep the lowest contender (deterministic across ranks).
  const std::vector<std::uint64_t> tied{3, 9, 9, 0, 4, 4, 4, 4};
  EXPECT_EQ(t.elect_leaders(tied), (std::vector<int>{1, 4}));

  // All-equal degenerates to the static lowest-rank leaders.
  const std::vector<std::uint64_t> flat(8, 5);
  EXPECT_EQ(t.elect_leaders(flat), t.leaders(8));

  // Ragged last node: the election respects the short member range.
  const Topology r = Topology::grouped(5, 2);  // nodes {0,1,2}, {3,4}
  const std::vector<std::uint64_t> ragged_loads{1, 2, 3, 4, 9};
  EXPECT_EQ(r.elect_leaders(ragged_loads), (std::vector<int>{2, 4}));
}

TEST(Topology, ParseScheduleNamesRoundTrip) {
  EXPECT_EQ(vmpi::parse_schedule("linear"), CollectiveSchedule::kLinear);
  EXPECT_EQ(vmpi::parse_schedule("rd"), CollectiveSchedule::kRecursiveDoubling);
  EXPECT_EQ(vmpi::parse_schedule("recursive-doubling"),
            CollectiveSchedule::kRecursiveDoubling);
  EXPECT_EQ(vmpi::parse_schedule("swing"), CollectiveSchedule::kSwing);
  EXPECT_THROW((void)vmpi::parse_schedule("hypercube"), std::invalid_argument);
  for (const auto s : {CollectiveSchedule::kLinear, CollectiveSchedule::kRecursiveDoubling,
                       CollectiveSchedule::kSwing}) {
    EXPECT_EQ(vmpi::parse_schedule(vmpi::schedule_name(s)), s);
  }
}

// ---------------------------------------------------------------------------
// Schedule equivalence: same results, same payload bytes, fewer steps
// ---------------------------------------------------------------------------

vmpi::RunOptions with_schedule(CollectiveSchedule s, Topology topo = Topology{}) {
  vmpi::RunOptions o;
  o.schedule = s;
  o.topology = topo;
  return o;
}

TEST(Schedules, CollectivesIdenticalAcrossSchedulesAndSizes) {
  // Power-of-two sizes exercise recursive doubling and swing; the rest
  // exercise the capped dissemination fallback.  The reduction order is
  // contractually rank order, so every schedule must agree bit for bit.
  for (const int n : {2, 3, 4, 5, 6, 7, 8, 9, 16}) {
    for (const auto sched : {CollectiveSchedule::kLinear,
                             CollectiveSchedule::kRecursiveDoubling,
                             CollectiveSchedule::kSwing}) {
      SCOPED_TRACE(std::string(vmpi::schedule_name(sched)) + " n=" + std::to_string(n));
      vmpi::run(n, with_schedule(sched), [&](Comm& comm) {
        const auto r = static_cast<std::uint64_t>(comm.rank());
        const auto sum = comm.allreduce<std::uint64_t>(r + 1, vmpi::ReduceOp::kSum);
        EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) + 1) / 2);
        const auto mn = comm.allreduce<std::uint64_t>(r + 10, vmpi::ReduceOp::kMin);
        EXPECT_EQ(mn, 10u);
        const auto gathered = comm.allgather<std::uint64_t>(r * r);
        ASSERT_EQ(gathered.size(), static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
          EXPECT_EQ(gathered[static_cast<std::size_t>(i)],
                    static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(i));
        }
      });
    }
  }
}

TEST(Schedules, PayloadByteTotalsAreScheduleInvariant) {
  // Every schedule ships exactly n-1 blocks per rank (recursive doubling
  // and swing by the power-of-two doubling argument, dissemination by the
  // send-count cap), so the accounted remote bytes must not move at all.
  for (const int n : {3, 8}) {
    for (const auto sched : {CollectiveSchedule::kLinear,
                             CollectiveSchedule::kRecursiveDoubling,
                             CollectiveSchedule::kSwing}) {
      SCOPED_TRACE(std::string(vmpi::schedule_name(sched)) + " n=" + std::to_string(n));
      std::vector<CommStats> per_rank;
      vmpi::run_collect(
          n, with_schedule(sched),
          [&](Comm& comm) {
            (void)comm.allreduce<std::uint64_t>(1, vmpi::ReduceOp::kSum);
            (void)comm.allgather<std::uint64_t>(2);
          },
          per_rank);
      for (const auto& st : per_rank) {
        EXPECT_EQ(st.remote_bytes(Op::kAllreduce),
                  (static_cast<std::uint64_t>(n) - 1) * sizeof(std::uint64_t));
        EXPECT_EQ(st.remote_bytes(Op::kAllgather),
                  (static_cast<std::uint64_t>(n) - 1) * sizeof(std::uint64_t));
      }
    }
  }
}

TEST(Schedules, LogStepSchedulesRecordLogarithmicSteps) {
  struct Expect {
    CollectiveSchedule sched;
    std::uint64_t steps;  // per collective call at n = 8
  };
  const Expect expectations[] = {
      {CollectiveSchedule::kLinear, 7},
      {CollectiveSchedule::kRecursiveDoubling, 3},
      {CollectiveSchedule::kSwing, 3},
  };
  for (const auto& e : expectations) {
    SCOPED_TRACE(vmpi::schedule_name(e.sched));
    std::vector<CommStats> per_rank;
    vmpi::run_collect(
        8, with_schedule(e.sched),
        [&](Comm& comm) {
          (void)comm.allreduce<std::uint64_t>(1, vmpi::ReduceOp::kSum);
          (void)comm.allgather<std::uint64_t>(2);
        },
        per_rank);
    for (const auto& st : per_rank) {
      EXPECT_EQ(st.steps_of(Op::kAllreduce), e.steps);
      EXPECT_EQ(st.steps_of(Op::kAllgather), e.steps);
    }
  }
  // Non-power-of-two under a log-step schedule: dissemination fallback,
  // still ceil(log2 n) steps (n = 6 -> 3 rounds).
  std::vector<CommStats> per_rank;
  vmpi::run_collect(
      6, with_schedule(CollectiveSchedule::kRecursiveDoubling),
      [&](Comm& comm) { (void)comm.allreduce<std::uint64_t>(1, vmpi::ReduceOp::kSum); },
      per_rank);
  for (const auto& st : per_rank) EXPECT_EQ(st.steps_of(Op::kAllreduce), 3u);
}

TEST(Schedules, SplitChildWorldsInheritTheSchedule) {
  std::vector<CommStats> per_rank;
  vmpi::run_collect(
      4, with_schedule(CollectiveSchedule::kLinear),
      [&](Comm& comm) {
        auto child = comm.split(comm.rank() % 2, comm.rank());
        (void)child.comm().allreduce<std::uint64_t>(1, vmpi::ReduceOp::kSum);
        EXPECT_EQ(child.comm().schedule(), CollectiveSchedule::kLinear);
      },
      per_rank);
}

// ---------------------------------------------------------------------------
// Per-kind intra- vs cross-node byte attribution (grouped topology)
// ---------------------------------------------------------------------------

TEST(Stats, CollectiveKindsSplitIntraVsCrossNodeBytes) {
  // 4 ranks on 2 nodes of 2.  Under the linear slot schedule every rank
  // sends its 8-byte block to all 3 peers: one shares the node (8 bytes
  // intra), two do not (16 bytes cross).  An alltoallv with 16-byte
  // buffers splits the same way: 16 intra, 32 cross.
  std::vector<CommStats> per_rank;
  vmpi::run_collect(
      4, with_schedule(CollectiveSchedule::kLinear, Topology::grouped(4, 2)),
      [&](Comm& comm) {
        (void)comm.allreduce<std::uint64_t>(1, vmpi::ReduceOp::kSum);
        (void)comm.allgather<std::uint64_t>(2);
        std::vector<std::vector<std::uint64_t>> send(4);
        for (auto& s : send) s = {1, 2};
        (void)comm.alltoallv_t(send);
      },
      per_rank);
  for (const auto& st : per_rank) {
    for (const Op op : {Op::kAllreduce, Op::kAllgather}) {
      EXPECT_EQ(st.remote_bytes(op), 24u);
      EXPECT_EQ(st.cross_node_bytes(op), 16u);
      EXPECT_EQ(st.intra_node_bytes(op), 8u);
    }
    EXPECT_EQ(st.remote_bytes(Op::kAlltoallv), 48u);
    EXPECT_EQ(st.cross_node_bytes(Op::kAlltoallv), 32u);
    EXPECT_EQ(st.intra_node_bytes(Op::kAlltoallv), 16u);
    EXPECT_EQ(st.total_cross_node_bytes(),
              st.cross_node_bytes(Op::kAllreduce) + st.cross_node_bytes(Op::kAllgather) +
                  st.cross_node_bytes(Op::kAlltoallv));
  }
}

TEST(Stats, FlatTopologyCountsAllRemoteBytesAsCrossNode) {
  // Pre-topology compatibility: with node_size 1 the locality split must
  // be degenerate — every remote byte is a cross-node byte.
  std::vector<CommStats> per_rank;
  vmpi::run_collect(
      3, [&](Comm& comm) { (void)comm.allgather<std::uint64_t>(1); }, per_rank);
  for (const auto& st : per_rank) {
    EXPECT_EQ(st.cross_node_bytes(Op::kAllgather), st.remote_bytes(Op::kAllgather));
    EXPECT_EQ(st.intra_node_bytes(Op::kAllgather), 0u);
  }
}

// ---------------------------------------------------------------------------
// Hierarchical two-level exchange
// ---------------------------------------------------------------------------

/// Smallest key >= 0 whose unary-prefix tuple `rel` assigns to `rank`.
value_t key_owned_by(const Relation& rel, int rank) {
  for (value_t k = 0;; ++k) {
    const Tuple probe{k, 0, 0};
    if (rel.owner_rank(probe.view()) == rank) return k;
  }
}

/// One MIN-aggregated flush where every rank emits a row with the SAME
/// independent key toward every other rank, so the node-level pre-merge
/// has something to collapse.  Returns rank 0's gathered fixpoint.
std::vector<Tuple> run_min_flush(int ranks, const vmpi::RunOptions& options,
                                 ExchangeAlgorithm algo, std::vector<CommStats>* stats,
                                 std::vector<RouterFlushStats>* flush_stats = nullptr) {
  std::vector<Tuple> rows;
  std::vector<CommStats> per_rank;
  if (flush_stats != nullptr) flush_stats->assign(static_cast<std::size_t>(ranks), {});
  vmpi::run_collect(
      ranks, options,
      [&](Comm& comm) {
        Relation rel(comm, {.name = "h",
                            .arity = 3,
                            .jcc = 1,
                            .dep_arity = 1,
                            .aggregator = core::make_min_aggregator()});
        RankProfile profile;
        ExchangeRouter router(comm, /*preaggregate=*/true);
        const auto id = router.add_target(&rel);
        for (int d = 0; d < comm.size(); ++d) {
          if (d == comm.rank()) continue;
          const value_t key = key_owned_by(rel, d);
          router.emit(id, Tuple{key, 7, 100 + static_cast<value_t>(comm.rank())}.view());
        }
        const auto st = router.flush(profile, algo);
        if (flush_stats != nullptr) {
          (*flush_stats)[static_cast<std::size_t>(comm.rank())] = st;
        }
        rel.materialize();
        auto gathered = rel.gather_to_root(0);
        if (comm.rank() == 0) rows = std::move(gathered);
      },
      per_rank);
  if (stats != nullptr) *stats = std::move(per_rank);
  return rows;
}

TEST(HierarchicalExchange, MatchesDenseFixpointWithFewerCrossNodeBytes) {
  const int ranks = 8;
  const auto options = with_schedule(CollectiveSchedule::kRecursiveDoubling,
                                     Topology::grouped(ranks, 2));
  std::vector<CommStats> dense_stats, hier_stats;
  std::vector<RouterFlushStats> hier_flush;
  const auto dense = run_min_flush(ranks, options, ExchangeAlgorithm::kDense, &dense_stats);
  const auto hier = run_min_flush(ranks, options, ExchangeAlgorithm::kHierarchical,
                                  &hier_stats, &hier_flush);
  ASSERT_FALSE(dense.empty());
  EXPECT_EQ(hier, dense);

  const auto sum_cross = [](const std::vector<CommStats>& v) {
    std::uint64_t total = 0;
    for (const auto& st : v) total += st.cross_node_bytes(Op::kAlltoallv);
    return total;
  };
  // Each node's 4 members emit a row for every off-node destination; the
  // aggregator folds those four MIN candidates into one before the
  // leaders-only exchange, so cross-node volume must drop strictly.
  EXPECT_LT(sum_cross(hier_stats), sum_cross(dense_stats));

  // The node merge really fired, on leaders only.
  const Topology topo = Topology::grouped(ranks, 2);
  std::uint64_t merged = 0;
  for (int r = 0; r < ranks; ++r) {
    const auto& st = hier_flush[static_cast<std::size_t>(r)];
    if (!topo.is_leader(r)) {
      EXPECT_EQ(st.rows_node_merged, 0u) << "rank " << r;
    }
    merged += st.rows_node_merged;
  }
  EXPECT_GT(merged, 0u);

  for (const auto& st : hier_stats) {
    // Still exactly one collective tuple exchange per flush per rank, and
    // the up/down legs show up as the two extra schedule steps.
    EXPECT_EQ(st.calls_of(Op::kAlltoallv), 1u);
    EXPECT_EQ(st.steps_of(Op::kAlltoallv), 3u);
    EXPECT_EQ(st.tickets_posted, 1u);
    EXPECT_EQ(st.tickets_completed, 1u);
  }
}

TEST(HierarchicalExchange, RaggedNodesAndEveryRowCountSurvive) {
  // 5 ranks on 2 nodes: node {0,1,2} and node {3,4} — the short last node
  // exercises the member-index arithmetic on both legs.
  const int ranks = 5;
  const auto options = with_schedule(CollectiveSchedule::kRecursiveDoubling,
                                     Topology::grouped(ranks, 2));
  std::vector<CommStats> dense_stats, hier_stats;
  const auto dense = run_min_flush(ranks, options, ExchangeAlgorithm::kDense, &dense_stats);
  const auto hier =
      run_min_flush(ranks, options, ExchangeAlgorithm::kHierarchical, &hier_stats);
  ASSERT_FALSE(dense.empty());
  EXPECT_EQ(hier, dense);
  std::uint64_t staged_rows = 0;
  for (const auto& st : hier_stats) staged_rows += st.calls_of(Op::kAlltoallv);
  EXPECT_EQ(staged_rows, static_cast<std::uint64_t>(ranks));
}

TEST(HierarchicalExchange, FlatTopologyDegradesToDense) {
  // node_size 1: the hierarchy is the identity, so the router must take
  // the plain dense path — one step, no intra-node legs.
  std::vector<CommStats> per_rank;
  const auto rows = run_min_flush(4, vmpi::RunOptions{}, ExchangeAlgorithm::kHierarchical,
                                  &per_rank);
  ASSERT_FALSE(rows.empty());
  for (const auto& st : per_rank) {
    EXPECT_EQ(st.steps_of(Op::kAlltoallv), 1u);
    EXPECT_EQ(st.intra_node_bytes(Op::kAlltoallv), 0u);
  }
}

TEST(HierarchicalExchange, SplitPhasePostCompleteKeepsEmitsFlowing) {
  const auto options = with_schedule(CollectiveSchedule::kRecursiveDoubling,
                                     Topology::grouped(4, 2));
  vmpi::run(4, options, [&](Comm& comm) {
    Relation rel(comm, {.name = "sp", .arity = 3, .jcc = 1});
    RankProfile profile;
    ExchangeRouter router(comm, /*preaggregate=*/true);
    const auto id = router.add_target(&rel);
    const value_t theirs = key_owned_by(rel, (comm.rank() + 1) % comm.size());

    router.emit(id, Tuple{theirs, 1, 1}.view());
    router.post(profile, ExchangeAlgorithm::kHierarchical);
    EXPECT_TRUE(router.in_flight());

    // Rows emitted while the two-level exchange is in flight land in the
    // other generation and ride the next flush untouched.
    router.emit(id, Tuple{theirs, 2, 2}.view());
    const auto st1 = router.complete(profile);
    EXPECT_EQ(st1.rows_staged, 1u);
    EXPECT_EQ(router.pending_rows(), 1u);

    router.post(profile, ExchangeAlgorithm::kHierarchical);
    const auto st2 = router.complete(profile);
    EXPECT_EQ(st2.rows_staged, 1u);

    rel.materialize();
    EXPECT_EQ(rel.global_size(core::Version::kFull), 8u);
    EXPECT_EQ(comm.stats().tickets_posted, 2u);
    EXPECT_EQ(comm.stats().tickets_completed, 2u);
  });
}

TEST(HierarchicalExchange, HeaviestMemberAggregatesItsNode) {
  // Node {0,1}: rank 1 stages far more delta bytes than rank 0, so the
  // load election must aggregate on rank 1 — the heavy buffer never
  // crosses the intra-node wire.  Node {2,3} stays symmetric and keeps
  // its lowest rank.  The fixpoint must be dense-identical either way.
  const int ranks = 4;
  const auto options = with_schedule(CollectiveSchedule::kRecursiveDoubling,
                                     Topology::grouped(ranks, 2));
  const auto leg = [&](ExchangeAlgorithm algo, std::vector<RouterFlushStats>* flush) {
    std::vector<Tuple> rows;
    if (flush != nullptr) flush->assign(static_cast<std::size_t>(ranks), {});
    vmpi::run(ranks, options, [&](Comm& comm) {
      Relation rel(comm, {.name = "h",
                          .arity = 3,
                          .jcc = 1,
                          .dep_arity = 1,
                          .aggregator = core::make_min_aggregator()});
      RankProfile profile;
      ExchangeRouter router(comm, /*preaggregate=*/true);
      const auto id = router.add_target(&rel);
      for (int d = 0; d < comm.size(); ++d) {
        if (d == comm.rank()) continue;
        const value_t key = key_owned_by(rel, d);
        router.emit(id, Tuple{key, 7, 100 + static_cast<value_t>(comm.rank())}.view());
      }
      if (comm.rank() == 1) {
        // The burst that makes rank 1 node 0's heaviest member.
        for (value_t k = 0; k < 64; ++k) {
          router.emit(id, Tuple{k, 9, 200 + k}.view());
        }
      }
      const auto st = router.flush(profile, algo);
      if (flush != nullptr) (*flush)[static_cast<std::size_t>(comm.rank())] = st;
      rel.materialize();
      auto gathered = rel.gather_to_root(0);
      if (comm.rank() == 0) rows = std::move(gathered);
    });
    return rows;
  };

  std::vector<RouterFlushStats> flush;
  const auto dense = leg(ExchangeAlgorithm::kDense, nullptr);
  const auto hier = leg(ExchangeAlgorithm::kHierarchical, &flush);
  ASSERT_FALSE(dense.empty());
  EXPECT_EQ(hier, dense);

  // The skewed node elects its heavier, non-lowest member...
  EXPECT_EQ(flush[0].elected_leader, 1);
  EXPECT_EQ(flush[1].elected_leader, 1);
  // ... and the node merge runs there, not on the static leader.
  EXPECT_EQ(flush[0].rows_node_merged, 0u);
  EXPECT_GT(flush[1].rows_node_merged, 0u);
  // The symmetric node ties and keeps its lowest rank.
  EXPECT_EQ(flush[2].elected_leader, 2);
  EXPECT_EQ(flush[3].elected_leader, 2);
}

}  // namespace
}  // namespace paralagg

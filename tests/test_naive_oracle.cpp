// Randomized differential testing: a naive single-threaded Datalog
// interpreter (recompute everything from `full` until nothing changes) is
// evaluated against the distributed semi-naive engine on randomly
// generated programs.  Semi-naive evaluation, double-hashed distribution,
// fused aggregation, join planning, and balancing must all be
// observationally equivalent to the naive fixpoint — on every program.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg::core {
namespace {

using graph::Rng;

// ---- program specification (pure data, buildable on any rank) -----------------

struct RelSpec {
  std::size_t arity;
  std::size_t jcc;
  bool min_agg;  // dep_arity 1 with $MIN when true, plain otherwise
};

enum class HeadCol : std::uint8_t { kA0, kA1, kALast, kB1, kBLast, kAddA1B1, kMinA1B1 };
enum class FilterKind : std::uint8_t { kNone, kALessB, kANeqB };

struct ProgramSpec {
  RelSpec input;   // plain facts
  RelSpec target;  // recursive relation
  std::vector<HeadCol> init_head;    // copy input -> target
  std::vector<HeadCol> loop_head;    // join target x input -> target
  FilterKind loop_filter = FilterKind::kNone;
  std::vector<Tuple> facts;
};

value_t eval_head(HeadCol h, std::span<const value_t> a, std::span<const value_t> b) {
  switch (h) {
    case HeadCol::kA0: return a[0];
    case HeadCol::kA1: return a.size() > 1 ? a[1] : a[0];
    case HeadCol::kALast: return a.back();
    case HeadCol::kB1: return b.size() > 1 ? b[1] : b[0];
    case HeadCol::kBLast: return b.back();
    case HeadCol::kAddA1B1: {
      const value_t x = a.size() > 1 ? a[1] : a[0];
      const value_t y = b.size() > 1 ? b[1] : b[0];
      return x + y;
    }
    case HeadCol::kMinA1B1: {
      const value_t x = a.size() > 1 ? a[1] : a[0];
      const value_t y = b.size() > 1 ? b[1] : b[0];
      return x < y ? x : y;
    }
  }
  return 0;
}

Expr head_expr(HeadCol h, std::size_t a_arity, std::size_t b_arity) {
  const auto a1 = Expr::col_a(a_arity > 1 ? 1 : 0);
  const auto b1 = Expr::col_b(b_arity > 1 ? 1 : 0);
  switch (h) {
    case HeadCol::kA0: return Expr::col_a(0);
    case HeadCol::kA1: return a1;
    case HeadCol::kALast: return Expr::col_a(a_arity - 1);
    case HeadCol::kB1: return b1;
    case HeadCol::kBLast: return Expr::col_b(b_arity - 1);
    case HeadCol::kAddA1B1: return Expr::add(a1, b1);
    case HeadCol::kMinA1B1: return Expr::min(a1, b1);
  }
  return Expr::constant(0);
}

bool filter_keeps(FilterKind f, std::span<const value_t> a, std::span<const value_t> b) {
  switch (f) {
    case FilterKind::kNone: return true;
    case FilterKind::kALessB: return a[0] < b[0];
    case FilterKind::kANeqB: return a[0] != b[0];
  }
  return true;
}

std::optional<Expr> filter_expr(FilterKind f) {
  switch (f) {
    case FilterKind::kNone: return std::nullopt;
    case FilterKind::kALessB: return Expr::less(Expr::col_a(0), Expr::col_b(0));
    case FilterKind::kANeqB: return Expr::neq(Expr::col_a(0), Expr::col_b(0));
  }
  return std::nullopt;
}

// ---- random generation ---------------------------------------------------------

HeadCol random_head(Rng& rng, bool for_dep, bool plain_target, std::size_t a_arity) {
  if (plain_target) {
    // Plain targets must stay in a finite value domain (no `add`, which
    // diverges on cycles).
    static constexpr HeadCol kFinite[] = {HeadCol::kA0, HeadCol::kA1, HeadCol::kALast,
                                          HeadCol::kB1, HeadCol::kBLast, HeadCol::kMinA1B1};
    return kFinite[rng.below(std::size(kFinite))];
  }
  if (for_dep) {
    // Dependent column of a $MIN target: `add` is fine (the lattice is
    // bounded below, chains terminate).
    static constexpr HeadCol kAny[] = {HeadCol::kA1, HeadCol::kBLast, HeadCol::kAddA1B1,
                                       HeadCol::kMinA1B1, HeadCol::kALast};
    return kAny[rng.below(std::size(kAny))];
  }
  // Independent (key) column of an aggregated target: it must never read
  // side A's dependent column — that would be joining on an aggregated
  // value, the exact thing the paper's restriction (§III-A) rules out, and
  // it changes semantics (transient aggregates would mint keys).
  // a's dep column is its last; kA1 aliases it when a_arity == 2, and the
  // a1-reading combinators do too.
  if (a_arity > 2 && rng.below(2) == 0) {
    static constexpr HeadCol kDeepA[] = {HeadCol::kA0, HeadCol::kA1};
    return kDeepA[rng.below(std::size(kDeepA))];
  }
  static constexpr HeadCol kSafe[] = {HeadCol::kA0, HeadCol::kB1, HeadCol::kBLast};
  return kSafe[rng.below(std::size(kSafe))];
}

ProgramSpec random_program(std::uint64_t seed) {
  Rng rng(seed);
  ProgramSpec spec;
  spec.input.arity = 2 + rng.below(2);  // 2 or 3
  spec.input.jcc = 1;
  spec.input.min_agg = false;
  spec.target.arity = 2 + rng.below(2);
  spec.target.jcc = 1;
  spec.target.min_agg = rng.below(2) == 1;
  // An aggregated target needs at least one non-dep column beyond jcc?  No:
  // arity 2 with dep 1 leaves one independent column, which is fine.

  const bool plain = !spec.target.min_agg;
  for (std::size_t c = 0; c < spec.target.arity; ++c) {
    const bool is_dep = spec.target.min_agg && c + 1 == spec.target.arity;
    // Init head reads side A only (a copy rule).
    static constexpr HeadCol kAOnly[] = {HeadCol::kA0, HeadCol::kA1, HeadCol::kALast};
    spec.init_head.push_back(kAOnly[rng.below(std::size(kAOnly))]);
    spec.loop_head.push_back(random_head(rng, is_dep, plain, spec.target.arity));
  }
  const auto f = rng.below(3);
  spec.loop_filter = f == 0   ? FilterKind::kNone
                     : f == 1 ? FilterKind::kALessB
                              : FilterKind::kANeqB;

  // Facts: a small random graph-ish relation over a tiny value domain so
  // fixpoints are reachable quickly but collisions/dedups are exercised.
  const std::uint64_t domain = 8 + rng.below(10);
  const std::size_t nfacts = 20 + rng.below(40);
  for (std::size_t i = 0; i < nfacts; ++i) {
    Tuple t;
    for (std::size_t c = 0; c < spec.input.arity; ++c) t.push_back(rng.below(domain));
    spec.facts.push_back(std::move(t));
  }
  return spec;
}

// ---- naive interpreter ----------------------------------------------------------

/// Aggregated state: key prefix -> dep value; plain state: tuple set.
struct NaiveState {
  std::set<Tuple> plain;
  std::map<Tuple, value_t> agg;  // $MIN over the last column

  bool insert(const ProgramSpec& spec, const Tuple& t) {
    if (!spec.target.min_agg) return plain.insert(t).second;
    Tuple key(t.prefix(spec.target.arity - 1));
    const value_t dep = t.back();
    auto [it, fresh] = agg.try_emplace(std::move(key), dep);
    if (fresh) return true;
    if (dep < it->second) {
      it->second = dep;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::set<Tuple> rows(const ProgramSpec& spec) const {
    if (!spec.target.min_agg) return plain;
    std::set<Tuple> out;
    for (const auto& [key, dep] : agg) {
      Tuple t = key;
      t.push_back(dep);
      out.insert(t);
    }
    return out;
  }
};

std::set<Tuple> naive_fixpoint(const ProgramSpec& spec) {
  // Deduplicated input.
  std::set<Tuple> input(spec.facts.begin(), spec.facts.end());
  NaiveState state;

  // Init: copy/project input into the target.
  static const Tuple kEmpty;
  for (const auto& fact : input) {
    Tuple t;
    for (const auto h : spec.init_head) t.push_back(eval_head(h, fact.view(), kEmpty.view()));
    state.insert(spec, t);
  }

  // Loop: recompute target x input joins from the full state until nothing
  // changes.  (Monotone, so naive = semi-naive fixpoint.)
  for (bool changed = true; changed;) {
    changed = false;
    const auto current = state.rows(spec);
    for (const auto& a : current) {
      for (const auto& b : input) {
        if (a[0] != b[0]) continue;  // join on the first column
        if (!filter_keeps(spec.loop_filter, a.view(), b.view())) continue;
        Tuple t;
        for (const auto h : spec.loop_head) t.push_back(eval_head(h, a.view(), b.view()));
        changed |= state.insert(spec, t);
      }
    }
  }
  return state.rows(spec);
}

// ---- distributed evaluation -----------------------------------------------------

std::vector<Tuple> engine_fixpoint(const ProgramSpec& spec, int ranks, int sub_buckets,
                                   bool balance) {
  std::vector<Tuple> rows;
  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    Program program(comm);
    auto* input = program.relation({.name = "input",
                                    .arity = spec.input.arity,
                                    .jcc = spec.input.jcc,
                                    .sub_buckets = sub_buckets,
                                    .balanceable = balance});
    RelationConfig tcfg{.name = "target",
                        .arity = spec.target.arity,
                        .jcc = spec.target.jcc};
    if (spec.target.min_agg) {
      tcfg.dep_arity = 1;
      tcfg.aggregator = make_min_aggregator();
    }
    auto* target = program.relation(std::move(tcfg));

    auto& stratum = program.stratum();
    OutputSpec init_out{.target = target, .cols = {}};
    for (const auto h : spec.init_head) {
      init_out.cols.push_back(head_expr(h, spec.input.arity, 0));
    }
    stratum.init_rules.push_back(
        CopyRule{.src = input, .version = Version::kFull, .out = std::move(init_out)});

    OutputSpec loop_out{.target = target, .cols = {}};
    for (const auto h : spec.loop_head) {
      loop_out.cols.push_back(head_expr(h, spec.target.arity, spec.input.arity));
    }
    stratum.loop_rules.push_back(JoinRule{.a = target,
                                          .a_version = Version::kDelta,
                                          .b = input,
                                          .b_version = Version::kFull,
                                          .out = std::move(loop_out),
                                          .filter = filter_expr(spec.loop_filter)});

    // Slice the facts round-robin like the real queries do.
    std::vector<Tuple> slice;
    for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < spec.facts.size();
         i += static_cast<std::size_t>(comm.size())) {
      slice.push_back(spec.facts[i]);
    }
    input->load_facts(slice);

    Engine engine(comm);
    engine.run(program);
    auto gathered = target->gather_to_root(0);
    if (comm.rank() == 0) rows = std::move(gathered);
  });
  return rows;
}

// ---- the differential sweep -------------------------------------------------------

class NaiveOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NaiveOracle, EngineMatchesNaiveInterpreter) {
  const auto spec = random_program(GetParam());
  const auto expected = naive_fixpoint(spec);

  struct Config {
    int ranks;
    int sub_buckets;
    bool balance;
  };
  for (const auto& [ranks, sub, balance] :
       {Config{1, 1, false}, Config{4, 1, false}, Config{4, 4, true}, Config{7, 1, false}}) {
    const auto got = engine_fixpoint(spec, ranks, sub, balance);
    ASSERT_EQ(got.size(), expected.size())
        << "seed=" << GetParam() << " ranks=" << ranks << " sub=" << sub;
    std::size_t i = 0;
    for (const auto& row : expected) {
      EXPECT_EQ(got[i], row) << "seed=" << GetParam() << " ranks=" << ranks << " row " << i;
      ++i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, NaiveOracle,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace paralagg::core

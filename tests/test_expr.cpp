// Expr: rule-head and filter expression evaluation.

#include "core/expr.hpp"

#include <gtest/gtest.h>

namespace paralagg::core {
namespace {

const Tuple kA{10, 20, 30};
const Tuple kB{1, 2, 3};

value_t ev(const Expr& e) { return e.eval(kA.view(), kB.view()); }

TEST(Expr, ColumnReferences) {
  EXPECT_EQ(ev(Expr::col_a(0)), 10u);
  EXPECT_EQ(ev(Expr::col_a(2)), 30u);
  EXPECT_EQ(ev(Expr::col_b(1)), 2u);
}

TEST(Expr, Constant) { EXPECT_EQ(ev(Expr::constant(99)), 99u); }

TEST(Expr, Arithmetic) {
  EXPECT_EQ(ev(Expr::add(Expr::col_a(0), Expr::col_b(2))), 13u);
  EXPECT_EQ(ev(Expr::sub(Expr::col_a(1), Expr::col_b(1))), 18u);
  EXPECT_EQ(ev(Expr::sub(Expr::col_b(0), Expr::col_a(0))), 0u);  // saturates
  EXPECT_EQ(ev(Expr::min(Expr::col_a(0), Expr::col_b(0))), 1u);
  EXPECT_EQ(ev(Expr::max(Expr::col_a(0), Expr::col_b(0))), 10u);
}

TEST(Expr, DivisionGuardsZero) {
  EXPECT_EQ(ev(Expr::div(Expr::col_a(1), Expr::col_b(1))), 10u);
  EXPECT_EQ(ev(Expr::div(Expr::col_a(1), Expr::constant(0))), 0u);
}

TEST(Expr, MulDivFixedPoint) {
  // 30 * 85 / 100 = 25 (integer).
  EXPECT_EQ(ev(Expr::mul_div(Expr::col_a(2), 85, 100)), 25u);
  // 128-bit intermediate: no overflow at large scales.
  const Tuple big{1'000'000'000'000ULL};
  const Expr e = Expr::mul_div(Expr::col_a(0), 1'000'000'000ULL, 1'000ULL);
  EXPECT_EQ(e.eval(big.view(), kB.view()), 1'000'000'000'000'000'000ULL);
}

TEST(Expr, Comparisons) {
  EXPECT_EQ(ev(Expr::less(Expr::col_b(0), Expr::col_a(0))), 1u);
  EXPECT_EQ(ev(Expr::less(Expr::col_a(0), Expr::col_b(0))), 0u);
  EXPECT_EQ(ev(Expr::less_eq(Expr::constant(10), Expr::col_a(0))), 1u);
  EXPECT_EQ(ev(Expr::eq(Expr::col_a(0), Expr::constant(10))), 1u);
  EXPECT_EQ(ev(Expr::neq(Expr::col_a(0), Expr::constant(10))), 0u);
}

TEST(Expr, LogicalAnd) {
  EXPECT_EQ(ev(Expr::logical_and(Expr::constant(1), Expr::constant(2))), 1u);
  EXPECT_EQ(ev(Expr::logical_and(Expr::constant(1), Expr::constant(0))), 0u);
}

TEST(Expr, NestedComposition) {
  // SSSP head column: l + n  ->  a[2] + b[2].
  EXPECT_EQ(ev(Expr::add(Expr::col_a(2), Expr::col_b(2))), 33u);
  // PageRank share: (a[1] / b[1]) * 85 / 100.
  EXPECT_EQ(ev(Expr::mul_div(Expr::div(Expr::col_a(1), Expr::col_b(1)), 85, 100)), 8u);
}

TEST(Expr, MaxColTracksDeepReferences) {
  const Expr e = Expr::add(Expr::col_a(4), Expr::mul_div(Expr::col_b(7), 1, 2));
  EXPECT_EQ(e.max_col_a(), 4);
  EXPECT_EQ(e.max_col_b(), 7);
  EXPECT_EQ(Expr::constant(1).max_col_a(), -1);
  EXPECT_EQ(Expr::constant(1).max_col_b(), -1);
}

TEST(Expr, CopyableAndReusable) {
  const Expr e = Expr::add(Expr::col_a(0), Expr::constant(5));
  const Expr copy = e;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(ev(copy), 15u);
  EXPECT_EQ(ev(e), 15u);
}

}  // namespace
}  // namespace paralagg::core

// Exchange fusion: the router's R+1 collective rounds per iteration vs the
// legacy 2R schedule, sender-side pre-aggregation and the loopback fast
// path, observability through CommStats/ProfileSummary, and bit-identical
// query results across fuse × exchange-algorithm modes.

#include "core/exchange_router.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "core/engine.hpp"
#include "queries/cc.hpp"
#include "queries/pagerank.hpp"
#include "queries/reference.hpp"
#include "queries/sssp.hpp"
#include "queries/tc.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg::core {
namespace {

// ---------------------------------------------------------------------------
// Router unit behaviour
// ---------------------------------------------------------------------------

/// Smallest key >= 0 whose unary-prefix tuple `rel` assigns to `rank`.
value_t key_owned_by(const Relation& rel, int rank) {
  for (value_t k = 0;; ++k) {
    const Tuple probe{k, 0, 0};
    if (rel.owner_rank(probe.view()) == rank) return k;
  }
}

TEST(ExchangeRouter, LoopbackAndSenderSidePreaggregation) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation rel(comm, {.name = "m",
                        .arity = 3,
                        .jcc = 1,
                        .dep_arity = 1,
                        .aggregator = make_min_aggregator()});
    RankProfile profile;
    ExchangeRouter router(comm, /*preaggregate=*/true);
    const auto id = router.add_target(&rel);
    EXPECT_EQ(router.add_target(&rel), id);  // idempotent registration

    const value_t mine = key_owned_by(rel, comm.rank());
    const value_t theirs = key_owned_by(rel, 1 - comm.rank());

    // Self-owned row: staged immediately, never buffered.
    router.emit(id, Tuple{mine, 7, 50}.view());
    EXPECT_EQ(router.pending_rows(), 0u);

    // Two remote rows with the same aggregation key (theirs, 7): the
    // sender-side combine must fold them to MIN before the wire.
    router.emit(id, Tuple{theirs, 7, 50}.view());
    router.emit(id, Tuple{theirs, 7, 30}.view());
    EXPECT_EQ(router.pending_rows(), 2u);

    const auto st = router.flush(profile, ExchangeAlgorithm::kDense);
    EXPECT_EQ(st.rows_loopback, 1u);
    EXPECT_EQ(st.rows_combined, 1u);
    EXPECT_EQ(st.rows_sent, 1u);
    EXPECT_EQ(st.rows_staged, 1u);  // the peer's pre-combined row
    EXPECT_EQ(router.pending_rows(), 0u);

    rel.materialize();
    // Each rank owns one key, carrying min(50, 30) from the peer merged
    // with its own loopback 50.
    const auto rows = rel.gather_to_root(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(rows.size(), 2u);
      for (const auto& row : rows) {
        EXPECT_EQ(row[1], 7u);
        EXPECT_EQ(row[2], 30u);
      }
    }
  });
}

TEST(ExchangeRouter, PlainTargetsDeduplicateBeforeTheWire) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation rel(comm, {.name = "p", .arity = 3, .jcc = 1});
    RankProfile profile;
    ExchangeRouter router(comm, /*preaggregate=*/true);
    const auto id = router.add_target(&rel);

    const value_t theirs = key_owned_by(rel, 1 - comm.rank());
    router.emit(id, Tuple{theirs, 1, 2}.view());
    router.emit(id, Tuple{theirs, 1, 2}.view());  // exact duplicate
    router.emit(id, Tuple{theirs, 1, 3}.view());  // distinct third column

    const auto st = router.flush(profile, ExchangeAlgorithm::kDense);
    EXPECT_EQ(st.rows_combined, 1u);
    EXPECT_EQ(st.rows_sent, 2u);
    EXPECT_EQ(st.rows_staged, 2u);

    rel.materialize();
    EXPECT_EQ(rel.global_size(Version::kFull), 4u);
  });
}

// ---------------------------------------------------------------------------
// Split-phase post/complete
// ---------------------------------------------------------------------------

TEST(ExchangeRouter, EmitDuringInFlightExchangeRidesTheNextPost) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation rel(comm, {.name = "sp", .arity = 3, .jcc = 1});
    RankProfile profile;
    ExchangeRouter router(comm, /*preaggregate=*/true);
    const auto id = router.add_target(&rel);
    const value_t theirs = key_owned_by(rel, 1 - comm.rank());

    router.emit(id, Tuple{theirs, 1, 1}.view());
    router.post(profile, ExchangeAlgorithm::kDense);
    EXPECT_TRUE(router.in_flight());

    // The in-flight generation is frozen; this row lands in the other one
    // and must ride the NEXT post, untouched by the pending complete.
    router.emit(id, Tuple{theirs, 2, 2}.view());
    EXPECT_EQ(router.pending_rows(), 1u);

    const auto st1 = router.complete(profile);
    EXPECT_FALSE(router.in_flight());
    EXPECT_EQ(st1.rows_sent, 1u);
    EXPECT_EQ(st1.rows_staged, 1u);
    EXPECT_EQ(router.pending_rows(), 1u);

    router.post(profile, ExchangeAlgorithm::kDense);
    const auto st2 = router.complete(profile);
    EXPECT_EQ(st2.rows_sent, 1u);
    EXPECT_EQ(st2.rows_staged, 1u);

    rel.materialize();
    EXPECT_EQ(rel.global_size(Version::kFull), 4u);
    EXPECT_EQ(comm.stats().tickets_posted, 2u);
    EXPECT_EQ(comm.stats().tickets_completed, 2u);
  });
}

TEST(ExchangeRouter, SplitPhaseDegradesToEagerUnderBruck) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation rel(comm, {.name = "eb", .arity = 3, .jcc = 1});
    RankProfile profile;
    ExchangeRouter router(comm, /*preaggregate=*/true);
    const auto id = router.add_target(&rel);
    const value_t theirs = key_owned_by(rel, 1 - comm.rank());

    router.emit(id, Tuple{theirs, 3, 4}.view());
    router.post(profile, ExchangeAlgorithm::kBruck);
    EXPECT_TRUE(router.in_flight());
    EXPECT_EQ(comm.stats().tickets_posted, 0u);  // no ticket: the relay blocked

    const auto st = router.complete(profile);
    EXPECT_EQ(st.rows_sent, 1u);
    EXPECT_EQ(st.rows_staged, 1u);

    rel.materialize();
    EXPECT_EQ(rel.global_size(Version::kFull), 2u);
  });
}

// ---------------------------------------------------------------------------
// Collective-round counting: R+1 fused vs 2R legacy
// ---------------------------------------------------------------------------

/// Transitive closure over a chain whose edges are split round-robin into
/// three edge relations: a 3-rule recursive stratum (R = 3).
struct ThreeRuleTc {
  Program program;
  Relation* path;
  std::array<Relation*, 3> edges{};

  ThreeRuleTc(vmpi::Comm& comm, value_t n) : program(comm) {
    for (int k = 0; k < 3; ++k) {
      edges[static_cast<std::size_t>(k)] = program.relation(
          {.name = "edge" + std::to_string(k), .arity = 2, .jcc = 1});
    }
    path = program.relation({.name = "path", .arity = 2, .jcc = 1});
    auto& s = program.stratum();
    for (auto* e : edges) {
      s.init_rules.push_back(CopyRule{
          .src = e,
          .version = Version::kFull,
          .out = {.target = path, .cols = {Expr::col_a(1), Expr::col_a(0)}},
      });
      s.loop_rules.push_back(JoinRule{
          .a = path,
          .a_version = Version::kDelta,
          .b = e,
          .b_version = Version::kFull,
          .out = {.target = path, .cols = {Expr::col_b(1), Expr::col_a(1)}},
      });
    }
    for (int k = 0; k < 3; ++k) {
      std::vector<Tuple> facts;
      if (comm.rank() == 0) {
        for (value_t v = static_cast<value_t>(k); v + 1 < n; v += 3) {
          facts.push_back(Tuple{v, v + 1});
        }
      }
      edges[static_cast<std::size_t>(k)]->load_facts(facts);
    }
  }
};

void expect_rounds_per_iteration(bool fused, ExchangeAlgorithm algo, bool overlap = false) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    ThreeRuleTc f(comm, 10);
    EngineConfig cfg;
    cfg.balance.enabled = false;  // reshuffles would add extra alltoallv calls
    cfg.fuse_exchanges = fused;
    cfg.router_preagg = fused;
    cfg.overlap_flush = overlap;
    cfg.exchange = algo;
    Engine engine(comm, cfg);

    const auto before = comm.stats().exchange_rounds();
    const auto sr = engine.run_stratum(*f.program.strata()[0]);
    const auto rounds = comm.stats().exchange_rounds() - before;

    ASSERT_TRUE(sr.reached_fixpoint);
    ASSERT_EQ(sr.iterations, 9u);  // chain of 10: longest path is 9 hops
    EXPECT_EQ(f.path->global_size(Version::kFull), 45u);

    // Loop iterations: R intra-bucket exchanges stay per join; generated
    // tuples cost one fused flush vs one flush (or split-phase post) per
    // rule.  The init round (3 copy rules, no intra-bucket exchange) shows
    // the same collapse.  The split-phase schedule pays the legacy round
    // count — it hides latency instead of removing rounds.
    const bool one_flush = fused && !overlap;
    const std::uint64_t per_iter = one_flush ? 3 + 1 : 3 + 3;  // R+1 vs 2R
    const std::uint64_t init_rounds = one_flush ? 1 : 3;
    EXPECT_EQ(rounds, init_rounds + per_iter * sr.iterations);

    // Split-phase bookkeeping must balance; under kDense every post is a
    // real nonblocking ticket, under kBruck the posts degrade to eager.
    EXPECT_EQ(comm.stats().tickets_posted, comm.stats().tickets_completed);
    if (overlap && algo == ExchangeAlgorithm::kDense) {
      EXPECT_EQ(comm.stats().tickets_posted, init_rounds + 3 * sr.iterations);
    } else {
      EXPECT_EQ(comm.stats().tickets_posted, 0u);
    }

    // The same reduction must be visible in the cross-rank profile.
    const auto summary = summarize_profiles(comm, engine.rank_profile());
    EXPECT_EQ(summary.exchanges_total(), rounds);
    ASSERT_EQ(summary.per_iteration_exchanges.size(), 1 + sr.iterations);
    EXPECT_EQ(summary.per_iteration_exchanges.front(), init_rounds);
    for (std::size_t i = 1; i < summary.per_iteration_exchanges.size(); ++i) {
      EXPECT_EQ(summary.per_iteration_exchanges[i], per_iter) << "iteration " << i;
    }
  });
}

TEST(ExchangeFusion, FusedStratumPaysRPlusOneRoundsDense) {
  expect_rounds_per_iteration(/*fused=*/true, ExchangeAlgorithm::kDense);
}

TEST(ExchangeFusion, LegacyStratumPaysTwoRRoundsDense) {
  expect_rounds_per_iteration(/*fused=*/false, ExchangeAlgorithm::kDense);
}

TEST(ExchangeFusion, RoundCountsHoldUnderBruck) {
  expect_rounds_per_iteration(/*fused=*/true, ExchangeAlgorithm::kBruck);
  expect_rounds_per_iteration(/*fused=*/false, ExchangeAlgorithm::kBruck);
}

TEST(ExchangeFusion, OverlapPaysLegacyRoundsButPostsTicketsDense) {
  expect_rounds_per_iteration(/*fused=*/true, ExchangeAlgorithm::kDense, /*overlap=*/true);
}

TEST(ExchangeFusion, OverlapRoundCountsHoldUnderBruck) {
  expect_rounds_per_iteration(/*fused=*/true, ExchangeAlgorithm::kBruck, /*overlap=*/true);
}

// ---------------------------------------------------------------------------
// Result identity across fuse × algorithm on the prebuilt queries
// ---------------------------------------------------------------------------

using queries::QueryTuning;

QueryTuning tuned(bool fuse, ExchangeAlgorithm algo, bool overlap = false) {
  QueryTuning t;
  t.engine.fuse_exchanges = fuse;
  t.engine.router_preagg = fuse;
  t.engine.overlap_flush = overlap;
  t.engine.exchange = algo;
  return t;
}

/// Run `run_one(tuning)` (which returns rank-0 gathered rows) under all
/// four fuse × algorithm combinations plus the split-phase schedule under
/// both algorithms, and require byte-identical output.
template <typename RunOne>
void expect_identical_across_modes(RunOne run_one) {
  std::vector<Tuple> ref;
  bool have_ref = false;
  for (const bool fuse : {true, false}) {
    for (const auto algo : {ExchangeAlgorithm::kDense, ExchangeAlgorithm::kBruck}) {
      const auto rows = run_one(tuned(fuse, algo));
      if (!have_ref) {
        ref = rows;
        have_ref = true;
        continue;
      }
      EXPECT_EQ(rows, ref) << "fuse=" << fuse
                           << " algo=" << (algo == ExchangeAlgorithm::kBruck ? "bruck" : "dense");
    }
  }
  for (const auto algo : {ExchangeAlgorithm::kDense, ExchangeAlgorithm::kBruck}) {
    const auto rows = run_one(tuned(/*fuse=*/true, algo, /*overlap=*/true));
    EXPECT_EQ(rows, ref) << "overlap algo="
                         << (algo == ExchangeAlgorithm::kBruck ? "bruck" : "dense");
  }
  // The probe kernel is a pure speed knob (§6.1: router staging is
  // order-insensitive), so the arrival-order kernel must reproduce the
  // sorted-batch fixpoint bit for bit.
  for (const bool fuse : {true, false}) {
    auto t = tuned(fuse, ExchangeAlgorithm::kDense);
    t.engine.probe_kernel = ProbeKernel::kUnsorted;
    const auto rows = run_one(t);
    EXPECT_EQ(rows, ref) << "probe_kernel=unsorted fuse=" << fuse;
  }
}

TEST(ExchangeFusion, SsspIdenticalAcrossModesAndMatchesOracle) {
  const auto g = graph::make_rmat({.scale = 7, .edge_factor = 4, .seed = 11});
  const auto oracle = queries::reference::sssp(g, {0});
  expect_identical_across_modes([&](QueryTuning tuning) {
    std::vector<Tuple> rows;
    vmpi::run(4, [&](vmpi::Comm& comm) {
      queries::SsspOptions opts;
      opts.sources = {0};
      opts.collect_distances = true;
      opts.tuning = tuning;
      auto res = queries::run_sssp(comm, g, opts);
      EXPECT_EQ(res.path_count, oracle.size());
      if (comm.rank() == 0) {
        for (const auto& row : res.distances) {
          // Stored order (to, from, dist); the oracle keys on (from, to).
          const auto it = oracle.find({row[1], row[0]});
          ASSERT_NE(it, oracle.end());
          EXPECT_EQ(row[2], it->second);
        }
        rows = std::move(res.distances);
      }
    });
    return rows;
  });
}

TEST(ExchangeFusion, CcIdenticalAcrossModesAndMatchesOracle) {
  const auto g = graph::make_rmat({.scale = 7, .edge_factor = 3, .seed = 5});
  const auto oracle_count = queries::reference::cc_count(g);
  expect_identical_across_modes([&](QueryTuning tuning) {
    std::vector<Tuple> rows;
    vmpi::run(4, [&](vmpi::Comm& comm) {
      queries::CcOptions opts;
      opts.collect_labels = true;
      opts.tuning = tuning;
      auto res = queries::run_cc(comm, g, opts);
      EXPECT_EQ(res.component_count, oracle_count);
      if (comm.rank() == 0) rows = std::move(res.labels);
    });
    return rows;
  });
}

TEST(ExchangeFusion, TcIdenticalAcrossModesAndMatchesOracle) {
  const auto g = graph::make_rmat({.scale = 5, .edge_factor = 3, .seed = 3});
  const auto oracle_size = queries::reference::tc_size(g);
  expect_identical_across_modes([&](QueryTuning tuning) {
    std::vector<Tuple> rows;
    vmpi::run(4, [&](vmpi::Comm& comm) {
      queries::TcOptions opts;
      opts.collect_pairs = true;
      opts.tuning = tuning;
      auto res = queries::run_tc(comm, g, opts);
      EXPECT_EQ(res.path_count, oracle_size);
      if (comm.rank() == 0) rows = std::move(res.pairs);
    });
    return rows;
  });
}

TEST(ExchangeFusion, PagerankIdenticalAcrossModesAndMatchesOracle) {
  const auto g = graph::make_grid(8, 8);
  const auto oracle = queries::reference::pagerank(g, 10);
  expect_identical_across_modes([&](QueryTuning tuning) {
    std::vector<Tuple> rows;
    vmpi::run(4, [&](vmpi::Comm& comm) {
      queries::PagerankOptions opts;
      opts.rounds = 10;
      opts.collect_ranks = true;
      opts.tuning = tuning;
      auto res = queries::run_pagerank(comm, g, opts);
      if (comm.rank() == 0) {
        for (const auto& row : res.ranks) {
          ASSERT_LT(row[0], oracle.size());
          EXPECT_EQ(row[1], oracle[row[0]]) << "node " << row[0];
        }
        rows = std::move(res.ranks);
      }
    });
    return rows;
  });
}

}  // namespace
}  // namespace paralagg::core

// Engine: semi-naive fixpoints, strata, refresh rounds, termination,
// tuple limits, baseline configuration.

#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "vmpi/runtime.hpp"

namespace paralagg::core {
namespace {

/// Transitive-closure program over a chain 0 -> 1 -> ... -> n-1.
struct TcFixture {
  Program program;
  Relation* edge;
  Relation* path;

  TcFixture(vmpi::Comm& comm, value_t n) : program(comm) {
    edge = program.relation({.name = "edge", .arity = 2, .jcc = 1});
    path = program.relation({.name = "path", .arity = 2, .jcc = 1});
    auto& s = program.stratum();
    s.init_rules.push_back(CopyRule{
        .src = edge,
        .version = Version::kFull,
        .out = {.target = path, .cols = {Expr::col_a(1), Expr::col_a(0)}},
    });
    s.loop_rules.push_back(JoinRule{
        .a = path,
        .a_version = Version::kDelta,
        .b = edge,
        .b_version = Version::kFull,
        .out = {.target = path, .cols = {Expr::col_b(1), Expr::col_a(1)}},
    });
    std::vector<Tuple> facts;
    if (comm.rank() == 0) {
      for (value_t v = 0; v + 1 < n; ++v) facts.push_back(Tuple{v, v + 1});
    }
    edge->load_facts(facts);
  }
};

TEST(Engine, ChainTransitiveClosure) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    TcFixture f(comm, 10);
    Engine engine(comm);
    const auto result = engine.run(f.program);
    // Chain of 10 nodes: 9+8+...+1 = 45 pairs.
    EXPECT_EQ(f.path->global_size(Version::kFull), 45u);
    // Fixpoint depth: longest path has 9 hops; delta empties at iteration 9.
    EXPECT_EQ(result.total_iterations, 9u);
    ASSERT_EQ(result.strata.size(), 1u);
    EXPECT_TRUE(result.strata[0].reached_fixpoint);
    EXPECT_FALSE(result.strata[0].aborted_tuple_limit);
  });
}

TEST(Engine, CycleTerminatesBySetSemantics) {
  vmpi::run(3, [&](vmpi::Comm& comm) {
    Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 2, .jcc = 1});
    auto* path = program.relation({.name = "path", .arity = 2, .jcc = 1});
    auto& s = program.stratum();
    s.init_rules.push_back(CopyRule{
        .src = edge,
        .version = Version::kFull,
        .out = {.target = path, .cols = {Expr::col_a(1), Expr::col_a(0)}},
    });
    s.loop_rules.push_back(JoinRule{
        .a = path,
        .a_version = Version::kDelta,
        .b = edge,
        .b_version = Version::kFull,
        .out = {.target = path, .cols = {Expr::col_b(1), Expr::col_a(1)}},
    });
    // 4-cycle: closure is the full 4x4 pair set.
    std::vector<Tuple> facts;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 4; ++v) facts.push_back(Tuple{v, (v + 1) % 4});
    }
    edge->load_facts(facts);
    Engine engine(comm);
    const auto result = engine.run(program);
    EXPECT_TRUE(result.strata[0].reached_fixpoint);
    EXPECT_EQ(path->global_size(Version::kFull), 16u);
  });
}

TEST(Engine, RecursiveMinAggregationShortestPath) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    // Diamond: 0 -> {1 (w=1), 2 (w=10)} -> 3; shortest 0->3 = 1 + 1 = 2.
    Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 3, .jcc = 1});
    auto* dist = program.relation({.name = "dist",
                                   .arity = 2,
                                   .jcc = 1,
                                   .dep_arity = 1,
                                   .aggregator = make_min_aggregator()});
    auto& s = program.stratum();
    s.loop_rules.push_back(JoinRule{
        .a = dist,
        .a_version = Version::kDelta,
        .b = edge,
        .b_version = Version::kFull,
        .out = {.target = dist,
                .cols = {Expr::col_b(1), Expr::add(Expr::col_a(1), Expr::col_b(2))}},
    });
    std::vector<Tuple> edges, seed;
    if (comm.rank() == 0) {
      edges = {Tuple{0, 1, 1}, Tuple{0, 2, 10}, Tuple{1, 3, 1}, Tuple{2, 3, 1}};
      seed = {Tuple{0, 0}};
    }
    edge->load_facts(edges);
    dist->load_facts(seed);
    Engine engine(comm);
    engine.run(program);

    const auto rows = dist->gather_to_root(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(rows.size(), 4u);
      EXPECT_EQ(rows[0], (Tuple{0, 0}));
      EXPECT_EQ(rows[1], (Tuple{1, 1}));
      EXPECT_EQ(rows[2], (Tuple{2, 10}));
      EXPECT_EQ(rows[3], (Tuple{3, 2}));  // collapsed past the w=10 detour
    }
  });
}

TEST(Engine, WeightedCycleTerminatesOnlyViaAggregation) {
  // With a plain relation a weighted cycle diverges (lengths grow
  // unboundedly); with $MIN it terminates.  This is the heart of the
  // paper's termination argument (ascending chains on a finite lattice).
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 3, .jcc = 1});
    auto* dist = program.relation({.name = "dist",
                                   .arity = 2,
                                   .jcc = 1,
                                   .dep_arity = 1,
                                   .aggregator = make_min_aggregator()});
    auto& s = program.stratum();
    s.loop_rules.push_back(JoinRule{
        .a = dist,
        .a_version = Version::kDelta,
        .b = edge,
        .b_version = Version::kFull,
        .out = {.target = dist,
                .cols = {Expr::col_b(1), Expr::add(Expr::col_a(1), Expr::col_b(2))}},
    });
    std::vector<Tuple> edges, seed;
    if (comm.rank() == 0) {
      edges = {Tuple{0, 1, 2}, Tuple{1, 2, 2}, Tuple{2, 0, 2}};  // weighted 3-cycle
      seed = {Tuple{0, 0}};
    }
    edge->load_facts(edges);
    dist->load_facts(seed);
    Engine engine(comm);
    const auto result = engine.run(program);
    EXPECT_TRUE(result.strata[0].reached_fixpoint);
    EXPECT_LE(result.total_iterations, 5u);
    const auto rows = dist->gather_to_root(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(rows.size(), 3u);
      EXPECT_EQ(rows[1][1], 2u);
      EXPECT_EQ(rows[2][1], 4u);
    }
  });
}

TEST(Engine, TupleLimitAbortsRunaway) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 3, .jcc = 1});
    auto* lens = program.relation({.name = "lens", .arity = 2, .jcc = 1});  // plain!
    auto& s = program.stratum();
    s.loop_rules.push_back(JoinRule{
        .a = lens,
        .a_version = Version::kDelta,
        .b = edge,
        .b_version = Version::kFull,
        .out = {.target = lens,
                .cols = {Expr::col_b(1), Expr::add(Expr::col_a(1), Expr::col_b(2))}},
    });
    std::vector<Tuple> edges, seed;
    if (comm.rank() == 0) {
      edges = {Tuple{0, 1, 1}, Tuple{1, 0, 1}};  // 2-cycle, plain lengths diverge
      seed = {Tuple{0, 0}};
    }
    edge->load_facts(edges);
    lens->load_facts(seed);
    EngineConfig cfg;
    cfg.tuple_limit = 100;
    Engine engine(comm, cfg);
    const auto result = engine.run(program);
    EXPECT_TRUE(result.strata[0].aborted_tuple_limit);
    EXPECT_FALSE(result.strata[0].reached_fixpoint);
    EXPECT_TRUE(result.aborted_tuple_limit);  // surfaced at run level too
  });
}

TEST(Engine, TupleLimitAbortOfBoundedStratumIsNotAFixpoint) {
  // Regression: a bounded (non-fixpoint) stratum cut short by the tuple
  // limit used to be blanket-reported as reached_fixpoint = true, so
  // truncated bounded runs looked complete to callers.
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 3, .jcc = 1});
    auto* lens = program.relation({.name = "lens", .arity = 2, .jcc = 1});  // plain!
    auto& s = program.stratum();
    s.fixpoint = false;
    s.max_rounds = 50;  // the budget is NOT what stops this run
    s.loop_rules.push_back(JoinRule{
        .a = lens,
        .a_version = Version::kDelta,
        .b = edge,
        .b_version = Version::kFull,
        .out = {.target = lens,
                .cols = {Expr::col_b(1), Expr::add(Expr::col_a(1), Expr::col_b(2))}},
    });
    std::vector<Tuple> edges, seed;
    if (comm.rank() == 0) {
      edges = {Tuple{0, 1, 1}, Tuple{1, 0, 1}};  // 2-cycle, plain lengths diverge
      seed = {Tuple{0, 0}};
    }
    edge->load_facts(edges);
    lens->load_facts(seed);
    EngineConfig cfg;
    cfg.tuple_limit = 10;  // one new length per round: limit hits before round 50
    Engine engine(comm, cfg);
    const auto result = engine.run(program);
    ASSERT_EQ(result.strata.size(), 1u);
    EXPECT_TRUE(result.strata[0].aborted_tuple_limit);
    EXPECT_FALSE(result.strata[0].reached_fixpoint);
    EXPECT_TRUE(result.aborted_tuple_limit);
    EXPECT_LT(result.total_iterations, 50u);  // it really was cut short
  });
}

TEST(Engine, RefreshStratumRunsExactRounds) {
  vmpi::run(3, [&](vmpi::Comm& comm) {
    Program program(comm);
    auto* nodes = program.relation({.name = "nodes", .arity = 1, .jcc = 1});
    auto* acc = program.relation({.name = "acc",
                                  .arity = 2,
                                  .jcc = 1,
                                  .dep_arity = 1,
                                  .aggregator = make_sum_aggregator(),
                                  .agg_mode = AggMode::kRefresh});
    auto& s = program.stratum();
    s.fixpoint = false;
    s.max_rounds = 7;
    s.loop_rules.push_back(CopyRule{
        .src = nodes,
        .version = Version::kFull,
        .out = {.target = acc, .cols = {Expr::col_a(0), Expr::constant(1)}},
    });
    std::vector<Tuple> facts;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 10; ++v) facts.push_back(Tuple{v});
    }
    nodes->load_facts(facts);
    Engine engine(comm);
    const auto result = engine.run(program);
    EXPECT_EQ(result.total_iterations, 7u);
    // Refresh replaces each round: values stay 1, they do not accumulate.
    const auto rows = acc->gather_to_root(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(rows.size(), 10u);
      for (const auto& row : rows) EXPECT_EQ(row[1], 1u);
    }
  });
}

TEST(Engine, MultiStratumChaining) {
  vmpi::run(3, [&](vmpi::Comm& comm) {
    TcFixture f(comm, 6);
    // Second stratum: reachable-from-0 count via filter on path (y, x=0).
    auto* from0 = f.program.relation({.name = "from0", .arity = 1, .jcc = 1});
    auto& s2 = f.program.stratum();
    s2.init_rules.push_back(CopyRule{
        .src = f.path,
        .version = Version::kFull,
        .out = {.target = from0, .cols = {Expr::col_a(0)}},
        .filter = Expr::eq(Expr::col_a(1), Expr::constant(0)),
    });
    Engine engine(comm);
    engine.run(f.program);
    EXPECT_EQ(from0->global_size(Version::kFull), 5u);  // nodes 1..5
  });
}

TEST(Engine, NonLinearRecursionMatchesLinear) {
  // Non-linear TC — Path(x, z) <- Path(x, y), Path(y, z) — via the standard
  // semi-naive expansion (delta x full) + (full x delta).  The fixpoint
  // must equal the linear formulation's, in logarithmically many
  // iterations instead of linearly many.
  const value_t n = 32;
  std::size_t linear_iters = 0, nonlinear_iters = 0;
  std::uint64_t linear_count = 0, nonlinear_count = 0;
  vmpi::run(4, [&](vmpi::Comm& comm) {
    {
      TcFixture f(comm, n);
      Engine engine(comm);
      const auto r = engine.run(f.program);
      const auto count = f.path->global_size(Version::kFull);  // collective
      if (comm.rank() == 0) {
        linear_iters = r.total_iterations;
        linear_count = count;
      }
    }
    {
      Program program(comm);
      auto* edge = program.relation({.name = "edge", .arity = 2, .jcc = 1});
      // Two paths indexes: "fwd" keyed on source (x, y->stored (x,y)) and
      // "rev" keyed on target (stored (y, x)); the join Path(x,y), Path(y,z)
      // matches rev's key y against fwd's key y.
      auto* fwd = program.relation({.name = "path_fwd", .arity = 2, .jcc = 1});
      auto* rev = program.relation({.name = "path_rev", .arity = 2, .jcc = 1});
      auto& s = program.stratum();
      // Seed both indexes from the edges.
      s.init_rules.push_back(CopyRule{
          .src = edge,
          .version = Version::kFull,
          .out = {.target = fwd, .cols = {Expr::col_a(0), Expr::col_a(1)}}});
      s.init_rules.push_back(CopyRule{
          .src = edge,
          .version = Version::kFull,
          .out = {.target = rev, .cols = {Expr::col_a(1), Expr::col_a(0)}}});
      // delta(rev) x full(fwd) and full(rev) x delta(fwd), each feeding both
      // indexes.
      const auto emit_pair = [&](Relation* a, Version av, Relation* b, Version bv) {
        // a = rev (y, x), b = fwd (y, z): new pair (x, z).
        s.loop_rules.push_back(JoinRule{
            .a = a,
            .a_version = av,
            .b = b,
            .b_version = bv,
            .out = {.target = fwd, .cols = {Expr::col_a(1), Expr::col_b(1)}}});
        s.loop_rules.push_back(JoinRule{
            .a = a,
            .a_version = av,
            .b = b,
            .b_version = bv,
            .out = {.target = rev, .cols = {Expr::col_b(1), Expr::col_a(1)}}});
      };
      emit_pair(rev, Version::kDelta, fwd, Version::kFull);
      emit_pair(rev, Version::kFull, fwd, Version::kDelta);

      std::vector<Tuple> facts;
      if (comm.rank() == 0) {
        for (value_t v = 0; v + 1 < n; ++v) facts.push_back(Tuple{v, v + 1});
      }
      edge->load_facts(facts);
      Engine engine(comm);
      const auto r = engine.run(program);
      const auto count = fwd->global_size(Version::kFull);  // collective
      if (comm.rank() == 0) {
        nonlinear_iters = r.total_iterations;
        nonlinear_count = count;
      }
    }
  });
  EXPECT_EQ(nonlinear_count, linear_count);
  EXPECT_EQ(linear_count, static_cast<std::uint64_t>(n) * (n - 1) / 2);
  // Doubling closure: ~log2(n) + termination round vs n-1 linear rounds.
  EXPECT_LT(nonlinear_iters, linear_iters / 2);
}

TEST(Engine, MutualRecursionEvenOddReachability) {
  // even(y) <- odd(x),  edge(x, y).
  // odd(y)  <- even(x), edge(x, y).     even(0) seeds.
  vmpi::run(3, [&](vmpi::Comm& comm) {
    Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 2, .jcc = 1});
    auto* even = program.relation({.name = "even", .arity = 1, .jcc = 1});
    auto* odd = program.relation({.name = "odd", .arity = 1, .jcc = 1});
    auto& s = program.stratum();
    s.loop_rules.push_back(JoinRule{
        .a = odd,
        .a_version = Version::kDelta,
        .b = edge,
        .b_version = Version::kFull,
        .out = {.target = even, .cols = {Expr::col_b(1)}}});
    s.loop_rules.push_back(JoinRule{
        .a = even,
        .a_version = Version::kDelta,
        .b = edge,
        .b_version = Version::kFull,
        .out = {.target = odd, .cols = {Expr::col_b(1)}}});

    // A 6-cycle: distances from 0 alternate even/odd parity forever, and
    // since the cycle is even, the parity classes are disjoint.
    std::vector<Tuple> facts, seed;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 6; ++v) facts.push_back(Tuple{v, (v + 1) % 6});
      seed.push_back(Tuple{0});
    }
    edge->load_facts(facts);
    even->load_facts(seed);
    Engine engine(comm);
    const auto r = engine.run(program);
    EXPECT_TRUE(r.strata[0].reached_fixpoint);
    const auto evens = even->gather_to_root(0);
    const auto odds = odd->gather_to_root(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(evens.size(), 3u);
      ASSERT_EQ(odds.size(), 3u);
      for (const auto& t : evens) EXPECT_EQ(t[0] % 2, 0u);
      for (const auto& t : odds) EXPECT_EQ(t[0] % 2, 1u);
    }
  });
}

TEST(Engine, BaselineConfigDisablesOptimizations) {
  const auto cfg = baseline_config();
  EXPECT_FALSE(cfg.dynamic_join_order);
  EXPECT_FALSE(cfg.balance.enabled);
  // Baseline still computes correct results.
  vmpi::run(4, [&](vmpi::Comm& comm) {
    TcFixture f(comm, 10);
    Engine engine(comm, baseline_config());
    engine.run(f.program);
    EXPECT_EQ(f.path->global_size(Version::kFull), 45u);
  });
}

TEST(Engine, ProfileRecordsIterationsAndPhases) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    TcFixture f(comm, 8);
    Engine engine(comm);
    const auto result = engine.run(f.program);
    // init record + 7 loop iterations.
    EXPECT_EQ(result.profile.iterations, 8u);
    EXPECT_EQ(result.profile.ranks, 2);
    // Dedup/agg saw work (tuples staged), and the termination allreduce
    // moved bytes under "other".
    EXPECT_GT(result.profile.total_bytes[static_cast<std::size_t>(Phase::kOther)], 0u);
    EXPECT_GT(result.profile.modelled_total(), 0.0);
    EXPECT_EQ(result.profile.per_iteration_max.size(), 8u);
  });
}

TEST(Engine, EmptyProgramRunsCleanly) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Program program(comm);
    Engine engine(comm);
    const auto result = engine.run(program);
    EXPECT_EQ(result.total_iterations, 0u);
  });
}

TEST(Engine, StratumWithOnlyInitRules) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Program program(comm);
    auto* a = program.relation({.name = "a", .arity = 1, .jcc = 1});
    auto* b = program.relation({.name = "b", .arity = 1, .jcc = 1});
    auto& s = program.stratum();
    s.init_rules.push_back(CopyRule{
        .src = a, .version = Version::kFull, .out = {.target = b, .cols = {Expr::col_a(0)}}});
    std::vector<Tuple> facts;
    if (comm.rank() == 0) facts = {Tuple{1}, Tuple{2}};
    a->load_facts(facts);
    Engine engine(comm);
    const auto result = engine.run(program);
    EXPECT_EQ(result.total_iterations, 0u);
    EXPECT_EQ(b->global_size(Version::kFull), 2u);
    EXPECT_TRUE(result.strata[0].reached_fixpoint);
  });
}

TEST(Engine, ValidatesProgramBeforeRunning) {
  vmpi::run(1, [&](vmpi::Comm& comm) {
    Program program(comm);
    auto* a = program.relation({.name = "a", .arity = 2, .jcc = 1});
    auto& s = program.stratum();
    s.init_rules.push_back(CopyRule{
        .src = a, .version = Version::kFull, .out = {.target = a, .cols = {Expr::col_a(0)}}});
    Engine engine(comm);
    EXPECT_THROW(engine.run(program), std::invalid_argument);
  });
}

}  // namespace
}  // namespace paralagg::core

// RecursiveAggregator implementations: lattice laws and the ascend check
// that powers the fused dedup/aggregation pass.

#include "core/aggregator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <vector>

namespace paralagg::core {
namespace {

using storage::value_t;

value_t agg1(const RecursiveAggregator& a, value_t x, value_t y) {
  const value_t xs[] = {x};
  const value_t ys[] = {y};
  value_t out[1];
  a.partial_agg(std::span<const value_t>(xs, 1), std::span<const value_t>(ys, 1),
                std::span<value_t>(out, 1));
  return out[0];
}

PartialOrder cmp1(const RecursiveAggregator& a, value_t x, value_t y) {
  const value_t xs[] = {x};
  const value_t ys[] = {y};
  return a.partial_cmp(std::span<const value_t>(xs, 1), std::span<const value_t>(ys, 1));
}

bool ascends1(const RecursiveAggregator& a, value_t cur, value_t cand) {
  const value_t xs[] = {cur};
  const value_t ys[] = {cand};
  return a.ascends(std::span<const value_t>(xs, 1), std::span<const value_t>(ys, 1));
}

TEST(MinAggregator, JoinIsMin) {
  const auto a = make_min_aggregator();
  EXPECT_EQ(a->name(), "$MIN");
  EXPECT_EQ(agg1(*a, 3, 7), 3u);
  EXPECT_EQ(agg1(*a, 7, 3), 3u);
  EXPECT_EQ(agg1(*a, 5, 5), 5u);
}

TEST(MinAggregator, SmallerCarriesMoreInformation) {
  const auto a = make_min_aggregator();
  EXPECT_EQ(cmp1(*a, 7, 3), PartialOrder::kLess);     // 3 beats 7
  EXPECT_EQ(cmp1(*a, 3, 7), PartialOrder::kGreater);  // 7 adds nothing
  EXPECT_EQ(cmp1(*a, 4, 4), PartialOrder::kEqual);
}

TEST(MinAggregator, AscendsOnlyOnStrictImprovement) {
  const auto a = make_min_aggregator();
  EXPECT_TRUE(ascends1(*a, 7, 3));   // Fig. 1: new shorter path
  EXPECT_FALSE(ascends1(*a, 2, 5));  // Fig. 1: "5 > 2, no insertion"
  EXPECT_FALSE(ascends1(*a, 2, 2));
}

TEST(MaxAggregator, MirrorsMin) {
  const auto a = make_max_aggregator();
  EXPECT_EQ(a->name(), "$MAX");
  EXPECT_EQ(agg1(*a, 3, 7), 7u);
  EXPECT_EQ(cmp1(*a, 3, 7), PartialOrder::kLess);
  EXPECT_TRUE(ascends1(*a, 3, 7));
  EXPECT_FALSE(ascends1(*a, 7, 3));
}

TEST(BitOrAggregator, PowersetLattice) {
  const auto a = make_bitor_aggregator();
  EXPECT_EQ(agg1(*a, 0b0011, 0b0101), 0b0111u);
  EXPECT_EQ(cmp1(*a, 0b0011, 0b0111), PartialOrder::kLess);       // subset
  EXPECT_EQ(cmp1(*a, 0b0111, 0b0011), PartialOrder::kGreater);    // superset
  EXPECT_EQ(cmp1(*a, 0b0011, 0b0011), PartialOrder::kEqual);
  EXPECT_EQ(cmp1(*a, 0b0011, 0b0101), PartialOrder::kIncomparable);
}

TEST(BitOrAggregator, IncomparableAscends) {
  // Incomparable values must trigger an update: the join strictly grows.
  const auto a = make_bitor_aggregator();
  EXPECT_TRUE(ascends1(*a, 0b0011, 0b0101));
  EXPECT_FALSE(ascends1(*a, 0b0111, 0b0001));
}

TEST(SumAggregator, AddsAndChains) {
  const auto a = make_sum_aggregator();
  EXPECT_EQ(agg1(*a, 3, 4), 7u);
  EXPECT_EQ(cmp1(*a, 3, 4), PartialOrder::kLess);
}

TEST(SumAggregator, ExactlyOnceCapableAndInvertible) {
  // $SUM is not idempotent (a + a != a), but commutative + associative:
  // exactly-once delivery of epoch-tagged partials is sufficient, and the
  // pre-mappable inverse lets kRefresh retract a superseded contribution.
  const auto a = make_sum_aggregator();
  EXPECT_FALSE(a->idempotent());
  EXPECT_TRUE(a->exactly_once_capable());
  EXPECT_TRUE(a->invertible());
}

value_t unapply1(const RecursiveAggregator& a, value_t x, value_t y) {
  const value_t xs[] = {x};
  const value_t ys[] = {y};
  value_t out[1];
  a.unapply(std::span<const value_t>(xs, 1), std::span<const value_t>(ys, 1),
            std::span<value_t>(out, 1));
  return out[0];
}

TEST(SumAggregator, UnapplyInvertsPartialAgg) {
  const auto a = make_sum_aggregator();
  // unapply(agg(x, y), y) == x, including across u64 wraparound.
  for (const value_t x : {value_t{0}, value_t{7}, ~value_t{0} - 2}) {
    for (const value_t y : {value_t{1}, value_t{13}, ~value_t{0}}) {
      EXPECT_EQ(unapply1(*a, agg1(*a, x, y), y), x) << x << " " << y;
    }
  }
}

TEST(RecursiveAggregator, DefaultsTieExactlyOnceToIdempotence) {
  // Idempotent lattice joins are trivially exactly-once capable; none of
  // them declares an inverse, and calling unapply anyway is a logic error,
  // not silent corruption.
  for (const auto& a : {make_min_aggregator(), make_max_aggregator(),
                        make_bitor_aggregator(), make_mcount_aggregator()}) {
    EXPECT_TRUE(a->idempotent()) << a->name();
    EXPECT_TRUE(a->exactly_once_capable()) << a->name();
    EXPECT_FALSE(a->invertible()) << a->name();
    EXPECT_THROW(unapply1(*a, 5, 3), std::logic_error) << a->name();
  }
}

TEST(MCountAggregator, LowerBoundSemantics) {
  // DatalogFS-style monotonic count: partial counts are lower bounds, the
  // join keeps the largest bound.
  const auto a = make_mcount_aggregator();
  EXPECT_EQ(agg1(*a, 3, 5), 5u);
  EXPECT_EQ(agg1(*a, 5, 3), 5u);
  EXPECT_FALSE(ascends1(*a, 5, 3));
  EXPECT_TRUE(ascends1(*a, 3, 5));
}

TEST(ArgMinAggregator, CarriesWitness) {
  const auto a = make_argmin_aggregator();
  EXPECT_EQ(a->dep_arity(), 2u);
  const value_t x[] = {10, 4};  // value 10 via witness 4
  const value_t y[] = {7, 9};   // value 7 via witness 9
  value_t out[2];
  a->partial_agg(std::span<const value_t>(x, 2), std::span<const value_t>(y, 2),
                 std::span<value_t>(out, 2));
  EXPECT_EQ(out[0], 7u);
  EXPECT_EQ(out[1], 9u);
}

TEST(ArgMinAggregator, TieBreaksTowardSmallerWitness) {
  const auto a = make_argmin_aggregator();
  const value_t x[] = {7, 9};
  const value_t y[] = {7, 2};
  value_t out[2];
  a->partial_agg(std::span<const value_t>(x, 2), std::span<const value_t>(y, 2),
                 std::span<value_t>(out, 2));
  EXPECT_EQ(out[0], 7u);
  EXPECT_EQ(out[1], 2u);
  EXPECT_EQ(a->partial_cmp(std::span<const value_t>(x, 2), std::span<const value_t>(y, 2)),
            PartialOrder::kLess);
}

// Lattice-law property sweep: ⊔ must be idempotent, commutative,
// associative, and consistent with partial_cmp for every built-in.
class LatticeLaws : public ::testing::TestWithParam<const char*> {
 protected:
  AggregatorPtr make() const {
    const std::string_view which = GetParam();
    if (which == "min") return make_min_aggregator();
    if (which == "max") return make_max_aggregator();
    if (which == "bitor") return make_bitor_aggregator();
    if (which == "mcount") return make_mcount_aggregator();
    return nullptr;
  }
};

TEST_P(LatticeLaws, IdempotentCommutativeAssociative) {
  const auto a = make();
  ASSERT_NE(a, nullptr);
  const std::array<value_t, 6> samples = {0, 1, 3, 7, 12, 255};
  for (value_t x : samples) {
    EXPECT_EQ(agg1(*a, x, x), x) << "idempotence at " << x;
    for (value_t y : samples) {
      EXPECT_EQ(agg1(*a, x, y), agg1(*a, y, x)) << "commutativity " << x << "," << y;
      for (value_t z : samples) {
        EXPECT_EQ(agg1(*a, agg1(*a, x, y), z), agg1(*a, x, agg1(*a, y, z)))
            << "associativity " << x << "," << y << "," << z;
      }
    }
  }
}

TEST_P(LatticeLaws, JoinDominatesBothArguments) {
  const auto a = make();
  ASSERT_NE(a, nullptr);
  const std::array<value_t, 6> samples = {0, 1, 3, 7, 12, 255};
  for (value_t x : samples) {
    for (value_t y : samples) {
      const value_t j = agg1(*a, x, y);
      // x <= x ⊔ y in the information order (kGreater means "x is above").
      const auto cx = cmp1(*a, x, j);
      EXPECT_TRUE(cx == PartialOrder::kLess || cx == PartialOrder::kEqual)
          << x << " vs join " << j;
      const auto cy = cmp1(*a, y, j);
      EXPECT_TRUE(cy == PartialOrder::kLess || cy == PartialOrder::kEqual)
          << y << " vs join " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Builtins, LatticeLaws,
                         ::testing::Values("min", "max", "bitor", "mcount"));

}  // namespace
}  // namespace paralagg::core

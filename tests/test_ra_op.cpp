// RA kernels: distributed binary join (intra-bucket replication, local
// join, all-to-all) and copy/project, plus rule validation.

#include "core/ra_op.hpp"

#include <gtest/gtest.h>

#include "vmpi/runtime.hpp"

namespace paralagg::core {
namespace {

TEST(ExecuteJoin, JoinsOnPrefixAndRoutesOutputs) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    Relation s(comm, {.name = "s", .arity = 2, .jcc = 1});
    Relation out(comm, {.name = "out", .arity = 2, .jcc = 1});

    // r = {(k, k*10)}, s = {(k, k*100)} for k in 0..19.
    std::vector<Tuple> rf, sf;
    if (comm.rank() == 0) {
      for (value_t k = 0; k < 20; ++k) {
        rf.push_back(Tuple{k, k * 10});
        sf.push_back(Tuple{k, k * 100});
      }
    }
    r.load_facts(rf);
    s.load_facts(sf);

    RankProfile profile;
    JoinRule rule{
        .a = &r,
        .a_version = Version::kFull,
        .b = &s,
        .b_version = Version::kFull,
        .out = {.target = &out, .cols = {Expr::col_a(1), Expr::col_b(1)}},
    };
    const auto stats = execute_join(comm, profile, rule);
    out.materialize();

    EXPECT_EQ(out.global_size(Version::kFull), 20u);
    const auto total_matches =
        comm.allreduce<std::uint64_t>(stats.matches, vmpi::ReduceOp::kSum);
    EXPECT_EQ(total_matches, 20u);

    const auto rows = out.gather_to_root(0);
    if (comm.rank() == 0) {
      for (const auto& row : rows) EXPECT_EQ(row[1], row[0] * 10);
    }
  });
}

TEST(ExecuteJoin, ProducesCrossProductWithinKeys) {
  vmpi::run(3, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    Relation s(comm, {.name = "s", .arity = 2, .jcc = 1});
    Relation out(comm, {.name = "out", .arity = 2, .jcc = 1});
    std::vector<Tuple> rf, sf;
    if (comm.rank() == 0) {
      // Key 5 has 3 r-rows and 4 s-rows -> 12 joined pairs.
      for (value_t i = 0; i < 3; ++i) rf.push_back(Tuple{5, i});
      for (value_t j = 0; j < 4; ++j) sf.push_back(Tuple{5, 100 + j});
    }
    r.load_facts(rf);
    s.load_facts(sf);

    RankProfile profile;
    JoinRule rule{
        .a = &r,
        .a_version = Version::kFull,
        .b = &s,
        .b_version = Version::kFull,
        .out = {.target = &out, .cols = {Expr::col_a(1), Expr::col_b(1)}},
    };
    execute_join(comm, profile, rule);
    out.materialize();
    EXPECT_EQ(out.global_size(Version::kFull), 12u);
  });
}

TEST(ExecuteJoin, FilterDropsPairs) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    Relation out(comm, {.name = "out", .arity = 2, .jcc = 1});
    std::vector<Tuple> rf;
    if (comm.rank() == 0) {
      for (value_t i = 0; i < 10; ++i) rf.push_back(Tuple{1, i});
    }
    r.load_facts(rf);

    RankProfile profile;
    // Self-join with ordering filter: pairs (i, j), i < j -> C(10,2) = 45.
    JoinRule rule{
        .a = &r,
        .a_version = Version::kFull,
        .b = &r,
        .b_version = Version::kFull,
        .out = {.target = &out, .cols = {Expr::col_a(1), Expr::col_b(1)}},
        .filter = Expr::less(Expr::col_a(1), Expr::col_b(1)),
    };
    execute_join(comm, profile, rule);
    out.materialize();
    EXPECT_EQ(out.global_size(Version::kFull), 45u);
  });
}

TEST(ExecuteJoin, RespectsVersionSelection) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    Relation s(comm, {.name = "s", .arity = 2, .jcc = 1});
    Relation out(comm, {.name = "out", .arity = 2, .jcc = 1});
    std::vector<Tuple> r1, sf;
    if (comm.rank() == 0) {
      r1.push_back(Tuple{1, 1});
      for (value_t k = 1; k <= 2; ++k) sf.push_back(Tuple{k, k});
    }
    r.load_facts(r1);  // delta = {(1,1)}
    s.load_facts(sf);
    // Second batch: (2,2) becomes the new delta; (1,1) moves to full-only.
    // Every rank knows the batch; only the owner stages it.
    const Tuple t22{2, 2};
    if (r.owner_rank(t22.view()) == comm.rank()) r.stage(t22.view());
    r.materialize();

    RankProfile profile;
    JoinRule rule{
        .a = &r,
        .a_version = Version::kDelta,  // only (2,2)
        .b = &s,
        .b_version = Version::kFull,
        .out = {.target = &out, .cols = {Expr::col_a(0), Expr::col_b(1)}},
    };
    execute_join(comm, profile, rule);
    out.materialize();
    const auto rows = out.gather_to_root(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(rows.size(), 1u);
      EXPECT_EQ(rows[0], (Tuple{2, 2}));
    }
  });
}

TEST(ExecuteJoin, ForcedOrderOverridesRule) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation small(comm, {.name = "small", .arity = 2, .jcc = 1});
    Relation big(comm, {.name = "big", .arity = 2, .jcc = 1});
    Relation out(comm, {.name = "out", .arity = 2, .jcc = 1});
    std::vector<Tuple> smallf, bigf;
    if (comm.rank() == 0) {
      smallf.push_back(Tuple{1, 1});
      for (value_t k = 0; k < 100; ++k) bigf.push_back(Tuple{k, k});
    }
    small.load_facts(smallf);
    big.load_facts(bigf);

    RankProfile profile;
    JoinRule rule{
        .a = &small,
        .a_version = Version::kFull,
        .b = &big,
        .b_version = Version::kFull,
        .out = {.target = &out, .cols = {Expr::col_a(1), Expr::col_b(1)}},
    };
    // Dynamic: small side shipped.
    const auto dyn = execute_join(comm, profile, rule);
    EXPECT_TRUE(dyn.a_was_outer);
    const auto dyn_shipped =
        comm.allreduce<std::uint64_t>(dyn.outer_tuples_shipped, vmpi::ReduceOp::kSum);
    EXPECT_EQ(dyn_shipped, 1u);

    // Forced B-outer: the big side is serialized — the baseline mistake.
    const auto forced = execute_join(comm, profile, rule, JoinOrderPolicy::kFixedBOuter);
    EXPECT_FALSE(forced.a_was_outer);
    const auto forced_shipped =
        comm.allreduce<std::uint64_t>(forced.outer_tuples_shipped, vmpi::ReduceOp::kSum);
    EXPECT_EQ(forced_shipped, 100u);
    out.materialize();
  });
}

TEST(ExecuteJoin, SubBucketedInnerReceivesReplicas) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    // Inner relation with a hot bucket spread over 4 sub-buckets; the outer
    // tuple matching that bucket must be replicated to every holder.
    Relation inner(comm, {.name = "inner", .arity = 2, .jcc = 1, .sub_buckets = 4});
    Relation outer(comm, {.name = "outer", .arity = 2, .jcc = 1});
    Relation out(comm, {.name = "out", .arity = 2, .jcc = 1});
    std::vector<Tuple> innerf, outerf;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 100; ++v) innerf.push_back(Tuple{7, v});
      outerf.push_back(Tuple{7, 999});
    }
    inner.load_facts(innerf);
    outer.load_facts(outerf);

    RankProfile profile;
    JoinRule rule{
        .a = &outer,
        .a_version = Version::kFull,
        .b = &inner,
        .b_version = Version::kFull,
        .out = {.target = &out, .cols = {Expr::col_a(1), Expr::col_b(1)}},
        .order = JoinOrderPolicy::kFixedAOuter,
    };
    const auto stats = execute_join(comm, profile, rule);
    out.materialize();
    // All 100 pairs found despite the inner bucket spanning ranks.
    EXPECT_EQ(out.global_size(Version::kFull), 100u);
    // The single outer tuple was shipped once per sub-bucket holder.
    const auto shipped =
        comm.allreduce<std::uint64_t>(stats.outer_tuples_shipped, vmpi::ReduceOp::kSum);
    EXPECT_GT(shipped, 1u);
  });
}

TEST(ExecuteCopy, ProjectsAndFilters) {
  vmpi::run(3, [&](vmpi::Comm& comm) {
    Relation src(comm, {.name = "src", .arity = 3, .jcc = 1});
    Relation dst(comm, {.name = "dst", .arity = 2, .jcc = 1});
    std::vector<Tuple> facts;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 30; ++v) facts.push_back(Tuple{v, v * 2, v % 3});
    }
    src.load_facts(facts);

    RankProfile profile;
    CopyRule rule{
        .src = &src,
        .version = Version::kFull,
        .out = {.target = &dst, .cols = {Expr::col_a(1), Expr::col_a(0)}},
        .filter = Expr::eq(Expr::col_a(2), Expr::constant(0)),  // keep v % 3 == 0
    };
    execute_copy(comm, profile, rule);
    dst.materialize();
    EXPECT_EQ(dst.global_size(Version::kFull), 10u);
    const auto rows = dst.gather_to_root(0);
    if (comm.rank() == 0) {
      for (const auto& row : rows) EXPECT_EQ(row[0], row[1] * 2);
    }
  });
}

TEST(ExecuteCopy, IntoAggregatedTargetAggregatesLocally) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation src(comm, {.name = "src", .arity = 2, .jcc = 1});
    Relation agg(comm, {.name = "agg",
                        .arity = 2,
                        .jcc = 1,
                        .dep_arity = 1,
                        .aggregator = make_min_aggregator()});
    std::vector<Tuple> facts;
    if (comm.rank() == 0) {
      // Key 1 with many values; min must win.
      for (value_t v = 10; v <= 50; v += 10) facts.push_back(Tuple{1, v});
    }
    src.load_facts(facts);

    RankProfile profile;
    CopyRule rule{
        .src = &src,
        .version = Version::kFull,
        .out = {.target = &agg, .cols = {Expr::constant(7), Expr::col_a(1)}},
    };
    execute_copy(comm, profile, rule);
    agg.materialize();
    const auto rows = agg.gather_to_root(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(rows.size(), 1u);
      EXPECT_EQ(rows[0], (Tuple{7, 10}));
    }
  });
}

TEST(ExecuteJoin, AntijoinEmitsOnAbsence) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation all(comm, {.name = "all", .arity = 2, .jcc = 1});
    Relation blocked(comm, {.name = "blocked", .arity = 1, .jcc = 1});
    Relation out(comm, {.name = "out", .arity = 2, .jcc = 1});
    std::vector<Tuple> af, bf;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 20; ++v) af.push_back(Tuple{v, v * 10});
      for (value_t v = 0; v < 20; v += 3) bf.push_back(Tuple{v});  // 0,3,6,...
    }
    all.load_facts(af);
    blocked.load_facts(bf);

    RankProfile profile;
    JoinRule rule{
        .a = &all,
        .a_version = Version::kFull,
        .b = &blocked,
        .b_version = Version::kFull,
        .out = {.target = &out, .cols = {Expr::col_a(0), Expr::col_a(1)}},
        .anti = true,
    };
    execute_join(comm, profile, rule);
    out.materialize();
    // 20 keys minus the 7 multiples of 3.
    EXPECT_EQ(out.global_size(Version::kFull), 13u);
    const auto rows = out.gather_to_root(0);
    if (comm.rank() == 0) {
      for (const auto& row : rows) EXPECT_NE(row[0] % 3, 0u) << row[0];
    }
  });
}

TEST(ExecuteJoin, AntijoinPreFilterGatesEmission) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation all(comm, {.name = "all", .arity = 1, .jcc = 1});
    Relation blocked(comm, {.name = "blocked", .arity = 1, .jcc = 1});
    Relation out(comm, {.name = "out", .arity = 1, .jcc = 1});
    std::vector<Tuple> af;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 10; ++v) af.push_back(Tuple{v});
    }
    all.load_facts(af);
    blocked.load_facts({});  // nothing blocked: absence holds everywhere

    RankProfile profile;
    JoinRule rule{
        .a = &all,
        .a_version = Version::kFull,
        .b = &blocked,
        .b_version = Version::kFull,
        .out = {.target = &out, .cols = {Expr::col_a(0)}},
        .pre_filter = Expr::less(Expr::col_a(0), Expr::constant(4)),
        .anti = true,
    };
    execute_join(comm, profile, rule);
    out.materialize();
    // Without the pre-filter every row would emit; with it only 0..3 do.
    EXPECT_EQ(out.global_size(Version::kFull), 4u);
  });
}

TEST(ExecuteJoin, AntijoinFilterRefinesBlockingMatches) {
  vmpi::run(2, [&](vmpi::Comm& comm) {
    Relation all(comm, {.name = "all", .arity = 2, .jcc = 1});
    Relation cap(comm, {.name = "cap", .arity = 2, .jcc = 1});
    Relation out(comm, {.name = "out", .arity = 2, .jcc = 1});
    std::vector<Tuple> af, cf;
    if (comm.rank() == 0) {
      af = {Tuple{1, 5}, Tuple{2, 5}, Tuple{3, 5}};
      // Key 1 has a blocking cap above the row value, key 2 below it.
      cf = {Tuple{1, 9}, Tuple{2, 3}};
    }
    all.load_facts(af);
    cap.load_facts(cf);

    RankProfile profile;
    // Blocked iff a cap row for the key has cap-value > row-value.
    JoinRule rule{
        .a = &all,
        .a_version = Version::kFull,
        .b = &cap,
        .b_version = Version::kFull,
        .out = {.target = &out, .cols = {Expr::col_a(0), Expr::col_a(1)}},
        .filter = Expr::less(Expr::col_a(1), Expr::col_b(1)),
        .anti = true,
    };
    execute_join(comm, profile, rule);
    out.materialize();
    const auto rows = out.gather_to_root(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(rows.size(), 2u);
      EXPECT_EQ(rows[0][0], 2u);  // cap 3 < 5: not blocking
      EXPECT_EQ(rows[1][0], 3u);  // no cap at all
    }
  });
}

TEST(ValidateRule, AntijoinShapeErrors) {
  vmpi::run(1, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    Relation sub(comm, {.name = "sub", .arity = 2, .jcc = 1, .sub_buckets = 4});
    Relation out(comm, {.name = "out", .arity = 2, .jcc = 1});
    // Head referencing the negated side.
    EXPECT_THROW(
        validate_rule(JoinRule{.a = &r,
                               .b = &r,
                               .out = {.target = &out,
                                       .cols = {Expr::col_a(0), Expr::col_b(1)}},
                               .anti = true}),
        std::invalid_argument);
    // Sub-bucketed negated side.
    EXPECT_THROW(
        validate_rule(JoinRule{.a = &r,
                               .b = &sub,
                               .out = {.target = &out,
                                       .cols = {Expr::col_a(0), Expr::col_a(1)}},
                               .anti = true}),
        std::invalid_argument);
    // pre_filter on a normal join.
    EXPECT_THROW(
        validate_rule(JoinRule{.a = &r,
                               .b = &r,
                               .out = {.target = &out,
                                       .cols = {Expr::col_a(0), Expr::col_a(1)}},
                               .pre_filter = Expr::constant(1)}),
        std::invalid_argument);
    // Well-formed antijoin passes.
    EXPECT_NO_THROW(
        validate_rule(JoinRule{.a = &r,
                               .b = &r,
                               .out = {.target = &out,
                                       .cols = {Expr::col_a(0), Expr::col_a(1)}},
                               .anti = true}));
  });
}

TEST(ValidateRule, CatchesShapeErrors) {
  vmpi::run(1, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    Relation s2(comm, {.name = "s2", .arity = 2, .jcc = 2});
    Relation out(comm, {.name = "out", .arity = 2, .jcc = 1});

    // jcc mismatch between sides.
    EXPECT_THROW(validate_rule(JoinRule{.a = &r,
                                        .b = &s2,
                                        .out = {.target = &out,
                                                .cols = {Expr::col_a(0), Expr::col_b(0)}}}),
                 std::invalid_argument);
    // Head arity mismatch.
    EXPECT_THROW(
        validate_rule(JoinRule{
            .a = &r, .b = &r, .out = {.target = &out, .cols = {Expr::col_a(0)}}}),
        std::invalid_argument);
    // Out-of-range column reference.
    EXPECT_THROW(validate_rule(JoinRule{.a = &r,
                                        .b = &r,
                                        .out = {.target = &out,
                                                .cols = {Expr::col_a(5), Expr::col_b(0)}}}),
                 std::invalid_argument);
    // Copy referencing side B.
    EXPECT_THROW(validate_rule(CopyRule{.src = &r,
                                        .out = {.target = &out,
                                                .cols = {Expr::col_b(0), Expr::col_a(0)}}}),
                 std::invalid_argument);
    // Well-formed rules pass.
    EXPECT_NO_THROW(validate_rule(JoinRule{
        .a = &r, .b = &r, .out = {.target = &out, .cols = {Expr::col_a(1), Expr::col_b(1)}}}));
    EXPECT_NO_THROW(validate_rule(CopyRule{
        .src = &r, .out = {.target = &out, .cols = {Expr::col_a(1), Expr::col_a(0)}}}));
  });
}

TEST(ExecuteJoin, PhaseBytesAttributedToIntraBucketAndAllToAll) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    Relation s(comm, {.name = "s", .arity = 2, .jcc = 1});
    Relation out(comm, {.name = "out", .arity = 2, .jcc = 1});
    std::vector<Tuple> rf, sf;
    if (comm.rank() == 0) {
      for (value_t k = 0; k < 64; ++k) {
        rf.push_back(Tuple{k, k});
        sf.push_back(Tuple{k, k + 1});
      }
    }
    r.load_facts(rf);
    s.load_facts(sf);

    RankProfile profile;
    JoinRule rule{
        .a = &r,
        .a_version = Version::kFull,
        .b = &s,
        .b_version = Version::kFull,
        .out = {.target = &out, .cols = {Expr::col_b(1), Expr::col_a(0)}},
    };
    execute_join(comm, profile, rule);
    out.materialize();

    const auto& rec = profile.current();
    // Output tuples hash to new buckets -> remote bytes in the all-to-all
    // phase on at least one rank.
    const auto a2a = comm.allreduce<std::uint64_t>(
        rec.bytes[static_cast<std::size_t>(Phase::kAllToAll)], vmpi::ReduceOp::kSum);
    EXPECT_GT(a2a, 0u);
    // Both sides share the bucket map with one sub-bucket each, so the
    // intra-bucket phase must be fully local: zero remote bytes.
    const auto intra = comm.allreduce<std::uint64_t>(
        rec.bytes[static_cast<std::size_t>(Phase::kIntraBucket)], vmpi::ReduceOp::kSum);
    EXPECT_EQ(intra, 0u);
  });
}

}  // namespace
}  // namespace paralagg::core

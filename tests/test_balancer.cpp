// Spatial load balancing: imbalance measurement and sub-bucket reshuffles.

#include "core/balancer.hpp"

#include <gtest/gtest.h>

#include "core/ra_op.hpp"
#include "vmpi/runtime.hpp"

namespace paralagg::core {
namespace {

/// Load a hot-key relation: all tuples share join column `key`.
void load_hot(vmpi::Comm& comm, Relation& r, value_t key, value_t count) {
  std::vector<Tuple> slice;
  if (comm.rank() == 0) {
    for (value_t v = 0; v < count; ++v) slice.push_back(Tuple{key, v});
  }
  r.load_facts(slice);
}

TEST(Balancer, MeasuresPerfectBalanceAsOne) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    // Many distinct keys spread evenly by the hash.
    std::vector<Tuple> slice;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 4000; ++v) slice.push_back(Tuple{v, v});
    }
    r.load_facts(slice);
    EXPECT_LT(measure_imbalance(comm, r), 1.3);
  });
}

TEST(Balancer, EmptyRelationIsBalanced) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    EXPECT_DOUBLE_EQ(measure_imbalance(comm, r), 1.0);
  });
}

TEST(Balancer, DetectsHotKeySkew) {
  vmpi::run(8, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1});
    load_hot(comm, r, 7, 800);
    // Everything on one of 8 ranks: imbalance = 8x.
    EXPECT_DOUBLE_EQ(measure_imbalance(comm, r), 8.0);
  });
}

TEST(Balancer, RebalancesWhenMarkedBalanceable) {
  vmpi::run(8, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1, .balanceable = true});
    load_hot(comm, r, 7, 800);

    RankProfile profile;
    BalanceConfig cfg;
    cfg.target_sub_buckets = 8;
    const auto d = balance_relation(comm, profile, r, cfg);
    EXPECT_TRUE(d.rebalanced);
    EXPECT_EQ(d.sub_buckets_after, 8);
    EXPECT_DOUBLE_EQ(d.imbalance, 8.0);
    EXPECT_EQ(r.global_size(Version::kFull), 800u);
    EXPECT_LT(measure_imbalance(comm, r), 2.5);
    // Moving the hot bucket had to ship bytes somewhere.
    const auto moved = comm.allreduce<std::uint64_t>(d.bytes_moved, vmpi::ReduceOp::kSum);
    EXPECT_GT(moved, 0u);
  });
}

TEST(Balancer, RespectsBalanceableFlag) {
  vmpi::run(8, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1, .balanceable = false});
    load_hot(comm, r, 7, 400);
    RankProfile profile;
    const auto d = balance_relation(comm, profile, r, BalanceConfig{});
    EXPECT_FALSE(d.rebalanced);
    EXPECT_EQ(r.sub_buckets(), 1);
  });
}

TEST(Balancer, RespectsDisabledConfig) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1, .balanceable = true});
    load_hot(comm, r, 7, 400);
    RankProfile profile;
    BalanceConfig cfg;
    cfg.enabled = false;
    const auto d = balance_relation(comm, profile, r, cfg);
    EXPECT_FALSE(d.rebalanced);
  });
}

TEST(Balancer, DoesNotTouchBalancedRelations) {
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1, .balanceable = true});
    std::vector<Tuple> slice;
    if (comm.rank() == 0) {
      for (value_t v = 0; v < 4000; ++v) slice.push_back(Tuple{v, v});
    }
    r.load_facts(slice);
    RankProfile profile;
    const auto d = balance_relation(comm, profile, r, BalanceConfig{});
    EXPECT_FALSE(d.rebalanced);
    EXPECT_EQ(r.sub_buckets(), 1);
  });
}

TEST(Balancer, IdempotentAtTargetFanout) {
  vmpi::run(8, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1, .balanceable = true});
    load_hot(comm, r, 7, 800);
    RankProfile profile;
    BalanceConfig cfg;
    const auto first = balance_relation(comm, profile, r, cfg);
    EXPECT_TRUE(first.rebalanced);
    // Second call: already at target fan-out, must not reshuffle again even
    // if residual imbalance remains.
    const auto second = balance_relation(comm, profile, r, cfg);
    EXPECT_FALSE(second.rebalanced);
  });
}

TEST(Balancer, SkipPaysNoMeasurementCollective) {
  // A relation that can never rebalance (not balanceable, balancing off,
  // or already at the target fan-out) must not pay the sizing allgather.
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Relation fixed(comm, {.name = "fixed", .arity = 2, .jcc = 1, .balanceable = false});
    load_hot(comm, fixed, 7, 400);
    RankProfile profile;
    auto before = comm.stats().calls_of(vmpi::Op::kAllgather);
    balance_relation(comm, profile, fixed, BalanceConfig{});
    EXPECT_EQ(comm.stats().calls_of(vmpi::Op::kAllgather), before);

    Relation hot(comm, {.name = "hot", .arity = 2, .jcc = 1, .balanceable = true});
    load_hot(comm, hot, 7, 400);
    BalanceConfig off;
    off.enabled = false;
    before = comm.stats().calls_of(vmpi::Op::kAllgather);
    balance_relation(comm, profile, hot, off);
    EXPECT_EQ(comm.stats().calls_of(vmpi::Op::kAllgather), before);

    const auto first = balance_relation(comm, profile, hot, BalanceConfig{});
    EXPECT_TRUE(first.rebalanced);
    before = comm.stats().calls_of(vmpi::Op::kAllgather);
    balance_relation(comm, profile, hot, BalanceConfig{});  // at target fan-out
    EXPECT_EQ(comm.stats().calls_of(vmpi::Op::kAllgather), before);
  });
}

TEST(Balancer, ChargesMovedTuplesNotResidentSize) {
  // Regression: the phase used to be charged with the post-reshuffle local
  // size — a rank could be billed for tuples it never touched.
  vmpi::run(8, [&](vmpi::Comm& comm) {
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1, .balanceable = true});
    load_hot(comm, r, 7, 800);
    RankProfile profile;
    const auto d = balance_relation(comm, profile, r, BalanceConfig{});
    ASSERT_TRUE(d.rebalanced);
    const auto charged =
        profile.current().work[static_cast<std::size_t>(Phase::kBalance)];
    EXPECT_EQ(charged, d.bytes_moved / sizeof(value_t));
  });
}

TEST(Balancer, PrefersIntraNodeSplitOnGroupedTopology) {
  // Two nodes of two ranks.  A hot bucket whose 2-way split stays inside
  // the owner's node must be absorbed there: the topology-blind planner
  // jumped straight to the target fan-out and shipped the bucket across
  // the fabric; the locality-aware one picks the node-local fan-out and
  // moves zero cross-node bytes.
  vmpi::RunOptions options;
  options.topology = vmpi::Topology::grouped(4, 2);  // nodes {0,1}, {2,3}
  vmpi::run(4, options, [&](vmpi::Comm& comm) {
    // Pick a key whose bucket b owns rank b%4 and splits to ranks
    // {(2b)%4, (2b+1)%4} at fan-out 2 — chosen so both live on one node.
    Relation probe(comm, {.name = "probe", .arity = 2, .jcc = 1});
    value_t key = 0;
    for (value_t k = 0;; ++k) {
      const value_t t[2] = {k, 0};
      const auto b = probe.bucket_of(std::span<const value_t>(t, 2));
      const int owner_node = static_cast<int>(b % 4) / 2;
      const int pair_node = static_cast<int>((b * 2) % 4) / 2;
      if (owner_node == pair_node) {
        key = k;
        break;
      }
    }
    Relation r(comm, {.name = "r", .arity = 2, .jcc = 1, .balanceable = true});
    load_hot(comm, r, key, 800);

    RankProfile profile;
    BalanceConfig cfg;
    cfg.target_sub_buckets = 8;
    cfg.imbalance_threshold = 2.5;  // a 2-way split of the hot bucket clears it
    const auto d = balance_relation(comm, profile, r, cfg);
    EXPECT_TRUE(d.rebalanced);
    EXPECT_EQ(d.sub_buckets_after, 2);  // node-local split, not max spread
    const auto cross =
        comm.allreduce<std::uint64_t>(d.cross_bytes_moved, vmpi::ReduceOp::kSum);
    const auto moved = comm.allreduce<std::uint64_t>(d.bytes_moved, vmpi::ReduceOp::kSum);
    EXPECT_GT(moved, 0u);
    EXPECT_EQ(cross, 0u) << "an intra-node split must not touch the fabric";
    EXPECT_EQ(r.global_size(Version::kFull), 800u);
    EXPECT_LE(measure_imbalance(comm, r), cfg.imbalance_threshold);

    // Control: the pre-topology move (straight to the target fan-out)
    // ships part of the same workload across the node boundary.
    Relation old_style(comm,
                       {.name = "old_style", .arity = 2, .jcc = 1, .balanceable = true});
    load_hot(comm, old_style, key, 800);
    std::uint64_t old_cross = 0;
    old_style.reshuffle_to_sub_buckets(cfg.target_sub_buckets, &old_cross);
    EXPECT_GT(comm.allreduce<std::uint64_t>(old_cross, vmpi::ReduceOp::kSum), 0u);
  });
}

TEST(Balancer, PreservesJoinability) {
  // After rebalancing the inner side, joins must still find every match
  // (intra-bucket replication reaches all sub-bucket holders).
  vmpi::run(8, [&](vmpi::Comm& comm) {
    Relation inner(comm, {.name = "inner", .arity = 2, .jcc = 1, .balanceable = true});
    Relation outer(comm, {.name = "outer", .arity = 2, .jcc = 1});
    Relation out(comm, {.name = "out", .arity = 2, .jcc = 1});
    load_hot(comm, inner, 7, 300);
    std::vector<Tuple> of;
    if (comm.rank() == 0) of.push_back(Tuple{7, 1});
    outer.load_facts(of);

    RankProfile profile;
    balance_relation(comm, profile, inner, BalanceConfig{});
    ASSERT_GT(inner.sub_buckets(), 1);

    JoinRule rule{
        .a = &outer,
        .a_version = Version::kFull,
        .b = &inner,
        .b_version = Version::kFull,
        .out = {.target = &out, .cols = {Expr::col_b(1), Expr::col_a(1)}},
        .order = JoinOrderPolicy::kFixedAOuter,
    };
    execute_join(comm, profile, rule);
    out.materialize();
    EXPECT_EQ(out.global_size(Version::kFull), 300u);
  });
}

}  // namespace
}  // namespace paralagg::core

// points_to: Andersen-style inclusion-based pointer analysis through the
// declarative frontend — the paper's "program analysis" motivation (§I)
// on a synthetic program.
//
// The classic four-rule Andersen analysis, factored into binary joins (the
// load/store rules are ternary in textbooks; auxiliary relations split
// them, which is exactly what the frontend's error message tells you to
// do):
//
//   pts(v, o)      :- addr_of(v, o).
//   pts(v, o)      :- assign(v, w), pts(w, o).
//   ld(v, a)       :- load(v, p), pts(p, a).      // v = *p
//   pts(v, o)      :- ld(v, a), pts(a, o).
//   st(a, w)       :- store(p, w), pts(p, a).     // *p = w
//   pts(a, o)      :- st(a, w), pts(w, o).
//
// pts / ld / st are mutually recursive — one SCC, one fixpoint stratum —
// and pts is joined on its first column by three different rules, so no
// secondary indexes are needed; the frontend's analysis confirms it.
//
// Usage: ./points_to [ranks] [num_vars] [num_statements]

#include <cstdlib>
#include <iostream>

#include "paralagg/paralagg.hpp"

namespace {

constexpr std::string_view kAndersen = R"(
  .decl addr_of(v, o) input      // v = &o
  .decl assign(v, w) input       // v = w
  .decl load(v, p) input         // v = *p
  .decl store(p, w) input        // *p = w

  .decl pts(v, o) output
  .decl ld(v, a)
  .decl st(a, w)

  pts(v, o) :- addr_of(v, o).
  pts(v, o) :- assign(v, w), pts(w, o).
  ld(v, a)  :- load(v, p), pts(p, a).
  pts(v, o) :- ld(v, a), pts(a, o).
  st(a, w)  :- store(p, w), pts(p, a).
  pts(a, o) :- st(a, w), pts(w, o).
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace paralagg;
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t vars = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 800;
  const std::uint64_t stmts = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2400;

  // A synthetic "program": random address-ofs, copies, loads, and stores
  // over `vars` variables (objects share the variable id space).
  graph::Rng rng(2026);
  std::vector<core::Tuple> addr_of, assign, load, store;
  for (std::uint64_t i = 0; i < stmts; ++i) {
    const core::value_t a = rng.below(vars), b = rng.below(vars);
    switch (rng.below(8)) {
      case 0: addr_of.push_back(core::Tuple{a, b}); break;
      case 1: case 2: case 3: case 4: assign.push_back(core::Tuple{a, b}); break;
      case 5: case 6: load.push_back(core::Tuple{a, b}); break;
      default: store.push_back(core::Tuple{a, b}); break;
    }
  }
  std::cout << "synthetic program: " << vars << " vars, " << addr_of.size()
            << " addr-of, " << assign.size() << " copies, " << load.size() << " loads, "
            << store.size() << " stores; " << ranks << " ranks\n";

  const auto prog = frontend::CompiledProgram::compile(kAndersen);

  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm);
    const auto slice = [&](const std::vector<core::Tuple>& rows) {
      std::vector<core::Tuple> out;
      for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < rows.size();
           i += static_cast<std::size_t>(comm.size())) {
        out.push_back(rows[i]);
      }
      return out;
    };
    inst.load("addr_of", slice(addr_of));
    inst.load("assign", slice(assign));
    inst.load("load", slice(load));
    inst.load("store", slice(store));

    const auto result = inst.run();
    const auto pts = inst.size("pts");
    if (comm.is_root()) {
      std::cout << "\npoints-to facts: " << pts << " (avg "
                << static_cast<double>(pts) / static_cast<double>(vars)
                << " objects per variable)\n"
                << "fixpoint iterations: " << result.total_iterations << "\n"
                << "wall " << result.wall_seconds << " s, remote "
                << result.comm_total.total_remote_bytes() / 1024 << " KiB\n";
    }
  });
  return 0;
}

// sssp_roadmap: multi-source shortest paths on a road-network-like mesh.
//
// Road networks are high-diameter, low-skew meshes — the opposite regime
// from social graphs.  This example runs the paper's SSSP query from
// several "depot" nodes at once (the multi-source trick §V-D uses to
// increase problem size), prints the per-phase profile, and demonstrates
// the long-tail iteration dynamic of Fig. 7: a mesh needs many fixpoint
// iterations, each cheap.
//
// Usage: ./sssp_roadmap [ranks] [grid_side] [depots]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "paralagg/paralagg.hpp"

int main(int argc, char** argv) {
  using namespace paralagg;
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t side = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40;
  const std::size_t depots = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;

  const auto g = graph::make_grid(side, side, /*max_weight=*/9, /*seed=*/2026);
  const auto sources = g.pick_sources(depots, 99);

  std::cout << "road mesh " << side << "x" << side << ": " << g.num_edges() << " edges, "
            << sources.size() << " depots, " << ranks << " ranks\n";

  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    queries::SsspOptions opts;
    opts.sources = sources;
    const auto result = queries::run_sssp(comm, g, opts);
    if (!comm.is_root()) return;

    std::cout << "\nreachable (depot, node) pairs: " << result.path_count << "\n"
              << "fixpoint iterations:           " << result.iterations << "\n"
              << "wall time:                     " << std::fixed << std::setprecision(3)
              << result.run.wall_seconds << " s\n\n";

    std::cout << "per-phase breakdown (modelled parallel seconds / remote MiB):\n";
    const auto& prof = result.run.profile;
    for (std::size_t p = 0; p < core::kPhaseCount; ++p) {
      std::cout << "  " << std::left << std::setw(14)
                << core::phase_name(static_cast<core::Phase>(p)) << std::right
                << std::setw(9) << std::setprecision(4) << prof.modelled_seconds[p]
                << " s   " << std::setw(8) << std::setprecision(3)
                << static_cast<double>(prof.total_bytes[p]) / (1024.0 * 1024.0)
                << " MiB\n";
    }

    // The Fig. 7 shape: early iterations dominate, a long cheap tail follows.
    std::cout << "\niteration profile (first 5 vs last 5, total seconds):\n";
    const auto& per_iter = prof.per_iteration_max;
    const auto iter_total = [&](std::size_t i) {
      double s = 0;
      for (double v : per_iter[i]) s += v;
      return s;
    };
    for (std::size_t i = 0; i < per_iter.size(); ++i) {
      if (i == 5 && per_iter.size() > 10) {
        std::cout << "  ...\n";
        i = per_iter.size() - 5;
      }
      std::cout << "  iter " << std::setw(3) << i << "  " << std::setprecision(6)
                << iter_total(i) << " s\n";
    }
  });
  return 0;
}

// custom_aggregate: implementing your own RecursiveAggregator (the paper's
// Listing 1/2 API) and running it inside a recursive query.
//
// The aggregate here is *widest path* (maximum bottleneck capacity): the
// lattice join is max over min-capacities — a classic monotone aggregate
// that is neither $MIN nor $SUM:
//
//   Wide(n, n, INF)                 <- Start(n).
//   Wide(f, t, $MAX(min(c, w)))     <- Wide(f, m, c), Edge(m, t, w).
//
// Like every PreM-style aggregate, the dependent column (capacity) is
// excluded from distribution, so the engine's fused local aggregation
// applies unchanged — zero extra communication for the new aggregate.
//
// Usage: ./custom_aggregate [ranks]

#include <cstdlib>
#include <iostream>

#include "paralagg/paralagg.hpp"

namespace {

using namespace paralagg;
using core::PartialOrder;
using core::value_t;

/// Widest-path aggregator: larger bottleneck capacity = more information.
class WidestPath final : public core::RecursiveAggregator {
 public:
  [[nodiscard]] std::string_view name() const override { return "$WIDEST"; }

  [[nodiscard]] PartialOrder partial_cmp(std::span<const value_t> a,
                                         std::span<const value_t> b) const override {
    if (a[0] == b[0]) return PartialOrder::kEqual;
    return a[0] < b[0] ? PartialOrder::kLess : PartialOrder::kGreater;
  }

  void partial_agg(std::span<const value_t> a, std::span<const value_t> b,
                   std::span<value_t> out) const override {
    out[0] = a[0] > b[0] ? a[0] : b[0];
  }
};

constexpr value_t kInf = 1'000'000;

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;

  // A capacity network: two routes from 0 to 5; the southern route has the
  // wider bottleneck.
  graph::Graph g;
  g.name = "capacity-net";
  g.num_nodes = 6;
  g.edges = {
      {0, 1, 30}, {1, 2, 10}, {2, 5, 30},  // north: bottleneck 10
      {0, 3, 20}, {3, 4, 25}, {4, 5, 20},  // south: bottleneck 20
      {1, 3, 5},                           // weak crossover
  };

  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    core::Program program(comm);
    auto* edge = program.relation({.name = "edge", .arity = 3, .jcc = 1});
    auto* wide = program.relation({
        .name = "wide",
        .arity = 3,
        .jcc = 1,
        .dep_arity = 1,
        .aggregator = std::make_shared<WidestPath>(),
    });

    auto& stratum = program.stratum();
    // Stored order (to, from, capacity); head: min(c, w) then $MAX-fused.
    stratum.loop_rules.push_back(core::JoinRule{
        .a = wide,
        .a_version = core::Version::kDelta,
        .b = edge,
        .b_version = core::Version::kFull,
        .out = {.target = wide,
                .cols = {core::Expr::col_b(1), core::Expr::col_a(1),
                         core::Expr::min(core::Expr::col_a(2), core::Expr::col_b(2))}},
    });

    edge->load_facts(queries::edge_slice(comm, g, /*weighted=*/true));
    std::vector<core::Tuple> seed;
    if (comm.is_root()) seed.push_back(core::Tuple{0, 0, kInf});
    wide->load_facts(seed);

    core::Engine engine(comm);
    engine.run(program);

    const auto rows = wide->gather_to_root(0);
    if (comm.is_root()) {
      std::cout << "widest-path capacities from node 0 (custom $WIDEST aggregate):\n";
      for (const auto& row : rows) {
        std::cout << "  0 -> " << row[0] << "  capacity "
                  << (row[2] == kInf ? std::string("inf") : std::to_string(row[2]))
                  << "\n";
      }
      std::cout << "\nnode 5 gets capacity 20 via the southern route — $MAX over\n"
                   "bottlenecks collapsed the 10-wide northern route locally.\n";
    }
  });
  return 0;
}

// social_components: connected components of a skewed social graph, with
// and without spatial load balancing.
//
// Reproduces the paper's §IV-C story at example scale: an RMAT graph has
// Twitter-style celebrity hubs, so single-sub-bucket hashing piles one
// bucket's worth of adjacency on one rank.  We run CC twice — baseline and
// with 8 sub-buckets — and print the tuple-distribution imbalance and
// local-join critical path for both.
//
// Usage: ./social_components [ranks] [rmat_scale]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "paralagg/paralagg.hpp"

int main(int argc, char** argv) {
  using namespace paralagg;
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const int scale = argc > 2 ? std::atoi(argv[2]) : 11;

  const auto g = graph::make_twitter_like(scale, 8);
  std::cout << "social graph: 2^" << scale << " users, " << g.num_edges()
            << " follows, degree skew " << std::setprecision(3) << g.degree_skew()
            << "x, " << ranks << " ranks\n\n";

  struct Outcome {
    const char* label;
    queries::CcResult result;
  };
  std::vector<Outcome> outcomes;

  for (const bool balanced : {false, true}) {
    vmpi::run(ranks, [&](vmpi::Comm& comm) {
      queries::CcOptions opts;
      if (balanced) {
        opts.tuning.edge_sub_buckets = 8;  // the paper's default fan-out
      } else {
        opts.tuning = queries::QueryTuning::baseline();
      }
      auto result = queries::run_cc(comm, g, opts);
      if (comm.is_root()) {
        outcomes.push_back({balanced ? "8 sub-buckets" : "1 sub-bucket ", result});
      }
    });
  }

  std::cout << std::left << std::setw(16) << "configuration" << std::right << std::setw(12)
            << "components" << std::setw(8) << "iters" << std::setw(16) << "local-join s"
            << std::setw(14) << "remote MiB\n";
  for (const auto& o : outcomes) {
    const auto& prof = o.result.run.profile;
    std::cout << std::left << std::setw(16) << o.label << std::right << std::setw(12)
              << o.result.component_count << std::setw(8) << o.result.iterations
              << std::setw(16) << std::setprecision(4)
              << prof.modelled_seconds[static_cast<std::size_t>(core::Phase::kLocalJoin)]
              << std::setw(13) << std::setprecision(3)
              << static_cast<double>(o.result.run.comm_total.total_remote_bytes()) /
                     (1024.0 * 1024.0)
              << "\n";
  }
  std::cout << "\nSame components either way; sub-bucketing trades a little extra\n"
               "communication for an even tuple distribution (see bench/fig3, fig4).\n";
  return 0;
}

// Quickstart: the smallest complete PARALAGG program.
//
// Computes transitive closure (vanilla Datalog, paper §II-A) of a small
// graph on 4 virtual ranks, then single-source shortest paths with a
// recursive $MIN aggregate (§II-C) on the same graph — the pair the paper
// uses to introduce why recursive aggregation matters.
//
//   Path(x, y)  <- Edge(x, y).
//   Path(x, z)  <- Path(x, y), Edge(y, z).
//
//   Spath(n, n, 0)               <- Start(n).
//   Spath(f, t, $MIN(l + w))     <- Spath(f, m, l), Edge(m, t, w).
//
// Build & run:  ./quickstart [ranks]

#include <cstdlib>
#include <iostream>

#include "paralagg/paralagg.hpp"

int main(int argc, char** argv) {
  using namespace paralagg;
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;

  // A small weighted digraph: two clusters joined by one bridge.
  graph::Graph g;
  g.name = "quickstart";
  g.num_nodes = 8;
  g.edges = {
      {0, 1, 2}, {1, 2, 2}, {2, 0, 2},  // cluster A cycle
      {2, 3, 5},                        // bridge
      {3, 4, 1}, {4, 5, 1}, {5, 6, 1}, {6, 7, 1}, {3, 7, 10},  // cluster B
  };

  std::cout << "graph: " << g.num_nodes << " nodes, " << g.num_edges() << " edges, "
            << ranks << " virtual MPI ranks\n\n";

  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    // --- transitive closure ---------------------------------------------------
    queries::TcOptions tc_opts;
    tc_opts.collect_pairs = true;
    const auto tc = queries::run_tc(comm, g, tc_opts);
    if (comm.is_root()) {
      std::cout << "transitive closure: " << tc.path_count << " reachable pairs in "
                << tc.iterations << " iterations\n";
    }

    // --- shortest paths via recursive $MIN ------------------------------------
    queries::SsspOptions sp_opts;
    sp_opts.sources = {0};
    sp_opts.collect_distances = true;
    const auto sp = queries::run_sssp(comm, g, sp_opts);
    if (comm.is_root()) {
      std::cout << "shortest paths from node 0 (" << sp.path_count << " reachable):\n";
      for (const auto& row : sp.distances) {
        // Stored order: (to, from, dist).
        std::cout << "  0 -> " << row[0] << "  dist " << row[2] << "\n";
      }
      std::cout << "\ncommunication, whole run: "
                << sp.run.comm_total.total_remote_bytes() << " remote bytes across "
                << ranks << " ranks\n";
      std::cout << "note: node 7 is reached via the 3->4->5->6->7 chain (dist 13), not\n"
                << "the direct 3->7 edge (dist 19) — $MIN collapsed the detour.\n";
    }
  });
  return 0;
}

// pagerank_toplist: PageRank as a recursive aggregate, printing the most
// influential nodes of a synthetic web crawl.
//
// PageRank is the paper's example of an aggregate that is *not* a
// monotone lattice ($SUM of refreshed contributions), showing the engine's
// AggMode::kRefresh path: same bucket routing, same fused summation in the
// dedup pass, but bounded rounds instead of fixpoint detection.
//
// Usage: ./pagerank_toplist [ranks] [rmat_scale] [rounds]

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "paralagg/paralagg.hpp"

int main(int argc, char** argv) {
  using namespace paralagg;
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int scale = argc > 2 ? std::atoi(argv[2]) : 11;
  const std::size_t rounds = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 25;

  const auto g = graph::make_rmat({.scale = scale, .edge_factor = 10, .seed = 17});
  std::cout << "web crawl: " << g.num_nodes << " pages, " << g.num_edges()
            << " links, " << rounds << " rounds, " << ranks << " ranks\n";

  vmpi::run(ranks, [&](vmpi::Comm& comm) {
    queries::PagerankOptions opts;
    opts.rounds = rounds;
    opts.collect_ranks = true;
    const auto result = queries::run_pagerank(comm, g, opts);
    if (!comm.is_root()) return;

    auto rows = result.ranks;  // (node, fixed-point rank)
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a[1] > b[1] || (a[1] == b[1] && a[0] < b[0]);
    });

    std::cout << "\nrank mass: " << std::setprecision(4) << result.total_mass
              << " (dangling pages leak the rest)\n\ntop 10 pages:\n";
    for (std::size_t i = 0; i < rows.size() && i < 10; ++i) {
      std::cout << "  " << std::setw(2) << i + 1 << ". node " << std::setw(6) << rows[i][0]
                << "   rank " << std::setprecision(6)
                << static_cast<double>(rows[i][1]) /
                       static_cast<double>(queries::kRankScale)
                << "\n";
    }
    std::cout << "\nwall " << std::setprecision(3) << result.run.wall_seconds << " s, "
              << result.run.comm_total.total_remote_bytes() / 1024 << " KiB remote\n";
  });
  return 0;
}

// paralagg_cli: run any built-in query on an edge-list file (or a named
// synthetic graph) from the command line — the "downstream user" entry
// point.
//
//   paralagg_cli <query> [options]
//
//   queries:  sssp | cc | tc | pagerank | triangles | lsp | sssp-tree
//             datalog  (run a .dl program through the declarative frontend)
//   datalog options:
//     --program FILE      Datalog source (see src/frontend/ast.hpp)
//     --facts REL=FILE    load whitespace-separated rows into input REL
//                         (repeatable); .dl inline facts also work
//   options:
//     --graph FILE        text edge list: "src dst [weight]" per line
//     --synthetic NAME    rmat | grid | chain | er | twitter (default rmat)
//     --scale N           synthetic size parameter (default 12)
//     --ranks N           virtual MPI ranks (default 4)
//     --sources a,b,c     start nodes (default: 3 hubs)
//     --rounds N          pagerank rounds (default 20)
//     --sub-buckets N     edge relation fan-out (default 1)
//     --engine MODE       bsp (default) | async — async runs the recursive
//                         loop with nonblocking delta propagation + Safra
//                         termination (lattice queries; pagerank needs
//                         --staleness to opt into stale-synchronous mode)
//     --async-batch N     async mode: rows buffered per destination before
//                         an eager send (default 128; must be >= 1)
//     --staleness N       async mode: enable the stale-synchronous protocol
//                         for bounded-round queries (pagerank) with an
//                         epoch lead window of N (0 = honest lockstep).
//                         Exactness never depends on N — epoch-tagged
//                         contributions fold exactly once at any setting
//     --baseline          disable dynamic join order + balancing
//     --checkpoint FILE   checkpoint manifest path (with --checkpoint-every)
//     --checkpoint-every N  write the manifest every N loop iterations
//                         (BSP engine; 0 = off, the default)
//     --resume [FILE]     restart from a checkpoint manifest written by an
//                         earlier run of the SAME query/graph/options; any
//                         rank count works.  With --serve the FILE is
//                         omitted (the manifest comes from --checkpoint)
//                         and the flag demands a warm start: exit nonzero
//                         if no manifest exists instead of silently
//                         recomputing cold
//     --serve             serving mode (sssp | cc): bring the fixpoint up
//                         (cold, or warm from --checkpoint), then apply
//                         --update-batch files in order and answer
//                         --lookup queries from the resident indexes.
//                         --checkpoint-every N here counts update batches
//                         between rolling manifests, not loop iterations
//     --update-batch FILE edge mutations, one per line: "+ u v [w]" to
//                         insert, "- u v [w]" to delete (cc ignores w and
//                         symmetrizes both directions).  Repeatable;
//                         applied in order (serve mode only)
//     --lookup a[,b,...]  point lookup by key prefix against the query's
//                         output relation (spath | cc), answered after all
//                         batches.  Repeatable (serve mode only)
//     --watchdog SECONDS  fail blocked waits with a typed timeout instead
//                         of hanging (0 = off, the default)
//     --retry-max N       retransmit budget per frame for the self-healing
//                         transport (default 5; 0 = legacy fail-stop, the
//                         channel never engages and injected faults abort)
//     --retry-backoff S   seconds before the first retransmit; attempt k
//                         waits S * 2^k (default 0.05; must be > 0)
//     --retry-deadline S  hard per-frame ceiling before the retry budget
//                         escalates to a typed abort (default 8; must be > 0)
//     --nodes N           group the ranks into N modeled "nodes" for the
//                         topology: locality-split byte accounting and the
//                         hierarchical exchange (0 = flat, the default)
//     --topology MODE     flat (default) | hier — hier routes the tuple
//                         exchange through per-node aggregator ranks
//                         (needs --nodes >= 1 to group ranks)
//     --schedule NAME     linear | rd (default) | swing — collective
//                         schedule for allreduce/allgather; results are
//                         bit-identical on any choice
//     --out FILE          write result tuples as text
//
// Examples:
//   paralagg_cli sssp --synthetic twitter --scale 13 --ranks 8 --sources 0
//   paralagg_cli cc --graph my_edges.txt --ranks 16 --out components.txt

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "paralagg/paralagg.hpp"

namespace {

using namespace paralagg;

struct Args {
  std::string query;
  std::string program_file;
  std::vector<std::pair<std::string, std::string>> fact_files;  // rel -> path
  std::string graph_file;
  std::string synthetic = "rmat";
  int scale = 12;
  int ranks = 4;
  std::vector<core::value_t> sources;
  std::size_t rounds = 20;
  int sub_buckets = 1;
  bool use_async = false;
  std::size_t async_batch = 128;
  bool ssp = false;  // --staleness given: stale-synchronous mode
  std::size_t staleness = 1;
  bool baseline = false;
  std::string checkpoint_file;
  std::size_t checkpoint_every = 0;
  std::string resume_file;
  bool resume_required = false;  // bare --resume (serve mode)
  bool serve = false;
  std::vector<std::string> update_batches;
  std::vector<std::vector<core::value_t>> lookups;
  double watchdog_seconds = 0;
  vmpi::RetryPolicy retry{};  // self-healing transport budget (reliable.hpp)
  std::uint64_t skew_threshold = 0;  // 0 = heavy-hitter routing off
  std::size_t skew_max_keys = 16;
  int nodes = 0;
  std::string topology = "flat";
  std::string schedule = "rd";
  std::string out_file;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n";
  std::cerr << "usage: paralagg_cli <sssp|cc|tc|pagerank|triangles|lsp|sssp-tree> "
               "[--graph FILE | --synthetic NAME] [--scale N] [--ranks N]\n"
               "       [--sources a,b,c] [--rounds N] [--sub-buckets N]\n"
               "       [--engine bsp|async] [--async-batch N] [--staleness N] [--baseline]\n"
               "       [--checkpoint FILE --checkpoint-every N] [--resume [FILE]]\n"
               "       [--serve] [--update-batch FILE]... [--lookup a,b,...]...\n"
               "       [--skew-threshold N] [--skew-max-keys N]\n"
               "       [--watchdog SECONDS] [--retry-max N] [--retry-backoff S]\n"
               "       [--retry-deadline S] [--nodes N] [--topology flat|hier]\n"
               "       [--schedule linear|rd|swing] [--out FILE]\n";
  std::exit(2);
}

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args args;
  args.query = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--program") {
      args.program_file = next();
    } else if (flag == "--facts") {
      const std::string spec = next();
      const auto eq = spec.find('=');
      if (eq == std::string::npos) usage("--facts expects REL=FILE");
      args.fact_files.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (flag == "--graph") {
      args.graph_file = next();
    } else if (flag == "--synthetic") {
      args.synthetic = next();
    } else if (flag == "--scale") {
      args.scale = std::stoi(next());
    } else if (flag == "--ranks") {
      args.ranks = std::stoi(next());
    } else if (flag == "--sources") {
      std::istringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) args.sources.push_back(std::stoull(tok));
    } else if (flag == "--rounds") {
      args.rounds = std::stoull(next());
    } else if (flag == "--sub-buckets") {
      args.sub_buckets = std::stoi(next());
    } else if (flag == "--engine") {
      const std::string mode = next();
      if (mode == "async") {
        args.use_async = true;
      } else if (mode != "bsp") {
        usage(("unknown engine " + mode + " (expected bsp or async)").c_str());
      }
    } else if (flag == "--async-batch") {
      args.async_batch = std::stoull(next());
      if (args.async_batch == 0) {
        usage("--async-batch must be >= 1 (a zero-row batch never sends)");
      }
    } else if (flag == "--staleness") {
      // 0 is legal: honest lockstep (every epoch confirmed ring-wide before
      // the next scan).  The flag itself is what opts into SSP.
      args.ssp = true;
      args.staleness = std::stoull(next());
    } else if (flag == "--baseline") {
      args.baseline = true;
    } else if (flag == "--checkpoint") {
      args.checkpoint_file = next();
    } else if (flag == "--checkpoint-every") {
      args.checkpoint_every = std::stoull(next());
    } else if (flag == "--resume") {
      // The FILE is optional: bare --resume (next token is another flag,
      // or nothing) demands a warm start in serve mode.
      if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
        args.resume_required = true;
      } else {
        args.resume_file = argv[++i];
      }
    } else if (flag == "--serve") {
      args.serve = true;
    } else if (flag == "--update-batch") {
      args.update_batches.push_back(next());
    } else if (flag == "--lookup") {
      std::istringstream ss(next());
      std::string tok;
      std::vector<core::value_t> key;
      while (std::getline(ss, tok, ',')) key.push_back(std::stoull(tok));
      if (key.empty()) usage("--lookup expects a,b,... key values");
      args.lookups.push_back(std::move(key));
    } else if (flag == "--watchdog") {
      args.watchdog_seconds = std::stod(next());
    } else if (flag == "--retry-max") {
      // 0 is legal: it restores the pre-reliable fail-stop transport.
      args.retry.max_attempts =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--retry-backoff") {
      args.retry.base_backoff = std::stod(next());
      if (args.retry.base_backoff <= 0) {
        usage("--retry-backoff must be > 0 (use --retry-max 0 to disable "
              "the reliable channel)");
      }
    } else if (flag == "--retry-deadline") {
      args.retry.deadline = std::stod(next());
      if (args.retry.deadline <= 0) {
        usage("--retry-deadline must be > 0 (use --retry-max 0 to disable "
              "the reliable channel)");
      }
    } else if (flag == "--skew-threshold") {
      args.skew_threshold = std::stoull(next());
      if (args.skew_threshold == 0) {
        usage("--skew-threshold must be >= 1 (omit the flag to disable)");
      }
    } else if (flag == "--skew-max-keys") {
      args.skew_max_keys = std::stoull(next());
      if (args.skew_max_keys == 0) usage("--skew-max-keys must be >= 1");
    } else if (flag == "--nodes") {
      args.nodes = std::stoi(next());
    } else if (flag == "--topology") {
      args.topology = next();
      if (args.topology != "flat" && args.topology != "hier") {
        usage(("unknown topology " + args.topology + " (expected flat or hier)").c_str());
      }
    } else if (flag == "--schedule") {
      args.schedule = next();
    } else if (flag == "--out") {
      args.out_file = next();
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  return args;
}

graph::Graph load_graph(const Args& args) {
  if (!args.graph_file.empty()) {
    return graph::read_edge_list(args.graph_file, args.graph_file);
  }
  if (args.synthetic == "rmat") {
    return graph::make_rmat({.scale = args.scale, .edge_factor = 8});
  }
  if (args.synthetic == "twitter") return graph::make_twitter_like(args.scale, 10);
  if (args.synthetic == "grid") {
    const auto side = static_cast<std::uint64_t>(1) << (args.scale / 2);
    return graph::make_grid(side, side);
  }
  if (args.synthetic == "chain") {
    return graph::make_chain(static_cast<std::uint64_t>(1) << args.scale);
  }
  if (args.synthetic == "er") {
    const auto n = static_cast<std::uint64_t>(1) << args.scale;
    return graph::make_erdos_renyi(n, n * 8);
  }
  usage(("unknown synthetic graph " + args.synthetic).c_str());
}

void write_rows(const std::string& path, const std::vector<core::Tuple>& rows,
                const char* header) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  out << "# " << header << "\n";
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) out << (c ? " " : "") << row[c];
    out << "\n";
  }
  std::cout << rows.size() << " rows written to " << path << "\n";
}

void report(const core::RunResult& run) {
  std::cout << "iterations " << run.total_iterations << ", wall " << run.wall_seconds
            << " s, remote " << run.comm_total.total_remote_bytes() / 1024 << " KiB ("
            << run.comm_total.total_cross_node_bytes() / 1024 << " KiB cross-node), "
            << "steps " << run.comm_total.total_steps() << ", "
            << "modelled parallel " << run.profile.modelled_total() << " s, "
            << "topo-projected " << core::CostModel{}.project_topology(run.profile) << " s\n";
  if (run.aborted_tuple_limit) {
    std::cerr << "WARNING: tuple limit hit — the run was truncated and did NOT reach "
                 "its fixpoint; results below are partial\n";
  }
  if (run.aborted_fault) {
    std::cerr << "ERROR: run aborted on a detected fault: " << run.fault_what << "\n";
  }
  if (run.resumed) std::cout << "(resumed from checkpoint)\n";
}

}  // namespace

std::vector<core::Tuple> read_rows(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read facts file " << path << "\n";
    std::exit(1);
  }
  std::vector<core::Tuple> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    core::Tuple t;
    core::value_t v = 0;
    while (ss >> v) t.push_back(v);
    if (!t.empty()) rows.push_back(std::move(t));
  }
  return rows;
}

int run_datalog(const Args& args) {
  if (args.program_file.empty()) usage("datalog mode needs --program FILE");
  std::ifstream in(args.program_file);
  if (!in) {
    std::cerr << "cannot read " << args.program_file << "\n";
    return 1;
  }
  std::stringstream src;
  src << in.rdbuf();

  frontend::CompiledProgram prog;
  try {
    prog = frontend::CompiledProgram::compile(src.str());
  } catch (const frontend::FrontendError& e) {
    std::cerr << args.program_file << ":" << e.what() << "\n";
    return 1;
  }

  std::map<std::string, std::vector<core::Tuple>> facts;
  for (const auto& [rel, path] : args.fact_files) facts[rel] = read_rows(path);

  vmpi::RunOptions ropts;
  ropts.watchdog_seconds = args.watchdog_seconds;
  ropts.retry = args.retry;
  ropts.topology = vmpi::Topology::grouped(args.ranks, args.nodes);
  ropts.schedule = vmpi::parse_schedule(args.schedule);
  vmpi::run(args.ranks, ropts, [&](vmpi::Comm& comm) {
    auto inst = prog.instantiate(comm, args.sub_buckets);
    for (const auto& [rel, rows] : facts) {
      // Round-robin slice so every rank contributes a share.
      std::vector<core::Tuple> slice;
      for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < rows.size();
           i += static_cast<std::size_t>(comm.size())) {
        slice.push_back(rows[i]);
      }
      inst.load(rel, slice);
    }
    core::EngineConfig cfg;
    if (args.baseline) cfg = core::baseline_config();
    if (args.topology == "hier") cfg.exchange = core::ExchangeAlgorithm::kHierarchical;
    const auto result = inst.run(cfg);
    if (comm.is_root()) {
      report(result);
      for (const auto& rp : prog.relations()) {
        if (!rp.is_output) continue;
        std::cout << rp.name << ": " << inst.size(rp.name) << " tuples\n";
      }
      if (!args.out_file.empty()) {
        for (const auto& rp : prog.relations()) {
          if (rp.is_output) {
            write_rows(args.out_file, inst.gather(rp.name), rp.name.c_str());
            break;
          }
        }
      }
    } else {
      for (const auto& rp : prog.relations()) {
        if (!rp.is_output) continue;
        (void)inst.size(rp.name);  // collective
      }
      if (!args.out_file.empty()) {
        for (const auto& rp : prog.relations()) {
          if (rp.is_output) {
            (void)inst.gather(rp.name);  // collective
            break;
          }
        }
      }
    }
  });
  return 0;
}

namespace {

vmpi::RunOptions run_options(const Args& args) {
  vmpi::RunOptions ropts;
  ropts.watchdog_seconds = args.watchdog_seconds;
  ropts.retry = args.retry;
  ropts.topology = vmpi::Topology::grouped(args.ranks, args.nodes);
  ropts.schedule = vmpi::parse_schedule(args.schedule);
  return ropts;
}

void run_query(const Args& args, const graph::Graph& g, const queries::QueryTuning& tuning,
               const std::vector<core::value_t>& sources) {
  const vmpi::RunOptions ropts = run_options(args);
  vmpi::run(args.ranks, ropts, [&](vmpi::Comm& comm) {
    const bool root = comm.is_root();
    if (args.query == "sssp") {
      queries::SsspOptions opts;
      opts.sources = sources;
      opts.tuning = tuning;
      opts.collect_distances = !args.out_file.empty();
      const auto r = run_sssp(comm, g, opts);
      if (root) {
        std::cout << "sssp: " << r.path_count << " (source, node) distances\n";
        report(r.run);
        if (!args.out_file.empty()) write_rows(args.out_file, r.distances, "to from dist");
      }
    } else if (args.query == "cc") {
      queries::CcOptions opts;
      opts.tuning = tuning;
      opts.collect_labels = !args.out_file.empty();
      const auto r = run_cc(comm, g, opts);
      if (root) {
        std::cout << "cc: " << r.component_count << " components over "
                  << r.labelled_nodes << " nodes\n";
        report(r.run);
        if (!args.out_file.empty()) write_rows(args.out_file, r.labels, "node label");
      }
    } else if (args.query == "tc") {
      queries::TcOptions opts;
      opts.tuning = tuning;
      opts.collect_pairs = !args.out_file.empty();
      const auto r = run_tc(comm, g, opts);
      if (root) {
        std::cout << "tc: " << r.path_count << " reachable pairs\n";
        report(r.run);
        if (!args.out_file.empty()) write_rows(args.out_file, r.pairs, "dst src");
      }
    } else if (args.query == "pagerank") {
      queries::PagerankOptions opts;
      opts.rounds = args.rounds;
      opts.tuning = tuning;
      opts.collect_ranks = !args.out_file.empty();
      const auto r = run_pagerank(comm, g, opts);
      if (root) {
        std::cout << "pagerank: " << r.ranked_nodes << " nodes, mass " << r.total_mass
                  << " after " << r.rounds << " rounds\n";
        report(r.run);
        if (!args.out_file.empty()) {
          write_rows(args.out_file, r.ranks, "node rank(x1e6)");
        }
      }
    } else if (args.query == "triangles") {
      const auto r = run_triangles(comm, g, queries::TrianglesOptions{.tuning = tuning});
      if (root) {
        std::cout << "triangles: " << r.triangles << " (from " << r.wedges << " wedges)\n";
        report(r.run);
      }
    } else if (args.query == "lsp") {
      queries::LspOptions opts;
      opts.sources = sources;
      opts.tuning = tuning;
      const auto r = run_lsp(comm, g, opts);
      if (root) {
        std::cout << "lsp: longest shortest path " << r.longest << " over "
                  << r.spath_count << " paths\n";
        report(r.run);
      }
    } else if (args.query == "sssp-tree") {
      queries::SsspTreeOptions opts;
      opts.source = sources.front();
      opts.tuning = tuning;
      const auto r = run_sssp_tree(comm, g, opts);
      if (root) {
        std::cout << "sssp-tree: " << r.reached << " nodes from source "
                  << sources.front() << "\n";
        report(r.run);
        if (!args.out_file.empty()) write_rows(args.out_file, r.tree, "node dist parent");
      }
    } else if (root) {
      std::cerr << "unknown query '" << args.query << "'\n";
    }
  });
}

/// Parse an --update-batch file into this rank's sharded contribution:
/// lines "+ u v [w]" / "- u v [w]", round-robin sliced across ranks.
serving::UpdateBatch read_update_batch(const std::string& path, std::size_t edge_arity,
                                       bool symmetrize, int rank, int nranks) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read update batch " + path);
  serving::RelationDelta delta;
  delta.relation = "edge";
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const bool mine = lineno++ % static_cast<std::size_t>(nranks) ==
                      static_cast<std::size_t>(rank);
    std::istringstream ss(line);
    char op = 0;
    core::value_t u = 0, v = 0, w = 1;
    if (!(ss >> op >> u >> v) || (op != '+' && op != '-')) {
      throw std::runtime_error(path + ": bad update line '" + line +
                               "' (want '+ u v [w]' or '- u v [w]')");
    }
    ss >> w;  // optional; default weight 1
    if (!mine) continue;
    auto& rows = op == '+' ? delta.inserts : delta.deletes;
    if (edge_arity == 3) {
      rows.push_back(core::Tuple{u, v, w});
    } else {
      rows.push_back(core::Tuple{u, v});
      if (symmetrize) rows.push_back(core::Tuple{v, u});
    }
  }
  return {std::move(delta)};
}

int run_serve(const Args& args, const graph::Graph& g, const queries::QueryTuning& tuning,
              const std::vector<core::value_t>& sources) {
  int exit_code = 0;
  vmpi::run(args.ranks, run_options(args), [&](vmpi::Comm& comm) {
    const bool root = comm.is_root();
    const bool is_sssp = args.query == "sssp";

    // Keep the builder struct alive: the Program must outlive the engine.
    queries::SsspProgram sp;
    queries::CcProgram cp;
    core::Program* program = nullptr;
    std::string lookup_rel;
    if (is_sssp) {
      sp = queries::build_sssp_program(comm, tuning.edge_sub_buckets,
                                       /*balance_edges=*/false);
      program = sp.program.get();
      lookup_rel = "spath";
    } else {
      cp = queries::build_cc_program(comm, tuning.edge_sub_buckets,
                                     /*balance_edges=*/false);
      program = cp.program.get();
      lookup_rel = "cc";
    }

    serving::ServingConfig scfg;
    scfg.engine = tuning.engine;
    scfg.manifest_path = args.checkpoint_file;
    scfg.checkpoint_every_batches = args.checkpoint_every;
    serving::ServingEngine srv(comm, *program, scfg);

    const bool warm = srv.can_warm_start();
    if (args.resume_required && !warm) {
      if (root) {
        std::cerr << "error: --resume demanded a warm start but no manifest exists at "
                  << args.checkpoint_file << "\n";
      }
      exit_code = 1;
      return;
    }
    if (!warm) {
      if (is_sssp) {
        queries::load_sssp_facts(sp, g, sources);
      } else {
        queries::load_cc_facts(cp, g, /*symmetrize=*/true);
      }
    }
    const auto rr = srv.start();
    if (root) {
      std::cout << "serve: " << (warm ? "warm start from " + args.checkpoint_file
                                      : std::string("cold start"))
                << "\n";
      report(rr);
    }
    if (rr.aborted_fault) {
      exit_code = 1;
      return;
    }

    for (const auto& path : args.update_batches) {
      const auto batch = read_update_batch(path, is_sssp ? 3 : 2, !is_sssp,
                                           comm.rank(), comm.size());
      const auto ur = srv.apply_updates(batch);
      if (ur.aborted_fault) {
        if (root) std::cerr << "error: batch " << path << " aborted: " << ur.fault_what
                            << "\n";
        exit_code = 1;
        return;
      }
      if (root) {
        std::cout << "batch " << path << ": +" << ur.base_inserted << " -"
                  << ur.base_deleted << " edges (" << ur.missing_deletes
                  << " deletes missed), retracted " << ur.retracted << " in "
                  << ur.retraction_rounds << " rounds, recovered " << ur.recovered
                  << ", derived " << ur.tuples_derived << " tuples over "
                  << ur.tail_iterations << " tail iterations"
                  << (ur.checkpointed ? ", manifest written" : "") << "\n";
      }
    }

    for (const auto& key : args.lookups) {
      const auto rows = srv.lookup(lookup_rel, key);
      if (root) {
        std::cout << lookup_rel << "(";
        for (std::size_t i = 0; i < key.size(); ++i) std::cout << (i ? "," : "") << key[i];
        std::cout << "): " << rows.size() << " rows\n";
        for (const auto& row : rows) {
          for (std::size_t c = 0; c < row.size(); ++c) std::cout << (c ? " " : "  ") << row[c];
          std::cout << "\n";
        }
      }
    }
  });
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.query == "datalog") return run_datalog(args);
  const auto g = load_graph(args);
  std::cout << "graph '" << g.name << "': " << g.num_nodes << " nodes, " << g.num_edges()
            << " edges; " << args.ranks << " ranks\n";
  if (args.nodes > 0 || args.schedule != "rd" || args.topology != "flat") {
    std::cout << "topology: "
              << vmpi::Topology::grouped(args.ranks, args.nodes).describe(args.ranks)
              << ", exchange " << args.topology << ", schedule " << args.schedule << "\n";
  }

  queries::QueryTuning tuning;
  if (args.baseline) tuning = queries::QueryTuning::baseline();
  if (args.topology == "hier") {
    tuning.engine.exchange = core::ExchangeAlgorithm::kHierarchical;
  }
  tuning.edge_sub_buckets = args.sub_buckets;
  tuning.use_async = args.use_async;
  tuning.async.batch_rows = args.async_batch;
  if (args.ssp && !args.use_async) {
    usage("--staleness is an async-engine knob; add --engine async");
  }
  tuning.async.ssp = args.ssp;
  tuning.async.ssp_staleness = args.staleness;
  if (args.skew_threshold > 0) {
    if (args.use_async) {
      usage("--skew-threshold is a BSP-engine knob (hot-set agreement needs "
            "iteration boundaries); drop --engine async");
    }
    tuning.engine.skew.enabled = true;
    tuning.engine.skew.hot_threshold = args.skew_threshold;
    tuning.engine.skew.max_hot_keys = args.skew_max_keys;
  }
  tuning.engine.checkpoint_every = args.checkpoint_every;
  tuning.engine.checkpoint_path = args.checkpoint_file;
  tuning.resume_manifest = args.resume_file;
  if (args.checkpoint_every > 0 && args.checkpoint_file.empty()) {
    usage("--checkpoint-every needs --checkpoint FILE");
  }

  // Serving-mode flag validation: every flag either works or fails loudly.
  if (args.serve && args.use_async) {
    usage("--serve requires the BSP engine (--engine async cannot be served)");
  }
  if (!args.serve && !args.update_batches.empty()) {
    usage("--update-batch requires --serve (batch mode has no resident engine)");
  }
  if (!args.serve && !args.lookups.empty()) {
    usage("--lookup requires --serve: after a batch run there is no resident "
          "engine to look up");
  }
  if (args.resume_required && !args.serve) {
    usage("bare --resume needs --serve (batch mode resumes with --resume FILE)");
  }
  if (args.serve && args.resume_required && args.checkpoint_file.empty()) {
    usage("--resume in serve mode needs --checkpoint FILE naming the manifest");
  }
  if (args.serve && !args.resume_file.empty()) {
    usage("--serve warm-starts from --checkpoint FILE; --resume takes no FILE here");
  }
  if (args.serve && args.query != "sssp" && args.query != "cc") {
    usage("--serve supports sssp and cc");
  }

  auto sources = args.sources;
  if (sources.empty()) sources = g.pick_hubs(3);

  try {
    if (args.serve) return run_serve(args, g, tuning, sources);
    run_query(args, g, tuning, sources);
  } catch (const serving::ServingError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const async::UnsupportedProgramError& e) {
    // The program (not the flags) cannot run on the async schedule — e.g.
    // `pagerank --engine async` without --staleness.  Distinct exit code so
    // scripts can tell "pick another engine" from "fix your flags".
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  } catch (const std::invalid_argument& e) {
    // Flag/config mistakes (async::ConfigError included): usage-class error.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return 0;
}

#include "queries/tc.hpp"

#include "core/program.hpp"

namespace paralagg::queries {

TcResult run_tc(vmpi::Comm& comm, const graph::Graph& g, const TcOptions& opts) {
  core::Program program(comm);

  auto* edge = program.relation({
      .name = "edge",
      .arity = 2,
      .jcc = 1,
      .sub_buckets = opts.tuning.edge_sub_buckets,
      .balanceable = opts.tuning.balance_edges,
  });
  auto* path = program.relation({.name = "path", .arity = 2, .jcc = 1});

  auto& stratum = program.stratum();
  // Path(x, y) <- Edge(x, y): stored path row is (y, x).
  stratum.init_rules.push_back(core::CopyRule{
      .src = edge,
      .version = core::Version::kFull,
      .out = {.target = path, .cols = {Expr::col_a(1), Expr::col_a(0)}},
  });
  // Path(x, z) <- Path(x, y), Edge(y, z): join on y, emit stored (z, x).
  stratum.loop_rules.push_back(core::JoinRule{
      .a = path,
      .a_version = core::Version::kDelta,
      .b = edge,
      .b_version = core::Version::kFull,
      .out = {.target = path, .cols = {Expr::col_b(1), Expr::col_a(1)}},
  });

  edge->load_facts(edge_slice(comm, g, /*weighted=*/false));

  TcResult result;
  result.run = run_engine(comm, program, opts.tuning);
  result.iterations = result.run.total_iterations;
  // Faulted world: no further collectives are possible, return the abort.
  if (result.run.aborted_fault) return result;
  result.path_count = path->global_size(core::Version::kFull);
  if (opts.collect_pairs) result.pairs = path->gather_to_root(0);
  return result;
}

}  // namespace paralagg::queries

#include "queries/programs.hpp"

#include "core/ra_op.hpp"

namespace paralagg::queries {

SsspProgram build_sssp_program(vmpi::Comm& comm, int edge_sub_buckets, bool balance_edges) {
  SsspProgram p;
  p.program = std::make_unique<core::Program>(comm);

  p.edge = p.program->relation({
      .name = "edge",
      .arity = 3,
      .jcc = 1,
      .sub_buckets = edge_sub_buckets,
      .balanceable = balance_edges,
  });
  p.spath = p.program->relation({
      .name = "spath",
      .arity = 3,
      .jcc = 1,
      .dep_arity = 1,
      .aggregator = core::make_min_aggregator(),
  });

  auto& stratum = p.program->stratum();
  stratum.loop_rules.push_back(core::JoinRule{
      .a = p.spath,
      .a_version = core::Version::kDelta,
      .b = p.edge,
      .b_version = core::Version::kFull,
      // new spath row, stored order (to, from, l + n)
      .out = {.target = p.spath,
              .cols = {Expr::col_b(1), Expr::col_a(1),
                       Expr::add(Expr::col_a(2), Expr::col_b(2))}},
  });
  return p;
}

void load_sssp_facts(SsspProgram& p, const graph::Graph& g,
                     std::span<const value_t> sources) {
  p.edge->load_facts(edge_slice(p.program->comm(), g, /*weighted=*/true));

  // Seed Spath(n, n, 0) for each start node; rank 0 contributes them all
  // (load_facts routes each to its owner).
  std::vector<Tuple> seeds;
  if (p.program->comm().rank() == 0) {
    seeds.reserve(sources.size());
    for (value_t s : sources) seeds.push_back(Tuple{s, s, 0});
  }
  p.spath->load_facts(seeds);
}

CcProgram build_cc_program(vmpi::Comm& comm, int edge_sub_buckets, bool balance_edges) {
  CcProgram p;
  p.program = std::make_unique<core::Program>(comm);

  p.edge = p.program->relation({
      .name = "edge",
      .arity = 2,
      .jcc = 1,
      .sub_buckets = edge_sub_buckets,
      .balanceable = balance_edges,
  });
  p.cc = p.program->relation({
      .name = "cc",
      .arity = 2,
      .jcc = 1,
      .dep_arity = 1,
      .aggregator = core::make_min_aggregator(),
  });
  p.comp = p.program->relation({.name = "cc_representative", .arity = 1, .jcc = 1});

  auto& propagate = p.program->stratum();
  // cc(n, n) <- edge(n, _).
  propagate.init_rules.push_back(core::CopyRule{
      .src = p.edge,
      .version = core::Version::kFull,
      .out = {.target = p.cc, .cols = {Expr::col_a(0), Expr::col_a(0)}},
  });
  // cc(y, $MIN(z)) <- cc(x, z), edge(x, y).
  propagate.loop_rules.push_back(core::JoinRule{
      .a = p.cc,
      .a_version = core::Version::kDelta,
      .b = p.edge,
      .b_version = core::Version::kFull,
      .out = {.target = p.cc, .cols = {Expr::col_b(1), Expr::col_a(1)}},
  });

  // Second stratum: project the distinct labels.
  auto& represent = p.program->stratum();
  represent.init_rules.push_back(core::CopyRule{
      .src = p.cc,
      .version = core::Version::kFull,
      .out = {.target = p.comp, .cols = {Expr::col_a(1)}},
  });
  return p;
}

void load_cc_facts(CcProgram& p, const graph::Graph& g, bool symmetrize) {
  // Symmetrization happens at load time so the graph object itself need
  // not be doubled in memory.
  vmpi::Comm& comm = p.program->comm();
  std::vector<Tuple> slice;
  const auto n = static_cast<std::size_t>(comm.size());
  const auto me = static_cast<std::size_t>(comm.rank());
  for (std::size_t i = me; i < g.edges.size(); i += n) {
    const auto& e = g.edges[i];
    slice.push_back(Tuple{e.src, e.dst});
    if (symmetrize) slice.push_back(Tuple{e.dst, e.src});
  }
  p.edge->load_facts(slice);
}

}  // namespace paralagg::queries

#include "queries/sssp_tree.hpp"

#include "core/program.hpp"

namespace paralagg::queries {

SsspTreeResult run_sssp_tree(vmpi::Comm& comm, const graph::Graph& g,
                             const SsspTreeOptions& opts) {
  core::Program program(comm);

  auto* edge = program.relation({
      .name = "edge",
      .arity = 3,
      .jcc = 1,
      .sub_buckets = opts.tuning.edge_sub_buckets,
      .balanceable = opts.tuning.balance_edges,
  });
  auto* tree = program.relation({
      .name = "tree",
      .arity = 3,
      .jcc = 1,
      .dep_arity = 2,  // (dist, parent)
      .aggregator = core::make_argmin_aggregator(),
  });

  auto& stratum = program.stratum();
  // Tree(t, l + w, m) <- Tree(m, l, _), Edge(m, t, w).
  stratum.loop_rules.push_back(core::JoinRule{
      .a = tree,
      .a_version = core::Version::kDelta,
      .b = edge,
      .b_version = core::Version::kFull,
      .out = {.target = tree,
              .cols = {Expr::col_b(1), Expr::add(Expr::col_a(1), Expr::col_b(2)),
                       Expr::col_a(0)}},
  });

  edge->load_facts(edge_slice(comm, g, /*weighted=*/true));
  std::vector<Tuple> seed;
  if (comm.rank() == 0) seed.push_back(Tuple{opts.source, 0, opts.source});
  tree->load_facts(seed);

  SsspTreeResult result;
  result.run = run_engine(comm, program, opts.tuning);
  result.iterations = result.run.total_iterations;
  // Faulted world: no further collectives are possible, return the abort.
  if (result.run.aborted_fault) return result;
  result.reached = tree->global_size(core::Version::kFull);
  result.tree = tree->gather_to_root(0);
  return result;
}

}  // namespace paralagg::queries

#pragma once

// Shortest-path tree: SSSP carrying an argmin *witness* — for every
// reached node, the distance and the predecessor on a shortest path:
//
//   Tree(n, 0, n)                          <- Start(n).
//   Tree(t, $ARGMIN(l + w, m))            <- Tree(m, l, _), Edge(m, t, w).
//
// Stored order: tree = (node, dist, parent), jcc = 1, dep_arity = 2 —
// the two-column ($MIN value, witness) lattice of
// core::make_argmin_aggregator(), demonstrating multi-column dependent
// values flowing through the same fused dedup/aggregation pass.
// Single-source (witnesses per (source, node) would need the pair key, as
// in run_sssp).

#include "queries/common.hpp"

namespace paralagg::queries {

struct SsspTreeOptions {
  value_t source = 0;
  QueryTuning tuning;
};

struct SsspTreeResult {
  std::uint64_t reached = 0;
  std::size_t iterations = 0;
  core::RunResult run;
  /// (node, dist, parent) rows, gathered to rank 0 and sorted by node.
  /// parent == node for the source itself.
  std::vector<Tuple> tree;
};

/// Collective.
SsspTreeResult run_sssp_tree(vmpi::Comm& comm, const graph::Graph& g,
                             const SsspTreeOptions& opts);

}  // namespace paralagg::queries

#pragma once

// Longest shortest path (graph "eccentricity" from the sources) — the
// paper's §III-A example of why recursive aggregates must not leak
// intermediate results:
//
//   SpNorm(f, t, v) <- Spath(f, t, v).
//   Lsp($MAX(v))    <- SpNorm(_, _, v).
//
// Two implementations are provided:
//
//  * kStratified (correct): the copy into SpNorm runs in a *later stratum*,
//    after the Spath fixpoint, so only final (fully collapsed) shortest
//    distances are observed and communicated.
//
//  * kLeaky (the anti-pattern): the copy runs *inside* the Spath fixpoint
//    on the delta, so every transient path length — lengths that $MIN later
//    purges — is materialized into SpNorm and shipped across ranks.  The
//    result for Lsp is still correct (max over a superset of lengths that
//    contains all finals... it is NOT: transient lengths can exceed the
//    true eccentricity), which is exactly the paper's point: the leaky
//    plan computes a different, larger relation and pays for it.
//
// The ablation bench compares tuples and bytes communicated between the
// two; tests assert the stratified answer against the Dijkstra oracle.

#include "queries/common.hpp"

namespace paralagg::queries {

enum class LspPlan : std::uint8_t { kStratified, kLeaky };

struct LspOptions {
  std::vector<value_t> sources;
  LspPlan plan = LspPlan::kStratified;
  QueryTuning tuning;
};

struct LspResult {
  value_t longest = 0;            // MAX over observed path lengths
  std::uint64_t spnorm_count = 0;  // |SpNorm| — the leak shows up here
  std::uint64_t spath_count = 0;
  std::size_t iterations = 0;
  core::RunResult run;
};

/// Collective.
LspResult run_lsp(vmpi::Comm& comm, const graph::Graph& g, const LspOptions& opts);

}  // namespace paralagg::queries

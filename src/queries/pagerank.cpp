#include "queries/pagerank.hpp"

#include "core/program.hpp"

namespace paralagg::queries {

PagerankResult run_pagerank(vmpi::Comm& comm, const graph::Graph& g,
                            const PagerankOptions& opts) {
  core::Program program(comm);

  auto* edge = program.relation({
      .name = "edge",
      .arity = 2,
      .jcc = 1,
      .sub_buckets = opts.tuning.edge_sub_buckets,
      .balanceable = opts.tuning.balance_edges,
  });
  auto* nodes = program.relation({.name = "nodes", .arity = 1, .jcc = 1});
  auto* outdeg = program.relation({
      .name = "outdeg",
      .arity = 2,
      .jcc = 1,
      .dep_arity = 1,
      .aggregator = core::make_sum_aggregator(),
  });
  auto* edeg = program.relation({.name = "edeg", .arity = 3, .jcc = 1});
  auto* rank = program.relation({
      .name = "rank",
      .arity = 2,
      .jcc = 1,
      .dep_arity = 1,
      .aggregator = core::make_sum_aggregator(),
      .agg_mode = core::AggMode::kRefresh,
  });

  // Stratum 1: degrees, then edges annotated with their source's degree.
  auto& prepare = program.stratum();
  prepare.init_rules.push_back(core::CopyRule{
      .src = edge,
      .version = core::Version::kFull,
      .out = {.target = outdeg, .cols = {Expr::col_a(0), Expr::constant(1)}},
  });
  auto& annotate = program.stratum();
  annotate.init_rules.push_back(core::JoinRule{
      .a = edge,
      .a_version = core::Version::kFull,
      .b = outdeg,
      .b_version = core::Version::kFull,
      .out = {.target = edeg,
              .cols = {Expr::col_a(0), Expr::col_a(1), Expr::col_b(1)}},
  });

  // Stratum 2: K Jacobi rounds of rank refresh.
  const value_t base =
      kRankScale * (opts.damping_den - opts.damping_num) / opts.damping_den;
  auto& iterate = program.stratum();
  iterate.fixpoint = false;
  iterate.max_rounds = opts.rounds;
  iterate.loop_rules.push_back(core::CopyRule{
      .src = nodes,
      .version = core::Version::kFull,
      .out = {.target = rank, .cols = {Expr::col_a(0), Expr::constant(base)}},
  });
  iterate.loop_rules.push_back(core::JoinRule{
      .a = rank,
      .a_version = core::Version::kFull,
      .b = edeg,
      .b_version = core::Version::kFull,
      // damped share: d * r / c, routed to the target y.
      .out = {.target = rank,
              .cols = {Expr::col_b(1),
                       Expr::mul_div(Expr::div(Expr::col_a(1), Expr::col_b(2)),
                                     opts.damping_num, opts.damping_den)}},
  });

  edge->load_facts(edge_slice(comm, g, /*weighted=*/false));
  nodes->load_facts(node_slice(comm, g.num_nodes));

  PagerankResult result;
  result.run = run_engine(comm, program, opts.tuning);
  result.rounds = result.run.total_iterations;
  // Faulted world: no further collectives are possible, return the abort.
  if (result.run.aborted_fault) return result;
  result.ranked_nodes = rank->global_size(core::Version::kFull);

  // Mass check: Σ rank / (N * scale).
  std::uint64_t local_mass = 0;
  rank->tree(core::Version::kFull)
      .for_each([&](std::span<const core::value_t> t) { local_mass += t[1]; });
  const auto mass = comm.allreduce<std::uint64_t>(local_mass, vmpi::ReduceOp::kSum);
  result.total_mass = static_cast<double>(mass) /
                      (static_cast<double>(g.num_nodes) * static_cast<double>(kRankScale));
  if (opts.collect_ranks) result.ranks = rank->gather_to_root(0);
  return result;
}

}  // namespace paralagg::queries

#pragma once

// Reusable program builders for the prebuilt graph queries.
//
// The run_<query> drivers historically built their Program inline and let
// it die with the call — fine for batch evaluation, useless for serving,
// where the compiled Program and its relation B-trees must stay resident
// across update batches.  These builders split "compile the program" from
// "load the facts" so a caller can hold the Program (and, e.g., enable
// support counting on its targets) before any data exists, then either
// load facts cold or restore a checkpoint manifest warm.
//
// Programs are immovable (they own their relations), so builders return
// them behind unique_ptr together with the named relation handles.

#include <memory>
#include <span>

#include "core/program.hpp"
#include "graph/generators.hpp"
#include "queries/common.hpp"

namespace paralagg::queries {

/// SSSP: spath(to, from, $MIN dist) over edge(from, to, w) — see sssp.hpp
/// for the stored orders.
struct SsspProgram {
  std::unique_ptr<core::Program> program;
  core::Relation* edge = nullptr;
  core::Relation* spath = nullptr;
};

[[nodiscard]] SsspProgram build_sssp_program(vmpi::Comm& comm, int edge_sub_buckets = 1,
                                             bool balance_edges = true);

/// Load this rank's edge slice and the Spath(s, s, 0) seeds (rank 0
/// contributes the seeds).  Collective.
void load_sssp_facts(SsspProgram& p, const graph::Graph& g,
                     std::span<const value_t> sources);

/// CC: cc(n, $MIN label) + cc_representative(label) over symmetrized
/// edge(x, y) — see cc.hpp for the stored orders.
struct CcProgram {
  std::unique_ptr<core::Program> program;
  core::Relation* edge = nullptr;
  core::Relation* cc = nullptr;
  core::Relation* comp = nullptr;
};

[[nodiscard]] CcProgram build_cc_program(vmpi::Comm& comm, int edge_sub_buckets = 1,
                                         bool balance_edges = true);

/// Load this rank's edge slice, inserting both directions when
/// `symmetrize` (paper semantics for undirected inputs).  Collective.
void load_cc_facts(CcProgram& p, const graph::Graph& g, bool symmetrize = true);

}  // namespace paralagg::queries

#pragma once

// Triangle counting — stratified (non-recursive) aggregation exercising
// multi-column joins and filters:
//
//   wedge(y, z, x)     <- edge(x, y), edge(x, z), y < z.
//   tri(0, $SUM(1))    <- wedge(y, z, x), edge2(y, z).
//   triangles          =  tri / 3.
//
// Stored orders:
//   edge  = (x, y)     jcc = 1 (wedge generation joins on the shared source)
//   edge2 = (y, z)     jcc = 2 (closure check is an existence join on both
//                      columns)
//   wedge = (y, z, x)  jcc = 2, plain
//
// Runs on the symmetrized graph; every undirected triangle {a,b,c} yields
// exactly three wedges with an ordered outer pair, each closed by an edge,
// so the count divides by 3.

#include "queries/common.hpp"

namespace paralagg::queries {

struct TrianglesOptions {
  QueryTuning tuning;
  bool symmetrize = true;
};

struct TrianglesResult {
  std::uint64_t triangles = 0;
  std::uint64_t wedges = 0;
  core::RunResult run;
};

/// Collective.
TrianglesResult run_triangles(vmpi::Comm& comm, const graph::Graph& g,
                              const TrianglesOptions& opts);

}  // namespace paralagg::queries

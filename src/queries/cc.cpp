#include "queries/cc.hpp"

#include "queries/programs.hpp"

namespace paralagg::queries {

CcResult run_cc(vmpi::Comm& comm, const graph::Graph& g, const CcOptions& opts) {
  CcProgram p =
      build_cc_program(comm, opts.tuning.edge_sub_buckets, opts.tuning.balance_edges);
  load_cc_facts(p, g, opts.symmetrize);

  CcResult result;
  result.run = run_engine(comm, *p.program, opts.tuning);
  result.iterations = result.run.total_iterations;
  // Faulted world: no further collectives are possible, return the abort.
  if (result.run.aborted_fault) return result;
  result.component_count = p.comp->global_size(core::Version::kFull);
  result.labelled_nodes = p.cc->global_size(core::Version::kFull);
  if (opts.collect_labels) result.labels = p.cc->gather_to_root(0);
  return result;
}

}  // namespace paralagg::queries

#include "queries/cc.hpp"

#include "core/program.hpp"

namespace paralagg::queries {

CcResult run_cc(vmpi::Comm& comm, const graph::Graph& g, const CcOptions& opts) {
  core::Program program(comm);

  auto* edge = program.relation({
      .name = "edge",
      .arity = 2,
      .jcc = 1,
      .sub_buckets = opts.tuning.edge_sub_buckets,
      .balanceable = opts.tuning.balance_edges,
  });
  auto* cc = program.relation({
      .name = "cc",
      .arity = 2,
      .jcc = 1,
      .dep_arity = 1,
      .aggregator = core::make_min_aggregator(),
  });
  auto* comp = program.relation({.name = "cc_representative", .arity = 1, .jcc = 1});

  auto& propagate = program.stratum();
  // cc(n, n) <- edge(n, _).
  propagate.init_rules.push_back(core::CopyRule{
      .src = edge,
      .version = core::Version::kFull,
      .out = {.target = cc, .cols = {Expr::col_a(0), Expr::col_a(0)}},
  });
  // cc(y, $MIN(z)) <- cc(x, z), edge(x, y).
  propagate.loop_rules.push_back(core::JoinRule{
      .a = cc,
      .a_version = core::Version::kDelta,
      .b = edge,
      .b_version = core::Version::kFull,
      .out = {.target = cc, .cols = {Expr::col_b(1), Expr::col_a(1)}},
  });

  // Second stratum: project the distinct labels.
  auto& represent = program.stratum();
  represent.init_rules.push_back(core::CopyRule{
      .src = cc,
      .version = core::Version::kFull,
      .out = {.target = comp, .cols = {Expr::col_a(1)}},
  });

  // Load facts.  Symmetrization happens at load time so the graph object
  // itself need not be doubled in memory.
  {
    std::vector<Tuple> slice;
    const auto n = static_cast<std::size_t>(comm.size());
    const auto me = static_cast<std::size_t>(comm.rank());
    for (std::size_t i = me; i < g.edges.size(); i += n) {
      const auto& e = g.edges[i];
      slice.push_back(Tuple{e.src, e.dst});
      if (opts.symmetrize) slice.push_back(Tuple{e.dst, e.src});
    }
    edge->load_facts(slice);
  }

  CcResult result;
  result.run = run_engine(comm, program, opts.tuning);
  result.iterations = result.run.total_iterations;
  // Faulted world: no further collectives are possible, return the abort.
  if (result.run.aborted_fault) return result;
  result.component_count = comp->global_size(core::Version::kFull);
  result.labelled_nodes = cc->global_size(core::Version::kFull);
  if (opts.collect_labels) result.labels = cc->gather_to_root(0);
  return result;
}

}  // namespace paralagg::queries

#pragma once

// Connected components via recursive $MIN aggregation (paper §V-A):
//
//   cc(n, n)                      <- edge(n, _).
//   cc(y, $MIN(z))                <- cc(x, z), edge(x, y).
//   cc_representative(n)          <- cc(_, n).
//
// Stored orders:
//   edge = (x, y)      plain, jcc = 1, symmetrized, balanceable
//   cc   = (x, label)  $MIN,  jcc = 1 (label is the dependent column)
//   comp = (label)     plain  (second stratum; |comp| is Table II "Comp")
//
// The $MIN canonicalizes each component to its smallest member id; the
// fused local aggregation keeps at most one label per node at all times —
// the collapse that Datalog-style materialization cannot do.

#include "queries/common.hpp"

namespace paralagg::queries {

struct CcOptions {
  QueryTuning tuning;
  /// Treat the input as undirected by inserting both edge directions
  /// (paper semantics).  Disable only for tests on pre-symmetrized input.
  bool symmetrize = true;
  bool collect_labels = false;  // gather (node, label) rows to rank 0
};

struct CcResult {
  std::uint64_t component_count = 0;  // |cc_representative|
  std::uint64_t labelled_nodes = 0;   // |cc|
  std::size_t iterations = 0;
  core::RunResult run;
  std::vector<Tuple> labels;  // stored-order (node, label); rank 0 only
};

/// Collective.
CcResult run_cc(vmpi::Comm& comm, const graph::Graph& g, const CcOptions& opts);

}  // namespace paralagg::queries

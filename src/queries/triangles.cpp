#include "queries/triangles.hpp"

#include "core/program.hpp"

namespace paralagg::queries {

TrianglesResult run_triangles(vmpi::Comm& comm, const graph::Graph& g,
                              const TrianglesOptions& opts) {
  core::Program program(comm);

  auto* edge = program.relation({
      .name = "edge",
      .arity = 2,
      .jcc = 1,
      .sub_buckets = opts.tuning.edge_sub_buckets,
      .balanceable = opts.tuning.balance_edges,
  });
  auto* edge2 = program.relation({.name = "edge2", .arity = 2, .jcc = 2});
  auto* wedge = program.relation({.name = "wedge", .arity = 3, .jcc = 2});
  auto* tri = program.relation({
      .name = "tri",
      .arity = 2,
      .jcc = 1,
      .dep_arity = 1,
      .aggregator = core::make_sum_aggregator(),
  });

  // Stratum 1: wedges with ordered outer pair.
  auto& wedges = program.stratum();
  wedges.init_rules.push_back(core::JoinRule{
      .a = edge,
      .a_version = core::Version::kFull,
      .b = edge,
      .b_version = core::Version::kFull,
      .out = {.target = wedge,
              .cols = {Expr::col_a(1), Expr::col_b(1), Expr::col_a(0)}},
      .filter = Expr::less(Expr::col_a(1), Expr::col_b(1)),
  });

  // Stratum 2: close each wedge against edge2 and count.
  auto& close = program.stratum();
  close.init_rules.push_back(core::JoinRule{
      .a = wedge,
      .a_version = core::Version::kFull,
      .b = edge2,
      .b_version = core::Version::kFull,
      .out = {.target = tri, .cols = {Expr::constant(0), Expr::constant(1)}},
  });

  {
    std::vector<Tuple> slice;
    const auto n = static_cast<std::size_t>(comm.size());
    const auto me = static_cast<std::size_t>(comm.rank());
    for (std::size_t i = me; i < g.edges.size(); i += n) {
      const auto& e = g.edges[i];
      slice.push_back(Tuple{e.src, e.dst});
      if (opts.symmetrize) slice.push_back(Tuple{e.dst, e.src});
    }
    edge->load_facts(slice);
    edge2->load_facts(slice);
  }

  TrianglesResult result;
  result.run = run_engine(comm, program, opts.tuning);
  // Faulted world: no further collectives are possible, return the abort.
  if (result.run.aborted_fault) return result;
  result.wedges = wedge->global_size(core::Version::kFull);

  const auto rows = tri->gather_to_root(0);
  std::uint64_t closed = 0;
  if (comm.rank() == 0 && !rows.empty()) closed = rows.front()[1];
  result.triangles = comm.bcast_value<std::uint64_t>(0, closed) / 3;
  return result;
}

}  // namespace paralagg::queries

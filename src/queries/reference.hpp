#pragma once

// Sequential reference oracles.
//
// Textbook single-threaded implementations used by the test suite and the
// benchmark harness to validate every distributed result: Dijkstra for
// SSSP, union-find for CC, BFS closure for TC, wedge counting for
// triangles, and an integer-exact Jacobi loop for PageRank (replicating
// the engine's fixed-point arithmetic so results compare with ==).

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "graph/generators.hpp"

namespace paralagg::queries::reference {

using graph::Graph;
using graph::value_t;

/// Multi-source shortest paths: dist[(from, to)] for every reachable pair.
std::map<std::pair<value_t, value_t>, value_t> sssp(
    const Graph& g, const std::vector<value_t>& sources);

/// Longest finite shortest-path distance from any of `sources`.
value_t eccentricity(const Graph& g, const std::vector<value_t>& sources);

/// Component label (smallest member id) for every node incident to an
/// edge; treats the graph as undirected.
std::unordered_map<value_t, value_t> cc_labels(const Graph& g);

/// Number of connected components among edge-incident nodes.
std::uint64_t cc_count(const Graph& g);

/// |transitive closure| of the directed edge set (pairs (x, z), x reaches z
/// in >= 1 step).
std::uint64_t tc_size(const Graph& g);

/// Undirected triangle count (graph is symmetrized internally).
std::uint64_t triangles(const Graph& g);

/// Fixed-point PageRank matching queries::run_pagerank bit-for-bit:
/// `rounds` Jacobi rounds, damping num/den, scale 1e6.  Returns rank per
/// node id.
std::vector<value_t> pagerank(const Graph& g, std::size_t rounds, value_t damping_num = 85,
                              value_t damping_den = 100);

}  // namespace paralagg::queries::reference

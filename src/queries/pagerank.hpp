#pragma once

// PageRank as a recursive aggregate (the RaSQL/SociaLite formulation the
// paper cites; the paper names PageRank as expressible in §I/§II-C):
//
//   outdeg(x, $SUM(1))                  <- edge(x, _).            [stratum 1]
//   edeg(x, y, c)                       <- edge(x, y), outdeg(x, c).
//   rank(y, 0.15 + 0.85 * $SUM(r / c))  <- rank(x, r), edeg(x, y, c).
//                                          (fixed K rounds)       [stratum 2]
//
// Ranks are carried as fixed-point integers (kScale = 1e6).  $SUM is not
// idempotent, so the rank relation runs in AggMode::kRefresh: each round
// the staged contributions are aggregated from scratch and replace the
// stored vector (synchronous Jacobi iteration), and the stratum runs a
// fixed number of rounds instead of detecting a fixpoint.  Communication
// structure is identical to the lattice queries — contributions are routed
// by the independent column and summed in the fused dedup/agg pass.

#include "queries/common.hpp"

namespace paralagg::queries {

inline constexpr value_t kRankScale = 1'000'000;  // fixed-point 1.0

struct PagerankOptions {
  std::size_t rounds = 20;
  /// Damping factor as a rational (default 0.85).
  value_t damping_num = 85, damping_den = 100;
  QueryTuning tuning;
  bool collect_ranks = false;
};

struct PagerankResult {
  std::uint64_t ranked_nodes = 0;
  std::size_t rounds = 0;
  /// Σ ranks / (N * kRankScale); approaches 1 as rounds grow (with the
  /// 1/N-normalized base (1-d)/N folded out, this sanity-checks mass).
  double total_mass = 0;
  core::RunResult run;
  std::vector<Tuple> ranks;  // (node, fixed-point rank); rank 0 only
};

/// Collective.
PagerankResult run_pagerank(vmpi::Comm& comm, const graph::Graph& g,
                            const PagerankOptions& opts);

}  // namespace paralagg::queries

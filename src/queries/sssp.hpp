#pragma once

// Single-source (and multi-source) shortest paths via recursive $MIN
// aggregation — the paper's flagship query (§II-C):
//
//   Spath(n, n, 0)                <- Start(n).
//   Spath(from, to, $MIN(l + n))  <- Spath(from, mid, l), Edge(mid, to, n).
//
// Stored orders (join columns first, dependent column last):
//   edge  = (mid, to, n)           plain, jcc = 1, balanceable
//   spath = (mid*, from, dist)     $MIN,  jcc = 1; * the "to" of the tuple,
//                                  which is next iteration's join key
//
// The aggregation key is (mid*, from) — both independent columns — so every
// partial path to the same (from, to) pair lands on one rank and collapses
// in the fused dedup/aggregation pass with zero extra communication.

#include "queries/common.hpp"

namespace paralagg::queries {

struct SsspOptions {
  std::vector<value_t> sources;  // one entry per start node (multi-source OK)
  QueryTuning tuning;
  /// Gather all (to, from, dist) rows to rank 0 in the result.
  bool collect_distances = false;
};

struct SsspResult {
  std::uint64_t path_count = 0;  // |Spath| at fixpoint (Table II "Paths")
  std::size_t iterations = 0;
  core::RunResult run;
  /// Stored-order rows (to, from, dist); rank 0 only, when requested.
  std::vector<Tuple> distances;
};

/// Collective.
SsspResult run_sssp(vmpi::Comm& comm, const graph::Graph& g, const SsspOptions& opts);

}  // namespace paralagg::queries

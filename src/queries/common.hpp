#pragma once

// Shared helpers for the prebuilt queries.
//
// Queries are SPMD: every rank calls run_<query> with the same graph and
// options; fact loading slices the edge list round-robin by rank so no
// rank needs the whole input resident in relation form.

#include <stdexcept>
#include <string>
#include <vector>

#include "async/async_engine.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace paralagg::queries {

using core::Expr;
using core::Tuple;
using core::value_t;

/// This rank's round-robin slice of the edge list as (src, dst[, weight])
/// tuples.
inline std::vector<Tuple> edge_slice(const vmpi::Comm& comm, const graph::Graph& g,
                                     bool weighted) {
  std::vector<Tuple> out;
  const auto n = static_cast<std::size_t>(comm.size());
  const auto me = static_cast<std::size_t>(comm.rank());
  out.reserve(g.edges.size() / n + 1);
  for (std::size_t i = me; i < g.edges.size(); i += n) {
    const auto& e = g.edges[i];
    if (weighted) {
      out.push_back(Tuple{e.src, e.dst, e.weight});
    } else {
      out.push_back(Tuple{e.src, e.dst});
    }
  }
  return out;
}

/// This rank's slice of the node-id range [0, num_nodes) as unary tuples.
inline std::vector<Tuple> node_slice(const vmpi::Comm& comm, std::uint64_t num_nodes) {
  std::vector<Tuple> out;
  const auto n = static_cast<std::uint64_t>(comm.size());
  const auto me = static_cast<std::uint64_t>(comm.rank());
  for (std::uint64_t v = me; v < num_nodes; v += n) out.push_back(Tuple{v});
  return out;
}

/// Engine + relation-layout knobs shared by the graph queries; defaults
/// match the paper's optimized configuration.
struct QueryTuning {
  core::EngineConfig engine;
  /// Initial sub-bucket fan-out of the (skew-prone) edge relation; the
  /// paper's default is 8 per rank for input relations.
  int edge_sub_buckets = 1;
  /// Mark the edge relation balanceable so the spatial balancer may raise
  /// its fan-out when it detects skew.
  bool balance_edges = true;

  /// Run the recursive strata on async::AsyncEngine (nonblocking delta
  /// propagation, Safra termination) instead of the BSP core::Engine.
  /// Non-idempotent refresh aggregates (PageRank's $SUM) additionally
  /// need async.ssp — the stale-synchronous epoch pipeline whose
  /// per-(source, epoch) ledger restores exactly-once folding; without
  /// it, and for programs no async schedule can run soundly, throws
  /// async::UnsupportedProgramError naming every violation once.
  bool use_async = false;
  async::AsyncConfig async;

  /// Restart from this checkpoint manifest instead of running from
  /// scratch (core::Engine::resume; see engine.checkpoint_every /
  /// engine.checkpoint_path for writing one).  BSP engine only.
  std::string resume_manifest;

  /// The paper's RQ1 baseline: no balancing, fixed join order.
  static QueryTuning baseline() {
    QueryTuning t;
    t.engine = core::baseline_config();
    t.balance_edges = false;
    return t;
  }
};

/// Execute `program` on the engine the tuning selects.  Collective.
inline core::RunResult run_engine(vmpi::Comm& comm, core::Program& program,
                                  const QueryTuning& tuning) {
  if (tuning.use_async) {
    if (!tuning.resume_manifest.empty()) {
      throw std::invalid_argument(
          "async engine: checkpoint resume is a BSP-engine feature "
          "(iteration boundaries are its restart points)");
    }
    async::AsyncEngine engine(comm, tuning.async);
    return engine.run(program);
  }
  core::Engine engine(comm, tuning.engine);
  if (!tuning.resume_manifest.empty()) return engine.resume(program, tuning.resume_manifest);
  return engine.run(program);
}

}  // namespace paralagg::queries

#include "queries/sssp.hpp"

#include "core/program.hpp"

namespace paralagg::queries {

SsspResult run_sssp(vmpi::Comm& comm, const graph::Graph& g, const SsspOptions& opts) {
  core::Program program(comm);

  auto* edge = program.relation({
      .name = "edge",
      .arity = 3,
      .jcc = 1,
      .sub_buckets = opts.tuning.edge_sub_buckets,
      .balanceable = opts.tuning.balance_edges,
  });
  auto* spath = program.relation({
      .name = "spath",
      .arity = 3,
      .jcc = 1,
      .dep_arity = 1,
      .aggregator = core::make_min_aggregator(),
  });

  auto& stratum = program.stratum();
  stratum.loop_rules.push_back(core::JoinRule{
      .a = spath,
      .a_version = core::Version::kDelta,
      .b = edge,
      .b_version = core::Version::kFull,
      // new spath row, stored order (to, from, l + n)
      .out = {.target = spath,
              .cols = {Expr::col_b(1), Expr::col_a(1),
                       Expr::add(Expr::col_a(2), Expr::col_b(2))}},
  });

  edge->load_facts(edge_slice(comm, g, /*weighted=*/true));

  // Seed Spath(n, n, 0) for each start node; rank 0 contributes them all
  // (load_facts routes each to its owner).
  std::vector<Tuple> seeds;
  if (comm.rank() == 0) {
    seeds.reserve(opts.sources.size());
    for (value_t s : opts.sources) seeds.push_back(Tuple{s, s, 0});
  }
  spath->load_facts(seeds);

  SsspResult result;
  result.run = run_engine(comm, program, opts.tuning);
  result.iterations = result.run.total_iterations;
  // Faulted world: no further collectives are possible, return the abort.
  if (result.run.aborted_fault) return result;
  result.path_count = spath->global_size(core::Version::kFull);
  if (opts.collect_distances) result.distances = spath->gather_to_root(0);
  return result;
}

}  // namespace paralagg::queries

#include "queries/sssp.hpp"

#include "queries/programs.hpp"

namespace paralagg::queries {

SsspResult run_sssp(vmpi::Comm& comm, const graph::Graph& g, const SsspOptions& opts) {
  SsspProgram p =
      build_sssp_program(comm, opts.tuning.edge_sub_buckets, opts.tuning.balance_edges);
  load_sssp_facts(p, g, opts.sources);

  SsspResult result;
  result.run = run_engine(comm, *p.program, opts.tuning);
  result.iterations = result.run.total_iterations;
  // Faulted world: no further collectives are possible, return the abort.
  if (result.run.aborted_fault) return result;
  result.path_count = p.spath->global_size(core::Version::kFull);
  if (opts.collect_distances) result.distances = p.spath->gather_to_root(0);
  return result;
}

}  // namespace paralagg::queries

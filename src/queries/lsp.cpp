#include "queries/lsp.hpp"

#include "core/program.hpp"

namespace paralagg::queries {

LspResult run_lsp(vmpi::Comm& comm, const graph::Graph& g, const LspOptions& opts) {
  core::Program program(comm);

  auto* edge = program.relation({
      .name = "edge",
      .arity = 3,
      .jcc = 1,
      .sub_buckets = opts.tuning.edge_sub_buckets,
      .balanceable = opts.tuning.balance_edges,
  });
  auto* spath = program.relation({
      .name = "spath",
      .arity = 3,
      .jcc = 1,
      .dep_arity = 1,
      .aggregator = core::make_min_aggregator(),
  });
  // SpNorm is a *plain* relation: it remembers every row ever copied into
  // it — that is what makes the leaky plan observable.
  auto* spnorm = program.relation({.name = "spnorm", .arity = 3, .jcc = 1});
  auto* lsp = program.relation({
      .name = "lsp",
      .arity = 2,
      .jcc = 1,
      .dep_arity = 1,
      .aggregator = core::make_max_aggregator(),
  });

  const core::JoinRule sssp_rule{
      .a = spath,
      .a_version = core::Version::kDelta,
      .b = edge,
      .b_version = core::Version::kFull,
      .out = {.target = spath,
              .cols = {Expr::col_b(1), Expr::col_a(1),
                       Expr::add(Expr::col_a(2), Expr::col_b(2))}},
  };
  const core::CopyRule norm_from_delta{
      .src = spath,
      .version = core::Version::kDelta,
      .out = {.target = spnorm,
              .cols = {Expr::col_a(0), Expr::col_a(1), Expr::col_a(2)}},
  };
  const core::CopyRule norm_from_full{
      .src = spath,
      .version = core::Version::kFull,
      .out = {.target = spnorm,
              .cols = {Expr::col_a(0), Expr::col_a(1), Expr::col_a(2)}},
  };

  auto& fix = program.stratum();
  fix.loop_rules.push_back(sssp_rule);
  if (opts.plan == LspPlan::kLeaky) {
    // Anti-pattern: observe the delta inside the fixpoint.  Transient
    // lengths leak into SpNorm before $MIN can purge them.
    fix.loop_rules.push_back(norm_from_delta);
  }

  // Init rules within one stratum all read pre-stratum state, so the
  // normalize -> aggregate chain needs two strata.
  if (opts.plan == LspPlan::kStratified) {
    auto& normalize = program.stratum();
    normalize.init_rules.push_back(norm_from_full);
  }
  auto& aggregate = program.stratum();
  aggregate.init_rules.push_back(core::CopyRule{
      .src = spnorm,
      .version = core::Version::kFull,
      .out = {.target = lsp, .cols = {Expr::constant(0), Expr::col_a(2)}},
  });

  edge->load_facts(edge_slice(comm, g, /*weighted=*/true));
  std::vector<Tuple> seeds;
  if (comm.rank() == 0) {
    for (value_t s : opts.sources) seeds.push_back(Tuple{s, s, 0});
  }
  spath->load_facts(seeds);

  LspResult result;
  result.run = run_engine(comm, program, opts.tuning);
  result.iterations = result.run.total_iterations;
  // Faulted world: no further collectives are possible, return the abort.
  if (result.run.aborted_fault) return result;
  result.spath_count = spath->global_size(core::Version::kFull);
  result.spnorm_count = spnorm->global_size(core::Version::kFull);

  const auto rows = lsp->gather_to_root(0);
  value_t longest = 0;
  if (comm.rank() == 0 && !rows.empty()) longest = rows.front()[1];
  result.longest = comm.bcast_value<value_t>(0, longest);
  return result;
}

}  // namespace paralagg::queries

#pragma once

// Transitive closure — plain Datalog, no aggregation (paper §II-A):
//
//   Path(x, y) <- Edge(x, y).
//   Path(x, z) <- Path(x, y), Edge(y, z).
//
// Stored orders (join column first):
//   edge = (y, z)   jcc = 1
//   path = (y, x)   jcc = 1  — indexed on its *second* declared column,
//                              because that is what the recursion joins on
//
// Included as the baseline expressiveness check: PARALAGG strictly extends
// BPRA, so vanilla Datalog must still run (and its materialization cost
// motivates recursive aggregation — see the Lsp ablation).

#include "queries/common.hpp"

namespace paralagg::queries {

struct TcOptions {
  QueryTuning tuning;
  bool collect_pairs = false;
};

struct TcResult {
  std::uint64_t path_count = 0;
  std::size_t iterations = 0;
  core::RunResult run;
  std::vector<Tuple> pairs;  // stored-order (y, x) = path x -> y; rank 0 only
};

/// Collective.
TcResult run_tc(vmpi::Comm& comm, const graph::Graph& g, const TcOptions& opts);

}  // namespace paralagg::queries

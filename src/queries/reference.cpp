#include "queries/reference.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace paralagg::queries::reference {

namespace {

using Adjacency = std::unordered_map<value_t, std::vector<std::pair<value_t, value_t>>>;

Adjacency adjacency(const Graph& g, bool symmetrize) {
  Adjacency adj;
  for (const auto& e : g.edges) {
    adj[e.src].emplace_back(e.dst, e.weight);
    if (symmetrize) adj[e.dst].emplace_back(e.src, e.weight);
  }
  return adj;
}

}  // namespace

std::map<std::pair<value_t, value_t>, value_t> sssp(const Graph& g,
                                                    const std::vector<value_t>& sources) {
  const auto adj = adjacency(g, /*symmetrize=*/false);
  std::map<std::pair<value_t, value_t>, value_t> out;
  for (const value_t s : sources) {
    std::unordered_map<value_t, value_t> dist;
    using Item = std::pair<value_t, value_t>;  // (distance, node)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[s] = 0;
    pq.emplace(0, s);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      const auto it = dist.find(u);
      if (it != dist.end() && it->second < d) continue;
      const auto au = adj.find(u);
      if (au == adj.end()) continue;
      for (const auto& [v, w] : au->second) {
        const value_t nd = d + w;
        const auto dv = dist.find(v);
        if (dv == dist.end() || nd < dv->second) {
          dist[v] = nd;
          pq.emplace(nd, v);
        }
      }
    }
    for (const auto& [node, d] : dist) out[{s, node}] = d;
  }
  return out;
}

value_t eccentricity(const Graph& g, const std::vector<value_t>& sources) {
  value_t longest = 0;
  for (const auto& [pair, d] : sssp(g, sources)) {
    (void)pair;
    longest = std::max(longest, d);
  }
  return longest;
}

namespace {

class UnionFind {
 public:
  value_t find(value_t x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    value_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const value_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  void unite(value_t a, value_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Smaller id wins the root, so roots coincide with $MIN labels.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

  [[nodiscard]] const std::unordered_map<value_t, value_t>& nodes() const { return parent_; }

 private:
  std::unordered_map<value_t, value_t> parent_;
};

}  // namespace

std::unordered_map<value_t, value_t> cc_labels(const Graph& g) {
  UnionFind uf;
  for (const auto& e : g.edges) uf.unite(e.src, e.dst);
  std::unordered_map<value_t, value_t> labels;
  for (const auto& [node, ignored] : uf.nodes()) {
    (void)ignored;
    labels[node] = uf.find(node);
  }
  return labels;
}

std::uint64_t cc_count(const Graph& g) {
  const auto labels = cc_labels(g);
  std::set<value_t> reps;
  for (const auto& [node, label] : labels) {
    (void)node;
    reps.insert(label);
  }
  return reps.size();
}

std::uint64_t tc_size(const Graph& g) {
  const auto adj = adjacency(g, /*symmetrize=*/false);
  std::uint64_t pairs = 0;
  for (const auto& [start, ignored] : adj) {
    (void)ignored;
    std::set<value_t> seen;
    std::vector<value_t> stack;
    stack.push_back(start);
    while (!stack.empty()) {
      const value_t u = stack.back();
      stack.pop_back();
      const auto au = adj.find(u);
      if (au == adj.end()) continue;
      for (const auto& [v, w] : au->second) {
        (void)w;
        if (seen.insert(v).second) stack.push_back(v);
      }
    }
    pairs += seen.size();
  }
  return pairs;
}

std::uint64_t triangles(const Graph& g) {
  // Build the simple undirected neighbour sets.
  std::unordered_map<value_t, std::set<value_t>> nbr;
  for (const auto& e : g.edges) {
    if (e.src == e.dst) continue;
    nbr[e.src].insert(e.dst);
    nbr[e.dst].insert(e.src);
  }
  std::uint64_t count = 0;
  for (const auto& [u, us] : nbr) {
    for (const value_t v : us) {
      if (v <= u) continue;
      for (const value_t w : nbr[v]) {
        if (w <= v) continue;
        if (us.contains(w)) ++count;
      }
    }
  }
  return count;
}

std::vector<value_t> pagerank(const Graph& g, std::size_t rounds, value_t damping_num,
                              value_t damping_den) {
  constexpr value_t kScale = 1'000'000;
  const value_t base = kScale * (damping_den - damping_num) / damping_den;

  // Distinct out-neighbours (the engine's edge relation is a set).
  std::unordered_map<value_t, std::set<value_t>> out_nbrs;
  for (const auto& e : g.edges) out_nbrs[e.src].insert(e.dst);

  std::vector<value_t> rank(g.num_nodes, 0);
  std::vector<value_t> next(g.num_nodes, 0);
  for (std::size_t round = 0; round < rounds; ++round) {
    std::fill(next.begin(), next.end(), base);
    for (const auto& [x, nbrs] : out_nbrs) {
      if (x >= g.num_nodes) continue;
      const value_t c = nbrs.size();
      // Same integer arithmetic as the engine's Expr tree:
      // mul_div(div(r, c), num, den) with a 128-bit intermediate.
      __extension__ typedef unsigned __int128 u128;
      const auto share =
          static_cast<value_t>(static_cast<u128>(rank[x] / c) * damping_num / damping_den);
      for (const value_t y : nbrs) {
        if (y < g.num_nodes) next[y] += share;
      }
    }
    std::swap(rank, next);
  }
  return rank;
}

}  // namespace paralagg::queries::reference

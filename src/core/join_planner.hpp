#pragma once

// Dynamic join planning (paper §IV-D, Algorithm 1).
//
// Before each iteration's join, every rank votes for the relation it would
// rather serialize and ship (the smaller of its two local partitions); a
// single-integer MPI_Allreduce tallies the votes, and the majority choice
// becomes the *outer* relation on every rank.  The inner relation stays in
// its B-tree and is probed in O(log n).

#include <cstdint>

#include "vmpi/comm.hpp"

namespace paralagg::core {

enum class JoinOrderPolicy : std::uint8_t {
  kDynamic,      // Algorithm 1: per-iteration majority vote
  kFixedAOuter,  // always ship side A (baseline knob)
  kFixedBOuter,  // always ship side B (baseline knob)
};

struct PlanDecision {
  bool a_outer;          // true: side A is serialized and shipped
  int votes_for_a;       // ranks preferring A as outer (dynamic only)
  bool voted;            // false when the policy was fixed
};

/// Collective.  `a_local_size` / `b_local_size` are this rank's partition
/// sizes for the two join sides.
PlanDecision plan_join_order(vmpi::Comm& comm, JoinOrderPolicy policy,
                             std::size_t a_local_size, std::size_t b_local_size);

}  // namespace paralagg::core

#include "core/balancer.hpp"

#include <algorithm>

#include "core/phase_scope.hpp"

namespace paralagg::core {

namespace {

double imbalance_of(const std::vector<std::uint64_t>& sizes) {
  std::uint64_t total = 0, biggest = 0;
  for (auto s : sizes) {
    total += s;
    biggest = std::max(biggest, s);
  }
  if (total == 0) return 1.0;
  const double avg = static_cast<double>(total) / static_cast<double>(sizes.size());
  return static_cast<double>(biggest) / avg;
}

}  // namespace

double measure_imbalance(vmpi::Comm& comm, const Relation& rel) {
  const auto sizes =
      comm.allgather<std::uint64_t>(rel.local_size(Version::kFull));
  return imbalance_of(sizes);
}

BalanceDecision balance_relation(vmpi::Comm& comm, RankProfile& profile, Relation& rel,
                                 const BalanceConfig& cfg) {
  BalanceDecision d;
  d.sub_buckets_after = rel.sub_buckets();

  // A relation that can never rebalance must not pay the measurement
  // allgather either: the early-out is computed from purely local state, so
  // skipping the collective is symmetric across ranks.
  if (!cfg.enabled || !rel.config().balanceable || rel.sub_buckets() >= cfg.target_sub_buckets) {
    return d;
  }

  PhaseScope scope(comm, profile, Phase::kBalance);
  const auto sizes = comm.allgather<std::uint64_t>(rel.local_size(Version::kFull));
  d.imbalance = imbalance_of(sizes);

  // Every rank computed the same sizes vector, hence the same decision — no
  // extra coordination round needed.
  if (d.imbalance <= cfg.imbalance_threshold) return d;

  d.bytes_moved = rel.reshuffle_to_sub_buckets(cfg.target_sub_buckets);
  d.rebalanced = true;
  d.sub_buckets_after = rel.sub_buckets();
  // Charge the phase with what the reshuffle actually did — tuples moved —
  // not with however much of the relation happened to live here afterwards.
  profile.add_work(Phase::kBalance, d.bytes_moved / sizeof(value_t));
  return d;
}

}  // namespace paralagg::core

#include "core/balancer.hpp"

#include <algorithm>

#include "core/phase_scope.hpp"

namespace paralagg::core {

namespace {

double imbalance_of(const std::vector<std::uint64_t>& sizes) {
  std::uint64_t total = 0, biggest = 0;
  for (auto s : sizes) {
    total += s;
    biggest = std::max(biggest, s);
  }
  if (total == 0) return 1.0;
  const double avg = static_cast<double>(total) / static_cast<double>(sizes.size());
  return static_cast<double>(biggest) / avg;
}

}  // namespace

double measure_imbalance(vmpi::Comm& comm, const Relation& rel) {
  const auto sizes =
      comm.allgather<std::uint64_t>(rel.local_size(Version::kFull));
  return imbalance_of(sizes);
}

BalanceDecision balance_relation(vmpi::Comm& comm, RankProfile& profile, Relation& rel,
                                 const BalanceConfig& cfg) {
  BalanceDecision d;
  d.sub_buckets_after = rel.sub_buckets();

  PhaseScope scope(comm, profile, Phase::kBalance);
  const auto sizes = comm.allgather<std::uint64_t>(rel.local_size(Version::kFull));
  d.imbalance = imbalance_of(sizes);

  const bool want = rel.config().balanceable && cfg.enabled &&
                    d.imbalance > cfg.imbalance_threshold &&
                    rel.sub_buckets() < cfg.target_sub_buckets;
  // Every rank computed the same sizes vector, hence the same decision — no
  // extra coordination round needed.
  if (!want) return d;

  d.bytes_moved = rel.reshuffle_to_sub_buckets(cfg.target_sub_buckets);
  d.rebalanced = true;
  d.sub_buckets_after = rel.sub_buckets();
  profile.add_work(Phase::kBalance, rel.local_size(Version::kFull));
  return d;
}

}  // namespace paralagg::core

#include "core/balancer.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "core/phase_scope.hpp"
#include "vmpi/serialize.hpp"

namespace paralagg::core {

namespace {

double imbalance_of(std::span<const std::uint64_t> sizes) {
  std::uint64_t total = 0, biggest = 0;
  for (auto s : sizes) {
    total += s;
    biggest = std::max(biggest, s);
  }
  if (total == 0) return 1.0;
  const double avg = static_cast<double>(total) / static_cast<double>(sizes.size());
  return static_cast<double>(biggest) / avg;
}

/// Pick the fan-out to reshuffle to.  Flat topology: the target, as always.
/// Grouped topology: project every power-of-two candidate up to the target
/// — per-rank sizes it would produce and the intra-/cross-node bytes the
/// move would ship — fold the projections with one allgatherv (every rank
/// folds the same vector, so every rank decides identically), and commit
/// to the cheapest candidate that clears the threshold.  Collective iff
/// the topology is grouped.
int plan_fanout(vmpi::Comm& comm, Relation& rel, const BalanceConfig& cfg) {
  const auto& topo = comm.topology();
  if (topo.flat()) return cfg.target_sub_buckets;

  std::vector<int> candidates;
  for (int s = rel.sub_buckets() * 2; s < cfg.target_sub_buckets; s *= 2) {
    candidates.push_back(s);
  }
  candidates.push_back(cfg.target_sub_buckets);

  const auto n = static_cast<std::size_t>(comm.size());
  const int me = comm.rank();
  // Per candidate: n projected per-rank tuple counts, then the bytes this
  // rank would ship intra-node and cross-node.
  const std::size_t words = n + 2;
  std::vector<std::uint64_t> local(candidates.size() * words, 0);
  rel.tree(Version::kFull).for_each([&](std::span<const value_t> t) {
    if (rel.key_is_hot(t)) {
      // Hot rows keep their H2 spread placement under any fan-out
      // (Relation::route_rank ignores sub_buckets for them), so project
      // them as immovable at this rank.
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        local[c * words + static_cast<std::size_t>(me)] += 1;
      }
      return;
    }
    const auto bucket = rel.bucket_of(t);
    const auto bytes = static_cast<std::uint64_t>(t.size() * sizeof(value_t));
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const int cand = candidates[c];
      const int dst = rel.rank_for(bucket, rel.sub_bucket_for(t, cand), cand);
      auto* row = &local[c * words];
      row[static_cast<std::size_t>(dst)] += 1;
      if (dst != me) row[n + (topo.same_node(me, dst) ? 0 : 1)] += bytes;
    }
  });

  std::vector<std::uint64_t> global(local.size(), 0);
  for (const auto& buf : comm.allgatherv(std::as_bytes(std::span(local)))) {
    vmpi::BufferReader r(buf);
    for (auto& g : global) g += r.get<std::uint64_t>();
  }

  int chosen = cfg.target_sub_buckets;  // fallback: maximum spread, old behaviour
  double best_cost = std::numeric_limits<double>::infinity();
  std::uint64_t best_cross = 0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const std::span<const std::uint64_t> row(&global[c * words], words);
    if (imbalance_of(row.subspan(0, n)) > cfg.imbalance_threshold) continue;
    const std::uint64_t intra = row[n], cross = row[n + 1];
    const double cost =
        static_cast<double>(intra) + topo.cross_cost_ratio * static_cast<double>(cross);
    const bool better = cost < best_cost ||
                        (cost == best_cost && cross < best_cross) ||
                        (cost == best_cost && cross == best_cross &&
                         candidates[c] < chosen);
    if (better) {
      chosen = candidates[c];
      best_cost = cost;
      best_cross = cross;
    }
  }
  return chosen;
}

}  // namespace

std::vector<std::uint64_t> gather_full_sizes(vmpi::Comm& comm, const Relation& rel) {
  return comm.allgather<std::uint64_t>(rel.local_size(Version::kFull));
}

double measure_imbalance(vmpi::Comm& comm, const Relation& rel) {
  return imbalance_of(gather_full_sizes(comm, rel));
}

BalanceDecision balance_relation(vmpi::Comm& comm, RankProfile& profile, Relation& rel,
                                 const BalanceConfig& cfg,
                                 const std::vector<std::uint64_t>* pre_gathered) {
  BalanceDecision d;
  d.sub_buckets_after = rel.sub_buckets();

  // A relation that can never rebalance must not pay the measurement
  // allgather either: the early-out is computed from purely local state, so
  // skipping the collective is symmetric across ranks.
  if (!cfg.enabled || !rel.config().balanceable || rel.sub_buckets() >= cfg.target_sub_buckets) {
    return d;
  }

  PhaseScope scope(comm, profile, Phase::kBalance);
  const std::vector<std::uint64_t> sizes =
      pre_gathered != nullptr ? *pre_gathered : gather_full_sizes(comm, rel);
  d.imbalance = imbalance_of(sizes);

  // Every rank computed the same sizes vector, hence the same decision — no
  // extra coordination round needed.
  if (d.imbalance <= cfg.imbalance_threshold) return d;

  d.bytes_moved = rel.reshuffle_to_sub_buckets(plan_fanout(comm, rel, cfg),
                                               &d.cross_bytes_moved);
  d.rebalanced = true;
  d.sub_buckets_after = rel.sub_buckets();
  // Charge the phase with what the reshuffle actually did — tuples moved —
  // not with however much of the relation happened to live here afterwards.
  profile.add_work(Phase::kBalance, d.bytes_moved / sizeof(value_t));
  return d;
}

}  // namespace paralagg::core

#pragma once

// Heavy-hitter detection for skew-optimal join routing (ROADMAP skew item;
// Ketsman–Suciu–Tao / Beame–Koutris–Suciu style hybrid plans, PAPERS.md).
//
// Hash-partitioned exchange is communication-optimal only under near-uniform
// key frequencies.  Sub-bucket splitting (the paper's §IV-C balancer) spreads
// a skewed bucket's *storage*, but the probe side then replicates every
// outer row to all sub-buckets, so one super-hub key still concentrates join
// work — or, for relations the balancer may not touch, never spreads at all.
//
// The remedy is per-key, not per-bucket: derive the current heavy hitters
// from the delta histogram, MOVE the heavy relation's rows for those keys
// across all ranks (H2 over the non-join independent columns, so equal-key
// aggregate folds still collide), and BROADCAST the light side's probe rows
// for hot keys so every rank joins its share.  Everything below the
// threshold keeps the uniform hash-partitioned path.
//
// Agreement protocol (every rank must compute the *identical* hot set, or
// the collectives that follow deadlock or misroute):
//   1. each rank histograms its local delta by join-key prefix,
//   2. nominates its top `max_candidates_per_rank` entries, ordered by
//      (count desc, key asc),
//   3. one allgatherv of (count, key) records — rank-ordered and identical
//      on every rank by vmpi's determinism guarantee,
//   4. every rank folds the same gathered vector with fold_hot_candidates:
//      sum per key, keep counts >= hot_threshold, order by (count desc,
//      key asc), truncate to max_hot_keys.
// Detection is a pure function of the gathered records: no hysteresis, no
// local state.  A borderline key whose spread-out per-rank counts fall
// under the nomination cap can flap in and out of the hot set across
// iterations; that costs a respread, never correctness (DESIGN.md §13).

#include <cstdint>
#include <utility>
#include <vector>

#include "core/relation.hpp"

namespace paralagg::core {

struct SkewConfig {
  /// Master switch.  Off (default) keeps the engine byte-identical to the
  /// uniform path: no extra collectives, no hot-key layouts.
  bool enabled = false;
  /// Global per-key delta count at or above which a key is a heavy hitter.
  std::uint64_t hot_threshold = 4096;
  /// Hard cap on the hot set (the broadcast side pays O(hot keys)).
  std::size_t max_hot_keys = 16;
  /// Candidates each rank nominates into the agreement exchange.  Must
  /// comfortably exceed max_hot_keys: a hot key whose rows are already
  /// spread contributes ~count/nranks per rank and still has to make every
  /// rank's nomination list to stay hot.
  std::size_t max_candidates_per_rank = 64;
};

/// Heavy-hitter routing activity, accumulated per rank by the engine and
/// reduced into RunResult::skew (detections / hot_iterations by max,
/// row counts by sum).
struct SkewStats {
  std::uint64_t detections = 0;      // detect_hot_keys collectives run
  std::uint64_t hot_iterations = 0;  // iterations with a non-empty hot set
  std::uint64_t respread_rows = 0;   // rows moved by hot-set switches
  std::uint64_t broadcast_rows = 0;  // probe rows broadcast for hot keys
};

/// One nominated heavy-hitter candidate: the join-key prefix and the delta
/// rows counted for it (per rank before the fold, global after).
using HotCandidate = std::pair<Tuple, std::uint64_t>;

/// The deterministic fold at the heart of the agreement protocol: sum
/// counts per key, keep keys whose global count reaches cfg.hot_threshold,
/// order by (count desc, key asc), truncate to cfg.max_hot_keys.  Pure —
/// every rank folding the same candidate vector gets the same hot set.
/// Exposed for the adversarial-histogram unit tests.
[[nodiscard]] std::vector<Tuple> fold_hot_candidates(
    const std::vector<HotCandidate>& candidates, const SkewConfig& cfg);

/// Derive `rel`'s current hot set from its delta histogram.  Collective
/// (one allgatherv of nominated (count, key) records); returns the
/// identical key vector on every rank.  The caller decides whether to
/// adopt it (Relation::adopt_hot_keys).
[[nodiscard]] std::vector<Tuple> detect_hot_keys(vmpi::Comm& comm, const Relation& rel,
                                                 const SkewConfig& cfg);

}  // namespace paralagg::core

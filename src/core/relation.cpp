#include "core/relation.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "vmpi/crc32.hpp"

namespace paralagg::core {

Relation::Relation(vmpi::Comm& comm, RelationConfig cfg)
    : comm_(&comm),
      cfg_(std::move(cfg)),
      num_buckets_(static_cast<std::uint32_t>(comm.size())),
      sub_buckets_(cfg_.sub_buckets),
      full_(cfg_.arity, cfg_.arity - cfg_.dep_arity),
      delta_(cfg_.arity, cfg_.arity - cfg_.dep_arity) {
  validate_config();
  // A relation with no non-join independent columns has nothing for H2 to
  // hash; sub-bucketing cannot apply (all tuples of a bucket would land in
  // sub-bucket 0 anyway).
  if (effective_sub_cols() == 0) sub_buckets_ = 1;
}

void Relation::validate_config() const {
  if (cfg_.arity == 0) throw std::invalid_argument(cfg_.name + ": arity must be positive");
  if (cfg_.jcc == 0 || cfg_.jcc > cfg_.arity) {
    throw std::invalid_argument(cfg_.name + ": jcc out of range");
  }
  if (cfg_.dep_arity >= cfg_.arity) {
    throw std::invalid_argument(cfg_.name + ": at least one independent column required");
  }
  // The paper's restriction (§III-A): aggregated columns are never joined
  // upon within a fixed point.  Structurally: join columns must lie in the
  // independent prefix.
  if (cfg_.jcc > cfg_.arity - cfg_.dep_arity) {
    throw std::invalid_argument(cfg_.name +
                                ": join columns must not include aggregated columns");
  }
  if (cfg_.dep_arity > 0) {
    if (!cfg_.aggregator) {
      throw std::invalid_argument(cfg_.name + ": aggregated relation needs an aggregator");
    }
    if (cfg_.aggregator->dep_arity() != cfg_.dep_arity) {
      throw std::invalid_argument(cfg_.name + ": aggregator dep_arity mismatch");
    }
  }
  if (cfg_.sub_buckets < 1) throw std::invalid_argument(cfg_.name + ": sub_buckets < 1");
}

std::uint32_t Relation::bucket_of(std::span<const value_t> tuple) const {
  return static_cast<std::uint32_t>(
      storage::hash_columns(tuple.subspan(0, cfg_.jcc), storage::kBucketSeed) % num_buckets_);
}

std::uint32_t Relation::sub_bucket_of(std::span<const value_t> tuple) const {
  return sub_bucket_for(tuple, sub_buckets_);
}

int Relation::rank_of(std::uint32_t bucket, std::uint32_t sub) const {
  return rank_for(bucket, sub, sub_buckets_);
}

std::uint32_t Relation::sub_bucket_for(std::span<const value_t> tuple,
                                       int sub_buckets) const {
  if (sub_buckets == 1) return 0;
  const auto cols = tuple.subspan(cfg_.jcc, effective_sub_cols());
  return static_cast<std::uint32_t>(storage::hash_columns(cols, storage::kSubBucketSeed) %
                                    static_cast<std::uint64_t>(sub_buckets));
}

int Relation::rank_for(std::uint32_t bucket, std::uint32_t sub, int sub_buckets) const {
  const auto n = static_cast<std::uint64_t>(comm_->size());
  return static_cast<int>((static_cast<std::uint64_t>(bucket) *
                               static_cast<std::uint64_t>(sub_buckets) +
                           sub) %
                          n);
}

int Relation::owner_rank(std::span<const value_t> tuple) const {
  return rank_of(bucket_of(tuple), sub_bucket_of(tuple));
}

int Relation::route_rank(std::span<const value_t> tuple) const {
  if (key_is_hot(tuple)) {
    // Hot keys spread by H2 over the full rank range: rank_for with
    // sub_buckets == nranks collapses to the sub-bucket index itself, and
    // dependent columns stay out of H2, so equal-key folds still collide.
    return static_cast<int>(sub_bucket_for(tuple, comm_->size()));
  }
  return owner_rank(tuple);
}

std::uint64_t Relation::adopt_hot_keys(std::vector<Tuple> keys) {
  assert(staged_count() == 0 && "hot-set switches must run between iterations");
  if (effective_sub_cols() == 0) return 0;  // H2 has nothing to spread by

  // Only keys whose hotness *changed* move; a key hot before and after
  // keeps its placement because the spread rank ignores the hot set.
  std::vector<Tuple> changed;
  for (const auto& k : keys) {
    if (hot_set_.count(k) == 0) changed.push_back(k);
  }
  for (const auto& k : hot_keys_) {
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) changed.push_back(k);
  }

  hot_keys_ = std::move(keys);
  hot_set_.clear();
  for (const auto& k : hot_keys_) hot_set_.insert(k);

  const auto n = static_cast<std::size_t>(comm_->size());
  const auto me = comm_->rank();
  std::uint64_t moved = 0;
  for (const Version v : {Version::kFull, Version::kDelta}) {
    std::vector<vmpi::BufferWriter> outgoing(n);
    std::vector<Tuple> moving;
    for (const auto& key : changed) {
      tree(v).scan_prefix(key.view(), [&](std::span<const value_t> t) {
        const int dst = route_rank(t);
        if (dst == me) return;  // already in place under the new layout
        outgoing[static_cast<std::size_t>(dst)].put_span(t);
        moving.emplace_back(t);
      });
    }
    for (const auto& t : moving) tree(v).erase_key(t.view().subspan(0, indep_arity()));
    std::vector<vmpi::Bytes> send(n);
    for (std::size_t d = 0; d < n; ++d) {
      if (d != static_cast<std::size_t>(me)) moved += outgoing[d].size();
      send[d] = outgoing[d].take();
    }
    auto got = comm_->alltoallv(std::move(send));
    for (const auto& buf : got) {
      vmpi::TypedReader<value_t> r(buf);
      while (!r.done()) tree(v).insert(r.take_span(cfg_.arity));
    }
  }
  return moved / (cfg_.arity * sizeof(value_t));
}

void Relation::ranks_of_bucket(std::uint32_t bucket, std::vector<int>& out) const {
  out.clear();
  for (int s = 0; s < sub_buckets_; ++s) {
    const int r = rank_of(bucket, static_cast<std::uint32_t>(s));
    if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
  }
}

void Relation::stage(std::span<const value_t> tuple) {
  assert(tuple.size() == cfg_.arity);
  assert(route_rank(tuple) == comm_->rank() && "tuple staged on the wrong rank");
  if (support_counts_) {
    // Count the derivation event before any same-iteration collapse below.
    ++support_[Tuple(tuple.subspan(0, indep_arity()))];
  }
  if (!aggregated()) {
    staged_set_.insert(Tuple(tuple));
    return;
  }
  // Local aggregation, step one: collapse within-iteration duplicates of a
  // key before they reach the B-tree.
  Tuple key(tuple.subspan(0, indep_arity()));
  const auto dep = tuple.subspan(indep_arity(), cfg_.dep_arity);
  auto [it, inserted] = staged_agg_.try_emplace(std::move(key), Tuple(dep));
  if (!inserted) {
    Tuple merged = it->second;  // copy sized dep_arity
    cfg_.aggregator->partial_agg(it->second.view(), dep, merged.mutable_view());
    it->second = std::move(merged);
  }
}

void Relation::reserve_staging(std::size_t extra) {
  if (aggregated()) {
    staged_agg_.reserve(staged_agg_.size() + extra);
  } else {
    staged_set_.reserve(staged_set_.size() + extra);
  }
}

void Relation::stage_rows(std::span<const value_t> rows) {
  assert(rows.size() % cfg_.arity == 0 && "ragged bulk staging batch");
  reserve_staging(rows.size() / cfg_.arity);
  for (std::size_t i = 0; i < rows.size(); i += cfg_.arity) {
    stage(rows.subspan(i, cfg_.arity));
  }
}

MaterializeResult Relation::materialize() {
  MaterializeResult res;
  delta_.clear();

  if (!aggregated()) {
    res.staged = staged_set_.size();
    for (const auto& t : staged_set_) {
      if (full_.insert(t)) {
        delta_.insert(t);
        ++res.inserted;
      } else {
        ++res.rejected;
      }
    }
    staged_set_.clear();
    res.delta_size = delta_.size();
    return res;
  }

  res.staged = staged_agg_.size();

  if (cfg_.agg_mode == AggMode::kRefresh) {
    // Jacobi-style replacement: the staged aggregates *are* the next state.
    full_.clear();
    for (const auto& [key, dep] : staged_agg_) {
      Tuple row = key;
      for (std::size_t i = 0; i < cfg_.dep_arity; ++i) row.push_back(dep[i]);
      full_.insert(row);
      ++res.inserted;
    }
    staged_agg_.clear();
    res.delta_size = 0;
    return res;
  }

  // Lattice mode: fused dedup/aggregation (paper §IV-A).
  Tuple merged;
  for (const auto& [key, dep] : staged_agg_) {
    const std::span<value_t> cur = full_.find_key(key.view());
    if (cur.empty()) {
      Tuple row = key;
      for (std::size_t i = 0; i < cfg_.dep_arity; ++i) row.push_back(dep[i]);
      delta_.insert(row);
      full_.insert(row);
      ++res.inserted;
      continue;
    }
    const std::span<const value_t> cur_dep = cur.subspan(indep_arity(), cfg_.dep_arity);
    merged.clear();
    for (std::size_t i = 0; i < cfg_.dep_arity; ++i) merged.push_back(cur_dep[i]);
    cfg_.aggregator->partial_agg(cur_dep, dep.view(), merged.mutable_view());
    if (std::equal(merged.view().begin(), merged.view().end(), cur_dep.begin(),
                   cur_dep.end())) {
      ++res.rejected;  // no new information: never enters delta, never moves
      continue;
    }
    // Lattice law: cur ⊔ x must sit above cur.  A violating aggregator
    // would break termination, so catch it in debug builds.
    assert(cfg_.aggregator->partial_cmp(cur_dep, merged.view()) == PartialOrder::kLess);
    // In-place payload rewrite through the mutable find_key span; the key
    // columns stay untouched so the tree stays ordered.
    std::copy(merged.view().begin(), merged.view().end(),
              cur.subspan(indep_arity(), cfg_.dep_arity).begin());
    delta_.insert(std::span<const value_t>(cur));
    ++res.updated;
  }
  staged_agg_.clear();
  res.delta_size = delta_.size();
  return res;
}

void Relation::reset() {
  full_.clear();
  delta_.clear();
  staged_set_.clear();
  staged_agg_.clear();
  support_.clear();
  hot_keys_.clear();
  hot_set_.clear();
}

Relation::LocalSnapshot Relation::snapshot() const {
  assert(staged_set_.empty() && staged_agg_.empty() &&
         "snapshot is only legal between iterations");
  LocalSnapshot s;
  s.full.reserve(full_.size() * cfg_.arity);
  full_.for_each([&](std::span<const value_t> row) {
    s.full.insert(s.full.end(), row.begin(), row.end());
  });
  s.delta.reserve(delta_.size() * cfg_.arity);
  delta_.for_each([&](std::span<const value_t> row) {
    s.delta.insert(s.delta.end(), row.begin(), row.end());
  });
  s.support.assign(support_.begin(), support_.end());
  return s;
}

void Relation::restore(const LocalSnapshot& snap) {
  full_.clear();
  delta_.clear();
  staged_set_.clear();
  staged_agg_.clear();
  for (std::size_t off = 0; off < snap.full.size(); off += cfg_.arity) {
    full_.insert(std::span<const value_t>{snap.full.data() + off, cfg_.arity});
  }
  for (std::size_t off = 0; off < snap.delta.size(); off += cfg_.arity) {
    delta_.insert(std::span<const value_t>{snap.delta.data() + off, cfg_.arity});
  }
  support_.clear();
  support_.reserve(snap.support.size());
  for (const auto& [key, count] : snap.support) support_.emplace(key, count);
}

std::uint64_t Relation::support_of(std::span<const value_t> key) const {
  assert(key.size() == indep_arity());
  const auto it = support_.find(Tuple(key));
  return it == support_.end() ? 0 : it->second;
}

std::uint64_t Relation::support_release(std::span<const value_t> key, std::uint64_t n) {
  assert(key.size() == indep_arity());
  const auto it = support_.find(Tuple(key));
  if (it == support_.end()) return 0;
  it->second = it->second > n ? it->second - n : 0;
  return it->second;
}

Tuple Relation::retract_key(std::span<const value_t> key) {
  assert(key.size() == indep_arity());
  Tuple removed;
  const auto stored = std::as_const(full_).find_key(key);
  if (stored.empty()) return removed;
  removed = Tuple(stored);
  full_.erase_key(key);
  delta_.erase_key(key);  // a same-batch re-derivation may have put it there
  support_.erase(Tuple(key));
  return removed;
}

void Relation::load_facts(std::span<const Tuple> slice) {
  const auto n = static_cast<std::size_t>(comm_->size());
  std::vector<vmpi::BufferWriter> outgoing(n);
  for (const auto& t : slice) {
    assert(t.size() == cfg_.arity);
    outgoing[static_cast<std::size_t>(route_rank(t.view()))].put_span(t.view());
  }
  std::vector<vmpi::Bytes> send(n);
  for (std::size_t d = 0; d < n; ++d) send[d] = outgoing[d].take();
  auto got = comm_->alltoallv(std::move(send));

  for (const auto& buf : got) {
    vmpi::TypedReader<value_t> r(buf);
    stage_rows(r.take_span(r.remaining()));
  }
  materialize();
}

std::uint64_t Relation::global_size(Version v) {
  return comm_->allreduce<std::uint64_t>(local_size(v), vmpi::ReduceOp::kSum);
}

std::vector<Tuple> Relation::gather_to_root(int root) {
  vmpi::BufferWriter w;
  serialize_all(Version::kFull, w);
  const auto mine = w.take();
  auto all = comm_->gatherv(root, mine);

  std::vector<Tuple> out;
  if (comm_->rank() != root) return out;
  std::size_t total = 0;
  for (const auto& buf : all) total += buf.size() / (cfg_.arity * sizeof(value_t));
  out.reserve(total);
  for (const auto& buf : all) {
    vmpi::TypedReader<value_t> r(buf);
    while (!r.done()) out.emplace_back(r.take_span(cfg_.arity));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t Relation::reshuffle_to_sub_buckets(int new_sub_buckets,
                                                 std::uint64_t* cross_bytes) {
  assert(new_sub_buckets >= 1);
  if (cross_bytes != nullptr) *cross_bytes = 0;
  if (effective_sub_cols() == 0) new_sub_buckets = 1;
  const int old_sub = sub_buckets_;
  sub_buckets_ = new_sub_buckets;
  if (old_sub == new_sub_buckets) return 0;

  const auto n = static_cast<std::size_t>(comm_->size());
  const auto me = comm_->rank();
  const auto& topo = comm_->topology();
  std::uint64_t moved_bytes = 0;

  // Re-route both versions under the new mapping.  Delta must survive a
  // mid-fixpoint rebalance, so it travels tagged separately from full.
  for (const Version v : {Version::kFull, Version::kDelta}) {
    std::vector<vmpi::BufferWriter> outgoing(n);
    // route_rank, not owner_rank: hot rows keep their H2 spread placement
    // (independent of sub_buckets_), so a rebalance never disturbs them.
    tree(v).for_each([&](std::span<const value_t> t) {
      outgoing[static_cast<std::size_t>(route_rank(t))].put_span(t);
    });
    std::vector<vmpi::Bytes> send(n);
    for (std::size_t d = 0; d < n; ++d) {
      if (d != static_cast<std::size_t>(me)) {
        moved_bytes += outgoing[d].size();
        if (cross_bytes != nullptr && !topo.same_node(me, static_cast<int>(d))) {
          *cross_bytes += outgoing[d].size();
        }
      }
      send[d] = outgoing[d].take();
    }
    auto got = comm_->alltoallv(std::move(send));

    storage::TupleBTree rebuilt(cfg_.arity, indep_arity());
    for (const auto& buf : got) {
      vmpi::TypedReader<value_t> r(buf);
      while (!r.done()) rebuilt.insert(r.take_span(cfg_.arity));
    }
    tree(v) = std::move(rebuilt);
  }
  return moved_bytes;
}

namespace {

constexpr std::uint64_t kCheckpointMagic = 0x50415241'4c414747ULL;  // "PARALAGG"
constexpr std::uint64_t kCheckpointVersion = 2;
// Header: magic, version, arity, row count, CRC-32 of the row bytes.
constexpr std::size_t kCheckpointHeaderWords = 5;

}  // namespace

void Relation::save_checkpoint(const std::string& path) {
  vmpi::BufferWriter w;
  serialize_all(Version::kFull, w);
  const auto mine = w.take();
  auto all = comm_->gatherv(0, mine);

  if (comm_->rank() == 0) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("checkpoint: cannot open for writing: " + path);
    std::uint64_t count = 0;
    std::uint32_t crc_state = vmpi::kCrc32Init;
    for (const auto& buf : all) {
      count += buf.size() / (cfg_.arity * sizeof(value_t));
      crc_state = vmpi::crc32_update(crc_state, buf);
    }
    const std::uint64_t header[kCheckpointHeaderWords] = {
        kCheckpointMagic, kCheckpointVersion, cfg_.arity, count,
        crc_state ^ vmpi::kCrc32Init};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    for (const auto& buf : all) {
      out.write(reinterpret_cast<const char*>(buf.data()),
                static_cast<std::streamsize>(buf.size()));
    }
    if (!out) throw std::runtime_error("checkpoint: write failed: " + path);
  }
  comm_->barrier();  // nobody returns before the file exists
}

void Relation::load_checkpoint(const std::string& path) {
  // Rank 0 parses and validates the whole file — magic, version, arity,
  // declared count against the actual file size (so a corrupt count can
  // never drive a huge reserve), and the row-byte CRC — before any rank
  // touches its trees.  On any failure every rank throws and the relation
  // is left exactly as it was.
  std::vector<Tuple> rows;
  bool failed = false;
  std::string error;
  if (comm_->rank() == 0) {
    const auto fail = [&](std::string msg) {
      failed = true;
      error = std::move(msg);
    };
    std::ifstream in(path, std::ios::binary);
    std::uint64_t header[kCheckpointHeaderWords] = {};
    if (!in || !in.read(reinterpret_cast<char*>(header), sizeof(header))) {
      fail("checkpoint: cannot read " + path);
    } else if (header[0] != kCheckpointMagic) {
      fail("checkpoint: bad magic in " + path);
    } else if (header[1] != kCheckpointVersion) {
      fail("checkpoint: unsupported version " + std::to_string(header[1]) + " in " + path);
    } else if (header[2] != cfg_.arity) {
      fail("checkpoint: arity mismatch in " + path + " (file " +
           std::to_string(header[2]) + ", relation " + std::to_string(cfg_.arity) + ")");
    } else {
      const std::uint64_t count = header[3];
      const std::uint64_t row_bytes = count * cfg_.arity * sizeof(value_t);
      in.seekg(0, std::ios::end);
      const auto end = in.tellg();
      in.seekg(static_cast<std::streamoff>(sizeof(header)), std::ios::beg);
      if (end < 0 ||
          static_cast<std::uint64_t>(end) != sizeof(header) + row_bytes) {
        fail("checkpoint: file size disagrees with declared row count in " + path);
      } else {
        std::vector<std::byte> body(row_bytes);
        if (row_bytes > 0 &&
            !in.read(reinterpret_cast<char*>(body.data()),
                     static_cast<std::streamsize>(row_bytes))) {
          fail("checkpoint: truncated file " + path);
        } else if (vmpi::crc32(body) != static_cast<std::uint32_t>(header[4])) {
          fail("checkpoint: row data CRC mismatch in " + path);
        } else {
          rows.reserve(count);
          vmpi::TypedReader<value_t> r(body);
          while (!r.done()) rows.emplace_back(r.take_span(cfg_.arity));
        }
      }
    }
  }
  // All ranks must agree on failure before anyone throws, or the others
  // would hang in the scatter.
  if (comm_->allreduce<std::uint8_t>(failed ? 1 : 0, vmpi::ReduceOp::kLor) != 0) {
    throw std::runtime_error(comm_->rank() == 0 ? error : "checkpoint: load failed");
  }

  reset();
  load_facts(rows);  // rank 0 contributes everything; others pass empty
}

void Relation::serialize_all(Version v, vmpi::BufferWriter& w) const {
  tree(v).for_each([&](std::span<const value_t> t) { w.put_span(t); });
}

}  // namespace paralagg::core

#include "core/profile.hpp"

#include <ctime>

#include "vmpi/comm.hpp"

namespace paralagg::core {

double ScopedPhaseTimer::thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

ProfileSummary summarize_profiles(vmpi::Comm& comm, const RankProfile& mine) {
  vmpi::StatsPause pause(comm);  // instrumentation traffic is not "communication"

  // Serialize my history: [iterations, then per iteration the seven arrays
  // plus the two healing scalars].
  const auto& hist = mine.history();
  vmpi::BufferWriter w;
  w.put<std::uint64_t>(hist.size());
  for (const auto& rec : hist) {
    for (double s : rec.cpu_seconds) w.put(s);
    for (std::uint64_t v : rec.work) w.put(v);
    for (std::uint64_t b : rec.bytes) w.put(b);
    for (std::uint64_t b : rec.cross_bytes) w.put(b);
    for (std::uint64_t e : rec.exchanges) w.put(e);
    for (std::uint64_t s : rec.steps) w.put(s);
    for (double s : rec.wait_seconds) w.put(s);
    w.put(rec.retransmits);
    w.put(rec.heal_seconds);
  }
  const auto mine_bytes = w.take();
  auto all = comm.allgatherv(mine_bytes);

  // Parse everyone (ranks may differ in iteration count only if a stratum
  // diverged, which would be a bug; take the max and treat missing
  // iterations as zero).
  const int nranks = comm.size();
  std::vector<std::vector<IterationRecord>> per_rank(static_cast<std::size_t>(nranks));
  std::size_t max_iters = 0;
  for (int r = 0; r < nranks; ++r) {
    vmpi::BufferReader rd(all[static_cast<std::size_t>(r)]);
    const auto n = rd.get<std::uint64_t>();
    auto& recs = per_rank[static_cast<std::size_t>(r)];
    recs.resize(n);
    for (auto& rec : recs) {
      for (auto& s : rec.cpu_seconds) s = rd.get<double>();
      for (auto& v : rec.work) v = rd.get<std::uint64_t>();
      for (auto& b : rec.bytes) b = rd.get<std::uint64_t>();
      for (auto& b : rec.cross_bytes) b = rd.get<std::uint64_t>();
      for (auto& e : rec.exchanges) e = rd.get<std::uint64_t>();
      for (auto& s : rec.steps) s = rd.get<std::uint64_t>();
      for (auto& s : rec.wait_seconds) s = rd.get<double>();
      rec.retransmits = rd.get<std::uint64_t>();
      rec.heal_seconds = rd.get<double>();
    }
    max_iters = recs.size() > max_iters ? recs.size() : max_iters;
  }

  ProfileSummary out;
  out.iterations = max_iters;
  out.ranks = nranks;
  out.per_iteration_max.resize(max_iters);
  out.per_iteration_max_bytes.assign(max_iters, 0);
  out.per_iteration_max_cross_bytes.assign(max_iters, 0);
  out.per_iteration_exchanges.assign(max_iters, 0);
  out.per_iteration_steps.assign(max_iters, 0);
  out.per_iteration_retransmits.assign(max_iters, 0);
  for (std::size_t it = 0; it < max_iters; ++it) {
    auto& row = out.per_iteration_max[it];
    row.fill(0.0);
    std::array<std::uint64_t, kPhaseCount> xch_max{};
    std::array<std::uint64_t, kPhaseCount> step_max{};
    for (int r = 0; r < nranks; ++r) {
      const auto& recs = per_rank[static_cast<std::size_t>(r)];
      if (it >= recs.size()) continue;
      const auto& rec = recs[it];
      out.total_retransmits += rec.retransmits;
      out.total_heal_seconds += rec.heal_seconds;
      out.per_iteration_retransmits[it] += rec.retransmits;
      std::uint64_t rank_bytes = 0;
      std::uint64_t rank_cross = 0;
      std::uint64_t rank_exchanges = 0;
      std::uint64_t rank_steps = 0;
      for (std::size_t p = 0; p < kPhaseCount; ++p) {
        if (rec.cpu_seconds[p] > row[p]) row[p] = rec.cpu_seconds[p];
        out.total_cpu_seconds[p] += rec.cpu_seconds[p];
        out.total_bytes[p] += rec.bytes[p];
        out.total_cross_bytes[p] += rec.cross_bytes[p];
        out.total_wait_seconds[p] += rec.wait_seconds[p];
        if (rec.exchanges[p] > xch_max[p]) xch_max[p] = rec.exchanges[p];
        if (rec.steps[p] > step_max[p]) step_max[p] = rec.steps[p];
        rank_bytes += rec.bytes[p];
        rank_cross += rec.cross_bytes[p];
        rank_exchanges += rec.exchanges[p];
        rank_steps += rec.steps[p];
      }
      if (rank_bytes > out.per_iteration_max_bytes[it]) {
        out.per_iteration_max_bytes[it] = rank_bytes;
      }
      if (rank_cross > out.per_iteration_max_cross_bytes[it]) {
        out.per_iteration_max_cross_bytes[it] = rank_cross;
      }
      if (rank_exchanges > out.per_iteration_exchanges[it]) {
        out.per_iteration_exchanges[it] = rank_exchanges;
      }
      if (rank_steps > out.per_iteration_steps[it]) {
        out.per_iteration_steps[it] = rank_steps;
      }
    }
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      out.modelled_seconds[p] += row[p];
      out.total_exchanges[p] += xch_max[p];
      out.total_steps[p] += step_max[p];
    }
  }
  return out;
}

}  // namespace paralagg::core

#pragma once

// Tiny expression trees for rule heads and filters.
//
// A rule's head constructs an output tuple column-by-column from the two
// joined tuples (sides A and B as written in the rule, independent of
// which side the planner ships).  SSSP's `l + n`, PageRank's
// `r * d / outdeg`, and comparison filters (`y < z`) are all expressible.
// Arithmetic is unsigned 64-bit; fractional quantities use fixed-point
// scaling chosen by the query builder.

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace paralagg::core {

class Expr {
 public:
  enum class Kind : std::uint8_t {
    kColA,    // column idx_ of side A
    kColB,    // column idx_ of side B
    kConst,   // cval_
    kAdd,     // kids[0] + kids[1]
    kSub,     // kids[0] - kids[1] (saturating at 0)
    kMin,
    kMax,
    kMulDiv,  // kids[0] * num_ / den_   (fixed-point scale)
    kDiv,     // kids[0] / kids[1]       (0 when divisor is 0)
    kLess,    // kids[0] < kids[1] ? 1 : 0
    kLessEq,
    kEq,
    kNeq,
    kAnd,     // both nonzero
  };

  static Expr col_a(std::size_t i) { return Expr(Kind::kColA, i); }
  static Expr col_b(std::size_t i) { return Expr(Kind::kColB, i); }
  static Expr constant(value_t v) {
    Expr e(Kind::kConst, 0);
    e.cval_ = v;
    return e;
  }
  static Expr add(Expr x, Expr y) { return binary(Kind::kAdd, std::move(x), std::move(y)); }
  static Expr sub(Expr x, Expr y) { return binary(Kind::kSub, std::move(x), std::move(y)); }
  static Expr min(Expr x, Expr y) { return binary(Kind::kMin, std::move(x), std::move(y)); }
  static Expr max(Expr x, Expr y) { return binary(Kind::kMax, std::move(x), std::move(y)); }
  static Expr div(Expr x, Expr y) { return binary(Kind::kDiv, std::move(x), std::move(y)); }
  static Expr less(Expr x, Expr y) { return binary(Kind::kLess, std::move(x), std::move(y)); }
  static Expr less_eq(Expr x, Expr y) {
    return binary(Kind::kLessEq, std::move(x), std::move(y));
  }
  static Expr eq(Expr x, Expr y) { return binary(Kind::kEq, std::move(x), std::move(y)); }
  static Expr neq(Expr x, Expr y) { return binary(Kind::kNeq, std::move(x), std::move(y)); }
  static Expr logical_and(Expr x, Expr y) {
    return binary(Kind::kAnd, std::move(x), std::move(y));
  }
  /// x * num / den with 128-bit intermediate (fixed-point multiply).
  static Expr mul_div(Expr x, value_t num, value_t den) {
    Expr e(Kind::kMulDiv, 0);
    e.kids_.push_back(std::move(x));
    e.num_ = num;
    e.den_ = den;
    return e;
  }

  [[nodiscard]] value_t eval(std::span<const value_t> a, std::span<const value_t> b) const {
    switch (kind_) {
      case Kind::kColA:
        assert(idx_ < a.size());
        return a[idx_];
      case Kind::kColB:
        assert(idx_ < b.size());
        return b[idx_];
      case Kind::kConst:
        return cval_;
      case Kind::kAdd:
        return kids_[0].eval(a, b) + kids_[1].eval(a, b);
      case Kind::kSub: {
        const value_t x = kids_[0].eval(a, b), y = kids_[1].eval(a, b);
        return x > y ? x - y : 0;
      }
      case Kind::kMin: {
        const value_t x = kids_[0].eval(a, b), y = kids_[1].eval(a, b);
        return x < y ? x : y;
      }
      case Kind::kMax: {
        const value_t x = kids_[0].eval(a, b), y = kids_[1].eval(a, b);
        return x > y ? x : y;
      }
      case Kind::kMulDiv: {
        // 128-bit intermediate so fixed-point scaling cannot overflow.
        __extension__ typedef unsigned __int128 u128;  // GCC/Clang extension
        const auto x = static_cast<u128>(kids_[0].eval(a, b));
        return den_ == 0 ? 0 : static_cast<value_t>(x * num_ / den_);
      }
      case Kind::kDiv: {
        const value_t y = kids_[1].eval(a, b);
        return y == 0 ? 0 : kids_[0].eval(a, b) / y;
      }
      case Kind::kLess:
        return kids_[0].eval(a, b) < kids_[1].eval(a, b) ? 1 : 0;
      case Kind::kLessEq:
        return kids_[0].eval(a, b) <= kids_[1].eval(a, b) ? 1 : 0;
      case Kind::kEq:
        return kids_[0].eval(a, b) == kids_[1].eval(a, b) ? 1 : 0;
      case Kind::kNeq:
        return kids_[0].eval(a, b) != kids_[1].eval(a, b) ? 1 : 0;
      case Kind::kAnd:
        return (kids_[0].eval(a, b) != 0 && kids_[1].eval(a, b) != 0) ? 1 : 0;
    }
    return 0;  // unreachable
  }

  /// Highest side-A (resp. side-B) column index referenced, or -1.
  [[nodiscard]] int max_col_a() const { return max_col(Kind::kColA); }
  [[nodiscard]] int max_col_b() const { return max_col(Kind::kColB); }

  [[nodiscard]] Kind kind() const { return kind_; }
  /// Column index of a kColA / kColB leaf (meaningless for other kinds).
  /// Lets incremental maintenance recognise head shapes like "output key
  /// = side-B column i" without a full expression-compiler round trip.
  [[nodiscard]] std::size_t col_index() const { return idx_; }

 private:
  Expr(Kind k, std::size_t idx) : kind_(k), idx_(idx) {}

  static Expr binary(Kind k, Expr x, Expr y) {
    Expr e(k, 0);
    e.kids_.push_back(std::move(x));
    e.kids_.push_back(std::move(y));
    return e;
  }

  [[nodiscard]] int max_col(Kind which) const {
    int m = kind_ == which ? static_cast<int>(idx_) : -1;
    for (const auto& k : kids_) {
      const int c = k.max_col(which);
      if (c > m) m = c;
    }
    return m;
  }

  Kind kind_;
  std::size_t idx_ = 0;
  value_t cval_ = 0;
  value_t num_ = 1, den_ = 1;
  std::vector<Expr> kids_;
};

}  // namespace paralagg::core

#include "core/aggregator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace paralagg::core {

void RecursiveAggregator::unapply(std::span<const value_t> /*a*/,
                                  std::span<const value_t> /*b*/,
                                  std::span<value_t> /*out*/) const {
  throw std::logic_error(std::string(name()) + ": unapply on a non-invertible aggregate");
}

namespace {

/// Total orders (chains) share everything but the direction of "more
/// information": for $MIN smaller ascends, for $MAX larger ascends.
class ChainAggregator : public RecursiveAggregator {
 public:
  explicit ChainAggregator(bool smaller_wins) : smaller_wins_(smaller_wins) {}

  [[nodiscard]] std::string_view name() const override {
    return smaller_wins_ ? "$MIN" : "$MAX";
  }

  [[nodiscard]] PartialOrder partial_cmp(std::span<const value_t> a,
                                         std::span<const value_t> b) const override {
    assert(a.size() == 1 && b.size() == 1);
    if (a[0] == b[0]) return PartialOrder::kEqual;
    const bool b_wins = smaller_wins_ ? b[0] < a[0] : b[0] > a[0];
    return b_wins ? PartialOrder::kLess : PartialOrder::kGreater;
  }

  void partial_agg(std::span<const value_t> a, std::span<const value_t> b,
                   std::span<value_t> out) const override {
    out[0] = smaller_wins_ ? std::min(a[0], b[0]) : std::max(a[0], b[0]);
  }

 private:
  bool smaller_wins_;
};

class BitOrAggregator : public RecursiveAggregator {
 public:
  [[nodiscard]] std::string_view name() const override { return "$UNION64"; }

  [[nodiscard]] PartialOrder partial_cmp(std::span<const value_t> a,
                                         std::span<const value_t> b) const override {
    if (a[0] == b[0]) return PartialOrder::kEqual;
    if ((a[0] & b[0]) == a[0]) return PartialOrder::kLess;     // a ⊂ b
    if ((a[0] & b[0]) == b[0]) return PartialOrder::kGreater;  // b ⊂ a
    return PartialOrder::kIncomparable;
  }

  void partial_agg(std::span<const value_t> a, std::span<const value_t> b,
                   std::span<value_t> out) const override {
    out[0] = a[0] | b[0];
  }
};

class SumAggregator : public RecursiveAggregator {
 public:
  [[nodiscard]] std::string_view name() const override { return "$SUM"; }
  [[nodiscard]] bool idempotent() const override { return false; }  // a + a != a
  // Addition is commutative + associative, so exactly-once delivery of
  // epoch-tagged partials is enough — and it has a pre-mappable inverse.
  [[nodiscard]] bool exactly_once_capable() const override { return true; }
  [[nodiscard]] bool invertible() const override { return true; }
  void unapply(std::span<const value_t> a, std::span<const value_t> b,
               std::span<value_t> out) const override {
    out[0] = a[0] - b[0];
  }

  [[nodiscard]] PartialOrder partial_cmp(std::span<const value_t> a,
                                         std::span<const value_t> b) const override {
    if (a[0] == b[0]) return PartialOrder::kEqual;
    return a[0] < b[0] ? PartialOrder::kLess : PartialOrder::kGreater;
  }

  void partial_agg(std::span<const value_t> a, std::span<const value_t> b,
                   std::span<value_t> out) const override {
    out[0] = a[0] + b[0];
  }
};

/// Monotonic count: partial results are lower bounds, so ⊔ = max.
class MCountAggregator : public RecursiveAggregator {
 public:
  [[nodiscard]] std::string_view name() const override { return "$MCOUNT"; }

  [[nodiscard]] PartialOrder partial_cmp(std::span<const value_t> a,
                                         std::span<const value_t> b) const override {
    if (a[0] == b[0]) return PartialOrder::kEqual;
    return a[0] < b[0] ? PartialOrder::kLess : PartialOrder::kGreater;
  }

  void partial_agg(std::span<const value_t> a, std::span<const value_t> b,
                   std::span<value_t> out) const override {
    out[0] = std::max(a[0], b[0]);
  }
};

class ArgMinAggregator : public RecursiveAggregator {
 public:
  [[nodiscard]] std::string_view name() const override { return "$ARGMIN"; }
  [[nodiscard]] std::size_t dep_arity() const override { return 2; }

  [[nodiscard]] PartialOrder partial_cmp(std::span<const value_t> a,
                                         std::span<const value_t> b) const override {
    assert(a.size() == 2 && b.size() == 2);
    if (a[0] == b[0] && a[1] == b[1]) return PartialOrder::kEqual;
    // Lexicographic (value, witness) chain: smaller value, then smaller
    // witness, is "more information".
    const bool b_wins = b[0] < a[0] || (b[0] == a[0] && b[1] < a[1]);
    return b_wins ? PartialOrder::kLess : PartialOrder::kGreater;
  }

  void partial_agg(std::span<const value_t> a, std::span<const value_t> b,
                   std::span<value_t> out) const override {
    const bool keep_a = a[0] < b[0] || (a[0] == b[0] && a[1] <= b[1]);
    out[0] = keep_a ? a[0] : b[0];
    out[1] = keep_a ? a[1] : b[1];
  }
};

}  // namespace

AggregatorPtr make_min_aggregator() { return std::make_shared<ChainAggregator>(true); }
AggregatorPtr make_max_aggregator() { return std::make_shared<ChainAggregator>(false); }
AggregatorPtr make_bitor_aggregator() { return std::make_shared<BitOrAggregator>(); }
AggregatorPtr make_sum_aggregator() { return std::make_shared<SumAggregator>(); }
AggregatorPtr make_mcount_aggregator() { return std::make_shared<MCountAggregator>(); }
AggregatorPtr make_argmin_aggregator() { return std::make_shared<ArgMinAggregator>(); }

}  // namespace paralagg::core

#include "core/exchange_router.hpp"

#include <cassert>
#include <unordered_map>

#include "core/phase_scope.hpp"
#include "core/wire.hpp"
#include "vmpi/serialize.hpp"

namespace paralagg::core {

std::vector<vmpi::Bytes> exchange_alltoallv(vmpi::Comm& comm, std::vector<vmpi::Bytes> send,
                                            ExchangeAlgorithm algo) {
  // kHierarchical degrades to the dense matrix here: the two-level path
  // needs the router's combine context to be worth its extra hops, and the
  // intra-bucket shuffles this helper serves have none.
  return algo == ExchangeAlgorithm::kBruck ? comm.alltoallv_bruck(std::move(send))
                                           : comm.alltoallv(std::move(send));
}

ExchangeRouter::ExchangeRouter(vmpi::Comm& comm, bool preaggregate)
    : comm_(&comm), preaggregate_(preaggregate) {}

std::uint32_t ExchangeRouter::add_target(Relation* rel) {
  assert(rel != nullptr);
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i] == rel) return static_cast<std::uint32_t>(i);
  }
  targets_.push_back(rel);
  for (auto& gen : outgoing_) {
    gen.resize(targets_.size() * static_cast<std::size_t>(comm_->size()));
  }
  return static_cast<std::uint32_t>(targets_.size() - 1);
}

void ExchangeRouter::emit(std::uint32_t route_id, std::span<const value_t> row) {
  assert(route_id < targets_.size());
  Relation* rel = targets_[route_id];
  assert(row.size() == rel->arity());
  // route_rank: a row for a hot join key lands on its H2 spread rank so a
  // heavy hitter's derivations fan across all ranks (DESIGN.md §13).
  const int dst = rel->route_rank(row);
  if (rel->key_is_hot(row)) ++hot_routed_rows_;
  if (dst == comm_->rank()) {
    // Loopback fast path: the row never sees a serialization buffer.
    rel->stage(row);
    ++loopback_rows_;
    return;
  }
  auto& rows = bucket(route_id, static_cast<std::size_t>(dst));
  rows.insert(rows.end(), row.begin(), row.end());
  ++pending_rows_;
}

void ExchangeRouter::combine(const Relation& rel, std::vector<value_t>& rows,
                             RouterFlushStats& st) {
  const std::size_t arity = rel.arity();
  if (rows.size() <= arity) return;  // nothing to collapse

  if (!rel.aggregated()) {
    // Plain target: keep the first occurrence of each row.
    std::unordered_map<Tuple, std::size_t, storage::TupleHash> seen;
    std::size_t w = 0;
    for (std::size_t r = 0; r < rows.size(); r += arity) {
      const std::span<const value_t> row(rows.data() + r, arity);
      auto [it, inserted] = seen.try_emplace(Tuple(row), w);
      if (!inserted) {
        ++st.rows_combined;
        continue;
      }
      if (w != r) std::copy(row.begin(), row.end(), rows.begin() + static_cast<std::ptrdiff_t>(w));
      w += arity;
    }
    rows.resize(w);
    return;
  }

  // Aggregated target: fold rows agreeing on the independent columns
  // through the lattice join before they hit the wire (partial partial
  // aggregates).  The destination's staging pass stays correct either way;
  // this only shrinks the exchange.
  const std::size_t ia = rel.indep_arity();
  const std::size_t dep = rel.dep_arity();
  const auto& agg = *rel.config().aggregator;
  std::unordered_map<Tuple, std::size_t, storage::TupleHash> first;  // key -> kept row offset
  std::vector<value_t> scratch(dep);
  std::size_t w = 0;
  for (std::size_t r = 0; r < rows.size(); r += arity) {
    const std::span<const value_t> row(rows.data() + r, arity);
    auto [it, inserted] = first.try_emplace(Tuple(row.first(ia)), w);
    if (inserted) {
      if (w != r) std::copy(row.begin(), row.end(), rows.begin() + static_cast<std::ptrdiff_t>(w));
      w += arity;
      continue;
    }
    // partial_agg's out may alias neither input: stage through scratch.
    value_t* acc = rows.data() + it->second + ia;
    agg.partial_agg(std::span<const value_t>(acc, dep), row.subspan(ia),
                    std::span<value_t>(scratch));
    std::copy(scratch.begin(), scratch.end(), acc);
    ++st.rows_combined;
  }
  rows.resize(w);
}

std::vector<vmpi::Bytes> ExchangeRouter::pack(RouterFlushStats& st) {
  const auto n = static_cast<std::size_t>(comm_->size());
#ifndef NDEBUG
  const auto me = static_cast<std::size_t>(comm_->rank());
#endif
  std::vector<vmpi::Bytes> send(n);
  for (std::size_t d = 0; d < n; ++d) {
    vmpi::TypedWriter<value_t> w;
    for (std::size_t id = 0; id < targets_.size(); ++id) {
      auto& rows = bucket(id, d);
      if (rows.empty()) continue;
      assert(d != me && "self-owned rows take the loopback path");
      const Relation& rel = *targets_[id];
      if (preaggregate_) combine(rel, rows, st);
      const auto count = rows.size() / rel.arity();
      w.put(static_cast<value_t>(id));
      w.put(static_cast<value_t>(count));
      w.put_span(std::span<const value_t>(rows));
      st.rows_sent += count;
    }
    wire::seal_frame(w, static_cast<value_t>(flush_seq_));
    send[d] = w.take();
  }
  ++flush_seq_;
  pending_rows_ = 0;
  return send;
}

void ExchangeRouter::recycle(std::size_t gen) {
  for (auto& rows : outgoing_[gen]) {
    const std::size_t used = rows.size();
    rows.clear();
    // Capacity is retained across flushes: a per-flush shrink_to_fit forced
    // a full reallocation cycle every iteration of every stratum.  Memory
    // goes back only when the bucket is grossly over-provisioned for what
    // it just carried (e.g. the burst of a fixpoint's first iterations).
    if (rows.capacity() > kShrinkFloorValues && used < rows.capacity() / 8) {
      rows.shrink_to_fit();
    }
  }
}

void ExchangeRouter::decode(const std::vector<vmpi::Bytes>& received, RouterFlushStats& st,
                            RankProfile& profile) {
  PhaseScope scope(*comm_, profile, Phase::kDedupAgg);
  for (const auto& buf : received) {
    // Trailer validation (length, CRC, magic) before the zero-copy reader
    // sees a single payload word; FrameDecodeError on any mismatch.
    const wire::Frame frame = wire::open_frame(buf);
    if (frame.empty()) continue;
    vmpi::TypedReader<value_t> r(frame.payload);
    while (!r.done()) {
      const auto id = static_cast<std::size_t>(r.get());
      if (id >= targets_.size()) {
        throw vmpi::FrameDecodeError("router: frame names an unregistered route");
      }
      Relation& rel = *targets_[id];
      if (r.remaining() < 1) {
        throw vmpi::FrameDecodeError("router: frame truncated before row count");
      }
      const auto count = static_cast<std::size_t>(r.get());
      // Division form: a corrupt count must not overflow the multiply.
      if (count > r.remaining() / rel.arity()) {
        throw vmpi::FrameDecodeError("router: frame row count overruns payload");
      }
      // Zero-copy decode: the frame body is staged straight from the
      // receive buffer, no per-tuple materialization.
      rel.stage_rows(r.take_span(count * rel.arity()));
      st.rows_staged += count;
    }
  }
  profile.add_work(Phase::kDedupAgg, st.rows_staged);
}

RouterFlushStats ExchangeRouter::flush(RankProfile& profile, ExchangeAlgorithm algo) {
  assert(!inflight_.active && "flush while a split-phase exchange is in flight");
  if (algo == ExchangeAlgorithm::kHierarchical && comm_->topology().node_size > 1) {
    // The two-level path is written split-phase; a blocking flush is just
    // the degenerate composition with nothing overlapped.
    post(profile, algo);
    return complete(profile);
  }
  RouterFlushStats st;
  st.rows_loopback = loopback_rows_;
  loopback_rows_ = 0;
  st.rows_hot_routed = hot_routed_rows_;
  hot_routed_rows_ = 0;

  std::vector<vmpi::Bytes> received;
  {
    PhaseScope scope(*comm_, profile, Phase::kAllToAll);
    auto send = pack(st);
    profile.add_work(Phase::kAllToAll, st.rows_sent);
    received = exchange_alltoallv(*comm_, std::move(send), algo);
  }
  recycle(cur_gen_);  // the blocking exchange copied everything out already
  decode(received, st, profile);
  return st;
}

void ExchangeRouter::post(RankProfile& profile, ExchangeAlgorithm algo) {
  assert(!inflight_.active && "at most one exchange in flight per router");
  inflight_.stats = RouterFlushStats{};
  inflight_.stats.rows_loopback = loopback_rows_;
  loopback_rows_ = 0;
  inflight_.stats.rows_hot_routed = hot_routed_rows_;
  hot_routed_rows_ = 0;
  {
    PhaseScope scope(*comm_, profile, Phase::kAllToAll);
    if (algo == ExchangeAlgorithm::kHierarchical && comm_->topology().node_size > 1) {
      inflight_.hier = true;
      inflight_.hier_seq = hier_seq_++;
      {
        // Leader election by load: the member with the most staged delta
        // bytes aggregates, so the node's heaviest buffer never crosses
        // the intra-node wire.  Election metadata, not payload — the
        // allgather runs unaccounted (StatsPause) like the schedule
        // bookkeeping, keeping byte totals election-invariant.
        std::uint64_t my_load = 0;
        for (const auto& rows : outgoing_[cur_gen_]) {
          my_load += rows.size() * sizeof(value_t);
        }
        vmpi::StatsPause pause(*comm_);
        const auto loads = comm_->allgather<std::uint64_t>(my_load);
        inflight_.leaders = comm_->topology().elect_leaders(loads);
      }
      inflight_.stats.elected_leader =
          inflight_.leaders[static_cast<std::size_t>(
              comm_->topology().node_of(comm_->rank()))];
      auto send = pack_hier(inflight_.stats);
      profile.add_work(Phase::kAllToAll, inflight_.stats.rows_sent);
      inflight_.ticket = comm_->ialltoallv(std::move(send));
      inflight_.eager = false;
      // Gather and scatter legs on top of the leaders' exchange (which
      // records its own step); recorded on every rank so per-rank step
      // counts stay uniform, as for the scheduled collectives' rounds.
      comm_->account_steps(vmpi::Op::kAlltoallv, 2);
    } else {
      inflight_.hier = false;
      auto send = pack(inflight_.stats);
      profile.add_work(Phase::kAllToAll, inflight_.stats.rows_sent);
      if (algo == ExchangeAlgorithm::kBruck) {
        // The relay rounds block; split-phase degrades to an eager exchange.
        inflight_.received = comm_->alltoallv_bruck(std::move(send));
        inflight_.eager = true;
      } else {
        inflight_.ticket = comm_->ialltoallv(std::move(send));
        inflight_.eager = false;
      }
    }
  }
  inflight_.gen = cur_gen_;  // frozen until complete() (send-buffer stability)
  cur_gen_ ^= 1;             // emits now fill the other generation
  inflight_.active = true;
}

RouterFlushStats ExchangeRouter::complete(RankProfile& profile) {
  assert(inflight_.active && "complete without a posted exchange");
  std::vector<vmpi::Bytes> received;
  if (inflight_.eager) {
    received = std::move(inflight_.received);
  } else {
    // Whatever latency the pipelined schedule failed to hide is exposed
    // here — kOverlapWait, not kAllToAll, so the figures can separate
    // hidden from exposed exchange time.
    PhaseScope scope(*comm_, profile, Phase::kOverlapWait);
    received = comm_->wait(inflight_.ticket);
  }
  recycle(inflight_.gen);
  inflight_.active = false;
  RouterFlushStats st = inflight_.stats;
  if (inflight_.hier) {
    inflight_.hier = false;
    absorb_hier(received, st, profile);
  } else {
    decode(received, st, profile);
  }
  return st;
}

std::vector<vmpi::Bytes> ExchangeRouter::pack_hier(RouterFlushStats& st) {
  const int n = comm_->size();
  const auto nsz = static_cast<std::size_t>(n);
  const int me = comm_->rank();
  const vmpi::Topology& topo = comm_->topology();
  const int leader = inflight_.leaders[static_cast<std::size_t>(topo.node_of(me))];
  const int up_tag = kHierUpTagBase + static_cast<int>(inflight_.hier_seq % kHierTagWindow);
  const auto seq = static_cast<value_t>(inflight_.hier_seq);

  std::vector<vmpi::Bytes> send(nsz);

  if (me != leader) {
    // Member: ship every bucket to the node aggregator as one sealed
    // [dst | route | count | rows]* frame, then return the all-empty send
    // vector — posting it keeps the leaders-only exchange collective.
    vmpi::TypedWriter<value_t> w;
    for (std::size_t d = 0; d < nsz; ++d) {
      for (std::size_t id = 0; id < targets_.size(); ++id) {
        auto& rows = bucket(id, d);
        if (rows.empty()) continue;
        const Relation& rel = *targets_[id];
        if (preaggregate_) combine(rel, rows, st);
        w.put(static_cast<value_t>(d));
        w.put(static_cast<value_t>(id));
        w.put(static_cast<value_t>(rows.size() / rel.arity()));
        w.put_span(std::span<const value_t>(rows));
        st.rows_sent += rows.size() / rel.arity();
      }
    }
    wire::seal_frame(w, seq);
    vmpi::Bytes frame = w.take();
    comm_->account_send(vmpi::Op::kAlltoallv, frame.size(), leader);
    {
      // The gather leg rides the faultable mailbox path, so injected
      // drop/corrupt/delay hit it like any other message; stats pause
      // because the bytes were just attributed to the collective above.
      vmpi::StatsPause pause(*comm_);
      comm_->isend(leader, up_tag, frame);
    }
    pending_rows_ = 0;
    return send;
  }

  // Leader: merge own buckets with every member frame per (final dst,
  // route).  Buckets stay frozen from the caller's perspective — the rows
  // move into the merge scratch and recycle() still sees cleared buffers.
  const std::vector<int> members = topo.node_members(me, n);
  std::vector<std::vector<value_t>> merged(targets_.size() * nsz);
  for (std::size_t id = 0; id < targets_.size(); ++id) {
    for (std::size_t d = 0; d < nsz; ++d) {
      auto& rows = bucket(id, d);
      if (rows.empty()) continue;
      merged[id * nsz + d] = std::move(rows);
      rows.clear();
    }
  }
  {
    vmpi::StatsPause pause(*comm_);
    std::vector<char> seen(nsz, 0);
    std::size_t remaining = members.size() - 1;
    while (remaining > 0) {
      int src = -1;
      const vmpi::Bytes buf = comm_->recv(vmpi::kAnySource, up_tag, &src);
      if (seen[static_cast<std::size_t>(src)] != 0) {
        comm_->stats().dup_frames_discarded += 1;  // injected duplicate
        continue;
      }
      seen[static_cast<std::size_t>(src)] = 1;
      --remaining;
      const wire::Frame frame = wire::open_frame(buf);
      if (frame.empty()) continue;
      if (frame.seq != seq) {
        throw vmpi::FrameDecodeError("router: stale hierarchical gather frame");
      }
      vmpi::TypedReader<value_t> r(frame.payload);
      while (!r.done()) {
        const auto d = static_cast<std::size_t>(r.get());
        if (d >= nsz) {
          throw vmpi::FrameDecodeError("router: gather frame names a bad destination");
        }
        if (r.remaining() < 2) {
          throw vmpi::FrameDecodeError("router: gather frame truncated");
        }
        const auto id = static_cast<std::size_t>(r.get());
        if (id >= targets_.size()) {
          throw vmpi::FrameDecodeError("router: gather frame names an unregistered route");
        }
        const auto count = static_cast<std::size_t>(r.get());
        const Relation& rel = *targets_[id];
        if (count > r.remaining() / rel.arity()) {
          throw vmpi::FrameDecodeError("router: gather frame row count overruns payload");
        }
        const auto rows = r.take_span(count * rel.arity());
        auto& acc = merged[id * nsz + d];
        acc.insert(acc.end(), rows.begin(), rows.end());
      }
    }
    // Duplicates of frames that arrived after their original was counted.
    while (comm_->iprobe(vmpi::kAnySource, up_tag)) {
      (void)comm_->recv(vmpi::kAnySource, up_tag);
      comm_->stats().dup_frames_discarded += 1;
    }
  }

  // Node-level pre-aggregation: one combine pass over each merged bucket
  // collapses rows different members generated for the same key before
  // they cross nodes — the volume reduction the two-level exchange buys.
  if (preaggregate_) {
    for (std::size_t id = 0; id < targets_.size(); ++id) {
      const Relation& rel = *targets_[id];
      for (std::size_t d = 0; d < nsz; ++d) {
        auto& rows = merged[id * nsz + d];
        if (rows.empty()) continue;
        RouterFlushStats node_st;
        combine(rel, rows, node_st);
        st.rows_node_merged += node_st.rows_combined;
      }
    }
  }

  // One frame per destination node, addressed to its elected leader; the
  // final destination travels in-band so the peer leader can scatter.
  for (const int peer : inflight_.leaders) {
    vmpi::TypedWriter<value_t> w;
    for (const int d : topo.node_members(peer, n)) {
      for (std::size_t id = 0; id < targets_.size(); ++id) {
        const auto& rows = merged[id * nsz + static_cast<std::size_t>(d)];
        if (rows.empty()) continue;
        const Relation& rel = *targets_[id];
        w.put(static_cast<value_t>(d));
        w.put(static_cast<value_t>(id));
        w.put(static_cast<value_t>(rows.size() / rel.arity()));
        w.put_span(std::span<const value_t>(rows));
        st.rows_sent += rows.size() / rel.arity();
      }
    }
    wire::seal_frame(w, seq);
    send[static_cast<std::size_t>(peer)] = w.take();
  }
  pending_rows_ = 0;
  return send;
}

void ExchangeRouter::absorb_hier(const std::vector<vmpi::Bytes>& received,
                                 RouterFlushStats& st, RankProfile& profile) {
  const int n = comm_->size();
  const int me = comm_->rank();
  const vmpi::Topology& topo = comm_->topology();
  const int leader = inflight_.leaders[static_cast<std::size_t>(topo.node_of(me))];
  const int down_tag = kHierDownTagBase + static_cast<int>(inflight_.hier_seq % kHierTagWindow);
  const auto seq = static_cast<value_t>(inflight_.hier_seq);

  if (me != leader) {
    // Member: the leaders' exchange delivered only empties here; the node
    // rows arrive as one sealed [route | count | rows]* scatter frame.
    vmpi::Bytes buf;
    {
      PhaseScope scope(*comm_, profile, Phase::kOverlapWait);
      vmpi::StatsPause pause(*comm_);
      buf = comm_->recv(leader, down_tag);
      while (comm_->iprobe(leader, down_tag)) {
        (void)comm_->recv(leader, down_tag);
        comm_->stats().dup_frames_discarded += 1;  // injected duplicate
      }
    }
    PhaseScope scope(*comm_, profile, Phase::kDedupAgg);
    const wire::Frame frame = wire::open_frame(buf);
    if (!frame.empty()) {
      if (frame.seq != seq) {
        throw vmpi::FrameDecodeError("router: stale hierarchical scatter frame");
      }
      vmpi::TypedReader<value_t> r(frame.payload);
      while (!r.done()) {
        const auto id = static_cast<std::size_t>(r.get());
        if (id >= targets_.size()) {
          throw vmpi::FrameDecodeError("router: scatter frame names an unregistered route");
        }
        Relation& rel = *targets_[id];
        if (r.remaining() < 1) {
          throw vmpi::FrameDecodeError("router: scatter frame truncated before row count");
        }
        const auto count = static_cast<std::size_t>(r.get());
        if (count > r.remaining() / rel.arity()) {
          throw vmpi::FrameDecodeError("router: scatter frame row count overruns payload");
        }
        rel.stage_rows(r.take_span(count * rel.arity()));
        st.rows_staged += count;
      }
    }
    profile.add_work(Phase::kDedupAgg, st.rows_staged);
    return;
  }

  // Leader: split every arriving leader frame by final destination —
  // stage own rows, forward the rest as one sealed frame per member.
  // Node ranks are contiguous, so member index == d - node_base (the
  // elected leader may sit anywhere in the block, hence base, not me).
  const int base = topo.node_base(me);
  const std::vector<int> members = topo.node_members(me, n);
  std::vector<std::vector<value_t>> fwd(members.size() * targets_.size());
  {
    PhaseScope scope(*comm_, profile, Phase::kDedupAgg);
    for (const auto& buf : received) {
      const wire::Frame frame = wire::open_frame(buf);
      if (frame.empty()) continue;
      if (frame.seq != seq) {
        throw vmpi::FrameDecodeError("router: stale hierarchical leaders frame");
      }
      vmpi::TypedReader<value_t> r(frame.payload);
      while (!r.done()) {
        const auto d = static_cast<int>(r.get());
        if (d < base || d >= base + static_cast<int>(members.size())) {
          throw vmpi::FrameDecodeError("router: leaders frame names a rank outside this node");
        }
        if (r.remaining() < 2) {
          throw vmpi::FrameDecodeError("router: leaders frame truncated");
        }
        const auto id = static_cast<std::size_t>(r.get());
        if (id >= targets_.size()) {
          throw vmpi::FrameDecodeError("router: leaders frame names an unregistered route");
        }
        const auto count = static_cast<std::size_t>(r.get());
        Relation& rel = *targets_[id];
        if (count > r.remaining() / rel.arity()) {
          throw vmpi::FrameDecodeError("router: leaders frame row count overruns payload");
        }
        const auto rows = r.take_span(count * rel.arity());
        if (d == me) {
          rel.stage_rows(rows);
          st.rows_staged += count;
        } else {
          auto& acc = fwd[static_cast<std::size_t>(d - base) * targets_.size() + id];
          acc.insert(acc.end(), rows.begin(), rows.end());
        }
      }
    }
    profile.add_work(Phase::kDedupAgg, st.rows_staged);
  }
  {
    PhaseScope scope(*comm_, profile, Phase::kAllToAll);
    for (std::size_t i = 0; i < members.size(); ++i) {
      const int m = members[i];
      if (m == me) continue;  // own rows were staged above
      vmpi::TypedWriter<value_t> w;
      for (std::size_t id = 0; id < targets_.size(); ++id) {
        const auto& rows = fwd[i * targets_.size() + id];
        if (rows.empty()) continue;
        const Relation& rel = *targets_[id];
        w.put(static_cast<value_t>(id));
        w.put(static_cast<value_t>(rows.size() / rel.arity()));
        w.put_span(std::span<const value_t>(rows));
      }
      wire::seal_frame(w, seq);
      vmpi::Bytes frame = w.take();
      comm_->account_send(vmpi::Op::kAlltoallv, frame.size(), m);
      // Faultable, like the gather leg.
      vmpi::StatsPause pause(*comm_);
      comm_->isend(m, down_tag, frame);
    }
  }
}

}  // namespace paralagg::core

#include "core/exchange_router.hpp"

#include <cassert>
#include <unordered_map>

#include "core/phase_scope.hpp"
#include "vmpi/serialize.hpp"

namespace paralagg::core {

std::vector<vmpi::Bytes> exchange_alltoallv(vmpi::Comm& comm, std::vector<vmpi::Bytes> send,
                                            ExchangeAlgorithm algo) {
  return algo == ExchangeAlgorithm::kBruck ? comm.alltoallv_bruck(std::move(send))
                                           : comm.alltoallv(std::move(send));
}

ExchangeRouter::ExchangeRouter(vmpi::Comm& comm, bool preaggregate)
    : comm_(&comm), preaggregate_(preaggregate) {}

std::uint32_t ExchangeRouter::add_target(Relation* rel) {
  assert(rel != nullptr);
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i] == rel) return static_cast<std::uint32_t>(i);
  }
  targets_.push_back(rel);
  outgoing_.resize(targets_.size() * static_cast<std::size_t>(comm_->size()));
  return static_cast<std::uint32_t>(targets_.size() - 1);
}

void ExchangeRouter::emit(std::uint32_t route_id, std::span<const value_t> row) {
  assert(route_id < targets_.size());
  Relation* rel = targets_[route_id];
  assert(row.size() == rel->arity());
  const int dst = rel->owner_rank(row);
  if (dst == comm_->rank()) {
    // Loopback fast path: the row never sees a serialization buffer.
    rel->stage(row);
    ++loopback_rows_;
    return;
  }
  auto& rows = bucket(route_id, static_cast<std::size_t>(dst));
  rows.insert(rows.end(), row.begin(), row.end());
  ++pending_rows_;
}

void ExchangeRouter::combine(const Relation& rel, std::vector<value_t>& rows,
                             RouterFlushStats& st) {
  const std::size_t arity = rel.arity();
  if (rows.size() <= arity) return;  // nothing to collapse

  if (!rel.aggregated()) {
    // Plain target: keep the first occurrence of each row.
    std::unordered_map<Tuple, std::size_t, storage::TupleHash> seen;
    std::size_t w = 0;
    for (std::size_t r = 0; r < rows.size(); r += arity) {
      const std::span<const value_t> row(rows.data() + r, arity);
      auto [it, inserted] = seen.try_emplace(Tuple(row), w);
      if (!inserted) {
        ++st.rows_combined;
        continue;
      }
      if (w != r) std::copy(row.begin(), row.end(), rows.begin() + static_cast<std::ptrdiff_t>(w));
      w += arity;
    }
    rows.resize(w);
    return;
  }

  // Aggregated target: fold rows agreeing on the independent columns
  // through the lattice join before they hit the wire (partial partial
  // aggregates).  The destination's staging pass stays correct either way;
  // this only shrinks the exchange.
  const std::size_t ia = rel.indep_arity();
  const std::size_t dep = rel.dep_arity();
  const auto& agg = *rel.config().aggregator;
  std::unordered_map<Tuple, std::size_t, storage::TupleHash> first;  // key -> kept row offset
  std::vector<value_t> scratch(dep);
  std::size_t w = 0;
  for (std::size_t r = 0; r < rows.size(); r += arity) {
    const std::span<const value_t> row(rows.data() + r, arity);
    auto [it, inserted] = first.try_emplace(Tuple(row.first(ia)), w);
    if (inserted) {
      if (w != r) std::copy(row.begin(), row.end(), rows.begin() + static_cast<std::ptrdiff_t>(w));
      w += arity;
      continue;
    }
    // partial_agg's out may alias neither input: stage through scratch.
    value_t* acc = rows.data() + it->second + ia;
    agg.partial_agg(std::span<const value_t>(acc, dep), row.subspan(ia),
                    std::span<value_t>(scratch));
    std::copy(scratch.begin(), scratch.end(), acc);
    ++st.rows_combined;
  }
  rows.resize(w);
}

RouterFlushStats ExchangeRouter::flush(RankProfile& profile, ExchangeAlgorithm algo) {
  RouterFlushStats st;
  st.rows_loopback = loopback_rows_;
  loopback_rows_ = 0;

  const auto n = static_cast<std::size_t>(comm_->size());
  const auto me = static_cast<std::size_t>(comm_->rank());
  std::vector<vmpi::Bytes> received;
  {
    PhaseScope scope(*comm_, profile, Phase::kAllToAll);
    std::vector<vmpi::Bytes> send(n);
    for (std::size_t d = 0; d < n; ++d) {
      vmpi::TypedWriter<value_t> w;
      for (std::size_t id = 0; id < targets_.size(); ++id) {
        auto& rows = bucket(id, d);
        if (rows.empty()) continue;
        assert(d != me && "self-owned rows take the loopback path");
        const Relation& rel = *targets_[id];
        if (preaggregate_) combine(rel, rows, st);
        const auto count = rows.size() / rel.arity();
        w.put(static_cast<value_t>(id));
        w.put(static_cast<value_t>(count));
        w.put_span(std::span<const value_t>(rows));
        st.rows_sent += count;
        rows.clear();
        rows.shrink_to_fit();
      }
      send[d] = w.take();
    }
    pending_rows_ = 0;
    profile.add_work(Phase::kAllToAll, st.rows_sent);
    received = exchange_alltoallv(*comm_, std::move(send), algo);
  }

  {
    PhaseScope scope(*comm_, profile, Phase::kDedupAgg);
    for (const auto& buf : received) {
      vmpi::TypedReader<value_t> r(buf);
      while (!r.done()) {
        const auto id = static_cast<std::size_t>(r.get());
        assert(id < targets_.size() && "frame names an unregistered route");
        Relation& rel = *targets_[id];
        const auto count = static_cast<std::size_t>(r.get());
        // Zero-copy decode: the frame body is staged straight from the
        // receive buffer, no per-tuple materialization.
        rel.stage_rows(r.take_span(count * rel.arity()));
        st.rows_staged += count;
      }
    }
    profile.add_work(Phase::kDedupAgg, st.rows_staged);
  }
  return st;
}

}  // namespace paralagg::core

#pragma once

// Distributed relations with bucket/sub-bucket double hashing.
//
// A relation's tuples are laid out in *stored order*:
//
//   [ join columns | other independent columns | dependent columns ]
//     0 .. jcc-1     jcc .. indep_arity-1        indep_arity .. arity-1
//
// Distribution (paper §II-D, §IV-A):
//   bucket      = H1(join columns)              mod  num_buckets
//   sub-bucket  = H2(other independent columns) mod  sub_buckets
//   rank        = (bucket * sub_buckets + sub)  mod  nranks
//
// Dependent (aggregated) columns participate in *neither* hash — that is
// the communication-avoiding restriction: any two tuples that agree on
// their independent columns land on the same rank no matter what partial
// aggregate they carry, so aggregation can be fused with deduplication
// locally, with zero extra communication (paper §IV-A).
//
// Each rank holds its partition in two B-trees (full and delta, keyed on
// the independent columns) plus a staging area where tuples arriving from
// the all-to-all exchange are *pre-aggregated* before materialization.

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/aggregator.hpp"
#include "core/types.hpp"
#include "storage/btree.hpp"
#include "vmpi/comm.hpp"

namespace paralagg::core {

struct RelationConfig {
  std::string name;
  std::size_t arity = 0;
  /// Join-column count: the tuple prefix the relation is indexed and
  /// bucketed on.  Joins match this prefix against the other side's.
  std::size_t jcc = 1;
  /// Trailing aggregated columns (0 = plain relation).
  std::size_t dep_arity = 0;
  AggregatorPtr aggregator;  // required iff dep_arity > 0
  AggMode agg_mode = AggMode::kLattice;
  /// Sub-buckets per bucket (spatial load balancing fan-out, paper §IV-C).
  int sub_buckets = 1;
  /// May the spatial load balancer raise sub_buckets at run time?
  bool balanceable = false;
};

struct MaterializeResult {
  std::uint64_t staged = 0;    // tuples received this iteration (pre-agg keys)
  std::uint64_t inserted = 0;  // new keys
  std::uint64_t updated = 0;   // existing keys whose accumulator ascended
  std::uint64_t rejected = 0;  // no new information (paper Fig. 1, right)
  std::size_t delta_size = 0;
};

class Relation {
 public:
  /// Collective only in the sense that every rank must construct the same
  /// relation in the same order; the constructor itself does not
  /// communicate.
  Relation(vmpi::Comm& comm, RelationConfig cfg);

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  // -- metadata ---------------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return cfg_.name; }
  [[nodiscard]] const RelationConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t arity() const { return cfg_.arity; }
  [[nodiscard]] std::size_t jcc() const { return cfg_.jcc; }
  [[nodiscard]] std::size_t dep_arity() const { return cfg_.dep_arity; }
  [[nodiscard]] std::size_t indep_arity() const { return cfg_.arity - cfg_.dep_arity; }
  [[nodiscard]] bool aggregated() const { return cfg_.dep_arity > 0; }
  [[nodiscard]] int sub_buckets() const { return sub_buckets_; }
  [[nodiscard]] vmpi::Comm& comm() const { return *comm_; }

  // -- distribution -------------------------------------------------------------

  [[nodiscard]] std::uint32_t num_buckets() const { return num_buckets_; }
  [[nodiscard]] std::uint32_t bucket_of(std::span<const value_t> tuple) const;
  [[nodiscard]] std::uint32_t sub_bucket_of(std::span<const value_t> tuple) const;
  [[nodiscard]] int rank_of(std::uint32_t bucket, std::uint32_t sub) const;
  [[nodiscard]] int owner_rank(std::span<const value_t> tuple) const;
  /// What-if variants of sub_bucket_of / rank_of under a *candidate*
  /// sub-bucket count — the balancer's planner projects where tuples would
  /// land at each fan-out before committing to a reshuffle.
  [[nodiscard]] std::uint32_t sub_bucket_for(std::span<const value_t> tuple,
                                             int sub_buckets) const;
  [[nodiscard]] int rank_for(std::uint32_t bucket, std::uint32_t sub,
                             int sub_buckets) const;
  /// Distinct ranks holding any sub-bucket of `bucket` (the destinations of
  /// intra-bucket replication when this relation is the inner side).
  void ranks_of_bucket(std::uint32_t bucket, std::vector<int>& out) const;

  // -- heavy-hitter layout (skew-optimal routing, DESIGN.md §13) ---------------
  //
  // A relation may carry a *hot set* of join-key prefixes (adopted via
  // adopt_hot_keys, detected by core::detect_hot_keys).  Rows whose join
  // key is hot are spread across ALL ranks by H2 over the non-join
  // independent columns — a pure function of row content, independent of
  // the bucket/sub-bucket layout — instead of living at their owner rank.
  // Dependent columns stay out of the hash, so equal-key aggregate folds
  // still collide on one rank and fused dedup/aggregation stays local.

  /// Where a row lives under the current layout: the hot spread rank for
  /// hot keys, owner_rank for everything else.
  [[nodiscard]] int route_rank(std::span<const value_t> tuple) const;
  /// Is `tuple`'s join-key prefix (its first jcc() columns) currently hot?
  /// `tuple` may be a full row or a bare jcc-column key.
  [[nodiscard]] bool key_is_hot(std::span<const value_t> tuple) const {
    return !hot_set_.empty() && hot_set_.count(Tuple(tuple.subspan(0, cfg_.jcc))) > 0;
  }
  /// Current hot keys, in the deterministic (count desc, key asc) adoption
  /// order; identical on every rank.
  [[nodiscard]] const std::vector<Tuple>& hot_keys() const { return hot_keys_; }

  /// Switch to a new hot set, moving the rows of every key that changed
  /// hotness (newly hot -> spread by H2; no longer hot -> back to owner).
  /// Keys hot before and after keep their placement: the spread rank is a
  /// pure function of row content.  Collective; must run between
  /// iterations (staging empty).  Returns the rows this rank shipped.
  /// No-op (hot set stays empty) when the relation has no non-join
  /// independent columns — H2 has nothing to hash, so spreading is
  /// impossible.
  std::uint64_t adopt_hot_keys(std::vector<Tuple> keys);

  // -- local storage ------------------------------------------------------------

  [[nodiscard]] storage::TupleBTree& tree(Version v) {
    return v == Version::kFull ? full_ : delta_;
  }
  [[nodiscard]] const storage::TupleBTree& tree(Version v) const {
    return v == Version::kFull ? full_ : delta_;
  }
  [[nodiscard]] std::size_t local_size(Version v) const { return tree(v).size(); }

  // -- staging + fused dedup/aggregation ---------------------------------------

  /// Stage a tuple that this rank owns (arrived via all-to-all or was
  /// generated locally for a local bucket).  For aggregated relations this
  /// performs the *local aggregation* immediately: within-iteration
  /// duplicates of a key are collapsed before they ever touch the B-tree.
  void stage(std::span<const value_t> tuple);

  /// Bulk staging: `rows` is a flat concatenation of stored-order tuples
  /// (size a multiple of arity), all owned by this rank.  Pre-reserves the
  /// staging container from the row count — the fused exchange decode path
  /// lands here, and without the reserve large deltas trigger rehash
  /// storms (visible in CC on RMAT inputs).
  void stage_rows(std::span<const value_t> rows);

  /// Grow the staging container for `extra` incoming keys ahead of a batch.
  void reserve_staging(std::size_t extra);

  /// Fused deduplication / aggregation (paper §IV-A): fold the staging
  /// area into full, computing the next delta.  Local; no communication.
  MaterializeResult materialize();

  /// Drop every tuple and staged row (full, delta, staging).  Local; the
  /// checkpoint-restore path clears a relation before repopulating it.
  /// Support counts (when enabled) are cleared too.
  void reset();

  // -- support counts (incremental serving) ------------------------------------
  //
  // With support counting enabled, stage() also counts derivation *events*
  // per key (the independent-column prefix; the whole tuple for plain
  // relations) — how many times anything derived that key, across
  // iterations, before any same-iteration pre-aggregation collapses them.
  // The serving layer's DRed-style deletion uses the counts to retract
  // conclusions whose last support disappeared.  For aggregated relations
  // the counts are advisory (the retract decision also compares the stored
  // aggregate against the invalidated derivation's value — see
  // DESIGN.md §11); for plain relations they are exact under per-event
  // staging.  Counting requires per-event granularity, so serving runs the
  // engine with sender-side pre-aggregation off.

  /// Turn on support counting (idempotent).  Local; enable before any
  /// facts are loaded or derived so every event is counted.
  void enable_support_counts() { support_counts_ = true; }
  [[nodiscard]] bool support_counts_enabled() const { return support_counts_; }

  /// Drop every support entry, keeping the stored tuples.  The serving
  /// warm start clears the manifest-load counts (1 per key) right before
  /// its superset re-derivation pass recounts every surviving event.
  void clear_support_counts() { support_.clear(); }

  /// Current support of `key` (indep_arity() columns); 0 when unknown.
  [[nodiscard]] std::uint64_t support_of(std::span<const value_t> key) const;

  /// Subtract `n` from `key`'s support, saturating at 0; returns what
  /// remains.  Local.
  std::uint64_t support_release(std::span<const value_t> key, std::uint64_t n);

  /// Remove the stored tuple for `key` (indep_arity() columns) from full
  /// (and delta, if present) and drop its support entry.  Returns the
  /// removed full row, or an empty tuple if the key was absent.  Local.
  Tuple retract_key(std::span<const value_t> key);

  [[nodiscard]] std::size_t staged_count() const {
    return aggregated() ? staged_agg_.size() : staged_set_.size();
  }

  // -- batch rollback (serving graceful degradation) ---------------------------

  /// Local flat copy of everything a serving batch can mutate: full rows,
  /// delta rows, and the support-count map.  Staging is not captured — a
  /// snapshot is only legal between iterations (staging empty), which is
  /// where the serving engine takes it.
  struct LocalSnapshot {
    std::vector<value_t> full;   // flat stored-order rows
    std::vector<value_t> delta;
    std::vector<std::pair<Tuple, std::uint64_t>> support;
  };
  [[nodiscard]] LocalSnapshot snapshot() const;

  /// Restore exactly the state captured by snapshot(): full/delta rebuilt
  /// by reinsertion, staging cleared, support map replaced.  Local; the
  /// serving engine calls it on every rank after an aborted batch.
  void restore(const LocalSnapshot& snap);

  // -- collective operations ----------------------------------------------------

  /// Distribute and materialize initial facts.  Collective: every rank
  /// calls it with its (possibly empty) slice; each tuple is routed to its
  /// owner.  The resulting delta equals the loaded set.
  void load_facts(std::span<const Tuple> slice);

  /// Global tuple count of a version.  Collective.
  [[nodiscard]] std::uint64_t global_size(Version v);

  /// All tuples of `full`, gathered to `root` and sorted (empty elsewhere).
  /// Collective.  Test/readout oracle.
  [[nodiscard]] std::vector<Tuple> gather_to_root(int root = 0);

  /// Re-shard to a new sub-bucket count (spatial load balancing).
  /// Collective; returns the remote bytes this rank shipped.  When
  /// `cross_bytes` is given, it receives the cross-node portion (classified
  /// against the comm's topology) so the balancer can account locality.
  std::uint64_t reshuffle_to_sub_buckets(int new_sub_buckets,
                                         std::uint64_t* cross_bytes = nullptr);

  /// Persist the full version to a binary checkpoint file (rank 0 writes).
  /// Collective.  Long-running deductive jobs on shared clusters need
  /// restartability; checkpoints also let a fixpoint computed at one rank
  /// count be reloaded at another (the file is layout-independent).
  void save_checkpoint(const std::string& path);

  /// Replace this relation's contents with a checkpoint written by
  /// save_checkpoint (any rank count / sub-bucket layout).  Collective;
  /// rank 0 reads and scatters.  After loading, delta == full, as after
  /// load_facts.  Throws std::runtime_error on IO or format errors.
  void load_checkpoint(const std::string& path);

  // -- serialization helpers ----------------------------------------------------

  void serialize_all(Version v, vmpi::BufferWriter& w) const;
  static void serialize_tuple(vmpi::BufferWriter& w, std::span<const value_t> t) {
    w.put_span(t);
  }

 private:
  void validate_config() const;
  [[nodiscard]] std::size_t effective_sub_cols() const {
    return indep_arity() - cfg_.jcc;  // columns feeding H2
  }

  vmpi::Comm* comm_;
  RelationConfig cfg_;
  std::uint32_t num_buckets_;
  int sub_buckets_;

  storage::TupleBTree full_;
  storage::TupleBTree delta_;

  // Staging: plain relations deduplicate, aggregated relations pre-aggregate.
  std::unordered_set<Tuple, storage::TupleHash> staged_set_;
  std::unordered_map<Tuple, Tuple, storage::TupleHash> staged_agg_;  // key -> dep

  // Derivation-event counts per key (serving mode only; empty otherwise).
  bool support_counts_ = false;
  std::unordered_map<Tuple, std::uint64_t, storage::TupleHash> support_;

  // Hot set (both containers hold the same keys; the vector preserves the
  // deterministic adoption order, the set answers key_is_hot in O(1)).
  std::vector<Tuple> hot_keys_;
  std::unordered_set<Tuple, storage::TupleHash> hot_set_;
};

}  // namespace paralagg::core

#pragma once

// Engine-level checkpoint manifests.
//
// A manifest captures the whole program state at an iteration boundary:
// which stratum was running, how many loop iterations it had completed,
// and every relation's full version.  Rows are gathered to rank 0 and
// sorted before writing, so the file is independent of the rank count and
// sub-bucket layout that produced it — a run killed at 4 ranks resumes at
// 7 and still converges to the bit-identical fixpoint (semi-naive
// evaluation restarted with delta := full is a superset restart: it can
// only redo work, never change the least fixpoint).
//
// File layout (binary, native-endian like the relation checkpoints):
//
//   u64 magic "PARAMNF1" | u64 stratum | u64 iteration
//   u64 total_iterations | u64 relation_count
//   per relation:
//     u64 name_len | name bytes | u64 arity | u64 row_count
//     u64 crc32(row bytes) | row_count * arity * u64 rows (sorted)
//
// Writing goes through a temporary file renamed into place, so a crash
// mid-write can never leave a half manifest under the advertised path.
// Loading validates magic, structure against the actual file size, and
// every relation's CRC on rank 0 *before* any rank mutates a relation;
// on failure every rank throws CheckpointError and the program state is
// untouched.

#include <stdexcept>
#include <string>

#include "core/program.hpp"

namespace paralagg::core {

struct CheckpointError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Where in the program a manifest was taken.
struct ManifestHeader {
  std::uint64_t stratum = 0;           // index of the stratum in progress
  std::uint64_t iteration = 0;         // completed loop iterations within it
  std::uint64_t total_iterations = 0;  // completed across all strata
};

/// Gather every relation's full version to rank 0 and atomically write the
/// manifest.  Collective; every rank returns only once the file exists.
void write_manifest(const Program& program, const std::string& path,
                    const ManifestHeader& at);

/// Validate `path` and replace every relation's contents with the manifest
/// rows (after which delta == full, as after load_facts).  Collective;
/// rank 0 reads and scatters.  Returns the header, identical on all ranks.
/// Throws CheckpointError on every rank if the file is missing, corrupt,
/// or does not match the program's relations.
ManifestHeader load_manifest(Program& program, const std::string& path);

}  // namespace paralagg::core

#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>

#include "vmpi/crc32.hpp"

namespace paralagg::core {

namespace {

constexpr char kManifestMagicChars[8] = {'P', 'A', 'R', 'A', 'M', 'N', 'F', '1'};

std::uint64_t manifest_magic() {
  std::uint64_t m = 0;
  std::memcpy(&m, kManifestMagicChars, sizeof(m));
  return m;
}

void put_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounded sequential reader over the manifest bytes; any overrun is a
/// format error, never UB.
class BoundedReader {
 public:
  explicit BoundedReader(const std::vector<char>& bytes) : bytes_(bytes) {}

  std::uint64_t u64() {
    std::uint64_t v = 0;
    read_into(&v, sizeof(v));
    return v;
  }
  std::string str(std::uint64_t len) {
    if (len > remaining()) throw CheckpointError("manifest: truncated name");
    std::string s(bytes_.data() + pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }
  std::span<const std::byte> bytes(std::uint64_t len) {
    if (len > remaining()) throw CheckpointError("manifest: truncated row data");
    const auto* p = reinterpret_cast<const std::byte*>(bytes_.data() + pos_);
    pos_ += static_cast<std::size_t>(len);
    return {p, static_cast<std::size_t>(len)};
  }
  [[nodiscard]] std::uint64_t remaining() const { return bytes_.size() - pos_; }

 private:
  void read_into(void* dst, std::size_t n) {
    if (n > remaining()) throw CheckpointError("manifest: truncated header field");
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
  }
  const std::vector<char>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_manifest(const Program& program, const std::string& path,
                    const ManifestHeader& at) {
  vmpi::Comm& comm = program.comm();

  // Collective phase first: every relation's rows to rank 0, sorted (so
  // the file does not depend on the rank count that produced it).
  std::vector<std::vector<Tuple>> gathered;
  gathered.reserve(program.relations().size());
  for (const auto& rel : program.relations()) {
    gathered.push_back(rel->gather_to_root(0));
  }

  if (comm.rank() == 0) {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) throw CheckpointError("manifest: cannot open for writing: " + tmp);
      put_u64(out, manifest_magic());
      put_u64(out, at.stratum);
      put_u64(out, at.iteration);
      put_u64(out, at.total_iterations);
      put_u64(out, program.relations().size());
      for (std::size_t i = 0; i < program.relations().size(); ++i) {
        const Relation& rel = *program.relations()[i];
        const auto& rows = gathered[i];
        put_u64(out, rel.name().size());
        out.write(rel.name().data(), static_cast<std::streamsize>(rel.name().size()));
        put_u64(out, rel.arity());
        put_u64(out, rows.size());
        vmpi::BufferWriter w;
        for (const auto& t : rows) w.put_span(t.view());
        const auto body = w.take();
        put_u64(out, vmpi::crc32(body));
        out.write(reinterpret_cast<const char*>(body.data()),
                  static_cast<std::streamsize>(body.size()));
      }
      if (!out) throw CheckpointError("manifest: write failed: " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw CheckpointError("manifest: atomic rename failed: " + path);
    }
  }
  comm.barrier();  // nobody returns before the file exists
}

ManifestHeader load_manifest(Program& program, const std::string& path) {
  vmpi::Comm& comm = program.comm();

  // Rank 0 parses and fully validates before any rank mutates anything.
  ManifestHeader at;
  std::vector<std::vector<Tuple>> rows(program.relations().size());
  bool failed = false;
  std::string error;
  if (comm.rank() == 0) {
    try {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw CheckpointError("manifest: cannot read " + path);
      std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
      BoundedReader r(bytes);
      if (r.u64() != manifest_magic()) {
        throw CheckpointError("manifest: bad magic in " + path);
      }
      at.stratum = r.u64();
      at.iteration = r.u64();
      at.total_iterations = r.u64();
      const std::uint64_t nrel = r.u64();
      if (nrel != program.relations().size()) {
        throw CheckpointError("manifest: relation count mismatch in " + path);
      }
      if (at.stratum >= program.strata().size()) {
        throw CheckpointError("manifest: stratum index out of range in " + path);
      }
      std::unordered_map<std::string, std::size_t> by_name;
      for (std::size_t i = 0; i < program.relations().size(); ++i) {
        by_name[program.relations()[i]->name()] = i;
      }
      for (std::uint64_t k = 0; k < nrel; ++k) {
        const std::string name = r.str(r.u64());
        const auto it = by_name.find(name);
        if (it == by_name.end()) {
          throw CheckpointError("manifest: unknown relation '" + name + "' in " + path);
        }
        const Relation& rel = *program.relations()[it->second];
        const std::uint64_t arity = r.u64();
        if (arity != rel.arity()) {
          throw CheckpointError("manifest: arity mismatch for '" + name + "' in " + path);
        }
        const std::uint64_t count = r.u64();
        const std::uint64_t crc = r.u64();
        // Division form: a corrupt count must not wrap the multiply.
        if (count > r.remaining() / (arity * sizeof(value_t))) {
          throw CheckpointError("manifest: row count overruns file for '" + name +
                                "' in " + path);
        }
        const std::uint64_t body_bytes = count * arity * sizeof(value_t);
        const auto body = r.bytes(body_bytes);
        if (vmpi::crc32(body) != static_cast<std::uint32_t>(crc)) {
          throw CheckpointError("manifest: row CRC mismatch for '" + name + "' in " + path);
        }
        // The variable-length name field leaves the body at an arbitrary
        // file offset, so copy into aligned storage before viewing it as
        // value_t words.
        std::vector<value_t> words(static_cast<std::size_t>(count * arity));
        if (!words.empty()) std::memcpy(words.data(), body.data(), body.size_bytes());
        auto& out = rows[it->second];
        out.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t t = 0; t < count; ++t) {
          out.emplace_back(std::span<const value_t>(
              words.data() + t * arity, static_cast<std::size_t>(arity)));
        }
      }
      if (r.remaining() != 0) {
        throw CheckpointError("manifest: trailing bytes in " + path);
      }
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }
  }

  // Agreement before mutation: if rank 0 saw a bad file, every rank throws
  // and no relation has been touched.
  if (comm.allreduce<std::uint8_t>(failed ? 1 : 0, vmpi::ReduceOp::kLor) != 0) {
    throw CheckpointError(comm.rank() == 0 ? error : "manifest: load failed on rank 0");
  }

  at.stratum = comm.bcast_value<std::uint64_t>(0, at.stratum);
  at.iteration = comm.bcast_value<std::uint64_t>(0, at.iteration);
  at.total_iterations = comm.bcast_value<std::uint64_t>(0, at.total_iterations);

  for (std::size_t i = 0; i < program.relations().size(); ++i) {
    Relation& rel = *program.relations()[i];
    // Rank 0 contributes all rows, everyone else an empty slice; after
    // load_facts the delta equals the loaded full version, which is the
    // superset restart semi-naive resumption relies on.
    rel.reset();
    rel.load_facts(rows[i]);
  }
  return at;
}

}  // namespace paralagg::core

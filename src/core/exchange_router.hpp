#pragma once

// Fused per-iteration exchange routing.
//
// The paper's thesis is communication avoidance, yet a naive engine pays
// one all-to-all of generated tuples per *rule* per iteration: a stratum
// with R loop rules issues ~2R collective exchanges per iteration, each
// with its own latency floor.  The ExchangeRouter decouples *emitting* a
// result tuple from *shipping* it: rules append rows into per-destination
// flat value_t buffers owned by the router, and the engine flushes the
// router once per iteration with a single tagged alltoallv — collapsing
// ~2R exchanges to R+1 (the R intra-bucket exchanges remain per join).
//
// Because the router is the single choke point for generated tuples, two
// further communication-avoidance moves become trivial here:
//
//   * Self-loopback fast path: a row owned by the emitting rank bypasses
//     serialization entirely and lands directly in the target's staging
//     area.
//   * Sender-side pre-aggregation (partial partial aggregates): rows bound
//     for the same rank that agree on their independent columns collapse
//     through the target's lattice join *before* they ever hit the wire —
//     the paper's §IV-A fusion, extended across all rules feeding a target.
//
// Wire format of one flush, per destination rank (all units are value_t):
//
//   [ route_id | row_count | row_count * arity values ]*  wire-trailer
//
// followed by the core::wire trailer (sequence, length, CRC-32, magic; see
// core/wire.hpp) sealing every non-empty buffer.  decode() validates the
// trailer before the zero-copy reader touches the payload, so a corrupted
// or truncated frame surfaces as vmpi::FrameDecodeError instead of
// undefined behaviour.  Empty buffers stay zero bytes on the wire.
//
// Route ids are per-router registration indices; every rank must register
// the same relations in the same order (SPMD, like everything else here).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/profile.hpp"
#include "core/relation.hpp"
#include "vmpi/comm.hpp"

namespace paralagg::core {

/// How the tuple exchanges are routed.
enum class ExchangeAlgorithm : std::uint8_t {
  kDense,  // matrix alltoallv (bandwidth-optimal)
  kBruck,  // log-round relay (message-count-optimal; see vmpi::Comm)
  /// Two-level topology-aware exchange: every node's aggregator rank —
  /// elected per flush by staged delta bytes (vmpi::Topology::
  /// elect_leaders; ties to the lowest rank) so the heaviest member merges
  /// in place — pre-merges the node's buffered deltas through the
  /// sender-side combine, a leaders-only ialltoallv carries the merged
  /// frames across nodes, and each leader scatters the arrivals
  /// intra-node.  3 steps instead of 1, but the
  /// cross-node volume shrinks by whatever the node-level MIN/MAX merge
  /// collapses.  Router flushes only; the raw exchange_alltoallv helper
  /// (intra-bucket shuffles, no combine context) degrades it to kDense.
  /// Under a flat topology (node_size 1) it IS kDense.
  kHierarchical,
};

/// One collective tuple exchange under the chosen algorithm.  Collective.
std::vector<vmpi::Bytes> exchange_alltoallv(vmpi::Comm& comm, std::vector<vmpi::Bytes> send,
                                            ExchangeAlgorithm algo);

struct RouterFlushStats {
  std::uint64_t rows_sent = 0;       // rows serialized toward remote ranks
  std::uint64_t rows_staged = 0;     // rows decoded and staged from the exchange
  std::uint64_t rows_loopback = 0;   // self-owned rows staged without serialization
  std::uint64_t rows_combined = 0;   // rows collapsed by sender-side pre-aggregation
  /// Rows whose join key was hot at emit time: routed to the H2 spread
  /// rank instead of the owner (skew-optimal layout, DESIGN.md §13).
  std::uint64_t rows_hot_routed = 0;
  /// Rows the node aggregator collapsed across its members' contributions
  /// before the leaders-only exchange (hierarchical path, leaders only) —
  /// the cross-node bytes the two-level exchange avoided.
  std::uint64_t rows_node_merged = 0;
  /// The rank this flush elected as this rank's node aggregator
  /// (hierarchical path only; -1 elsewhere).  Election is by staged delta
  /// bytes with ties to the lowest rank, so the member already holding the
  /// most data merges in place instead of shipping it up first.
  int elected_leader = -1;
};

class ExchangeRouter {
 public:
  /// `preaggregate` enables the sender-side combine pass at flush time.
  explicit ExchangeRouter(vmpi::Comm& comm, bool preaggregate = true);

  ExchangeRouter(const ExchangeRouter&) = delete;
  ExchangeRouter& operator=(const ExchangeRouter&) = delete;

  /// Register a target relation and return its route id.  Idempotent: a
  /// relation registered twice keeps its first id.  Every rank must
  /// register identical relations in the same order (route ids travel in
  /// the frames).
  std::uint32_t add_target(Relation* rel);

  [[nodiscard]] std::size_t target_count() const { return targets_.size(); }
  [[nodiscard]] vmpi::Comm& comm() const { return *comm_; }

  /// Route a generated row toward its owner: self-owned rows stage
  /// immediately (loopback fast path), remote rows are buffered until the
  /// next flush.  `row` must be in the target's stored order.
  void emit(std::uint32_t route_id, std::span<const value_t> row);

  /// Rows currently buffered for remote ranks on this rank.
  [[nodiscard]] std::uint64_t pending_rows() const { return pending_rows_; }

  /// One collective exchange carrying every buffered row, decoded straight
  /// into the target relations' staging areas (bulk, with pre-reserve).
  /// Collective: every rank must call flush the same number of times, even
  /// with nothing buffered.
  RouterFlushStats flush(RankProfile& profile, ExchangeAlgorithm algo);

  // -- split-phase flush ------------------------------------------------------
  //
  // post() serializes the rows buffered so far and launches the exchange
  // nonblocking (vmpi::Comm::ialltoallv); complete() blocks for whatever
  // latency the caller failed to hide (Phase::kOverlapWait) and stages the
  // received frames.  Between the two, emit() keeps working: rows land in
  // the *other* generation of per-destination buckets (double-buffered
  // staging, mirroring MPI's send-buffer-stability rule), so the frozen
  // in-flight buffers are never touched.  At most one exchange may be in
  // flight per router; both calls are collective in SPMD order.
  //
  // Under kBruck the log-n relay rounds are inherently blocking, so post()
  // degrades to an eager exchange and complete() only decodes — the same
  // state machine with no latency hidden.

  /// Launch the exchange for everything buffered; nonblocking under kDense.
  void post(RankProfile& profile, ExchangeAlgorithm algo);

  /// Absorb the in-flight exchange posted last: waits (if needed), stages
  /// every received frame, and recycles the frozen buffers.
  RouterFlushStats complete(RankProfile& profile);

  /// True between a post() and the matching complete().
  [[nodiscard]] bool in_flight() const { return inflight_.active; }

 private:
  /// recycle() returns a bucket's memory only above this capacity (in
  /// value_t) — smaller buffers are cheap to keep warm across flushes.
  static constexpr std::size_t kShrinkFloorValues = std::size_t{1} << 15;

  // Tag spaces of the hierarchical exchange's intra-node legs (member ->
  // leader gather, leader -> member scatter).  Disjoint from every vmpi
  // and async tag space; rotated per flush so an injected duplicate or
  // delayed frame can never match a later flush's receive.
  static constexpr int kHierUpTagBase = 0x48A10000;
  static constexpr int kHierDownTagBase = 0x48A20000;
  static constexpr std::uint64_t kHierTagWindow = 4096;

  [[nodiscard]] std::vector<value_t>& bucket(std::size_t route_id, std::size_t dest) {
    return outgoing_[cur_gen_][route_id * static_cast<std::size_t>(comm_->size()) + dest];
  }
  /// In-place sender-side combine of one (relation, destination) buffer:
  /// plain targets deduplicate whole rows, aggregated targets fold rows
  /// with equal independent columns through the lattice join.
  void combine(const Relation& rel, std::vector<value_t>& rows, RouterFlushStats& st);
  /// Serialize the current generation into per-destination send buffers
  /// (combining when enabled).  Buckets are left intact — frozen — for the
  /// caller to recycle() once the exchange no longer needs them.
  std::vector<vmpi::Bytes> pack(RouterFlushStats& st);
  /// Clear one generation's buckets, retaining capacity across flushes;
  /// shrink only a bucket whose capacity dwarfs what it just carried.
  void recycle(std::size_t gen);
  /// Stage every frame of a finished exchange (Phase::kDedupAgg).
  void decode(const std::vector<vmpi::Bytes>& received, RouterFlushStats& st,
              RankProfile& profile);

  // -- hierarchical (two-level) exchange --------------------------------------
  //
  // post side: members serialize their buckets as [dst|route|count|rows]*
  // frames (CRC-sealed, faultable isend) toward their node leader; the
  // leader merges its own buckets with the arrivals per (dst, route),
  // runs the combine pass once per merged bucket (the node-level
  // pre-aggregation), packs one frame per destination *node*, and every
  // rank posts the leaders-only ialltoallv (non-leaders all-empty, which
  // keeps the call collective and the split-phase overlap intact).
  // complete side: leaders unpack per final destination, stage their own
  // rows, and scatter one sealed frame per member; members recv + stage.
  // Leg bytes are attributed to Op::kAlltoallv with intra-node locality;
  // the leaders' exchange records its own cross-node bytes.

  /// Up-gather + node merge + leaders-only send vector.  Returns the
  /// buffers to post (empty everywhere for non-leader ranks).
  std::vector<vmpi::Bytes> pack_hier(RouterFlushStats& st);
  /// Decode the leaders' exchange, scatter intra-node, stage everything.
  void absorb_hier(const std::vector<vmpi::Bytes>& received, RouterFlushStats& st,
                   RankProfile& profile);

  /// One split-phase exchange in flight: the ticket (or, under kBruck, the
  /// eagerly exchanged buffers), the generation it froze, and the send-side
  /// stats carried from post() to complete().
  struct InFlight {
    bool active = false;
    bool eager = false;
    bool hier = false;         // absorb via absorb_hier instead of decode
    std::uint64_t hier_seq = 0;
    std::size_t gen = 0;
    vmpi::Comm::Ticket ticket;
    std::vector<vmpi::Bytes> received;
    RouterFlushStats stats;
    /// Elected leader per node for this flush, node-indexed.  Stored here
    /// so the pack (post) and absorb (complete) sides agree even when
    /// emits refill the other generation in between.
    std::vector<int> leaders;
  };

  vmpi::Comm* comm_;
  bool preaggregate_;
  std::vector<Relation*> targets_;
  // Flat row buffers, target-major: outgoing_[gen][route_id * nranks + dest].
  // Two generations: emits fill cur_gen_ while the other may be frozen
  // under an in-flight exchange.
  std::array<std::vector<std::vector<value_t>>, 2> outgoing_;
  std::size_t cur_gen_ = 0;
  InFlight inflight_;
  std::uint64_t pending_rows_ = 0;
  std::uint64_t loopback_rows_ = 0;
  std::uint64_t hot_routed_rows_ = 0;
  std::uint64_t flush_seq_ = 0;  // frame sequence stamp (advances per pack)
  std::uint64_t hier_seq_ = 0;   // hierarchical flush sequence (tag rotation)
};

}  // namespace paralagg::core

#pragma once

// Fused per-iteration exchange routing.
//
// The paper's thesis is communication avoidance, yet a naive engine pays
// one all-to-all of generated tuples per *rule* per iteration: a stratum
// with R loop rules issues ~2R collective exchanges per iteration, each
// with its own latency floor.  The ExchangeRouter decouples *emitting* a
// result tuple from *shipping* it: rules append rows into per-destination
// flat value_t buffers owned by the router, and the engine flushes the
// router once per iteration with a single tagged alltoallv — collapsing
// ~2R exchanges to R+1 (the R intra-bucket exchanges remain per join).
//
// Because the router is the single choke point for generated tuples, two
// further communication-avoidance moves become trivial here:
//
//   * Self-loopback fast path: a row owned by the emitting rank bypasses
//     serialization entirely and lands directly in the target's staging
//     area.
//   * Sender-side pre-aggregation (partial partial aggregates): rows bound
//     for the same rank that agree on their independent columns collapse
//     through the target's lattice join *before* they ever hit the wire —
//     the paper's §IV-A fusion, extended across all rules feeding a target.
//
// Wire format of one flush, per destination rank (all units are value_t):
//
//   [ route_id | row_count | row_count * arity values ]*   ("frames")
//
// Route ids are per-router registration indices; every rank must register
// the same relations in the same order (SPMD, like everything else here).

#include <cstdint>
#include <span>
#include <vector>

#include "core/profile.hpp"
#include "core/relation.hpp"

namespace paralagg::core {

/// How the tuple exchanges are routed.
enum class ExchangeAlgorithm : std::uint8_t {
  kDense,  // matrix alltoallv (bandwidth-optimal)
  kBruck,  // log-round relay (message-count-optimal; see vmpi::Comm)
};

/// One collective tuple exchange under the chosen algorithm.  Collective.
std::vector<vmpi::Bytes> exchange_alltoallv(vmpi::Comm& comm, std::vector<vmpi::Bytes> send,
                                            ExchangeAlgorithm algo);

struct RouterFlushStats {
  std::uint64_t rows_sent = 0;       // rows serialized toward remote ranks
  std::uint64_t rows_staged = 0;     // rows decoded and staged from the exchange
  std::uint64_t rows_loopback = 0;   // self-owned rows staged without serialization
  std::uint64_t rows_combined = 0;   // rows collapsed by sender-side pre-aggregation
};

class ExchangeRouter {
 public:
  /// `preaggregate` enables the sender-side combine pass at flush time.
  explicit ExchangeRouter(vmpi::Comm& comm, bool preaggregate = true);

  ExchangeRouter(const ExchangeRouter&) = delete;
  ExchangeRouter& operator=(const ExchangeRouter&) = delete;

  /// Register a target relation and return its route id.  Idempotent: a
  /// relation registered twice keeps its first id.  Every rank must
  /// register identical relations in the same order (route ids travel in
  /// the frames).
  std::uint32_t add_target(Relation* rel);

  [[nodiscard]] std::size_t target_count() const { return targets_.size(); }
  [[nodiscard]] vmpi::Comm& comm() const { return *comm_; }

  /// Route a generated row toward its owner: self-owned rows stage
  /// immediately (loopback fast path), remote rows are buffered until the
  /// next flush.  `row` must be in the target's stored order.
  void emit(std::uint32_t route_id, std::span<const value_t> row);

  /// Rows currently buffered for remote ranks on this rank.
  [[nodiscard]] std::uint64_t pending_rows() const { return pending_rows_; }

  /// One collective exchange carrying every buffered row, decoded straight
  /// into the target relations' staging areas (bulk, with pre-reserve).
  /// Collective: every rank must call flush the same number of times, even
  /// with nothing buffered.
  RouterFlushStats flush(RankProfile& profile, ExchangeAlgorithm algo);

 private:
  [[nodiscard]] std::vector<value_t>& bucket(std::size_t route_id, std::size_t dest) {
    return outgoing_[route_id * static_cast<std::size_t>(comm_->size()) + dest];
  }
  /// In-place sender-side combine of one (relation, destination) buffer:
  /// plain targets deduplicate whole rows, aggregated targets fold rows
  /// with equal independent columns through the lattice join.
  void combine(const Relation& rel, std::vector<value_t>& rows, RouterFlushStats& st);

  vmpi::Comm* comm_;
  bool preaggregate_;
  std::vector<Relation*> targets_;
  // Flat row buffers, target-major: outgoing_[route_id * nranks + dest].
  std::vector<std::vector<value_t>> outgoing_;
  std::uint64_t pending_rows_ = 0;
  std::uint64_t loopback_rows_ = 0;
};

}  // namespace paralagg::core

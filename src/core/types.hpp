#pragma once

// Shared vocabulary types for the PARALAGG engine.

#include <cstdint>

#include "storage/tuple.hpp"

namespace paralagg::core {

using storage::Tuple;
using storage::value_t;

/// Semi-naive evaluation splits each relation into versions (paper §II-C):
/// `delta` holds tuples discovered last iteration, `full` everything known.
/// (The transient `new` version lives in the staging area of Relation and
/// never needs a name of its own.)
enum class Version : std::uint8_t { kDelta, kFull };

/// How an aggregated relation's accumulator evolves across iterations.
enum class AggMode : std::uint8_t {
  /// Monotone lattice join (paper §III): values only ascend, the delta is
  /// the set of rows whose accumulator changed, and the ascending-chain
  /// condition guarantees termination.  $MIN / $MAX / set-union live here.
  kLattice,
  /// Per-iteration recomputation: each round the staged contributions are
  /// aggregated from scratch and *replace* the stored value (Jacobi-style).
  /// Not monotone, so strata using it run a fixed number of rounds.
  /// PageRank's $SUM lives here (the RaSQL/SociaLite formulation the paper
  /// cites).
  kRefresh,
};

}  // namespace paralagg::core

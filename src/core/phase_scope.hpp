#pragma once

// RAII scope measuring one engine phase: thread CPU seconds plus the remote
// bytes this rank sent while inside the scope.  The byte delta attributes
// communication volume to phases, reproducing the paper's per-phase
// breakdowns (Fig. 2) without touching the communication code itself.

#include "core/profile.hpp"
#include "vmpi/comm.hpp"

namespace paralagg::core {

class PhaseScope {
 public:
  PhaseScope(vmpi::Comm& comm, RankProfile& profile, Phase phase)
      : timer_(profile, phase),
        comm_(&comm),
        profile_(&profile),
        phase_(phase),
        start_bytes_(comm.stats().total_remote_bytes()) {}

  ~PhaseScope() {
    profile_->add_bytes(phase_, comm_->stats().total_remote_bytes() - start_bytes_);
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  ScopedPhaseTimer timer_;
  vmpi::Comm* comm_;
  RankProfile* profile_;
  Phase phase_;
  std::uint64_t start_bytes_;
};

}  // namespace paralagg::core

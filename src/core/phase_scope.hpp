#pragma once

// RAII scope measuring one engine phase: thread CPU seconds plus the remote
// bytes this rank sent, the collective exchange rounds it issued, and the
// wall seconds it spent parked in blocking communication while inside the
// scope.  The deltas attribute communication volume, round counts, and
// exposed exchange latency to phases, reproducing the paper's per-phase
// breakdowns (Fig. 2) without touching the communication code itself.

#include "core/profile.hpp"
#include "vmpi/comm.hpp"

namespace paralagg::core {

class PhaseScope {
 public:
  PhaseScope(vmpi::Comm& comm, RankProfile& profile, Phase phase)
      : timer_(profile, phase),
        comm_(&comm),
        profile_(&profile),
        phase_(phase),
        start_bytes_(comm.stats().total_remote_bytes()),
        start_cross_bytes_(comm.stats().total_cross_node_bytes()),
        start_exchanges_(comm.stats().exchange_rounds()),
        start_steps_(comm.stats().total_steps()),
        start_wait_(comm.stats().wait_seconds),
        start_retransmits_(comm.stats().retransmits),
        start_heal_(comm.stats().heal_seconds) {}

  ~PhaseScope() {
    profile_->add_bytes(phase_, comm_->stats().total_remote_bytes() - start_bytes_);
    profile_->add_cross_bytes(phase_,
                              comm_->stats().total_cross_node_bytes() - start_cross_bytes_);
    profile_->add_exchanges(phase_, comm_->stats().exchange_rounds() - start_exchanges_);
    profile_->add_steps(phase_, comm_->stats().total_steps() - start_steps_);
    profile_->add_wait(phase_, comm_->stats().wait_seconds - start_wait_);
    profile_->add_heal(comm_->stats().retransmits - start_retransmits_,
                       comm_->stats().heal_seconds - start_heal_);
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  ScopedPhaseTimer timer_;
  vmpi::Comm* comm_;
  RankProfile* profile_;
  Phase phase_;
  std::uint64_t start_bytes_;
  std::uint64_t start_cross_bytes_;
  std::uint64_t start_exchanges_;
  std::uint64_t start_steps_;
  double start_wait_;
  std::uint64_t start_retransmits_;
  double start_heal_;
};

}  // namespace paralagg::core

#pragma once

// RAII scope measuring one engine phase: thread CPU seconds plus the remote
// bytes this rank sent and the collective exchange rounds it issued while
// inside the scope.  The deltas attribute communication volume and round
// counts to phases, reproducing the paper's per-phase breakdowns (Fig. 2)
// without touching the communication code itself.

#include "core/profile.hpp"
#include "vmpi/comm.hpp"

namespace paralagg::core {

class PhaseScope {
 public:
  PhaseScope(vmpi::Comm& comm, RankProfile& profile, Phase phase)
      : timer_(profile, phase),
        comm_(&comm),
        profile_(&profile),
        phase_(phase),
        start_bytes_(comm.stats().total_remote_bytes()),
        start_exchanges_(comm.stats().exchange_rounds()) {}

  ~PhaseScope() {
    profile_->add_bytes(phase_, comm_->stats().total_remote_bytes() - start_bytes_);
    profile_->add_exchanges(phase_, comm_->stats().exchange_rounds() - start_exchanges_);
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  ScopedPhaseTimer timer_;
  vmpi::Comm* comm_;
  RankProfile* profile_;
  Phase phase_;
  std::uint64_t start_bytes_;
  std::uint64_t start_exchanges_;
};

}  // namespace paralagg::core

#pragma once

// Validated wire framing for tuple exchanges.
//
// Every router / async frame is a flat stream of value_t words.  Under
// fault injection (vmpi::FaultPlan) a frame may arrive with a flipped
// byte, duplicated, or matched against the wrong exchange; the zero-copy
// TypedReader would turn any of that into silent garbage or UB.  Sealing
// appends a fixed trailer
//
//   [ seq | payload_words | crc32 | magic ]      (4 x value_t)
//
// where the CRC covers the payload plus the seq and length words.
// open_frame() validates size, magic, length, and CRC before exposing the
// payload, throwing vmpi::FrameDecodeError on any mismatch — a corrupted
// frame becomes a typed failure, never undefined behaviour.
//
// A truly empty buffer (a destination that got nothing this flush) is
// NOT sealed: "no data" stays zero bytes on the wire, preserving the
// engine's zero-extra-communication property for empty exchanges.  The
// seq word lets receivers on faultable transports (isend/drain) detect
// injected duplicates; slot-based collectives may pass any value.

#include <cstring>
#include <span>

#include "core/types.hpp"
#include "vmpi/crc32.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/serialize.hpp"

namespace paralagg::core::wire {

inline constexpr value_t kFrameMagic = 0x50'41'52'41'46'52'4dULL;  // "PARAFRM"
inline constexpr std::size_t kTrailerWords = 4;
inline constexpr std::size_t kTrailerBytes = kTrailerWords * sizeof(value_t);

/// A validated view into a received buffer.  `payload` aliases the buffer
/// passed to open_frame, which must outlive it.
struct Frame {
  std::span<const std::byte> payload;
  value_t seq = 0;
  [[nodiscard]] bool empty() const { return payload.empty(); }
};

/// Append the trailer to the words written so far.  No-op on an empty
/// writer (empty frames travel as zero bytes and open as empty frames).
inline void seal_frame(vmpi::TypedWriter<value_t>& w, value_t seq) {
  if (w.empty()) return;
  const auto payload_words = static_cast<value_t>(w.elements());
  w.put(seq);
  w.put(payload_words);
  // CRC over payload || seq || len, so trailer corruption is caught too.
  w.put(static_cast<value_t>(vmpi::crc32(w.bytes())));
  w.put(kFrameMagic);
}

/// Validate a sealed buffer and return its payload view.
/// Throws vmpi::FrameDecodeError if the buffer is not an intact frame.
inline Frame open_frame(std::span<const std::byte> buf) {
  if (buf.empty()) return Frame{};
  if (buf.size() % sizeof(value_t) != 0) {
    throw vmpi::FrameDecodeError("wire: frame size is not a whole word count");
  }
  const std::size_t words = buf.size() / sizeof(value_t);
  if (words < kTrailerWords) {
    throw vmpi::FrameDecodeError("wire: frame shorter than its trailer");
  }
  const auto word_at = [&](std::size_t i) {
    value_t v;
    std::memcpy(&v, buf.data() + i * sizeof(value_t), sizeof(value_t));
    return v;
  };
  if (word_at(words - 1) != kFrameMagic) {
    throw vmpi::FrameDecodeError("wire: bad frame magic");
  }
  const value_t crc = word_at(words - 2);
  const value_t payload_words = word_at(words - 3);
  if (payload_words != words - kTrailerWords) {
    throw vmpi::FrameDecodeError("wire: frame length word disagrees with buffer size");
  }
  if (static_cast<value_t>(vmpi::crc32(buf.first((words - 2) * sizeof(value_t)))) != crc) {
    throw vmpi::FrameDecodeError("wire: frame CRC mismatch");
  }
  return Frame{buf.first(static_cast<std::size_t>(payload_words) * sizeof(value_t)),
               word_at(words - 4)};
}

}  // namespace paralagg::core::wire

#pragma once

// Per-rank, per-iteration phase profiling.
//
// The paper's figures break running time into phases (Fig. 2: balancing,
// join planning, intra-bucket communication, local join, all-to-all
// "comm", deduplication/aggregation) and per-iteration series (Fig. 7).
// This profiler reproduces both views.
//
// Because this reproduction runs all ranks on one physical core, wall
// clock cannot separate the ranks; instead each rank measures its own
// *thread CPU time* per phase (CLOCK_THREAD_CPUTIME_ID — time actually
// spent computing in that rank, excluding time blocked in collectives),
// plus abstract work counters (probes, tuples, bytes).  The harness then
// reports the BSP critical-path model:
//
//   modelled time(phase) = Σ over iterations of max over ranks of
//                          cpu_seconds(rank, iteration, phase)
//
// which is exactly what an ideally overlapped distributed run would pay,
// and reproduces the *shape* of the paper's strong-scaling curves.

#include <array>
#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

namespace paralagg::vmpi {
class Comm;
}

namespace paralagg::core {

enum class Phase : std::uint8_t {
  kBalance = 0,    // spatial load balancing (sub-bucket reshuffle)
  kPlan,           // dynamic join planning vote (Algorithm 1)
  kIntraBucket,    // outer-relation serialization + intra-bucket exchange
  kLocalJoin,      // B-tree probing and output construction
  kAllToAll,       // distributing newly generated tuples ("comm" in Fig. 2)
  kDedupAgg,       // fused deduplication / local aggregation
  kOverlapWait,    // completing an in-flight split-phase exchange (exposed time)
  kOther,          // termination detection, bookkeeping
  kCount,
};

constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

constexpr std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kBalance: return "balance";
    case Phase::kPlan: return "plan";
    case Phase::kIntraBucket: return "intra-bucket";
    case Phase::kLocalJoin: return "local-join";
    case Phase::kAllToAll: return "all-to-all";
    case Phase::kDedupAgg: return "dedup/agg";
    case Phase::kOverlapWait: return "overlap-wait";
    case Phase::kOther: return "other";
    case Phase::kCount: break;
  }
  return "?";
}

/// One iteration's phase totals for one rank.
struct IterationRecord {
  std::array<double, kPhaseCount> cpu_seconds{};
  std::array<std::uint64_t, kPhaseCount> work{};
  std::array<std::uint64_t, kPhaseCount> bytes{};      // remote bytes sent in phase
  /// Subset of `bytes` that crossed a node boundary under the configured
  /// vmpi::Topology (flat topology: equal to `bytes`).  The split is what
  /// the hierarchical exchange and the schedule choice move.
  std::array<std::uint64_t, kPhaseCount> cross_bytes{};
  std::array<std::uint64_t, kPhaseCount> exchanges{};  // collective exchange rounds in phase
  /// Schedule steps (latency-bearing rounds) the collectives in this phase
  /// took: n-1 under kLinear, ceil(log2 n) under the log-step schedules, 3
  /// for a hierarchical flush.  Steps x latency is the sync term of the
  /// modelled parallel time.
  std::array<std::uint64_t, kPhaseCount> steps{};
  /// Wall seconds parked in blocking communication during the phase
  /// (CommStats::wait_seconds deltas).  The thread-CPU clock cannot see
  /// blocked time, so this is the only per-phase window into *exposed*
  /// exchange latency — what the split-phase flush exists to hide.
  std::array<double, kPhaseCount> wait_seconds{};
  /// Reliable-transport healing this iteration (CommStats deltas): frames
  /// retransmitted and wall seconds spent between a frame's first send and
  /// its cumulative acknowledgement, counting only frames that needed at
  /// least one retransmit.  Not split by phase — a retransmit timer can
  /// fire while servicing any wait — so these are iteration scalars.
  std::uint64_t retransmits = 0;
  double heal_seconds = 0;

  IterationRecord& operator+=(const IterationRecord& o) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      cpu_seconds[i] += o.cpu_seconds[i];
      work[i] += o.work[i];
      bytes[i] += o.bytes[i];
      cross_bytes[i] += o.cross_bytes[i];
      exchanges[i] += o.exchanges[i];
      steps[i] += o.steps[i];
      wait_seconds[i] += o.wait_seconds[i];
    }
    retransmits += o.retransmits;
    heal_seconds += o.heal_seconds;
    return *this;
  }
};

/// Accumulates one rank's profile; owned by that rank's engine instance.
class RankProfile {
 public:
  void add_seconds(Phase p, double s) { current_.cpu_seconds[idx(p)] += s; }
  void add_work(Phase p, std::uint64_t w) { current_.work[idx(p)] += w; }
  void add_bytes(Phase p, std::uint64_t b) { current_.bytes[idx(p)] += b; }
  void add_cross_bytes(Phase p, std::uint64_t b) { current_.cross_bytes[idx(p)] += b; }
  void add_exchanges(Phase p, std::uint64_t n) { current_.exchanges[idx(p)] += n; }
  void add_steps(Phase p, std::uint64_t n) { current_.steps[idx(p)] += n; }
  void add_wait(Phase p, double s) { current_.wait_seconds[idx(p)] += s; }
  void add_heal(std::uint64_t retransmits, double seconds) {
    current_.retransmits += retransmits;
    current_.heal_seconds += seconds;
  }

  /// Close the current iteration and append it to the history.
  void end_iteration() {
    history_.push_back(current_);
    current_ = IterationRecord{};
  }

  [[nodiscard]] const std::vector<IterationRecord>& history() const { return history_; }
  [[nodiscard]] const IterationRecord& current() const { return current_; }

 private:
  static std::size_t idx(Phase p) { return static_cast<std::size_t>(p); }
  IterationRecord current_;
  std::vector<IterationRecord> history_;
};

/// RAII phase timer over the calling thread's CPU clock.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(RankProfile& profile, Phase phase)
      : profile_(&profile), phase_(phase), start_(thread_cpu_seconds()) {}
  ~ScopedPhaseTimer() { profile_->add_seconds(phase_, thread_cpu_seconds() - start_); }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

  /// CPU time consumed by the calling thread, in seconds.
  static double thread_cpu_seconds();

 private:
  RankProfile* profile_;
  Phase phase_;
  double start_;
};

/// Cross-rank view assembled after a run (on every rank, deterministic).
struct ProfileSummary {
  std::size_t iterations = 0;
  int ranks = 0;

  /// Σ_iter max_ranks cpu_seconds — the BSP critical-path model.
  std::array<double, kPhaseCount> modelled_seconds{};
  /// Σ over ranks and iterations — total CPU burned.
  std::array<double, kPhaseCount> total_cpu_seconds{};
  /// Σ over ranks and iterations of remote bytes per phase.
  std::array<std::uint64_t, kPhaseCount> total_bytes{};
  /// Σ over ranks and iterations of cross-node bytes per phase (subset of
  /// total_bytes; equal to it under a flat topology).
  std::array<std::uint64_t, kPhaseCount> total_cross_bytes{};
  /// Σ over iterations of max-over-ranks collective exchange rounds per
  /// phase.  Every rank participates in every collective, so ranks agree
  /// on the count; the max guards against divergence bugs.  This is how
  /// the fused router's R+1-vs-2R reduction is *observed* rather than
  /// asserted.
  std::array<std::uint64_t, kPhaseCount> total_exchanges{};
  /// Σ over iterations of max-over-ranks schedule steps per phase — the
  /// latency-bearing round count the log-step schedules shrink from O(n)
  /// to O(log n).  Same max-guard rationale as total_exchanges.
  std::array<std::uint64_t, kPhaseCount> total_steps{};
  /// Σ over ranks and iterations of wall seconds parked in blocking
  /// communication per phase.  The "exposed exchange" metric of
  /// bench/overlap_flush: with the split-phase schedule, the shares of
  /// kAllToAll and kOverlapWait together must undercut the blocking flush.
  std::array<double, kPhaseCount> total_wait_seconds{};
  /// Σ over ranks and iterations of reliable-transport retransmits / wall
  /// seconds spent healing (time from a damaged frame's first send to its
  /// cumulative ACK).  Zero on a clean run or when retry is disabled.
  std::uint64_t total_retransmits = 0;
  double total_heal_seconds = 0;
  /// Per-iteration critical-path seconds per phase (Fig. 7 series).
  std::vector<std::array<double, kPhaseCount>> per_iteration_max;
  /// Per-iteration max-over-ranks remote bytes sent (feeds CostModel).
  std::vector<std::uint64_t> per_iteration_max_bytes;
  /// Per-iteration max-over-ranks cross-node bytes (feeds project_topology).
  std::vector<std::uint64_t> per_iteration_max_cross_bytes;
  /// Per-iteration max-over-ranks exchange rounds, all phases combined.
  std::vector<std::uint64_t> per_iteration_exchanges;
  /// Per-iteration max-over-ranks schedule steps, all phases combined.
  std::vector<std::uint64_t> per_iteration_steps;
  /// Per-iteration sum-over-ranks retransmits — which iterations healed.
  std::vector<std::uint64_t> per_iteration_retransmits;

  [[nodiscard]] double modelled_total() const {
    double s = 0;
    for (double v : modelled_seconds) s += v;
    return s;
  }
  [[nodiscard]] std::uint64_t bytes_total() const {
    std::uint64_t s = 0;
    for (auto v : total_bytes) s += v;
    return s;
  }
  [[nodiscard]] std::uint64_t exchanges_total() const {
    std::uint64_t s = 0;
    for (auto v : total_exchanges) s += v;
    return s;
  }
  [[nodiscard]] std::uint64_t cross_bytes_total() const {
    std::uint64_t s = 0;
    for (auto v : total_cross_bytes) s += v;
    return s;
  }
  [[nodiscard]] std::uint64_t steps_total() const {
    std::uint64_t s = 0;
    for (auto v : total_steps) s += v;
    return s;
  }
};

/// Collective: every rank contributes its history; all ranks receive the
/// same summary.  Instrumentation traffic is excluded from CommStats.
ProfileSummary summarize_profiles(vmpi::Comm& comm, const RankProfile& mine);

/// Projects a profile onto a target cluster: BSP per iteration, the
/// critical path pays the slowest rank's compute plus its communication at
/// the modelled link bandwidth, plus a per-iteration synchronization cost
/// that grows logarithmically with rank count (tree collectives).  This is
/// the model behind the scaling figures' "projected" columns: it makes the
/// top-of-sweep saturation (tiny deltas, fixed sync costs — the paper's
/// §V-D analysis) quantitative instead of anecdotal.
struct CostModel {
  double bytes_per_second = 1.0e9;      // effective per-link bandwidth
  double collective_latency = 5.0e-6;   // one tree round
  double collectives_per_iteration = 8; // plan + exchanges + termination
  /// How much dearer a cross-node byte is than an intra-node one on the
  /// modelled interconnect (matches vmpi::Topology::cross_cost_ratio).
  double cross_node_cost_ratio = 4.0;

  /// Projected seconds for the whole run on `ranks` ranks.
  [[nodiscard]] double project(const ProfileSummary& p, int ranks) const {
    double total = 0;
    for (std::size_t it = 0; it < p.per_iteration_max.size(); ++it) {
      double cpu = 0;
      for (double v : p.per_iteration_max[it]) cpu += v;
      const double comm =
          it < p.per_iteration_max_bytes.size()
              ? static_cast<double>(p.per_iteration_max_bytes[it]) / bytes_per_second
              : 0.0;
      total += cpu + comm;
    }
    const double sync = collective_latency * collectives_per_iteration *
                        std::log2(static_cast<double>(ranks < 2 ? 2 : ranks)) *
                        static_cast<double>(p.iterations);
    return total + sync;
  }

  /// Topology-aware projection.  Two refinements over project(): the
  /// bandwidth term splits the measured volume by locality — a cross-node
  /// byte costs cross_node_cost_ratio link-bytes, an intra-node byte one —
  /// and the synchronization term charges the *measured* schedule steps
  /// one collective_latency each instead of assuming a fixed collective
  /// count per iteration.  This is the number the log-step schedules and
  /// the hierarchical exchange are designed to shrink.
  [[nodiscard]] double project_topology(const ProfileSummary& p) const {
    double total = 0;
    std::uint64_t steps = 0;
    for (std::size_t it = 0; it < p.per_iteration_max.size(); ++it) {
      double cpu = 0;
      for (double v : p.per_iteration_max[it]) cpu += v;
      const std::uint64_t all =
          it < p.per_iteration_max_bytes.size() ? p.per_iteration_max_bytes[it] : 0;
      const std::uint64_t cross =
          it < p.per_iteration_max_cross_bytes.size() ? p.per_iteration_max_cross_bytes[it] : 0;
      // Maxima are per metric, so all >= cross holds rank-by-rank.
      const double link_bytes = static_cast<double>(all - cross) +
                                cross_node_cost_ratio * static_cast<double>(cross);
      total += cpu + link_bytes / bytes_per_second;
      if (it < p.per_iteration_steps.size()) steps += p.per_iteration_steps[it];
    }
    return total + collective_latency * static_cast<double>(steps);
  }
};

}  // namespace paralagg::core

#include "core/skew.hpp"

#include <algorithm>
#include <unordered_map>

#include "vmpi/serialize.hpp"

namespace paralagg::core {

namespace {

/// (count desc, key asc) — the total order both the per-rank nomination
/// and the global fold sort by.  Key ascending breaks count ties, so the
/// truncation point is deterministic.
bool hotter(const HotCandidate& a, const HotCandidate& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

}  // namespace

std::vector<Tuple> fold_hot_candidates(const std::vector<HotCandidate>& candidates,
                                       const SkewConfig& cfg) {
  std::unordered_map<Tuple, std::uint64_t, storage::TupleHash> totals;
  totals.reserve(candidates.size());
  for (const auto& [key, count] : candidates) totals[key] += count;

  std::vector<HotCandidate> hot;
  for (auto& [key, count] : totals) {
    if (count >= cfg.hot_threshold) hot.emplace_back(key, count);
  }
  std::sort(hot.begin(), hot.end(), hotter);
  if (hot.size() > cfg.max_hot_keys) hot.resize(cfg.max_hot_keys);

  std::vector<Tuple> keys;
  keys.reserve(hot.size());
  for (auto& [key, count] : hot) keys.push_back(std::move(key));
  return keys;
}

std::vector<Tuple> detect_hot_keys(vmpi::Comm& comm, const Relation& rel,
                                   const SkewConfig& cfg) {
  // 1. Local delta histogram by join-key prefix.
  std::unordered_map<Tuple, std::uint64_t, storage::TupleHash> local;
  rel.tree(Version::kDelta).for_each([&](std::span<const value_t> t) {
    ++local[Tuple(t.subspan(0, rel.jcc()))];
  });

  // 2. Nominate this rank's top candidates.
  std::vector<HotCandidate> mine;
  mine.reserve(local.size());
  for (auto& [key, count] : local) mine.emplace_back(key, count);
  std::sort(mine.begin(), mine.end(), hotter);
  if (mine.size() > cfg.max_candidates_per_rank) mine.resize(cfg.max_candidates_per_rank);

  // 3. One allgatherv of (count, key-columns) records.  vmpi returns the
  // buffers rank-ordered and byte-identical on every rank.
  vmpi::TypedWriter<value_t> w;
  for (const auto& [key, count] : mine) {
    w.put(count);
    w.put_span(key.view());
  }
  const auto gathered = comm.allgatherv(w.take());

  // 4. Identical fold on identical input -> identical hot set everywhere.
  std::vector<HotCandidate> all;
  for (const auto& buf : gathered) {
    vmpi::TypedReader<value_t> r(buf);
    while (!r.done()) {
      const std::uint64_t count = r.get();
      all.emplace_back(Tuple(r.take_span(rel.jcc())), count);
    }
  }
  return fold_hot_candidates(all, cfg);
}

}  // namespace paralagg::core

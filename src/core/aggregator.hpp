#pragma once

// The recursive-aggregate API (paper Listing 1).
//
// An aggregator interprets the trailing "dependent" columns of a tuple as
// an element of a join-semilattice.  `partial_agg` is the lattice join ⊔;
// `partial_cmp` is the induced partial order.  The engine calls these from
// the fused deduplication/aggregation pass: when a newly generated tuple
// lands on the rank owning its independent columns, its dependent value is
// joined into the stored accumulator, and only a strict lattice ascent
// enters the delta — anything else is "no new information" and is dropped
// on the spot, with zero communication (paper §III-A, §IV-A).

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "core/types.hpp"

namespace paralagg::core {

enum class PartialOrder : std::uint8_t { kLess, kEqual, kGreater, kIncomparable };

/// Base class for recursive aggregates; mirrors the paper's
/// `RecursiveAggregator` (Listing 1) with spans in place of value sets.
/// Implementations must be stateless and thread-safe: one instance is
/// shared by every rank.
class RecursiveAggregator {
 public:
  virtual ~RecursiveAggregator() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Number of dependent (aggregated) columns; they are the tuple suffix.
  [[nodiscard]] virtual std::size_t dep_arity() const { return 1; }

  /// Partial order on dependent values.  a kLess b means b carries strictly
  /// more information (b = a ⊔ b, a != b).
  [[nodiscard]] virtual PartialOrder partial_cmp(std::span<const value_t> a,
                                                 std::span<const value_t> b) const = 0;

  /// Lattice join: out := a ⊔ b.  out has dep_arity() columns and may alias
  /// neither input.
  virtual void partial_agg(std::span<const value_t> a, std::span<const value_t> b,
                           std::span<value_t> out) const = 0;

  /// True when partial_agg is a genuine semilattice join (commutative,
  /// associative, AND idempotent: a ⊔ a = a).  Idempotence is what makes a
  /// fixpoint insensitive to duplicated or re-ordered delta delivery, so
  /// only idempotent aggregates may run under the asynchronous engine's
  /// free-running fixpoint loop.
  /// $SUM is the counterexample: re-applying a stale delta double-counts.
  [[nodiscard]] virtual bool idempotent() const { return true; }

  /// True when the aggregate tolerates the stale-synchronous engine's
  /// exactly-once delivery discipline: commutative and associative, so a
  /// round's contributions may fold in any arrival order, provided each is
  /// folded exactly once.  Strictly weaker than idempotent() — every
  /// idempotent join qualifies, and so does $SUM, whose epoch-tagged
  /// partials the SSP ledger deduplicates before the fold.
  [[nodiscard]] virtual bool exactly_once_capable() const { return idempotent(); }

  /// True when partial_agg has a pre-mappable inverse: unapply() can
  /// retract a previously folded contribution.  Required for $SUM-style
  /// aggregates under AggMode::kRefresh, where a superseded partial must be
  /// replaceable (fold the new value, unapply the old) without recomputing
  /// the accumulator from scratch.
  [[nodiscard]] virtual bool invertible() const { return false; }

  /// Inverse of partial_agg: out := a ⊖ b, such that
  /// partial_agg(out, b) == a.  Only meaningful when invertible(); the
  /// default implementation refuses.
  virtual void unapply(std::span<const value_t> a, std::span<const value_t> b,
                       std::span<value_t> out) const;

  /// True when `candidate` strictly ascends past `current` — i.e. the fused
  /// pass must update the accumulator and emit a delta row.
  [[nodiscard]] bool ascends(std::span<const value_t> current,
                             std::span<const value_t> candidate) const {
    const auto c = partial_cmp(current, candidate);
    return c == PartialOrder::kLess || c == PartialOrder::kIncomparable;
  }
};

using AggregatorPtr = std::shared_ptr<const RecursiveAggregator>;

/// $MIN over one column: the (ℕ, min) semilattice, ordered by ≥ (smaller is
/// "more information").  SSSP and CC use this.
AggregatorPtr make_min_aggregator();

/// $MAX over one column: the (ℕ, max) semilattice.
AggregatorPtr make_max_aggregator();

/// Set-union over a 64-bit bitmask column: the powerset lattice P({0..63}).
/// Exercises a genuinely partial (non-chain) order.
AggregatorPtr make_bitor_aggregator();

/// $SUM over one column.  Addition is not idempotent, so this is only
/// meaningful under AggMode::kRefresh (PageRank) or in a single
/// non-recursive stratum (COUNT/SUM stratified aggregates); the engine
/// enforces this.
AggregatorPtr make_sum_aggregator();

/// $MCOUNT (DatalogFS-style monotonic count): partial counts are lower
/// bounds of the final count; the lattice join is max.
AggregatorPtr make_mcount_aggregator();

/// ($MIN, witness) pair over two columns: minimises column 0 and carries
/// column 1 along as the argmin witness (ties broken toward the smaller
/// witness, keeping the join deterministic).  Used for shortest-path trees.
AggregatorPtr make_argmin_aggregator();

}  // namespace paralagg::core

#pragma once

// Relational-algebra kernels: distributed binary join and copy/project.
//
// One call to `execute_join` is one pass of the pipeline in the paper's
// Fig. 1: dynamic join planning → outer-relation serialization →
// intra-bucket exchange (MPI_Alltoallv) → highly parallel local join
// (B-tree probes) → generated tuples *emitted into an ExchangeRouter*.
// Shipping is decoupled from emission: the engine flushes the router once
// per iteration (fused mode) or after each rule (legacy mode), and the
// flush stages arrivals into the target's fused dedup/aggregation area.
// Materialization itself (Relation::materialize) is driven by the engine
// at iteration end, after all rules have run.

#include <optional>
#include <variant>
#include <vector>

#include "core/exchange_router.hpp"
#include "core/expr.hpp"
#include "core/join_planner.hpp"
#include "core/profile.hpp"
#include "core/relation.hpp"

namespace paralagg::core {

/// Head of a rule: how each output column is computed from the joined pair
/// (side A, side B) — or from the single source tuple for copy rules.
struct OutputSpec {
  Relation* target = nullptr;
  std::vector<Expr> cols;  // one per target column, in the target's stored order
};

/// out(head) ← A(...), B(...) joined on the first `jcc` columns of each
/// side (A.jcc must equal B.jcc, and both sides must share the bucket
/// decomposition, which they do by construction).
///
/// With `anti = true` the rule is an ANTIJOIN (stratified negation,
/// paper §II-B background): a head tuple is emitted for each A row with
/// *no* matching B row (among matches, `filter` — which may reference both
/// sides — selects what counts as a match).  Head columns may then only
/// reference side A.  Side A is always the shipped side, and B must not be
/// sub-bucketed (a replica seeing "no local match" could not conclude
/// global absence).
struct JoinRule {
  Relation* a = nullptr;
  Version a_version = Version::kDelta;
  Relation* b = nullptr;
  Version b_version = Version::kFull;
  OutputSpec out;
  std::optional<Expr> filter;  // keep the pair when it evaluates nonzero
  /// Antijoins only: a side-A-only predicate gating emission.  (For a
  /// normal join an A-only condition can live in `filter`; for an antijoin
  /// it must not — "no matching B" would otherwise spuriously fire for A
  /// rows the rule never meant to consider.)
  std::optional<Expr> pre_filter;
  /// Per-rule override; the engine's config may force a fixed order for
  /// baseline measurements.
  JoinOrderPolicy order = JoinOrderPolicy::kDynamic;
  bool anti = false;
};

/// out(head) ← src(...) — projection/selection/copy, rerouted to the
/// target's distribution.
struct CopyRule {
  Relation* src = nullptr;
  Version version = Version::kDelta;
  OutputSpec out;  // Exprs may reference side A only
  std::optional<Expr> filter;
};

using Rule = std::variant<JoinRule, CopyRule>;

/// Probe-side strategy for the local join kernel.
enum class ProbeKernel {
  /// Sorted-batch (default): decode the received outer buffers into one
  /// flat probe batch, sort it by join-key prefix, share a single B-tree
  /// seek across equal keys (replaying the recorded match range), and
  /// drive everything through a monotone TupleBTree::Cursor so
  /// consecutive seeks resume from the current leaf.
  kSorted,
  /// Arrival-order probing with a fresh root descent per outer row — the
  /// pre-cursor baseline, kept for A/B measurement (bench/probe_kernel).
  kUnsorted,
};

struct RuleExecStats {
  bool a_was_outer = false;
  bool planned_dynamically = false;
  std::uint64_t outer_tuples_shipped = 0;  // intra-bucket serialization volume
  std::uint64_t probes = 0;                // outer tuples probed into the inner tree
  std::uint64_t probe_seeks = 0;           // B-tree seeks issued (< probes when
                                           // sorted batching dedups equal keys)
  std::uint64_t matches = 0;               // joined pairs surviving the filter
  std::uint64_t outputs = 0;               // tuples sent to the target
  std::uint64_t hot_broadcast_rows = 0;    // probe rows broadcast for hot inner keys
};

/// Run one join pass, emitting generated tuples into `router` (they ship
/// at the next router flush).  Collective (the intra-bucket exchange).
/// `forced` overrides the rule's own order policy when set (engine
/// baseline mode); `exchange` selects the intra-bucket algorithm.
RuleExecStats execute_join(vmpi::Comm& comm, RankProfile& profile, const JoinRule& rule,
                           ExchangeRouter& router,
                           std::optional<JoinOrderPolicy> forced = std::nullopt,
                           ExchangeAlgorithm exchange = ExchangeAlgorithm::kDense,
                           ProbeKernel kernel = ProbeKernel::kSorted);

/// Run one copy/project pass into `router`.  Local (copies only emit).
RuleExecStats execute_copy(RankProfile& profile, const CopyRule& rule,
                           ExchangeRouter& router);

/// Standalone variants: run the rule through a throwaway router and flush
/// it before returning — one exchange per rule, the legacy shape.  Used by
/// kernel tests and one-shot passes; the engine routes through a shared
/// router instead.
RuleExecStats execute_join(vmpi::Comm& comm, RankProfile& profile, const JoinRule& rule,
                           std::optional<JoinOrderPolicy> forced = std::nullopt,
                           ExchangeAlgorithm exchange = ExchangeAlgorithm::kDense,
                           ProbeKernel kernel = ProbeKernel::kSorted);
RuleExecStats execute_copy(vmpi::Comm& comm, RankProfile& profile, const CopyRule& rule,
                           ExchangeAlgorithm exchange = ExchangeAlgorithm::kDense);

/// Validate rule shape (arities, column references, join compatibility).
/// Throws std::invalid_argument with a descriptive message.
void validate_rule(const Rule& rule);

}  // namespace paralagg::core

#pragma once

// The semi-naive fixpoint executor.
//
// Per iteration (paper Fig. 1, left to right), fused-exchange mode:
//   1. spatial load balancing           (Phase::kBalance)
//   2. per rule: dynamic join planning  (Phase::kPlan)
//      intra-bucket exchange            (Phase::kIntraBucket)
//      local join → emit into router    (Phase::kLocalJoin)
//   3. ONE router flush for all rules   (Phase::kAllToAll)
//   4. fused dedup/local aggregation    (Phase::kDedupAgg)
//   5. global termination check         (Phase::kOther)
//
// With `fuse_exchanges` off the router is flushed after every rule,
// reproducing the legacy one-exchange-per-rule schedule (2R collective
// rounds per iteration for R join rules, vs R+1 fused).
//
// With `overlap_flush` on the per-rule exchange comes back — but split
// into a nonblocking post and a deferred complete, so rule k's exchange
// is in flight while rule k+1 runs its join locally.  Same round count
// as the legacy schedule, but the tuple-exchange latency is hidden
// behind the next rule's compute (Phase::kOverlapWait records whatever
// the pipeline failed to hide).
//
// The engine is configurable into the paper's *baseline* mode (no
// balancing, fixed join order, unfused exchanges) for the RQ1 comparison.

#include <limits>
#include <optional>
#include <string>

#include "core/balancer.hpp"
#include "core/program.hpp"
#include "core/profile.hpp"
#include "core/skew.hpp"

namespace paralagg::core {

struct EngineConfig {
  /// Algorithm 1 on/off.  Off = every join ships the side named by
  /// `fixed_order`, reproducing the baseline "B" bars of Fig. 2.
  bool dynamic_join_order = true;
  JoinOrderPolicy fixed_order = JoinOrderPolicy::kFixedBOuter;

  BalanceConfig balance;

  /// Heavy-hitter routing (DESIGN.md §13): derive per-iteration hot join
  /// keys from the delta histogram and switch them to the hybrid plan —
  /// heavy-side rows spread across all ranks, probe rows broadcast.
  /// Fixpoints are bit-identical to the uniform path either way.
  SkewConfig skew;

  /// Exchange algorithm for the engine's tuple shuffles.  kBruck caps the
  /// per-rank message count at ceil(log2 n) per exchange — the trade the
  /// authors' HPDC'22 all-to-all work makes for latency-bound iterations.
  ExchangeAlgorithm exchange = ExchangeAlgorithm::kDense;

  /// Collapse the per-rule all-to-all of generated tuples into a single
  /// router flush per iteration (R+1 collective rounds instead of 2R for
  /// R join rules).  Off = flush after every rule, the legacy schedule.
  bool fuse_exchanges = true;

  /// Split-phase per-rule exchanges: each rule posts its output exchange
  /// nonblocking and the next rule's local join runs while it is in
  /// flight; the post is completed lazily before that rule's own post
  /// (and the last one before the fused dedup/aggregation pass).  Takes
  /// precedence over `fuse_exchanges`: the schedule pays 2R collective
  /// rounds like the legacy one, but hides the exchange latency instead
  /// of avoiding the rounds.  Under kBruck the relay rounds cannot be
  /// split, so the posts degrade to eager (blocking) exchanges.
  bool overlap_flush = false;

  /// Sender-side pre-aggregation in the router: collapse buffered rows
  /// with equal independent columns through the target's lattice join
  /// before they hit the wire.
  bool router_preagg = true;

  /// Probe-side strategy for the local join: sorted-batch with monotone
  /// B-tree cursors (default), or the arrival-order baseline.  Output
  /// fixpoints are bit-identical either way (router staging is
  /// order-insensitive, DESIGN.md §6.1); this is a pure speed knob kept
  /// switchable for A/B measurement.
  ProbeKernel probe_kernel = ProbeKernel::kSorted;

  /// Safety net for runaway fixpoints (and the bound for refresh strata
  /// that forgot to set max_rounds).
  std::size_t max_iterations = 1'000'000;

  /// Abort a stratum once the cumulative number of materialized tuples
  /// exceeds this bound — the reproduction's stand-in for running a
  /// materializing query out of memory (the Table I "N/A" entries and the
  /// §V-A observation that Datalog CC cannot avoid the node product).
  std::uint64_t tuple_limit = std::numeric_limits<std::uint64_t>::max();

  /// Write a checkpoint manifest (core/checkpoint.hpp) every this many
  /// completed loop iterations, at the iteration boundary after global
  /// termination agreement.  0 disables checkpointing.  Requires
  /// `checkpoint_path`; only run(Program&) checkpoints (a bare
  /// run_stratum has no program to snapshot).
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
};

/// Convenience: the paper's unoptimized configuration (RQ1 baseline).
inline EngineConfig baseline_config() {
  EngineConfig cfg;
  cfg.dynamic_join_order = false;
  cfg.fixed_order = JoinOrderPolicy::kFixedBOuter;
  cfg.balance.enabled = false;
  cfg.fuse_exchanges = false;
  cfg.router_preagg = false;
  return cfg;
}

struct StratumResult {
  std::size_t iterations = 0;          // loop iterations executed
  std::uint64_t tuples_generated = 0;  // staged across all loop rules
  bool reached_fixpoint = false;
  bool aborted_tuple_limit = false;    // stopped by EngineConfig::tuple_limit
};

/// Whole-run local-join kernel counters, summed over ranks and rules.
/// probe_seeks / probes is the descent-dedup ratio of the sorted kernel;
/// bench/probe_kernel pairs these with the B-tree comparison counters.
struct JoinKernelTotals {
  std::uint64_t outer_tuples_shipped = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_seeks = 0;
  std::uint64_t matches = 0;
};

struct RunResult {
  std::size_t total_iterations = 0;
  std::vector<StratumResult> strata;
  /// True iff any stratum hit EngineConfig::tuple_limit — the run's
  /// results are truncated, whatever the per-stratum flags say.
  bool aborted_tuple_limit = false;
  /// True iff the run was cut short by an injected or detected fault
  /// (vmpi::FaultError: watchdog timeout, injected rank death, corrupt
  /// frame).  The world is poisoned at that point, so the cross-rank
  /// summary fields below are NOT populated; `fault_what` carries the
  /// fault's message.  This rank unwound cleanly — no hang, no UB.
  bool aborted_fault = false;
  std::string fault_what;
  /// True iff this run was restarted from a checkpoint manifest
  /// (Engine::resume); total_iterations then includes the iterations the
  /// original run had completed before the manifest was taken.
  bool resumed = false;
  ProfileSummary profile;      // identical on every rank
  vmpi::CommStats comm_total;  // identical on every rank
  JoinKernelTotals kernel;     // identical on every rank
  /// Max-over-ranks of each kernel counter (identical on every rank) —
  /// the straggler's view.  kernel / kernel_max is the skew story: a
  /// uniform workload has kernel_max ≈ kernel / nranks, a hub-dominated
  /// one concentrates kernel_max on the hub's owner.
  JoinKernelTotals kernel_max;
  /// Heavy-hitter routing activity (identical on every rank): detections
  /// and hot_iterations are max-over-ranks, row counts are summed.
  SkewStats skew;
  double wall_seconds = 0;     // this rank's view
};

class Engine {
 public:
  Engine(vmpi::Comm& comm, EngineConfig cfg = {}) : comm_(&comm), cfg_(cfg) {}

  [[nodiscard]] RankProfile& rank_profile() { return profile_; }
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }

  /// Execute one stratum to completion.  Collective.  `start_iteration`
  /// skips the first loop iterations (a resumed stratum continues where
  /// the manifest left off); `skip_init` suppresses the init rules (their
  /// effects are already part of the restored full versions).
  StratumResult run_stratum(const Stratum& stratum, std::size_t start_iteration = 0,
                            bool skip_init = false);

  /// Validate and execute a whole program, then assemble the cross-rank
  /// summary.  Collective; the result is identical on every rank.
  RunResult run(Program& program);

  /// Restart from a checkpoint manifest: restore every relation, then run
  /// from the recorded (stratum, iteration) to completion.  The program
  /// must be the SPMD-identical program that wrote the manifest (same
  /// relations, same strata), at any rank count.  Collective; throws
  /// CheckpointError if the manifest is missing or corrupt.
  RunResult resume(Program& program, const std::string& manifest_path);

  /// Delta-seeded continuation for incremental serving: run every stratum
  /// in order, suppressing init rules for recursive strata (their targets
  /// are incrementally maintained and the caller has already materialized
  /// the seed delta), while init-only strata (projections over the evolved
  /// state) re-run their init rules.  Semi-naive evaluation from whatever
  /// deltas the caller staged; collective, same summary as run().
  RunResult run_delta(Program& program);

 private:
  /// Execute one rule (join or copy) into `router`, honouring the engine's
  /// join-order override.  Pure local-emit: the exchange schedule (fused /
  /// per-rule / split-phase) is run_rules' business.
  RuleExecStats execute_rule(const Rule& rule, ExchangeRouter& router);

  /// Execute a rule list under the configured exchange schedule: one fused
  /// flush after all rules, one blocking flush per rule (legacy), or the
  /// split-phase pipeline (post after each rule, complete lazily).  On
  /// return every emitted row is staged and no exchange is in flight.
  void run_rules(const std::vector<Rule>& rules, ExchangeRouter& router);

  /// Distinct relations targeted by a rule list, in first-use order.
  static std::vector<Relation*> targets_of(const std::vector<Rule>& rules);
  /// Distinct relations read by a rule list (join sides / copy sources).
  static std::vector<Relation*> sources_of(const std::vector<Rule>& rules);

  /// Shared tail of run()/resume()/run_delta(): execute strata
  /// `first..end`, catching vmpi::FaultError into aborted_fault, then
  /// assemble the cross-rank summary (skipped when the world is poisoned
  /// by a fault).  `delta_mode` overrides the init-skip decision per
  /// stratum: recursive strata skip init, init-only strata run it.
  RunResult run_from(Program& program, std::size_t first_stratum,
                     std::size_t start_iteration, bool skip_init,
                     std::uint64_t prior_iterations, bool delta_mode = false);

  /// Relations of this stratum's loop joins eligible for the hot-key
  /// layout: non-anti join sides with non-join independent columns to
  /// spread by, minus anything negated anywhere in the program (absence
  /// is a global property; a spread inner could conclude it locally).
  [[nodiscard]] std::vector<Relation*> skew_candidates(const Stratum& stratum) const;

  vmpi::Comm* comm_;
  EngineConfig cfg_;
  RankProfile profile_;
  std::uint64_t cumulative_materialized_ = 0;
  JoinKernelTotals local_kernel_;  // this rank's share; summed in run()
  SkewStats local_skew_;           // this rank's share; reduced in run()
  // Checkpoint context, valid only inside run_from(): the program being
  // executed, the index of the stratum in flight, and the loop iterations
  // completed in earlier strata (for the manifest's total count).
  Program* program_ = nullptr;
  std::size_t stratum_index_ = 0;
  std::uint64_t prior_iterations_ = 0;
};

}  // namespace paralagg::core

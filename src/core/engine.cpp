#include "core/engine.hpp"

#include <algorithm>
#include <chrono>

#include "core/checkpoint.hpp"
#include "core/phase_scope.hpp"

namespace paralagg::core {

namespace {

void push_unique(std::vector<Relation*>& v, Relation* r) {
  if (r != nullptr && std::find(v.begin(), v.end(), r) == v.end()) v.push_back(r);
}

}  // namespace

std::vector<Relation*> Engine::targets_of(const std::vector<Rule>& rules) {
  std::vector<Relation*> out;
  for (const auto& rule : rules) {
    std::visit([&](const auto& r) { push_unique(out, r.out.target); }, rule);
  }
  return out;
}

std::vector<Relation*> Engine::sources_of(const std::vector<Rule>& rules) {
  std::vector<Relation*> out;
  for (const auto& rule : rules) {
    if (const auto* j = std::get_if<JoinRule>(&rule)) {
      push_unique(out, j->a);
      push_unique(out, j->b);
    } else {
      push_unique(out, std::get<CopyRule>(rule).src);
    }
  }
  return out;
}

RuleExecStats Engine::execute_rule(const Rule& rule, ExchangeRouter& router) {
  RuleExecStats stats;
  if (const auto* j = std::get_if<JoinRule>(&rule)) {
    const std::optional<JoinOrderPolicy> forced =
        cfg_.dynamic_join_order ? std::nullopt : std::optional(cfg_.fixed_order);
    stats = execute_join(*comm_, profile_, *j, router, forced, cfg_.exchange,
                         cfg_.probe_kernel);
  } else {
    stats = execute_copy(profile_, std::get<CopyRule>(rule), router);
  }
  local_kernel_.outer_tuples_shipped += stats.outer_tuples_shipped;
  local_kernel_.probes += stats.probes;
  local_kernel_.probe_seeks += stats.probe_seeks;
  local_kernel_.matches += stats.matches;
  local_skew_.broadcast_rows += stats.hot_broadcast_rows;
  return stats;
}

std::vector<Relation*> Engine::skew_candidates(const Stratum& stratum) const {
  std::vector<Relation*> out;
  for (const auto& rule : stratum.loop_rules) {
    const auto* j = std::get_if<JoinRule>(&rule);
    if (j == nullptr || j->anti) continue;
    for (Relation* side : {j->a, j->b}) {
      // A side whose independent columns are all join columns has nothing
      // for H2 to spread by — its rows for one key can only pile up.
      if (side->indep_arity() > side->jcc()) push_unique(out, side);
    }
  }
  // Negated relations must keep owner placement everywhere: an antijoin
  // decides absence from one rank's partition.  Scan the whole program
  // (the same relation may be negated in a later stratum).
  const auto drop_negated = [&out](const std::vector<Rule>& rules) {
    for (const auto& rule : rules) {
      const auto* j = std::get_if<JoinRule>(&rule);
      if (j == nullptr || !j->anti) continue;
      out.erase(std::remove(out.begin(), out.end(), j->b), out.end());
    }
  };
  if (program_ != nullptr) {
    for (const auto& s : program_->strata()) {
      drop_negated(s->init_rules);
      drop_negated(s->loop_rules);
    }
  } else {
    drop_negated(stratum.init_rules);
    drop_negated(stratum.loop_rules);
  }
  return out;
}

void Engine::run_rules(const std::vector<Rule>& rules, ExchangeRouter& router) {
  if (cfg_.overlap_flush) {
    // Split-phase pipeline: rule k's exchange is in flight while rule k+1
    // runs its plan vote, intra-bucket shuffle, and local join.  Completing
    // lazily — right before the next post — maximizes the window; the join
    // is safe to run under an in-flight exchange because it only reads
    // materialized indices, and staging areas absorb frames in any order.
    for (const auto& rule : rules) {
      execute_rule(rule, router);
      if (router.in_flight()) router.complete(profile_);
      router.post(profile_, cfg_.exchange);
    }
    if (router.in_flight()) router.complete(profile_);
    return;
  }
  for (const auto& rule : rules) {
    execute_rule(rule, router);
    // Legacy schedule: every rule pays its own collective exchange.
    if (!cfg_.fuse_exchanges) router.flush(profile_, cfg_.exchange);
  }
  // Fused schedule: one flush carries every rule's outputs.
  if (cfg_.fuse_exchanges) router.flush(profile_, cfg_.exchange);
}

StratumResult Engine::run_stratum(const Stratum& stratum, std::size_t start_iteration,
                                  bool skip_init) {
  StratumResult result;

  // One router per stratum: rules emit into it, and it is flushed either
  // once per iteration (fused) or after every rule (legacy) — see
  // execute_rule.  Rules register their targets lazily in rule order,
  // which is SPMD-deterministic, so route ids agree across ranks.
  ExchangeRouter router(*comm_, cfg_.router_preagg);

  // ---- init rules: run once, seed the deltas --------------------------------
  if (!skip_init && !stratum.init_rules.empty()) {
    run_rules(stratum.init_rules, router);
    PhaseScope scope(*comm_, profile_, Phase::kDedupAgg);
    for (Relation* t : targets_of(stratum.init_rules)) {
      const auto m = t->materialize();
      profile_.add_work(Phase::kDedupAgg, m.staged);
    }
    profile_.end_iteration();
  }

  if (stratum.loop_rules.empty()) {
    result.reached_fixpoint = true;
    return result;
  }

  const auto loop_targets = targets_of(stratum.loop_rules);
  auto balance_candidates = sources_of(stratum.loop_rules);
  for (Relation* t : loop_targets) push_unique(balance_candidates, t);
  const auto skew_cands =
      cfg_.skew.enabled ? skew_candidates(stratum) : std::vector<Relation*>{};

  const std::size_t bound =
      stratum.fixpoint ? cfg_.max_iterations
                       : std::min(stratum.max_rounds, cfg_.max_iterations);

  for (std::size_t iter = start_iteration; iter < bound; ++iter) {
    // Iteration boundary: release injected delays and apply the fault
    // plan's epoch faults (kill/stall) deterministically.  No-op without
    // an installed FaultPlan.
    comm_->advance_epoch();

    // ---- heavy-hitter detection + hot-set switches ----------------------------
    // Before the balancer on purpose: rows a respread just spread out must
    // not trip the imbalance ratio into a redundant sub-bucket reshuffle.
    // Size gathers taken here are handed to the balancer below (the shared
    // measurement), except for relations whose layout changed.
    std::vector<std::pair<Relation*, std::vector<std::uint64_t>>> fresh_sizes;
    if (!skew_cands.empty()) {
      PhaseScope scope(*comm_, profile_, Phase::kBalance);
      for (Relation* rel : skew_cands) {
        auto sizes = gather_full_sizes(*comm_, *rel);
        std::uint64_t total = 0;
        for (const auto s : sizes) total += s;
        // Run the detection collective only when a hot key is possible
        // (the global size bounds any per-key count) or a hot set must be
        // re-examined.  Both inputs are globally identical, so every rank
        // takes the same branch.
        if (total >= cfg_.skew.hot_threshold || !rel->hot_keys().empty()) {
          auto hot = detect_hot_keys(*comm_, *rel, cfg_.skew);
          ++local_skew_.detections;
          if (hot != rel->hot_keys()) {
            const auto moved = rel->adopt_hot_keys(std::move(hot));
            local_skew_.respread_rows += moved;
            profile_.add_work(Phase::kBalance, moved);
            continue;  // sizes are stale after the respread
          }
        }
        fresh_sizes.emplace_back(rel, std::move(sizes));
      }
      for (const Relation* rel : skew_cands) {
        if (!rel->hot_keys().empty()) {
          ++local_skew_.hot_iterations;
          break;
        }
      }
    }

    // ---- spatial load balancing ---------------------------------------------
    if (cfg_.balance.enabled && iter % std::max<std::size_t>(cfg_.balance.period, 1) == 0) {
      for (Relation* rel : balance_candidates) {
        if (!rel->config().balanceable) continue;
        const std::vector<std::uint64_t>* pre = nullptr;
        for (const auto& [r, sizes] : fresh_sizes) {
          if (r == rel) {
            pre = &sizes;
            break;
          }
        }
        balance_relation(*comm_, profile_, *rel, cfg_.balance, pre);
      }
    }

    // ---- rules + exchanges under the configured schedule ----------------------
    run_rules(stratum.loop_rules, router);

    // ---- fused dedup / local aggregation ---------------------------------------
    std::uint64_t local_delta = 0;
    {
      PhaseScope scope(*comm_, profile_, Phase::kDedupAgg);
      for (Relation* t : loop_targets) {
        const auto m = t->materialize();
        profile_.add_work(Phase::kDedupAgg, m.staged);
        result.tuples_generated += m.staged;
        local_delta += m.delta_size;
      }
    }

    // ---- global termination detection ------------------------------------------
    std::uint64_t global_delta = 0;
    {
      PhaseScope scope(*comm_, profile_, Phase::kOther);
      global_delta = comm_->allreduce<std::uint64_t>(local_delta, vmpi::ReduceOp::kSum);
    }
    profile_.end_iteration();
    ++result.iterations;
    cumulative_materialized_ += global_delta;

    if (stratum.fixpoint && global_delta == 0) {
      result.reached_fixpoint = true;
      break;
    }
    if (cumulative_materialized_ > cfg_.tuple_limit) {
      result.aborted_tuple_limit = true;  // deterministic on all ranks
      break;
    }

    // ---- checkpoint manifest ---------------------------------------------------
    // Written only when the stratum continues (a finished stratum needs no
    // restart point), after the termination allreduce so every rank agrees
    // this boundary was reached.  All knobs are config, so the decision is
    // SPMD-identical.
    if (cfg_.checkpoint_every > 0 && !cfg_.checkpoint_path.empty() &&
        program_ != nullptr && (iter + 1) % cfg_.checkpoint_every == 0) {
      write_manifest(*program_, cfg_.checkpoint_path,
                     ManifestHeader{stratum_index_, iter + 1,
                                    prior_iterations_ + iter + 1});
    }
  }
  // A bounded stratum that ran its whole budget finished by design — but
  // only if nothing cut it short.  Reporting a tuple-limit abort as
  // "reached fixpoint" hid every truncated bounded run from callers.
  if (!stratum.fixpoint && !result.aborted_tuple_limit) result.reached_fixpoint = true;
  return result;
}

RunResult Engine::run_from(Program& program, std::size_t first_stratum,
                           std::size_t start_iteration, bool skip_init,
                           std::uint64_t prior_iterations, bool delta_mode) {
  RunResult result;
  const auto t0 = std::chrono::steady_clock::now();
  program_ = &program;
  prior_iterations_ = prior_iterations;

  try {
    const auto& strata = program.strata();
    for (std::size_t i = first_stratum; i < strata.size(); ++i) {
      stratum_index_ = i;
      const bool resumed_here = i == first_stratum;
      const std::size_t start = resumed_here ? start_iteration : 0;
      const bool skip = delta_mode ? !strata[i]->loop_rules.empty()
                                   : resumed_here && skip_init;
      auto sr = run_stratum(*strata[i], start, skip);
      prior_iterations_ += start + sr.iterations;
      result.total_iterations += sr.iterations;
      result.aborted_tuple_limit = result.aborted_tuple_limit || sr.aborted_tuple_limit;
      result.strata.push_back(sr);
    }
    // Restore owner placement before anyone downstream (serving warm
    // starts, checkpoint readers, diagnostics assuming owner_rank) sees
    // the relations.  Hot sets are identical on every rank, so the
    // collective fires symmetrically; without hot layouts this loop is
    // free.
    if (cfg_.skew.enabled) {
      for (const auto& rel : program.relations()) {
        if (!rel->hot_keys().empty()) rel->adopt_hot_keys({});
      }
    }
  } catch (const vmpi::FaultError& e) {
    // One catch site for every injected-failure surface: watchdog
    // timeout, injected rank death, corrupt frame.  Poison the world
    // (idempotent — timeouts already did) so peers blocked on this rank
    // unwind instead of hanging; with the world poisoned no further
    // collectives are possible — including the summary below — so the
    // caller gets a clean typed abort instead of a half-synchronized
    // summary.
    comm_->world().fault_abort();
    program_ = nullptr;
    result.aborted_fault = true;
    result.fault_what = e.what();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return result;
  }
  program_ = nullptr;

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Cross-rank assembly: profile summary plus a race-free total of the
  // per-rank communication counters (each rank contributes its own).
  result.profile = summarize_profiles(*comm_, profile_);
  {
    vmpi::StatsPause pause(*comm_);
    const auto all = comm_->allgather_stats(comm_->stats());
    for (const auto& s : all) result.comm_total += s;
    result.kernel.outer_tuples_shipped = comm_->allreduce<std::uint64_t>(
        local_kernel_.outer_tuples_shipped, vmpi::ReduceOp::kSum);
    result.kernel.probes =
        comm_->allreduce<std::uint64_t>(local_kernel_.probes, vmpi::ReduceOp::kSum);
    result.kernel.probe_seeks =
        comm_->allreduce<std::uint64_t>(local_kernel_.probe_seeks, vmpi::ReduceOp::kSum);
    result.kernel.matches =
        comm_->allreduce<std::uint64_t>(local_kernel_.matches, vmpi::ReduceOp::kSum);
    result.kernel_max.outer_tuples_shipped = comm_->allreduce<std::uint64_t>(
        local_kernel_.outer_tuples_shipped, vmpi::ReduceOp::kMax);
    result.kernel_max.probes =
        comm_->allreduce<std::uint64_t>(local_kernel_.probes, vmpi::ReduceOp::kMax);
    result.kernel_max.probe_seeks =
        comm_->allreduce<std::uint64_t>(local_kernel_.probe_seeks, vmpi::ReduceOp::kMax);
    result.kernel_max.matches =
        comm_->allreduce<std::uint64_t>(local_kernel_.matches, vmpi::ReduceOp::kMax);
    // Detection runs are symmetric (max = the shared count); row moves are
    // per-rank shares, so they sum.
    result.skew.detections =
        comm_->allreduce<std::uint64_t>(local_skew_.detections, vmpi::ReduceOp::kMax);
    result.skew.hot_iterations =
        comm_->allreduce<std::uint64_t>(local_skew_.hot_iterations, vmpi::ReduceOp::kMax);
    result.skew.respread_rows =
        comm_->allreduce<std::uint64_t>(local_skew_.respread_rows, vmpi::ReduceOp::kSum);
    result.skew.broadcast_rows =
        comm_->allreduce<std::uint64_t>(local_skew_.broadcast_rows, vmpi::ReduceOp::kSum);
  }
  return result;
}

RunResult Engine::run(Program& program) {
  program.validate();
  return run_from(program, 0, 0, /*skip_init=*/false, /*prior_iterations=*/0);
}

RunResult Engine::run_delta(Program& program) {
  program.validate();
  return run_from(program, 0, 0, /*skip_init=*/true, /*prior_iterations=*/0,
                  /*delta_mode=*/true);
}

RunResult Engine::resume(Program& program, const std::string& manifest_path) {
  program.validate();
  const ManifestHeader at = load_manifest(program, manifest_path);
  // The resumed stratum restarts at the recorded iteration with its init
  // rules suppressed (their effects are already inside the restored full
  // versions); earlier strata are skipped entirely.
  auto result =
      run_from(program, static_cast<std::size_t>(at.stratum),
               static_cast<std::size_t>(at.iteration), /*skip_init=*/true,
               at.total_iterations - at.iteration);
  result.resumed = true;
  result.total_iterations += static_cast<std::size_t>(at.total_iterations);
  return result;
}

}  // namespace paralagg::core

#pragma once

// Spatial load balancing (paper §IV-C).
//
// Double hashing alone cannot fix key skew: every tuple sharing a join key
// hashes to the same bucket, so a Twitter-style celebrity vertex piles its
// whole adjacency onto one rank.  The balancer watches per-rank partition
// sizes and, when the max/avg ratio exceeds a threshold, raises the
// relation's sub-bucket count — splitting each bucket across several ranks
// by H2 over the non-join independent columns.  The price is the
// intra-bucket replication the join must then perform; §V-B shows (and our
// benches reproduce) that this trade pays off at scale.
//
// Under a grouped topology (vmpi::Topology, node_size > 1) the balancer is
// additionally locality-aware: instead of jumping straight to the target
// fan-out, it projects every intermediate power-of-two fan-out, charges the
// projected move at the topology's cross-node cost ratio (an intra-node
// byte costs 1, a cross-node byte cross_cost_ratio), and commits to the
// cheapest candidate that already clears the imbalance threshold — ties
// break to fewer cross-node bytes, then to the smaller fan-out.  A hot
// bucket that two sibling ranks can absorb stays inside their node rather
// than paying the fabric.  On the flat topology the old direct-to-target
// behaviour is unchanged (every remote byte costs the same there, so the
// bigger fan-out strictly dominates on balance).

#include "core/profile.hpp"
#include "core/relation.hpp"

namespace paralagg::core {

struct BalanceConfig {
  bool enabled = true;
  /// Sub-bucket fan-out applied when a relation is found imbalanced (the
  /// paper's default is 8 sub-buckets for input relations).
  int target_sub_buckets = 8;
  /// max/avg partition-size ratio that triggers a reshuffle.
  double imbalance_threshold = 2.0;
  /// Check cadence in iterations (checks are one allgather of a size_t).
  std::size_t period = 2;
};

struct BalanceDecision {
  double imbalance = 1.0;  // max/avg before any action
  bool rebalanced = false;
  int sub_buckets_after = 1;
  std::uint64_t bytes_moved = 0;
  /// Cross-node portion of bytes_moved.  On the flat topology every remote
  /// byte is cross-node by definition, so this equals bytes_moved there.
  std::uint64_t cross_bytes_moved = 0;
};

/// Measure imbalance of `rel` (collective: one allgather) and reshuffle it
/// to `cfg.target_sub_buckets` when warranted.  No-op for relations not
/// marked balanceable or already at the target fan-out.  When the caller
/// already holds this iteration's size gather (the skew detector shares
/// it), pass it via `pre_gathered` to skip the duplicate collective — the
/// vector must be the allgather of `rel.local_size(Version::kFull)` and
/// still current (no reshuffle/respread since it was taken).
BalanceDecision balance_relation(vmpi::Comm& comm, RankProfile& profile, Relation& rel,
                                 const BalanceConfig& cfg,
                                 const std::vector<std::uint64_t>* pre_gathered = nullptr);

/// One allgather of `rel`'s per-rank full sizes — the shared measurement
/// feeding both the balancer's imbalance ratio and the skew detector's
/// activation gate.  Collective.
[[nodiscard]] std::vector<std::uint64_t> gather_full_sizes(vmpi::Comm& comm,
                                                           const Relation& rel);

/// Measure only (collective); used by diagnostics and Fig. 3.
double measure_imbalance(vmpi::Comm& comm, const Relation& rel);

}  // namespace paralagg::core

#include "core/ra_op.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "core/phase_scope.hpp"
#include "core/wire.hpp"
#include "vmpi/serialize.hpp"

namespace paralagg::core {

namespace {

/// Append every tuple of `tree` to the per-destination buffers, replicating
/// each tuple to all ranks that hold a sub-bucket of its bucket in the
/// *inner* relation.  This is the outer-relation serialization feeding the
/// intra-bucket exchange.
std::uint64_t serialize_outer(const storage::TupleBTree& tree, const Relation& outer,
                              const Relation& inner,
                              std::vector<vmpi::TypedWriter<value_t>>& outgoing,
                              std::uint64_t* hot_broadcast) {
  std::uint64_t shipped = 0;
  const bool inner_has_hot = !inner.hot_keys().empty();
  const std::size_t nranks = outgoing.size();
  std::vector<int> dests;
  tree.for_each([&](std::span<const value_t> t) {
    if (inner_has_hot && inner.key_is_hot(t)) {
      // The inner side's rows for this hot key are spread across ALL ranks
      // (Relation::route_rank), so the probe row must reach every rank.
      // Each inner row still lives on exactly one rank, so every joined
      // pair is found exactly once (DESIGN.md §13).
      for (std::size_t d = 0; d < nranks; ++d) {
        outgoing[d].put_span(t);
        ++shipped;
      }
      if (hot_broadcast != nullptr) *hot_broadcast += nranks;
      return;
    }
    const auto bucket = outer.bucket_of(t);
    inner.ranks_of_bucket(bucket, dests);
    for (int d : dests) {
      outgoing[static_cast<std::size_t>(d)].put_span(t);
      ++shipped;
    }
  });
  return shipped;
}

/// Seal each destination buffer with the wire trailer: the probe batch is
/// raw tuple words, so an unsealed exchange would turn a corrupted byte
/// into a silently wrong join input.  The exchange is matched by round,
/// so the seq word carries no dedup duty here.
std::vector<vmpi::Bytes> take_all(std::vector<vmpi::TypedWriter<value_t>>& outgoing) {
  std::vector<vmpi::Bytes> send(outgoing.size());
  for (std::size_t d = 0; d < outgoing.size(); ++d) {
    wire::seal_frame(outgoing[d], /*seq=*/0);
    send[d] = outgoing[d].take();
  }
  return send;
}

/// Evaluate the head and hand the output tuple to the router (shipping is
/// deferred to the router flush).
void emit_output(const OutputSpec& out, std::span<const value_t> a,
                 std::span<const value_t> b, Tuple& scratch, ExchangeRouter& router,
                 std::uint32_t route) {
  scratch.clear();
  scratch.reserve(out.cols.size());
  for (const auto& e : out.cols) scratch.push_back(e.eval(a, b));
  router.emit(route, scratch.view());
}

/// Decode the received outer buffers into one flat row-major batch.  The
/// wire format is already flat value_t rows, so this is a single typed
/// copy per buffer, no per-tuple materialization.
std::vector<value_t> decode_probe_batch(const std::vector<vmpi::Bytes>& received) {
  std::size_t total = 0;
  for (const auto& buf : received) total += buf.size() / sizeof(value_t);
  std::vector<value_t> batch;
  batch.reserve(total);
  for (const auto& buf : received) {
    const auto frame = wire::open_frame(buf);  // throws FrameDecodeError if damaged
    if (frame.empty()) continue;
    vmpi::TypedReader<value_t> r(frame.payload);
    const auto vals = r.take_span(r.remaining());
    batch.insert(batch.end(), vals.begin(), vals.end());
  }
  return batch;
}

}  // namespace

RuleExecStats execute_join(vmpi::Comm& comm, RankProfile& profile, const JoinRule& rule,
                           ExchangeRouter& router, std::optional<JoinOrderPolicy> forced,
                           ExchangeAlgorithm exchange_algo, ProbeKernel kernel) {
  RuleExecStats stats;
  const std::uint32_t route = router.add_target(rule.out.target);
  const std::size_t jcc = rule.a->jcc();
  assert(jcc == rule.b->jcc() && "join sides must agree on join-column count");

  // ---- Phase: dynamic join planning (Algorithm 1) --------------------------
  PlanDecision plan{};
  if (rule.anti) {
    // Antijoins cannot swap sides: absence can only be decided where ALL
    // of B's candidates for a bucket live.
    assert(rule.b->sub_buckets() == 1 && "antijoin inner must not be sub-bucketed");
    assert(rule.b->hot_keys().empty() &&
           "antijoin inner must not carry a hot-key layout (absence is global)");
    plan = PlanDecision{.a_outer = true, .votes_for_a = 0, .voted = false};
  } else {
    PhaseScope scope(comm, profile, Phase::kPlan);
    const auto policy = forced.value_or(rule.order);
    plan = plan_join_order(comm, policy, rule.a->local_size(rule.a_version),
                           rule.b->local_size(rule.b_version));
    profile.add_work(Phase::kPlan, 1);
  }
  stats.a_was_outer = plan.a_outer;
  stats.planned_dynamically = plan.voted;

  const Relation& outer = plan.a_outer ? *rule.a : *rule.b;
  const Relation& inner = plan.a_outer ? *rule.b : *rule.a;
  const Version outer_version = plan.a_outer ? rule.a_version : rule.b_version;
  const Version inner_version = plan.a_outer ? rule.b_version : rule.a_version;

  // ---- Phase: outer serialization + intra-bucket exchange -------------------
  std::vector<vmpi::Bytes> received_outer;
  {
    PhaseScope scope(comm, profile, Phase::kIntraBucket);
    std::vector<vmpi::TypedWriter<value_t>> outgoing(static_cast<std::size_t>(comm.size()));
    stats.outer_tuples_shipped = serialize_outer(outer.tree(outer_version), outer, inner,
                                                 outgoing, &stats.hot_broadcast_rows);
    profile.add_work(Phase::kIntraBucket, stats.outer_tuples_shipped);
    received_outer = exchange_alltoallv(comm, take_all(outgoing), exchange_algo);
  }

  // ---- Phase: local join (outputs emitted into the router) ------------------
  {
    PhaseScope scope(comm, profile, Phase::kLocalJoin);
    const auto& inner_tree = inner.tree(inner_version);
    const std::size_t outer_arity = outer.arity();
    Tuple scratch;
    static const Tuple kNoMatch;

    const std::vector<value_t> batch = decode_probe_batch(received_outer);
    assert(outer_arity > 0 && batch.size() % outer_arity == 0);
    const std::size_t nrows = batch.size() / outer_arity;
    const auto row_of = [&](std::size_t i) {
      return std::span<const value_t>(batch.data() + i * outer_arity, outer_arity);
    };

    const auto emit_pair = [&](std::span<const value_t> orow,
                               std::span<const value_t> irow) {
      const auto a = plan.a_outer ? orow : irow;
      const auto b = plan.a_outer ? irow : orow;
      if (rule.filter && rule.filter->eval(a, b) == 0) return;
      ++stats.matches;
      emit_output(rule.out, a, b, scratch, router, route);
    };

    if (kernel == ProbeKernel::kUnsorted) {
      // Baseline: probe in arrival order, one full descent per outer row.
      for (std::size_t i = 0; i < nrows; ++i) {
        const auto orow = row_of(i);
        ++stats.probes;
        if (rule.anti) {
          if (rule.pre_filter && rule.pre_filter->eval(orow, kNoMatch.view()) == 0) {
            continue;  // the rule never considers this A row
          }
          ++stats.probe_seeks;
          bool exists = false;
          inner_tree.scan_prefix(orow.first(jcc), [&](std::span<const value_t> irow) {
            if (rule.filter && rule.filter->eval(orow, irow) == 0) return;
            exists = true;
          });
          if (!exists) {
            ++stats.matches;
            emit_output(rule.out, orow, kNoMatch.view(), scratch, router, route);
          }
          continue;
        }
        ++stats.probe_seeks;
        inner_tree.scan_prefix(orow.first(jcc),
                               [&](std::span<const value_t> irow) { emit_pair(orow, irow); });
      }
    } else {
      // Sorted-batch kernel: order probes by join-key prefix so the
      // monotone cursor advances through the inner tree once, and share
      // one seek across a run of equal keys (the match range is recorded
      // on the first probe and replayed for the rest — filters still run
      // per pair, so semantics are unchanged).  Output *content* is
      // unaffected by the reordering: router staging is order-insensitive
      // (DESIGN.md §6.1).
      std::vector<std::uint32_t> order(nrows);
      std::iota(order.begin(), order.end(), 0);
      // stable_sort keeps arrival order within equal keys; comparisons
      // here are plain (not counted against the B-tree).
      std::stable_sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
        return storage::compare_prefix(row_of(x), row_of(y), jcc) < 0;
      });

      auto cursor = inner_tree.cursor();
      std::size_t g = 0;
      while (g < nrows) {
        const auto gkey = row_of(order[g]).first(jcc);
        std::size_t ge = g + 1;
        while (ge < nrows && storage::compare_prefix(row_of(order[ge]), gkey, jcc) == 0) {
          ++ge;
        }

        // Lazy: antijoin pre-filters may reject the whole group without
        // ever touching the tree.
        bool sought = false;
        storage::TupleBTree::Cursor::Position begin{};
        std::size_t nmatch = 0;
        const auto ensure_range = [&]() {
          if (sought) return;
          cursor.seek(gkey);
          ++stats.probe_seeks;
          begin = cursor.position();
          while (cursor.valid() && cursor.matches(gkey)) {
            ++nmatch;
            cursor.next();
          }
          sought = true;
        };

        for (std::size_t k = g; k < ge; ++k) {
          const auto orow = row_of(order[k]);
          ++stats.probes;
          if (rule.anti) {
            if (rule.pre_filter && rule.pre_filter->eval(orow, kNoMatch.view()) == 0) {
              continue;
            }
            ensure_range();
            bool exists = false;
            cursor.restore(begin);
            for (std::size_t m = 0; m < nmatch; ++m, cursor.next()) {
              if (rule.filter && rule.filter->eval(orow, cursor.row()) == 0) continue;
              exists = true;
              break;
            }
            if (!exists) {
              ++stats.matches;
              emit_output(rule.out, orow, kNoMatch.view(), scratch, router, route);
            }
            continue;
          }
          ensure_range();
          cursor.restore(begin);
          for (std::size_t m = 0; m < nmatch; ++m, cursor.next()) {
            emit_pair(orow, cursor.row());
          }
        }
        g = ge;
      }
    }
    stats.outputs = stats.matches;
    profile.add_work(Phase::kLocalJoin, stats.probes + stats.matches);
  }
  return stats;
}

RuleExecStats execute_copy(RankProfile& profile, const CopyRule& rule,
                           ExchangeRouter& router) {
  RuleExecStats stats;
  const std::uint32_t route = router.add_target(rule.out.target);

  PhaseScope scope(router.comm(), profile, Phase::kLocalJoin);
  static const Tuple kEmpty;
  Tuple scratch;
  rule.src->tree(rule.version).for_each([&](std::span<const value_t> t) {
    ++stats.probes;
    if (rule.filter && rule.filter->eval(t, kEmpty.view()) == 0) return;
    ++stats.matches;
    emit_output(rule.out, t, kEmpty.view(), scratch, router, route);
  });
  stats.outputs = stats.matches;
  // Same convention as execute_join: a kLocalJoin work unit is one row
  // visited plus one row produced, so copy and join workloads are
  // comparable in the balancer's eyes.
  profile.add_work(Phase::kLocalJoin, stats.probes + stats.matches);
  return stats;
}

RuleExecStats execute_join(vmpi::Comm& comm, RankProfile& profile, const JoinRule& rule,
                           std::optional<JoinOrderPolicy> forced,
                           ExchangeAlgorithm exchange_algo, ProbeKernel kernel) {
  ExchangeRouter router(comm);
  const auto stats = execute_join(comm, profile, rule, router, forced, exchange_algo, kernel);
  router.flush(profile, exchange_algo);
  return stats;
}

RuleExecStats execute_copy(vmpi::Comm& comm, RankProfile& profile, const CopyRule& rule,
                           ExchangeAlgorithm exchange_algo) {
  ExchangeRouter router(comm);
  const auto stats = execute_copy(profile, rule, router);
  router.flush(profile, exchange_algo);
  return stats;
}

namespace {

void validate_output(const OutputSpec& out, int max_a_arity, int max_b_arity,
                     const char* what) {
  if (out.target == nullptr) throw std::invalid_argument(std::string(what) + ": no target");
  if (out.cols.size() != out.target->arity()) {
    throw std::invalid_argument(std::string(what) + " -> " + out.target->name() +
                                ": head arity mismatch");
  }
  for (const auto& e : out.cols) {
    if (e.max_col_a() >= max_a_arity || e.max_col_b() >= max_b_arity) {
      throw std::invalid_argument(std::string(what) + " -> " + out.target->name() +
                                  ": column reference out of range");
    }
  }
}

}  // namespace

void validate_rule(const Rule& rule) {
  if (const auto* j = std::get_if<JoinRule>(&rule)) {
    if (j->a == nullptr || j->b == nullptr) throw std::invalid_argument("join: null side");
    if (j->a->jcc() != j->b->jcc()) {
      throw std::invalid_argument("join " + j->a->name() + " x " + j->b->name() +
                                  ": sides disagree on join-column count");
    }
    if (j->pre_filter) {
      if (!j->anti) {
        throw std::invalid_argument("join: pre_filter is only meaningful on antijoins");
      }
      if (j->pre_filter->max_col_b() >= 0) {
        throw std::invalid_argument("antijoin pre_filter may not reference the negated side");
      }
    }
    if (j->anti) {
      // Heads of antijoins cannot read the (absent) B side, and B must not
      // be rebalanced away from single sub-buckets mid-run.
      for (const auto& e : j->out.cols) {
        if (e.max_col_b() >= 0) {
          throw std::invalid_argument("antijoin -> " + j->out.target->name() +
                                      ": head may not reference the negated side");
        }
      }
      if (j->b->sub_buckets() != 1 || j->b->config().balanceable) {
        throw std::invalid_argument("antijoin against " + j->b->name() +
                                    ": the negated relation must stay in a single "
                                    "sub-bucket (absence is a global property)");
      }
    }
    validate_output(j->out, static_cast<int>(j->a->arity()), static_cast<int>(j->b->arity()),
                    "join");
    if (j->filter) {
      if (j->filter->max_col_a() >= static_cast<int>(j->a->arity()) ||
          j->filter->max_col_b() >= static_cast<int>(j->b->arity())) {
        throw std::invalid_argument("join filter: column reference out of range");
      }
    }
    return;
  }
  const auto& c = std::get<CopyRule>(rule);
  if (c.src == nullptr) throw std::invalid_argument("copy: null source");
  validate_output(c.out, static_cast<int>(c.src->arity()), 0, "copy");
  if (c.filter && c.filter->max_col_a() >= static_cast<int>(c.src->arity())) {
    throw std::invalid_argument("copy filter: column reference out of range");
  }
}

}  // namespace paralagg::core

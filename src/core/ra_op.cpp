#include "core/ra_op.hpp"

#include <cassert>
#include <stdexcept>

#include "core/phase_scope.hpp"

namespace paralagg::core {

namespace {

/// Append every tuple of `tree` to the per-destination buffers, replicating
/// each tuple to all ranks that hold a sub-bucket of its bucket in the
/// *inner* relation.  This is the outer-relation serialization feeding the
/// intra-bucket exchange.
std::uint64_t serialize_outer(const storage::TupleBTree& tree, const Relation& outer,
                              const Relation& inner,
                              std::vector<vmpi::BufferWriter>& outgoing) {
  std::uint64_t shipped = 0;
  std::vector<int> dests;
  tree.for_each([&](const Tuple& t) {
    const auto bucket = outer.bucket_of(t.view());
    inner.ranks_of_bucket(bucket, dests);
    for (int d : dests) {
      outgoing[static_cast<std::size_t>(d)].put_span(t.view());
      ++shipped;
    }
  });
  return shipped;
}

std::vector<vmpi::Bytes> take_all(std::vector<vmpi::BufferWriter>& outgoing) {
  std::vector<vmpi::Bytes> send(outgoing.size());
  for (std::size_t d = 0; d < outgoing.size(); ++d) send[d] = outgoing[d].take();
  return send;
}

/// Evaluate the head and hand the output tuple to the router (shipping is
/// deferred to the router flush).
void emit_output(const OutputSpec& out, std::span<const value_t> a,
                 std::span<const value_t> b, Tuple& scratch, ExchangeRouter& router,
                 std::uint32_t route) {
  scratch.clear();
  for (const auto& e : out.cols) scratch.push_back(e.eval(a, b));
  router.emit(route, scratch.view());
}

}  // namespace

RuleExecStats execute_join(vmpi::Comm& comm, RankProfile& profile, const JoinRule& rule,
                           ExchangeRouter& router, std::optional<JoinOrderPolicy> forced,
                           ExchangeAlgorithm exchange_algo) {
  RuleExecStats stats;
  const std::uint32_t route = router.add_target(rule.out.target);
  const std::size_t jcc = rule.a->jcc();
  assert(jcc == rule.b->jcc() && "join sides must agree on join-column count");

  // ---- Phase: dynamic join planning (Algorithm 1) --------------------------
  PlanDecision plan{};
  if (rule.anti) {
    // Antijoins cannot swap sides: absence can only be decided where ALL
    // of B's candidates for a bucket live.
    assert(rule.b->sub_buckets() == 1 && "antijoin inner must not be sub-bucketed");
    plan = PlanDecision{.a_outer = true, .votes_for_a = 0, .voted = false};
  } else {
    PhaseScope scope(comm, profile, Phase::kPlan);
    const auto policy = forced.value_or(rule.order);
    plan = plan_join_order(comm, policy, rule.a->local_size(rule.a_version),
                           rule.b->local_size(rule.b_version));
    profile.add_work(Phase::kPlan, 1);
  }
  stats.a_was_outer = plan.a_outer;
  stats.planned_dynamically = plan.voted;

  const Relation& outer = plan.a_outer ? *rule.a : *rule.b;
  const Relation& inner = plan.a_outer ? *rule.b : *rule.a;
  const Version outer_version = plan.a_outer ? rule.a_version : rule.b_version;
  const Version inner_version = plan.a_outer ? rule.b_version : rule.a_version;

  // ---- Phase: outer serialization + intra-bucket exchange -------------------
  std::vector<vmpi::Bytes> received_outer;
  {
    PhaseScope scope(comm, profile, Phase::kIntraBucket);
    std::vector<vmpi::BufferWriter> outgoing(static_cast<std::size_t>(comm.size()));
    stats.outer_tuples_shipped =
        serialize_outer(outer.tree(outer_version), outer, inner, outgoing);
    profile.add_work(Phase::kIntraBucket, stats.outer_tuples_shipped);
    received_outer = exchange_alltoallv(comm, take_all(outgoing), exchange_algo);
  }

  // ---- Phase: local join (outputs emitted into the router) ------------------
  {
    PhaseScope scope(comm, profile, Phase::kLocalJoin);
    const auto& inner_tree = inner.tree(inner_version);
    const std::size_t outer_arity = outer.arity();
    Tuple otup;
    Tuple scratch;
    static const Tuple kNoMatch;
    for (const auto& buf : received_outer) {
      vmpi::BufferReader r(buf);
      while (!r.done()) {
        otup.clear();
        for (std::size_t c = 0; c < outer_arity; ++c) otup.push_back(r.get<value_t>());
        ++stats.probes;
        if (rule.anti) {
          if (rule.pre_filter &&
              rule.pre_filter->eval(otup.view(), kNoMatch.view()) == 0) {
            continue;  // the rule never considers this A row
          }
          bool exists = false;
          inner_tree.scan_prefix(otup.prefix(jcc), [&](const Tuple& itup) {
            if (rule.filter && rule.filter->eval(otup.view(), itup.view()) == 0) return;
            exists = true;
          });
          if (!exists) {
            ++stats.matches;
            emit_output(rule.out, otup.view(), kNoMatch.view(), scratch, router, route);
          }
          continue;
        }
        inner_tree.scan_prefix(otup.prefix(jcc), [&](const Tuple& itup) {
          const auto a = plan.a_outer ? otup.view() : itup.view();
          const auto b = plan.a_outer ? itup.view() : otup.view();
          if (rule.filter && rule.filter->eval(a, b) == 0) return;
          ++stats.matches;
          emit_output(rule.out, a, b, scratch, router, route);
        });
      }
    }
    stats.outputs = stats.matches;
    profile.add_work(Phase::kLocalJoin, stats.probes + stats.matches);
  }
  return stats;
}

RuleExecStats execute_copy(RankProfile& profile, const CopyRule& rule,
                           ExchangeRouter& router) {
  RuleExecStats stats;
  const std::uint32_t route = router.add_target(rule.out.target);

  PhaseScope scope(router.comm(), profile, Phase::kLocalJoin);
  static const Tuple kEmpty;
  Tuple scratch;
  rule.src->tree(rule.version).for_each([&](const Tuple& t) {
    ++stats.probes;
    if (rule.filter && rule.filter->eval(t.view(), kEmpty.view()) == 0) return;
    ++stats.matches;
    emit_output(rule.out, t.view(), kEmpty.view(), scratch, router, route);
  });
  stats.outputs = stats.matches;
  profile.add_work(Phase::kLocalJoin, stats.probes);
  return stats;
}

RuleExecStats execute_join(vmpi::Comm& comm, RankProfile& profile, const JoinRule& rule,
                           std::optional<JoinOrderPolicy> forced,
                           ExchangeAlgorithm exchange_algo) {
  ExchangeRouter router(comm);
  const auto stats = execute_join(comm, profile, rule, router, forced, exchange_algo);
  router.flush(profile, exchange_algo);
  return stats;
}

RuleExecStats execute_copy(vmpi::Comm& comm, RankProfile& profile, const CopyRule& rule,
                           ExchangeAlgorithm exchange_algo) {
  ExchangeRouter router(comm);
  const auto stats = execute_copy(profile, rule, router);
  router.flush(profile, exchange_algo);
  return stats;
}

namespace {

void validate_output(const OutputSpec& out, int max_a_arity, int max_b_arity,
                     const char* what) {
  if (out.target == nullptr) throw std::invalid_argument(std::string(what) + ": no target");
  if (out.cols.size() != out.target->arity()) {
    throw std::invalid_argument(std::string(what) + " -> " + out.target->name() +
                                ": head arity mismatch");
  }
  for (const auto& e : out.cols) {
    if (e.max_col_a() >= max_a_arity || e.max_col_b() >= max_b_arity) {
      throw std::invalid_argument(std::string(what) + " -> " + out.target->name() +
                                  ": column reference out of range");
    }
  }
}

}  // namespace

void validate_rule(const Rule& rule) {
  if (const auto* j = std::get_if<JoinRule>(&rule)) {
    if (j->a == nullptr || j->b == nullptr) throw std::invalid_argument("join: null side");
    if (j->a->jcc() != j->b->jcc()) {
      throw std::invalid_argument("join " + j->a->name() + " x " + j->b->name() +
                                  ": sides disagree on join-column count");
    }
    if (j->pre_filter) {
      if (!j->anti) {
        throw std::invalid_argument("join: pre_filter is only meaningful on antijoins");
      }
      if (j->pre_filter->max_col_b() >= 0) {
        throw std::invalid_argument("antijoin pre_filter may not reference the negated side");
      }
    }
    if (j->anti) {
      // Heads of antijoins cannot read the (absent) B side, and B must not
      // be rebalanced away from single sub-buckets mid-run.
      for (const auto& e : j->out.cols) {
        if (e.max_col_b() >= 0) {
          throw std::invalid_argument("antijoin -> " + j->out.target->name() +
                                      ": head may not reference the negated side");
        }
      }
      if (j->b->sub_buckets() != 1 || j->b->config().balanceable) {
        throw std::invalid_argument("antijoin against " + j->b->name() +
                                    ": the negated relation must stay in a single "
                                    "sub-bucket (absence is a global property)");
      }
    }
    validate_output(j->out, static_cast<int>(j->a->arity()), static_cast<int>(j->b->arity()),
                    "join");
    if (j->filter) {
      if (j->filter->max_col_a() >= static_cast<int>(j->a->arity()) ||
          j->filter->max_col_b() >= static_cast<int>(j->b->arity())) {
        throw std::invalid_argument("join filter: column reference out of range");
      }
    }
    return;
  }
  const auto& c = std::get<CopyRule>(rule);
  if (c.src == nullptr) throw std::invalid_argument("copy: null source");
  validate_output(c.out, static_cast<int>(c.src->arity()), 0, "copy");
  if (c.filter && c.filter->max_col_a() >= static_cast<int>(c.src->arity())) {
    throw std::invalid_argument("copy filter: column reference out of range");
  }
}

}  // namespace paralagg::core

#pragma once

// Declarative query container.
//
// A Program owns its relations and a list of strata.  Each stratum has
// init rules (run once, seeding the deltas) and loop rules (run to a
// fixed point, or for a fixed number of rounds for non-monotone refresh
// aggregates).  Strata execute in order — this is classic stratification,
// with the twist that *within* a stratum, aggregation runs inside the
// recursion (the paper's subject).
//
// Programs are built SPMD-style: every rank constructs an identical
// Program against its own Comm, then hands it to an Engine.

#include <memory>
#include <vector>

#include "core/ra_op.hpp"
#include "core/relation.hpp"

namespace paralagg::core {

struct Stratum {
  std::vector<Rule> init_rules;
  std::vector<Rule> loop_rules;
  /// True: iterate loop rules until the global delta is empty.
  /// False: run exactly max_rounds rounds (refresh aggregates, PageRank).
  bool fixpoint = true;
  std::size_t max_rounds = 0;
};

class Program {
 public:
  explicit Program(vmpi::Comm& comm) : comm_(&comm) {}

  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  /// Create a relation owned by this program.
  Relation* relation(RelationConfig cfg) {
    relations_.push_back(std::make_unique<Relation>(*comm_, std::move(cfg)));
    return relations_.back().get();
  }

  Stratum& stratum() {
    strata_.push_back(std::make_unique<Stratum>());
    return *strata_.back();
  }

  [[nodiscard]] vmpi::Comm& comm() const { return *comm_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Stratum>>& strata() const { return strata_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Relation>>& relations() const {
    return relations_;
  }

  /// Validate every rule of every stratum; throws on malformed programs.
  void validate() const {
    for (const auto& s : strata_) {
      for (const auto& r : s->init_rules) validate_rule(r);
      for (const auto& r : s->loop_rules) validate_rule(r);
    }
  }

 private:
  vmpi::Comm* comm_;
  std::vector<std::unique_ptr<Relation>> relations_;
  std::vector<std::unique_ptr<Stratum>> strata_;
};

}  // namespace paralagg::core

#include "core/join_planner.hpp"

namespace paralagg::core {

PlanDecision plan_join_order(vmpi::Comm& comm, JoinOrderPolicy policy,
                             std::size_t a_local_size, std::size_t b_local_size) {
  switch (policy) {
    case JoinOrderPolicy::kFixedAOuter:
      return {.a_outer = true, .votes_for_a = 0, .voted = false};
    case JoinOrderPolicy::kFixedBOuter:
      return {.a_outer = false, .votes_for_a = 0, .voted = false};
    case JoinOrderPolicy::kDynamic:
      break;
  }
  // Algorithm 1.  Each rank votes with one small integer for the side it
  // would rather ship (its smaller partition); ties prefer A so that all
  // ranks break them identically.
  const std::uint32_t local_vote = a_local_size <= b_local_size ? 1U : 0U;
  const std::uint32_t votes = comm.allreduce<std::uint32_t>(local_vote, vmpi::ReduceOp::kSum);
  const bool a_outer = votes >= static_cast<std::uint32_t>((comm.size() + 1) / 2);
  return {.a_outer = a_outer, .votes_for_a = static_cast<int>(votes), .voted = true};
}

}  // namespace paralagg::core

#include "baseline/shuffle_engine.hpp"

#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "storage/tuple.hpp"

namespace paralagg::baseline {

namespace {

using storage::hash_columns;
using storage::mix64;

struct Tup3 {
  value_t a, b, c;
};
struct Tup2 {
  value_t a, b;
};

std::size_t owner1(value_t x, int n) { return static_cast<std::size_t>(mix64(x) % static_cast<std::uint64_t>(n)); }
std::size_t owner2(value_t x, value_t y, int n) {
  return static_cast<std::size_t>(mix64(mix64(x) ^ y) % static_cast<std::uint64_t>(n));
}
std::size_t owner3(value_t x, value_t y, value_t z, int n) {
  return static_cast<std::size_t>(mix64(mix64(mix64(x) ^ y) ^ z) %
                                  static_cast<std::uint64_t>(n));
}

/// Adjacency partitioned by source hash, built collectively.
std::unordered_map<value_t, std::vector<std::pair<value_t, value_t>>> build_adjacency(
    vmpi::Comm& comm, const graph::Graph& g, bool symmetrize) {
  const int n = comm.size();
  std::vector<std::vector<Tup3>> send(static_cast<std::size_t>(n));
  for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < g.edges.size();
       i += static_cast<std::size_t>(n)) {
    const auto& e = g.edges[i];
    send[owner1(e.src, n)].push_back({e.src, e.dst, e.weight});
    if (symmetrize) send[owner1(e.dst, n)].push_back({e.dst, e.src, e.weight});
  }
  auto got = comm.alltoallv_t(send);
  std::unordered_map<value_t, std::vector<std::pair<value_t, value_t>>> adj;
  for (const auto& buf : got) {
    for (const auto& t : buf) adj[t.a].emplace_back(t.b, t.c);
  }
  return adj;
}

struct LoopTotals {
  std::uint64_t result_count = 0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// The shared frontier loop.  State tuples are (key, ctx, val): SSSP uses
/// (to, from, dist) — `ctx` carries the source — and CC uses (node, 0,
/// label).  Aggregation key is (key, ctx); candidates relax `val` via min.
LoopTotals shuffle_loop(vmpi::Comm& comm, const ShuffleOptions& opts,
                        const std::unordered_map<value_t, std::vector<std::pair<value_t, value_t>>>& adj,
                        std::vector<Tup3> seeds, bool weighted) {
  const int n = comm.size();
  const auto me = static_cast<std::size_t>(comm.rank());

  // The "global hashmap with a special partition key" (paper §IV-A):
  // reducer-side accumulators keyed on the independent columns.
  std::unordered_map<value_t, std::unordered_map<value_t, value_t>> best;  // key -> ctx -> val
  // The stored relation, partitioned by FULL-tuple hash: the strategy under
  // test.  Insertions here are the redistribution hop PARALAGG avoids.
  std::unordered_set<std::uint64_t> store;

  // Seed: route seeds to their reducers and fold them in.
  std::vector<Tup3> delta;  // lives on reducer ranks between iterations
  {
    std::vector<std::vector<Tup3>> send(static_cast<std::size_t>(n));
    for (const auto& s : seeds) {
      // Master mode keeps the single accumulator map on rank 0.
      const std::size_t dst =
          opts.mode == ShuffleMode::kMaster ? 0 : owner2(s.a, s.b, n);
      send[dst].push_back(s);
    }
    auto got = comm.alltoallv_t(send);
    for (const auto& buf : got) {
      for (const auto& t : buf) {
        auto& slot = best[t.a];
        auto it = slot.find(t.b);
        if (it == slot.end() || t.c < it->second) {
          slot[t.b] = t.c;
          delta.push_back(t);
        }
      }
    }
  }

  LoopTotals totals;
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    // Hop 1: route the delta to the join owners (hash of the join column).
    std::vector<std::vector<Tup3>> to_join(static_cast<std::size_t>(n));
    for (const auto& t : delta) to_join[owner1(t.a, n)].push_back(t);
    auto at_join = comm.alltoallv_t(to_join);

    // Local join against the adjacency partition.
    std::vector<std::vector<Tup3>> candidates(static_cast<std::size_t>(n));
    const auto route_candidate = [&](const Tup3& c) {
      if (opts.mode == ShuffleMode::kShuffle) {
        candidates[owner2(c.a, c.b, n)].push_back(c);
      } else {
        candidates[0].push_back(c);  // master collects everything
      }
    };
    for (const auto& buf : at_join) {
      for (const auto& t : buf) {
        const auto a = adj.find(t.a);
        if (a == adj.end()) continue;
        for (const auto& [v, w] : a->second) {
          route_candidate({v, t.b, t.c + (weighted ? w : 0)});
        }
      }
    }

    // Hop 2: aggregation exchange.
    std::vector<Tup3> changed;
    if (opts.mode == ShuffleMode::kShuffle) {
      auto at_reducer = comm.alltoallv_t(candidates);
      for (const auto& buf : at_reducer) {
        for (const auto& t : buf) {
          auto& slot = best[t.a];
          auto it = slot.find(t.b);
          if (it == slot.end() || t.c < it->second) {
            slot[t.b] = t.c;
            changed.push_back(t);
          }
        }
      }
    } else {
      // Master mode: rank 0 owns the whole map.
      auto at_master = comm.alltoallv_t(candidates);
      std::vector<Tup3> master_changed;
      if (comm.rank() == 0) {
        for (const auto& buf : at_master) {
          for (const auto& t : buf) {
            auto& slot = best[t.a];
            auto it = slot.find(t.b);
            if (it == slot.end() || t.c < it->second) {
              slot[t.b] = t.c;
              master_changed.push_back(t);
            }
          }
        }
      }
      // Broadcast the changed rows; each rank adopts a slice as its delta.
      vmpi::BufferWriter w;
      for (const auto& t : master_changed) {
        w.put(t.a);
        w.put(t.b);
        w.put(t.c);
      }
      const auto serialized = w.take();
      auto bytes = comm.bcast(0, serialized);
      vmpi::BufferReader r(bytes);
      std::size_t idx = 0;
      while (!r.done()) {
        Tup3 t{r.get<value_t>(), r.get<value_t>(), r.get<value_t>()};
        if (idx % static_cast<std::size_t>(n) == me) changed.push_back(t);
        ++idx;
      }
    }

    // Hop 3: redistribute surviving rows to their full-tuple-hash storage
    // owners (PARALAGG's fused design makes this hop vanish).
    {
      std::vector<std::vector<Tup3>> to_store(static_cast<std::size_t>(n));
      for (const auto& t : changed) to_store[owner3(t.a, t.b, t.c, n)].push_back(t);
      auto at_store = comm.alltoallv_t(to_store);
      for (const auto& buf : at_store) {
        for (const auto& t : buf) {
          store.insert(mix64(mix64(mix64(t.a) ^ t.b) ^ t.c));
        }
      }
    }

    delta = std::move(changed);
    ++totals.iterations;
    const auto global_changed =
        comm.allreduce<std::uint64_t>(delta.size(), vmpi::ReduceOp::kSum);
    if (global_changed == 0) {
      totals.converged = true;
      break;
    }
  }

  std::uint64_t local_results = 0;
  for (const auto& [key, slot] : best) {
    (void)key;
    local_results += slot.size();
  }
  // Master mode keeps the whole map on rank 0; either way the sum is right.
  totals.result_count = comm.allreduce<std::uint64_t>(local_results, vmpi::ReduceOp::kSum);
  return totals;
}

ShuffleResult run_loop(vmpi::Comm& comm, const graph::Graph& g, bool symmetrize, bool weighted,
                       std::vector<Tup3> seeds, const ShuffleOptions& opts) {
  const std::uint64_t bytes_before = comm.stats().total_remote_bytes();
  const auto t0 = std::chrono::steady_clock::now();

  const auto adj = build_adjacency(comm, g, symmetrize);
  const auto totals = shuffle_loop(comm, opts, adj, std::move(seeds), weighted);

  ShuffleResult result;
  result.result_count = totals.result_count;
  result.iterations = totals.iterations;
  result.converged = totals.converged;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const std::uint64_t my_bytes = comm.stats().total_remote_bytes() - bytes_before;
  {
    vmpi::StatsPause pause(comm);
    result.remote_bytes = comm.allreduce<std::uint64_t>(my_bytes, vmpi::ReduceOp::kSum);
  }
  return result;
}

}  // namespace

ShuffleResult run_sssp_shuffle(vmpi::Comm& comm, const graph::Graph& g,
                               const std::vector<value_t>& sources,
                               const ShuffleOptions& opts) {
  std::vector<Tup3> seeds;
  if (comm.rank() == 0) {
    for (const value_t s : sources) seeds.push_back({s, s, 0});
  }
  return run_loop(comm, g, /*symmetrize=*/false, /*weighted=*/true, std::move(seeds), opts);
}

ShuffleResult run_cc_shuffle(vmpi::Comm& comm, const graph::Graph& g,
                             const ShuffleOptions& opts) {
  // Seed every edge-incident node with its own id (ctx column unused).
  std::vector<Tup3> seeds;
  const auto n = static_cast<std::size_t>(comm.size());
  for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < g.edges.size(); i += n) {
    const auto& e = g.edges[i];
    seeds.push_back({e.src, 0, e.src});
    seeds.push_back({e.dst, 0, e.dst});
  }
  return run_loop(comm, g, /*symmetrize=*/true, /*weighted=*/false, std::move(seeds), opts);
}

}  // namespace paralagg::baseline

#pragma once

// The comparator strategy: hash-shuffle engines in the style of
// RaSQL / BigDatalog ("shuffle" mode) and SociaLite ("master" mode).
//
// The paper's §IV-A diagnosis of these systems: they treat aggregated
// columns like ordinary columns.  The aggregated relation is partitioned
// by a hash of the *whole* tuple, so two partial results for the same
// (from, to) pair generally live on different ranks; folding them requires
// a dedicated aggregation exchange every iteration against "a global
// hashmap with a special partition key", plus a redistribution of the
// surviving tuples back to their storage owners.  PARALAGG's fused local
// aggregation removes both hops.
//
// These engines run the same frontier algorithm (per-iteration tuple
// counts and iteration counts match PARALAGG), so byte-count differences
// isolate exactly the strategy the paper criticizes.
//
//   mode kShuffle (RaSQL-like):   join shuffle -> reducer shuffle keyed on
//                                 independent columns -> redistribution by
//                                 full-tuple hash
//   mode kMaster  (SociaLite-like single-coordinator flavour): candidates
//                                 gathered to rank 0, merged there, changed
//                                 rows broadcast back

#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "vmpi/comm.hpp"

namespace paralagg::baseline {

using graph::value_t;

enum class ShuffleMode : std::uint8_t { kShuffle, kMaster };

struct ShuffleOptions {
  ShuffleMode mode = ShuffleMode::kShuffle;
  std::size_t max_iterations = 1'000'000;
};

struct ShuffleResult {
  std::uint64_t result_count = 0;  // |answer| (paths / labelled nodes)
  std::size_t iterations = 0;
  std::uint64_t remote_bytes = 0;  // Σ over ranks, this run only
  double wall_seconds = 0;
  bool converged = false;
};

/// SSSP under the shuffle strategy.  Collective; result identical on all
/// ranks.
ShuffleResult run_sssp_shuffle(vmpi::Comm& comm, const graph::Graph& g,
                               const std::vector<value_t>& sources,
                               const ShuffleOptions& opts = {});

/// Connected components (min-label propagation) under the shuffle
/// strategy.  Collective.
ShuffleResult run_cc_shuffle(vmpi::Comm& comm, const graph::Graph& g,
                             const ShuffleOptions& opts = {});

}  // namespace paralagg::baseline

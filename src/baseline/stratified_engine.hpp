#pragma once

// Vanilla-Datalog baseline: stratified aggregation (paper §II-B).
//
// The asymptotically poor plan the paper opens with: compute the *set of
// all distinct path lengths* as a plain relation to a fixed point, then
// aggregate $MIN in a later stratum.  On graphs with cycles the first
// stratum enumerates unboundedly many lengths — which is why these runs
// carry a tuple budget and report `completed = false` when they blow
// through it (the reproduction's analogue of the engines that "run out of
// memory due to materialization overhead", §V-A, and the Table I "N/A"
// rows).
//
// Built on the same PARALAGG substrate, so the comparison isolates the
// *plan*, not the infrastructure.

#include "queries/common.hpp"

namespace paralagg::baseline {

struct StratifiedOptions {
  std::vector<queries::value_t> sources;  // SSSP only
  /// Materialization budget before the run is declared failed.
  std::uint64_t tuple_limit = 5'000'000;
  queries::QueryTuning tuning;
};

struct StratifiedResult {
  bool completed = false;          // false: exceeded tuple_limit ("OOM")
  std::uint64_t materialized = 0;  // |all-paths| (the overhead itself)
  std::uint64_t answer_count = 0;  // |aggregated result| when completed
  std::size_t iterations = 0;
  core::RunResult run;
};

/// SSSP the stratified way: Path to fixpoint, then Spath = MIN per pair.
StratifiedResult run_sssp_stratified(vmpi::Comm& comm, const graph::Graph& g,
                                     const StratifiedOptions& opts);

/// CC the stratified way: full reachability pairs, then MIN per node —
/// materializes the node product within each component (§V-A).
StratifiedResult run_cc_stratified(vmpi::Comm& comm, const graph::Graph& g,
                                   const StratifiedOptions& opts);

}  // namespace paralagg::baseline

#include "baseline/stratified_engine.hpp"

#include "core/program.hpp"

namespace paralagg::baseline {

using core::Expr;
using core::Tuple;
using core::Version;
using queries::value_t;

StratifiedResult run_sssp_stratified(vmpi::Comm& comm, const graph::Graph& g,
                                     const StratifiedOptions& opts) {
  core::Program program(comm);

  auto* edge = program.relation({
      .name = "edge",
      .arity = 3,
      .jcc = 1,
      .sub_buckets = opts.tuning.edge_sub_buckets,
      .balanceable = opts.tuning.balance_edges,
  });
  // All distinct (to, from, length) triples — *plain*, every length kept.
  auto* path = program.relation({.name = "path_all", .arity = 3, .jcc = 1});
  auto* spath = program.relation({
      .name = "spath",
      .arity = 3,
      .jcc = 1,
      .dep_arity = 1,
      .aggregator = core::make_min_aggregator(),
  });

  auto& enumerate = program.stratum();
  enumerate.loop_rules.push_back(core::JoinRule{
      .a = path,
      .a_version = Version::kDelta,
      .b = edge,
      .b_version = Version::kFull,
      .out = {.target = path,
              .cols = {Expr::col_b(1), Expr::col_a(1),
                       Expr::add(Expr::col_a(2), Expr::col_b(2))}},
  });

  auto& aggregate = program.stratum();
  aggregate.init_rules.push_back(core::CopyRule{
      .src = path,
      .version = Version::kFull,
      .out = {.target = spath,
              .cols = {Expr::col_a(0), Expr::col_a(1), Expr::col_a(2)}},
  });

  edge->load_facts(queries::edge_slice(comm, g, /*weighted=*/true));
  std::vector<Tuple> seeds;
  if (comm.rank() == 0) {
    for (value_t s : opts.sources) seeds.push_back(Tuple{s, s, 0});
  }
  path->load_facts(seeds);

  auto engine_cfg = opts.tuning.engine;
  engine_cfg.tuple_limit = opts.tuple_limit;
  core::Engine engine(comm, engine_cfg);

  StratifiedResult result;
  result.run = engine.run(program);
  result.iterations = result.run.total_iterations;
  result.completed = true;
  for (const auto& s : result.run.strata) {
    if (s.aborted_tuple_limit) result.completed = false;
  }
  result.materialized = path->global_size(Version::kFull);
  result.answer_count = result.completed ? spath->global_size(Version::kFull) : 0;
  return result;
}

StratifiedResult run_cc_stratified(vmpi::Comm& comm, const graph::Graph& g,
                                   const StratifiedOptions& opts) {
  core::Program program(comm);

  auto* edge = program.relation({
      .name = "edge",
      .arity = 2,
      .jcc = 1,
      .sub_buckets = opts.tuning.edge_sub_buckets,
      .balanceable = opts.tuning.balance_edges,
  });
  // Every (node, reachable-node) pair — the node product §V-A warns about.
  auto* reach = program.relation({.name = "reach", .arity = 2, .jcc = 1});
  auto* cc = program.relation({
      .name = "cc",
      .arity = 2,
      .jcc = 1,
      .dep_arity = 1,
      .aggregator = core::make_min_aggregator(),
  });

  auto& enumerate = program.stratum();
  // reach(n, n) <- edge(n, _).
  enumerate.init_rules.push_back(core::CopyRule{
      .src = edge,
      .version = Version::kFull,
      .out = {.target = reach, .cols = {Expr::col_a(0), Expr::col_a(0)}},
  });
  // reach(y, m) <- reach(x, m), edge(x, y): stored (x, m) joined on x.
  enumerate.loop_rules.push_back(core::JoinRule{
      .a = reach,
      .a_version = Version::kDelta,
      .b = edge,
      .b_version = Version::kFull,
      .out = {.target = reach, .cols = {Expr::col_b(1), Expr::col_a(1)}},
  });

  auto& aggregate = program.stratum();
  aggregate.init_rules.push_back(core::CopyRule{
      .src = reach,
      .version = Version::kFull,
      .out = {.target = cc, .cols = {Expr::col_a(0), Expr::col_a(1)}},
  });

  {
    std::vector<Tuple> slice;
    const auto n = static_cast<std::size_t>(comm.size());
    for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < g.edges.size(); i += n) {
      const auto& e = g.edges[i];
      slice.push_back(Tuple{e.src, e.dst});
      slice.push_back(Tuple{e.dst, e.src});
    }
    edge->load_facts(slice);
  }

  auto engine_cfg = opts.tuning.engine;
  engine_cfg.tuple_limit = opts.tuple_limit;
  core::Engine engine(comm, engine_cfg);

  StratifiedResult result;
  result.run = engine.run(program);
  result.iterations = result.run.total_iterations;
  result.completed = true;
  for (const auto& s : result.run.strata) {
    if (s.aborted_tuple_limit) result.completed = false;
  }
  result.materialized = reach->global_size(Version::kFull);
  result.answer_count = result.completed ? cc->global_size(Version::kFull) : 0;
  return result;
}

}  // namespace paralagg::baseline

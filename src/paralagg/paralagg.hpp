#pragma once

// Umbrella header: the PARALAGG public API.
//
//   #include "paralagg/paralagg.hpp"
//
//   paralagg::vmpi::run(nranks, [&](paralagg::vmpi::Comm& comm) {
//     paralagg::queries::SsspOptions opts;
//     opts.sources = {0};
//     auto result = paralagg::queries::run_sssp(comm, graph, opts);
//   });
//
// Layers, bottom to top:
//   vmpi      — message-passing substrate (ranks, collectives, stats)
//   storage   — tuples and B-tree partitions
//   core      — relations, aggregators, RA kernels, fixpoint engine
//   async     — nonblocking evaluation mode (delta propagation + Safra)
//   graph     — generators, IO, dataset zoo
//   queries   — prebuilt declarative queries (SSSP, CC, PageRank, TC, ...)
//   serving   — resident incremental engine (update batches + point lookups)
//   baseline  — comparator engines (shuffle-style, stratified Datalog)

#include "async/async_engine.hpp"
#include "async/termination.hpp"
#include "baseline/shuffle_engine.hpp"
#include "baseline/stratified_engine.hpp"
#include "core/aggregator.hpp"
#include "core/engine.hpp"
#include "core/program.hpp"
#include "frontend/compiler.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/zoo.hpp"
#include "queries/cc.hpp"
#include "queries/lsp.hpp"
#include "queries/pagerank.hpp"
#include "queries/programs.hpp"
#include "queries/reference.hpp"
#include "queries/sssp.hpp"
#include "queries/sssp_tree.hpp"
#include "queries/tc.hpp"
#include "queries/triangles.hpp"
#include "serving/serving_engine.hpp"
#include "vmpi/runtime.hpp"

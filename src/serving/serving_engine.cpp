#include "serving/serving_engine.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <unordered_set>
#include <utility>
#include <variant>

#include "core/expr.hpp"
#include "core/ra_op.hpp"
#include "core/wire.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/serialize.hpp"

namespace paralagg::serving {

namespace {

using core::Expr;

void append_row(std::vector<value_t>& buf, std::span<const value_t> row) {
  buf.insert(buf.end(), row.begin(), row.end());
}

Relation* target_of(const core::Rule& rule) {
  return std::visit([](const auto& r) { return r.out.target; }, rule);
}

template <typename Map>
std::span<const Tuple> rows_of(const Map& m, Relation* r) {
  const auto it = m.find(r);
  return it == m.end() ? std::span<const Tuple>{} : std::span<const Tuple>(it->second);
}

/// The engine settings serving's bookkeeping depends on, applied over the
/// caller's knobs (see ServingConfig::engine).
core::EngineConfig serving_engine_config(core::EngineConfig e) {
  e.router_preagg = false;                       // support counts need per-event staging
  e.exchange = core::ExchangeAlgorithm::kDense;  // leader merges would collapse events
  e.balance.enabled = false;                     // owners must stay put mid-service
  e.skew.enabled = false;                        // retraction needs owner placement
  e.checkpoint_every = 0;                        // serving checkpoints at batch boundaries
  e.checkpoint_path.clear();
  return e;
}

constexpr std::span<const value_t> kNoSide;  // absent side B of a copy rule

}  // namespace

ServingEngine::ServingEngine(vmpi::Comm& comm, core::Program& program, ServingConfig cfg)
    : comm_(&comm),
      program_(&program),
      cfg_(std::move(cfg)),
      engine_(comm, serving_engine_config(cfg_.engine)) {
  program_->validate();
  classify_and_validate();
}

bool ServingEngine::is_base(const Relation* r) const {
  return std::find(base_.begin(), base_.end(), r) != base_.end();
}

Relation* ServingEngine::find_relation(const std::string& name) const {
  for (const auto& rel : program_->relations()) {
    if (rel->name() == name) return rel.get();
  }
  throw ServingError("unknown relation '" + name + "'");
}

void ServingEngine::classify_and_validate() {
  const auto& strata = program_->strata();
  if (strata.empty() || strata[0]->loop_rules.empty()) {
    throw ServingError(
        "serving needs a recursive first stratum (loop rules to maintain)");
  }
  if (!strata[0]->fixpoint) {
    throw ServingError("refresh (fixed-round) strata cannot be served incrementally");
  }
  for (std::size_t i = 1; i < strata.size(); ++i) {
    if (!strata[i]->loop_rules.empty()) {
      throw ServingError("serving supports exactly one recursive stratum (stratum " +
                         std::to_string(i) + " is also recursive)");
    }
  }
  recursive_ = strata[0].get();
  for (const auto& r : recursive_->init_rules) rec_rules_.push_back(&r);
  for (const auto& r : recursive_->loop_rules) rec_rules_.push_back(&r);

  // Derived = targeted by any rule anywhere; base = everything else.
  std::unordered_set<const Relation*> targeted;
  for (const auto& s : strata) {
    for (const auto* rules : {&s->init_rules, &s->loop_rules}) {
      for (const auto& r : *rules) targeted.insert(target_of(r));
    }
  }
  for (const auto& rel : program_->relations()) {
    if (!targeted.contains(rel.get())) base_.push_back(rel.get());
  }

  const auto push_unique = [](std::vector<Relation*>& v, Relation* r) {
    if (std::find(v.begin(), v.end(), r) == v.end()) v.push_back(r);
  };
  for (const core::Rule* r : rec_rules_) push_unique(rec_targets_, target_of(*r));
  for (std::size_t i = 1; i < strata.size(); ++i) {
    for (const auto& r : strata[i]->init_rules) {
      Relation* t = target_of(r);
      if (std::find(rec_targets_.begin(), rec_targets_.end(), t) != rec_targets_.end()) {
        throw ServingError("projection stratum rewrites maintained relation '" +
                           t->name() + "'");
      }
      push_unique(proj_targets_, t);
    }
  }

  // Per producing rule: how recovery will locate a retracted key's premises.
  for (const core::Rule* rp : rec_rules_) {
    Recovery rc;
    Relation* premise = nullptr;
    if (const auto* j = std::get_if<core::JoinRule>(rp)) {
      if (j->anti) throw ServingError("antijoin rules cannot be maintained incrementally");
      const bool ab = is_base(j->a), bb = is_base(j->b);
      if (ab == bb) {
        throw ServingError("recursive join over '" + j->a->name() + "'/'" +
                           j->b->name() + "' must pair one base and one derived side");
      }
      const Expr& key = j->out.cols[0];
      if (key.kind() == Expr::Kind::kColA) {
        rc.premise_is_b = false;
        premise = j->a;
      } else if (key.kind() == Expr::Kind::kColB) {
        rc.premise_is_b = true;
        premise = j->b;
      } else {
        throw ServingError("rule head key into '" + j->out.target->name() +
                           "' must be a plain body column");
      }
      rc.col = key.col_index();
    } else {
      const auto& c = std::get<core::CopyRule>(*rp);
      const Expr& key = c.out.cols[0];
      if (key.kind() != Expr::Kind::kColA) {
        throw ServingError("copy-rule head key into '" + c.out.target->name() +
                           "' must be a plain source column");
      }
      premise = c.src;
      rc.col = key.col_index();
    }
    Relation* target = target_of(*rp);
    if (target->aggregated() && target->config().agg_mode != core::AggMode::kLattice) {
      throw ServingError("refresh aggregate '" + target->name() +
                         "' cannot be served incrementally");
    }
    if (rc.col == 0 && premise->jcc() == 1) {
      rc.via = Recovery::Via::kScanPrefix;  // the premise tree's own prefix
    } else {
      if (!is_base(premise)) {
        throw ServingError("head key of '" + target->name() +
                           "' must be the derived side's leading join column or a "
                           "base-side column");
      }
      rc.via = Recovery::Via::kReverseIndex;
      Relation* rev = nullptr;
      for (const RevSpec& rs : revs_) {
        if (rs.base == premise && rs.col == rc.col) rev = rs.rev;
      }
      if (rev == nullptr) {
        core::RelationConfig rcfg;
        rcfg.name = premise->name() + "_rx" + std::to_string(rc.col);
        rcfg.arity = premise->arity() + 1;
        rcfg.jcc = 1;
        rev_store_.push_back(std::make_unique<Relation>(*comm_, std::move(rcfg)));
        rev = rev_store_.back().get();
        revs_.push_back(RevSpec{premise, rc.col, rev});
      }
      rc.rev = rev;
    }
    recovery_.push_back(rc);
  }

  // Exact event bookkeeping for plain recursive targets; aggregated ones
  // retract by value match instead (file comment).
  for (Relation* t : rec_targets_) {
    if (!t->aggregated()) t->enable_support_counts();
  }
}

std::vector<value_t> ServingEngine::exchange_flat(std::vector<std::vector<value_t>> send) {
  // Owner-routed mutation rows ride the faultable split-phase exchange as
  // CRC-sealed frames (the dense alltoallv would bypass fault injection
  // and the reliable transport entirely).  One seq per call: every rank
  // advances flat_seq_ in the same SPMD order, and the reliable layer (or
  // the ticket's arrival flags, with the retry budget off) discards
  // injected duplicates before the decode.
  const auto n = send.size();
  const value_t seq = static_cast<value_t>(flat_seq_++);
  std::vector<vmpi::Bytes> raw(n);
  for (std::size_t d = 0; d < n; ++d) {
    vmpi::TypedWriter<value_t> w(send[d].size() + core::wire::kTrailerWords);
    w.put_span(std::span<const value_t>(send[d]));
    core::wire::seal_frame(w, seq);
    raw[d] = w.take();
  }
  auto ticket = comm_->ialltoallv(std::move(raw));
  const auto got = comm_->wait(ticket);
  std::size_t total = 0;
  for (const auto& b : got) total += b.size() / sizeof(value_t);
  std::vector<value_t> flat;
  flat.reserve(total);
  for (const auto& b : got) {
    const auto f = core::wire::open_frame(b);  // throws FrameDecodeError if corrupt
    const std::size_t old = flat.size();
    flat.resize(old + f.payload.size() / sizeof(value_t));
    if (!f.payload.empty()) {
      std::memcpy(flat.data() + old, f.payload.data(), f.payload.size());
    }
  }
  return flat;
}

std::vector<std::pair<Relation*, Relation::LocalSnapshot>> ServingEngine::snapshot_all()
    const {
  std::vector<std::pair<Relation*, Relation::LocalSnapshot>> snaps;
  if (!cfg_.rollback) return snaps;
  for (const auto& rel : program_->relations()) {
    snaps.emplace_back(rel.get(), rel->snapshot());
  }
  for (const auto& rev : rev_store_) snaps.emplace_back(rev.get(), rev->snapshot());
  return snaps;
}

bool ServingEngine::roll_back(
    std::vector<std::pair<Relation*, Relation::LocalSnapshot>>& snaps,
    UpdateResult& res) {
  if (snaps.empty()) return false;  // rollback disabled
  // Collective un-poisoning: every live rank parks in the reset
  // rendezvous (peers of a killed rank arrive once their watchdog fires
  // and their own abort unwinds to here).  A rank that never arrives
  // means real process death — the rendezvous times out, the world stays
  // poisoned, and this engine stops serving.
  if (!comm_->fault_reset(cfg_.rollback_timeout_seconds)) return false;
  for (auto& [rel, snap] : snaps) rel->restore(snap);
  res.rolled_back = true;
  return true;
}

bool ServingEngine::can_warm_start() {
  if (cfg_.manifest_path.empty()) return false;  // config: identical on all ranks
  std::uint8_t exists = 0;
  if (comm_->rank() == 0) {
    exists = std::filesystem::exists(cfg_.manifest_path) ? 1 : 0;
  }
  return comm_->bcast_value<std::uint8_t>(0, exists) != 0;
}

core::RunResult ServingEngine::start() {
  if (ready_) throw ServingError("start() called twice");
  core::RunResult rr;
  if (can_warm_start()) {
    core::load_manifest(*program_, cfg_.manifest_path);
    // load_manifest counts one event per key; the superset pass below
    // recounts every surviving derivation exactly once (a plain row enters
    // the delta exactly once, so each producing pair fires exactly once).
    // Clear first so plain-target counts stay exact across restarts.
    for (Relation* t : rec_targets_) t->clear_support_counts();
    rr = engine_.run_delta(*program_);
    rr.resumed = true;
  } else {
    rr = engine_.run(*program_);
  }
  if (rr.aborted_fault) return rr;
  build_reverse_indexes();
  // Base deltas are load_facts/manifest leftovers (delta == full); nothing
  // reads them — drop the duplicate before going resident.
  for (Relation* b : base_) b->tree(core::Version::kDelta).clear();
  ready_ = true;
  return rr;
}

void ServingEngine::build_reverse_indexes() {
  const auto n = static_cast<std::size_t>(comm_->size());
  for (const RevSpec& rs : revs_) {
    rs.rev->reset();
    std::vector<std::vector<value_t>> send(n);
    std::vector<value_t> rrow(rs.base->arity() + 1);
    std::as_const(rs.base->tree(core::Version::kFull))
        .for_each([&](std::span<const value_t> row) {
          rrow[0] = row[rs.col];
          std::copy(row.begin(), row.end(), rrow.begin() + 1);
          append_row(send[static_cast<std::size_t>(rs.rev->owner_rank(rrow))], rrow);
        });
    auto flat = exchange_flat(std::move(send));
    auto& tree = rs.rev->tree(core::Version::kFull);
    const std::size_t ar = rs.rev->arity();
    for (std::size_t off = 0; off < flat.size(); off += ar) {
      tree.insert(std::span<const value_t>{flat.data() + off, ar});
    }
  }
}

void ServingEngine::apply_base(const UpdateBatch& batch, RowsBy& deleted,
                               RowsBy& inserted, UpdateResult& res) {
  const auto n = static_cast<std::size_t>(comm_->size());

  // Validate and group this rank's contributions per base relation.
  std::unordered_map<Relation*, std::pair<std::vector<const Tuple*>, std::vector<const Tuple*>>>
      byrel;  // relation -> (inserts, deletes)
  for (const auto& rd : batch) {
    Relation* r = find_relation(rd.relation);
    if (!is_base(r)) {
      throw ServingError("updates must target base relations: '" + rd.relation +
                         "' is derived");
    }
    auto& [ins, del] = byrel[r];
    for (const Tuple& t : rd.inserts) {
      if (t.size() != r->arity()) {
        throw ServingError("arity mismatch in insert into '" + rd.relation + "'");
      }
      ins.push_back(&t);
    }
    for (const Tuple& t : rd.deletes) {
      if (t.size() != r->arity()) {
        throw ServingError("arity mismatch in delete from '" + rd.relation + "'");
      }
      del.push_back(&t);
    }
  }

  // Route to owners and mutate.  Deletes apply before inserts, so a row
  // both deleted and inserted in one batch nets to the insert.  The owner
  // records only what actually changed — duplicate contributions (or a
  // delete of an absent row) collapse here.
  for (Relation* b : base_) {
    const auto it = byrel.find(b);
    std::vector<std::vector<value_t>> del(n), ins(n);
    if (it != byrel.end()) {
      for (const Tuple* t : it->second.second) {
        append_row(del[static_cast<std::size_t>(b->owner_rank(t->view()))], t->view());
      }
      for (const Tuple* t : it->second.first) {
        append_row(ins[static_cast<std::size_t>(b->owner_rank(t->view()))], t->view());
      }
    }
    const std::size_t ar = b->arity();
    auto dflat = exchange_flat(std::move(del));
    for (std::size_t off = 0; off < dflat.size(); off += ar) {
      const std::span<const value_t> row{dflat.data() + off, ar};
      if (b->tree(core::Version::kFull).erase_key(row)) {
        deleted[b].emplace_back(row);
        ++res.base_deleted;
      } else {
        ++res.missing_deletes;
      }
    }
    auto iflat = exchange_flat(std::move(ins));
    for (std::size_t off = 0; off < iflat.size(); off += ar) {
      const std::span<const value_t> row{iflat.data() + off, ar};
      if (b->tree(core::Version::kFull).insert(row)) {
        inserted[b].emplace_back(row);
        ++res.base_inserted;
      }
    }
  }

  // Mirror the actual changes into the reverse indexes.
  for (const RevSpec& rs : revs_) {
    std::vector<std::vector<value_t>> del(n), ins(n);
    std::vector<value_t> rrow(rs.base->arity() + 1);
    const auto pack = [&](std::span<const Tuple> rows,
                          std::vector<std::vector<value_t>>& out) {
      for (const Tuple& t : rows) {
        rrow[0] = t[rs.col];
        std::copy(t.view().begin(), t.view().end(), rrow.begin() + 1);
        append_row(out[static_cast<std::size_t>(rs.rev->owner_rank(rrow))], rrow);
      }
    };
    pack(rows_of(deleted, rs.base), del);
    pack(rows_of(inserted, rs.base), ins);
    const std::size_t ar = rs.rev->arity();
    auto dflat = exchange_flat(std::move(del));
    for (std::size_t off = 0; off < dflat.size(); off += ar) {
      rs.rev->tree(core::Version::kFull)
          .erase_key(std::span<const value_t>{dflat.data() + off, ar});
    }
    auto iflat = exchange_flat(std::move(ins));
    for (std::size_t off = 0; off < iflat.size(); off += ar) {
      rs.rev->tree(core::Version::kFull)
          .insert(std::span<const value_t>{iflat.data() + off, ar});
    }
  }
}

void ServingEngine::emit_candidates(
    const core::Rule& rule, Relation* probe_rel, std::span<const Tuple> probe_rows,
    std::unordered_map<Relation*, std::vector<std::vector<value_t>>>& cand) {
  const auto& jr = std::get<core::JoinRule>(rule);
  Relation* partner = probe_rel == jr.a ? jr.b : jr.a;
  const bool probe_is_a = probe_rel == jr.a;
  const auto n = static_cast<std::size_t>(comm_->size());

  // Replicate each probe to every rank holding a sub-bucket of the
  // partner's bucket (the probe's leading jcc columns ARE the join key).
  std::vector<std::vector<value_t>> send(n);
  std::vector<int> dests;
  for (const Tuple& p : probe_rows) {
    partner->ranks_of_bucket(partner->bucket_of(p.view()), dests);
    for (const int d : dests) append_row(send[static_cast<std::size_t>(d)], p.view());
  }
  auto flat = exchange_flat(std::move(send));

  Relation* t = jr.out.target;
  auto& out = cand[t];
  const std::size_t par = probe_rel->arity();
  const auto& ptree = std::as_const(partner->tree(core::Version::kFull));
  std::vector<value_t> row;
  for (std::size_t off = 0; off < flat.size(); off += par) {
    const std::span<const value_t> prow{flat.data() + off, par};
    ptree.scan_prefix(prow.first(partner->jcc()), [&](std::span<const value_t> q) {
      const auto arow = probe_is_a ? prow : q;
      const auto brow = probe_is_a ? q : prow;
      if (jr.filter && jr.filter->eval(arow, brow) == 0) return;
      row.clear();
      for (const Expr& e : jr.out.cols) row.push_back(e.eval(arow, brow));
      append_row(out[static_cast<std::size_t>(t->owner_rank(row))], row);
    });
  }
}

void ServingEngine::retract_wavefront(const RowsBy& deleted_base, KeysBy& retracted,
                                      UpdateResult& res) {
  const auto n = static_cast<std::size_t>(comm_->size());
  // Round 1 probes are the deleted base facts; later rounds probe the
  // derived rows the previous round retracted (with their final values).
  RowsBy wave = deleted_base;
  while (true) {
    std::unordered_map<Relation*, std::vector<std::vector<value_t>>> cand;
    for (Relation* t : rec_targets_) cand[t].resize(n);

    for (const core::Rule* rule : rec_rules_) {
      if (const auto* j = std::get_if<core::JoinRule>(rule)) {
        // At most one side has probes per round (round 1: the base side;
        // later: the derived side), but both calls always run — the probe
        // exchange is collective.
        emit_candidates(*rule, j->a, rows_of(wave, j->a), cand);
        emit_candidates(*rule, j->b, rows_of(wave, j->b), cand);
      } else {
        const auto& c = std::get<core::CopyRule>(*rule);
        Relation* t = c.out.target;
        auto& out = cand[t];
        std::vector<value_t> row;
        for (const Tuple& p : rows_of(wave, c.src)) {
          if (c.filter && c.filter->eval(p.view(), kNoSide) == 0) continue;
          row.clear();
          for (const Expr& e : c.out.cols) row.push_back(e.eval(p.view(), kNoSide));
          append_row(out[static_cast<std::size_t>(t->owner_rank(row))], row);
        }
      }
    }

    RowsBy next;
    std::uint64_t round_retracted = 0;
    for (Relation* t : rec_targets_) {
      auto flat = exchange_flat(std::move(cand[t]));
      const std::size_t ar = t->arity(), indep = t->indep_arity();
      for (std::size_t off = 0; off < flat.size(); off += ar) {
        const std::span<const value_t> row{flat.data() + off, ar};
        const auto key = row.first(indep);
        const auto stored = std::as_const(t->tree(core::Version::kFull)).find_key(key);
        if (stored.empty()) continue;  // already gone (earlier candidate)
        bool kill;
        if (t->aggregated()) {
          // Pre-mappable lattice: the stored aggregate equals this
          // invalidated derivation's value iff the best support ran
          // through the deleted fact (lattice ascent makes the final
          // premise value the best one the pair ever produced).  Equal →
          // over-delete and re-derive; different → a better support
          // survives, leave it.
          kill = std::equal(stored.begin() + static_cast<std::ptrdiff_t>(indep),
                            stored.end(),
                            row.begin() + static_cast<std::ptrdiff_t>(indep));
        } else {
          // Plain target: exact event counts; the key dies with its last
          // supporting derivation.  Count 0 means "no bookkeeping" (an
          // externally loaded fact) — never retract those on decrement.
          kill = t->support_of(key) > 0 && t->support_release(key, 1) == 0;
        }
        if (!kill) continue;
        Tuple removed = t->retract_key(key);
        retracted[t].insert(Tuple(key));
        next[t].push_back(std::move(removed));
        ++round_retracted;
      }
    }
    ++res.retraction_rounds;
    res.retracted += round_retracted;
    const auto total =
        comm_->allreduce<std::uint64_t>(round_retracted, vmpi::ReduceOp::kSum);
    if (total == 0) break;
    wave = std::move(next);
  }
}

void ServingEngine::recover_retracted(const KeysBy& retracted, UpdateResult& res) {
  (void)res;
  const auto n = static_cast<std::size_t>(comm_->size());
  for (std::size_t ri = 0; ri < rec_rules_.size(); ++ri) {
    const core::Rule& rule = *rec_rules_[ri];
    const Recovery& rc = recovery_[ri];
    Relation* target = target_of(rule);
    const auto* j = std::get_if<core::JoinRule>(&rule);
    Relation* premise =
        j ? (rc.premise_is_b ? j->b : j->a) : std::get<core::CopyRule>(rule).src;
    Relation* scan_rel = rc.via == Recovery::Via::kReverseIndex ? rc.rev : premise;

    // Hop 1: each retracted key's head column (deduped — two keys sharing
    // it would enumerate the same premises twice and double-count events),
    // shipped to whoever holds matching premises.
    std::unordered_set<value_t> k0s;
    if (const auto it = retracted.find(target); it != retracted.end()) {
      for (const Tuple& k : it->second) k0s.insert(k[0]);
    }
    std::vector<std::vector<value_t>> ksend(n);
    std::vector<int> dests;
    for (const value_t k0 : k0s) {
      const value_t one[1] = {k0};
      scan_rel->ranks_of_bucket(scan_rel->bucket_of(one), dests);
      for (const int d : dests) ksend[static_cast<std::size_t>(d)].push_back(k0);
    }
    auto kflat = exchange_flat(std::move(ksend));
    // Dedupe arrivals too: distinct owners may request the same column value.
    const std::unordered_set<value_t> kset(kflat.begin(), kflat.end());

    // Enumerate premises; join rules take one more hop to pair them with
    // the partner side.
    std::unordered_map<Relation*, std::vector<std::vector<value_t>>> cand;
    cand[target].resize(n);
    auto& out = cand[target];
    std::vector<std::vector<value_t>> psend(n);
    Relation* partner = j ? (rc.premise_is_b ? j->a : j->b) : nullptr;
    const bool premise_is_a = j != nullptr && !rc.premise_is_b;
    std::vector<value_t> row;
    const auto& stree = std::as_const(scan_rel->tree(core::Version::kFull));
    for (const value_t k0 : kset) {
      const value_t pfx[1] = {k0};
      stree.scan_prefix(pfx, [&](std::span<const value_t> srow) {
        const std::span<const value_t> prow =
            rc.via == Recovery::Via::kReverseIndex ? srow.subspan(1) : srow;
        if (j != nullptr) {
          partner->ranks_of_bucket(partner->bucket_of(prow), dests);
          for (const int d : dests) append_row(psend[static_cast<std::size_t>(d)], prow);
        } else {
          const auto& c = std::get<core::CopyRule>(rule);
          if (c.filter && c.filter->eval(prow, kNoSide) == 0) return;
          row.clear();
          for (const Expr& e : c.out.cols) row.push_back(e.eval(prow, kNoSide));
          append_row(out[static_cast<std::size_t>(target->owner_rank(row))], row);
        }
      });
    }
    if (j != nullptr) {
      auto pflat = exchange_flat(std::move(psend));
      const std::size_t par = premise->arity();
      const auto& ptree = std::as_const(partner->tree(core::Version::kFull));
      for (std::size_t off = 0; off < pflat.size(); off += par) {
        const std::span<const value_t> prow{pflat.data() + off, par};
        ptree.scan_prefix(prow.first(partner->jcc()), [&](std::span<const value_t> q) {
          const auto arow = premise_is_a ? prow : q;
          const auto brow = premise_is_a ? q : prow;
          if (j->filter && j->filter->eval(arow, brow) == 0) return;
          row.clear();
          for (const Expr& e : j->out.cols) row.push_back(e.eval(arow, brow));
          append_row(out[static_cast<std::size_t>(target->owner_rank(row))], row);
        });
      }
    }

    // Final hop: candidates to the target owner, staged ONLY for keys this
    // batch retracted — survivors keep their state, and the insert-seeding
    // pass (which skips retracted keys) covers everything else.
    auto cflat = exchange_flat(std::move(out));
    const std::size_t tar = target->arity(), indep = target->indep_arity();
    const auto rit = retracted.find(target);
    for (std::size_t off = 0; off < cflat.size(); off += tar) {
      const std::span<const value_t> crow{cflat.data() + off, tar};
      if (rit != retracted.end() && rit->second.contains(Tuple(crow.first(indep)))) {
        target->stage(crow);
      }
    }
  }
}

void ServingEngine::seed_inserts(const RowsBy& inserted_base, const KeysBy& retracted,
                                 UpdateResult& res) {
  (void)res;
  const auto n = static_cast<std::size_t>(comm_->size());
  for (const core::Rule* rule : rec_rules_) {
    Relation* target = target_of(*rule);
    std::vector<std::vector<value_t>> out(n);
    std::vector<value_t> row;
    std::vector<int> dests;
    if (const auto* jr = std::get_if<core::JoinRule>(rule)) {
      Relation* bside = is_base(jr->a) ? jr->a : jr->b;  // validated: exactly one
      Relation* partner = bside == jr->a ? jr->b : jr->a;
      const bool probe_is_a = bside == jr->a;
      std::vector<std::vector<value_t>> send(n);
      for (const Tuple& p : rows_of(inserted_base, bside)) {
        partner->ranks_of_bucket(partner->bucket_of(p.view()), dests);
        for (const int d : dests) append_row(send[static_cast<std::size_t>(d)], p.view());
      }
      auto flat = exchange_flat(std::move(send));
      const std::size_t par = bside->arity();
      const auto& ptree = std::as_const(partner->tree(core::Version::kFull));
      for (std::size_t off = 0; off < flat.size(); off += par) {
        const std::span<const value_t> prow{flat.data() + off, par};
        ptree.scan_prefix(prow.first(partner->jcc()), [&](std::span<const value_t> q) {
          const auto arow = probe_is_a ? prow : q;
          const auto brow = probe_is_a ? q : prow;
          if (jr->filter && jr->filter->eval(arow, brow) == 0) return;
          row.clear();
          for (const Expr& e : jr->out.cols) row.push_back(e.eval(arow, brow));
          append_row(out[static_cast<std::size_t>(target->owner_rank(row))], row);
        });
      }
    } else {
      const auto& c = std::get<core::CopyRule>(*rule);
      for (const Tuple& p : rows_of(inserted_base, c.src)) {
        if (c.filter && c.filter->eval(p.view(), kNoSide) == 0) continue;
        row.clear();
        for (const Expr& e : c.out.cols) row.push_back(e.eval(p.view(), kNoSide));
        append_row(out[static_cast<std::size_t>(target->owner_rank(row))], row);
      }
    }
    auto cflat = exchange_flat(std::move(out));
    const std::size_t tar = target->arity(), indep = target->indep_arity();
    const auto rit = retracted.find(target);
    for (std::size_t off = 0; off < cflat.size(); off += tar) {
      const std::span<const value_t> crow{cflat.data() + off, tar};
      // Retracted keys' candidates were produced (completely) by recovery;
      // staging them again here would double-count the event.
      if (rit != retracted.end() && rit->second.contains(Tuple(crow.first(indep)))) {
        continue;
      }
      target->stage(crow);
    }
  }
}

UpdateResult ServingEngine::apply_updates(const UpdateBatch& batch) {
  if (!ready_) throw ServingError("apply_updates before start()");
  UpdateResult res;
  // Pre-batch undo log: everything below stages against this, so an
  // aborted batch can restore the fixpoint instead of killing the engine.
  auto snaps = snapshot_all();
  try {
    RowsBy deleted, inserted;
    apply_base(batch, deleted, inserted, res);

    KeysBy retracted;
    retract_wavefront(deleted, retracted, res);
    recover_retracted(retracted, res);
    seed_inserts(inserted, retracted, res);

    // Fold the combined seed (recovered + newly derived) into full/delta.
    for (Relation* t : rec_targets_) res.tuples_derived += t->materialize().staged;

    // Projections are cheap full rebuilds over the evolved state.
    for (Relation* t : proj_targets_) t->reset();

    const auto run = engine_.run_delta(*program_);
    res.tail_iterations = run.total_iterations;
    if (run.aborted_fault) {
      // The engine caught the fault internally (e.g. this rank is the
      // kill victim) — same degradation path as the catch blocks below.
      res.aborted_fault = true;
      res.fault_what = run.fault_what;
      if (!roll_back(snaps, res)) ready_ = false;
      return res;
    }
    for (const auto& s : run.strata) res.tuples_derived += s.tuples_generated;

    // Recovered = retracted keys present in the final fixpoint (directly
    // re-derived or transitively restored by the tail).
    for (Relation* t : rec_targets_) {
      const auto it = retracted.find(t);
      if (it == retracted.end()) continue;
      const auto& full = std::as_const(t->tree(core::Version::kFull));
      for (const Tuple& k : it->second) {
        if (full.contains_key(k.view())) ++res.recovered;
      }
    }

    // Fold the owner-local counters so the result is identical everywhere.
    for (auto* f : {&res.base_inserted, &res.base_deleted, &res.missing_deletes,
                    &res.retracted, &res.recovered, &res.tuples_derived}) {
      *f = comm_->allreduce<std::uint64_t>(*f, vmpi::ReduceOp::kSum);
    }

    ++batches_applied_;
    if (cfg_.checkpoint_every_batches > 0 && !cfg_.manifest_path.empty() &&
        batches_applied_ % cfg_.checkpoint_every_batches == 0) {
      // At a batch boundary the fixpoint is complete; header (0, 0) makes
      // the manifest double as an Engine::resume superset restart point.
      core::write_manifest(*program_, cfg_.manifest_path, core::ManifestHeader{0, 0, 0});
      res.checkpointed = true;
    }
  } catch (const vmpi::FaultError& e) {
    // Same contract as Engine::run_from: poison the world (idempotent) so
    // peers unwind — then try to roll the batch back and keep serving.
    // Only when rollback is off (or a rank is truly gone) is the engine
    // no longer serviceable: restart and warm-start from the manifest.
    comm_->world().fault_abort();
    res.aborted_fault = true;
    res.fault_what = e.what();
    if (!roll_back(snaps, res)) ready_ = false;
  } catch (const vmpi::WorldAborted& e) {
    // A peer already poisoned the world (its fault fired first); unwind
    // to the same aborted result.
    res.aborted_fault = true;
    res.fault_what = e.what();
    if (!roll_back(snaps, res)) ready_ = false;
  }
  return res;
}

std::vector<Tuple> ServingEngine::lookup(const std::string& relation,
                                         std::span<const value_t> prefix) {
  if (!ready_) {
    throw ServingError("lookup('" + relation +
                       "') before start(): bring the fixpoint up first");
  }
  Relation* r = find_relation(relation);
  const auto& tree = std::as_const(r->tree(core::Version::kFull));
  if (prefix.size() > tree.key_arity()) {
    throw ServingError("lookup prefix longer than the key of '" + relation + "'");
  }
  vmpi::BufferWriter w;
  tree.scan_prefix(prefix, [&](std::span<const value_t> row) { w.put_span(row); });
  const auto mine = w.take();
  const auto blocks = comm_->allgatherv(std::span<const std::byte>(mine));
  std::vector<Tuple> out;
  const std::size_t ar = r->arity();
  Tuple t;
  t.reserve(ar);
  for (const auto& b : blocks) {
    vmpi::BufferReader rd(b);
    while (rd.remaining() >= ar * sizeof(value_t)) {
      t.clear();
      for (std::size_t c = 0; c < ar; ++c) t.push_back(rd.get<value_t>());
      out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<Tuple>> ServingEngine::lookup_batch(const std::string& relation,
                                                            std::span<const Tuple> keys) {
  if (!ready_) {
    throw ServingError("lookup_batch('" + relation +
                       "') before start(): bring the fixpoint up first");
  }
  Relation* r = find_relation(relation);
  const auto& tree = std::as_const(r->tree(core::Version::kFull));
  for (const Tuple& k : keys) {
    if (k.size() > tree.key_arity()) {
      throw ServingError("lookup key longer than the key of '" + relation + "'");
    }
    if (k.size() != keys.front().size()) {
      // Mixed lengths would break the monotone single-pass below: a longer
      // key can sort after a shorter prefix it is contained in.
      throw ServingError("lookup_batch keys must share one length");
    }
  }

  // One monotone cursor pass over the sorted unique keys: consecutive
  // seeks resume from the current leaf (storage/btree.hpp).
  std::vector<Tuple> uniq(keys.begin(), keys.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

  vmpi::BufferWriter w;
  auto c = tree.cursor();
  std::vector<value_t> rows;
  for (std::size_t i = 0; i < uniq.size(); ++i) {
    rows.clear();
    for (c.seek(uniq[i].view()); c.valid() && c.matches(uniq[i].view()); c.next()) {
      rows.insert(rows.end(), c.row().begin(), c.row().end());
    }
    if (!rows.empty()) {
      w.put<std::uint64_t>(i);
      w.put<std::uint64_t>(rows.size());
      w.put_span(std::span<const value_t>(rows));
    }
  }
  const auto mine = w.take();
  const auto blocks = comm_->allgatherv(std::span<const std::byte>(mine));

  std::vector<std::vector<Tuple>> per_uniq(uniq.size());
  const std::size_t ar = r->arity();
  Tuple t;
  t.reserve(ar);
  for (const auto& b : blocks) {
    vmpi::BufferReader rd(b);
    while (rd.remaining() >= 2 * sizeof(std::uint64_t)) {
      const auto idx = static_cast<std::size_t>(rd.get<std::uint64_t>());
      const auto count = static_cast<std::size_t>(rd.get<std::uint64_t>());
      for (std::size_t v = 0; v < count; v += ar) {
        t.clear();
        for (std::size_t col = 0; col < ar; ++col) t.push_back(rd.get<value_t>());
        per_uniq[idx].push_back(t);
      }
    }
  }
  for (auto& rows_for_key : per_uniq) std::sort(rows_for_key.begin(), rows_for_key.end());

  std::vector<std::vector<Tuple>> out(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto it = std::lower_bound(uniq.begin(), uniq.end(), keys[i]);
    out[i] = per_uniq[static_cast<std::size_t>(it - uniq.begin())];
  }
  return out;
}

}  // namespace paralagg::serving

#pragma once

// Incremental serving: live fixpoint maintenance with point lookups.
//
// Batch evaluation answers "what is the fixpoint of this program over
// this database"; serving answers the question operators actually ask:
// "the database just changed a little — what is the fixpoint NOW, and
// what is spath(v)?"  A ServingEngine wraps a core::Engine into a
// resident service: the compiled Program and its relation B-trees stay
// warm across update batches, each batch re-derives only from the delta
// (never from scratch), and point lookups are served from the resident
// indexes between batches.
//
// The maintenance algorithm is DRed (delete-and-rederive, Gupta et al.)
// specialised to the paper's pre-mappable lattice aggregates:
//
//   deletes   over-delete everything the removed facts *might* support
//             (a retraction wavefront mirroring the rules), then
//   recover   re-derive the retracted keys from the surviving facts, and
//   inserts   seed the semi-naive delta with the new facts' immediate
//             consequences, after which
//   tail      Engine::run_delta continues ordinary semi-naive evaluation
//             from the combined delta to the new fixpoint.
//
// Retraction decisions (DESIGN.md §11):
//   * aggregated targets — retract a key iff the stored aggregate equals
//     the invalidated derivation's value (pre-mappability: if the best
//     support survived, its value still beats the candidate and the key
//     is untouched; equality means the best support is gone and the key
//     must re-derive from survivors).
//   * plain targets — per-key support counts (derivation events counted
//     at stage time); retract when the count hits zero.
//
// Both reach fixpoints bit-identical to from-scratch evaluation on the
// mutated database — test_serving checks exactly that, across rank
// counts.
//
// Rolling restart: every `checkpoint_every_batches` applied batches the
// engine writes a PR-5 checkpoint manifest; a killed process restarts,
// finds the manifest, warm-starts from it (clear counts, superset
// re-derivation pass), replays the batches since, and serves on — the
// same superset-restart argument as checkpoint resume.
//
// Everything here is SPMD-collective: every rank constructs the same
// ServingEngine over the same Program and calls start / apply_updates /
// lookup in the same order.  Lookups are legal between batches and are
// linearized against apply_updates by that program order.

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "core/program.hpp"

namespace paralagg::serving {

using core::Relation;
using core::Tuple;
using core::value_t;

/// Shape or usage errors of the serving layer: a program the incremental
/// maintainer cannot serve, a lookup before start(), an unknown relation.
struct ServingError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ServingConfig {
  /// Engine knobs for the resident engine.  Serving forces the settings
  /// its bookkeeping depends on: sender-side pre-aggregation OFF (support
  /// counts need per-event staging), dense exchange (node-leader merges
  /// would collapse events), spatial balancing OFF (support counts are
  /// keyed locally and must not migrate mid-service), and the engine's
  /// own iteration checkpointing OFF (serving checkpoints at batch
  /// boundaries instead).
  core::EngineConfig engine;
  /// Manifest path for warm starts and rolling checkpoints.  Empty =
  /// cold-only, no manifests.
  std::string manifest_path;
  /// Write a manifest every this many applied batches (0 = never).
  std::size_t checkpoint_every_batches = 0;
  /// Stage every batch against a pre-batch snapshot of the mutable
  /// relations, so an aborted batch (retry budget exhausted, rank killed
  /// mid-batch) rolls back to the pre-batch fixpoint and the engine keeps
  /// serving lookups — graceful degradation instead of process restart.
  /// Costs one flat copy of every relation per batch.
  bool rollback = true;
  /// Rendezvous deadline (seconds) for the post-abort world reset; every
  /// live rank must arrive within it or the rollback is abandoned (a rank
  /// is truly gone) and the engine stops serving.  Peers of a killed rank
  /// only unwind once their watchdog fires, so this must comfortably
  /// exceed the watchdog deadline.  0 = wait forever.
  double rollback_timeout_seconds = 30.0;
};

/// One base relation's mutations within a batch.  Rows are full stored-
/// order tuples; a delete must match the stored row exactly (a miss is
/// counted, not an error).  The batch is sharded: each row should be
/// contributed by exactly one rank, but duplicate contributions collapse
/// at the owner (set semantics), so an all-ranks-identical batch is
/// merely wasteful, not wrong.
struct RelationDelta {
  std::string relation;
  std::vector<Tuple> inserts;
  std::vector<Tuple> deletes;
};

using UpdateBatch = std::vector<RelationDelta>;

/// What one apply_updates did.  Identical on every rank (folded from an
/// allreduce) unless aborted_fault, in which case only the abort fields
/// are meaningful.
struct UpdateResult {
  std::uint64_t base_inserted = 0;    // base rows actually added
  std::uint64_t base_deleted = 0;     // base rows actually removed
  std::uint64_t missing_deletes = 0;  // delete rows that matched nothing
  std::uint64_t retracted = 0;        // derived keys over-deleted (DRed)
  std::uint64_t recovered = 0;        // retracted keys re-derived from survivors
  std::size_t retraction_rounds = 0;  // wavefront rounds until quiescent
  /// Derived-tuple work this batch: staged seed candidates plus every
  /// tuple the tail fixpoint staged.  The serving SLO bench compares this
  /// against a from-scratch run's tuples_generated — incremental must be
  /// strictly cheaper on small batches.
  std::uint64_t tuples_derived = 0;
  std::size_t tail_iterations = 0;    // loop iterations of the tail fixpoint
  bool checkpointed = false;          // this batch wrote a rolling manifest
  bool aborted_fault = false;
  /// The aborted batch was undone: the fixpoint is back at its pre-batch
  /// state and the engine still serves lookups (re-apply the batch to
  /// retry).  False with aborted_fault set = rollback disabled or a rank
  /// is truly gone; the engine stopped serving.
  bool rolled_back = false;
  std::string fault_what;
};

class ServingEngine {
 public:
  /// Validates the program shape and forces the engine config (see
  /// ServingConfig).  Serving requires: exactly one recursive stratum,
  /// all other strata after it and init-only (projections, rebuilt per
  /// batch); recursive joins with one base and one derived side, no
  /// antijoins, no kRefresh aggregates; every recursive head key a plain
  /// column of one body side (so retracted keys can find their premises).
  /// Throws ServingError otherwise.  Enables support counting on plain
  /// recursive targets.  Not collective by itself, but SPMD like Program.
  ServingEngine(vmpi::Comm& comm, core::Program& program, ServingConfig cfg);

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// True when manifest_path names an existing manifest — start() will
  /// warm-start from it and the caller must NOT load facts.  Collective
  /// (rank 0 checks, result broadcast).
  [[nodiscard]] bool can_warm_start();

  /// Bring the fixpoint up: cold = full evaluation of the caller-loaded
  /// facts; warm = load the manifest, clear the load-time support counts,
  /// and run one superset re-derivation pass (delta == full), which
  /// revalidates the fixpoint and recounts every surviving derivation
  /// event.  Builds the reverse indexes.  Collective.
  core::RunResult start();

  [[nodiscard]] bool started() const { return ready_; }

  /// Apply one batch of base-relation mutations and re-converge.
  /// Collective; see the file comment for the phase structure.
  UpdateResult apply_updates(const UpdateBatch& batch);

  /// All stored rows of `relation` whose key starts with `prefix`
  /// (possibly empty — full scan), gathered to every rank and sorted:
  /// the result is identical everywhere.  Collective; legal only between
  /// batches.  Throws ServingError before start() or for an unknown
  /// relation name.
  [[nodiscard]] std::vector<Tuple> lookup(const std::string& relation,
                                          std::span<const value_t> prefix);

  /// Batched point lookups: result[i] holds the rows matching keys[i].
  /// Keys are probed in sorted order through one monotone B-tree cursor
  /// per rank (the PR-4 read path) and shipped in a single allgather.
  /// Collective, same preconditions as lookup().
  [[nodiscard]] std::vector<std::vector<Tuple>> lookup_batch(
      const std::string& relation, std::span<const Tuple> keys);

  /// Batches applied since start().
  [[nodiscard]] std::uint64_t batches_applied() const { return batches_applied_; }

 private:
  /// How recovery locates the premises of a retracted key in one
  /// producing rule: the head key column is a plain column of one body
  /// side; premises are that side's rows with that column equal to the
  /// key.  kScanPrefix when the column is the side's single join column
  /// (direct B-tree prefix scan); otherwise a serving-owned reverse
  /// index over a base side.
  struct Recovery {
    enum class Via : std::uint8_t { kScanPrefix, kReverseIndex };
    Via via = Via::kScanPrefix;
    bool premise_is_b = false;  // JoinRule: which side carries the key column
    std::size_t col = 0;        // the premise side's column holding the key
    Relation* rev = nullptr;    // reverse index (kReverseIndex only)
  };

  /// A serving-owned reverse index over base relation `base`: a plain
  /// relation of rows (base_row[col], base_row...), keyed so "all base
  /// rows with column `col` equal to k" is one prefix scan.  Shared
  /// between rules that need the same (base, col).
  struct RevSpec {
    Relation* base = nullptr;
    std::size_t col = 0;
    Relation* rev = nullptr;
  };

  // Per-relation mutation lists keyed by the relation (owner-side rows).
  using RowsBy = std::unordered_map<Relation*, std::vector<Tuple>>;
  // Retracted keys per derived relation (owner-side, this batch).
  using KeysBy = std::unordered_map<Relation*, std::unordered_set<Tuple, storage::TupleHash>>;

  void classify_and_validate();

  /// Route `send[dest]` flat rows and return the received rows, flattened.
  /// Rides the faultable split-phase exchange with CRC-sealed frames, so
  /// serving's mutation traffic heals under the reliable transport and a
  /// corrupted frame that does get through (retry budget off) surfaces as
  /// a typed FrameDecodeError, never silent garbage.
  std::vector<value_t> exchange_flat(std::vector<std::vector<value_t>> send);

  /// Snapshot every mutable relation (cfg_.rollback only; empty otherwise).
  [[nodiscard]] std::vector<std::pair<Relation*, Relation::LocalSnapshot>>
  snapshot_all() const;

  /// Collective recovery from an aborted batch: un-poison the world
  /// (Comm::fault_reset rendezvous) and restore the pre-batch snapshots.
  /// Returns true when the engine is back at the pre-batch fixpoint and
  /// still serving; false (rollback disabled / rendezvous timed out) means
  /// the engine stops serving.
  bool roll_back(std::vector<std::pair<Relation*, Relation::LocalSnapshot>>& snaps,
                 UpdateResult& res);

  /// Phase 0: route the batch to base owners, mutate base full versions
  /// and reverse indexes, record what actually changed.
  void apply_base(const UpdateBatch& batch, RowsBy& deleted, RowsBy& inserted,
                  UpdateResult& res);

  /// Emit retraction candidates for every (probe row × partner full row)
  /// pair of `rule` into `cand` (per-target, per-destination flat rows).
  /// `probe_rel` is the rule side the wavefront invalidated.
  void emit_candidates(const core::Rule& rule, Relation* probe_rel,
                       std::span<const Tuple> probe_rows,
                       std::unordered_map<Relation*, std::vector<std::vector<value_t>>>& cand);

  /// Phase 1: DRed over-deletion wavefront.  Returns when globally
  /// quiescent; fills `retracted` with the keys removed on this rank.
  void retract_wavefront(const RowsBy& deleted_base, KeysBy& retracted,
                         UpdateResult& res);

  /// Phase 2: re-derive the retracted keys from surviving facts; stages
  /// (does not materialize) the recovered candidates.
  void recover_retracted(const KeysBy& retracted, UpdateResult& res);

  /// Phase 3: stage the inserted facts' immediate consequences, skipping
  /// candidates for retracted keys (phase 2 already produced those).
  void seed_inserts(const RowsBy& inserted_base, const KeysBy& retracted,
                    UpdateResult& res);

  void build_reverse_indexes();
  [[nodiscard]] Relation* find_relation(const std::string& name) const;
  [[nodiscard]] bool is_base(const Relation* r) const;

  vmpi::Comm* comm_;
  core::Program* program_;
  ServingConfig cfg_;
  core::Engine engine_;
  bool ready_ = false;
  std::uint64_t batches_applied_ = 0;
  std::uint64_t flat_seq_ = 0;  // wire seq of exchange_flat frames

  const core::Stratum* recursive_ = nullptr;  // the single recursive stratum
  std::vector<const core::Rule*> rec_rules_;  // its init + loop rules
  std::vector<Recovery> recovery_;            // parallel to rec_rules_
  std::vector<Relation*> base_;               // mutable via apply_updates
  std::vector<Relation*> rec_targets_;        // recursive-stratum targets
  std::vector<Relation*> proj_targets_;       // init-only strata targets (rebuilt)
  std::vector<RevSpec> revs_;                 // one per distinct (base, col)
  std::vector<std::unique_ptr<Relation>> rev_store_;  // owned reverse indexes
};

}  // namespace paralagg::serving

#include "storage/btree.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <utility>

namespace paralagg::storage {

TupleBTree::TupleBTree(std::size_t arity, std::size_t key_arity)
    : arity_(arity), key_arity_(key_arity), root_(make_leaf()) {
  assert(key_arity >= 1 && key_arity <= arity);
}

TupleBTree::~TupleBTree() = default;
TupleBTree::TupleBTree(TupleBTree&&) noexcept = default;
TupleBTree& TupleBTree::operator=(TupleBTree&&) noexcept = default;

std::strong_ordering TupleBTree::cmp_key(std::span<const value_t> a,
                                         std::span<const value_t> b,
                                         std::size_t ncols) const {
  ++comparisons_;
  return compare_prefix(a, b, ncols);
}

std::unique_ptr<TupleBTree::Leaf> TupleBTree::make_leaf() const {
  auto leaf = std::make_unique<Leaf>();
  // One past capacity: a leaf briefly holds kLeafCap + 1 rows before a
  // split, and reserving for it keeps leaf storage from ever reallocating.
  leaf->vals.reserve((kLeafCap + 1) * arity_);
  return leaf;
}

void TupleBTree::clear() {
  root_ = make_leaf();
  size_ = 0;
}

namespace {

/// First index in [0, n) for which pred(i) is false; pred must be
/// monotone (true...true false...false).  Plain binary search, kept local
/// so the comparator-counting hooks stay inside TupleBTree.
template <typename Pred>
std::size_t partition_point_idx(std::size_t n, Pred pred) {
  std::size_t lo = 0, hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (pred(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

bool TupleBTree::insert(std::span<const value_t> row) {
  assert(row.size() == arity_);
  Tuple sep;
  std::unique_ptr<Node> right;
  const bool inserted = insert_rec(root_.get(), row, sep, right);
  if (right) {
    auto new_root = std::make_unique<Inner>();
    new_root->seps.push_back(std::move(sep));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(right));
    root_ = std::move(new_root);
  }
  if (inserted) {
    ++size_;
    ++inserts_;
  }
  return inserted;
}

bool TupleBTree::insert_rec(Node* node, std::span<const value_t> row, Tuple& sep_out,
                            std::unique_ptr<Node>& right_out) {
  const auto key = row.first(key_arity_);

  if (node->is_leaf) {
    auto* leaf = static_cast<Leaf*>(node);
    const std::size_t n = leaf_rows(*leaf);
    // First row whose key is >= the new row's key.
    const std::size_t pos = partition_point_idx(n, [&](std::size_t i) {
      return cmp_key(leaf_row(*leaf, i), key, key_arity_) < 0;
    });
    if (pos < n && cmp_key(leaf_row(*leaf, pos), key, key_arity_) == 0) {
      return false;  // duplicate key
    }
    leaf->vals.insert(leaf->vals.begin() + static_cast<std::ptrdiff_t>(pos * arity_),
                      row.begin(), row.end());
    if (leaf_rows(*leaf) > kLeafCap) {
      auto right = make_leaf();
      const std::size_t half = leaf_rows(*leaf) / 2;
      right->vals.assign(leaf->vals.begin() + static_cast<std::ptrdiff_t>(half * arity_),
                         leaf->vals.end());
      leaf->vals.resize(half * arity_);
      right->next = leaf->next;
      leaf->next = right.get();
      sep_out = Tuple(leaf_row(*right, 0).first(key_arity_));
      right_out = std::move(right);
    }
    return true;
  }

  auto* inner = static_cast<Inner*>(node);
  // Child index: number of separators <= key (equal keys belong right).
  const std::size_t ci = partition_point_idx(inner->seps.size(), [&](std::size_t i) {
    return cmp_key(inner->seps[i].view(), key, key_arity_) <= 0;
  });

  Tuple child_sep;
  std::unique_ptr<Node> child_right;
  const bool inserted = insert_rec(inner->children[ci].get(), row, child_sep, child_right);
  if (child_right) {
    inner->seps.insert(inner->seps.begin() + static_cast<std::ptrdiff_t>(ci),
                       std::move(child_sep));
    inner->children.insert(inner->children.begin() + static_cast<std::ptrdiff_t>(ci) + 1,
                           std::move(child_right));
    if (inner->children.size() > kInnerCap) {
      auto right = std::make_unique<Inner>();
      const std::size_t mid = inner->seps.size() / 2;
      sep_out = std::move(inner->seps[mid]);
      right->seps.assign(std::make_move_iterator(inner->seps.begin() + static_cast<std::ptrdiff_t>(mid) + 1),
                         std::make_move_iterator(inner->seps.end()));
      right->children.assign(
          std::make_move_iterator(inner->children.begin() + static_cast<std::ptrdiff_t>(mid) + 1),
          std::make_move_iterator(inner->children.end()));
      inner->seps.resize(mid);
      inner->children.resize(mid + 1);
      right_out = std::move(right);
    }
  }
  return inserted;
}

bool TupleBTree::erase_key(std::span<const value_t> key) {
  assert(key.size() == key_arity_);
  // Same chain-tolerant walk as find_key; leaf storage is not const (the
  // const_cast mirrors the mutable find_key overload).
  for (const Leaf* cl = descend_lower_bound(key); cl != nullptr; cl = cl->next) {
    const std::size_t n = leaf_rows(*cl);
    const std::size_t pos = partition_point_idx(n, [&](std::size_t i) {
      return cmp_key(leaf_row(*cl, i), key, key_arity_) < 0;
    });
    if (pos < n) {
      if (cmp_key(leaf_row(*cl, pos), key, key_arity_) != 0) return false;
      auto* leaf = const_cast<Leaf*>(cl);
      const auto first = leaf->vals.begin() + static_cast<std::ptrdiff_t>(pos * arity_);
      leaf->vals.erase(first, first + static_cast<std::ptrdiff_t>(arity_));
      --size_;
      return true;
    }
  }
  return false;
}

const TupleBTree::Leaf* TupleBTree::descend_lower_bound(
    std::span<const value_t> prefix) const {
  const std::size_t p = prefix.size();
  const Node* node = root_.get();
  while (!node->is_leaf) {
    const auto* inner = static_cast<const Inner*>(node);
    // Tuples with keys == prefix (on p columns) may extend left of an equal
    // separator, so descend at the first separator >= prefix.
    const std::size_t ci = partition_point_idx(inner->seps.size(), [&](std::size_t i) {
      return cmp_key(inner->seps[i].view(), prefix, p) < 0;
    });
    node = inner->children[ci].get();
  }
  return static_cast<const Leaf*>(node);
}

const TupleBTree::Leaf* TupleBTree::leftmost_leaf() const {
  const Node* node = root_.get();
  while (!node->is_leaf) node = static_cast<const Inner*>(node)->children.front().get();
  return static_cast<const Leaf*>(node);
}

std::span<value_t> TupleBTree::find_key(std::span<const value_t> key) {
  const auto view = std::as_const(*this).find_key(key);
  // Leaf storage is not const; the const overload exists so read-only
  // callers get a read-only span.
  return {const_cast<value_t*>(view.data()), view.size()};
}

std::span<const value_t> TupleBTree::find_key(std::span<const value_t> key) const {
  assert(key.size() == key_arity_);
  const Leaf* leaf = descend_lower_bound(key);
  // The match, if present, is in this leaf or (if it sits exactly on a
  // boundary) the next one.
  for (; leaf != nullptr; leaf = leaf->next) {
    const std::size_t n = leaf_rows(*leaf);
    const std::size_t pos = partition_point_idx(n, [&](std::size_t i) {
      return cmp_key(leaf_row(*leaf, i), key, key_arity_) < 0;
    });
    if (pos < n) {
      if (cmp_key(leaf_row(*leaf, pos), key, key_arity_) == 0) {
        return leaf_row(*leaf, pos);
      }
      return {};  // first row >= key differs -> absent
    }
    // Entire leaf < key (or emptied by erase); continue into the chain.
  }
  return {};
}

// -- cursor -------------------------------------------------------------------

void TupleBTree::Cursor::seek_first() {
  tail_ = nullptr;
  // The leftmost leaf (and any run after it) may be empty after erases.
  const Leaf* l = tree_->leftmost_leaf();
  while (l != nullptr && tree_->leaf_rows(*l) == 0) l = l->next;
  leaf_ = l;  // null = tree holds no rows
  idx_ = 0;
}

bool TupleBTree::Cursor::land(const Leaf* l, std::size_t start,
                              std::span<const value_t> prefix, std::size_t max_leaves) {
  const std::size_t p = prefix.size();
  for (; l != nullptr; l = l->next, start = 0) {
    const std::size_t n = tree_->leaf_rows(*l);
    if (start >= n) {
      if (n > 0) tail_ = l;
      continue;  // nothing left in this leaf (also skips an empty root)
    }
    if (tree_->cmp_key(tree_->leaf_row(*l, n - 1), prefix, p) < 0) {
      // Whole leaf below the target: one comparison, hop on.
      tail_ = l;
      if (max_leaves-- == 0) return false;
      continue;
    }
    // Lower bound is inside [start, n) of this leaf.
    const std::size_t pos =
        start + partition_point_idx(n - start, [&](std::size_t i) {
          return tree_->cmp_key(tree_->leaf_row(*l, start + i), prefix, p) < 0;
        });
    leaf_ = l;
    idx_ = pos;
    return true;
  }
  leaf_ = nullptr;  // past the last row
  return true;
}

void TupleBTree::Cursor::descend(std::span<const value_t> prefix) {
  tail_ = nullptr;
  // descend_lower_bound may stop one leaf early when the target sits
  // exactly on a boundary; land() absorbs the extra hop.
  land(tree_->descend_lower_bound(prefix), 0, prefix, SIZE_MAX);
}

void TupleBTree::Cursor::seek(std::span<const value_t> prefix) {
  assert(prefix.size() <= tree_->key_arity_);
  if (leaf_ != nullptr) {
    const auto c = tree_->cmp_key(row(), prefix, prefix.size());
    if (c == 0) return;  // already at a matching row: lower bound from here
    if (c < 0) {
      // Monotone fast path: the target is ahead; resume from this leaf.
      if (land(leaf_, idx_ + 1, prefix, kMaxChainHops)) return;
    }
    // Target behind the cursor, or too far ahead for the chain budget.
    descend(prefix);
    return;
  }
  if (tail_ != nullptr) {
    const std::size_t n = tree_->leaf_rows(*tail_);
    if (tree_->cmp_key(tree_->leaf_row(*tail_, n - 1), prefix, prefix.size()) < 0) {
      return;  // already past the end and the target is beyond the last row
    }
  }
  descend(prefix);
}

// -- instrumentation ----------------------------------------------------------

std::size_t TupleBTree::approx_bytes() const {
  // Flat row payload + amortised node overhead (headers, separators).
  return size_ * arity_ * sizeof(value_t) + size_ / kLeafCap * 96;
}

std::size_t TupleBTree::check_invariants() const {
  std::size_t count = 0;
  std::vector<value_t> prev;
  std::vector<const void*> leaves_in_order;

  // In-order structural walk (std::function is fine here: cold test hook).
  std::function<void(const Node*, const Tuple*, const Tuple*)> walk =
      [&](const Node* node, const Tuple* lo, const Tuple* hi) {
        if (node->is_leaf) {
          const auto* leaf = static_cast<const Leaf*>(node);
          leaves_in_order.push_back(leaf);
          assert(leaf->vals.size() % arity_ == 0);
          assert(leaf_rows(*leaf) <= kLeafCap);
          for (std::size_t i = 0; i < leaf_rows(*leaf); ++i) {
            const auto t = leaf_row(*leaf, i);
            if (!prev.empty()) {
              assert(compare_prefix(prev, t, key_arity_) < 0 &&
                     "rows must be strictly increasing by key");
            }
            if (lo != nullptr) {
              assert(compare_prefix(lo->view(), t, key_arity_) <= 0);
            }
            if (hi != nullptr) {
              assert(compare_prefix(t, hi->view(), key_arity_) < 0);
            }
            prev.assign(t.begin(), t.end());
            ++count;
          }
          return;
        }
        const auto* inner = static_cast<const Inner*>(node);
        assert(inner->children.size() == inner->seps.size() + 1);
        assert(inner->children.size() <= kInnerCap);
        for (std::size_t i = 0; i + 1 < inner->seps.size(); ++i) {
          assert(compare_prefix(inner->seps[i].view(), inner->seps[i + 1].view(), key_arity_) <
                 0);
        }
        for (std::size_t i = 0; i < inner->children.size(); ++i) {
          const Tuple* clo = i == 0 ? lo : &inner->seps[i - 1];
          const Tuple* chi = i == inner->seps.size() ? hi : &inner->seps[i];
          walk(inner->children[i].get(), clo, chi);
        }
      };
  walk(root_.get(), nullptr, nullptr);
  assert(count == size_);

  // Leaf chain must enumerate exactly the in-order leaves.
  std::size_t idx = 0;
  for (const auto* leaf = leftmost_leaf(); leaf != nullptr; leaf = leaf->next) {
    assert(idx < leaves_in_order.size() && leaves_in_order[idx] == leaf);
    ++idx;
  }
  assert(idx == leaves_in_order.size());
  (void)idx;
  return count;
}

}  // namespace paralagg::storage

#include "storage/btree.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace paralagg::storage {

struct TupleBTree::Node {
  bool is_leaf;
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
};

struct TupleBTree::Leaf final : Node {
  Leaf() : Node(true) { rows.reserve(kLeafCap); }
  std::vector<Tuple> rows;  // sorted by key columns
  Leaf* next = nullptr;     // leaf chain for range scans
};

struct TupleBTree::Inner final : Node {
  Inner() : Node(false) {}
  // children.size() == seps.size() + 1; seps[i] is the minimum key of
  // children[i + 1] (key_arity columns only).
  std::vector<Tuple> seps;
  std::vector<std::unique_ptr<Node>> children;
};

TupleBTree::TupleBTree(std::size_t arity, std::size_t key_arity)
    : arity_(arity), key_arity_(key_arity), root_(std::make_unique<Leaf>()) {
  assert(key_arity >= 1 && key_arity <= arity);
}

TupleBTree::~TupleBTree() = default;
TupleBTree::TupleBTree(TupleBTree&&) noexcept = default;
TupleBTree& TupleBTree::operator=(TupleBTree&&) noexcept = default;

std::strong_ordering TupleBTree::cmp_key(std::span<const value_t> a,
                                         std::span<const value_t> b,
                                         std::size_t ncols) const {
  ++comparisons_;
  return compare_prefix(a, b, ncols);
}

void TupleBTree::clear() {
  root_ = std::make_unique<Leaf>();
  size_ = 0;
}

namespace {

/// First index in [0, n) for which pred(i) is false; pred must be
/// monotone (true...true false...false).  Plain binary search, kept local
/// so the comparator-counting hooks stay inside TupleBTree.
template <typename Pred>
std::size_t partition_point_idx(std::size_t n, Pred pred) {
  std::size_t lo = 0, hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (pred(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

bool TupleBTree::insert(const Tuple& t) {
  assert(t.size() == arity_);
  Tuple sep;
  std::unique_ptr<Node> right;
  const bool inserted = insert_rec(root_.get(), t, sep, right);
  if (right) {
    auto new_root = std::make_unique<Inner>();
    new_root->seps.push_back(std::move(sep));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(right));
    root_ = std::move(new_root);
  }
  if (inserted) {
    ++size_;
    ++inserts_;
  }
  return inserted;
}

bool TupleBTree::insert_rec(Node* node, const Tuple& t, Tuple& sep_out,
                            std::unique_ptr<Node>& right_out) {
  const auto key = t.prefix(key_arity_);

  if (node->is_leaf) {
    auto* leaf = static_cast<Leaf*>(node);
    auto& rows = leaf->rows;
    // First row whose key is >= t's key.
    const std::size_t pos = partition_point_idx(rows.size(), [&](std::size_t i) {
      return cmp_key(rows[i].view(), key, key_arity_) < 0;
    });
    if (pos < rows.size() && cmp_key(rows[pos].view(), key, key_arity_) == 0) {
      return false;  // duplicate key
    }
    rows.insert(rows.begin() + static_cast<std::ptrdiff_t>(pos), t);
    if (rows.size() > kLeafCap) {
      auto right = std::make_unique<Leaf>();
      const std::size_t half = rows.size() / 2;
      right->rows.assign(std::make_move_iterator(rows.begin() + static_cast<std::ptrdiff_t>(half)),
                         std::make_move_iterator(rows.end()));
      rows.resize(half);
      right->next = leaf->next;
      leaf->next = right.get();
      sep_out = Tuple(right->rows.front().prefix(key_arity_));
      right_out = std::move(right);
    }
    return true;
  }

  auto* inner = static_cast<Inner*>(node);
  // Child index: number of separators <= key (equal keys belong right).
  const std::size_t ci = partition_point_idx(inner->seps.size(), [&](std::size_t i) {
    return cmp_key(inner->seps[i].view(), key, key_arity_) <= 0;
  });

  Tuple child_sep;
  std::unique_ptr<Node> child_right;
  const bool inserted = insert_rec(inner->children[ci].get(), t, child_sep, child_right);
  if (child_right) {
    inner->seps.insert(inner->seps.begin() + static_cast<std::ptrdiff_t>(ci),
                       std::move(child_sep));
    inner->children.insert(inner->children.begin() + static_cast<std::ptrdiff_t>(ci) + 1,
                           std::move(child_right));
    if (inner->children.size() > kInnerCap) {
      auto right = std::make_unique<Inner>();
      const std::size_t mid = inner->seps.size() / 2;
      sep_out = std::move(inner->seps[mid]);
      right->seps.assign(std::make_move_iterator(inner->seps.begin() + static_cast<std::ptrdiff_t>(mid) + 1),
                         std::make_move_iterator(inner->seps.end()));
      right->children.assign(
          std::make_move_iterator(inner->children.begin() + static_cast<std::ptrdiff_t>(mid) + 1),
          std::make_move_iterator(inner->children.end()));
      inner->seps.resize(mid);
      inner->children.resize(mid + 1);
      right_out = std::move(right);
    }
  }
  return inserted;
}

const TupleBTree::Leaf* TupleBTree::descend_lower_bound(
    std::span<const value_t> prefix) const {
  const std::size_t p = prefix.size();
  const Node* node = root_.get();
  while (!node->is_leaf) {
    const auto* inner = static_cast<const Inner*>(node);
    // Tuples with keys == prefix (on p columns) may extend left of an equal
    // separator, so descend at the first separator >= prefix.
    const std::size_t ci = partition_point_idx(inner->seps.size(), [&](std::size_t i) {
      return cmp_key(inner->seps[i].view(), prefix, p) < 0;
    });
    node = inner->children[ci].get();
  }
  return static_cast<const Leaf*>(node);
}

Tuple* TupleBTree::find_key(std::span<const value_t> key) {
  return const_cast<Tuple*>(std::as_const(*this).find_key(key));
}

const Tuple* TupleBTree::find_key(std::span<const value_t> key) const {
  assert(key.size() == key_arity_);
  const Leaf* leaf = descend_lower_bound(key);
  // The match, if present, is in this leaf or (if it sits exactly on a
  // boundary) the next one.
  for (; leaf != nullptr; leaf = leaf->next) {
    const auto& rows = leaf->rows;
    const std::size_t pos = partition_point_idx(rows.size(), [&](std::size_t i) {
      return cmp_key(rows[i].view(), key, key_arity_) < 0;
    });
    if (pos < rows.size()) {
      if (cmp_key(rows[pos].view(), key, key_arity_) == 0) {
        return &rows[pos];
      }
      return nullptr;  // first row >= key differs -> absent
    }
    // Entire leaf < key; continue into the chain (can happen only once).
  }
  return nullptr;
}

void TupleBTree::scan_prefix(std::span<const value_t> prefix,
                             const std::function<void(const Tuple&)>& fn) const {
  assert(prefix.size() <= key_arity_);
  const std::size_t p = prefix.size();
  const Leaf* leaf = descend_lower_bound(prefix);
  for (; leaf != nullptr; leaf = leaf->next) {
    const auto& rows = leaf->rows;
    const std::size_t start = partition_point_idx(rows.size(), [&](std::size_t i) {
      return cmp_key(rows[i].view(), prefix, p) < 0;
    });
    for (std::size_t i = start; i < rows.size(); ++i) {
      if (cmp_key(rows[i].view(), prefix, p) != 0) return;
      fn(rows[i]);
    }
  }
}

void TupleBTree::for_each(const std::function<void(const Tuple&)>& fn) const {
  const Node* node = root_.get();
  while (!node->is_leaf) node = static_cast<const Inner*>(node)->children.front().get();
  for (const auto* leaf = static_cast<const Leaf*>(node); leaf != nullptr; leaf = leaf->next) {
    for (const auto& t : leaf->rows) fn(t);
  }
}

std::size_t TupleBTree::approx_bytes() const {
  // Row payload + per-tuple bookkeeping + amortised node overhead.
  return size_ * (arity_ * sizeof(value_t) + sizeof(Tuple)) + size_ / kLeafCap * 64;
}

namespace {

struct CheckState {
  const Tuple* prev = nullptr;
  std::size_t count = 0;
  std::vector<const void*> leaves_in_order;
};

}  // namespace

std::size_t TupleBTree::check_invariants() const {
  CheckState st;
  // In-order structural walk.
  std::function<void(const Node*, const Tuple*, const Tuple*, std::size_t)> walk =
      [&](const Node* node, const Tuple* lo, const Tuple* hi, std::size_t depth) {
        if (node->is_leaf) {
          const auto* leaf = static_cast<const Leaf*>(node);
          st.leaves_in_order.push_back(leaf);
          for (const auto& t : leaf->rows) {
            assert(t.size() == arity_);
            if (st.prev != nullptr) {
              assert(compare_prefix(st.prev->view(), t.view(), key_arity_) < 0 &&
                     "rows must be strictly increasing by key");
            }
            if (lo != nullptr) {
              assert(compare_prefix(lo->view(), t.view(), key_arity_) <= 0);
            }
            if (hi != nullptr) {
              assert(compare_prefix(t.view(), hi->view(), key_arity_) < 0);
            }
            st.prev = &t;
            ++st.count;
          }
          return;
        }
        const auto* inner = static_cast<const Inner*>(node);
        assert(inner->children.size() == inner->seps.size() + 1);
        assert(inner->children.size() <= kInnerCap);
        for (std::size_t i = 0; i + 1 < inner->seps.size(); ++i) {
          assert(compare_prefix(inner->seps[i].view(), inner->seps[i + 1].view(), key_arity_) <
                 0);
        }
        for (std::size_t i = 0; i < inner->children.size(); ++i) {
          const Tuple* clo = i == 0 ? lo : &inner->seps[i - 1];
          const Tuple* chi = i == inner->seps.size() ? hi : &inner->seps[i];
          walk(inner->children[i].get(), clo, chi, depth + 1);
        }
      };
  walk(root_.get(), nullptr, nullptr, 0);
  assert(st.count == size_);

  // Leaf chain must enumerate exactly the in-order leaves.
  const Node* node = root_.get();
  while (!node->is_leaf) node = static_cast<const Inner*>(node)->children.front().get();
  std::size_t idx = 0;
  for (const auto* leaf = static_cast<const Leaf*>(node); leaf != nullptr; leaf = leaf->next) {
    assert(idx < st.leaves_in_order.size() && st.leaves_in_order[idx] == leaf);
    ++idx;
  }
  assert(idx == st.leaves_in_order.size());
  return st.count;
}

}  // namespace paralagg::storage

#include "storage/tuple.hpp"

#include <algorithm>

namespace paralagg::storage {

void Tuple::grow(std::size_t want) {
  const std::size_t cap = std::max<std::size_t>(want, kInline * 2);
  auto bigger = std::make_unique<value_t[]>(cap);
  const value_t* src = data();
  std::copy(src, src + size_, bigger.get());
  heap_ = std::move(bigger);
  heap_cap_ = cap;
}

std::string Tuple::to_string() const {
  std::string s = "(";
  for (std::size_t i = 0; i < size_; ++i) {
    if (i > 0) s += ", ";
    s += std::to_string((*this)[i]);
  }
  s += ")";
  return s;
}

}  // namespace paralagg::storage

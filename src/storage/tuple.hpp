#pragma once

// Tuples and tuple hashing.
//
// A tuple is a fixed-arity row of 64-bit values.  Every query in the paper
// (SSSP, CC, PageRank, TC) has arity <= 3, so tuples store up to four
// columns inline and only spill to the heap beyond that.  Aggregate values
// occupy the trailing "dependent" columns; fractional quantities (PageRank)
// are carried as fixed-point integers.
//
// Double hashing (paper §II-D, after Cheiney & de Maindreville) needs two
// independent hash families: H1 over the join-column prefix selects the
// bucket, H2 over the remaining independent columns selects the sub-bucket.
// Both are seeded splitmix64-style mixes folded across the column range.

#include <cassert>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>

namespace paralagg::storage {

using value_t = std::uint64_t;

/// Fixed-capacity-inline row of value_t.  Cheap to copy at paper arities.
class Tuple {
 public:
  static constexpr std::size_t kInline = 4;

  Tuple() = default;

  explicit Tuple(std::span<const value_t> vs) { assign(vs); }
  Tuple(std::initializer_list<value_t> vs) {
    assign(std::span<const value_t>(vs.begin(), vs.size()));
  }

  Tuple(const Tuple& other) { assign(other.view()); }
  Tuple& operator=(const Tuple& other) {
    if (this != &other) assign(other.view());
    return *this;
  }
  Tuple(Tuple&& other) noexcept = default;
  Tuple& operator=(Tuple&& other) noexcept = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] value_t operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }
  [[nodiscard]] value_t& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }

  [[nodiscard]] value_t back() const {
    assert(size_ > 0);
    return data()[size_ - 1];
  }

  void push_back(value_t v) {
    if (size_ == capacity()) grow(size_ * 2 + 1);
    data()[size_++] = v;
  }

  /// Ensure capacity for `n` columns; existing contents are preserved.
  /// Decode loops that know the arity up front call this once instead of
  /// paying doubling re-grows through push_back.
  void reserve(std::size_t n) {
    if (n > capacity()) grow(n);
  }

  void clear() { size_ = 0; }

  [[nodiscard]] std::span<const value_t> view() const { return {data(), size_}; }
  [[nodiscard]] std::span<value_t> mutable_view() { return {data(), size_}; }
  [[nodiscard]] std::span<const value_t> prefix(std::size_t n) const {
    assert(n <= size_);
    return {data(), n};
  }
  [[nodiscard]] std::span<const value_t> suffix_from(std::size_t start) const {
    assert(start <= size_);
    return {data() + start, size_ - start};
  }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.data()[i] != b.data()[i]) return false;
    }
    return true;
  }

  friend std::strong_ordering operator<=>(const Tuple& a, const Tuple& b) {
    const std::size_t n = a.size_ < b.size_ ? a.size_ : b.size_;
    for (std::size_t i = 0; i < n; ++i) {
      if (auto c = a.data()[i] <=> b.data()[i]; c != 0) return c;
    }
    return a.size_ <=> b.size_;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  void assign(std::span<const value_t> vs) {
    if (vs.size() > capacity()) grow(vs.size());
    size_ = vs.size();
    for (std::size_t i = 0; i < size_; ++i) data()[i] = vs[i];
  }

  void grow(std::size_t want);

  [[nodiscard]] const value_t* data() const { return heap_ ? heap_.get() : inline_; }
  [[nodiscard]] value_t* data() { return heap_ ? heap_.get() : inline_; }
  [[nodiscard]] std::size_t capacity() const { return heap_ ? heap_cap_ : kInline; }

  value_t inline_[kInline] = {};
  std::unique_ptr<value_t[]> heap_;
  std::size_t heap_cap_ = 0;
  std::size_t size_ = 0;
};

// -- hashing -----------------------------------------------------------------

/// splitmix64 finaliser: the standard full-avalanche 64-bit mix.
constexpr value_t mix64(value_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seeded hash over a column range.  Distinct seeds give (empirically)
/// independent families; the engine uses kBucketSeed for H1 and
/// kSubBucketSeed for H2.
constexpr value_t hash_columns(std::span<const value_t> cols, value_t seed) {
  value_t h = mix64(seed ^ 0x51afd7ed558ccd25ULL);
  for (value_t c : cols) h = mix64(h ^ mix64(c));
  return h;
}

inline constexpr value_t kBucketSeed = 0x42d1d1ce;     // H1: join columns -> bucket
inline constexpr value_t kSubBucketSeed = 0x7a9e66f1;  // H2: other independents -> sub-bucket

struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    return static_cast<std::size_t>(hash_columns(t.view(), 0));
  }
};

/// Lexicographic comparison restricted to the first `ncols` columns.
inline std::strong_ordering compare_prefix(std::span<const value_t> a,
                                           std::span<const value_t> b, std::size_t ncols) {
  assert(a.size() >= ncols && b.size() >= ncols);
  for (std::size_t i = 0; i < ncols; ++i) {
    if (auto c = a[i] <=> b[i]; c != 0) return c;
  }
  return std::strong_ordering::equal;
}

}  // namespace paralagg::storage

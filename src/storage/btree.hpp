#pragma once

// B+-tree tuple storage.
//
// PARALAGG stores each relation's local partition "using a nested BTree
// data structure" (paper §IV-D): the inner side of a join stays put in its
// tree and is probed with O(log n) prefix lookups, while the outer side is
// serialized and shipped.  This is that tree: keys are the leading
// `key_arity` columns of each tuple, at most one tuple is stored per
// distinct key, and range scans over a shorter prefix enumerate all tuples
// matching a join key.
//
// Storage layout: each leaf holds its rows as one flat, row-major
// value_t array (no per-row Tuple objects, no per-row heap spill), so a
// range scan is a contiguous sweep.  Rows are exposed as spans into the
// leaf; any mutation of the tree (insert/clear/move) invalidates them.
//
// Probing goes through `Cursor`, an allocation-free iterator with a
// *monotone* seek: a seek to a key at or beyond the current position
// resumes from the current leaf via the leaf chain and only re-descends
// from the root when the target lies further ahead (or behind — a
// non-monotone seek is legal, it just pays the descent).  The sorted-batch
// join kernel in core/ra_op.cpp exploits this: probes arrive sorted by
// join key, so most seeks touch only the current leaf.  `scan_prefix` and
// `for_each` are thin templated wrappers over the cursor — no
// `std::function` (and no virtual dispatch) anywhere in the scan loop.
//
// The tree also keeps operation counters (comparisons, node visits) which
// the benchmark harness uses for modelled scaling: the paper's Fig. 5
// analysis attributes low-core-count cost to B-tree operations, and these
// counters make that attribution reproducible (`bench/probe_kernel`
// reports comparisons-per-probe from them).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "storage/tuple.hpp"

namespace paralagg::storage {

class TupleBTree {
 public:
  /// Tuples have `arity` columns; the first `key_arity` are the key.
  /// Plain relations use key_arity == arity (set semantics over whole
  /// tuples); aggregated relations use key_arity == number of independent
  /// columns, with dependent columns carried as the payload.
  TupleBTree(std::size_t arity, std::size_t key_arity);
  ~TupleBTree();

  TupleBTree(TupleBTree&&) noexcept;
  TupleBTree& operator=(TupleBTree&&) noexcept;
  TupleBTree(const TupleBTree&) = delete;
  TupleBTree& operator=(const TupleBTree&) = delete;

  [[nodiscard]] std::size_t arity() const { return arity_; }
  [[nodiscard]] std::size_t key_arity() const { return key_arity_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Insert `row` (exactly `arity` values, stored order) if its key is
  /// absent.  Returns true if inserted, false if a tuple with the same key
  /// already exists (the stored tuple is untouched).
  bool insert(std::span<const value_t> row);
  bool insert(const Tuple& t) { return insert(t.view()); }

  /// View of the stored row for `key` (exactly key_arity columns), or an
  /// empty span.  Callers may rewrite payload columns in place through the
  /// mutable overload — this is how fused aggregation collapses a stored
  /// accumulator — but must never modify key columns.  The span points
  /// into leaf storage: any insert/clear invalidates it.
  [[nodiscard]] std::span<value_t> find_key(std::span<const value_t> key);
  [[nodiscard]] std::span<const value_t> find_key(std::span<const value_t> key) const;

  [[nodiscard]] bool contains_key(std::span<const value_t> key) const {
    return !find_key(key).empty();
  }

  /// Remove the stored row whose key equals `key` (exactly key_arity
  /// columns).  Returns true iff a row was removed.  Erase never
  /// restructures the tree: a leaf may go empty but stays in the chain,
  /// and separators are left stale — both are safe, because a separator
  /// remains a lower bound of everything at or right of its child and
  /// every traversal (find_key, Cursor, scan_prefix) already walks the
  /// chain past exhausted leaves.  Like insert, it invalidates cursors.
  bool erase_key(std::span<const value_t> key);

  void clear();

 private:
  struct Node {
    bool is_leaf;
    explicit Node(bool leaf) : is_leaf(leaf) {}
    virtual ~Node() = default;
  };

  struct Leaf final : Node {
    Leaf() : Node(true) {}
    std::vector<value_t> vals;  // nrows * arity values, row-major, key-sorted
    Leaf* next = nullptr;       // leaf chain for range scans
  };

  struct Inner final : Node {
    Inner() : Node(false) {}
    // children.size() == seps.size() + 1; seps[i] is the minimum key of
    // children[i + 1] (key_arity columns only).
    std::vector<Tuple> seps;
    std::vector<std::unique_ptr<Node>> children;
  };

  [[nodiscard]] std::size_t leaf_rows(const Leaf& l) const {
    return l.vals.size() / arity_;
  }
  [[nodiscard]] std::span<const value_t> leaf_row(const Leaf& l, std::size_t i) const {
    return {l.vals.data() + i * arity_, arity_};
  }

 public:
  // -- cursor -----------------------------------------------------------------

  /// Allocation-free iterator over the stored rows in key order.  A cursor
  /// is bound to a fixed tree state: any mutation of the tree invalidates
  /// it (and every Position taken from it).
  ///
  /// `seek(prefix)` positions the cursor at the lower bound of `prefix`
  /// (the first row whose leading prefix.size() key columns compare >=
  /// prefix), and is *monotone*: when the target is at or beyond the
  /// current row, the cursor resumes from the current leaf and walks the
  /// leaf chain, re-descending from the root only when the target lies
  /// more than a few leaves ahead.  Seeking below the current position is
  /// detected (one comparison) and falls back to a fresh descent, so any
  /// seek order is correct — monotone order is just cheaper.
  ///
  /// Note the resumed lower bound is relative to the current position: if
  /// next() already advanced past rows equal to `prefix`, a re-seek of the
  /// same prefix stays put rather than rewinding.  Batch kernels that
  /// replay a match range use position()/restore() instead.
  class Cursor {
   public:
    explicit Cursor(const TupleBTree& tree) : tree_(&tree) {}

    /// Opaque bookmark of a valid row; restore() rewinds to it.  Only
    /// meaningful against the same unmodified tree.
    struct Position {
      const Leaf* leaf = nullptr;
      std::size_t idx = 0;
    };

    /// Position at the first row in key order (end if the tree is empty).
    void seek_first();

    /// Position at the lower bound of `prefix` (prefix.size() columns,
    /// must be <= key_arity).  See the class comment for monotonicity.
    void seek(std::span<const value_t> prefix);

    [[nodiscard]] bool valid() const { return leaf_ != nullptr; }

    /// The current row (full arity).  Only when valid().
    [[nodiscard]] std::span<const value_t> row() const {
      return tree_->leaf_row(*leaf_, idx_);
    }

    /// Does the current row's leading prefix.size() columns equal
    /// `prefix`?  Counted as one key comparison.  Only when valid().
    [[nodiscard]] bool matches(std::span<const value_t> prefix) const {
      return tree_->cmp_key(row(), prefix, prefix.size()) == 0;
    }

    /// Advance to the next row in key order.  Only when valid().
    void next() {
      ++idx_;
      // Hop over exhausted leaves (erase_key may leave empty ones in the
      // chain).  tail_ only ever names a non-empty leaf, so seek()'s
      // past-the-end probe can always read its last row.
      while (leaf_ != nullptr && idx_ >= tree_->leaf_rows(*leaf_)) {
        if (tree_->leaf_rows(*leaf_) > 0) tail_ = leaf_;
        leaf_ = leaf_->next;
        idx_ = 0;
      }
    }

    [[nodiscard]] Position position() const { return {leaf_, idx_}; }
    void restore(const Position& p) {
      leaf_ = p.leaf;
      idx_ = p.idx;
    }

   private:
    /// Give up on chain-walking and re-descend beyond this many leaves: a
    /// far target costs one comparison per skipped leaf but only
    /// O(depth log fanout) for a descent.
    static constexpr std::size_t kMaxChainHops = 4;

    /// Walk the chain from `l` (rows before `start` excluded) to the leaf
    /// containing the lower bound of `prefix`, visiting at most
    /// `max_leaves` leaves; false = budget exhausted, caller re-descends.
    bool land(const Leaf* l, std::size_t start, std::span<const value_t> prefix,
              std::size_t max_leaves);
    void descend(std::span<const value_t> prefix);

    const TupleBTree* tree_;
    const Leaf* leaf_ = nullptr;  // null = unpositioned or past the end
    std::size_t idx_ = 0;
    const Leaf* tail_ = nullptr;  // last leaf seen before falling off the end
  };

  [[nodiscard]] Cursor cursor() const { return Cursor(*this); }

  /// Visit every stored row whose first prefix.size() columns equal
  /// `prefix`, in key order.  prefix.size() must be <= key_arity (an empty
  /// prefix visits everything).  `fn` receives std::span<const value_t>.
  template <typename Fn>
  void scan_prefix(std::span<const value_t> prefix, Fn&& fn) const {
    Cursor c(*this);
    for (c.seek(prefix); c.valid() && c.matches(prefix); c.next()) fn(c.row());
  }

  /// Visit all rows in key order.  `fn` receives std::span<const value_t>.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    Cursor c(*this);
    for (c.seek_first(); c.valid(); c.next()) fn(c.row());
  }

  // -- instrumentation --------------------------------------------------------

  [[nodiscard]] std::uint64_t comparisons() const { return comparisons_; }
  [[nodiscard]] std::uint64_t inserts() const { return inserts_; }
  void reset_counters() const { comparisons_ = 0; }

  /// Rough resident size, for memory-pressure modelling.
  [[nodiscard]] std::size_t approx_bytes() const;

  /// Structural invariant check (test hook): sortedness, fanout bounds,
  /// separator correctness, leaf-chain completeness.  Aborts via assert on
  /// violation; returns tuple count seen.
  [[nodiscard]] std::size_t check_invariants() const;

 private:
  static constexpr std::size_t kLeafCap = 32;
  static constexpr std::size_t kInnerCap = 32;

  [[nodiscard]] std::strong_ordering cmp_key(std::span<const value_t> a,
                                             std::span<const value_t> b,
                                             std::size_t ncols) const;

  [[nodiscard]] std::unique_ptr<Leaf> make_leaf() const;

  /// Insert into subtree; if the child splits, returns the new right
  /// sibling and its separator key via out-params.
  bool insert_rec(Node* node, std::span<const value_t> row, Tuple& sep_out,
                  std::unique_ptr<Node>& right_out);

  [[nodiscard]] const Leaf* descend_lower_bound(std::span<const value_t> prefix) const;
  [[nodiscard]] const Leaf* leftmost_leaf() const;

  std::size_t arity_;
  std::size_t key_arity_;
  std::size_t size_ = 0;
  std::unique_ptr<Node> root_;
  mutable std::uint64_t comparisons_ = 0;
  std::uint64_t inserts_ = 0;
};

}  // namespace paralagg::storage

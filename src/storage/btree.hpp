#pragma once

// B+-tree tuple storage.
//
// PARALAGG stores each relation's local partition "using a nested BTree
// data structure" (paper §IV-D): the inner side of a join stays put in its
// tree and is probed with O(log n) prefix lookups, while the outer side is
// serialized and shipped.  This is that tree: keys are the leading
// `key_arity` columns of each tuple, at most one tuple is stored per
// distinct key, and range scans over a shorter prefix enumerate all tuples
// matching a join key.
//
// The tree also keeps operation counters (comparisons, node visits) which
// the benchmark harness uses for modelled scaling: the paper's Fig. 5
// analysis attributes low-core-count cost to B-tree insertion, and these
// counters make that attribution reproducible.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "storage/tuple.hpp"

namespace paralagg::storage {

class TupleBTree {
 public:
  /// Tuples have `arity` columns; the first `key_arity` are the key.
  /// Plain relations use key_arity == arity (set semantics over whole
  /// tuples); aggregated relations use key_arity == number of independent
  /// columns, with dependent columns carried as the payload.
  TupleBTree(std::size_t arity, std::size_t key_arity);
  ~TupleBTree();

  TupleBTree(TupleBTree&&) noexcept;
  TupleBTree& operator=(TupleBTree&&) noexcept;
  TupleBTree(const TupleBTree&) = delete;
  TupleBTree& operator=(const TupleBTree&) = delete;

  [[nodiscard]] std::size_t arity() const { return arity_; }
  [[nodiscard]] std::size_t key_arity() const { return key_arity_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Insert `t` if its key is absent.  Returns true if inserted, false if a
  /// tuple with the same key already exists (the stored tuple is untouched).
  bool insert(const Tuple& t);

  /// Mutable access to the stored tuple for `key` (exactly key_arity
  /// columns), or nullptr.  Callers may rewrite payload columns in place —
  /// this is how fused aggregation collapses a stored accumulator — but
  /// must never modify key columns.
  [[nodiscard]] Tuple* find_key(std::span<const value_t> key);
  [[nodiscard]] const Tuple* find_key(std::span<const value_t> key) const;

  [[nodiscard]] bool contains_key(std::span<const value_t> key) const {
    return find_key(key) != nullptr;
  }

  /// Visit every stored tuple whose first prefix.size() columns equal
  /// `prefix`, in key order.  prefix.size() must be <= key_arity.
  void scan_prefix(std::span<const value_t> prefix,
                   const std::function<void(const Tuple&)>& fn) const;

  /// Visit all tuples in key order.
  void for_each(const std::function<void(const Tuple&)>& fn) const;

  void clear();

  // -- instrumentation --------------------------------------------------------

  [[nodiscard]] std::uint64_t comparisons() const { return comparisons_; }
  [[nodiscard]] std::uint64_t inserts() const { return inserts_; }
  void reset_counters() { comparisons_ = 0; inserts_ = 0; }

  /// Rough resident size, for memory-pressure modelling.
  [[nodiscard]] std::size_t approx_bytes() const;

  /// Structural invariant check (test hook): sortedness, fanout bounds,
  /// separator correctness, leaf-chain completeness.  Aborts via assert on
  /// violation; returns tuple count seen.
  [[nodiscard]] std::size_t check_invariants() const;

 private:
  struct Leaf;
  struct Inner;
  struct Node;

  static constexpr std::size_t kLeafCap = 32;
  static constexpr std::size_t kInnerCap = 32;

  [[nodiscard]] std::strong_ordering cmp_key(std::span<const value_t> a,
                                             std::span<const value_t> b,
                                             std::size_t ncols) const;

  /// Insert into subtree; if the child splits, returns the new right
  /// sibling and its separator key via out-params.
  bool insert_rec(Node* node, const Tuple& t, Tuple& sep_out,
                  std::unique_ptr<Node>& right_out);

  [[nodiscard]] const Leaf* descend_lower_bound(std::span<const value_t> prefix) const;

  std::size_t arity_;
  std::size_t key_arity_;
  std::size_t size_ = 0;
  std::unique_ptr<Node> root_;
  mutable std::uint64_t comparisons_ = 0;
  std::uint64_t inserts_ = 0;
};

}  // namespace paralagg::storage

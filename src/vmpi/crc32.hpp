#pragma once

// CRC-32 (IEEE 802.3 polynomial, reflected).  Wire frames and checkpoint
// files carry a checksum so a corrupted or truncated buffer is detected
// and surfaces as a typed error instead of feeding garbage into the
// zero-copy decode paths.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace paralagg::vmpi {

namespace detail {

inline constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr auto kCrc32Table = make_crc32_table();

}  // namespace detail

inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFU;

/// Feed bytes into a raw (un-finalized) CRC register.  Start from
/// kCrc32Init, chain over buffer fragments, finalize with ^ kCrc32Init.
inline std::uint32_t crc32_update(std::uint32_t state, std::span<const std::byte> data) {
  for (const std::byte b : data) {
    state = detail::kCrc32Table[(state ^ static_cast<std::uint32_t>(b)) & 0xFFU] ^
            (state >> 8);
  }
  return state;
}

/// CRC-32 of a byte span (init/final XOR 0xFFFFFFFF, as in zlib's crc32).
inline std::uint32_t crc32(std::span<const std::byte> data) {
  return crc32_update(kCrc32Init, data) ^ kCrc32Init;
}

}  // namespace paralagg::vmpi

#pragma once

// Deterministic fault injection for the virtual MPI substrate.
//
// The paper's Theta runs assume a perfect interconnect; production never
// has one.  A FaultPlan installed on a World perturbs the message layer —
// drop, duplicate, bounded reorder/delay, single-byte corruption, and
// rank stall/kill at a chosen epoch — and every decision is a pure
// function of (seed, src, dst, per-edge sequence number), so any observed
// schedule is replayable from its seed alone.
//
// Scope: only mailbox *messages* sent via isend are faultable (isend/
// recv/drain, the ialltoallv tickets, the Bruck relay, and the
// hierarchical router's intra-node legs all ride that path).  The
// slot/matrix collectives (bcast, gather, dense alltoallv) and the
// scheduled symmetric collectives (allreduce / allgather on any
// CollectiveSchedule — their log-step relay rounds use a direct reliable
// enqueue) model the reliable transport underneath MPI's collectives;
// they are perturbed only indirectly, via the stall/kill epochs and the
// watchdog.
//
// Failure surfacing is layered on top (see comm.hpp): a watchdog deadline
// on every blocking wait converts the silent hang an injected fault would
// cause into a typed TimeoutError carrying this rank's CommStats snapshot.
//
// Since PR 10 the faultable path is normally wrapped by the self-healing
// transport (vmpi/reliable.hpp): with a nonzero RetryPolicy the injected
// drops and corruptions are retransmitted to bit-identical completion, and
// the typed abort fires only when the retry budget is exhausted.  Setting
// RetryPolicy::max_attempts = 0 restores the bare fail-stop behaviour
// described above.  Retransmits re-enter this layer with a fresh per-edge
// physical sequence number, so every retransmit rolls its own fault.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "vmpi/stats.hpp"

namespace paralagg::vmpi {

/// Base class of every injected-failure condition the substrate raises.
/// Engines catch this (not individual subclasses) to turn a fault into a
/// clean RunResult instead of a wedged process.
struct FaultError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A blocking wait (barrier, recv, ticket wait, collective rendezvous)
/// exceeded the watchdog deadline — or was released because a peer's wait
/// did.  Carries the waiting rank's communication counters at the moment
/// of the timeout, so a post-mortem can see e.g. tickets posted but never
/// completed, or wait_seconds dwarfing useful work.
struct TimeoutError : FaultError {
  TimeoutError(std::string where_, double deadline_seconds_, CommStats snapshot);

  std::string where;        // which primitive timed out
  double deadline_seconds;  // the watchdog setting that fired
  CommStats stats;          // this rank's counters at the timeout
};

/// Thrown on the victim rank when FaultPlan::kill_rank reaches its epoch:
/// the simulated process death.  Peers observe it only as silence (and
/// eventually a TimeoutError), exactly like a real rank crash.
struct FaultInjectedDeath : FaultError {
  FaultInjectedDeath(int rank_, std::uint64_t epoch_);

  int rank;
  std::uint64_t epoch;
};

/// A wire frame failed validation (length, magic, or CRC): raised by the
/// framed decode paths instead of feeding a corrupted buffer into the
/// zero-copy readers.  Derives from FaultError so one catch site in the
/// engines covers every injected-failure surface.
struct FrameDecodeError : FaultError {
  using FaultError::FaultError;
};

/// Seeded description of what to break.  All probabilities are per
/// message, evaluated independently per (src, dst, edge-sequence) triple;
/// at most one fault class applies to a message (cumulative thresholds in
/// the order drop, duplicate, delay, corrupt).
struct FaultPlan {
  std::uint64_t seed = 0;

  // -- message faults (mailbox path only) -----------------------------------
  double drop_prob = 0;     // message vanishes
  double dup_prob = 0;      // message delivered twice (back to back)
  double delay_prob = 0;    // message held back, released out of order
  double corrupt_prob = 0;  // one payload byte flipped
  /// Upper bound on how many subsequent same-edge sends a delayed message
  /// may be held behind (it is also released whenever the sender blocks,
  /// so delivery is always eventual).
  std::uint32_t max_delay_msgs = 3;
  /// Directed-edge filter: when >= 0, message faults fire only on sends
  /// from only_src / to only_dst (both set = one directed edge).  This is
  /// how a test expresses "drop every retransmit of edge a->b" without
  /// touching the rest of the traffic.
  int only_src = -1;
  int only_dst = -1;

  // -- rank faults ----------------------------------------------------------
  /// Kill `kill_rank` when its epoch counter reaches `kill_epoch` (epochs
  /// are advanced by the engines at iteration boundaries via
  /// Comm::advance_epoch).  -1 = disabled.
  int kill_rank = -1;
  std::uint64_t kill_epoch = 0;
  /// Stall `stall_rank` for `stall_seconds` at `stall_epoch`.  -1 = disabled.
  int stall_rank = -1;
  std::uint64_t stall_epoch = 0;
  double stall_seconds = 0;

  /// Any fault configured at all?
  [[nodiscard]] bool active() const {
    return faults_messages() || kill_rank >= 0 || stall_rank >= 0;
  }
  /// Any per-message fault configured (the isend fast path gate)?
  [[nodiscard]] bool faults_messages() const {
    return drop_prob > 0 || dup_prob > 0 || delay_prob > 0 || corrupt_prob > 0;
  }
};

/// What to do with one message.
enum class FaultAction : std::uint8_t {
  kDeliver = 0,
  kDrop,
  kDuplicate,
  kDelay,
  kCorrupt,
};

struct FaultDecision {
  FaultAction action = FaultAction::kDeliver;
  std::uint32_t delay_msgs = 0;    // kDelay: hold behind this many sends
  std::uint64_t corrupt_index = 0; // kCorrupt: byte offset selector
};

/// The single source of randomness: a splitmix64-style hash of
/// (seed, src, dst, seq).  Identical across replays by construction.
[[nodiscard]] std::uint64_t fault_hash(std::uint64_t seed, int src, int dst,
                                       std::uint64_t seq);

/// Decide the fate of the seq-th message on edge src→dst under `plan`.
[[nodiscard]] FaultDecision fault_decide(const FaultPlan& plan, int src, int dst,
                                         std::uint64_t seq);

}  // namespace paralagg::vmpi

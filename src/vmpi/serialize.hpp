#pragma once

// Flat byte-buffer serialization.
//
// MPI moves contiguous 1-D buffers, so anything stored in a nested
// structure (the engine's B-trees) must be flattened before transmission
// (paper §IV-D).  These helpers are the only sanctioned way to build and
// parse such buffers; keeping them trivial makes the byte accounting in
// CommStats exact.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace paralagg::vmpi {

using Bytes = std::vector<std::byte>;

/// Append-only writer over a growable byte vector.
class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &v, sizeof(T));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_span(std::span<const T> vs) {
    const auto old = buf_.size();
    buf_.resize(old + vs.size_bytes());
    if (!vs.empty()) std::memcpy(buf_.data() + old, vs.data(), vs.size_bytes());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }

  /// Relinquish the underlying buffer.
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Sequential reader over a byte span.  The caller asserts the framing; a
/// short read is a programming error, not a recoverable condition.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    assert(pos_ + sizeof(T) <= data_.size() && "buffer underrun");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void get_into(std::span<T> out) {
    assert(pos_ + out.size_bytes() <= data_.size() && "buffer underrun");
    if (!out.empty()) std::memcpy(out.data(), data_.data() + pos_, out.size_bytes());
    pos_ += out.size_bytes();
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Append-only writer of a homogeneous element stream, backed by the same
/// byte vector the exchange primitives move.  The element-typed cousin of
/// BufferWriter: the ExchangeRouter frames its tuple traffic through this
/// so take() hands the buffer to alltoallv with no repacking.
template <typename T>
  requires std::is_trivially_copyable_v<T>
class TypedWriter {
 public:
  TypedWriter() = default;
  explicit TypedWriter(std::size_t reserve_elements) {
    buf_.reserve(reserve_elements * sizeof(T));
  }

  void put(const T& v) {
    const auto old = buf_.size();
    buf_.resize(old + sizeof(T));
    std::memcpy(buf_.data() + old, &v, sizeof(T));
  }

  void put_span(std::span<const T> vs) {
    const auto old = buf_.size();
    buf_.resize(old + vs.size_bytes());
    if (!vs.empty()) std::memcpy(buf_.data() + old, vs.data(), vs.size_bytes());
  }

  [[nodiscard]] std::size_t elements() const { return buf_.size() / sizeof(T); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }
  /// View of the bytes written so far (for checksumming before take()).
  [[nodiscard]] std::span<const std::byte> bytes() const { return buf_; }

  /// Relinquish the underlying byte buffer (ready for the wire).
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Zero-copy reader over a byte buffer holding a homogeneous element
/// stream.  Unlike BufferReader, `take_span` returns a *view* into the
/// buffer — the decode path of a tuple exchange never materializes
/// per-tuple copies.  The buffer must outlive every span taken from it,
/// and its size must be an exact multiple of sizeof(T).
template <typename T>
  requires std::is_trivially_copyable_v<T>
class TypedReader {
 public:
  explicit TypedReader(std::span<const std::byte> data)
      : data_(reinterpret_cast<const T*>(data.data()), data.size() / sizeof(T)) {
    assert(data.size() % sizeof(T) == 0 && "buffer is not a whole element stream");
    assert(reinterpret_cast<std::uintptr_t>(data.data()) % alignof(T) == 0 &&
           "buffer misaligned for element type");
  }

  T get() {
    assert(pos_ < data_.size() && "element stream underrun");
    return data_[pos_++];
  }

  [[nodiscard]] std::span<const T> take_span(std::size_t n) {
    assert(pos_ + n <= data_.size() && "element stream underrun");
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const T> data_;
  std::size_t pos_ = 0;
};

}  // namespace paralagg::vmpi

#include "vmpi/fault.hpp"

#include <string>

#include "vmpi/reliable.hpp"

namespace paralagg::vmpi {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Map 64 random bits to [0, 1).
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// An escalated abort should say what healing was attempted first; a run
/// with no healing activity (retry budget 0, or no message faults) keeps
/// the PR 5 message byte-for-byte.
std::string timeout_message(const std::string& where, double deadline_seconds,
                            const CommStats& snapshot) {
  std::string msg = "vmpi: watchdog timeout after " +
                    std::to_string(deadline_seconds) + "s in " + where;
  if (snapshot.retransmits > 0 || snapshot.nacks_sent > 0) {
    msg += "; " + ReliableChannel::heal_summary(snapshot);
  }
  return msg;
}

}  // namespace

TimeoutError::TimeoutError(std::string where_, double deadline_seconds_,
                           CommStats snapshot)
    : FaultError(timeout_message(where_, deadline_seconds_, snapshot)),
      where(std::move(where_)),
      deadline_seconds(deadline_seconds_),
      stats(std::move(snapshot)) {}

FaultInjectedDeath::FaultInjectedDeath(int rank_, std::uint64_t epoch_)
    : FaultError("vmpi: injected death of rank " + std::to_string(rank_) +
                 " at epoch " + std::to_string(epoch_)),
      rank(rank_),
      epoch(epoch_) {}

std::uint64_t fault_hash(std::uint64_t seed, int src, int dst, std::uint64_t seq) {
  std::uint64_t h = splitmix64(seed ^ 0xA5A5A5A55A5A5A5AULL);
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
                      static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))));
  h = splitmix64(h ^ seq);
  return h;
}

FaultDecision fault_decide(const FaultPlan& plan, int src, int dst, std::uint64_t seq) {
  FaultDecision d;
  if (!plan.faults_messages()) return d;
  if (plan.only_src >= 0 && src != plan.only_src) return d;
  if (plan.only_dst >= 0 && dst != plan.only_dst) return d;
  const std::uint64_t h = fault_hash(plan.seed, src, dst, seq);
  const double u = to_unit(h);

  // Cumulative thresholds: at most one fault class per message, and the
  // class chosen depends only on (seed, src, dst, seq).
  double edge = plan.drop_prob;
  if (u < edge) {
    d.action = FaultAction::kDrop;
    return d;
  }
  edge += plan.dup_prob;
  if (u < edge) {
    d.action = FaultAction::kDuplicate;
    return d;
  }
  edge += plan.delay_prob;
  if (u < edge) {
    d.action = FaultAction::kDelay;
    // A second hash round keeps the hold distance independent of the
    // class-selection bits.
    const std::uint64_t h2 = splitmix64(h ^ 0xD15EA5EDC0FFEE00ULL);
    const std::uint32_t span = plan.max_delay_msgs == 0 ? 1 : plan.max_delay_msgs;
    d.delay_msgs = 1 + static_cast<std::uint32_t>(h2 % span);
    return d;
  }
  edge += plan.corrupt_prob;
  if (u < edge) {
    d.action = FaultAction::kCorrupt;
    d.corrupt_index = splitmix64(h ^ 0xBADC0DEBADC0DE00ULL);
    return d;
  }
  return d;
}

}  // namespace paralagg::vmpi

#include "vmpi/comm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

namespace paralagg::vmpi {

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Wait-slice for the serviced blocking paths: short relative to the retry
// backoff (so retransmit timers fire promptly) but coarse enough that a
// parked rank costs ~100 wakeups/s, not a spin.
constexpr double kServiceSliceSeconds = 0.01;

/// Push under the box lock, maintaining the undelivered count.
void enqueue_locked(detail::Mailbox& box, detail::Message m) {
  if (!detail::deliverable(m)) ++box.undelivered;
  box.q.push_back(std::move(m));
}

}  // namespace

World::World(int nranks)
    : nranks_(nranks),
      barrier_(nranks),
      slots_(static_cast<std::size_t>(nranks)),
      matrix_(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks)),
      mailboxes_(static_cast<std::size_t>(nranks)),
      stats_(static_cast<std::size_t>(nranks)) {
  assert(nranks >= 1);
}

void World::abort() {
  barrier_.abort();
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box.m);
    box.aborted = true;
    box.cv.notify_all();
  }
}

void World::fault_abort() {
  barrier_.fault_abort();
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box.m);
    box.faulted = true;
    box.cv.notify_all();
  }
}

CommStats World::total_stats() const {
  CommStats total;
  for (const auto& s : stats_) total += s;
  return total;
}

bool World::fault_reset(double timeout_seconds) {
  std::unique_lock lock(reset_mu_);
  const auto my_gen = reset_gen_;
  if (++reset_arrived_ == nranks_) {
    // Last arrival scrubs the shared state while every peer is parked in
    // this rendezvous — no rank is mid-send or mid-collective.
    barrier_.reset_fault();
    for (auto& box : mailboxes_) {
      std::lock_guard box_lock(box.m);
      box.faulted = false;
      box.q.clear();
      box.undelivered = 0;
    }
    for (auto& s : slots_) s.clear();
    for (auto& c : matrix_) c.clear();
    reset_arrived_ = 0;
    ++reset_gen_;
    reset_cv_.notify_all();
    return true;
  }
  const auto pred = [&] { return reset_gen_ != my_gen; };
  if (timeout_seconds > 0) {
    if (!reset_cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                            pred)) {
      if (reset_gen_ == my_gen && reset_arrived_ > 0) --reset_arrived_;
      return false;
    }
  } else {
    reset_cv_.wait(lock, pred);
  }
  return true;
}

void Comm::timed_barrier_wait() {
  flush_delayed();
  const double deadline = world_->watchdog_seconds_;
  const double t0 = wall_now();
  try {
    if (channel_) {
      world_->barrier_.arrive_and_wait_serviced(
          deadline, kServiceSliceSeconds, [this] {
            flush_delayed();
            service_reliable();
            return channel_->take_progress();
          });
    } else {
      world_->barrier_.arrive_and_wait(deadline);
    }
  } catch (const detail::WaitTimeout&) {
    if (stats_enabled_) stats().wait_seconds += wall_now() - t0;
    // Our deadline fired first: poison the world so peers blocked on us
    // unwind with their own TimeoutError instead of hanging.
    world_->fault_abort();
    throw TimeoutError("barrier", deadline, stats());
  } catch (const detail::FaultWake&) {
    if (stats_enabled_) stats().wait_seconds += wall_now() - t0;
    throw TimeoutError("barrier (released by peer fault)", deadline, stats());
  } catch (...) {
    if (stats_enabled_) stats().wait_seconds += wall_now() - t0;
    throw;
  }
  if (stats_enabled_) stats().wait_seconds += wall_now() - t0;
}

void Comm::advance_epoch() {
  flush_delayed();
  service_reliable();
  const std::uint64_t e = epoch_++;
  const FaultPlan& plan = world_->plan_;
  if (plan.kill_rank == rank_ && plan.kill_epoch == e) {
    throw FaultInjectedDeath(rank_, e);
  }
  if (plan.stall_rank == rank_ && plan.stall_epoch == e && plan.stall_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(plan.stall_seconds));
  }
}

void Comm::flush_delayed() {
  if (edges_.empty()) return;
  for (std::size_t d = 0; d < edges_.size(); ++d) {
    auto& edge = edges_[d];
    if (edge.held.empty()) continue;
    auto& box = world_->mailboxes_[d];
    {
      std::lock_guard lock(box.m);
      for (auto& h : edge.held) {
        enqueue_locked(box,
                       detail::Message{rank_, h.tag, std::move(h.payload), h.enveloped});
      }
    }
    edge.held.clear();
    box.cv.notify_all();
  }
}

void Comm::faulted_enqueue(int dst, int tag, Bytes payload, bool enveloped) {
  if (edges_.empty()) edges_.resize(static_cast<std::size_t>(size()));
  auto& edge = edges_[static_cast<std::size_t>(dst)];
  const std::uint64_t seq = edge.seq++;
  const FaultDecision decision = fault_decide(world_->plan_, rank_, dst, seq);

  // Copies of this message to publish now (0 for drop/delay, 2 for dup),
  // followed by any held messages whose delay ran out — publishing the
  // batch under one lock keeps the schedule a pure function of the seed
  // (a receiver can never observe a duplicate before its original, nor a
  // release without the send that triggered it).
  int copies = 1;
  switch (decision.action) {
    case FaultAction::kDeliver:
      break;
    case FaultAction::kDrop:
      stats().faults_dropped += 1;
      copies = 0;
      break;
    case FaultAction::kDuplicate:
      stats().faults_duplicated += 1;
      copies = 2;
      break;
    case FaultAction::kDelay:
      stats().faults_delayed += 1;
      edge.held.push_back(
          Held{tag, std::move(payload), seq + decision.delay_msgs, enveloped});
      copies = 0;
      break;
    case FaultAction::kCorrupt:
      stats().faults_corrupted += 1;
      if (!payload.empty()) {
        payload[static_cast<std::size_t>(decision.corrupt_index % payload.size())] ^=
            std::byte{0x5A};
      }
      break;
  }

  auto& box = world_->mailboxes_[static_cast<std::size_t>(dst)];
  bool published = false;
  {
    std::lock_guard lock(box.m);
    for (int c = 0; c < copies; ++c) {
      enqueue_locked(box, detail::Message{rank_, tag, payload, enveloped});
      published = true;
    }
    // Release held messages that have now been passed by enough newer
    // sends on this edge (this is what makes the delay a bounded reorder).
    while (!edge.held.empty() && edge.held.front().release_at <= seq) {
      enqueue_locked(box, detail::Message{rank_, edge.held.front().tag,
                                          std::move(edge.held.front().payload),
                                          edge.held.front().enveloped});
      edge.held.pop_front();
      published = true;
    }
  }
  if (published) box.cv.notify_all();
}

void Comm::barrier() {
  if (stats_enabled_) stats().record_call(Op::kBarrier);
  timed_barrier_wait();
}

void Comm::isend(int dst, int tag, std::span<const std::byte> data) {
  assert(dst >= 0 && dst < size());
  if (stats_enabled_) {
    auto& st = stats();
    st.record_call(Op::kP2P);
    const bool remote = dst != rank_;
    st.record_send(Op::kP2P, data.size(), remote,
                   remote && !world_->topo_.same_node(rank_, dst));
    st.messages_sent += 1;
  }

  // Self-sends are exempt from injection: a process does not lose messages
  // to itself, and the loopback staging paths rely on that.
  if (dst != rank_ && world_->plan_.faults_messages()) {
    if (channel_) {
      faulted_enqueue(dst, tag, channel_->send_data(dst, tag, data, wall_now()),
                      /*enveloped=*/true);
      // A send is also a progress opportunity: pump timers and inbound
      // acks so a compute-and-send phase between blocking waits cannot
      // let this rank's retransmit obligations go stale.
      service_reliable();
      return;
    }
    faulted_enqueue(dst, tag, Bytes(data.begin(), data.end()));
    return;
  }

  auto& box = world_->mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lock(box.m);
    box.q.push_back(detail::Message{rank_, tag, Bytes(data.begin(), data.end())});
  }
  box.cv.notify_all();
}

namespace {

bool matches(const detail::Message& m, int src, int tag) {
  return detail::deliverable(m) && (src == kAnySource || m.src == src) &&
         (tag == kAnyTag || m.tag == tag);
}

}  // namespace

void Comm::service_reliable() {
  if (!channel_) return;
  const double now = wall_now();
  auto& box = world_->mailboxes_[static_cast<std::size_t>(rank_)];
  {
    std::lock_guard lock(box.m);
    if (box.undelivered > 0) {
      for (auto it = box.q.begin(); it != box.q.end();) {
        if (it->tag == kReliableCtrlTag) {
          channel_->on_ctrl(it->src, it->payload, now);
          it = box.q.erase(it);
          --box.undelivered;
        } else if (it->enveloped) {
          auto payload = channel_->on_data(it->src, it->payload, now);
          --box.undelivered;
          if (payload) {
            // Strip in place: the message keeps its arrival position, so
            // FIFO matching is unchanged by the envelope detour.
            it->payload = std::move(*payload);
            it->enveloped = false;
            ++it;
          } else {
            it = box.q.erase(it);  // duplicate or corrupt: consumed
          }
        } else {
          ++it;
        }
      }
    }
  }
  channel_->poll(now);
  // Ship with our own mailbox lock released: these acquire peer box locks
  // (never two at once — no ordering hazard).
  for (auto& a : channel_->take_outbox()) {
    if (a.ctrl) {
      reliable_send(a.dst, kReliableCtrlTag, std::move(a.bytes));
    } else {
      faulted_enqueue(a.dst, a.tag, std::move(a.bytes), /*enveloped=*/true);
    }
  }
  if (channel_->failure()) {
    const auto f = *channel_->failure();
    world_->fault_abort();
    throw TimeoutError("reliable delivery to rank " + std::to_string(f.dst) +
                           " (seq " + std::to_string(f.seq) + ", " +
                           std::to_string(f.attempts) + " retransmits over " +
                           std::to_string(f.waited_seconds) + "s)",
                       world_->retry_.deadline, stats());
  }
}

bool Comm::fault_reset(double timeout_seconds) {
  for (auto& e : edges_) e.held.clear();
  if (channel_) {
    // Fresh transport state: the old rings reference a purged world.  The
    // CommStats heal counters survive (the channel only appends).
    channel_ = std::make_unique<ReliableChannel>(rank_, size(), world_->retry_,
                                                 &stats());
  }
  // Ranks unwind from an abort at different phases, so the per-rank tag
  // stream counters have diverged; the first post-reset collective would
  // pair mismatched relay tags and hang.  Re-zero them — the rendezvous
  // below guarantees every rank does this before any new traffic.  The
  // epoch counter is deliberately NOT reset: one-shot epoch faults
  // (kill/stall) must not re-fire on the replayed work.
  ialltoallv_seq_ = 0;
  bruck_seq_ = 0;
  sched_seq_ = 0;
  return world_->fault_reset(timeout_seconds);
}

Bytes Comm::recv(int src, int tag, int* out_src, int* out_tag) {
  // About to block: anything our own injected delays still hold must go
  // out first, or two ranks could deadlock on each other's held messages.
  flush_delayed();
  if (channel_) return recv_reliable(src, tag, out_src, out_tag);
  auto& box = world_->mailboxes_[static_cast<std::size_t>(rank_)];
  const double deadline = world_->watchdog_seconds_;
  const double t0 = wall_now();
  std::unique_lock lock(box.m);
  for (;;) {
    auto it = std::find_if(box.q.begin(), box.q.end(),
                           [&](const detail::Message& m) { return matches(m, src, tag); });
    if (it != box.q.end()) {
      detail::Message m = std::move(*it);
      box.q.erase(it);
      if (out_src != nullptr) *out_src = m.src;
      if (out_tag != nullptr) *out_tag = m.tag;
      if (stats_enabled_) {
        auto& st = stats();
        st.messages_received += 1;
        st.p2p_bytes_received += m.payload.size();
        st.wait_seconds += wall_now() - t0;
      }
      return std::move(m.payload);
    }
    if (box.aborted) throw WorldAborted{};
    if (box.faulted) {
      lock.unlock();
      if (stats_enabled_) stats().wait_seconds += wall_now() - t0;
      throw TimeoutError("recv (released by peer fault)", deadline, stats());
    }
    const auto pred = [&] {
      return box.aborted || box.faulted ||
             std::any_of(box.q.begin(), box.q.end(),
                         [&](const detail::Message& m) { return matches(m, src, tag); });
    };
    if (deadline > 0) {
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(deadline - (wall_now() - t0)));
      if (!box.cv.wait_until(lock, until, pred)) {
        lock.unlock();
        if (stats_enabled_) stats().wait_seconds += wall_now() - t0;
        world_->fault_abort();
        throw TimeoutError("recv", deadline, stats());
      }
    } else {
      box.cv.wait(lock, pred);
    }
  }
}

Bytes Comm::recv_reliable(int src, int tag, int* out_src, int* out_tag) {
  // The serviced variant of recv: a rank parked here still answers its
  // transport obligations (retransmit timers, inbound acks/nacks) by
  // slicing the wait.  The watchdog is re-armed on every healing round
  // that makes progress — a cumulative ack advancing or a fresh frame
  // landing — so a wait that is slow *because it is healing* does not
  // time out, while a genuinely dead peer still does.  Ticket::wait rides
  // this path too, so ialltoallv waits get the same per-round re-arm.
  auto& box = world_->mailboxes_[static_cast<std::size_t>(rank_)];
  const double deadline = world_->watchdog_seconds_;
  const double t0 = wall_now();
  double armed = t0;
  for (;;) {
    service_reliable();  // may escalate to TimeoutError on budget exhaustion
    if (channel_->take_progress()) armed = wall_now();
    {
      std::unique_lock lock(box.m);
      auto it = std::find_if(box.q.begin(), box.q.end(), [&](const detail::Message& m) {
        return matches(m, src, tag);
      });
      if (it != box.q.end()) {
        detail::Message m = std::move(*it);
        box.q.erase(it);
        if (out_src != nullptr) *out_src = m.src;
        if (out_tag != nullptr) *out_tag = m.tag;
        if (stats_enabled_) {
          auto& st = stats();
          st.messages_received += 1;
          st.p2p_bytes_received += m.payload.size();
          st.wait_seconds += wall_now() - t0;
        }
        return std::move(m.payload);
      }
      if (box.aborted) throw WorldAborted{};
      if (box.faulted) {
        lock.unlock();
        if (stats_enabled_) stats().wait_seconds += wall_now() - t0;
        throw TimeoutError("recv (released by peer fault)", deadline, stats());
      }
      const auto pred = [&] {
        return box.aborted || box.faulted || box.undelivered > 0 ||
               std::any_of(box.q.begin(), box.q.end(), [&](const detail::Message& m) {
                 return matches(m, src, tag);
               });
      };
      box.cv.wait_for(lock, std::chrono::duration<double>(kServiceSliceSeconds), pred);
    }
    if (deadline > 0 && wall_now() - armed > deadline) {
      if (stats_enabled_) stats().wait_seconds += wall_now() - t0;
      world_->fault_abort();
      throw TimeoutError("recv", deadline, stats());
    }
  }
}

bool Comm::iprobe(int src, int tag) {
  // Service first so a frame sitting in the queue enveloped (or a pending
  // ack/nack) is processed before the probe answers — otherwise a drain
  // loop over iprobe would spin on an undeliverable message forever.
  service_reliable();
  auto& box = world_->mailboxes_[static_cast<std::size_t>(rank_)];
  std::lock_guard lock(box.m);
  return std::any_of(box.q.begin(), box.q.end(),
                     [&](const detail::Message& m) { return matches(m, src, tag); });
}

std::vector<Bytes> Comm::exchange_slots(Bytes mine, Op op) {
  if (stats_enabled_) {
    auto& st = stats();
    st.record_call(op);
    // Logically, this rank's contribution travels to size()-1 peers —
    // classified per peer against the topology — in n-1 sequential steps
    // (the linear schedule this refactor makes selectable-but-not-default).
    for (int d = 0; d < size(); ++d) {
      if (d == rank_) {
        st.record_send(op, mine.size(), false, false);
      } else {
        st.record_send(op, mine.size(), true, !world_->topo_.same_node(rank_, d));
      }
    }
    if (size() > 1) st.record_steps(op, static_cast<std::uint64_t>(size() - 1));
  }

  world_->slots_[static_cast<std::size_t>(rank_)] = std::move(mine);
  timed_barrier_wait();
  std::vector<Bytes> all(world_->slots_.begin(), world_->slots_.end());  // copies
  timed_barrier_wait();
  return all;
}

std::vector<Bytes> Comm::allgatherv(std::span<const std::byte> mine) {
  return gather_blocks(Bytes(mine.begin(), mine.end()), Op::kAllgather);
}

void Comm::reliable_send(int dst, int tag, Bytes payload) {
  auto& box = world_->mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lock(box.m);
    enqueue_locked(box, detail::Message{rank_, tag, std::move(payload)});
  }
  box.cv.notify_all();
}

std::vector<Bytes> Comm::gather_blocks(Bytes mine, Op op) {
  const int n = size();
  if (n == 1) {
    if (stats_enabled_) {
      auto& st = stats();
      st.record_call(op);
      st.record_send(op, mine.size(), false, false);
    }
    std::vector<Bytes> out;
    out.push_back(std::move(mine));
    return out;
  }
  const CollectiveSchedule sched = world_->schedule_;
  const bool pow2 = (n & (n - 1)) == 0;
  if (sched == CollectiveSchedule::kLinear) return exchange_slots(std::move(mine), op);

  // Log-step schedules run real point-to-point rounds over the mailboxes.
  // Byte accounting is payload-only (the src/len relay envelope is the
  // simulation's encoding, not modelled traffic): recursive doubling and
  // swing ship 1 + 2 + ... + n/2 = n-1 blocks per rank, and dissemination
  // truncates its last step to n - 2^floor(log2 n) blocks — so every
  // schedule moves exactly n-1 blocks per rank and the remote byte totals
  // match the linear baseline bit for bit.  Stats are recorded manually
  // (call, per-partner locality, steps, exposed wait); the internal
  // sends/recvs run under StatsPause so the p2p counters stay clean.
  const bool record = stats_enabled_;
  const int tag_base =
      kSchedTagBase +
      static_cast<int>(sched_seq_++ % kSchedTagWindow) * kSchedRoundsPerCall;

  std::vector<Bytes> have(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> present(static_cast<std::size_t>(n), 0);
  have[static_cast<std::size_t>(rank_)] = std::move(mine);
  present[static_cast<std::size_t>(rank_)] = 1;

  auto& st = stats();
  if (record) {
    st.record_call(op);
    st.record_send(op, have[static_cast<std::size_t>(rank_)].size(), false, false);
  }

  double waited = 0;
  std::uint64_t rounds = 0;
  {
    StatsPause pause(*this);

    // Serialize + ship the listed blocks to `to`; account their payload
    // bytes against the partner's locality.
    const auto send_blocks = [&](int to, const std::vector<int>& srcs) {
      BufferWriter w;
      std::uint64_t payload_bytes = 0;
      for (const int s : srcs) {
        const auto& block = have[static_cast<std::size_t>(s)];
        w.put<std::int32_t>(s);
        w.put<std::uint64_t>(block.size());
        w.put_span(std::span<const std::byte>(block));
        payload_bytes += block.size();
      }
      if (record) {
        st.record_send(op, payload_bytes, true, !world_->topo_.same_node(rank_, to));
      }
      reliable_send(to, tag_base + static_cast<int>(rounds), w.take());
    };

    // Receive one relay frame from `from` and absorb its blocks.
    const auto recv_blocks = [&](int from) {
      const double t0 = wall_now();
      const Bytes frame = recv(from, tag_base + static_cast<int>(rounds));
      waited += wall_now() - t0;
      BufferReader r(frame);
      while (!r.done()) {
        const auto src = r.get<std::int32_t>();
        const auto len = r.get<std::uint64_t>();
        if (src < 0 || src >= n || present[static_cast<std::size_t>(src)] != 0) {
          throw std::logic_error("vmpi: scheduled collective relayed a bad block");
        }
        auto& block = have[static_cast<std::size_t>(src)];
        block.resize(static_cast<std::size_t>(len));
        r.get_into(std::span<std::byte>(block));
        present[static_cast<std::size_t>(src)] = 1;
      }
    };

    const auto held = [&]() {
      std::vector<int> srcs;
      for (int s = 0; s < n; ++s) {
        if (present[static_cast<std::size_t>(s)] != 0) srcs.push_back(s);
      }
      return srcs;
    };

    if (pow2 && sched == CollectiveSchedule::kRecursiveDoubling) {
      for (int k = 0; (1 << k) < n; ++k) {
        const int partner = rank_ ^ (1 << k);
        send_blocks(partner, held());
        recv_blocks(partner);
        ++rounds;
      }
    } else if (pow2 && sched == CollectiveSchedule::kSwing) {
      // Signed partner distance rho(k) = (1-(-2)^(k+1))/3 = 1,-1,3,-5,...
      // (rho(k+1) = 1 - 2*rho(k)); even ranks step +rho, odd ranks -rho.
      // Early steps pair nearby ranks, so under a grouped topology most
      // blocks move on intra-node links before the long hops.
      int rho = 1;
      for (int k = 0; (1 << k) < n; ++k) {
        const int step = (rank_ % 2 == 0) ? rho : -rho;
        const int partner = ((rank_ + step) % n + n) % n;
        send_blocks(partner, held());
        recv_blocks(partner);
        rho = 1 - 2 * rho;
        ++rounds;
      }
    } else {
      // Dissemination (Bruck) fallback for non-power-of-two rank counts:
      // after k rounds this rank holds blocks {rank..rank+2^k-1} (mod n);
      // round k ships the first min(2^k, n-2^k) of them to rank-2^k, so
      // the truncated last round still totals exactly n-1 blocks.
      for (int pow = 1; pow < n; pow <<= 1) {
        const int to = ((rank_ - pow) % n + n) % n;
        const int from = (rank_ + pow) % n;
        const int cnt = pow < n - pow ? pow : n - pow;
        std::vector<int> srcs;
        srcs.reserve(static_cast<std::size_t>(cnt));
        for (int j = 0; j < cnt; ++j) srcs.push_back((rank_ + j) % n);
        send_blocks(to, srcs);
        recv_blocks(from);
        ++rounds;
      }
    }
  }

  for (int s = 0; s < n; ++s) {
    if (present[static_cast<std::size_t>(s)] == 0) {
      throw std::logic_error("vmpi: scheduled collective finished incomplete");
    }
  }
  if (record) {
    st.record_steps(op, rounds);
    st.wait_seconds += waited;
  }
  return have;
}

Bytes Comm::bcast(int root, std::span<const std::byte> data) {
  if (stats_enabled_) {
    auto& st = stats();
    st.record_call(Op::kBcast);
    if (rank_ == root) {
      for (int d = 0; d < size(); ++d) {
        if (d == root) continue;
        st.record_send(Op::kBcast, data.size(), true,
                       !world_->topo_.same_node(root, d));
      }
    }
  }
  if (rank_ == root) {
    world_->slots_[static_cast<std::size_t>(root)] = Bytes(data.begin(), data.end());
  }
  timed_barrier_wait();
  Bytes out = world_->slots_[static_cast<std::size_t>(root)];
  timed_barrier_wait();
  return out;
}

std::vector<Bytes> Comm::gatherv(int root, std::span<const std::byte> mine) {
  if (stats_enabled_) {
    auto& st = stats();
    st.record_call(Op::kGather);
    st.record_send(Op::kGather, mine.size(), rank_ != root,
                   rank_ != root && !world_->topo_.same_node(rank_, root));
  }

  world_->slots_[static_cast<std::size_t>(rank_)] = Bytes(mine.begin(), mine.end());
  timed_barrier_wait();
  std::vector<Bytes> all;
  if (rank_ == root) all.assign(world_->slots_.begin(), world_->slots_.end());
  timed_barrier_wait();
  return all;
}

std::vector<Bytes> Comm::alltoallv(std::vector<Bytes> send) {
  const auto n = static_cast<std::size_t>(size());
  assert(send.size() == n && "alltoallv send vector must have one buffer per rank");
  if (stats_enabled_) {
    auto& st = stats();
    st.record_call(Op::kAlltoallv);
    for (std::size_t d = 0; d < n; ++d) {
      const bool remote = d != static_cast<std::size_t>(rank_);
      st.record_send(Op::kAlltoallv, send[d].size(), remote,
                     remote && !world_->topo_.same_node(rank_, static_cast<int>(d)));
    }
    st.record_steps(Op::kAlltoallv, 1);  // one dense matrix phase
  }

  const auto me = static_cast<std::size_t>(rank_);
  for (std::size_t d = 0; d < n; ++d) {
    world_->matrix_[me * n + d] = std::move(send[d]);
  }
  timed_barrier_wait();
  std::vector<Bytes> got(n);
  for (std::size_t s = 0; s < n; ++s) {
    got[s] = std::move(world_->matrix_[s * n + me]);  // each cell read exactly once
  }
  timed_barrier_wait();
  return got;
}

Comm::Ticket Comm::ialltoallv(std::vector<Bytes> send) {
  const auto n = static_cast<std::size_t>(size());
  const auto me = static_cast<std::size_t>(rank_);
  assert(send.size() == n && "ialltoallv send vector must have one buffer per rank");
  if (stats_enabled_) {
    auto& st = stats();
    st.record_call(Op::kAlltoallv);
    for (std::size_t d = 0; d < n; ++d) {
      const bool remote = d != me;
      st.record_send(Op::kAlltoallv, send[d].size(), remote,
                     remote && !world_->topo_.same_node(rank_, static_cast<int>(d)));
    }
    st.record_steps(Op::kAlltoallv, 1);
    st.tickets_posted += 1;
  }

  Ticket t;
  t.active_ = true;
  t.tag_ = kIalltoallvTagBase + static_cast<int>(ialltoallv_seq_++ % kIalltoallvTagWindow);
  t.received_.resize(n);
  t.arrived_.assign(n, 0);
  t.received_[me] = std::move(send[me]);
  t.arrived_[me] = 1;
  t.remaining_ = n - 1;

  // The frames ride the mailboxes; their bytes are already accounted under
  // Op::kAlltoallv above, so the internal p2p must not double-count.
  StatsPause pause(*this);
  for (std::size_t d = 0; d < n; ++d) {
    if (d == me) continue;
    isend(static_cast<int>(d), t.tag_, send[d]);
  }
  return t;
}

void Comm::ticket_deliver(Ticket& ticket, int src, Bytes payload) {
  auto& slot = ticket.arrived_[static_cast<std::size_t>(src)];
  if (slot != 0) {
    // Injected duplicate of a frame this ticket already absorbed: the
    // exchange is idempotent at the frame level, so discard and count.
    stats().dup_frames_discarded += 1;
    return;
  }
  slot = 1;
  ticket.received_[static_cast<std::size_t>(src)] = std::move(payload);
  --ticket.remaining_;
}

std::vector<Bytes> Comm::wait(Ticket& ticket) {
  if (!ticket.active_) {
    throw std::logic_error("vmpi: wait() on an inactive ialltoallv ticket "
                           "(already waited, or never posted)");
  }
  const double t0 = wall_now();
  {
    StatsPause pause(*this);
    while (ticket.remaining_ > 0) {
      int src = 0;
      Bytes payload = recv(kAnySource, ticket.tag_, &src);
      ticket_deliver(ticket, src, std::move(payload));
    }
    // Injected duplicates of frames we already consumed may still be
    // queued under this tag; every duplicate of a delivered original is
    // published with it under one lock, so this drain is deterministic
    // and leaves nothing of this exchange behind to pollute a later
    // ticket reusing the tag window.
    while (iprobe(kAnySource, ticket.tag_)) {
      int src = 0;
      Bytes payload = recv(kAnySource, ticket.tag_, &src);
      ticket_deliver(ticket, src, std::move(payload));
    }
  }
  if (stats_enabled_) {
    auto& st = stats();
    st.wait_seconds += wall_now() - t0;
    st.tickets_completed += 1;
  }
  ticket.active_ = false;
  return std::move(ticket.received_);
}

bool Comm::test(Ticket& ticket) {
  if (!ticket.active_) {
    throw std::logic_error("vmpi: test() on an inactive ialltoallv ticket "
                           "(already waited, or never posted)");
  }
  StatsPause pause(*this);
  while (iprobe(kAnySource, ticket.tag_)) {
    int src = 0;
    Bytes payload = recv(kAnySource, ticket.tag_, &src);
    ticket_deliver(ticket, src, std::move(payload));
  }
  return ticket.remaining_ == 0;
}

std::vector<Bytes> Comm::alltoallv_bruck(std::vector<Bytes> send) {
  const int n = size();
  assert(send.size() == static_cast<std::size_t>(n));
  if (stats_enabled_) {
    stats().record_call(Op::kAlltoallv);
    std::uint64_t rounds = 0;
    for (int k = 0; (1 << k) < n; ++k) ++rounds;
    if (rounds > 0) stats().record_steps(Op::kAlltoallv, rounds);
  }

  // Item pool: (final destination, source, payload).  Self-destined data
  // never leaves the rank.
  struct Item {
    int dst;
    int src;
    Bytes payload;
  };
  std::vector<Item> pool;
  for (int d = 0; d < n; ++d) {
    if (!send[static_cast<std::size_t>(d)].empty()) {
      pool.push_back(Item{d, rank_, std::move(send[static_cast<std::size_t>(d)])});
    }
  }

  // log2-ceil rounds; tags carry the call sequence and the round number so
  // neither interleaved calls nor an injected duplicate/delay surviving
  // into a later Bruck exchange can cross-match.
  const int tag_base =
      kBruckTagBase +
      static_cast<int>(bruck_seq_++ % kBruckTagWindow) * kBruckRoundsPerCall;
  for (int k = 0; (1 << k) < n; ++k) {
    const int hop = 1 << k;
    const int to = (rank_ + hop) % n;
    const int from = (rank_ - hop + n) % n;

    BufferWriter w;
    std::vector<Item> keep;
    for (auto& item : pool) {
      const int offset = (item.dst - rank_ + n) % n;
      if ((offset & hop) != 0) {
        w.put<std::int32_t>(item.dst);
        w.put<std::int32_t>(item.src);
        w.put<std::uint64_t>(item.payload.size());
        w.put_span(std::span<const std::byte>(item.payload));
      } else {
        keep.push_back(std::move(item));
      }
    }
    pool = std::move(keep);

    const auto outgoing = w.take();
    isend(to, tag_base + k, outgoing);
    const auto incoming = recv(from, tag_base + k);
    // Relay frames cross multiple hops, so a corrupted length or rank
    // field must surface as a typed decode error rather than feed the
    // unchecked reader.
    std::size_t pos = 0;
    const auto take = [&](std::size_t want) -> const std::byte* {
      if (incoming.size() - pos < want) {
        throw FrameDecodeError("vmpi: truncated Bruck relay frame");
      }
      const std::byte* p = incoming.data() + pos;
      pos += want;
      return p;
    };
    while (pos < incoming.size()) {
      Item item;
      std::int32_t dst32 = 0;
      std::int32_t src32 = 0;
      std::uint64_t len = 0;
      std::memcpy(&dst32, take(sizeof dst32), sizeof dst32);
      std::memcpy(&src32, take(sizeof src32), sizeof src32);
      std::memcpy(&len, take(sizeof len), sizeof len);
      if (dst32 < 0 || dst32 >= n || src32 < 0 || src32 >= n) {
        throw FrameDecodeError("vmpi: Bruck relay rank out of range");
      }
      if (len > incoming.size() - pos) {
        throw FrameDecodeError("vmpi: Bruck relay payload length overruns frame");
      }
      item.dst = dst32;
      item.src = src32;
      const std::byte* p = take(static_cast<std::size_t>(len));
      item.payload.assign(p, p + len);
      pool.push_back(std::move(item));
    }
  }

  std::vector<Bytes> out(static_cast<std::size_t>(n));
  for (auto& item : pool) {
    if (item.dst != rank_) {
      throw FrameDecodeError("vmpi: Bruck routing delivered a misrouted item");
    }
    auto& buf = out[static_cast<std::size_t>(item.src)];
    buf.insert(buf.end(), item.payload.begin(), item.payload.end());
  }
  // Fence: prevents tag reuse across back-to-back Bruck calls and keeps
  // collective symmetry with the dense alltoallv.
  barrier();
  return out;
}

Comm::Split Comm::split(int color, int key) {
  const auto epoch = split_epoch_++;

  // Gather (color, key) from everyone; membership and ordering are then
  // known identically on every rank.
  struct ColorKey {
    std::int32_t color;
    std::int32_t key;
  };
  const auto all = allgather<ColorKey>(ColorKey{color, key});

  std::vector<std::pair<std::pair<int, int>, int>> members;  // ((key, rank), rank)
  for (int r = 0; r < size(); ++r) {
    const auto& ck = all[static_cast<std::size_t>(r)];
    if (ck.color == color) members.push_back({{ck.key, r}, r});
  }
  std::sort(members.begin(), members.end());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].second == rank_) my_new_rank = static_cast<int>(i);
  }
  assert(my_new_rank >= 0);

  // The group leader publishes the child world; everyone meets at a parent
  // barrier before fetching it.
  if (my_new_rank == 0) {
    auto child = std::make_shared<World>(static_cast<int>(members.size()));
    // The child inherits the parent's collective schedule; its topology
    // stays flat (parent node boundaries do not map onto child ranks).
    child->set_schedule(world_->schedule_);
    std::lock_guard lock(world_->split_mu_);
    world_->split_worlds_[{epoch, color}] = std::move(child);
  }
  barrier();
  std::shared_ptr<World> child;
  {
    std::lock_guard lock(world_->split_mu_);
    child = world_->split_worlds_.at({epoch, color});
  }
  barrier();
  // Last fetcher cleans up the rendezvous entry (leader does it after the
  // second barrier, when all members hold their shared_ptr).
  if (my_new_rank == 0) {
    std::lock_guard lock(world_->split_mu_);
    world_->split_worlds_.erase({epoch, color});
  }
  return Split(std::move(child), my_new_rank);
}

}  // namespace paralagg::vmpi

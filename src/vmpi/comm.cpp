#include "vmpi/comm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace paralagg::vmpi {

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

World::World(int nranks)
    : nranks_(nranks),
      barrier_(nranks),
      slots_(static_cast<std::size_t>(nranks)),
      matrix_(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks)),
      mailboxes_(static_cast<std::size_t>(nranks)),
      stats_(static_cast<std::size_t>(nranks)) {
  assert(nranks >= 1);
}

void World::abort() {
  barrier_.abort();
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box.m);
    box.aborted = true;
    box.cv.notify_all();
  }
}

CommStats World::total_stats() const {
  CommStats total;
  for (const auto& s : stats_) total += s;
  return total;
}

void Comm::timed_barrier_wait() {
  const double t0 = wall_now();
  try {
    world_->barrier_.arrive_and_wait();
  } catch (...) {
    if (stats_enabled_) stats().wait_seconds += wall_now() - t0;
    throw;
  }
  if (stats_enabled_) stats().wait_seconds += wall_now() - t0;
}

void Comm::barrier() {
  if (stats_enabled_) stats().record_call(Op::kBarrier);
  timed_barrier_wait();
}

void Comm::isend(int dst, int tag, std::span<const std::byte> data) {
  assert(dst >= 0 && dst < size());
  if (stats_enabled_) {
    auto& st = stats();
    st.record_call(Op::kP2P);
    st.record_send(Op::kP2P, data.size(), dst != rank_);
    st.messages_sent += 1;
  }

  auto& box = world_->mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lock(box.m);
    box.q.push_back(detail::Message{rank_, tag, Bytes(data.begin(), data.end())});
  }
  box.cv.notify_all();
}

namespace {

bool matches(const detail::Message& m, int src, int tag) {
  return (src == kAnySource || m.src == src) && (tag == kAnyTag || m.tag == tag);
}

}  // namespace

Bytes Comm::recv(int src, int tag, int* out_src, int* out_tag) {
  auto& box = world_->mailboxes_[static_cast<std::size_t>(rank_)];
  const double t0 = wall_now();
  std::unique_lock lock(box.m);
  for (;;) {
    auto it = std::find_if(box.q.begin(), box.q.end(),
                           [&](const detail::Message& m) { return matches(m, src, tag); });
    if (it != box.q.end()) {
      detail::Message m = std::move(*it);
      box.q.erase(it);
      if (out_src != nullptr) *out_src = m.src;
      if (out_tag != nullptr) *out_tag = m.tag;
      if (stats_enabled_) {
        auto& st = stats();
        st.messages_received += 1;
        st.p2p_bytes_received += m.payload.size();
        st.wait_seconds += wall_now() - t0;
      }
      return std::move(m.payload);
    }
    if (box.aborted) throw WorldAborted{};
    box.cv.wait(lock, [&] {
      return box.aborted ||
             std::any_of(box.q.begin(), box.q.end(),
                         [&](const detail::Message& m) { return matches(m, src, tag); });
    });
  }
}

bool Comm::iprobe(int src, int tag) {
  auto& box = world_->mailboxes_[static_cast<std::size_t>(rank_)];
  std::lock_guard lock(box.m);
  return std::any_of(box.q.begin(), box.q.end(),
                     [&](const detail::Message& m) { return matches(m, src, tag); });
}

std::vector<Bytes> Comm::exchange_slots(Bytes mine, Op op) {
  if (stats_enabled_) {
    auto& st = stats();
    st.record_call(op);
    // Logically, this rank's contribution travels to size()-1 peers.
    st.record_send(op, mine.size() * static_cast<std::size_t>(size() - 1), true);
    st.record_send(op, mine.size(), false);
  }

  world_->slots_[static_cast<std::size_t>(rank_)] = std::move(mine);
  timed_barrier_wait();
  std::vector<Bytes> all(world_->slots_.begin(), world_->slots_.end());  // copies
  timed_barrier_wait();
  return all;
}

std::vector<Bytes> Comm::allgatherv(std::span<const std::byte> mine) {
  return exchange_slots(Bytes(mine.begin(), mine.end()), Op::kAllgather);
}

Bytes Comm::bcast(int root, std::span<const std::byte> data) {
  if (stats_enabled_) {
    auto& st = stats();
    st.record_call(Op::kBcast);
    if (rank_ == root) {
      st.record_send(Op::kBcast, data.size() * static_cast<std::size_t>(size() - 1), true);
    }
  }
  if (rank_ == root) {
    world_->slots_[static_cast<std::size_t>(root)] = Bytes(data.begin(), data.end());
  }
  timed_barrier_wait();
  Bytes out = world_->slots_[static_cast<std::size_t>(root)];
  timed_barrier_wait();
  return out;
}

std::vector<Bytes> Comm::gatherv(int root, std::span<const std::byte> mine) {
  if (stats_enabled_) {
    auto& st = stats();
    st.record_call(Op::kGather);
    st.record_send(Op::kGather, mine.size(), rank_ != root);
  }

  world_->slots_[static_cast<std::size_t>(rank_)] = Bytes(mine.begin(), mine.end());
  timed_barrier_wait();
  std::vector<Bytes> all;
  if (rank_ == root) all.assign(world_->slots_.begin(), world_->slots_.end());
  timed_barrier_wait();
  return all;
}

std::vector<Bytes> Comm::alltoallv(std::vector<Bytes> send) {
  const auto n = static_cast<std::size_t>(size());
  assert(send.size() == n && "alltoallv send vector must have one buffer per rank");
  if (stats_enabled_) {
    auto& st = stats();
    st.record_call(Op::kAlltoallv);
    for (std::size_t d = 0; d < n; ++d) {
      st.record_send(Op::kAlltoallv, send[d].size(), d != static_cast<std::size_t>(rank_));
    }
  }

  const auto me = static_cast<std::size_t>(rank_);
  for (std::size_t d = 0; d < n; ++d) {
    world_->matrix_[me * n + d] = std::move(send[d]);
  }
  timed_barrier_wait();
  std::vector<Bytes> got(n);
  for (std::size_t s = 0; s < n; ++s) {
    got[s] = std::move(world_->matrix_[s * n + me]);  // each cell read exactly once
  }
  timed_barrier_wait();
  return got;
}

Comm::Ticket Comm::ialltoallv(std::vector<Bytes> send) {
  const auto n = static_cast<std::size_t>(size());
  const auto me = static_cast<std::size_t>(rank_);
  assert(send.size() == n && "ialltoallv send vector must have one buffer per rank");
  if (stats_enabled_) {
    auto& st = stats();
    st.record_call(Op::kAlltoallv);
    for (std::size_t d = 0; d < n; ++d) {
      st.record_send(Op::kAlltoallv, send[d].size(), d != me);
    }
    st.tickets_posted += 1;
  }

  Ticket t;
  t.active_ = true;
  t.tag_ = kIalltoallvTagBase + static_cast<int>(ialltoallv_seq_++ % kIalltoallvTagWindow);
  t.received_.resize(n);
  t.arrived_.assign(n, 0);
  t.received_[me] = std::move(send[me]);
  t.arrived_[me] = 1;
  t.remaining_ = n - 1;

  // The frames ride the mailboxes; their bytes are already accounted under
  // Op::kAlltoallv above, so the internal p2p must not double-count.
  StatsPause pause(*this);
  for (std::size_t d = 0; d < n; ++d) {
    if (d == me) continue;
    isend(static_cast<int>(d), t.tag_, send[d]);
  }
  return t;
}

void Comm::ticket_deliver(Ticket& ticket, int src, Bytes payload) {
  auto& slot = ticket.arrived_[static_cast<std::size_t>(src)];
  assert(slot == 0 && "duplicate ialltoallv frame from one source");
  slot = 1;
  ticket.received_[static_cast<std::size_t>(src)] = std::move(payload);
  --ticket.remaining_;
}

std::vector<Bytes> Comm::wait(Ticket& ticket) {
  assert(ticket.active_ && "wait on an inactive ticket");
  const double t0 = wall_now();
  {
    StatsPause pause(*this);
    while (ticket.remaining_ > 0) {
      int src = 0;
      Bytes payload = recv(kAnySource, ticket.tag_, &src);
      ticket_deliver(ticket, src, std::move(payload));
    }
  }
  if (stats_enabled_) {
    auto& st = stats();
    st.wait_seconds += wall_now() - t0;
    st.tickets_completed += 1;
  }
  ticket.active_ = false;
  return std::move(ticket.received_);
}

bool Comm::test(Ticket& ticket) {
  assert(ticket.active_ && "test on an inactive ticket");
  StatsPause pause(*this);
  while (ticket.remaining_ > 0 && iprobe(kAnySource, ticket.tag_)) {
    int src = 0;
    Bytes payload = recv(kAnySource, ticket.tag_, &src);
    ticket_deliver(ticket, src, std::move(payload));
  }
  return ticket.remaining_ == 0;
}

std::vector<Bytes> Comm::alltoallv_bruck(std::vector<Bytes> send) {
  const int n = size();
  assert(send.size() == static_cast<std::size_t>(n));
  if (stats_enabled_) stats().record_call(Op::kAlltoallv);

  // Item pool: (final destination, source, payload).  Self-destined data
  // never leaves the rank.
  struct Item {
    int dst;
    int src;
    Bytes payload;
  };
  std::vector<Item> pool;
  for (int d = 0; d < n; ++d) {
    if (!send[static_cast<std::size_t>(d)].empty()) {
      pool.push_back(Item{d, rank_, std::move(send[static_cast<std::size_t>(d)])});
    }
  }

  // log2-ceil rounds; tags carry the round number so interleaved calls on
  // the same communicator cannot cross-match.
  for (int k = 0; (1 << k) < n; ++k) {
    const int hop = 1 << k;
    const int to = (rank_ + hop) % n;
    const int from = (rank_ - hop + n) % n;

    BufferWriter w;
    std::vector<Item> keep;
    for (auto& item : pool) {
      const int offset = (item.dst - rank_ + n) % n;
      if ((offset & hop) != 0) {
        w.put<std::int32_t>(item.dst);
        w.put<std::int32_t>(item.src);
        w.put<std::uint64_t>(item.payload.size());
        w.put_span(std::span<const std::byte>(item.payload));
      } else {
        keep.push_back(std::move(item));
      }
    }
    pool = std::move(keep);

    const auto outgoing = w.take();
    isend(to, /*tag=*/0x42000000 + k, outgoing);
    const auto incoming = recv(from, 0x42000000 + k);
    BufferReader r(incoming);
    while (!r.done()) {
      Item item;
      item.dst = r.get<std::int32_t>();
      item.src = r.get<std::int32_t>();
      item.payload.resize(r.get<std::uint64_t>());
      r.get_into(std::span<std::byte>(item.payload));
      pool.push_back(std::move(item));
    }
  }

  std::vector<Bytes> out(static_cast<std::size_t>(n));
  for (auto& item : pool) {
    assert(item.dst == rank_ && "Bruck routing failed to deliver an item");
    auto& buf = out[static_cast<std::size_t>(item.src)];
    buf.insert(buf.end(), item.payload.begin(), item.payload.end());
  }
  // Fence: prevents tag reuse across back-to-back Bruck calls and keeps
  // collective symmetry with the dense alltoallv.
  barrier();
  return out;
}

Comm::Split Comm::split(int color, int key) {
  const auto epoch = split_epoch_++;

  // Gather (color, key) from everyone; membership and ordering are then
  // known identically on every rank.
  struct ColorKey {
    std::int32_t color;
    std::int32_t key;
  };
  const auto all = allgather<ColorKey>(ColorKey{color, key});

  std::vector<std::pair<std::pair<int, int>, int>> members;  // ((key, rank), rank)
  for (int r = 0; r < size(); ++r) {
    const auto& ck = all[static_cast<std::size_t>(r)];
    if (ck.color == color) members.push_back({{ck.key, r}, r});
  }
  std::sort(members.begin(), members.end());
  int my_new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].second == rank_) my_new_rank = static_cast<int>(i);
  }
  assert(my_new_rank >= 0);

  // The group leader publishes the child world; everyone meets at a parent
  // barrier before fetching it.
  if (my_new_rank == 0) {
    auto child = std::make_shared<World>(static_cast<int>(members.size()));
    std::lock_guard lock(world_->split_mu_);
    world_->split_worlds_[{epoch, color}] = std::move(child);
  }
  barrier();
  std::shared_ptr<World> child;
  {
    std::lock_guard lock(world_->split_mu_);
    child = world_->split_worlds_.at({epoch, color});
  }
  barrier();
  // Last fetcher cleans up the rendezvous entry (leader does it after the
  // second barrier, when all members hold their shared_ptr).
  if (my_new_rank == 0) {
    std::lock_guard lock(world_->split_mu_);
    world_->split_worlds_.erase({epoch, color});
  }
  return Split(std::move(child), my_new_rank);
}

}  // namespace paralagg::vmpi

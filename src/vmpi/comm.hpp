#pragma once

// Virtual MPI communicator.
//
// PARALAGG as published runs on real MPI (OpenMPI / Cray MPICH on Theta).
// This substrate reproduces the subset of MPI the engine uses — blocking
// and nonblocking point-to-point, barrier, allreduce, allgather(v), bcast,
// gather(v), alltoall(v) — with ranks realised as OS threads inside one
// process.  Semantics follow MPI: every transfer is a *copy* between
// logically disjoint per-rank address spaces, collectives are collective
// (every rank of the communicator must call them, in the same order), and
// results are deterministic (reductions fold in rank order).
//
// Why a substrate and not a mock: the engine's communication pattern (who
// sends how many bytes to whom, in which phase) *is* the paper's subject.
// Running the real pattern through a real exchange, with byte-exact
// accounting, preserves everything the evaluation measures except absolute
// wall-clock — which a 1-core container could not reproduce anyway.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "vmpi/fault.hpp"
#include "vmpi/reliable.hpp"
#include "vmpi/serialize.hpp"
#include "vmpi/stats.hpp"
#include "vmpi/topology.hpp"

namespace paralagg::vmpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Deterministic reduction operators for typed allreduce.
enum class ReduceOp : std::uint8_t { kSum, kMin, kMax, kLand, kLor };

/// Thrown inside blocked ranks when a peer rank failed: without this, one
/// rank dying with an exception would leave the others waiting forever at
/// the next barrier.  (Real MPI has the same hazard; mpirun kills the job.)
struct WorldAborted : std::exception {
  const char* what() const noexcept override { return "vmpi: a peer rank aborted"; }
};

namespace detail {

/// Internal wake reasons for watchdog-bounded waits; converted by Comm
/// into TimeoutError (with a stats snapshot) before they leave vmpi.
struct WaitTimeout {};  // this waiter's own deadline expired
struct FaultWake {};    // a peer's timeout / fault poisoned the world

/// Classic generation-counting barrier (condition-variable based; the
/// container has one physical core, so spinning would be pathological).
/// Abortable two ways: `abort()` releases all current and future waiters
/// with WorldAborted (a peer rank died with an exception); `fault_abort()`
/// releases them with FaultWake (a peer hit its watchdog deadline or an
/// injected fault — the typed-failure path).  A waiter whose own
/// `timeout_seconds` expires first leaves with WaitTimeout.
class Barrier {
 public:
  explicit Barrier(int n) : n_(n) {}

  void arrive_and_wait(double timeout_seconds = 0) {
    std::unique_lock lock(m_);
    if (aborted_) throw WorldAborted{};
    if (faulted_) throw FaultWake{};
    const auto my_gen = gen_;
    if (++arrived_ == n_) {
      arrived_ = 0;
      ++gen_;
      cv_.notify_all();
      return;
    }
    const auto pred = [&] { return gen_ != my_gen || aborted_ || faulted_; };
    if (timeout_seconds > 0) {
      if (!cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds), pred)) {
        // Withdraw our arrival so the count cannot complete a generation
        // we already gave up on (the caller fault-aborts the world next).
        if (gen_ == my_gen && arrived_ > 0) --arrived_;
        throw WaitTimeout{};
      }
    } else {
      cv_.wait(lock, pred);
    }
    if (gen_ == my_gen) {
      if (aborted_) throw WorldAborted{};
      if (faulted_) throw FaultWake{};
    }
  }

  /// As arrive_and_wait, but slices the park so `service` (the reliable
  /// transport pump) keeps running while this rank waits: a barrier is
  /// exactly where a sender with unacked frames would otherwise go silent
  /// and starve its peers' heals.  `service` runs with the barrier lock
  /// dropped and this rank's arrival retained (the generation may complete
  /// underneath — that is fine, the arrival already counted); returning
  /// true (healing progress) re-arms the watchdog deadline, so a long heal
  /// under a generous retry budget cannot trip it spuriously.  The slice
  /// must be short relative to the retry backoff: control-frame arrivals
  /// wake the mailbox cv, not this one.
  void arrive_and_wait_serviced(double timeout_seconds, double slice_seconds,
                                const std::function<bool()>& service) {
    std::unique_lock lock(m_);
    if (aborted_) throw WorldAborted{};
    if (faulted_) throw FaultWake{};
    const auto my_gen = gen_;
    if (++arrived_ == n_) {
      arrived_ = 0;
      ++gen_;
      cv_.notify_all();
      return;
    }
    const auto pred = [&] { return gen_ != my_gen || aborted_ || faulted_; };
    auto armed = std::chrono::steady_clock::now();
    for (;;) {
      if (cv_.wait_for(lock, std::chrono::duration<double>(slice_seconds), pred)) break;
      lock.unlock();
      bool progressed = false;
      try {
        progressed = service();
      } catch (...) {
        lock.lock();
        if (gen_ == my_gen && arrived_ > 0) --arrived_;
        throw;
      }
      lock.lock();
      if (pred()) break;
      if (progressed) armed = std::chrono::steady_clock::now();
      if (timeout_seconds > 0 && std::chrono::steady_clock::now() - armed >
                                     std::chrono::duration<double>(timeout_seconds)) {
        if (gen_ == my_gen && arrived_ > 0) --arrived_;
        throw WaitTimeout{};
      }
    }
    if (gen_ == my_gen) {
      if (aborted_) throw WorldAborted{};
      if (faulted_) throw FaultWake{};
    }
  }

  void abort() {
    std::lock_guard lock(m_);
    aborted_ = true;
    cv_.notify_all();
  }

  void fault_abort() {
    std::lock_guard lock(m_);
    faulted_ = true;
    cv_.notify_all();
  }

  /// Clear fault poisoning (the serving engine's post-rollback world
  /// reset).  Waiters a fault released never withdrew their arrivals, so
  /// the count and generation are re-zeroed together.
  void reset_fault() {
    std::lock_guard lock(m_);
    faulted_ = false;
    arrived_ = 0;
    ++gen_;
    cv_.notify_all();
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  int n_;
  int arrived_ = 0;
  bool aborted_ = false;
  bool faulted_ = false;
  std::uint64_t gen_ = 0;
};

struct Message {
  int src;
  int tag;
  Bytes payload;
  /// True while the payload is still wrapped in a ReliableChannel
  /// envelope: invisible to recv / iprobe matching until the receiver's
  /// service pass strips (fresh frame) or consumes (dup, corrupt) it.
  bool enveloped = false;
};

/// Deliverable to the application — reliable-layer frames are not, even
/// under the kAnySource / kAnyTag wildcards.
inline bool deliverable(const Message& m) {
  return !m.enveloped && m.tag != kReliableCtrlTag;
}

struct Mailbox {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Message> q;
  bool aborted = false;
  bool faulted = false;
  /// Count of queued messages that are NOT deliverable (enveloped data +
  /// control frames); lets consumers skip the service scan when zero.
  std::size_t undelivered = 0;
};

}  // namespace detail

/// Shared state for one group of ranks.  Constructed once, handed to every
/// rank thread; all members are synchronised internally.
class World {
 public:
  explicit World(int nranks);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const { return nranks_; }

  /// Wake every rank blocked in a barrier or recv; they throw WorldAborted.
  /// Called by the runtime when a rank exits exceptionally.
  void abort();

  /// Typed-failure twin of abort(): wake every blocked rank so each throws
  /// a TimeoutError instead of hanging.  Called by the rank whose watchdog
  /// fired (or that detected a corrupt frame); idempotent and thread-safe.
  /// The world stays poisoned — any later blocking call fails fast — so
  /// callers must not attempt further collectives after catching.
  void fault_abort();

  /// Install the fault schedule.  Call before the rank threads start
  /// communicating (vmpi::run does this from RunOptions); the plan is
  /// read-only afterwards.
  void set_fault_plan(const FaultPlan& plan) { plan_ = plan; }
  [[nodiscard]] const FaultPlan& fault_plan() const { return plan_; }

  /// Retransmit budget for the self-healing transport (vmpi/reliable.hpp);
  /// like the fault plan, installed before the rank threads start.  The
  /// channel engages only when the plan faults messages, so a clean world
  /// pays nothing; max_attempts = 0 is the legacy fail-stop escape hatch.
  void set_retry(const RetryPolicy& r) { retry_ = r; }
  [[nodiscard]] const RetryPolicy& retry() const { return retry_; }

  /// Collective un-poisoning after a typed abort — the serving engine's
  /// batch rollback needs it, because lookups are collectives and serving
  /// after an aborted batch requires a clean world.  Every live rank must
  /// call this; the last arrival clears the barrier/mailbox poison and
  /// purges stranded messages and collective slots while all peers are
  /// parked here (so no rank is mid-send).  Returns false if the
  /// rendezvous does not complete within `timeout_seconds` (a rank is
  /// truly gone): the world stays poisoned and the caller must stop
  /// serving.  abort() poisoning (real process death) is not resettable.
  bool fault_reset(double timeout_seconds);

  /// Deadline (seconds) for every blocking wait: barrier / collective
  /// rendezvous, recv, ticket wait.  0 disables the watchdog (the
  /// default — fault-free runs must not pay spurious wakeups).
  void set_watchdog(double seconds) { watchdog_seconds_ = seconds; }
  [[nodiscard]] double watchdog_seconds() const { return watchdog_seconds_; }

  /// Install the rank-to-node grouping (vmpi/topology.hpp).  Like the
  /// fault plan: set before the rank threads start, read-only afterwards.
  /// Pure accounting — no data moves differently — but every remote byte
  /// is classified intra- vs cross-node against it.
  void set_topology(const Topology& topo) { topo_ = topo; }
  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// Select the schedule the symmetric collectives run on (default:
  /// recursive doubling).  Same bit-identical results on any schedule;
  /// only step counts and byte locality differ.
  void set_schedule(CollectiveSchedule s) { schedule_ = s; }
  [[nodiscard]] CollectiveSchedule schedule() const { return schedule_; }

  /// Aggregate of all per-rank stats (call only after the ranks joined).
  [[nodiscard]] CommStats total_stats() const;
  [[nodiscard]] const CommStats& stats_of(int rank) const { return stats_[static_cast<std::size_t>(rank)]; }

 private:
  friend class Comm;

  int nranks_;
  FaultPlan plan_;
  RetryPolicy retry_{};
  Topology topo_{};
  CollectiveSchedule schedule_ = CollectiveSchedule::kRecursiveDoubling;
  double watchdog_seconds_ = 0;
  detail::Barrier barrier_;
  // Rendezvous for fault_reset: poison-immune counter/cv pair (the barrier
  // itself may be the thing being reset).
  std::mutex reset_mu_;
  std::condition_variable reset_cv_;
  int reset_arrived_ = 0;
  std::uint64_t reset_gen_ = 0;
  // Collective exchange area: slot per rank, double-barrier protected.
  std::vector<Bytes> slots_;
  // alltoallv exchange matrix: cell (src, dst).
  std::vector<Bytes> matrix_;
  std::vector<detail::Mailbox> mailboxes_;
  std::vector<CommStats> stats_;
  // Rendezvous for Comm::split: (split epoch, color) -> child world.
  std::mutex split_mu_;
  std::map<std::pair<std::uint64_t, int>, std::shared_ptr<World>> split_worlds_;
};

/// Per-rank communicator handle.  Exactly one per rank thread; not shared
/// across threads.  All collective calls must be made by every rank of the
/// world in the same order (MPI semantics).
class Comm {
 public:
  Comm(World& world, int rank) : world_(&world), rank_(rank) {
    if (world.plan_.faults_messages() && world.retry_.enabled()) {
      channel_ = std::make_unique<ReliableChannel>(
          rank, world.size(), world.retry_, &world.stats_[static_cast<std::size_t>(rank)]);
    }
  }
  /// A dying rank must not strand messages an injected delay held back:
  /// peers blocked on them would otherwise only learn via the watchdog.
  /// Likewise the reliable channel gets one best-effort final pump so
  /// pending acks and retransmits ship before this rank goes silent
  /// (escalation is meaningless mid-destruction and is swallowed).
  ~Comm() {
    flush_delayed();
    if (channel_) {
      try {
        service_reliable();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
    }
  }
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;
  Comm(Comm&&) = default;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return world_->size(); }
  [[nodiscard]] bool is_root() const { return rank_ == 0; }
  [[nodiscard]] CommStats& stats() { return world_->stats_[static_cast<std::size_t>(rank_)]; }
  [[nodiscard]] World& world() { return *world_; }
  [[nodiscard]] double watchdog_seconds() const { return world_->watchdog_seconds_; }
  [[nodiscard]] const Topology& topology() const { return world_->topo_; }
  [[nodiscard]] CollectiveSchedule schedule() const { return world_->schedule_; }

  /// Record `bytes` moved toward `dst` under `op`, locality-classified
  /// against the world topology (self -> local, same node -> intra-node
  /// remote, otherwise cross-node remote).  No-op under StatsPause.  For
  /// callers (the hierarchical router) that move data over raw p2p legs
  /// but attribute it to a collective op.
  void account_send(Op op, std::uint64_t bytes, int dst) {
    if (!stats_enabled_) return;
    const bool remote = dst != rank_;
    stats().record_send(op, bytes, remote,
                        remote && !world_->topo_.same_node(rank_, dst));
  }
  /// Record schedule steps under `op`; no-op under StatsPause.
  void account_steps(Op op, std::uint64_t n) {
    if (stats_enabled_) stats().record_steps(op, n);
  }

  /// Engines call this at every iteration boundary (BSP) or local round
  /// (async): releases delayed messages, then applies the FaultPlan's
  /// rank-level faults for the new epoch — FaultInjectedDeath on the kill
  /// victim, a sleep on the stall victim.  Cheap no-op without a plan.
  void advance_epoch();
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Release every message an injected delay is still holding back.
  /// Called automatically at each blocking-wait entry (and from
  /// advance_epoch / the destructor), which is what bounds the reorder:
  /// a rank either keeps sending — releasing by sequence — or blocks.
  void flush_delayed();

  /// Toggle byte accounting; returns the previous setting.  Used to keep
  /// instrumentation exchanges (profile gathering, test oracles) out of the
  /// measured communication volume.
  bool set_stats_enabled(bool enabled) {
    const bool prev = stats_enabled_;
    stats_enabled_ = enabled;
    return prev;
  }
  [[nodiscard]] bool stats_enabled() const { return stats_enabled_; }

  /// True when the self-healing transport is engaged on this rank
  /// (message faults configured AND a nonzero retry budget).
  [[nodiscard]] bool reliable_active() const { return channel_ != nullptr; }

  /// Reset this rank's transport state (drop held frames, fresh channel)
  /// and rendezvous with every peer to un-poison the world — the serving
  /// engine's post-rollback path.  Returns false if the rendezvous timed
  /// out; the world then stays poisoned.
  bool fault_reset(double timeout_seconds);

  // -- synchronisation ------------------------------------------------------

  void barrier();

  // -- point-to-point -------------------------------------------------------

  /// Nonblocking-style send: enqueues a copy and returns.  (vmpi buffers
  /// internally, so MPI_Isend and MPI_Send coincide; the engine treats the
  /// call as Isend per the paper.)
  void isend(int dst, int tag, std::span<const std::byte> data);

  /// Blocking receive matching (src, tag); kAnySource / kAnyTag wildcard.
  /// Returns the payload; out_src / out_tag receive the envelope if non-null.
  /// Matching is FIFO over this rank's mailbox: among queued messages that
  /// match the pattern, the earliest-enqueued one is delivered first.
  Bytes recv(int src, int tag, int* out_src = nullptr, int* out_tag = nullptr);

  /// Nonblocking probe: true if a matching message is queued.
  [[nodiscard]] bool iprobe(int src, int tag);

  /// Drain every currently queued message matching `tag` (any source)
  /// without blocking: `on_msg(src, payload)` is invoked per message in
  /// arrival order.  Returns the number of messages delivered.  This is the
  /// iprobe/recv loop every nonblocking consumer would otherwise hand-roll
  /// (the async engine's inbound delta pump).
  template <typename F>
  std::size_t drain(int tag, F&& on_msg) {
    std::size_t delivered = 0;
    int src = 0;
    while (iprobe(kAnySource, tag)) {
      Bytes payload = recv(kAnySource, tag, &src);
      on_msg(src, std::move(payload));
      ++delivered;
    }
    return delivered;
  }

  // -- collectives (byte-level) ---------------------------------------------

  /// Each rank contributes a buffer; every rank gets all buffers, indexed by
  /// rank.
  std::vector<Bytes> allgatherv(std::span<const std::byte> mine);

  /// Root's buffer is copied to every rank.
  Bytes bcast(int root, std::span<const std::byte> data);

  /// Root receives all buffers (indexed by rank); non-roots get empty.
  std::vector<Bytes> gatherv(int root, std::span<const std::byte> mine);

  /// Personalised exchange: send[d] goes to rank d; returns recv[s] from
  /// each rank s.  This is MPI_Alltoallv, the engine's tuple-shuffle
  /// primitive.
  std::vector<Bytes> alltoallv(std::vector<Bytes> send);

  /// In-flight handle for a nonblocking personalised exchange posted by
  /// ialltoallv.  Move-only; complete it exactly once via wait() (test()
  /// may be polled first to make progress without blocking).  wait() or
  /// test() on a ticket already consumed by wait() — or never posted —
  /// throws std::logic_error deterministically, in Release builds too.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&&) = default;
    Ticket& operator=(Ticket&&) = default;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    /// True between the posting ialltoallv() and the wait() that consumed it.
    [[nodiscard]] bool active() const { return active_; }

   private:
    friend class Comm;
    bool active_ = false;
    int tag_ = 0;
    std::size_t remaining_ = 0;            // peers whose buffer has not arrived
    std::vector<Bytes> received_;          // indexed by source rank
    std::vector<std::uint8_t> arrived_;    // per-source arrival flag
  };

  /// Nonblocking personalised exchange (MPI_Ialltoallv): posts send[d]
  /// toward rank d and returns immediately.  Collective in posting order —
  /// every rank's k-th post pairs with every other rank's k-th post — but
  /// there is no rendezvous: a rank completes its ticket as soon as all
  /// peers have *posted*, never waiting for them to complete.  This is the
  /// primitive behind the router's split-phase flush: the caller overlaps
  /// local work between the post and the wait.  Bytes are accounted under
  /// Op::kAlltoallv at post time (one exchange round), exactly like the
  /// blocking variants.
  Ticket ialltoallv(std::vector<Bytes> send);

  /// Block until every peer's buffer arrived; returns recv[s] indexed by
  /// source rank (the self-destined buffer included).  Time parked here is
  /// charged to CommStats::wait_seconds — the *exposed* (un-overlapped)
  /// share of the exchange.  The ticket becomes inactive.
  std::vector<Bytes> wait(Ticket& ticket);

  /// Nonblocking progress: absorbs whatever already arrived and returns
  /// true once the exchange is complete (a subsequent wait() will not
  /// block).
  bool test(Ticket& ticket);

  /// Same contract as alltoallv, routed through ceil(log2 n) point-to-point
  /// rounds (the Bruck algorithm the PARALAGG authors optimise in their
  /// HPDC'22 work, cited by the paper): each rank sends at most one message
  /// per round, relaying items toward their destination by the set bits of
  /// (dst - rank) mod n.  Trades message count (log n vs n-1) for byte
  /// volume (each item is relayed once per set bit) — the right trade for
  /// sparse, latency-bound exchanges.  Received buffers are concatenations
  /// of everything rank s sent to this rank (possibly out of send order).
  std::vector<Bytes> alltoallv_bruck(std::vector<Bytes> send);

  // -- collectives (typed helpers) ------------------------------------------

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T allreduce(T local, ReduceOp op) {
    BufferWriter w(sizeof(T));
    w.put(local);
    // Block allgather on the configured schedule, then a local fold in
    // rank order: the deterministic reduction-order contract holds on
    // every schedule because the fold never depends on arrival order.
    auto all = gather_blocks(w.take(), Op::kAllreduce);
    T acc{};
    bool first = true;
    for (const auto& b : all) {
      BufferReader r(b);
      const T v = r.get<T>();
      if (first) {
        acc = v;
        first = false;
        continue;
      }
      switch (op) {
        case ReduceOp::kSum: acc = static_cast<T>(acc + v); break;
        case ReduceOp::kMin: acc = v < acc ? v : acc; break;
        case ReduceOp::kMax: acc = acc < v ? v : acc; break;
        case ReduceOp::kLand: acc = static_cast<T>(acc && v); break;
        case ReduceOp::kLor: acc = static_cast<T>(acc || v); break;
      }
    }
    return acc;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> allgather(T v) {
    BufferWriter w(sizeof(T));
    w.put(v);
    auto all = gather_blocks(w.take(), Op::kAllgather);
    std::vector<T> out;
    out.reserve(all.size());
    for (const auto& b : all) {
      BufferReader r(b);
      out.push_back(r.get<T>());
    }
    return out;
  }

  /// allgather for CommStats, which the per-edge heal vectors make
  /// non-trivially-copyable: byte-serialized over the same scheduled
  /// collective, so accounting and determinism match allgather<T>.
  std::vector<CommStats> allgather_stats(const CommStats& mine) {
    auto all = gather_blocks(mine.to_bytes(), Op::kAllgather);
    std::vector<CommStats> out;
    out.reserve(all.size());
    for (const auto& b : all) out.push_back(CommStats::from_bytes(b));
    return out;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T bcast_value(int root, T v) {
    BufferWriter w(sizeof(T));
    w.put(v);
    auto b = bcast(root, w.take());
    BufferReader r(b);
    return r.get<T>();
  }

  /// Typed alltoallv over vectors of trivially copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<std::vector<T>> alltoallv_t(const std::vector<std::vector<T>>& send) {
    std::vector<Bytes> raw(send.size());
    for (std::size_t d = 0; d < send.size(); ++d) {
      BufferWriter w(send[d].size() * sizeof(T));
      w.put_span(std::span<const T>(send[d]));
      raw[d] = w.take();
    }
    auto got = alltoallv(std::move(raw));
    std::vector<std::vector<T>> out(got.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
      out[s].resize(got[s].size() / sizeof(T));
      BufferReader r(got[s]);
      r.get_into(std::span<T>(out[s]));
    }
    return out;
  }

  // -- communicator management ------------------------------------------------

  /// MPI_Comm_split: ranks with the same `color` form a child communicator,
  /// ordered by (key, parent rank).  Collective on the parent.  The
  /// returned handle owns the child world; its stats are tracked
  /// separately from the parent's.
  class Split;
  Split split(int color, int key);

 private:
  /// Write `mine` into this rank's slot, barrier, copy out all slots,
  /// barrier.  The kLinear building block for symmetric collectives,
  /// modelled as n-1 sequential steps.
  std::vector<Bytes> exchange_slots(Bytes mine, Op op);

  /// Block allgather under the World's CollectiveSchedule: every rank
  /// contributes one block and receives all n, indexed by rank.  kLinear
  /// routes through exchange_slots; recursive doubling / swing run real
  /// log-step point-to-point rounds over the mailboxes (dissemination for
  /// non-power-of-two rank counts).  Accounting is payload-only — every
  /// schedule ships exactly n-1 blocks per rank, so remote byte totals
  /// are schedule-invariant; steps and locality are what differ.  The
  /// relay legs model MPI's reliable transport underneath collectives:
  /// they bypass fault injection (fault.hpp's scope note).
  std::vector<Bytes> gather_blocks(Bytes mine, Op op);

  /// Direct mailbox enqueue: no fault injection, no stats — the reliable
  /// substrate the scheduled collectives relay over.
  void reliable_send(int dst, int tag, Bytes payload);

  /// arrive_and_wait with the parked wall time charged to wait_seconds,
  /// bounded by the world's watchdog; held (delayed) sends are released
  /// first.  Internal wake sentinels become TimeoutError here.
  void timed_barrier_wait();

  /// Move one arrived ialltoallv message into its ticket slot.  A
  /// duplicate frame (injected dup of an already-delivered source) is
  /// discarded idempotently and counted in dup_frames_discarded.
  void ticket_deliver(Ticket& ticket, int src, Bytes payload);

  /// Enqueue messages for `dst` under the installed FaultPlan: may drop,
  /// duplicate, corrupt, or hold the payload back, and releases held
  /// messages whose delay ran out.  All copies of one logical message are
  /// published under a single mailbox lock, so a duplicate is never
  /// observable without its original already queued ahead of it.
  /// `enveloped` marks reliable-transport frames (both first sends and
  /// retransmits ride this path — every retransmit rolls its own fault).
  void faulted_enqueue(int dst, int tag, Bytes payload, bool enveloped = false);

  /// The reliable-transport pump: strip or consume enveloped frames in
  /// this rank's mailbox (in place — FIFO positions are preserved),
  /// absorb control frames, fire retransmit timers, ship the channel's
  /// outbox, and escalate a retry-budget exhaustion to the typed abort.
  /// Called from every blocking wait's slices, iprobe, isend, and epoch
  /// boundaries; no-op without an engaged channel.
  void service_reliable();

  /// recv when the reliable channel is engaged: a sliced wait that keeps
  /// the transport serviced and re-arms the watchdog deadline on every
  /// healing progress (per retransmit round, not once per call).
  Bytes recv_reliable(int src, int tag, int* out_src, int* out_tag);

  // Dedicated tag space for ialltoallv frames, disjoint from the Bruck
  // relay (0x42......) and the async engine's tags.  The per-Comm sequence
  // counter advances in SPMD order, so concurrent in-flight exchanges
  // cannot cross-match as long as fewer than the window are outstanding.
  static constexpr int kIalltoallvTagBase = 0x41A20000;
  static constexpr std::uint64_t kIalltoallvTagWindow = 4096;

  // Bruck relay tags rotate with a per-call sequence so a duplicated or
  // delayed relay frame from one call can never match a later call's
  // receive (the old fixed 0x42000000+k scheme relied on perfect
  // delivery).  Each call claims kBruckRoundsPerCall consecutive tags.
  static constexpr int kBruckTagBase = 0x42000000;
  static constexpr std::uint64_t kBruckTagWindow = 1024;
  static constexpr int kBruckRoundsPerCall = 64;  // log2(nranks) bound

  // Scheduled-collective relay tags (recursive doubling / swing /
  // dissemination rounds), disjoint from the ialltoallv (0x41A2....),
  // Bruck (0x42......), async (0x51A5..../0x53AF....), and hierarchical
  // router (0x48A.....) spaces.  Rotated per call like the Bruck tags.
  static constexpr int kSchedTagBase = 0x44000000;
  static constexpr std::uint64_t kSchedTagWindow = 2048;
  static constexpr int kSchedRoundsPerCall = 64;  // log2(nranks) bound

  /// Per-destination fault state: the edge's send sequence number and the
  /// messages an injected delay is holding back.
  struct Held {
    int tag;
    Bytes payload;
    std::uint64_t release_at;  // edge seq at/after which the message ships
    bool enveloped = false;
  };
  struct EdgeState {
    std::uint64_t seq = 0;
    std::deque<Held> held;
  };

  World* world_;
  int rank_;
  bool stats_enabled_ = true;
  std::uint64_t split_epoch_ = 0;
  std::uint64_t ialltoallv_seq_ = 0;
  std::uint64_t bruck_seq_ = 0;
  std::uint64_t sched_seq_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<EdgeState> edges_;  // sized lazily when a plan faults messages
  std::unique_ptr<ReliableChannel> channel_;  // engaged when faults + retry > 0
};

/// Owning handle for a child communicator produced by Comm::split.
class Comm::Split {
 public:
  Split(std::shared_ptr<World> world, int rank)
      : world_(std::move(world)), comm_(*world_, rank) {}

  [[nodiscard]] Comm& comm() { return comm_; }
  [[nodiscard]] const Comm& comm() const { return comm_; }

 private:
  std::shared_ptr<World> world_;
  Comm comm_;
};

/// RAII guard suspending byte accounting on a Comm.
class StatsPause {
 public:
  explicit StatsPause(Comm& comm) : comm_(&comm), prev_(comm.set_stats_enabled(false)) {}
  ~StatsPause() { comm_->set_stats_enabled(prev_); }
  StatsPause(const StatsPause&) = delete;
  StatsPause& operator=(const StatsPause&) = delete;

 private:
  Comm* comm_;
  bool prev_;
};

}  // namespace paralagg::vmpi

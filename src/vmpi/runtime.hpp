#pragma once

// SPMD launcher for the virtual MPI substrate.
//
// `run(nranks, fn)` plays the role of `mpirun -n nranks`: it spawns one
// thread per rank, hands each a Comm bound to a fresh World, and joins.
// Exceptions thrown by any rank are captured and the first (by rank order)
// is rethrown on the caller's thread, so a failing assertion inside a rank
// surfaces as an ordinary test failure.

#include <functional>

#include "vmpi/comm.hpp"

namespace paralagg::vmpi {

/// Run `fn(comm)` on `nranks` ranks; blocks until all ranks return.
/// Returns the aggregated communication stats of the whole run.
CommStats run(int nranks, const std::function<void(Comm&)>& fn);

/// As `run`, but also copies each rank's CommStats into `per_rank`.
CommStats run_collect(int nranks, const std::function<void(Comm&)>& fn,
                      std::vector<CommStats>& per_rank);

}  // namespace paralagg::vmpi

#pragma once

// SPMD launcher for the virtual MPI substrate.
//
// `run(nranks, fn)` plays the role of `mpirun -n nranks`: it spawns one
// thread per rank, hands each a Comm bound to a fresh World, and joins.
// Exceptions thrown by any rank are captured and the first (by rank order)
// is rethrown on the caller's thread, so a failing assertion inside a rank
// surfaces as an ordinary test failure.

#include <functional>

#include "vmpi/comm.hpp"

namespace paralagg::vmpi {

/// Launch-time knobs beyond the rank count.  The fault plan and watchdog
/// are installed on the World before any rank thread starts, so every
/// rank observes the same schedule from its first message.
struct RunOptions {
  FaultPlan fault{};
  /// Retransmit budget for the self-healing transport (vmpi/reliable.hpp).
  /// Engages only when `fault` injects message faults; default-on, so
  /// seeded drop/corrupt legs heal to bit-identical fixpoints instead of
  /// aborting.  max_attempts = 0 restores the bare fail-stop behaviour.
  RetryPolicy retry{};
  /// Deadline (seconds) for every blocking wait; 0 disables the watchdog.
  /// A fault sweep sets a few seconds: long enough for slow CI, short
  /// enough that an injected hang fails the test instead of the runner.
  double watchdog_seconds = 0;
  /// Rank-to-node grouping for locality accounting and the hierarchical
  /// exchange (vmpi/topology.hpp).  Default: flat (every rank its own
  /// node, all remote traffic cross-node).
  Topology topology{};
  /// Schedule for the symmetric collectives; results are bit-identical on
  /// any choice.  Default: log-step recursive doubling (kLinear restores
  /// the pre-topology O(n)-step slot model).
  CollectiveSchedule schedule = CollectiveSchedule::kRecursiveDoubling;
};

/// Run `fn(comm)` on `nranks` ranks; blocks until all ranks return.
/// Returns the aggregated communication stats of the whole run.
CommStats run(int nranks, const std::function<void(Comm&)>& fn);
CommStats run(int nranks, const RunOptions& options,
              const std::function<void(Comm&)>& fn);

/// As `run`, but also copies each rank's CommStats into `per_rank`.
CommStats run_collect(int nranks, const std::function<void(Comm&)>& fn,
                      std::vector<CommStats>& per_rank);
CommStats run_collect(int nranks, const RunOptions& options,
                      const std::function<void(Comm&)>& fn,
                      std::vector<CommStats>& per_rank);

}  // namespace paralagg::vmpi

#include "vmpi/reliable.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "vmpi/crc32.hpp"

namespace paralagg::vmpi {

namespace {

// "PARARELI" / "PARACTRL": distinct from the sealed-frame magic so a stray
// application frame can never parse as an envelope (and vice versa).
constexpr std::uint64_t kEnvelopeMagic = 0x50'41'52'41'52'45'4C'49ULL;
constexpr std::uint64_t kCtrlMagic = 0x50'41'52'41'43'54'52'4CULL;
constexpr std::size_t kEnvelopeWords = 4;
constexpr std::size_t kEnvelopeBytes = kEnvelopeWords * sizeof(std::uint64_t);

enum class CtrlKind : std::uint64_t { kAck = 0, kNack = 1 };

// CRC over (seq, piggybacked cum, payload length, payload bytes): a flipped
// byte anywhere in the frame — header included — fails it.  Covering the cum
// word matters: an unprotected corrupt cum would be *believed* and falsely
// trim the sender's retransmit ring, losing the ability to heal later drops.
std::uint32_t frame_crc(std::uint64_t seq, std::uint64_t cum,
                        std::span<const std::byte> payload) {
  std::uint64_t head[3] = {seq, cum, payload.size()};
  std::uint32_t state = crc32_update(
      kCrc32Init, std::span<const std::byte>(reinterpret_cast<const std::byte*>(head),
                                             sizeof head));
  state = crc32_update(state, payload);
  return state ^ kCrc32Init;
}

std::uint64_t read_word(const Bytes& b, std::size_t i) {
  std::uint64_t w = 0;
  std::memcpy(&w, b.data() + i * sizeof(std::uint64_t), sizeof w);
  return w;
}

}  // namespace

ReliableChannel::ReliableChannel(int rank, int nranks, const RetryPolicy& policy,
                                 CommStats* stats)
    : rank_(rank), policy_(policy), stats_(stats) {
  tx_.resize(static_cast<std::size_t>(nranks));
  rx_.resize(static_cast<std::size_t>(nranks));
  // Grow-only: a channel is recreated after Comm::fault_reset, and the
  // accumulated per-edge heal counters must survive that.
  const auto n = static_cast<std::size_t>(nranks);
  if (stats_->edge_retransmits.size() < n) stats_->edge_retransmits.resize(n, 0);
  if (stats_->edge_nacks.size() < n) stats_->edge_nacks.resize(n, 0);
  if (stats_->edge_heal_seconds.size() < n) stats_->edge_heal_seconds.resize(n, 0);
}

Bytes ReliableChannel::envelope(int dst, std::uint64_t seq,
                                std::span<const std::byte> payload) {
  Bytes wire(kEnvelopeBytes + payload.size());
  auto& rx = rx_[static_cast<std::size_t>(dst)];
  const std::uint64_t words[kEnvelopeWords] = {
      kEnvelopeMagic, seq, rx.cum,
      static_cast<std::uint64_t>(frame_crc(seq, rx.cum, payload))};
  std::memcpy(wire.data(), words, kEnvelopeBytes);
  if (!payload.empty()) {
    std::memcpy(wire.data() + kEnvelopeBytes, payload.data(), payload.size());
  }
  // The data frame carries our cumulative ack for dst; an explicit ACK
  // would be redundant (and if this frame is lost, the dup-triggered
  // re-ack path converges).
  rx.ack_pending = false;
  return wire;
}

Bytes ReliableChannel::send_data(int dst, int tag, std::span<const std::byte> payload,
                                 double now) {
  auto& edge = tx_[static_cast<std::size_t>(dst)];
  const std::uint64_t seq = edge.next_seq++;
  TxFrame frame;
  frame.seq = seq;
  frame.tag = tag;
  frame.payload.assign(payload.begin(), payload.end());
  frame.first_sent = now;
  frame.next_retry = now + policy_.base_backoff;
  Bytes wire = envelope(dst, seq, frame.payload);
  edge.ring.push_back(std::move(frame));
  ++in_flight_;
  return wire;
}

std::optional<Bytes> ReliableChannel::on_data(int src, const Bytes& frame, double now) {
  auto& rx = rx_[static_cast<std::size_t>(src)];
  const bool well_formed =
      frame.size() >= kEnvelopeBytes && read_word(frame, 0) == kEnvelopeMagic;
  std::uint64_t seq = 0;
  bool valid = false;
  if (well_formed) {
    seq = read_word(frame, 1);
    const std::span<const std::byte> payload(frame.data() + kEnvelopeBytes,
                                             frame.size() - kEnvelopeBytes);
    valid = static_cast<std::uint32_t>(read_word(frame, 3)) ==
            frame_crc(seq, read_word(frame, 2), payload);
  }
  if (!valid) {
    // Corrupt on the wire (a flipped byte anywhere in the frame).  The
    // header may be unreadable, so the NACK carries only our cumulative
    // watermark: "everything after cum is suspect — resend".  The sender
    // answers by retransmitting its oldest unacked frame; timers cover
    // the rest.
    stats_->nacks_sent += 1;
    stats_->edge_nacks[static_cast<std::size_t>(src)] += 1;
    BufferWriter w(3 * sizeof(std::uint64_t));
    w.put<std::uint64_t>(kCtrlMagic);
    w.put<std::uint64_t>(static_cast<std::uint64_t>(CtrlKind::kNack));
    w.put<std::uint64_t>(rx.cum);
    outbox_.push_back(WireAction{true, src, 0, w.take()});
    return std::nullopt;
  }

  // Intact frame: absorb the piggybacked ack first (even a duplicate
  // carries fresh reverse-channel information).
  absorb_ack(src, read_word(frame, 2), now);

  if (seq <= rx.cum ||
      std::binary_search(rx.ahead.begin(), rx.ahead.end(), seq)) {
    // Duplicate: an injected dup, or a retransmit racing the (delayed)
    // original.  The sender clearly hasn't seen our ack — refresh it.
    stats_->reliable_dups_discarded += 1;
    stats_->dup_frames_discarded += 1;
    rx.ack_pending = true;
    return std::nullopt;
  }

  if (seq == rx.cum + 1) {
    ++rx.cum;
    // Absorb any out-of-order deliveries the new watermark now reaches.
    auto it = rx.ahead.begin();
    while (it != rx.ahead.end() && *it == rx.cum + 1) {
      ++rx.cum;
      ++it;
    }
    rx.ahead.erase(rx.ahead.begin(), it);
  } else {
    rx.ahead.insert(std::lower_bound(rx.ahead.begin(), rx.ahead.end(), seq), seq);
  }
  rx.ack_pending = true;
  progressed_ = true;
  return Bytes(frame.begin() + static_cast<std::ptrdiff_t>(kEnvelopeBytes), frame.end());
}

void ReliableChannel::on_ctrl(int src, const Bytes& frame, double now) {
  if (frame.size() != 3 * sizeof(std::uint64_t) || read_word(frame, 0) != kCtrlMagic) {
    return;  // control rides the unfaulted path; a mismatch is a stray frame
  }
  const auto kind = static_cast<CtrlKind>(read_word(frame, 1));
  const std::uint64_t cum = read_word(frame, 2);
  absorb_ack(src, cum, now);
  if (kind == CtrlKind::kNack) {
    // The receiver saw a corrupt frame after `cum`.  We cannot know which
    // one (its header was garbage), but the oldest unacked frame is the
    // one gating the receiver's watermark — resend it now.
    retransmit_front(tx_[static_cast<std::size_t>(src)], src, now);
  }
}

void ReliableChannel::absorb_ack(int src, std::uint64_t cum, double now) {
  auto& edge = tx_[static_cast<std::size_t>(src)];
  if (cum <= edge.acked_cum) return;
  edge.acked_cum = cum;
  while (!edge.ring.empty() && edge.ring.front().seq <= cum) {
    const TxFrame& f = edge.ring.front();
    if (f.attempts > 0) {
      // This frame needed healing; charge the time it spent unacked.
      const double healed = now - f.first_sent;
      stats_->heal_seconds += healed;
      stats_->edge_heal_seconds[static_cast<std::size_t>(src)] += healed;
      stats_->frames_healed += 1;
    }
    edge.ring.pop_front();
    --in_flight_;
  }
  progressed_ = true;
}

void ReliableChannel::retransmit_front(TxEdge& edge, int dst, double now) {
  if (failure_ || edge.ring.empty()) return;
  TxFrame& f = edge.ring.front();
  if (f.attempts >= policy_.max_attempts || now - f.first_sent > policy_.deadline) {
    failure_ = Failure{dst, f.seq, f.attempts, now - f.first_sent};
    return;
  }
  ++f.attempts;
  // Deterministic exponential backoff: attempt k waits base * 2^k.
  f.next_retry = now + policy_.base_backoff * static_cast<double>(1ULL << f.attempts);
  stats_->retransmits += 1;
  stats_->edge_retransmits[static_cast<std::size_t>(dst)] += 1;
  outbox_.push_back(WireAction{false, dst, f.tag, envelope(dst, f.seq, f.payload)});
}

void ReliableChannel::poll(double now) {
  for (std::size_t d = 0; d < tx_.size(); ++d) {
    auto& edge = tx_[d];
    // Only the ring front retransmits on timer: it is the frame gating the
    // receiver's cumulative watermark, and resending one frame per edge
    // per round keeps the healing traffic (and the fault rolls it
    // consumes) bounded.  Later frames inherit the front's fate — an ack
    // covering the front usually covers them via the watermark, and if
    // not, they become the front next.
    if (!edge.ring.empty() && edge.ring.front().next_retry <= now) {
      retransmit_front(edge, static_cast<int>(d), now);
    }
    if (failure_) return;
  }
  for (std::size_t s = 0; s < rx_.size(); ++s) {
    auto& rx = rx_[s];
    if (rx.ack_pending) {
      rx.ack_pending = false;
      stats_->acks_sent += 1;
      BufferWriter w(3 * sizeof(std::uint64_t));
      w.put<std::uint64_t>(kCtrlMagic);
      w.put<std::uint64_t>(static_cast<std::uint64_t>(CtrlKind::kAck));
      w.put<std::uint64_t>(rx.cum);
      outbox_.push_back(WireAction{true, static_cast<int>(s), 0, w.take()});
    }
  }
}

std::vector<ReliableChannel::WireAction> ReliableChannel::take_outbox() {
  std::vector<WireAction> out;
  out.swap(outbox_);
  return out;
}

std::string ReliableChannel::heal_summary(const CommStats& stats) {
  std::string s = "healing attempted: " + std::to_string(stats.retransmits) +
                  " retransmits, " + std::to_string(stats.nacks_sent) + " nacks, " +
                  std::to_string(stats.reliable_dups_discarded) + " dups discarded, " +
                  std::to_string(stats.heal_seconds) + "s backoff";
  std::uint64_t worst = 0;
  std::size_t worst_edge = 0;
  for (std::size_t d = 0; d < stats.edge_retransmits.size(); ++d) {
    if (stats.edge_retransmits[d] > worst) {
      worst = stats.edge_retransmits[d];
      worst_edge = d;
    }
  }
  if (worst > 0) {
    s += "; worst edge ->" + std::to_string(worst_edge) + " (" + std::to_string(worst) +
         " retransmits)";
  }
  return s;
}

}  // namespace paralagg::vmpi

#include "vmpi/topology.hpp"

#include <stdexcept>

namespace paralagg::vmpi {

const char* schedule_name(CollectiveSchedule s) {
  switch (s) {
    case CollectiveSchedule::kLinear: return "linear";
    case CollectiveSchedule::kRecursiveDoubling: return "rd";
    case CollectiveSchedule::kSwing: return "swing";
  }
  return "?";
}

CollectiveSchedule parse_schedule(const std::string& name) {
  if (name == "linear") return CollectiveSchedule::kLinear;
  if (name == "rd" || name == "recursive-doubling") {
    return CollectiveSchedule::kRecursiveDoubling;
  }
  if (name == "swing") return CollectiveSchedule::kSwing;
  throw std::invalid_argument("unknown collective schedule '" + name +
                              "' (expected linear | rd | swing)");
}

std::vector<int> Topology::node_members(int rank, int nranks) const {
  std::vector<int> out;
  const int first = leader_of(rank);
  for (int r = first; r < first + node_size && r < nranks; ++r) out.push_back(r);
  return out;
}

std::vector<int> Topology::leaders(int nranks) const {
  std::vector<int> out;
  for (int r = 0; r < nranks; r += node_size) out.push_back(r);
  return out;
}

std::vector<int> Topology::elect_leaders(std::span<const std::uint64_t> loads) const {
  const int nranks = static_cast<int>(loads.size());
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(node_count(nranks)));
  for (int base = 0; base < nranks; base += node_size) {
    int best = base;
    for (int r = base + 1; r < base + node_size && r < nranks; ++r) {
      // Strictly greater: equal loads keep the lower rank (deterministic,
      // and degenerates to leader_of when every member reports the same).
      if (loads[static_cast<std::size_t>(r)] > loads[static_cast<std::size_t>(best)]) {
        best = r;
      }
    }
    out.push_back(best);
  }
  return out;
}

Topology Topology::grouped(int nranks, int nodes) {
  Topology t;
  if (nodes <= 0 || nodes >= nranks) {
    t.node_size = 1;
    return t;
  }
  t.node_size = (nranks + nodes - 1) / nodes;
  return t;
}

std::string Topology::describe(int nranks) const {
  return std::to_string(node_count(nranks)) + " node(s) x " +
         std::to_string(node_size) + " rank(s)";
}

}  // namespace paralagg::vmpi

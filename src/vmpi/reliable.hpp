#pragma once

// Self-healing transport for the virtual MPI substrate.
//
// PR 5 made the failure model fail-stop: a dropped or corrupted mailbox
// frame surfaces as a typed abort (watchdog TimeoutError / FrameDecodeError)
// and the run restarts from a checkpoint — even though the sender still
// holds the bytes.  ReliableChannel closes that gap with per-edge
// sequence-numbered delivery layered over the existing faultable mailbox
// path:
//
//   * every faultable send is wrapped in a 4-word envelope
//     [magic | logical seq | piggybacked cumulative ack | crc], where the
//     CRC covers the sequence number, the piggybacked ack, and the payload
//     — so a corrupted
//     frame is detected *below* the application's sealed-frame decode;
//   * the sender keeps each unacknowledged frame in a per-edge retransmit
//     ring, trimmed at the receiver's cumulative-ACK high watermark
//     (piggybacked on reverse data traffic, or carried by explicit ACK
//     control messages when no reverse traffic exists);
//   * a frame that fails its CRC at the receiver triggers an immediate
//     NACK — a retransmit request — instead of an abort; dropped frames
//     are recovered by deterministic exponential-backoff retransmit
//     timers (a receiver cannot NACK a frame it never saw, so sender
//     timers are the only mechanism that covers a dropped *final* frame);
//   * duplicates (injected dups, or retransmits racing a delayed
//     original) are discarded by logical sequence number before the
//     application sees them;
//   * when the RetryPolicy budget is exhausted — max_attempts retransmits
//     of one frame, or the per-frame deadline — the channel escalates to
//     the PR 5 fail-stop path: the caller poisons the world
//     (World::fault_abort) and raises a TimeoutError whose message embeds
//     the healing counters, so the outer typed-abort safety net is
//     unchanged.
//
// Control traffic (ACK/NACK) rides the unfaulted reliable_send path, the
// same modelling choice as the scheduled-collective relay legs: acks model
// the transport-level control traffic under real MPI, and keeping them
// lossless makes healing convergent (no ack-of-ack recursion) and the
// escalation deterministic.  Retransmitted *data* frames, in contrast,
// re-enter the faultable path with a fresh per-edge physical sequence
// number — every retransmit gets an independent fault roll, which is what
// makes "drop every retransmit of one edge" an expressible test plan.
//
// Determinism note: retransmit *timing* is wall-clock driven, so healing
// counters are schedule-deterministic only when the plan makes them so
// (e.g. a directed drop_prob = 1 edge retransmits exactly max_attempts
// times and then escalates).  Fixpoints stay bit-identical regardless:
// the layer delivers every logical frame exactly once or aborts.

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "vmpi/serialize.hpp"
#include "vmpi/stats.hpp"

namespace paralagg::vmpi {

/// Retransmit budget for the self-healing transport.  max_attempts = 0
/// disables the layer entirely (the explicit legacy fail-stop escape
/// hatch): faultable sends ride the wire bare, exactly as before PR 10.
struct RetryPolicy {
  /// Retransmits allowed per frame beyond the initial send; attempt k
  /// (0-based) fires base_backoff * 2^k after the previous one.
  std::uint32_t max_attempts = 5;
  /// Seconds before the first retransmit of an unacked frame.
  double base_backoff = 0.05;
  /// Hard ceiling (seconds) on how long one frame may stay unacked before
  /// the channel escalates, even with attempts left.
  double deadline = 8.0;

  [[nodiscard]] bool enabled() const { return max_attempts > 0; }
};

/// Tag of the ACK/NACK control messages; disjoint from every application
/// tag space (ialltoallv 0x41A2...., Bruck 0x42......, scheduled
/// collectives 0x44......, hierarchical router 0x48A....., async
/// 0x51A5..../0x53AF....).  Control frames are never visible to recv /
/// iprobe matching.
inline constexpr int kReliableCtrlTag = 0x4AC50000;

/// Per-rank reliable-delivery state machine.  Owned by Comm (one per rank
/// thread, no internal locking); Comm moves bytes, the channel decides
/// what to (re)send, deliver, discard, or escalate.
class ReliableChannel {
 public:
  /// One wire operation the channel wants performed.  Data frames go back
  /// through the faultable enqueue (fresh fault roll per retransmit);
  /// control frames go through the reliable enqueue under kReliableCtrlTag.
  struct WireAction {
    bool ctrl;
    int dst;
    int tag;  // data frames only: the original application tag
    Bytes bytes;
  };

  /// The frame that exhausted its retry budget (sticky once set).
  struct Failure {
    int dst = -1;
    std::uint64_t seq = 0;
    std::uint32_t attempts = 0;
    double waited_seconds = 0;
  };

  ReliableChannel(int rank, int nranks, const RetryPolicy& policy, CommStats* stats);

  /// Sender path: envelope `payload` for `dst` (logical seq + piggybacked
  /// ack), register it in the retransmit ring, and return the wire bytes.
  [[nodiscard]] Bytes send_data(int dst, int tag, std::span<const std::byte> payload,
                                double now);

  /// Receiver path: process one enveloped data frame from `src`.  Returns
  /// the stripped payload if the frame is fresh (deliver it to the
  /// application), or nullopt if the channel consumed it (duplicate, or
  /// corrupt-and-NACKed).
  std::optional<Bytes> on_data(int src, const Bytes& frame, double now);

  /// Receiver path: process one ACK/NACK control frame from `src`.
  void on_ctrl(int src, const Bytes& frame, double now);

  /// Fire due retransmit timers and queue pending explicit ACKs.
  void poll(double now);

  /// Drain the wire operations accumulated by on_data / on_ctrl / poll.
  [[nodiscard]] std::vector<WireAction> take_outbox();

  /// Set once a frame exhausts its budget; the caller escalates.
  [[nodiscard]] const std::optional<Failure>& failure() const { return failure_; }

  /// True if any healing progress (a cumulative ack advanced, a fresh
  /// frame was delivered) happened since the last call; consuming resets
  /// the flag.  Blocking waits use this to re-arm their watchdog per
  /// retransmit round instead of once per call.
  [[nodiscard]] bool take_progress() {
    const bool p = progressed_;
    progressed_ = false;
    return p;
  }

  /// Any frames still awaiting acknowledgement?
  [[nodiscard]] bool idle() const { return in_flight_ == 0; }

  /// One-line summary of the healing counters for embedding in escalated
  /// fault messages ("what healing was attempted before this abort").
  static std::string heal_summary(const CommStats& stats);

 private:
  struct TxFrame {
    std::uint64_t seq = 0;
    int tag = 0;
    Bytes payload;            // application payload (re-enveloped per send)
    std::uint32_t attempts = 0;  // retransmits so far (initial send excluded)
    double first_sent = 0;
    double next_retry = 0;
  };
  struct TxEdge {
    std::uint64_t next_seq = 1;   // 0 is never a valid logical seq
    std::uint64_t acked_cum = 0;  // peer's cumulative-ack high watermark
    std::deque<TxFrame> ring;     // unacked frames, ascending seq
  };
  struct RxEdge {
    std::uint64_t cum = 0;              // delivered contiguously through here
    std::vector<std::uint64_t> ahead;   // delivered beyond the gap (sorted)
    bool ack_pending = false;
  };

  void absorb_ack(int src, std::uint64_t cum, double now);
  void retransmit_front(TxEdge& edge, int dst, double now);
  Bytes envelope(int dst, std::uint64_t seq, std::span<const std::byte> payload);

  int rank_;
  RetryPolicy policy_;
  CommStats* stats_;
  std::vector<TxEdge> tx_;
  std::vector<RxEdge> rx_;
  std::vector<WireAction> outbox_;
  std::optional<Failure> failure_;
  std::size_t in_flight_ = 0;
  bool progressed_ = false;
};

}  // namespace paralagg::vmpi

#pragma once

// Topology model for the virtual MPI substrate.
//
// The paper's Theta runs place many ranks per node: traffic between two
// ranks of one node crosses shared memory, traffic between nodes crosses
// the fabric — and at 16-64 ranks the fabric, not the local join, is the
// critical path.  The flat substrate cannot express that distinction, so
// every communication-avoidance claim about *placement* (hierarchical
// exchange, leader pre-aggregation) was unmeasurable.
//
// A Topology groups the ranks of a World into contiguous fixed-size
// "nodes": ranks [0, node_size) form node 0, [node_size, 2*node_size)
// node 1, and so on (the last node may be short).  The grouping is pure
// bookkeeping — no data moves differently — but every byte the substrate
// accounts is classified intra- vs cross-node against it, and the modelled
// cost of a cross-node byte is `cross_cost_ratio` times an intra-node one.
// Node leaders (the lowest rank of each node) are the aggregator ranks the
// hierarchical exchange elects.
//
// The default (node_size = 1) is the flat fabric: every rank its own node,
// every remote byte cross-node — bit-compatible with the pre-topology
// accounting.

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace paralagg::vmpi {

/// Which schedule the symmetric collectives (allreduce / allgather /
/// allgatherv) run on.  All schedules fold in rank order, so results are
/// bit-identical; they differ in step count and in which links carry the
/// blocks.
enum class CollectiveSchedule : std::uint8_t {
  /// The slot-exchange model: one synchronized phase, modelled as n-1
  /// sequential steps (each rank's block visits every peer).  The
  /// pre-topology behaviour, kept selectable as the baseline.
  kLinear,
  /// Recursive doubling: partner rank^2^k at step k, ceil(log2 n) steps.
  /// Non-power-of-two rank counts fall back to the dissemination (Bruck)
  /// schedule, same step count.  The default.
  kRecursiveDoubling,
  /// Swing: partner at signed distance rho(k) = (1-(-2)^(k+1))/3, so most
  /// steps pair nearby ranks — fewer cross-node hops than recursive
  /// doubling under a grouped topology, same ceil(log2 n) steps.  Falls
  /// back to dissemination for non-power-of-two rank counts.
  kSwing,
};

[[nodiscard]] const char* schedule_name(CollectiveSchedule s);

/// Parse "linear" | "rd" | "swing"; throws std::invalid_argument otherwise.
[[nodiscard]] CollectiveSchedule parse_schedule(const std::string& name);

/// Rank-to-node grouping plus the modelled relative cost of crossing the
/// node boundary.  Value type; a copy lives on the World.
struct Topology {
  /// Ranks per node (contiguous blocks).  1 = flat fabric.
  int node_size = 1;
  /// Modelled cost of a cross-node byte relative to an intra-node byte
  /// (feeds core::CostModel::project_topology, never the real exchange).
  double cross_cost_ratio = 4.0;

  [[nodiscard]] int node_of(int rank) const {
    assert(node_size >= 1);
    return rank / node_size;
  }
  [[nodiscard]] bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
  /// The first (lowest) rank of `rank`'s node — the contiguous block base.
  [[nodiscard]] int node_base(int rank) const { return node_of(rank) * node_size; }
  /// The *default* aggregator (leader) of `rank`'s node: its lowest rank.
  /// With per-rank loads in hand, use elect_leaders instead — the
  /// hierarchical exchange does, so the member already holding the most
  /// data aggregates in place instead of shipping it intra-node first.
  [[nodiscard]] int leader_of(int rank) const { return node_base(rank); }
  [[nodiscard]] bool is_leader(int rank) const { return leader_of(rank) == rank; }
  /// Load-based leader election: for each node, the member with the
  /// largest load wins; ties break to the lowest rank, so every rank
  /// folding the same load vector (e.g. from an allgather) elects
  /// identically, and an all-equal vector reproduces leader_of.  Returns
  /// one leader rank per node, node-indexed.  Pure function.
  [[nodiscard]] std::vector<int> elect_leaders(std::span<const std::uint64_t> loads) const;
  [[nodiscard]] int node_count(int nranks) const {
    return (nranks + node_size - 1) / node_size;
  }
  /// Members of `rank`'s node, leader first (ascending rank order).
  [[nodiscard]] std::vector<int> node_members(int rank, int nranks) const;
  /// All node leaders, ascending.
  [[nodiscard]] std::vector<int> leaders(int nranks) const;

  [[nodiscard]] bool flat() const { return node_size == 1; }

  /// Grouping with `nodes` equal nodes over `nranks` ranks (the last node
  /// short when they do not divide).  nodes <= 0 or >= nranks gives flat.
  [[nodiscard]] static Topology grouped(int nranks, int nodes);

  [[nodiscard]] std::string describe(int nranks) const;
};

}  // namespace paralagg::vmpi

#pragma once

// Per-rank communication statistics for the virtual MPI substrate.
//
// The paper's central claim is about communication *volume*: recursive
// aggregation can be fused with deduplication so that aggregated relations
// add zero bytes of extra traffic.  The real system measures this with
// profilers on Theta; here every byte that crosses a rank boundary is
// counted at the point of transfer, which makes the communication-avoidance
// property directly observable in tests and benchmarks.

#include <array>
#include <cstdint>
#include <string_view>

namespace paralagg::vmpi {

/// The communication primitive a byte was moved by.  Used to attribute
/// traffic to phases of the engine (e.g. the join-planning vote is expected
/// to contribute exactly one integer per rank per iteration).
enum class Op : std::uint8_t {
  kP2P = 0,
  kBarrier,
  kAllreduce,
  kAllgather,
  kBcast,
  kGather,
  kAlltoall,
  kAlltoallv,
  kCount,  // sentinel
};

constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kCount);

constexpr std::string_view op_name(Op op) {
  switch (op) {
    case Op::kP2P: return "p2p";
    case Op::kBarrier: return "barrier";
    case Op::kAllreduce: return "allreduce";
    case Op::kAllgather: return "allgather";
    case Op::kBcast: return "bcast";
    case Op::kGather: return "gather";
    case Op::kAlltoall: return "alltoall";
    case Op::kAlltoallv: return "alltoallv";
    case Op::kCount: break;
  }
  return "?";
}

/// Counters for one rank.  "Remote" bytes crossed a rank boundary; "local"
/// bytes were logically communicated but stayed on-rank (MPI would also
/// shortcut these through shared memory, but they matter for modelling:
/// a well-placed distribution turns remote bytes into local ones).
struct CommStats {
  std::array<std::uint64_t, kOpCount> bytes_sent{};   // remote only
  std::array<std::uint64_t, kOpCount> bytes_local{};  // self-destined
  /// Subset of bytes_sent whose destination lives on a *different node*
  /// under the World's Topology (vmpi/topology.hpp).  Flat topology makes
  /// this identical to bytes_sent; a grouped topology splits remote
  /// traffic into cheap intra-node and expensive cross-node shares — the
  /// quantity the hierarchical exchange exists to shrink.
  std::array<std::uint64_t, kOpCount> bytes_cross_node{};
  /// Schedule steps (latency-bound rounds) per op: n-1 for the linear
  /// collectives, ceil(log2 n) for recursive-doubling / swing /
  /// dissemination and the Bruck relay, 1 for a dense alltoallv, 3 for the
  /// hierarchical exchange (gather, leaders, scatter).
  std::array<std::uint64_t, kOpCount> steps{};
  std::array<std::uint64_t, kOpCount> calls{};
  std::uint64_t messages_sent = 0;      // p2p messages enqueued by isend
  std::uint64_t messages_received = 0;  // p2p messages delivered by recv
  std::uint64_t p2p_bytes_received = 0; // payload bytes delivered by recv
  /// Split-phase collective bookkeeping: nonblocking exchanges posted via
  /// ialltoallv and completed via wait/test.  A run must end balanced
  /// (posted == completed), or an in-flight exchange was leaked.
  std::uint64_t tickets_posted = 0;
  std::uint64_t tickets_completed = 0;
  /// Wall seconds this rank spent parked inside blocking primitives
  /// (barriers, collective rendezvous, recv).  For BSP runs this is the
  /// barrier-wait cost skew inflicts; for async runs it is idle drain time.
  double wait_seconds = 0;
  /// Fault-injection accounting (always recorded, even under StatsPause:
  /// a fault schedule is diagnostic state, not measured traffic).  Sender
  /// side: messages this rank's sends had dropped / duplicated / delayed /
  /// corrupted by the installed FaultPlan.  Receiver side: duplicate
  /// frames a consumer (ticket or framed decode) discarded.
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_corrupted = 0;
  std::uint64_t dup_frames_discarded = 0;

  void record_send(Op op, std::uint64_t bytes, bool remote) {
    const auto i = static_cast<std::size_t>(op);
    (remote ? bytes_sent : bytes_local)[i] += bytes;
  }
  /// Locality-classified variant: `cross` marks bytes whose destination is
  /// on another node (implies remote).  Comm::account_send derives the
  /// flags from the World's Topology; call sites without a Comm can pass
  /// cross == remote (the flat-fabric classification).
  void record_send(Op op, std::uint64_t bytes, bool remote, bool cross) {
    const auto i = static_cast<std::size_t>(op);
    (remote ? bytes_sent : bytes_local)[i] += bytes;
    if (cross) bytes_cross_node[i] += bytes;
  }
  void record_call(Op op) { calls[static_cast<std::size_t>(op)] += 1; }
  void record_steps(Op op, std::uint64_t n) { steps[static_cast<std::size_t>(op)] += n; }

  [[nodiscard]] std::uint64_t total_remote_bytes() const {
    std::uint64_t total = 0;
    for (auto b : bytes_sent) total += b;
    return total;
  }
  [[nodiscard]] std::uint64_t total_local_bytes() const {
    std::uint64_t total = 0;
    for (auto b : bytes_local) total += b;
    return total;
  }
  [[nodiscard]] std::uint64_t remote_bytes(Op op) const {
    return bytes_sent[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] std::uint64_t cross_node_bytes(Op op) const {
    return bytes_cross_node[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] std::uint64_t total_cross_node_bytes() const {
    std::uint64_t total = 0;
    for (auto b : bytes_cross_node) total += b;
    return total;
  }
  /// Remote bytes that stayed inside the sender's node.
  [[nodiscard]] std::uint64_t intra_node_bytes(Op op) const {
    return remote_bytes(op) - cross_node_bytes(op);
  }
  [[nodiscard]] std::uint64_t steps_of(Op op) const {
    return steps[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] std::uint64_t total_steps() const {
    std::uint64_t total = 0;
    for (auto s : steps) total += s;
    return total;
  }
  [[nodiscard]] std::uint64_t calls_of(Op op) const {
    return calls[static_cast<std::size_t>(op)];
  }
  /// Collective tuple-exchange rounds issued so far.  Both the dense and
  /// the Bruck alltoallv count one round per logical exchange, so this is
  /// the "exchanges per iteration" metric of the fused router: R+1 rounds
  /// per iteration for a fused R-join stratum vs 2R unfused.
  [[nodiscard]] std::uint64_t exchange_rounds() const {
    return calls_of(Op::kAlltoall) + calls_of(Op::kAlltoallv);
  }

  CommStats& operator+=(const CommStats& other) {
    for (std::size_t i = 0; i < kOpCount; ++i) {
      bytes_sent[i] += other.bytes_sent[i];
      bytes_local[i] += other.bytes_local[i];
      bytes_cross_node[i] += other.bytes_cross_node[i];
      steps[i] += other.steps[i];
      calls[i] += other.calls[i];
    }
    messages_sent += other.messages_sent;
    messages_received += other.messages_received;
    p2p_bytes_received += other.p2p_bytes_received;
    tickets_posted += other.tickets_posted;
    tickets_completed += other.tickets_completed;
    wait_seconds += other.wait_seconds;
    faults_dropped += other.faults_dropped;
    faults_duplicated += other.faults_duplicated;
    faults_delayed += other.faults_delayed;
    faults_corrupted += other.faults_corrupted;
    dup_frames_discarded += other.dup_frames_discarded;
    return *this;
  }
};

}  // namespace paralagg::vmpi

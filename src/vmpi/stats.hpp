#pragma once

// Per-rank communication statistics for the virtual MPI substrate.
//
// The paper's central claim is about communication *volume*: recursive
// aggregation can be fused with deduplication so that aggregated relations
// add zero bytes of extra traffic.  The real system measures this with
// profilers on Theta; here every byte that crosses a rank boundary is
// counted at the point of transfer, which makes the communication-avoidance
// property directly observable in tests and benchmarks.

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "vmpi/serialize.hpp"

namespace paralagg::vmpi {

/// The communication primitive a byte was moved by.  Used to attribute
/// traffic to phases of the engine (e.g. the join-planning vote is expected
/// to contribute exactly one integer per rank per iteration).
enum class Op : std::uint8_t {
  kP2P = 0,
  kBarrier,
  kAllreduce,
  kAllgather,
  kBcast,
  kGather,
  kAlltoall,
  kAlltoallv,
  kCount,  // sentinel
};

constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kCount);

constexpr std::string_view op_name(Op op) {
  switch (op) {
    case Op::kP2P: return "p2p";
    case Op::kBarrier: return "barrier";
    case Op::kAllreduce: return "allreduce";
    case Op::kAllgather: return "allgather";
    case Op::kBcast: return "bcast";
    case Op::kGather: return "gather";
    case Op::kAlltoall: return "alltoall";
    case Op::kAlltoallv: return "alltoallv";
    case Op::kCount: break;
  }
  return "?";
}

/// Counters for one rank.  "Remote" bytes crossed a rank boundary; "local"
/// bytes were logically communicated but stayed on-rank (MPI would also
/// shortcut these through shared memory, but they matter for modelling:
/// a well-placed distribution turns remote bytes into local ones).
struct CommStats {
  std::array<std::uint64_t, kOpCount> bytes_sent{};   // remote only
  std::array<std::uint64_t, kOpCount> bytes_local{};  // self-destined
  /// Subset of bytes_sent whose destination lives on a *different node*
  /// under the World's Topology (vmpi/topology.hpp).  Flat topology makes
  /// this identical to bytes_sent; a grouped topology splits remote
  /// traffic into cheap intra-node and expensive cross-node shares — the
  /// quantity the hierarchical exchange exists to shrink.
  std::array<std::uint64_t, kOpCount> bytes_cross_node{};
  /// Schedule steps (latency-bound rounds) per op: n-1 for the linear
  /// collectives, ceil(log2 n) for recursive-doubling / swing /
  /// dissemination and the Bruck relay, 1 for a dense alltoallv, 3 for the
  /// hierarchical exchange (gather, leaders, scatter).
  std::array<std::uint64_t, kOpCount> steps{};
  std::array<std::uint64_t, kOpCount> calls{};
  std::uint64_t messages_sent = 0;      // p2p messages enqueued by isend
  std::uint64_t messages_received = 0;  // p2p messages delivered by recv
  std::uint64_t p2p_bytes_received = 0; // payload bytes delivered by recv
  /// Split-phase collective bookkeeping: nonblocking exchanges posted via
  /// ialltoallv and completed via wait/test.  A run must end balanced
  /// (posted == completed), or an in-flight exchange was leaked.
  std::uint64_t tickets_posted = 0;
  std::uint64_t tickets_completed = 0;
  /// Wall seconds this rank spent parked inside blocking primitives
  /// (barriers, collective rendezvous, recv).  For BSP runs this is the
  /// barrier-wait cost skew inflicts; for async runs it is idle drain time.
  double wait_seconds = 0;
  /// Fault-injection accounting (always recorded, even under StatsPause:
  /// a fault schedule is diagnostic state, not measured traffic).  Sender
  /// side: messages this rank's sends had dropped / duplicated / delayed /
  /// corrupted by the installed FaultPlan.  Receiver side: duplicate
  /// frames a consumer (ticket or framed decode) discarded.
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_corrupted = 0;
  std::uint64_t dup_frames_discarded = 0;
  /// Self-healing transport accounting (vmpi/reliable.hpp; recorded even
  /// under StatsPause, like the fault counters — healing is diagnostic
  /// state, not measured traffic, and retransmitted bytes are deliberately
  /// excluded from the byte counters so volume totals stay
  /// schedule-deterministic).  `retransmits` counts data frames re-sent
  /// (timer- or NACK-triggered); `nacks_sent` counts corrupt frames this
  /// rank asked to have resent; `reliable_dups_discarded` counts frames
  /// the envelope-sequence dedup consumed (these also count into
  /// dup_frames_discarded — they are dup frames discarded, one layer
  /// lower); `frames_healed` counts frames that needed at least one
  /// retransmit and were eventually acknowledged, with `heal_seconds`
  /// their total first-send-to-ack exposure.  The edge_* vectors (indexed
  /// by peer rank) locate the sick link.
  std::uint64_t retransmits = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t reliable_dups_discarded = 0;
  std::uint64_t frames_healed = 0;
  double heal_seconds = 0;
  std::vector<std::uint64_t> edge_retransmits;
  std::vector<std::uint64_t> edge_nacks;
  std::vector<double> edge_heal_seconds;

  void record_send(Op op, std::uint64_t bytes, bool remote) {
    const auto i = static_cast<std::size_t>(op);
    (remote ? bytes_sent : bytes_local)[i] += bytes;
  }
  /// Locality-classified variant: `cross` marks bytes whose destination is
  /// on another node (implies remote).  Comm::account_send derives the
  /// flags from the World's Topology; call sites without a Comm can pass
  /// cross == remote (the flat-fabric classification).
  void record_send(Op op, std::uint64_t bytes, bool remote, bool cross) {
    const auto i = static_cast<std::size_t>(op);
    (remote ? bytes_sent : bytes_local)[i] += bytes;
    if (cross) bytes_cross_node[i] += bytes;
  }
  void record_call(Op op) { calls[static_cast<std::size_t>(op)] += 1; }
  void record_steps(Op op, std::uint64_t n) { steps[static_cast<std::size_t>(op)] += n; }

  [[nodiscard]] std::uint64_t total_remote_bytes() const {
    std::uint64_t total = 0;
    for (auto b : bytes_sent) total += b;
    return total;
  }
  [[nodiscard]] std::uint64_t total_local_bytes() const {
    std::uint64_t total = 0;
    for (auto b : bytes_local) total += b;
    return total;
  }
  [[nodiscard]] std::uint64_t remote_bytes(Op op) const {
    return bytes_sent[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] std::uint64_t cross_node_bytes(Op op) const {
    return bytes_cross_node[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] std::uint64_t total_cross_node_bytes() const {
    std::uint64_t total = 0;
    for (auto b : bytes_cross_node) total += b;
    return total;
  }
  /// Remote bytes that stayed inside the sender's node.
  [[nodiscard]] std::uint64_t intra_node_bytes(Op op) const {
    return remote_bytes(op) - cross_node_bytes(op);
  }
  [[nodiscard]] std::uint64_t steps_of(Op op) const {
    return steps[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] std::uint64_t total_steps() const {
    std::uint64_t total = 0;
    for (auto s : steps) total += s;
    return total;
  }
  [[nodiscard]] std::uint64_t calls_of(Op op) const {
    return calls[static_cast<std::size_t>(op)];
  }
  /// Collective tuple-exchange rounds issued so far.  Both the dense and
  /// the Bruck alltoallv count one round per logical exchange, so this is
  /// the "exchanges per iteration" metric of the fused router: R+1 rounds
  /// per iteration for a fused R-join stratum vs 2R unfused.
  [[nodiscard]] std::uint64_t exchange_rounds() const {
    return calls_of(Op::kAlltoall) + calls_of(Op::kAlltoallv);
  }

  CommStats& operator+=(const CommStats& other) {
    for (std::size_t i = 0; i < kOpCount; ++i) {
      bytes_sent[i] += other.bytes_sent[i];
      bytes_local[i] += other.bytes_local[i];
      bytes_cross_node[i] += other.bytes_cross_node[i];
      steps[i] += other.steps[i];
      calls[i] += other.calls[i];
    }
    messages_sent += other.messages_sent;
    messages_received += other.messages_received;
    p2p_bytes_received += other.p2p_bytes_received;
    tickets_posted += other.tickets_posted;
    tickets_completed += other.tickets_completed;
    wait_seconds += other.wait_seconds;
    faults_dropped += other.faults_dropped;
    faults_duplicated += other.faults_duplicated;
    faults_delayed += other.faults_delayed;
    faults_corrupted += other.faults_corrupted;
    dup_frames_discarded += other.dup_frames_discarded;
    retransmits += other.retransmits;
    nacks_sent += other.nacks_sent;
    acks_sent += other.acks_sent;
    reliable_dups_discarded += other.reliable_dups_discarded;
    frames_healed += other.frames_healed;
    heal_seconds += other.heal_seconds;
    merge_edges(edge_retransmits, other.edge_retransmits);
    merge_edges(edge_nacks, other.edge_nacks);
    merge_edges(edge_heal_seconds, other.edge_heal_seconds);
    return *this;
  }

  /// Wire round-trip for the stats-gathering collectives: the per-edge
  /// heal vectors make CommStats non-trivially-copyable, so it can no
  /// longer ride the typed allgather.  Fixed fields first, then each edge
  /// vector length-prefixed (lengths may differ after merges).
  [[nodiscard]] Bytes to_bytes() const {
    BufferWriter w;
    w.put_span(std::span<const std::uint64_t>(bytes_sent));
    w.put_span(std::span<const std::uint64_t>(bytes_local));
    w.put_span(std::span<const std::uint64_t>(bytes_cross_node));
    w.put_span(std::span<const std::uint64_t>(steps));
    w.put_span(std::span<const std::uint64_t>(calls));
    w.put(messages_sent);
    w.put(messages_received);
    w.put(p2p_bytes_received);
    w.put(tickets_posted);
    w.put(tickets_completed);
    w.put(wait_seconds);
    w.put(faults_dropped);
    w.put(faults_duplicated);
    w.put(faults_delayed);
    w.put(faults_corrupted);
    w.put(dup_frames_discarded);
    w.put(retransmits);
    w.put(nacks_sent);
    w.put(acks_sent);
    w.put(reliable_dups_discarded);
    w.put(frames_healed);
    w.put(heal_seconds);
    w.put<std::uint64_t>(edge_retransmits.size());
    w.put_span(std::span<const std::uint64_t>(edge_retransmits));
    w.put<std::uint64_t>(edge_nacks.size());
    w.put_span(std::span<const std::uint64_t>(edge_nacks));
    w.put<std::uint64_t>(edge_heal_seconds.size());
    w.put_span(std::span<const double>(edge_heal_seconds));
    return w.take();
  }

  [[nodiscard]] static CommStats from_bytes(const Bytes& b) {
    CommStats s;
    BufferReader r(b);
    r.get_into(std::span<std::uint64_t>(s.bytes_sent));
    r.get_into(std::span<std::uint64_t>(s.bytes_local));
    r.get_into(std::span<std::uint64_t>(s.bytes_cross_node));
    r.get_into(std::span<std::uint64_t>(s.steps));
    r.get_into(std::span<std::uint64_t>(s.calls));
    s.messages_sent = r.get<std::uint64_t>();
    s.messages_received = r.get<std::uint64_t>();
    s.p2p_bytes_received = r.get<std::uint64_t>();
    s.tickets_posted = r.get<std::uint64_t>();
    s.tickets_completed = r.get<std::uint64_t>();
    s.wait_seconds = r.get<double>();
    s.faults_dropped = r.get<std::uint64_t>();
    s.faults_duplicated = r.get<std::uint64_t>();
    s.faults_delayed = r.get<std::uint64_t>();
    s.faults_corrupted = r.get<std::uint64_t>();
    s.dup_frames_discarded = r.get<std::uint64_t>();
    s.retransmits = r.get<std::uint64_t>();
    s.nacks_sent = r.get<std::uint64_t>();
    s.acks_sent = r.get<std::uint64_t>();
    s.reliable_dups_discarded = r.get<std::uint64_t>();
    s.frames_healed = r.get<std::uint64_t>();
    s.heal_seconds = r.get<double>();
    s.edge_retransmits.resize(static_cast<std::size_t>(r.get<std::uint64_t>()));
    r.get_into(std::span<std::uint64_t>(s.edge_retransmits));
    s.edge_nacks.resize(static_cast<std::size_t>(r.get<std::uint64_t>()));
    r.get_into(std::span<std::uint64_t>(s.edge_nacks));
    s.edge_heal_seconds.resize(static_cast<std::size_t>(r.get<std::uint64_t>()));
    r.get_into(std::span<double>(s.edge_heal_seconds));
    return s;
  }

 private:
  template <typename T>
  static void merge_edges(std::vector<T>& into, const std::vector<T>& from) {
    if (into.size() < from.size()) into.resize(from.size());
    for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
  }
};

}  // namespace paralagg::vmpi

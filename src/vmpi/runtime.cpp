#include "vmpi/runtime.hpp"

#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

namespace paralagg::vmpi {

CommStats run(int nranks, const std::function<void(Comm&)>& fn) {
  std::vector<CommStats> ignored;
  return run_collect(nranks, RunOptions{}, fn, ignored);
}

CommStats run(int nranks, const RunOptions& options,
              const std::function<void(Comm&)>& fn) {
  std::vector<CommStats> ignored;
  return run_collect(nranks, options, fn, ignored);
}

CommStats run_collect(int nranks, const std::function<void(Comm&)>& fn,
                      std::vector<CommStats>& per_rank) {
  return run_collect(nranks, RunOptions{}, fn, per_rank);
}

CommStats run_collect(int nranks, const RunOptions& options,
                      const std::function<void(Comm&)>& fn,
                      std::vector<CommStats>& per_rank) {
  if (nranks < 1) throw std::invalid_argument("vmpi::run: nranks must be >= 1");

  World world(nranks);
  world.set_fault_plan(options.fault);
  world.set_retry(options.retry);
  world.set_watchdog(options.watchdog_seconds);
  world.set_topology(options.topology);
  world.set_schedule(options.schedule);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r);
      try {
        fn(comm);
      } catch (const WorldAborted&) {
        // Secondary failure caused by another rank's abort; not reported.
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        world.abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  per_rank.clear();
  per_rank.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) per_rank.push_back(world.stats_of(r));
  return world.total_stats();
}

}  // namespace paralagg::vmpi

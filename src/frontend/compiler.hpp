#pragma once

// Compiler from the Datalog dialect (ast.hpp) to engine programs.
//
// What "compiling Datalog onto PARALAGG" involves (and what this module
// does):
//
//  1. **Stratification.**  Relations form a dependency graph (head depends
//     on body); Tarjan SCCs become strata, emitted in topological order.
//     Rules whose bodies stay in lower strata are init rules; rules that
//     read their own SCC are recursive loop rules (the recursive atom runs
//     on the delta).  Rules with two recursive atoms expand into the
//     standard semi-naive pair (delta x full) + (full x delta).
//
//  2. **Index selection.**  The engine joins on a stored-order prefix, so
//     every join dictates an ordered column pattern for each side.  Each
//     relation gets one primary stored order (its most demanded pattern;
//     dependent columns forced last, per the paper's restriction);
//     additional patterns materialize as secondary index relations
//     ("rel@c1_c2") kept up to date by generated copy rules — inside the
//     fixpoint for recursive relations (copying the delta), in a dedicated
//     stratum otherwise.
//
//  3. **Negation.**  `!rel(args)` compiles to the engine's antijoin;
//     analysis enforces stratification (no negation through a cycle) and
//     safety (negated variables bound positively), and splits filter
//     conjuncts between the emission gate (positive side) and the
//     blocking-match predicate (negated side).
//
//  4. **Lowering.**  Head terms compile to Expr trees over the two sides'
//     stored columns; repeated variables and constant arguments become
//     equality filters; comparisons become filter conjuncts.
//
// The result is a pure-data CompiledProgram that every rank instantiates
// against its Comm (SPMD, like the hand-written queries).

#include <map>
#include <memory>
#include <optional>

#include "core/engine.hpp"
#include "frontend/ast.hpp"
#include "frontend/parser.hpp"

namespace paralagg::frontend {

/// Stored layout chosen for one engine relation.
struct RelationPlan {
  std::string name;  // engine name; secondary indexes are "base@cols"
  std::vector<std::string> declared_columns;
  /// perm[s] = declared column stored at slot s.
  std::vector<std::size_t> perm;
  std::size_t jcc = 1;
  AggKind agg = AggKind::kNone;  // dependent column = last stored slot
  bool is_input = false;
  bool is_output = false;
  /// Appears as a negated (antijoin) atom somewhere: must keep a single
  /// sub-bucket so absence stays a rank-local decision.
  bool negated_use = false;
  int base = -1;  // secondary indexes: RelationPlan id of the base relation

  [[nodiscard]] std::size_t arity() const { return perm.size(); }
  [[nodiscard]] bool aggregated() const { return agg != AggKind::kNone; }
};

struct RulePlan {
  bool is_join = false;
  std::size_t a = 0;  // RelationPlan ids
  std::size_t b = 0;  // join only
  core::Version a_version = core::Version::kFull;
  core::Version b_version = core::Version::kFull;
  std::size_t target = 0;
  std::vector<core::Expr> head;
  std::optional<core::Expr> filter;
  std::optional<core::Expr> pre_filter;  // antijoins: side-A gate
  bool anti = false;  // side B is negated (stratified negation)
  int line = 0;       // source rule, for diagnostics
};

struct StratumPlan {
  std::vector<RulePlan> init;
  std::vector<RulePlan> loop;
};

/// A fully analyzed program: immutable, shareable across ranks.
class CompiledProgram {
 public:
  /// Analyze a parsed program.  Throws FrontendError on semantic errors.
  static CompiledProgram compile(const ProgramAst& ast);
  /// Convenience: parse + compile.
  static CompiledProgram compile(std::string_view source) {
    return compile(parse_program(source));
  }

  [[nodiscard]] const std::vector<RelationPlan>& relations() const { return relations_; }
  [[nodiscard]] const std::vector<StratumPlan>& strata() const { return strata_; }

  /// Declared relations by name -> primary plan id.
  [[nodiscard]] const std::map<std::string, std::size_t>& by_name() const { return by_name_; }

  /// Inline facts per primary plan id, already in stored order.
  [[nodiscard]] const std::map<std::size_t, std::vector<core::Tuple>>& facts() const {
    return facts_;
  }

  class Instance;
  /// Build this rank's executable instance.  SPMD: all ranks call it.
  /// Inline facts are loaded immediately (collective).
  Instance instantiate(vmpi::Comm& comm, int input_sub_buckets = 1,
                       bool input_balanceable = true) const;

 private:
  std::vector<RelationPlan> relations_;
  std::vector<StratumPlan> strata_;
  std::map<std::string, std::size_t> by_name_;
  std::map<std::size_t, std::vector<core::Tuple>> facts_;
};

/// Executable instantiation: engine relations + program bound to one rank.
class CompiledProgram::Instance {
 public:
  /// Load external facts into an input relation; rows are in DECLARED
  /// column order.  Collective.
  void load(const std::string& relation, std::span<const core::Tuple> declared_rows);

  /// Execute all strata.  Collective.
  core::RunResult run(const core::EngineConfig& cfg = {});

  /// Global tuple count of a declared relation.  Collective.
  [[nodiscard]] std::uint64_t size(const std::string& relation);

  /// Gather a declared relation to `root`, rows in DECLARED order, sorted.
  /// Collective.
  [[nodiscard]] std::vector<core::Tuple> gather(const std::string& relation, int root = 0);

  [[nodiscard]] core::Relation* relation(const std::string& name);

 private:
  friend class CompiledProgram;
  Instance(const CompiledProgram& plan, vmpi::Comm& comm, int input_sub_buckets,
           bool input_balanceable);

  [[nodiscard]] std::size_t plan_id(const std::string& relation) const;

  const CompiledProgram* plan_;
  vmpi::Comm* comm_;
  std::unique_ptr<core::Program> program_;
  std::vector<core::Relation*> rels_;  // by plan id
};

}  // namespace paralagg::frontend

#pragma once

// Abstract syntax for the PARALAGG Datalog dialect.
//
// The paper presents queries in Datalog-with-aggregates notation
// (SSSP/CC in §II, §V-A); this frontend accepts that notation directly:
//
//   .decl edge(x, y, w) input
//   .decl spath(f, t, d min)
//   .decl reach(n) output
//
//   spath(n, n, 0)         :- edge(n, _, _).
//   spath(f, t2, d + w)    :- spath(f, t, d), edge(t, t2, w).
//   reach(t)               :- spath(_, t, _).
//
// Bodies contain one or two positive atoms plus comparison constraints;
// heads may compute arithmetic (+, -, min, max) over body variables; a
// `min` / `max` / `sum` / `mcount` annotation on a declared column makes
// the relation a recursive aggregate with that column as the dependent
// value (paper Listing 1/2 semantics).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace paralagg::frontend {

using core::value_t;

/// A term in a head argument or constraint: variables, constants,
/// wildcards, and arithmetic over them.
struct Term {
  enum class Kind : std::uint8_t {
    kVar,
    kConst,
    kWildcard,
    kAdd,
    kSub,
    kMin,
    kMax,
  };

  Kind kind = Kind::kWildcard;
  std::string var;        // kVar
  value_t constant = 0;   // kConst
  std::vector<Term> kids; // binary kinds

  [[nodiscard]] bool is_simple() const {
    return kind == Kind::kVar || kind == Kind::kConst || kind == Kind::kWildcard;
  }

  /// Collect variable names (with repetition) into `out`.
  void collect_vars(std::vector<std::string>& out) const {
    if (kind == Kind::kVar) out.push_back(var);
    for (const auto& k : kids) k.collect_vars(out);
  }
};

struct Atom {
  std::string relation;
  std::vector<Term> args;
  bool negated = false;  // body only: "!rel(args)" (stratified negation)
  int line = 0;
};

struct Constraint {
  enum class Kind : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };
  Kind kind = Kind::kEq;
  Term lhs, rhs;
  int line = 0;
};

struct RuleAst {
  Atom head;
  std::vector<Atom> body;               // 1 or 2 positive atoms
  std::vector<Constraint> constraints;  // side conditions
  int line = 0;
};

enum class AggKind : std::uint8_t { kNone, kMin, kMax, kSum, kMCount };

struct DeclAst {
  std::string name;
  std::vector<std::string> columns;
  AggKind agg = AggKind::kNone;
  std::size_t agg_column = 0;  // index into columns, valid when agg != kNone
  bool is_input = false;       // facts supplied externally
  bool is_output = false;      // gathered/printed by drivers
  int line = 0;
};

struct ProgramAst {
  std::vector<DeclAst> decls;
  std::vector<RuleAst> rules;
  std::vector<Atom> facts;  // ground atoms ("edge(1, 2, 5).")
};

/// Parse/analysis failure with a source line attached.
class FrontendError : public std::runtime_error {
 public:
  FrontendError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}

  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

}  // namespace paralagg::frontend

#pragma once

// Lexer + recursive-descent parser for the PARALAGG Datalog dialect.
//
// Grammar (see ast.hpp for examples):
//
//   program    := (decl | rule | fact)*
//   decl       := ".decl" NAME "(" col ("," col)* ")" ("input" | "output")*
//   col        := NAME ("min" | "max" | "sum" | "mcount")?
//   rule       := atom ":-" bodyelem ("," bodyelem)* "."
//   fact       := atom "."                       (all args constant)
//   bodyelem   := atom | constraint
//   atom       := NAME "(" term ("," term)* ")"
//   constraint := term ("<"|"<="|">"|">="|"="|"!=") term
//   term       := primary (("+"|"-") primary)*
//   primary    := NUMBER | NAME | "_" | ("min"|"max") "(" term "," term ")"
//               | "(" term ")"
//
// Comments run from "//" or "#" to end of line.  Errors throw
// FrontendError with the offending line number.

#include <string_view>

#include "frontend/ast.hpp"

namespace paralagg::frontend {

/// Parse a whole program.  Throws FrontendError on the first syntax error.
ProgramAst parse_program(std::string_view source);

}  // namespace paralagg::frontend

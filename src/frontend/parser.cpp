#include "frontend/parser.hpp"

#include <cctype>
#include <optional>

namespace paralagg::frontend {

namespace {

enum class Tok : std::uint8_t {
  kIdent,
  kNumber,
  kDot,       // .
  kDirective, // .decl (dot immediately followed by an identifier)
  kComma,
  kLParen,
  kRParen,
  kTurnstile, // :-
  kUnderscore,
  kPlus,
  kMinus,
  kBang,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  value_t number = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_space();
    current_ = Token{.kind = Tok::kEnd, .line = line_};
    if (pos_ >= src_.size()) return;
    const char c = src_[pos_];
    current_.line = line_;

    if (c == '.') {
      ++pos_;
      // ".decl" style directive: dot glued to an identifier.
      if (pos_ < src_.size() && (std::isalpha(static_cast<unsigned char>(src_[pos_])) != 0)) {
        current_.kind = Tok::kDirective;
        current_.text = take_ident();
        return;
      }
      current_.kind = Tok::kDot;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      current_.kind = Tok::kNumber;
      value_t v = 0;
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_])) != 0) {
        v = v * 10 + static_cast<value_t>(src_[pos_] - '0');
        ++pos_;
      }
      current_.number = v;
      return;
    }
    if (c == '_' && !is_ident_char(pos_ + 1)) {
      ++pos_;
      current_.kind = Tok::kUnderscore;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      current_.kind = Tok::kIdent;
      current_.text = take_ident();
      return;
    }
    ++pos_;
    switch (c) {
      case ',': current_.kind = Tok::kComma; return;
      case '(': current_.kind = Tok::kLParen; return;
      case ')': current_.kind = Tok::kRParen; return;
      case '+': current_.kind = Tok::kPlus; return;
      case '-': current_.kind = Tok::kMinus; return;
      case ':':
        if (pos_ < src_.size() && src_[pos_] == '-') {
          ++pos_;
          current_.kind = Tok::kTurnstile;
          return;
        }
        throw FrontendError(line_, "expected ':-'");
      case '<':
        if (pos_ < src_.size() && src_[pos_] == '=') {
          ++pos_;
          current_.kind = Tok::kLe;
        } else {
          current_.kind = Tok::kLt;
        }
        return;
      case '>':
        if (pos_ < src_.size() && src_[pos_] == '=') {
          ++pos_;
          current_.kind = Tok::kGe;
        } else {
          current_.kind = Tok::kGt;
        }
        return;
      case '=': current_.kind = Tok::kEq; return;
      case '!':
        if (pos_ < src_.size() && src_[pos_] == '=') {
          ++pos_;
          current_.kind = Tok::kNe;
          return;
        }
        current_.kind = Tok::kBang;
        return;
      default:
        throw FrontendError(line_, std::string("unexpected character '") + c + "'");
    }
  }

  [[nodiscard]] bool is_ident_char(std::size_t at) const {
    if (at >= src_.size()) return false;
    const char c = src_[at];
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  }

  std::string take_ident() {
    const std::size_t start = pos_;
    while (is_ident_char(pos_)) ++pos_;
    return std::string(src_.substr(start, pos_ - start));
  }

  void skip_space() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_])) != 0) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < src_.size() && src_[pos_] == '/' && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (pos_ < src_.size() && src_[pos_] == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  ProgramAst parse() {
    ProgramAst out;
    while (lex_.peek().kind != Tok::kEnd) {
      if (lex_.peek().kind == Tok::kDirective) {
        out.decls.push_back(parse_decl());
        continue;
      }
      parse_rule_or_fact(out);
    }
    return out;
  }

 private:
  Token expect(Tok kind, const char* what) {
    if (lex_.peek().kind != kind) {
      throw FrontendError(lex_.peek().line, std::string("expected ") + what);
    }
    return lex_.take();
  }

  static std::optional<AggKind> agg_keyword(const std::string& word) {
    if (word == "min") return AggKind::kMin;
    if (word == "max") return AggKind::kMax;
    if (word == "sum") return AggKind::kSum;
    if (word == "mcount") return AggKind::kMCount;
    return std::nullopt;
  }

  DeclAst parse_decl() {
    const Token directive = lex_.take();
    if (directive.text != "decl") {
      throw FrontendError(directive.line, "unknown directive ." + directive.text +
                                              " (only .decl is supported)");
    }
    DeclAst decl;
    decl.line = directive.line;
    decl.name = expect(Tok::kIdent, "relation name").text;
    expect(Tok::kLParen, "'('");
    for (;;) {
      const Token col = expect(Tok::kIdent, "column name");
      decl.columns.push_back(col.text);
      if (lex_.peek().kind == Tok::kIdent) {
        const auto agg = agg_keyword(lex_.peek().text);
        if (agg) {
          if (decl.agg != AggKind::kNone) {
            throw FrontendError(lex_.peek().line,
                                decl.name + ": only one aggregated column is supported");
          }
          decl.agg = *agg;
          decl.agg_column = decl.columns.size() - 1;
          lex_.take();
        }
      }
      if (lex_.peek().kind == Tok::kComma) {
        lex_.take();
        continue;
      }
      break;
    }
    expect(Tok::kRParen, "')'");
    // Optional markers; anything else starts the next item.
    while (lex_.peek().kind == Tok::kIdent &&
           (lex_.peek().text == "input" || lex_.peek().text == "output")) {
      if (lex_.take().text == "input") {
        decl.is_input = true;
      } else {
        decl.is_output = true;
      }
    }
    return decl;
  }

  void parse_rule_or_fact(ProgramAst& out) {
    Atom head = parse_atom();
    if (lex_.peek().kind == Tok::kDot) {
      lex_.take();
      // Ground fact.
      for (const auto& arg : head.args) {
        if (arg.kind != Term::Kind::kConst) {
          throw FrontendError(head.line, head.relation + ": facts must be ground");
        }
      }
      out.facts.push_back(std::move(head));
      return;
    }
    expect(Tok::kTurnstile, "':-' or '.'");
    RuleAst rule;
    rule.line = head.line;
    rule.head = std::move(head);
    for (;;) {
      parse_body_element(rule);
      if (lex_.peek().kind == Tok::kComma) {
        lex_.take();
        continue;
      }
      break;
    }
    expect(Tok::kDot, "'.' at end of rule");
    out.rules.push_back(std::move(rule));
  }

  void parse_body_element(RuleAst& rule) {
    // An atom is NAME '('; a bare NAME (or anything else) starts a
    // constraint.  min/max are function calls inside constraints, never
    // relation names.
    if (lex_.peek().kind == Tok::kBang) {
      lex_.take();
      const Token name = expect(Tok::kIdent, "relation name after '!'");
      Atom atom = parse_atom_named(name);
      atom.negated = true;
      rule.body.push_back(std::move(atom));
      return;
    }
    Constraint c;
    c.line = lex_.peek().line;
    if (lex_.peek().kind == Tok::kIdent && !agg_keyword(lex_.peek().text)) {
      const Token name = lex_.take();
      if (lex_.peek().kind == Tok::kLParen) {
        rule.body.push_back(parse_atom_named(name));
        return;
      }
      Term first;
      first.kind = Term::Kind::kVar;
      first.var = name.text;
      c.lhs = continue_additive(std::move(first));
    } else {
      c.lhs = parse_term();
    }
    switch (lex_.peek().kind) {
      case Tok::kLt: c.kind = Constraint::Kind::kLt; break;
      case Tok::kLe: c.kind = Constraint::Kind::kLe; break;
      case Tok::kGt: c.kind = Constraint::Kind::kGt; break;
      case Tok::kGe: c.kind = Constraint::Kind::kGe; break;
      case Tok::kEq: c.kind = Constraint::Kind::kEq; break;
      case Tok::kNe: c.kind = Constraint::Kind::kNe; break;
      default: throw FrontendError(c.line, "expected a comparison operator");
    }
    lex_.take();
    c.rhs = parse_term();
    rule.constraints.push_back(std::move(c));
  }

  Atom parse_atom() {
    const Token name = expect(Tok::kIdent, "relation name");
    return parse_atom_named(name);
  }

  Atom parse_atom_named(const Token& name) {
    Atom atom;
    atom.relation = name.text;
    atom.line = name.line;
    expect(Tok::kLParen, "'('");
    for (;;) {
      atom.args.push_back(parse_term());
      if (lex_.peek().kind == Tok::kComma) {
        lex_.take();
        continue;
      }
      break;
    }
    expect(Tok::kRParen, "')'");
    // A constraint may follow an atom inside the body ("spath(f,t,d), d < 9")
    // but comparisons directly after ')' belong to the next element, so
    // nothing more to do here.
    return atom;
  }

  Term parse_term() { return continue_additive(parse_primary()); }

  Term continue_additive(Term t) {
    while (lex_.peek().kind == Tok::kPlus || lex_.peek().kind == Tok::kMinus) {
      const bool add = lex_.take().kind == Tok::kPlus;
      Term rhs = parse_primary();
      Term parent;
      parent.kind = add ? Term::Kind::kAdd : Term::Kind::kSub;
      parent.kids.push_back(std::move(t));
      parent.kids.push_back(std::move(rhs));
      t = std::move(parent);
    }
    return t;
  }

  Term parse_primary() {
    const Token& p = lex_.peek();
    switch (p.kind) {
      case Tok::kNumber: {
        Term t;
        t.kind = Term::Kind::kConst;
        t.constant = lex_.take().number;
        return t;
      }
      case Tok::kUnderscore: {
        lex_.take();
        Term t;
        t.kind = Term::Kind::kWildcard;
        return t;
      }
      case Tok::kLParen: {
        lex_.take();
        Term t = parse_term();
        expect(Tok::kRParen, "')'");
        return t;
      }
      case Tok::kIdent: {
        const Token ident = lex_.take();
        const auto agg = agg_keyword(ident.text);
        if (agg && lex_.peek().kind == Tok::kLParen &&
            (*agg == AggKind::kMin || *agg == AggKind::kMax)) {
          lex_.take();
          Term t;
          t.kind = *agg == AggKind::kMin ? Term::Kind::kMin : Term::Kind::kMax;
          t.kids.push_back(parse_term());
          expect(Tok::kComma, "','");
          t.kids.push_back(parse_term());
          expect(Tok::kRParen, "')'");
          return t;
        }
        Term t;
        t.kind = Term::Kind::kVar;
        t.var = ident.text;
        return t;
      }
      default:
        throw FrontendError(p.line, "expected a term");
    }
  }

  Lexer lex_;
};

}  // namespace

ProgramAst parse_program(std::string_view source) { return Parser(source).parse(); }

}  // namespace paralagg::frontend
